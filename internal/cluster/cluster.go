// Package cluster describes the physical resources E3 plans over: a set of
// GPUs spread across machines, joined by a simnet topology, with a dollar
// cost. The paper's evaluation cluster has 46 GPUs of four kinds across 26
// machines (§5 Experimental Setup); constructors below build it and the
// smaller per-experiment clusters.
package cluster

import (
	"fmt"
	"sort"

	"e3/internal/gpu"
	"e3/internal/simnet"
)

// Device is one GPU in the cluster.
type Device struct {
	ID      string
	Kind    gpu.Kind
	Machine int
	// Slowdown multiplies this device's compute time; 1 is healthy. The
	// straggler experiments raise it (§3.3).
	Slowdown float64
}

// Spec returns the device's performance model.
func (d Device) Spec() gpu.Spec { return gpu.Get(d.Kind) }

// Cluster is an inventory of devices plus their interconnect.
type Cluster struct {
	Devices  []Device
	Topology simnet.Topology
}

// New builds a cluster from per-kind counts, packing gpusPerMachine devices
// per machine (the paper's servers host "one or more" GPUs; 2 is typical).
// Kinds are placed in catalogue order so layout is deterministic.
func New(counts map[gpu.Kind]int, gpusPerMachine int) *Cluster {
	if gpusPerMachine < 1 {
		gpusPerMachine = 1
	}
	c := &Cluster{Topology: simnet.Default()}
	kinds := make([]gpu.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	machine, inMachine := 0, 0
	for _, k := range kinds {
		for i := 0; i < counts[k]; i++ {
			c.Devices = append(c.Devices, Device{
				ID:       fmt.Sprintf("%s-%d", k, i),
				Kind:     k,
				Machine:  machine,
				Slowdown: 1,
			})
			inMachine++
			if inMachine == gpusPerMachine {
				machine++
				inMachine = 0
			}
		}
	}
	return c
}

// Homogeneous builds an n-GPU single-kind cluster, two GPUs per machine.
func Homogeneous(kind gpu.Kind, n int) *Cluster {
	return New(map[gpu.Kind]int{kind: n}, 2)
}

// PaperEvaluation builds the paper's full 46-GPU, 26-machine testbed mix.
func PaperEvaluation() *Cluster {
	return New(map[gpu.Kind]int{gpu.A6000: 7, gpu.V100: 16, gpu.P100: 8, gpu.K80: 15}, 2)
}

// PaperHeterogeneous builds the Figure 13 cost-matched mix: 6 V100, 8 P100,
// 15 K80, priced within a rounding error of 16 V100s ($0.013/s).
func PaperHeterogeneous() *Cluster {
	return New(map[gpu.Kind]int{gpu.V100: 6, gpu.P100: 8, gpu.K80: 15}, 2)
}

// Size reports the number of devices.
func (c *Cluster) Size() int { return len(c.Devices) }

// Counts returns the per-kind device inventory.
func (c *Cluster) Counts() map[gpu.Kind]int {
	out := make(map[gpu.Kind]int)
	for _, d := range c.Devices {
		out[d.Kind]++
	}
	return out
}

// CostPerSecond is the rental price of the whole cluster, USD per second.
func (c *Cluster) CostPerSecond() float64 {
	sum := 0.0
	for _, d := range c.Devices {
		sum += d.Spec().CostPerSecond()
	}
	return sum
}

// OfKind returns indices (into Devices) of all devices of a kind, in order.
func (c *Cluster) OfKind(k gpu.Kind) []int {
	var out []int
	for i, d := range c.Devices {
		if d.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// Link returns the interconnect between two devices.
func (c *Cluster) Link(a, b int) simnet.Link {
	if a == b {
		return simnet.Loopback
	}
	return c.Topology.Between(c.Devices[a].Machine, c.Devices[b].Machine)
}

// Subset returns a view over the first n devices (same topology). It is
// how E3 holds back buffer GPUs for spike absorption: plan over the
// subset in steady state, expand to the full cluster under overload.
func (c *Cluster) Subset(n int) *Cluster {
	if n < 0 {
		n = 0
	}
	if n > len(c.Devices) {
		n = len(c.Devices)
	}
	return &Cluster{Devices: c.Devices[:n], Topology: c.Topology}
}

// MarkStraggler sets a device's slowdown factor (≥ 1).
func (c *Cluster) MarkStraggler(idx int, slowdown float64) {
	if slowdown < 1 {
		slowdown = 1
	}
	c.Devices[idx].Slowdown = slowdown
}
