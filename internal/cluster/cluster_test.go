package cluster

import (
	"math"
	"testing"

	"e3/internal/gpu"
)

func TestHomogeneousLayout(t *testing.T) {
	c := Homogeneous(gpu.V100, 16)
	if c.Size() != 16 {
		t.Fatalf("size = %d, want 16", c.Size())
	}
	if got := c.Counts()[gpu.V100]; got != 16 {
		t.Errorf("V100 count = %d, want 16", got)
	}
	// Two GPUs per machine → 8 machines.
	machines := make(map[int]int)
	for _, d := range c.Devices {
		machines[d.Machine]++
	}
	if len(machines) != 8 {
		t.Errorf("machines = %d, want 8", len(machines))
	}
	for m, n := range machines {
		if n != 2 {
			t.Errorf("machine %d has %d GPUs, want 2", m, n)
		}
	}
}

func TestPaperEvaluationInventory(t *testing.T) {
	c := PaperEvaluation()
	if c.Size() != 46 {
		t.Errorf("paper cluster size = %d, want 46", c.Size())
	}
	counts := c.Counts()
	want := map[gpu.Kind]int{gpu.A6000: 7, gpu.V100: 16, gpu.P100: 8, gpu.K80: 15}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("count[%s] = %d, want %d", k, counts[k], n)
		}
	}
}

func TestHeterogeneousCostMatchesHomogeneous(t *testing.T) {
	// Figure 13's premise: both clusters cost ~$0.013/s.
	het := PaperHeterogeneous().CostPerSecond()
	hom := Homogeneous(gpu.V100, 16).CostPerSecond()
	if math.Abs(het-hom)/hom > 0.03 {
		t.Errorf("cost mismatch: het=%.5f hom=%.5f (want within 3%%)", het, hom)
	}
	if hom < 0.011 || hom > 0.015 {
		t.Errorf("16xV100 cost = %.5f $/s, want ~0.013", hom)
	}
}

func TestOfKind(t *testing.T) {
	c := PaperHeterogeneous()
	if got := len(c.OfKind(gpu.V100)); got != 6 {
		t.Errorf("OfKind(V100) = %d, want 6", got)
	}
	if got := len(c.OfKind(gpu.A6000)); got != 0 {
		t.Errorf("OfKind(A6000) = %d, want 0", got)
	}
}

func TestLinkSelection(t *testing.T) {
	c := Homogeneous(gpu.V100, 4) // machines: [0,0,1,1]
	if got := c.Link(0, 0).Name; got != "local" {
		t.Errorf("self link = %q, want local", got)
	}
	if got := c.Link(0, 1).Name; got != "pcie" {
		t.Errorf("same-machine link = %q, want pcie", got)
	}
	if got := c.Link(1, 2).Name; got != "eth10g" {
		t.Errorf("cross-machine link = %q, want eth10g", got)
	}
}

func TestMarkStraggler(t *testing.T) {
	c := Homogeneous(gpu.K80, 2)
	c.MarkStraggler(1, 2.5)
	if c.Devices[1].Slowdown != 2.5 {
		t.Errorf("slowdown = %v, want 2.5", c.Devices[1].Slowdown)
	}
	c.MarkStraggler(0, 0.1) // below 1 clamps to healthy
	if c.Devices[0].Slowdown != 1 {
		t.Errorf("slowdown = %v, want clamped to 1", c.Devices[0].Slowdown)
	}
}

func TestDeterministicLayout(t *testing.T) {
	a := PaperHeterogeneous()
	b := PaperHeterogeneous()
	for i := range a.Devices {
		if a.Devices[i] != b.Devices[i] {
			t.Fatalf("layout not deterministic at device %d: %+v vs %+v", i, a.Devices[i], b.Devices[i])
		}
	}
}
