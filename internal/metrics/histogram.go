package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a bounded streaming histogram over fixed log-spaced
// buckets. Unlike LatencyRecorder it retains O(buckets) state regardless
// of how many values it observes, so million-request runs can feed a live
// /metrics endpoint without retaining every sample twice. Quantiles are
// approximate: the returned value lies inside the bucket holding the true
// quantile, so the relative error is bounded by one bucket's growth
// factor.
type Histogram struct {
	// bounds[i] is the inclusive upper bound of bucket i, ascending;
	// values above bounds[len-1] land in the overflow bucket.
	bounds []float64
	// counts has len(bounds)+1 entries; the last is the overflow bucket.
	counts []uint64
	total  uint64
	sum    float64
	// minSeen/maxSeen tighten quantile interpolation at the edges.
	minSeen, maxSeen float64
}

// NewLogHistogram builds a histogram whose bucket upper bounds are
// log-spaced from lo to hi inclusive. It panics on malformed shapes —
// bucket layouts are compile-time decisions, not runtime inputs.
func NewLogHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 2 || lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: bad log histogram [%v,%v]x%d", lo, hi, buckets))
	}
	h := &Histogram{
		bounds: make([]float64, buckets),
		counts: make([]uint64, buckets+1),
	}
	ratio := math.Pow(hi/lo, 1/float64(buckets-1))
	b := lo
	for i := range h.bounds {
		h.bounds[i] = b
		b *= ratio
	}
	// Pin the last bound exactly so values equal to hi never overflow from
	// accumulated rounding.
	h.bounds[buckets-1] = hi
	return h
}

// Growth returns the ratio between consecutive bucket bounds — the
// relative tolerance of Quantile.
func (h *Histogram) Growth() float64 {
	return math.Pow(h.bounds[len(h.bounds)-1]/h.bounds[0], 1/float64(len(h.bounds)-1))
}

// Observe records one value. Negative values are clamped to zero, matching
// LatencyRecorder.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bucket whose bound ≥ v
	h.counts[i]++
	if h.total == 0 || v < h.minSeen {
		h.minSeen = v
	}
	if h.total == 0 || v > h.maxSeen {
		h.maxSeen = v
	}
	h.total++
	h.sum += v
}

// Count reports the number of observed values.
func (h *Histogram) Count() uint64 { return h.total }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the arithmetic mean (0 if empty). The mean is exact — it is
// accumulated from the raw values, not reconstructed from buckets.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest observed value (0 if empty).
func (h *Histogram) Min() float64 { return h.minSeen }

// Max returns the largest observed value (0 if empty).
func (h *Histogram) Max() float64 { return h.maxSeen }

// Quantile returns an approximation of the q-th quantile: the bucket
// holding the target rank is located and the value interpolated linearly
// across it. The result is clamped to the observed [min, max], and lies
// within one bucket of the exact sample quantile.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.minSeen
	}
	if q >= 1 {
		return h.maxSeen
	}
	// Target rank matches LatencyRecorder's position semantics: q·(n−1),
	// counted in observation order within the sorted population.
	rank := q * float64(h.total-1)
	cum := uint64(0)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		// Bucket i covers ranks [cum, cum+c-1].
		if rank < float64(cum+c) {
			lower, upper := h.bucketEdges(i)
			// Interpolate by the rank's position inside the bucket.
			frac := (rank - float64(cum)) / float64(c)
			v := lower + frac*(upper-lower)
			return h.clamp(v)
		}
		cum += c
	}
	return h.maxSeen
}

// bucketEdges returns the interpolation range of bucket i, tightened by
// the observed extrema.
func (h *Histogram) bucketEdges(i int) (lower, upper float64) {
	switch {
	case i == 0:
		lower, upper = 0, h.bounds[0]
	case i == len(h.bounds):
		// Overflow bucket: everything above the last bound, capped by the
		// largest value actually seen.
		lower, upper = h.bounds[len(h.bounds)-1], h.maxSeen
	default:
		lower, upper = h.bounds[i-1], h.bounds[i]
	}
	if lower < h.minSeen {
		lower = h.minSeen
	}
	if upper > h.maxSeen {
		upper = h.maxSeen
	}
	if upper < lower {
		upper = lower
	}
	return lower, upper
}

func (h *Histogram) clamp(v float64) float64 {
	if v < h.minSeen {
		return h.minSeen
	}
	if v > h.maxSeen {
		return h.maxSeen
	}
	return v
}

// Buckets returns the upper bounds and cumulative counts in Prometheus
// histogram form: cumulative[i] counts observations ≤ bounds[i], and the
// overflow bucket is folded into the implicit +Inf bucket (== Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]uint64, len(h.bounds))
	cum := uint64(0)
	for i := range h.bounds {
		cum += h.counts[i]
		cumulative[i] = cum
	}
	return bounds, cumulative
}
