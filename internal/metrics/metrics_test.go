package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLatencyQuantiles(t *testing.T) {
	var r LatencyRecorder
	for i := 1; i <= 100; i++ {
		r.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.75, 75.25},
	}
	for _, c := range cases {
		if got := r.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestLatencyEmpty(t *testing.T) {
	var r LatencyRecorder
	if r.Quantile(0.5) != 0 || r.Mean() != 0 || r.Count() != 0 {
		t.Error("empty recorder should report zeros")
	}
}

func TestLatencyNegativeClamped(t *testing.T) {
	var r LatencyRecorder
	r.Observe(-1)
	if r.Min() != 0 {
		t.Errorf("negative latency not clamped: min=%v", r.Min())
	}
}

func TestSummary(t *testing.T) {
	var r LatencyRecorder
	for _, v := range []float64{0.010, 0.020, 0.030, 0.040} {
		r.Observe(v)
	}
	s := r.Summarize()
	if s.Min != 0.010 || s.Max != 0.040 || s.Count != 4 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-0.025) > 1e-12 {
		t.Errorf("mean = %v, want 0.025", s.Mean)
	}
}

func TestGoodputMeter(t *testing.T) {
	g := NewGoodputMeter(0)
	g.ServeOK(100, 5)
	g.ServeOK(100, 10)
	if got := g.Goodput(); math.Abs(got-20) > 1e-9 {
		t.Errorf("goodput = %v, want 20", got)
	}
	g.Drop(50, 10)
	if got := g.DropRate(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("drop rate = %v, want 0.2", got)
	}
	g.CloseAt(20)
	if got := g.Goodput(); math.Abs(got-10) > 1e-9 {
		t.Errorf("goodput after CloseAt = %v, want 10", got)
	}
}

func TestGoodputEmpty(t *testing.T) {
	g := NewGoodputMeter(3)
	if g.Goodput() != 0 || g.DropRate() != 0 {
		t.Error("fresh meter should report zeros")
	}
}

func TestUtilizationTracker(t *testing.T) {
	u := NewUtilizationTracker(0)
	u.Register("gpu0")
	u.Register("gpu1")
	u.AddBusy("gpu0", 0, 5)
	got := u.Utilization(10)
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
	per := u.PerResource(10)
	if per["gpu0"] != 0.5 || per["gpu1"] != 0 {
		t.Errorf("per-resource = %v", per)
	}
}

func TestUtilizationClamped(t *testing.T) {
	u := NewUtilizationTracker(0)
	u.AddBusy("gpu0", 0, 100)
	if got := u.Utilization(10); got != 1 {
		t.Errorf("utilization = %v, want clamped to 1", got)
	}
}

// Regression: busy time credited at dispatch must not count past the
// measurement horizon. The seed summed durations, so a batch dispatched
// just before the end of a run credited its full service time and
// utilization saturated at the per-resource clamp instead of reporting
// the true fraction.
func TestUtilizationClampsBusyToHorizon(t *testing.T) {
	u := NewUtilizationTracker(0)
	u.Register("gpu0")
	// Dispatched at t=9.5 with 10s of service: only 0.5s lies inside the
	// [0, 10] measurement window.
	u.AddBusy("gpu0", 9.5, 10)
	if got, want := u.Utilization(10), 0.05; math.Abs(got-want) > 1e-9 {
		t.Errorf("utilization = %v, want %v (busy clamped to horizon)", got, want)
	}
	per := u.PerResource(10)
	if got, want := per["gpu0"], 0.05; math.Abs(got-want) > 1e-9 {
		t.Errorf("per-resource = %v, want %v", got, want)
	}
	// Work entirely before the tracking window start counts as zero.
	v := NewUtilizationTracker(5)
	v.AddBusy("gpu0", 0, 4)
	if got := v.Utilization(10); got != 0 {
		t.Errorf("utilization = %v, want 0 for pre-window busy time", got)
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var r LatencyRecorder
		for _, v := range raw {
			r.Observe(float64(v))
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := r.Quantile(q)
			if v < prev || v < r.Min() || v > r.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
