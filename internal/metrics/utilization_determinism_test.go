package metrics

import "testing"

// utilizationFixture spreads busy fractions 0.1, 0.2, ... across eight
// resources, added in the given order. The fractions are chosen so that
// float summation order changes the low bits ((0.1+0.2)+0.3 ≠
// 0.1+(0.2+0.3)).
func utilizationFixture(order []int) *UtilizationTracker {
	u := NewUtilizationTracker(0)
	for _, i := range order {
		name := string(rune('a' + i))
		u.AddBusy(name, 0, float64(i+1)/10)
	}
	return u
}

// TestUtilizationIsOrderIndependent pins the fix for the mean-utilization
// sum: it walked the busy map in iteration order, and float addition is
// non-associative, so identical trackers could report utilizations
// differing in the last bits from run to run — enough to break
// byte-identical experiment output. The sum now walks sorted resource
// names; reverting that makes the repeated and permuted sums below
// disagree with near certainty.
func TestUtilizationIsOrderIndependent(t *testing.T) {
	reference := utilizationFixture([]int{0, 1, 2, 3, 4, 5, 6, 7}).Utilization(1)
	if reference <= 0 {
		t.Fatalf("fixture utilization = %v, want positive", reference)
	}
	// Same tracker contents, inserted in reverse and shuffled orders: the
	// map holds identical spans, so the sum must be bitwise identical.
	for _, order := range [][]int{
		{7, 6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 2, 7, 1, 5, 4},
	} {
		if got := utilizationFixture(order).Utilization(1); got != reference {
			t.Fatalf("insertion order %v: utilization %v ≠ reference %v", order, got, reference)
		}
	}
	// Repeated calls on one tracker re-walk the map; every call must agree.
	u := utilizationFixture([]int{0, 1, 2, 3, 4, 5, 6, 7})
	for i := 0; i < 24; i++ {
		if got := u.Utilization(1); got != reference {
			t.Fatalf("call %d: utilization %v ≠ reference %v — summation order is nondeterministic", i, got, reference)
		}
	}
}
