package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantileInterpolationPinned pins LatencyRecorder.Quantile to linear
// interpolation between closest ranks (position q·(n−1)) against
// hand-computed values. Nearest-rank semantics — which the doc comment
// once promised — would return 2 and 4 for the middle cases below, not
// the interpolated 2.2 and 3.4.
func TestQuantileInterpolationPinned(t *testing.T) {
	var r LatencyRecorder
	for _, v := range []float64{5, 1, 4, 2, 3} { // unsorted on purpose
		r.Observe(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1},       // min
		{1, 5},       // max
		{0.5, 3},     // pos 2.0 — exact order statistic
		{0.3, 2.2},   // pos 1.2 — blend of samples[1]=2 and samples[2]=3
		{0.6, 3.4},   // pos 2.4 — blend of samples[2]=3 and samples[3]=4
		{0.875, 4.5}, // pos 3.5 — midpoint of samples[3]=4 and samples[4]=5
	}
	for _, c := range cases {
		if got := r.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v (linear interpolation)", c.q, got, c.want)
		}
	}
}

func TestLogHistogramBounds(t *testing.T) {
	h := NewLogHistogram(1, 1024, 11) // powers of two
	bounds, _ := h.Buckets()
	want := 1.0
	for i, b := range bounds {
		if math.Abs(b-want) > 1e-9*want {
			t.Fatalf("bound[%d] = %v, want %v", i, b, want)
		}
		want *= 2
	}
	if g := h.Growth(); math.Abs(g-2) > 1e-9 {
		t.Errorf("growth = %v, want 2", g)
	}
}

func TestLogHistogramEmptyAndEdges(t *testing.T) {
	h := NewLogHistogram(1e-3, 10, 20)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(-5) // clamped to 0, lands in bucket 0
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative clamp: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	h.Observe(1e6) // overflow bucket
	if got := h.Quantile(1); got != 1e6 {
		t.Errorf("overflow max quantile = %v, want 1e6", got)
	}
	_, cum := h.Buckets()
	if cum[len(cum)-1] != 1 { // the overflow observation is not ≤ any bound
		t.Errorf("cumulative last = %d, want 1 (overflow excluded)", cum[len(cum)-1])
	}
}

func TestLogHistogramPanicsOnBadShape(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		n      int
	}{
		{0, 1, 10}, {1, 1, 10}, {2, 1, 10}, {1, 2, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLogHistogram(%v,%v,%d) did not panic", c.lo, c.hi, c.n)
				}
			}()
			NewLogHistogram(c.lo, c.hi, c.n)
		}()
	}
}

// TestLogHistogramQuantileProperty checks the histogram's quantiles
// against the exact recorder on random workloads: for in-range samples the
// approximation must land within one bucket (a factor of Growth²,
// covering the case where the exact interpolated quantile straddles a
// bucket edge) of the exact value.
func TestLogHistogramQuantileProperty(t *testing.T) {
	const lo, hi = 1e-4, 10.0
	qs := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := NewLogHistogram(lo, hi, 40)
		var r LatencyRecorder
		n := 100 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			// Log-uniform across the bucket range, the adversarial case for
			// log-spaced buckets.
			v := lo * math.Pow(hi/lo, rng.Float64())
			h.Observe(v)
			r.Observe(v)
		}
		tol := h.Growth() * h.Growth()
		for _, q := range qs {
			exact := r.Quantile(q)
			approx := h.Quantile(q)
			if approx > exact*tol+1e-12 || approx < exact/tol-1e-12 {
				t.Errorf("seed %d n %d: Quantile(%v) = %v, exact %v (outside ×%.3f tolerance)",
					seed, n, q, approx, exact, tol)
			}
		}
		if h.Count() != uint64(n) {
			t.Errorf("count %d, want %d", h.Count(), n)
		}
		if math.Abs(h.Mean()-r.Mean()) > 1e-9*r.Mean() {
			t.Errorf("mean %v != exact %v", h.Mean(), r.Mean())
		}
	}
}

// TestLogHistogramQuantileMonotone: quantiles must be non-decreasing in q.
func TestLogHistogramQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewLogHistogram(1e-3, 1, 16)
	for i := 0; i < 1000; i++ {
		h.Observe(rng.Float64())
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev-1e-12 {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}
