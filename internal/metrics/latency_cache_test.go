package metrics

import (
	"math/rand"
	"sort"
	"testing"
)

// exhaustiveQuantile recomputes the type-7 quantile from scratch — the
// oracle the cached-sort fast path must match exactly.
func exhaustiveQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	hi := lo
	if float64(lo) < pos {
		hi = lo + 1
	}
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// TestQuantileCacheMatchesExhaustiveResort interleaves Observe and
// Quantile calls and pins every read to the exhaustive re-sort oracle:
// the dirty-flag cache must be invisible except in cost.
func TestQuantileCacheMatchesExhaustiveResort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var r LatencyRecorder
	var raw []float64
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	for i := 0; i < 2000; i++ {
		v := rng.Float64()
		r.Observe(v)
		raw = append(raw, v)
		// Read mid-stream at irregular intervals so the cache is
		// exercised in both dirty and clean states, including repeated
		// reads with no new samples.
		if i%7 == 0 {
			for _, q := range qs {
				got := r.Quantile(q)
				want := exhaustiveQuantile(raw, q)
				if got != want {
					t.Fatalf("after %d samples: Quantile(%v) = %v, want exhaustive %v", i+1, q, got, want)
				}
				if again := r.Quantile(q); again != got {
					t.Fatalf("repeated Quantile(%v) changed: %v then %v", q, got, again)
				}
			}
		}
	}
}

// TestQuantileDoesNotReorderSamples pins the fix for the in-place sort:
// quantile reads must leave the record-order view untouched.
func TestQuantileDoesNotReorderSamples(t *testing.T) {
	var r LatencyRecorder
	in := []float64{0.5, 0.1, 0.9, 0.3, 0.7}
	for _, v := range in {
		r.Observe(v)
	}
	_ = r.Quantile(0.5)
	_ = r.Summarize()
	got := r.Samples()
	for i, v := range in {
		if got[i] != v {
			t.Fatalf("Quantile reordered samples: %v, want record order %v", got, in)
		}
	}
}
