// Package metrics collects serving statistics: request latencies, goodput,
// GPU utilization, and dollar cost. All aggregation is exact (samples are
// retained) because experiment populations are modest; quantiles therefore
// match the paper's box-plot semantics precisely.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// LatencyRecorder accumulates per-request completion latencies (seconds).
// The zero value is ready to use.
type LatencyRecorder struct {
	samples []float64
	// sorted caches an ordered copy of samples so repeated quantile reads
	// (every /metrics scrape calls Quantile several times) cost O(n log n)
	// once per batch of new observations, not per call — and the
	// record-order view in samples is never reordered.
	sorted []float64
	dirty  bool
}

// Observe records one latency sample. Negative values are clamped to zero:
// they can only arise from floating-point jitter at batch boundaries.
func (r *LatencyRecorder) Observe(lat float64) {
	if lat < 0 {
		lat = 0
	}
	r.samples = append(r.samples, lat)
	r.dirty = true
}

// Count reports the number of samples observed.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Samples returns the observations in record order (the live slice; do
// not mutate). Quantile never reorders it.
func (r *LatencyRecorder) Samples() []float64 { return r.samples }

func (r *LatencyRecorder) ensureSorted() {
	if !r.dirty && len(r.sorted) == len(r.samples) {
		return
	}
	r.sorted = append(r.sorted[:0], r.samples...)
	sort.Float64s(r.sorted)
	r.dirty = false
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between closest ranks (the "type 7" estimator NumPy and R
// default to): the quantile position is q·(n−1), and a fractional position
// blends the two neighbouring order statistics. It returns 0 for an empty
// recorder.
func (r *LatencyRecorder) Quantile(q float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	s := r.sorted
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min returns the smallest sample (0 if empty).
func (r *LatencyRecorder) Min() float64 { return r.Quantile(0) }

// Max returns the largest sample (0 if empty).
func (r *LatencyRecorder) Max() float64 { return r.Quantile(1) }

// Mean returns the arithmetic mean (0 if empty).
func (r *LatencyRecorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range r.samples {
		sum += s
	}
	return sum / float64(len(r.samples))
}

// Summary is a five-number latency summary plus the mean, in seconds.
type Summary struct {
	Min, P25, Median, P75, Max, Mean float64
	Count                            int
}

// Summarize computes the five-number summary of the recorded latencies.
func (r *LatencyRecorder) Summarize() Summary {
	return Summary{
		Min:    r.Quantile(0),
		P25:    r.Quantile(0.25),
		Median: r.Quantile(0.5),
		P75:    r.Quantile(0.75),
		Max:    r.Quantile(1),
		Mean:   r.Mean(),
		Count:  r.Count(),
	}
}

// String renders the summary in milliseconds for human-readable tables.
func (s Summary) String() string {
	return fmt.Sprintf("min=%.1fms p25=%.1fms med=%.1fms p75=%.1fms max=%.1fms (n=%d)",
		s.Min*1e3, s.P25*1e3, s.Median*1e3, s.P75*1e3, s.Max*1e3, s.Count)
}

// GoodputMeter tracks served/dropped samples over a virtual-time horizon.
type GoodputMeter struct {
	Served  int // completed within SLO
	Dropped int // dropped by admission control or missed SLO
	start   float64
	end     float64
}

// NewGoodputMeter starts a meter at virtual time start.
func NewGoodputMeter(start float64) *GoodputMeter {
	return &GoodputMeter{start: start, end: start}
}

// ServeOK records n samples completing within SLO at virtual time t.
func (g *GoodputMeter) ServeOK(n int, t float64) {
	g.Served += n
	if t > g.end {
		g.end = t
	}
}

// Drop records n samples dropped or SLO-violated at virtual time t.
func (g *GoodputMeter) Drop(n int, t float64) {
	g.Dropped += n
	if t > g.end {
		g.end = t
	}
}

// CloseAt extends the measurement horizon to t (used when the run ends at a
// fixed wall-clock boundary rather than with the last completion).
func (g *GoodputMeter) CloseAt(t float64) {
	if t > g.end {
		g.end = t
	}
}

// Goodput reports served samples per second of elapsed virtual time.
func (g *GoodputMeter) Goodput() float64 {
	d := g.end - g.start
	if d <= 0 {
		return 0
	}
	return float64(g.Served) / d
}

// DropRate reports the fraction of offered samples that were dropped.
func (g *GoodputMeter) DropRate() float64 {
	total := g.Served + g.Dropped
	if total == 0 {
		return 0
	}
	return float64(g.Dropped) / float64(total)
}

// busySpan is one contiguous busy interval of a resource in virtual time.
type busySpan struct {
	start, end float64
}

// UtilizationTracker records busy intervals per resource so experiments
// can report average GPU utilization over a horizon. Intervals (not bare
// sums) are kept because work dispatched near the end of a run extends
// past the measurement horizon: crediting its full duration would count
// busy time outside [start, end] and saturate the reported fraction.
type UtilizationTracker struct {
	busy  map[string][]busySpan
	since float64
}

// NewUtilizationTracker starts tracking at virtual time start.
func NewUtilizationTracker(start float64) *UtilizationTracker {
	return &UtilizationTracker{busy: make(map[string][]busySpan), since: start}
}

// AddBusy credits d seconds of busy time to resource name beginning at
// virtual time start.
func (u *UtilizationTracker) AddBusy(name string, start, d float64) {
	if d < 0 {
		d = 0
	}
	u.busy[name] = append(u.busy[name], busySpan{start: start, end: start + d})
}

// busyWithin sums the spans' overlap with the measurement window
// [u.since, end].
func (u *UtilizationTracker) busyWithin(spans []busySpan, end float64) float64 {
	total := 0.0
	for _, s := range spans {
		lo, hi := s.start, s.end
		if lo < u.since {
			lo = u.since
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// Utilization reports mean busy fraction across all tracked resources over
// [start, end]. Resources that never reported busy time count as idle only
// if they were registered via Register.
func (u *UtilizationTracker) Utilization(end float64) float64 {
	horizon := end - u.since
	if horizon <= 0 || len(u.busy) == 0 {
		return 0
	}
	// Sum in sorted-name order: float addition is non-associative, so a
	// map-order walk would smear the low bits differently every run.
	names := make([]string, 0, len(u.busy))
	for name := range u.busy {
		names = append(names, name)
	}
	sort.Strings(names)
	sum := 0.0
	for _, name := range names {
		frac := u.busyWithin(u.busy[name], end) / horizon
		if frac > 1 {
			frac = 1
		}
		sum += frac
	}
	return sum / float64(len(u.busy))
}

// Register ensures a resource appears in the denominator even if always idle.
func (u *UtilizationTracker) Register(name string) {
	if _, ok := u.busy[name]; !ok {
		u.busy[name] = nil
	}
}

// Resources returns the tracked resource names, sorted.
func (u *UtilizationTracker) Resources() []string {
	out := make([]string, 0, len(u.busy))
	for name := range u.busy {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BusySpans returns one resource's raw busy intervals as [start, end]
// pairs in recording order — the ledger side of the flame profiler's
// exact reconcile. The returned slice is a copy.
func (u *UtilizationTracker) BusySpans(name string) [][2]float64 {
	spans := u.busy[name]
	out := make([][2]float64, len(spans))
	for i, s := range spans {
		out[i] = [2]float64{s.start, s.end}
	}
	return out
}

// PerResource returns each resource's busy fraction over [start, end].
func (u *UtilizationTracker) PerResource(end float64) map[string]float64 {
	horizon := end - u.since
	out := make(map[string]float64, len(u.busy))
	for name, spans := range u.busy {
		if horizon <= 0 {
			out[name] = 0
			continue
		}
		frac := u.busyWithin(spans, end) / horizon
		if frac > 1 {
			frac = 1
		}
		out[name] = frac
	}
	return out
}
