package serving

import (
	"math"
	"testing"

	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/trace"
	"e3/internal/workload"
)

func pipelineSetup(t *testing.T, nGPU, batch int) (*sim.Engine, *scheduler.Pipeline, optimizer.Plan, *ee.EEModel) {
	t.Helper()
	clus := cluster.Homogeneous(gpu.V100, nGPU)
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	prof := profile.FromDist(m, workload.Mix(0.8), 8000, 1)
	cfg := optimizer.Config{
		Model: m, Profile: prof, Batch: batch, Cluster: clus,
		SLO: 0.1, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
	}
	plan, err := optimizer.MaximizeGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	coll := scheduler.NewCollector(12, 0.1, 0)
	p, err := scheduler.NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	return eng, p, plan, m
}

func TestBatcherDispatchesFullBatch(t *testing.T) {
	eng, p, plan, _ := pipelineSetup(t, 8, 8)
	b := NewBatcher(eng, p, 8, plan.Latency, 0.2)
	gen := workload.NewGenerator(workload.Mix(0.8), 1)
	for i := 0; i < 8; i++ {
		b.Arrive(gen.Next(0, 0.1))
	}
	if b.QueueLen() != 0 {
		t.Errorf("queue = %d after a full batch, want dispatched", b.QueueLen())
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := p.Collector().Good.Served; got != 8 {
		t.Errorf("served = %d, want 8", got)
	}
}

func TestBatcherFlushesUnderSLAPressure(t *testing.T) {
	eng, p, plan, _ := pipelineSetup(t, 8, 8)
	b := NewBatcher(eng, p, 8, plan.Latency, 0.2)
	gen := workload.NewGenerator(workload.Mix(0.8), 2)
	// Only 3 arrivals: never fills the batch; the SLA flush must fire.
	for i := 0; i < 3; i++ {
		b.Arrive(gen.Next(0, 0.1))
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	c := p.Collector()
	if got := c.Good.Served + c.Violations; got != 3 {
		t.Errorf("served+violated = %d, want 3 (partial batch must flush)", got)
	}
	if c.Good.Served != 3 {
		t.Errorf("served = %d of 3 within SLO; flush fired too late", c.Good.Served)
	}
}

func TestBatcherDropsHopelessArrivals(t *testing.T) {
	eng, p, _, _ := pipelineSetup(t, 8, 8)
	// Estimated service far above SLO: everything is hopeless on arrival.
	b := NewBatcher(eng, p, 8, 10.0, 0.2)
	gen := workload.NewGenerator(workload.Mix(0.8), 3)
	for i := 0; i < 5; i++ {
		b.Arrive(gen.Next(0, 0.1))
	}
	if got := p.Collector().Dropped; got != 5 {
		t.Errorf("dropped = %d, want 5", got)
	}
}

func TestRunClosedLoopServesOfferedLoad(t *testing.T) {
	eng, p, plan, _ := pipelineSetup(t, 16, 8)
	gen := workload.NewGenerator(workload.Mix(0.8), 4)
	rate := plan.Goodput * 0.7
	c, _ := RunClosedLoop(eng, p, gen, 8, rate, 5, 0.1)
	total := c.Good.Served + c.Violations + c.Dropped
	if total == 0 {
		t.Fatal("nothing offered")
	}
	badFrac := float64(c.Violations+c.Dropped) / float64(total)
	if badFrac > 0.02 {
		t.Errorf("at 70%% of planned rate, bad fraction = %v, want ≤ 2%%", badFrac)
	}
	if g := c.Good.Goodput(); math.Abs(g-rate)/rate > 0.1 {
		t.Errorf("goodput %v, want ≈ offered %v", g, rate)
	}
}

func TestRunClosedLoopOverload(t *testing.T) {
	eng, p, plan, _ := pipelineSetup(t, 8, 8)
	gen := workload.NewGenerator(workload.Mix(0.8), 5)
	// 3x the plan: violations/drops must appear.
	c, _ := RunClosedLoop(eng, p, gen, 8, plan.Goodput*3, 3, 0.1)
	if c.Violations+c.Dropped == 0 {
		t.Error("overload produced no violations")
	}
}

func TestMaxGoodputFindsSustainableRate(t *testing.T) {
	var plan optimizer.Plan
	build := func() (*sim.Engine, scheduler.Runner) {
		clus := cluster.Homogeneous(gpu.V100, 8)
		m := ee.NewDeeBERT(model.BERTBase(), 0.4)
		prof := profile.FromDist(m, workload.Mix(0.8), 8000, 1)
		cfg := optimizer.Config{
			Model: m, Profile: prof, Batch: 8, Cluster: clus,
			SLO: 0.1, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
		}
		var err error
		plan, err = optimizer.MaximizeGoodput(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		coll := scheduler.NewCollector(12, 0.1, 0)
		p, err := scheduler.NewPipeline(eng, clus, m, plan, coll)
		if err != nil {
			t.Fatal(err)
		}
		return eng, p
	}
	gen := func() *workload.Generator { return workload.NewGenerator(workload.Mix(0.8), 6) }
	got := MaxGoodput(build, gen, 8, 0.1, 4, 20000, 0.01)
	if got <= 0 {
		t.Fatal("no sustainable rate found")
	}
	// Achieved should be within a factor of the planner's estimate.
	if got < plan.Goodput*0.5 || got > plan.Goodput*1.5 {
		t.Errorf("measured max goodput %v vs planned %v — outside 0.5–1.5x band", got, plan.Goodput)
	}
}

func TestRunOpenLoopBursty(t *testing.T) {
	eng, p, plan, _ := pipelineSetup(t, 16, 8)
	p.Collector().Audit = audit.NewLedger()
	b := NewBatcher(eng, p, 8, plan.Latency, 0.2)
	arr := trace.Bursty(trace.DefaultBursty(800), 20, 7)
	gen := workload.NewGenerator(workload.Mix(0.8), 7)
	gen.SetAudit(p.Collector().Audit)
	c, _ := RunOpenLoop(eng, p, b, arr, gen, 0.1)
	total := c.Good.Served + c.Violations + c.Dropped
	if total != len(arr) {
		t.Fatalf("accounted %d of %d arrivals", total, len(arr))
	}
	if err := c.AuditReport().Err(); err != nil {
		t.Error(err)
	}
	if c.Good.Served == 0 {
		t.Fatal("bursty run served nothing")
	}
	// Bursty trace at modest average: utilization must be low (Fig 19).
	if u := c.Util.Utilization(eng.Now()); u > 0.5 {
		t.Errorf("utilization %v under bursty trace, expected < 0.5", u)
	}
}
