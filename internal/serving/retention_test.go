package serving

import (
	"strings"
	"testing"

	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/trace"
	"e3/internal/workload"
)

// tailOf exposes the queue's full backing array so tests can assert that
// samples which left the queue were actually zeroed rather than stranded
// alive beyond len.
func tailOf(b *Batcher) []workload.Sample {
	return b.queue[len(b.queue):cap(b.queue)]
}

// Regression: flush rebuilt the queue with `kept := b.queue[:0]` and never
// cleared the vacated tail, so every shed sample stayed alive in the
// backing array until a future append happened to overwrite it — retained
// memory that grew with drop volume on long-horizon runs. The fix zeroes
// the tail in place; this test fails if that zeroing is reverted.
func TestBatcherFlushZeroesShedTail(t *testing.T) {
	eng := sim.NewEngine()
	f := &fakeRunner{coll: scheduler.NewCollector(12, 1, 0)}
	b := NewBatcher(eng, f, 100, 0.01, 0.2)

	// Head is comfortably viable; the rest become hopeless by t=0.015.
	eng.At(0, func() {
		b.Arrive(workload.Sample{ID: 1, Arrival: 0, Deadline: 10})
		for i := int64(2); i <= 6; i++ {
			b.Arrive(workload.Sample{ID: i, Arrival: 0, Deadline: 0.02})
		}
	})
	eng.At(0.015, func() { b.flush() })
	if err := eng.Run(0.016); err != nil {
		t.Fatal(err)
	}

	if f.coll.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5 hopeless samples shed", f.coll.Dropped)
	}
	if len(b.queue) != 1 || b.queue[0].ID != 1 {
		t.Fatalf("queue after flush = %v, want only the viable head", b.queue)
	}
	for i, s := range tailOf(b) {
		if s != (workload.Sample{}) {
			t.Fatalf("backing array slot %d retains shed sample %+v after flush", len(b.queue)+i, s)
		}
	}
}

// Regression: dispatch advanced the queue with `b.queue = b.queue[n:]`,
// stranding every dispatched prefix in the backing array and shedding
// capacity until the next realloc. The in-place compaction must leave the
// remainder at the front and nothing live beyond len.
func TestBatcherDispatchCompactsAndZeroesQueue(t *testing.T) {
	eng := sim.NewEngine()
	f := &fakeRunner{coll: scheduler.NewCollector(12, 1, 0)}
	b := NewBatcher(eng, f, 4, 0.01, 0.2)

	eng.At(0, func() {
		for i := int64(1); i <= 6; i++ {
			b.Arrive(workload.Sample{ID: i, Arrival: 0, Deadline: 10})
		}
	})
	if err := eng.Run(0.001); err != nil {
		t.Fatal(err)
	}

	if len(f.batches) != 1 || len(f.batches[0]) != 4 {
		t.Fatalf("batches = %v, want one full batch of 4", f.batches)
	}
	if len(b.queue) != 2 || b.queue[0].ID != 5 || b.queue[1].ID != 6 {
		t.Fatalf("queue remainder = %v, want samples 5,6 at the front", b.queue)
	}
	for i, s := range tailOf(b) {
		if s != (workload.Sample{}) {
			t.Fatalf("backing array slot %d retains dispatched sample %+v", len(b.queue)+i, s)
		}
	}
}

// poolingRunner returns every ingested batch to the pool after copying its
// contents, the way the pipeline runner does once completions and
// survivors are copied out.
type poolingRunner struct {
	fakeRunner
	pool *workload.BatchPool
}

func (r *poolingRunner) Ingest(batch []workload.Sample) {
	r.batches = append(r.batches, append([]workload.Sample(nil), batch...))
	r.pool.Put(batch)
}

// TestBatcherPoolRoundTrip pins the pooled dispatch contract: recycled
// arrays must carry exactly the queued samples (fully overwritten, exact
// length) and the second dispatch must be served from the free list.
func TestBatcherPoolRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	pool := workload.NewBatchPool()
	r := &poolingRunner{fakeRunner: fakeRunner{coll: scheduler.NewCollector(12, 1, 0)}, pool: pool}
	b := NewBatcher(eng, r, 4, 0.01, 0.2)
	b.SetPool(pool)

	eng.At(0, func() {
		for i := int64(1); i <= 8; i++ {
			b.Arrive(workload.Sample{ID: i, Arrival: 0, Deadline: 10})
		}
	})
	if err := eng.Run(0.001); err != nil {
		t.Fatal(err)
	}

	if len(r.batches) != 2 {
		t.Fatalf("dispatched %d batches, want 2", len(r.batches))
	}
	want := int64(1)
	for _, batch := range r.batches {
		for _, s := range batch {
			if s.ID != want {
				t.Fatalf("pooled dispatch reordered or corrupted samples: got ID %d, want %d", s.ID, want)
			}
			want++
		}
	}
	gets, hits := pool.Stats()
	if gets != 2 || hits != 1 {
		t.Fatalf("pool stats gets=%d hits=%d, want 2 gets with the second served from the free list", gets, hits)
	}
}

// Regression: RunOpenLoop discarded the engine's error, so an event-limit
// abort produced a silently truncated collector. The driver must surface
// the abort and must not clobber a stricter caller-set limit with its own
// backstop.
func TestRunOpenLoopPropagatesEventLimitAbort(t *testing.T) {
	eng := sim.NewEngine()
	eng.SetEventLimit(3)
	f := &fakeRunner{coll: scheduler.NewCollector(12, 1, 0)}
	b := NewBatcher(eng, f, 4, 0.01, 0.2)
	gen := workload.NewGenerator(workload.Mix(0.8), 1)
	arr := trace.Arrivals{0.001, 0.002, 0.003, 0.004, 0.005, 0.006}

	_, err := RunOpenLoop(eng, f, b, arr, gen, 1.0)
	if err == nil {
		t.Fatal("event-limit abort was swallowed; want an error naming the pending backlog")
	}
	if !strings.Contains(err.Error(), "pending") {
		t.Fatalf("abort error %q does not report the pending event count", err)
	}
	if got := eng.EventLimit(); got != 3 {
		t.Fatalf("driver clobbered the caller's event limit: got %d, want 3", got)
	}
}

// BenchmarkBatcherFlush measures the shed-and-rebuild path: half the queue
// hopeless, half kept, rebuilt in place each iteration.
func BenchmarkBatcherFlush(b *testing.B) {
	eng := sim.NewEngine()
	f := &fakeRunner{coll: scheduler.NewCollector(12, 1, 0)}
	bt := NewBatcher(eng, f, 1024, 0.01, 0.2)
	samples := make([]workload.Sample, 64)
	for i := range samples {
		d := 1000.0
		if i%2 == 1 {
			d = 0.001 // hopeless at t=0: shed on every flush
		}
		samples[i] = workload.Sample{ID: int64(i + 1), Arrival: 0, Deadline: d}
	}
	bt.flushAt = -1 // a live-timer sentinel so flush never re-arms an event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.queue = append(bt.queue[:0], samples...)
		bt.flush()
	}
}
