// Package serving is E3's end-to-end inference front door (§4): dynamic
// batching over open-loop arrival traces, closed-loop drivers, the
// sustained-goodput search the evaluation uses, and an HTTP/JSON API.
package serving

import (
	"math"

	"e3/internal/audit"
	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/workload"
)

// Batcher implements the paper's dynamic batching: queue incoming requests
// and dispatch when either the target batch size is reached or the queued
// inputs would violate their SLA if not immediately scheduled. Requests
// that cannot possibly be served in time are dropped (§3.1, as in
// Clockwork).
type Batcher struct {
	eng    *sim.Engine
	runner scheduler.Runner
	// Batch is the target batch size.
	Batch int
	// EstService is the expected service time once dispatched; arrivals
	// whose remaining slack is below it are dropped, and queued heads
	// force dispatch when their slack runs down to it.
	EstService float64
	// SlackFrac reserves SLO headroom (paper: 20%).
	SlackFrac float64

	queue []workload.Sample
	// flushGen invalidates in-flight flush timers: the sim engine has no
	// cancellation, so each armed timer captures the generation it was
	// armed under and fires as a no-op if a dispatch or re-arm superseded
	// it. flushAt is the fire time of the live timer (+Inf when none).
	flushGen int
	flushAt  float64
	// pool optionally recycles dispatched batch slices through the runner
	// (nil = allocate per dispatch, the pre-fast-path behavior; pooling
	// never changes dispatched values, only allocation reuse).
	pool *workload.BatchPool
}

// NewBatcher wires a dynamic batcher in front of a runner.
func NewBatcher(eng *sim.Engine, r scheduler.Runner, batch int, estService, slackFrac float64) *Batcher {
	if batch < 1 {
		batch = 1
	}
	return &Batcher{
		eng: eng, runner: r, Batch: batch, EstService: estService, SlackFrac: slackFrac,
		flushAt: math.Inf(1),
	}
}

// ledger returns the lifecycle ledger shared through the collector (nil
// when auditing is off; audit methods are nil-safe).
func (b *Batcher) ledger() *audit.Ledger { return b.runner.Collector().Audit }

// SetPool attaches a batch pool; dispatched slices are drawn from it and
// the runner (which owns them from dispatch on) returns them when done.
// A nil pool restores per-dispatch allocation.
func (b *Batcher) SetPool(p *workload.BatchPool) { b.pool = p }

// Arrive accepts one request at the current virtual time.
func (b *Batcher) Arrive(s workload.Sample) {
	now := b.eng.Now()
	if b.deadlineHopeless(s, now) {
		b.runner.Collector().Drop(s, now, audit.ReasonAdmission)
		return
	}
	b.queue = append(b.queue, s)
	b.ledger().Queued(s.ID, now)
	b.runner.Collector().Attr.Queued(s, now)
	if len(b.queue) >= b.Batch {
		b.dispatch(b.Batch)
		return
	}
	b.armFlush()
}

// backlogged runners report their expected queueing delay so admission
// control can shed load the cluster cannot absorb in time (Clockwork-style
// dropping, §3.1).
type backlogged interface {
	BacklogDelay() float64
}

// effectiveService is the expected time from dispatch to completion
// including the runner's current backlog. Admission control and the flush
// timer must use the same estimate: if the flush fire time ignored
// backlog it would fire after queued samples had already become hopeless,
// shedding load that was viable at arrival.
func (b *Batcher) effectiveService() float64 {
	est := b.EstService
	if bl, ok := b.runner.(backlogged); ok {
		est += bl.BacklogDelay()
	}
	return est
}

// deadlineHopeless reports whether a sample can no longer meet its SLA
// even if dispatched immediately, accounting for the runner's backlog.
func (b *Batcher) deadlineHopeless(s workload.Sample, now float64) bool {
	slack := (s.Deadline - now) * (1 - b.SlackFrac)
	return slack < b.effectiveService()
}

// dispatch sends the first n queued samples to the runner and re-arms the
// flush timer for the new queue head: the old timer tracked the
// dispatched head's fire time, and with heterogeneous SLOs the new head's
// forced-dispatch point can be earlier.
func (b *Batcher) dispatch(n int) {
	if n > len(b.queue) {
		n = len(b.queue)
	}
	if n == 0 {
		return
	}
	batch := b.pool.Get(n)
	copy(batch, b.queue[:n])
	// Compact the queue in place instead of advancing the slice: an
	// advancing slice strands the dispatched prefix in the backing array
	// (alive but unreachable) and sheds capacity until the next realloc —
	// on hour-long traces that is steady allocation churn plus retained
	// memory for already-dispatched samples.
	m := copy(b.queue, b.queue[n:])
	clearSamples(b.queue[m:])
	b.queue = b.queue[:m]
	// The head entered the queue at its arrival (admission happens in
	// Arrive), so head wait = now − arrival.
	b.runner.Collector().Trace.QueueWait(len(batch), batch[0].Arrival, b.eng.Now())
	b.runner.Ingest(batch)
	b.disarmFlush()
	b.armFlush()
}

// clearSamples zeroes a slice's elements so samples that left the queue
// do not stay alive through the backing array.
func clearSamples(s []workload.Sample) {
	for i := range s {
		s[i] = workload.Sample{}
	}
}

// disarmFlush invalidates any in-flight flush timer.
func (b *Batcher) disarmFlush() {
	b.flushGen++
	b.flushAt = math.Inf(1)
}

// headFireAt is the time the queue head's slack runs down to the
// effective service estimate — the last moment a partial dispatch keeps
// its SLA reachable. Fire 2% of the estimate early: at the exact boundary
// floating-point rounding can land the recomputed slack an ulp below the
// estimate and the flush would shed the head instead of dispatching it.
// The early slack (1.02x) sits safely inside the pressure check's 1.05x
// tolerance, so the flush still dispatches rather than re-arming forever.
func (b *Batcher) headFireAt() float64 {
	return b.queue[0].Deadline - 1.02*b.effectiveService()/(1-b.SlackFrac)
}

// armFlush schedules the SLA-pressure check for the queue head. A live
// timer that already fires at or before the head's deadline point is kept
// (an early fire merely re-checks and re-arms); a stale later timer is
// superseded.
func (b *Batcher) armFlush() {
	if len(b.queue) == 0 {
		return
	}
	fireAt := b.headFireAt()
	if b.flushAt <= fireAt {
		return
	}
	b.flushGen++
	b.flushAt = fireAt
	gen := b.flushGen
	delay := fireAt - b.eng.Now()
	if delay < 0 {
		delay = 0
	}
	b.eng.After(delay, func() {
		if gen != b.flushGen {
			return // superseded by a dispatch or a re-arm
		}
		b.flushAt = math.Inf(1)
		b.flush()
	})
}

// flush dispatches a partial batch under SLA pressure.
func (b *Batcher) flush() {
	now := b.eng.Now()
	// Shed anything already hopeless, dispatch the rest if the head is
	// under pressure. The rebuild reuses the queue's backing array, and
	// the vacated tail is zeroed: without that, every shed sample stayed
	// alive in the array's tail until a future append overwrote it — on
	// long-horizon runs, retained memory for requests the system had
	// already flushed.
	kept := b.queue[:0]
	for _, s := range b.queue {
		if b.deadlineHopeless(s, now) {
			b.runner.Collector().Drop(s, now, audit.ReasonSLAFlush)
			continue
		}
		kept = append(kept, s)
	}
	clearSamples(b.queue[len(kept):])
	b.queue = kept
	if len(b.queue) == 0 {
		return
	}
	head := b.queue[0]
	slack := (head.Deadline - now) * (1 - b.SlackFrac)
	if slack <= b.effectiveService()*1.05 {
		b.dispatch(b.Batch) // dispatch re-arms for the next head
		return
	}
	b.armFlush()
}

// Flush force-dispatches all queued samples (end of run).
func (b *Batcher) Flush() {
	for len(b.queue) > 0 {
		b.dispatch(b.Batch)
	}
}

// QueueLen reports the current queue depth.
func (b *Batcher) QueueLen() int { return len(b.queue) }
