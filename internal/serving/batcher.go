// Package serving is E3's end-to-end inference front door (§4): dynamic
// batching over open-loop arrival traces, closed-loop drivers, the
// sustained-goodput search the evaluation uses, and an HTTP/JSON API.
package serving

import (
	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/workload"
)

// Batcher implements the paper's dynamic batching: queue incoming requests
// and dispatch when either the target batch size is reached or the queued
// inputs would violate their SLA if not immediately scheduled. Requests
// that cannot possibly be served in time are dropped (§3.1, as in
// Clockwork).
type Batcher struct {
	eng    *sim.Engine
	runner scheduler.Runner
	// Batch is the target batch size.
	Batch int
	// EstService is the expected service time once dispatched; arrivals
	// whose remaining slack is below it are dropped, and queued heads
	// force dispatch when their slack runs down to it.
	EstService float64
	// SlackFrac reserves SLO headroom (paper: 20%).
	SlackFrac float64

	queue    []workload.Sample
	flushArm bool
}

// NewBatcher wires a dynamic batcher in front of a runner.
func NewBatcher(eng *sim.Engine, r scheduler.Runner, batch int, estService, slackFrac float64) *Batcher {
	if batch < 1 {
		batch = 1
	}
	return &Batcher{eng: eng, runner: r, Batch: batch, EstService: estService, SlackFrac: slackFrac}
}

// Arrive accepts one request at the current virtual time.
func (b *Batcher) Arrive(s workload.Sample) {
	now := b.eng.Now()
	if b.deadlineHopeless(s, now) {
		b.runner.Collector().Drop(s, now)
		return
	}
	b.queue = append(b.queue, s)
	if len(b.queue) >= b.Batch {
		b.dispatch(b.Batch)
		return
	}
	b.armFlush()
}

// backlogged runners report their expected queueing delay so admission
// control can shed load the cluster cannot absorb in time (Clockwork-style
// dropping, §3.1).
type backlogged interface {
	BacklogDelay() float64
}

// deadlineHopeless reports whether a sample can no longer meet its SLA
// even if dispatched immediately, accounting for the runner's backlog.
func (b *Batcher) deadlineHopeless(s workload.Sample, now float64) bool {
	est := b.EstService
	if bl, ok := b.runner.(backlogged); ok {
		est += bl.BacklogDelay()
	}
	slack := (s.Deadline - now) * (1 - b.SlackFrac)
	return slack < est
}

// dispatch sends the first n queued samples to the runner.
func (b *Batcher) dispatch(n int) {
	if n > len(b.queue) {
		n = len(b.queue)
	}
	if n == 0 {
		return
	}
	batch := make([]workload.Sample, n)
	copy(batch, b.queue[:n])
	b.queue = b.queue[n:]
	b.runner.Ingest(batch)
}

// armFlush schedules the SLA-pressure check for the queue head.
func (b *Batcher) armFlush() {
	if b.flushArm || len(b.queue) == 0 {
		return
	}
	b.flushArm = true
	head := b.queue[0]
	// Fire when the head's slack is about to run out.
	fireAt := head.Deadline - b.EstService/(1-b.SlackFrac)
	delay := fireAt - b.eng.Now()
	if delay < 0 {
		delay = 0
	}
	b.eng.After(delay, func() {
		b.flushArm = false
		b.flush()
	})
}

// flush dispatches a partial batch under SLA pressure.
func (b *Batcher) flush() {
	now := b.eng.Now()
	// Shed anything already hopeless, dispatch the rest if the head is
	// under pressure.
	kept := b.queue[:0]
	for _, s := range b.queue {
		if b.deadlineHopeless(s, now) {
			b.runner.Collector().Drop(s, now)
			continue
		}
		kept = append(kept, s)
	}
	b.queue = kept
	if len(b.queue) == 0 {
		return
	}
	head := b.queue[0]
	slack := (head.Deadline - now) * (1 - b.SlackFrac)
	if slack <= b.EstService*1.05 {
		b.dispatch(b.Batch)
	}
	b.armFlush()
}

// Flush force-dispatches all queued samples (end of run).
func (b *Batcher) Flush() {
	for len(b.queue) > 0 {
		b.dispatch(b.Batch)
	}
}

// QueueLen reports the current queue depth.
func (b *Batcher) QueueLen() int { return len(b.queue) }
