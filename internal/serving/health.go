package serving

// Readiness and flight-recorder endpoints. /v1/health is the machine-
// readable readiness probe a fleet registry polls (plan loaded, replan
// loop alive, last-audit verdict, error-budget state); /v1/debug/bundle
// serves the flight recorder's most recent diagnostic bundle.

import (
	"net/http"

	"e3/internal/slo"
)

// AttachRecorder exposes a flight recorder through /v1/debug/bundle.
func (a *API) AttachRecorder(rec *slo.Recorder) {
	a.mu.Lock()
	a.recorder = rec
	a.mu.Unlock()
}

// HealthAudit is the last audit run's verdict.
type HealthAudit struct {
	OK         bool `json:"ok"`
	Samples    int  `json:"samples"`
	Violations int  `json:"violations"`
}

// HealthFlame is the last flame reconciliation's verdict: whether the
// compute profile accounted for every device's busy and idle time exactly
// (zero integer-nanosecond residual against the utilization ledger).
type HealthFlame struct {
	OK            bool  `json:"ok"`
	Devices       int   `json:"devices"`
	ResidualNanos int64 `json:"residual_nanos"`
}

// HealthReplan reports the replan loop's state.
type HealthReplan struct {
	// Alive marks a control plane whose loop has completed at least one
	// planner invocation.
	Alive       bool `json:"alive"`
	Invocations int  `json:"invocations"`
	PlanChanges int  `json:"plan_changes"`
}

// HealthResponse is the /v1/health body. Ready is the single bit a load
// balancer keys on; the component blocks explain it.
type HealthResponse struct {
	Ready      bool   `json:"ready"`
	Model      string `json:"model"`
	PlanLoaded bool   `json:"plan_loaded"`
	PlanGPUs   int    `json:"plan_gpus"`

	Audit  *HealthAudit        `json:"audit,omitempty"`
	Flame  *HealthFlame        `json:"flame,omitempty"`
	Replan *HealthReplan       `json:"replan,omitempty"`
	Budget *slo.BudgetSnapshot `json:"slo_budget,omitempty"`
	Fleet  *FleetStatus        `json:"fleet,omitempty"`
}

// handleHealthV1 reports readiness: 200 when the plan is loaded, any
// attached audit verdict is clean, and any attached replan loop has run;
// 503 otherwise. Optional subsystems that are simply absent do not fail
// the probe — a server booted without -audit is still ready.
func (a *API) handleHealthV1(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	resp := HealthResponse{
		Model:      a.model.Name,
		PlanLoaded: len(a.plan.Splits) > 0,
		PlanGPUs:   a.plan.GPUs,
	}
	ready := resp.PlanLoaded
	if a.auditRep != nil {
		resp.Audit = &HealthAudit{
			OK:         a.auditRep.OK(),
			Samples:    a.auditRep.Samples,
			Violations: len(a.auditRep.Violations),
		}
		ready = ready && resp.Audit.OK
	}
	if a.flameStat.Checked {
		resp.Flame = &HealthFlame{
			OK:            a.flameStat.OK(),
			Devices:       a.flameStat.Devices,
			ResidualNanos: a.flameStat.Residual,
		}
		ready = ready && resp.Flame.OK
	}
	if a.cp != nil {
		// A provenance-only control plane (static boot plan, no replan
		// loop configured) carries no loop artifacts; only gate readiness
		// on loop liveness when the loop was supposed to run.
		loopConfigured := a.cp.Replans > 0 || a.cp.PlanChanges > 0 ||
			a.cp.Forecast != nil || a.cp.Diffs != nil || a.cp.Budget != nil
		if loopConfigured {
			resp.Replan = &HealthReplan{
				Alive:       a.cp.Replans > 0,
				Invocations: a.cp.Replans,
				PlanChanges: a.cp.PlanChanges,
			}
			ready = ready && resp.Replan.Alive
		}
		resp.Budget = a.cp.Budget.Snapshot()
	}
	if a.fleet != nil {
		// The fleet block carries one row per replica; a run whose
		// conservation invariants failed is not servable.
		resp.Fleet = a.fleet
		ready = ready && a.fleet.Conserved
	}
	resp.Ready = ready
	if !ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, resp)
}

// BundleResponse is the /v1/debug/bundle body: how many triggers have
// fired and, when at least one has, the most recent bundle.
type BundleResponse struct {
	Triggers int         `json:"triggers"`
	Bundle   *slo.Bundle `json:"bundle,omitempty"`
}

// handleDebugBundle serves the flight recorder's most recent diagnostic
// bundle. 404 when no recorder is attached; an attached recorder with no
// triggers yet returns {"triggers": 0}.
func (a *API) handleDebugBundle(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.recorder == nil {
		http.Error(w, "no flight recorder attached", http.StatusNotFound)
		return
	}
	writeJSON(w, BundleResponse{
		Triggers: a.recorder.TriggerCount(),
		Bundle:   a.recorder.Last(),
	})
}
