package serving

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/workload"
)

func testAPI(t *testing.T) *API {
	t.Helper()
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	prof := profile.FromDist(m, workload.Mix(0.8), 4000, 1)
	plan, err := optimizer.MaximizeGoodput(optimizer.Config{
		Model: m, Profile: prof, Batch: 8, Cluster: cluster.Homogeneous(gpu.V100, 8),
		SLO: 0.1, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewAPI(m, plan)
}

func TestRESTHealth(t *testing.T) {
	srv := httptest.NewServer(testAPI(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestRESTInfer(t *testing.T) {
	srv := httptest.NewServer(testAPI(t).Handler())
	defer srv.Close()

	post := func(difficulty float64) (InferResponse, int) {
		body, _ := json.Marshal(InferRequest{Difficulty: difficulty})
		resp, err := http.Post(srv.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out InferResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return out, resp.StatusCode
	}

	easy, code := post(0.1)
	if code != http.StatusOK {
		t.Fatalf("easy infer status %d", code)
	}
	if !easy.ExitedEarly || easy.ExitLayer >= 12 {
		t.Errorf("easy input did not exit early: %+v", easy)
	}
	hard, _ := post(0.99)
	if hard.ExitedEarly {
		t.Errorf("hard input exited early: %+v", hard)
	}
	if easy.PredictedLatencyMS >= hard.PredictedLatencyMS {
		t.Errorf("easy latency %v not below hard %v", easy.PredictedLatencyMS, hard.PredictedLatencyMS)
	}
	if easy.ServedBySplit > hard.ServedBySplit {
		t.Errorf("easy served by later split than hard")
	}
}

func TestRESTInferValidation(t *testing.T) {
	srv := httptest.NewServer(testAPI(t).Handler())
	defer srv.Close()

	// Out-of-range difficulty.
	body, _ := json.Marshal(InferRequest{Difficulty: 1.7})
	resp, err := http.Post(srv.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad difficulty status %d, want 400", resp.StatusCode)
	}

	// Malformed JSON.
	resp, err = http.Post(srv.URL+"/v1/infer", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status %d, want 400", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(srv.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET infer status %d, want 405", resp.StatusCode)
	}
}

func TestRESTPlan(t *testing.T) {
	srv := httptest.NewServer(testAPI(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var plan PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	if plan.Model != "DeeBERT" || plan.Batch != 8 || len(plan.Splits) == 0 {
		t.Errorf("plan response: %+v", plan)
	}
	// Splits cover the model contiguously.
	want := 1
	for _, s := range plan.Splits {
		if s.From != want {
			t.Fatalf("split coverage broken: %+v", plan.Splits)
		}
		want = s.To + 1
	}
	if want != 13 {
		t.Fatalf("splits end at %d, want 13", want)
	}
}

func TestRESTStats(t *testing.T) {
	api := testAPI(t)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	for i := 0; i < 5; i++ {
		body, _ := json.Marshal(InferRequest{Difficulty: 0.3})
		resp, err := http.Post(srv.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Served != 5 {
		t.Errorf("served = %d, want 5", stats.Served)
	}
	total := 0
	for _, n := range stats.ExitCounts {
		total += n
	}
	if total != 5 {
		t.Errorf("exit counts sum to %d, want 5", total)
	}
	// Without a boot-time audit the breakdown is present but empty and the
	// audit block is omitted.
	if stats.DropReasons == nil || len(stats.DropReasons) != 0 {
		t.Errorf("drop_reasons = %v, want empty map", stats.DropReasons)
	}
	if stats.Audit != nil {
		t.Errorf("audit block present without AttachAudit: %+v", stats.Audit)
	}
}

func TestRESTStatsAuditBreakdown(t *testing.T) {
	api := testAPI(t)
	l := audit.NewLedger()
	l.Arrived(1, 0)
	l.Completed(1, 0.01, 12)
	l.Arrived(2, 0)
	l.Dropped(2, 0.02, audit.ReasonSLAFlush)
	l.Arrived(3, 0)
	l.Dropped(3, 0.03, audit.ReasonSLAFlush)
	rep := l.Verify()
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	api.AttachAudit(rep)

	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if got := stats.DropReasons[string(audit.ReasonSLAFlush)]; got != 2 {
		t.Errorf("drop_reasons[sla-flush] = %d, want 2", got)
	}
	if stats.Audit == nil {
		t.Fatal("audit block missing after AttachAudit")
	}
	if stats.Audit.Samples != 3 || stats.Audit.Completed != 1 || stats.Audit.Dropped != 2 || stats.Audit.Violations != 0 {
		t.Errorf("audit block = %+v, want {3 1 2 0}", stats.Audit)
	}
}
