package serving

import (
	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/trace"
	"e3/internal/workload"
)

// Flusher is a runner-side hook to drain partial state at end of run.
type Flusher interface{ FlushAll() }

// defaultEventLimit is the runaway backstop installed when the caller did
// not set one: far above any legitimate experiment, so hitting it means a
// scheduling loop, and the error says so instead of spinning forever.
const defaultEventLimit = 50_000_000

// ensureEventLimit installs the backstop unless the caller configured a
// limit already — drivers must not silently clobber a stricter one.
func ensureEventLimit(eng *sim.Engine) {
	if eng.EventLimit() == 0 {
		eng.SetEventLimit(defaultEventLimit)
	}
}

// drainRun runs the engine dry, flushes end-of-run partial state, and runs
// the resulting completions dry too. Any event-limit abort is returned —
// callers must not read results from a run that was cut short.
func drainRun(eng *sim.Engine, r scheduler.Runner, b *Batcher) (*scheduler.Collector, error) {
	ensureEventLimit(eng)
	err := eng.RunAll()
	if b != nil {
		b.Flush()
	}
	if f, ok := r.(Flusher); ok {
		f.FlushAll()
	}
	if err2 := eng.RunAll(); err == nil {
		err = err2
	}
	c := r.Collector()
	c.Good.CloseAt(eng.Now())
	return c, err
}

// RunOpenLoop replays an arrival trace through a dynamic batcher and runs
// the simulation to completion. It returns the runner's collector for
// inspection, and a non-nil error if the engine aborted on its event
// limit (the collector then reflects a truncated run).
func RunOpenLoop(eng *sim.Engine, r scheduler.Runner, b *Batcher, arr trace.Arrivals, gen *workload.Generator, slo float64) (*scheduler.Collector, error) {
	for _, at := range arr {
		at := at
		eng.At(at, func() {
			b.Arrive(gen.Next(eng.Now(), slo))
		})
	}
	return drainRun(eng, r, b)
}

// RunOpenLoopStream is RunOpenLoop over a pull-based arrival stream: one
// self-rescheduling event consumes arrivals one at a time, so an hour at
// 9000 req/s costs one live arrival event instead of 32M pre-scheduled
// closures. Arrival order and times are identical to materializing the
// stream and calling RunOpenLoop.
func RunOpenLoopStream(eng *sim.Engine, r scheduler.Runner, b *Batcher, st trace.Stream, gen *workload.Generator, slo float64) (*scheduler.Collector, error) {
	var step func()
	step = func() {
		b.Arrive(gen.Next(eng.Now(), slo))
		if at, ok := st.Next(); ok {
			eng.At(at, step)
		}
	}
	if at, ok := st.Next(); ok {
		eng.At(at, step)
	}
	return drainRun(eng, r, b)
}

// RunClosedLoop feeds full batches at a fixed offered rate for a horizon
// (closed-loop clients always have inputs waiting, §4). Samples carry the
// SLO deadline so goodput accounting matches the paper's definition. The
// error reports an event-limit abort, as in RunOpenLoop.
func RunClosedLoop(eng *sim.Engine, r scheduler.Runner, gen *workload.Generator, batch int, rate, horizon, slo float64) (*scheduler.Collector, error) {
	// Arrival times are multiples of the interval computed from an integer
	// counter: accumulating `at += interval` drifts by one ulp per step
	// over long horizons, silently dropping (or adding) the final batch.
	interval := float64(batch) / rate
	n := int(horizon/interval + 1e-9)
	for i := 1; i <= n; i++ {
		at := float64(i) * interval
		eng.At(at, func() {
			r.Ingest(gen.Batch(batch, eng.Now(), slo))
		})
	}
	return drainRun(eng, r, nil)
}

// BuildFn constructs a fresh engine + runner pair for one goodput probe.
type BuildFn func() (*sim.Engine, scheduler.Runner)

// MaxGoodput binary-searches the highest offered rate a system sustains
// with at most tolFrac of samples dropped or violating SLO, probing each
// candidate rate with a closed-loop run over the horizon. It returns the
// achieved goodput at the best feasible rate (0 if even idle load fails).
func MaxGoodput(build BuildFn, gen func() *workload.Generator, batch int, slo, horizon, upper, tolFrac float64) float64 {
	probe := func(rate float64) (bool, float64) {
		eng, r := build()
		c, err := RunClosedLoop(eng, r, gen(), batch, rate, horizon, slo)
		if err != nil {
			// An event-limit abort means the probe rate drove the system
			// into a scheduling loop: treat the rate as infeasible.
			return false, 0
		}
		total := c.Good.Served + c.Violations + c.Dropped
		if total == 0 {
			return false, 0
		}
		bad := float64(c.Violations+c.Dropped) / float64(total)
		return bad <= tolFrac, c.Good.Goodput()
	}
	lo, hi := 0.0, upper
	best := 0.0
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		ok, goodput := probe(mid)
		if ok {
			lo = mid
			if goodput > best {
				best = goodput
			}
		} else {
			hi = mid
		}
	}
	return best
}
