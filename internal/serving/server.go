package serving

import (
	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/trace"
	"e3/internal/workload"
)

// Flusher is a runner-side hook to drain partial state at end of run.
type Flusher interface{ FlushAll() }

// RunOpenLoop replays an arrival trace through a dynamic batcher and runs
// the simulation to completion. It returns the runner's collector for
// inspection.
func RunOpenLoop(eng *sim.Engine, r scheduler.Runner, b *Batcher, arr trace.Arrivals, gen *workload.Generator, slo float64) *scheduler.Collector {
	for _, at := range arr {
		at := at
		eng.At(at, func() {
			b.Arrive(gen.Next(eng.Now(), slo))
		})
	}
	eng.SetEventLimit(50_000_000)
	_ = eng.RunAll()
	b.Flush()
	if f, ok := r.(Flusher); ok {
		f.FlushAll()
	}
	_ = eng.RunAll()
	c := r.Collector()
	c.Good.CloseAt(eng.Now())
	return c
}

// RunClosedLoop feeds full batches at a fixed offered rate for a horizon
// (closed-loop clients always have inputs waiting, §4). Samples carry the
// SLO deadline so goodput accounting matches the paper's definition.
func RunClosedLoop(eng *sim.Engine, r scheduler.Runner, gen *workload.Generator, batch int, rate, horizon, slo float64) *scheduler.Collector {
	// Arrival times are multiples of the interval computed from an integer
	// counter: accumulating `at += interval` drifts by one ulp per step
	// over long horizons, silently dropping (or adding) the final batch.
	interval := float64(batch) / rate
	n := int(horizon/interval + 1e-9)
	for i := 1; i <= n; i++ {
		at := float64(i) * interval
		eng.At(at, func() {
			r.Ingest(gen.Batch(batch, eng.Now(), slo))
		})
	}
	eng.SetEventLimit(50_000_000)
	_ = eng.RunAll()
	if f, ok := r.(Flusher); ok {
		f.FlushAll()
	}
	_ = eng.RunAll()
	c := r.Collector()
	c.Good.CloseAt(eng.Now())
	return c
}

// BuildFn constructs a fresh engine + runner pair for one goodput probe.
type BuildFn func() (*sim.Engine, scheduler.Runner)

// MaxGoodput binary-searches the highest offered rate a system sustains
// with at most tolFrac of samples dropped or violating SLO, probing each
// candidate rate with a closed-loop run over the horizon. It returns the
// achieved goodput at the best feasible rate (0 if even idle load fails).
func MaxGoodput(build BuildFn, gen func() *workload.Generator, batch int, slo, horizon, upper, tolFrac float64) float64 {
	probe := func(rate float64) (bool, float64) {
		eng, r := build()
		c := RunClosedLoop(eng, r, gen(), batch, rate, horizon, slo)
		total := c.Good.Served + c.Violations + c.Dropped
		if total == 0 {
			return false, 0
		}
		bad := float64(c.Violations+c.Dropped) / float64(total)
		return bad <= tolFrac, c.Good.Goodput()
	}
	lo, hi := 0.0, upper
	best := 0.0
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		ok, goodput := probe(mid)
		if ok {
			lo = mid
			if goodput > best {
				best = goodput
			}
		} else {
			hi = mid
		}
	}
	return best
}
