package serving

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testFleetStatus(conserved bool) *FleetStatus {
	return &FleetStatus{
		Replicas: 2, Workers: 2, Epochs: 10,
		Minted: 100, Routed: 90, DoorShed: 10,
		Events: 5000, Conserved: conserved,
		Rows: []FleetReplicaStatus{
			{Index: 0, GPUs: "4xV100", Events: 2600, Tenants: []FleetTenantStatus{
				{Tenant: "bert", Routed: 50, Served: 48, Violations: 2, GoodputPS: 480, CapacityPS: 500, BurnRate: 0.4},
			}},
			{Index: 1, GPUs: "2xV100", Events: 2400, Tenants: []FleetTenantStatus{
				{Tenant: "bert", Routed: 40, Served: 40, GoodputPS: 400, CapacityPS: 450, BurnRate: 0.1},
			}},
		},
	}
}

// TestHealthV1FleetRows checks the per-replica rows ride on /v1/health
// and that a conserved fleet leaves readiness intact.
func TestHealthV1FleetRows(t *testing.T) {
	api := testAPI(t)
	api.AttachFleet(testFleetStatus(true))
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	var hr HealthResponse
	if code := getJSONCode(t, srv.URL+"/v1/health", &hr); code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if !hr.Ready || hr.Fleet == nil {
		t.Fatalf("fleet health = %+v", hr)
	}
	if len(hr.Fleet.Rows) != 2 || hr.Fleet.Rows[0].Tenants[0].Tenant != "bert" {
		t.Fatalf("fleet rows = %+v", hr.Fleet.Rows)
	}
	if hr.Fleet.Minted != hr.Fleet.Routed+hr.Fleet.DoorShed {
		t.Fatalf("fleet block broke conservation arithmetic: %+v", hr.Fleet)
	}
}

// TestHealthV1FleetConservationGatesReadiness: a fleet run whose
// invariants failed must fail the probe.
func TestHealthV1FleetConservationGatesReadiness(t *testing.T) {
	api := testAPI(t)
	api.AttachFleet(testFleetStatus(false))
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	var hr HealthResponse
	if code := getJSONCode(t, srv.URL+"/v1/health", &hr); code != http.StatusServiceUnavailable {
		t.Fatalf("unconserved fleet: status %d, want 503", code)
	}
	if hr.Ready {
		t.Fatal("unconserved fleet reported ready")
	}
}

// TestMetricsFleetSeries checks the e3_fleet_* exposition.
func TestMetricsFleetSeries(t *testing.T) {
	api := testAPI(t)
	api.AttachFleet(testFleetStatus(true))
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	wants := []string{
		`e3_fleet_replicas 2`,
		`e3_fleet_workers 2`,
		`e3_fleet_epochs_total 10`,
		`e3_fleet_samples_total{outcome="minted"} 100`,
		`e3_fleet_samples_total{outcome="door_shed"} 10`,
		`e3_fleet_events_total 5000`,
		`e3_fleet_conserved 1`,
		`e3_fleet_replica_events_total{replica="0",gpus="4xV100"} 2600`,
		`e3_fleet_tenant_samples_total{replica="1",tenant="bert",outcome="served"} 40`,
		`e3_fleet_tenant_goodput_per_sec{replica="0",tenant="bert"} 480`,
		`e3_fleet_tenant_burn_rate{replica="1",tenant="bert"} 0.1`,
	}
	for _, want := range wants {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Without a fleet attached, no e3_fleet_* series appear.
	bare := httptest.NewServer(testAPI(t).Handler())
	defer bare.Close()
	resp2, err := http.Get(bare.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(body2), "e3_fleet_") {
		t.Error("e3_fleet_* series rendered with no fleet attached")
	}
}
