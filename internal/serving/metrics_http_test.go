package serving

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"e3/internal/telemetry"
)

func get(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.StatusCode
}

// testTracer records a tiny deterministic run: 3 arrivals, 2 completions,
// 1 drop, execute spans on two stages.
func testTracer(capacity int) *telemetry.Tracer {
	var tr *telemetry.Tracer
	if capacity > 0 {
		tr = telemetry.NewRing(capacity)
	} else {
		tr = telemetry.New()
	}
	tr.Arrive(0.00)
	tr.Arrive(0.01)
	tr.Arrive(0.02)
	tr.QueueWait(2, 0.00, 0.05)
	tr.Execute("v100-0", "V100", 0, 2, 0.05, 0.10)
	tr.Transfer(0, 1, 0.10, 0.11)
	tr.Fuse(1, 1, 0.11, 0.12)
	tr.Execute("v100-1", "V100", 1, 1, 0.12, 0.15)
	tr.Complete(0.10, 0.10)
	tr.Complete(0.15, 0.14)
	tr.Drop(0.02, "admission")
	return tr
}

func TestMetricsWithoutTelemetry(t *testing.T) {
	srv := httptest.NewServer(testAPI(t).Handler())
	defer srv.Close()
	body, code := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE e3_infer_requests_total counter",
		"e3_infer_requests_total 0",
		"# TYPE e3_infer_predicted_latency_seconds histogram",
		"e3_infer_predicted_latency_seconds_count 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// No attached tracer: the simulated-run families must be absent.
	if strings.Contains(body, "e3_sim_") || strings.Contains(body, "e3_trace_") {
		t.Errorf("/metrics exposes sim metrics without a tracer:\n%s", body)
	}
}

func TestMetricsGolden(t *testing.T) {
	api := testAPI(t)
	api.AttachTelemetry(testTracer(0))
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	// One live inference so the live sections are non-trivial too.
	body, _ := json.Marshal(InferRequest{Difficulty: 0.3})
	resp, err := http.Post(srv.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	out, code := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"e3_infer_requests_total 1",
		"e3_infer_predicted_latency_seconds_count 1",
		`e3_sim_samples_total{outcome="arrived"} 3`,
		`e3_sim_samples_total{outcome="completed"} 2`,
		`e3_sim_samples_total{outcome="dropped"} 1`,
		`e3_sim_drops_total{reason="admission"} 1`,
		"# TYPE e3_sim_latency_seconds histogram",
		"e3_sim_latency_seconds_count 2",
		"# TYPE e3_split_batch_size histogram",
		`e3_split_batch_size_count{split="0"} 1`,
		`e3_split_batch_size_count{split="1"} 1`,
		"e3_trace_spans_total 5",
		"e3_trace_spans_evicted_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Histogram bucket lines are cumulative and end with +Inf.
	if !strings.Contains(out, `e3_sim_latency_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("latency histogram missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `e3_split_batch_size_bucket{split="0",le="+Inf"} 1`) {
		t.Errorf("batch histogram missing labeled +Inf bucket")
	}
}

func TestMetricsBucketsCumulative(t *testing.T) {
	api := testAPI(t)
	tr := telemetry.New()
	for _, lat := range []float64{0.001, 0.01, 0.1, 1.0} {
		tr.Complete(lat, lat)
	}
	api.AttachTelemetry(tr)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	out, _ := get(t, srv.URL+"/metrics")

	last := -1
	n := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "e3_sim_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %d after %d in %q", v, last, line)
		}
		last = v
		n++
	}
	if n == 0 {
		t.Fatal("no latency bucket lines")
	}
	if last != 4 {
		t.Fatalf("final cumulative count = %d, want 4", last)
	}
}

func TestTraceEmpty(t *testing.T) {
	srv := httptest.NewServer(testAPI(t).Handler())
	defer srv.Close()
	body, code := get(t, srv.URL+"/v1/trace")
	if code != http.StatusOK {
		t.Fatalf("/v1/trace status %d", code)
	}
	var tr TraceResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TotalRecorded != 0 || tr.Evicted != 0 {
		t.Errorf("counters nonzero with no tracer: %+v", tr)
	}
	if tr.Spans == nil || len(tr.Spans) != 0 {
		t.Errorf("spans = %v, want present-but-empty array", tr.Spans)
	}
	// The JSON must serialize spans as [], not null.
	if !strings.Contains(body, `"spans":[]`) {
		t.Errorf("spans not an empty array in %q", body)
	}
}

func TestTraceGolden(t *testing.T) {
	api := testAPI(t)
	api.AttachTelemetry(testTracer(0))
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	body, _ := get(t, srv.URL+"/v1/trace")
	var tr TraceResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TotalRecorded != 5 || tr.Evicted != 0 || len(tr.Spans) != 5 {
		t.Fatalf("trace response = total %d evicted %d spans %d, want 5/0/5",
			tr.TotalRecorded, tr.Evicted, len(tr.Spans))
	}
	// Recording order preserved; kinds round-trip as strings.
	wantKinds := []string{"queue-wait", "execute", "transfer", "fuse", "execute"}
	for i, s := range tr.Spans {
		if s.Kind != wantKinds[i] {
			t.Fatalf("span %d kind = %q, want %q", i, s.Kind, wantKinds[i])
		}
	}
	if tr.Spans[1].Track != "v100-0" || tr.Spans[1].GPU != "V100" || tr.Spans[1].Batch != 2 || tr.Spans[1].Stage != 0 {
		t.Errorf("execute span fields: %+v", tr.Spans[1])
	}
	if tr.Spans[0].GPU != "" {
		t.Errorf("queue-wait span has GPU %q", tr.Spans[0].GPU)
	}
}

func TestTraceRingWrap(t *testing.T) {
	api := testAPI(t)
	tr := telemetry.NewRing(2)
	for i := 0; i < 5; i++ {
		tr.Execute("g0", "V100", 0, i+1, float64(i), float64(i)+0.5)
	}
	api.AttachTelemetry(tr)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	body, _ := get(t, srv.URL+"/v1/trace")
	var out TraceResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.TotalRecorded != 5 || out.Evicted != 3 {
		t.Fatalf("total %d evicted %d, want 5/3", out.TotalRecorded, out.Evicted)
	}
	if len(out.Spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(out.Spans))
	}
	// Oldest-first: batches 4 then 5 survive.
	if out.Spans[0].Batch != 4 || out.Spans[1].Batch != 5 {
		t.Fatalf("ring order wrong: %+v", out.Spans)
	}
}
