package serving

import (
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/trace"
	"e3/internal/workload"
)

// Property: over a bursty open-loop trace, every minted sample must be
// accounted exactly once — completed or dropped with a classified reason,
// monotone timestamps, balanced per-stage flows — for all three runners.
func TestConservationAcrossRunners(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	dist := workload.Mix(0.8)
	mkClus := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 8) }

	prof := profile.FromDist(m, dist, 8000, 1)
	plan, err := optimizer.MaximizeGoodput(optimizer.Config{
		Model: m, Profile: prof, Batch: 8, Cluster: mkClus(),
		SLO: 0.1, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		est  float64
		mk   func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error)
	}{
		{"pipeline", plan.Latency, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			return scheduler.NewPipeline(eng, mkClus(), m, plan, coll)
		}},
		{"dataparallel", 0.030, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			clus := mkClus()
			devs := make([]int, clus.Size())
			for i := range devs {
				devs[i] = i
			}
			return scheduler.NewDataParallel(eng, clus, m, devs, coll)
		}},
		{"serial", plan.Latency, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			return scheduler.NewSerial(eng, mkClus(), m, plan, coll), nil
		}},
	}
	for _, seed := range []int64{7, 424242} {
		arr := trace.Bursty(trace.DefaultBursty(1500), 15, seed)
		if len(arr) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		for _, tc := range cases {
			rep, c, err := AuditedOpenLoop(tc.mk, 12, arr, dist, tc.est, 0.1, 8, seed)
			if err != nil {
				t.Fatalf("%s/seed=%d: %v", tc.name, seed, err)
			}
			if rep.Samples != len(arr) {
				t.Errorf("%s/seed=%d: ledger tracked %d samples, trace has %d", tc.name, seed, rep.Samples, len(arr))
			}
			if err := rep.Err(); err != nil {
				t.Errorf("%s/seed=%d: %v\n%s", tc.name, seed, err, rep)
			}
			if total := c.Good.Served + c.Violations + c.Dropped; total != len(arr) {
				t.Errorf("%s/seed=%d: collector accounted %d of %d arrivals", tc.name, seed, total, len(arr))
			}
		}
	}
}
