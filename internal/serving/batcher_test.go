package serving

import (
	"testing"

	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/workload"
)

// fakeRunner records ingested batches against a real collector so batcher
// tests can observe dispatch/drop decisions without a cluster.
type fakeRunner struct {
	coll    *scheduler.Collector
	batches [][]workload.Sample
}

func (f *fakeRunner) Ingest(b []workload.Sample)      { f.batches = append(f.batches, b) }
func (f *fakeRunner) Collector() *scheduler.Collector { return f.coll }

func (f *fakeRunner) ingested() int {
	n := 0
	for _, b := range f.batches {
		n += len(b)
	}
	return n
}

// backloggedRunner additionally reports a fixed queueing delay, like the
// serial runner does while a round is in flight.
type backloggedRunner struct {
	fakeRunner
	delay float64
}

func (r *backloggedRunner) BacklogDelay() float64 { return r.delay }

// Regression: a full-batch dispatch must supersede the flush timer armed
// for the old queue head. The seed left the armed flag set, so a sample
// arriving right after a dispatch never got its own (earlier) timer and
// was only examined when the stale timer fired — long past its deadline.
func TestBatcherRearmsFlushAfterFullDispatch(t *testing.T) {
	eng := sim.NewEngine()
	f := &fakeRunner{coll: scheduler.NewCollector(12, 1.0, 0)}
	b := NewBatcher(eng, f, 2, 0.01, 0.2)

	// A and B fill the batch at t=0 with a lax 1s SLO: the timer armed for
	// A fires at 0.9875, then the pair dispatches immediately.
	eng.At(0, func() {
		b.Arrive(workload.Sample{ID: 1, Arrival: 0, Deadline: 1.0})
		b.Arrive(workload.Sample{ID: 2, Arrival: 0, Deadline: 1.0})
	})
	// C arrives just after with a tight 50ms SLO. Its forced-dispatch
	// point is t≈0.0385; the stale timer from A fires at 0.9875, when C is
	// hopeless.
	eng.At(0.001, func() {
		b.Arrive(workload.Sample{ID: 3, Arrival: 0.001, Deadline: 0.051})
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if f.coll.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0 (stale flush timer shed a viable sample)", f.coll.Dropped)
	}
	if got := f.ingested(); got != 3 {
		t.Errorf("ingested = %d samples, want 3", got)
	}
}

// Regression: the flush fire time must include the runner's backlog, as
// admission control already does. The seed computed the fire time from
// EstService alone, so with a backlogged runner the timer fired after the
// head's effective slack had run out and the flush shed it instead of
// dispatching it.
func TestBatcherFlushTimerAccountsForBacklog(t *testing.T) {
	eng := sim.NewEngine()
	r := &backloggedRunner{
		fakeRunner: fakeRunner{coll: scheduler.NewCollector(12, 0.08, 0)},
		delay:      0.05,
	}
	b := NewBatcher(eng, r, 8, 0.01, 0.2)

	// Viable at arrival: slack 0.08·0.8 = 0.064 ≥ effective service 0.06.
	// The forced-dispatch point with backlog is t=0.005; ignoring backlog
	// it is t=0.0675, by which time slack (0.01) < 0.06 and the sample is
	// shed as hopeless.
	eng.At(0, func() {
		b.Arrive(workload.Sample{ID: 1, Arrival: 0, Deadline: 0.08})
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if r.coll.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0 (flush timer ignored backlog)", r.coll.Dropped)
	}
	if got := r.ingested(); got != 1 {
		t.Errorf("ingested = %d samples, want 1", got)
	}
}

// Regression: closed-loop arrival times must come from an integer counter.
// The seed accumulated `at += interval` in floating point, so over longer
// horizons the final batch drifted past the horizon and was dropped:
// batch=1 at rate 10 over 2s offered 19 batches instead of 20.
func TestRunClosedLoopOffersExactBatchCount(t *testing.T) {
	eng := sim.NewEngine()
	f := &fakeRunner{coll: scheduler.NewCollector(12, 0.1, 0)}
	gen := workload.NewGenerator(workload.Mix(0.8), 1)
	_, _ = RunClosedLoop(eng, f, gen, 1, 10, 2, 0.1)
	if got, want := len(f.batches), 20; got != want {
		t.Fatalf("offered %d batches, want %d (float drift dropped the final interval)", got, want)
	}
}
