package serving

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/forecast"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/workload"
)

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestPlanEndpointEmptyHistory: without a control plane, /v1/plan has no
// provenance or replans blocks; with a fresh (empty) one, the replan block
// is present with an empty-but-non-null history.
func TestPlanEndpointEmptyHistory(t *testing.T) {
	api := testAPI(t)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	var bare map[string]json.RawMessage
	getJSON(t, srv.URL+"/v1/plan", &bare)
	if _, ok := bare["provenance"]; ok {
		t.Error("provenance present without an attached control plane")
	}
	if _, ok := bare["replans"]; ok {
		t.Error("replans present without an attached control plane")
	}

	api.AttachControlPlane(&ControlPlane{Diffs: optimizer.NewDiffRing(4)})
	var resp PlanResponse
	getJSON(t, srv.URL+"/v1/plan", &resp)
	if resp.Replans == nil {
		t.Fatal("replans block missing")
	}
	if resp.Replans.Invocations != 0 || resp.Replans.HistoryTotal != 0 {
		t.Errorf("empty control plane reports activity: %+v", resp.Replans)
	}
	if resp.Replans.History == nil || len(resp.Replans.History) != 0 {
		t.Errorf("empty history must be [] not null/non-empty: %v", resp.Replans.History)
	}
}

// TestPlanEndpointPostReplan: provenance and the diff history round-trip
// through /v1/plan after replans.
func TestPlanEndpointPostReplan(t *testing.T) {
	api := testAPI(t)
	// Re-run the planner with provenance attached to get a real trace.
	plan, trace := replanFixture(t)
	ring := optimizer.NewDiffRing(4)
	d := optimizer.DiffPlans(optimizer.Plan{}, plan)
	d.Window, d.At, d.Reason = 0, 0, "initial plan"
	ring.Push(d)
	api.AttachControlPlane(&ControlPlane{
		Provenance: trace, Diffs: ring, Replans: 1, PlanChanges: 1,
	})

	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	var resp PlanResponse
	getJSON(t, srv.URL+"/v1/plan", &resp)
	if resp.Provenance == nil {
		t.Fatal("provenance missing post-replan")
	}
	if resp.Provenance.Objective != "max-goodput" || resp.Provenance.Winner == nil {
		t.Errorf("provenance incomplete: objective=%q winner=%v",
			resp.Provenance.Objective, resp.Provenance.Winner)
	}
	sum := 0
	for _, n := range resp.Provenance.Rejected {
		sum += n
	}
	if sum+resp.Provenance.Feasible != resp.Provenance.Enumerated {
		t.Errorf("provenance accounting broken over the wire: %d + %d != %d",
			sum, resp.Provenance.Feasible, resp.Provenance.Enumerated)
	}
	if resp.Replans == nil || len(resp.Replans.History) != 1 {
		t.Fatalf("replan history: %+v", resp.Replans)
	}
	h := resp.Replans.History[0]
	if !h.Changed || h.Reason != "initial plan" {
		t.Errorf("diff did not round-trip: %+v", h)
	}
}

// TestPlanEndpointRingWrap: a wrapped diff ring reports eviction and
// serves only the retained tail, oldest first.
func TestPlanEndpointRingWrap(t *testing.T) {
	api := testAPI(t)
	ring := optimizer.NewDiffRing(3)
	for i := 0; i < 7; i++ {
		ring.Push(optimizer.PlanDiff{Window: i, Changed: true, Reason: fmt.Sprintf("w%d", i)})
	}
	api.AttachControlPlane(&ControlPlane{Diffs: ring, Replans: 7, PlanChanges: 7, PlanCacheHits: 2, PlanCacheMisses: 5})
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	var resp PlanResponse
	getJSON(t, srv.URL+"/v1/plan", &resp)
	if resp.Replans.HistoryTotal != 7 || resp.Replans.HistoryEvicted != 4 {
		t.Errorf("wrap accounting: %+v", resp.Replans)
	}
	if resp.Replans.PlanCacheHits != 2 || resp.Replans.PlanCacheMisses != 5 {
		t.Errorf("plan-cache counters did not round-trip: %+v", resp.Replans)
	}
	if len(resp.Replans.History) != 3 {
		t.Fatalf("retained %d diffs", len(resp.Replans.History))
	}
	for i, d := range resp.Replans.History {
		if d.Window != i+4 {
			t.Errorf("history[%d] is window %d, want %d (oldest-first)", i, d.Window, i+4)
		}
	}
}

// TestMetricsControlPlaneSeries: the forecast and replan series appear
// with the attached values.
func TestMetricsControlPlaneSeries(t *testing.T) {
	api := testAPI(t)
	est := forecast.NewEstimator(2)
	est.Stats = forecast.NewStats(2)
	est.Method = forecast.MethodPersistence
	est.Observe(profFromSurv(1, 0.5))
	est.Predict()
	est.Observe(profFromSurv(1, 0.4))
	api.AttachControlPlane(&ControlPlane{
		Forecast: est.Stats, Diffs: optimizer.NewDiffRing(4), Replans: 3, PlanChanges: 2,
		PlanCacheHits: 5, PlanCacheMisses: 4,
	})
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	// MAE line: value is (0 + ~0.1)/2; parse rather than string-match the
	// float rendering.
	maeLine := ""
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "e3_forecast_mae ") {
			maeLine = line
		}
	}
	if maeLine == "" {
		t.Error("metrics missing e3_forecast_mae")
	} else {
		var v float64
		if _, err := fmt.Sscanf(maeLine, "e3_forecast_mae %g", &v); err != nil || v < 0.049 || v > 0.051 {
			t.Errorf("e3_forecast_mae = %q, want ~0.05", maeLine)
		}
	}
	for _, want := range []string{
		"e3_forecast_windows_total 1\n",
		"e3_forecast_safety_total{event=\"clamp\"} 0\n",
		"e3_forecast_safety_total{event=\"monotone-fix\"} 0\n",
		"e3_replan_invocations_total 3\n",
		"e3_replan_plan_changes_total 2\n",
		"e3_replan_plan_cache_hits_total 5\n",
		"e3_replan_plan_cache_misses_total 4\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func profFromSurv(surv ...float64) profile.Batch { return profile.NewBatch(surv) }

// replanFixture produces a traced plan for provenance round-trip tests.
func replanFixture(t *testing.T) (optimizer.Plan, *optimizer.SearchTrace) {
	t.Helper()
	tr := &optimizer.SearchTrace{}
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	prof := profile.FromDist(m, workload.Mix(0.8), 4000, 1)
	plan, err := optimizer.MaximizeGoodput(optimizer.Config{
		Model: m, Profile: prof, Batch: 8, Cluster: cluster.Homogeneous(gpu.V100, 8),
		SLO: 0.1, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan, tr
}
