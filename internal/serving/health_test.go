package serving

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"e3/internal/audit"
	"e3/internal/slo"
	"e3/internal/telemetry"
	"e3/internal/workload"
)

func getJSONCode(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealthV1PlanOnly(t *testing.T) {
	srv := httptest.NewServer(testAPI(t).Handler())
	defer srv.Close()
	var hr HealthResponse
	if code := getJSONCode(t, srv.URL+"/v1/health", &hr); code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if !hr.Ready || !hr.PlanLoaded || hr.PlanGPUs == 0 {
		t.Fatalf("plan-only health = %+v", hr)
	}
	// Absent subsystems must be absent, not failing.
	if hr.Audit != nil || hr.Replan != nil || hr.Budget != nil {
		t.Fatalf("absent subsystems rendered: %+v", hr)
	}
}

func TestHealthV1AuditVerdictGatesReadiness(t *testing.T) {
	api := testAPI(t)
	led := audit.NewLedger()
	led.Arrived(1, 0)
	led.Queued(1, 0)
	led.Completed(1, 0.01, 4)
	rep := led.Verify()
	api.AttachAudit(rep)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	var hr HealthResponse
	if code := getJSONCode(t, srv.URL+"/v1/health", &hr); code != http.StatusOK {
		t.Fatalf("clean audit: status %d, want 200", code)
	}
	if hr.Audit == nil || !hr.Audit.OK {
		t.Fatalf("clean audit block = %+v", hr.Audit)
	}

	// A failing verdict must flip readiness to 503.
	rep.Violate("synthetic violation")
	if code := getJSONCode(t, srv.URL+"/v1/health", &hr); code != http.StatusServiceUnavailable {
		t.Fatalf("violated audit: status %d, want 503", code)
	}
	if hr.Ready || hr.Audit.OK || hr.Audit.Violations == 0 {
		t.Fatalf("violated audit health = %+v", hr)
	}
}

func TestHealthV1ReplanAliveAndBudget(t *testing.T) {
	api := testAPI(t)
	bud := slo.NewBudget(0.99, 2.0)
	bud.ObserveWindow(0, 99, 1, 0, 2.0)
	// A control plane with zero invocations means the replan loop never
	// ran: not ready.
	cp := &ControlPlane{Budget: bud}
	api.AttachControlPlane(cp)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	var hr HealthResponse
	if code := getJSONCode(t, srv.URL+"/v1/health", &hr); code != http.StatusServiceUnavailable {
		t.Fatalf("dead replan loop: status %d, want 503", code)
	}
	if hr.Ready || hr.Replan == nil || hr.Replan.Alive {
		t.Fatalf("dead replan health = %+v", hr)
	}
	if hr.Budget == nil || hr.Budget.Windows != 1 {
		t.Fatalf("budget block = %+v", hr.Budget)
	}

	cp.Replans = 3
	cp.PlanChanges = 2
	if code := getJSONCode(t, srv.URL+"/v1/health", &hr); code != http.StatusOK {
		t.Fatalf("live replan loop: status %d, want 200", code)
	}
	if !hr.Ready || !hr.Replan.Alive || hr.Replan.Invocations != 3 || hr.Replan.PlanChanges != 2 {
		t.Fatalf("live replan health = %+v", hr)
	}
}

func TestDebugBundleNoRecorder(t *testing.T) {
	srv := httptest.NewServer(testAPI(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no recorder: status %d, want 404", resp.StatusCode)
	}
}

func TestDebugBundleEmptyAndPostFailure(t *testing.T) {
	api := testAPI(t)
	attr := slo.NewAttribution(4)
	rec := &slo.Recorder{Attr: attr}
	api.AttachRecorder(rec)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	// Attached but never triggered: 200 with zero triggers and no bundle.
	var br BundleResponse
	if code := getJSONCode(t, srv.URL+"/v1/debug/bundle", &br); code != http.StatusOK {
		t.Fatalf("empty recorder: status %d, want 200", code)
	}
	if br.Triggers != 0 || br.Bundle != nil {
		t.Fatalf("empty recorder body = %+v", br)
	}

	// After a failure trigger the bundle appears with its snapshots.
	s := workload.Sample{ID: 9, Arrival: 1.0}
	attr.Queued(s, 1.0)
	attr.Dispatched(s, 1.1, 0)
	attr.Executed(0, []workload.Sample{s}, 1.2, 1.4)
	attr.Completed(s, 1.5)
	rec.Trigger(slo.TriggerAuditViolation, "synthetic", 2.0)

	if code := getJSONCode(t, srv.URL+"/v1/debug/bundle", &br); code != http.StatusOK {
		t.Fatalf("post-failure: status %d, want 200", code)
	}
	if br.Triggers != 1 || br.Bundle == nil {
		t.Fatalf("post-failure body = %+v", br)
	}
	if br.Bundle.Trigger.Reason != slo.TriggerAuditViolation || br.Bundle.Trigger.Detail != "synthetic" {
		t.Fatalf("trigger = %+v", br.Bundle.Trigger)
	}
	if br.Bundle.Attribution == nil || br.Bundle.Attribution.Attributed != 1 {
		t.Fatalf("attribution snapshot = %+v", br.Bundle.Attribution)
	}
}

func TestDebugBundleRingWrap(t *testing.T) {
	// A recorder over a small ring must serve only the span tail and
	// report what the ring evicted, keeping the endpoint bounded.
	api := testAPI(t)
	tr := telemetry.NewRing(8)
	for i := 0; i < 100; i++ {
		tr.Execute("g0", "V100", 0, 4, float64(i), float64(i)+0.5)
	}
	rec := &slo.Recorder{Spans: tr, MaxSpans: 4}
	api.AttachRecorder(rec)
	rec.Trigger(slo.TriggerEngineAbort, "wrap", 100.0)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	var br BundleResponse
	if code := getJSONCode(t, srv.URL+"/v1/debug/bundle", &br); code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	b := br.Bundle
	if b == nil || len(b.Spans) != 4 || b.SpansTotal != 100 || b.SpansDropped != 96 {
		t.Fatalf("ring-wrap bundle spans = %+v", b)
	}
	if b.Spans[3].Start != 99 {
		t.Fatalf("bundle tail must end at the newest span, got start %v", b.Spans[3].Start)
	}
}
