package serving

import (
	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/flame"
	"e3/internal/optimizer"
	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/slo"
	"e3/internal/telemetry"
	"e3/internal/trace"
	"e3/internal/workload"
)

// ProfiledOpenLoop replays an arrival trace through a dynamic batcher with
// the lifecycle ledger — and, when non-nil, the span tracer, the
// per-request attribution, and the virtual-time compute profiler — wired
// end to end (generator → batcher → runner → collector), then verifies
// conservation: every minted sample must be completed or dropped exactly
// once, with monotone timestamps and classified drop reasons, the
// tracer's event counts must reconcile with the ledger's totals, every
// attributed breakdown must sum to its request's end-to-end latency, and
// the flame fold must account for every device's busy and idle time
// exactly (all Reconcile hooks fold mismatches into the report). The
// runner is built by mk against the engine and a ledger-carrying
// collector. It returns the verified report and the collector for further
// inspection.
func ProfiledOpenLoop(mk func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error),
	layers int, arr trace.Arrivals, dist workload.Dist, estService, sloDeadline float64, batch int, seed int64,
	tr *telemetry.Tracer, attr *slo.Attribution, fl *flame.Profiler) (*audit.Report, *scheduler.Collector, error) {
	eng := sim.NewEngine()
	coll := scheduler.NewCollector(layers, sloDeadline, 0)
	coll.Audit = audit.NewLedger()
	coll.Trace = tr
	coll.Attr = attr
	coll.Flame = fl
	r, err := mk(eng, coll)
	if err != nil {
		return nil, nil, err
	}
	gen := workload.NewGenerator(dist, seed)
	gen.SetAudit(coll.Audit)
	gen.SetTrace(tr)
	b := NewBatcher(eng, r, batch, estService, 0.2)
	c, err := RunOpenLoop(eng, r, b, arr, gen, sloDeadline)
	if err != nil {
		// A truncated run cannot be audited — conservation is trivially
		// violated when in-flight samples were abandoned mid-event-loop.
		return nil, c, err
	}
	fl.CloseAt(eng.Now())
	rep := c.AuditReport()
	tr.Reconcile(rep)
	attr.Reconcile(rep)
	fl.Reconcile(rep, c.Util)
	return rep, c, nil
}

// ObservedOpenLoop is ProfiledOpenLoop without compute profiling.
func ObservedOpenLoop(mk func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error),
	layers int, arr trace.Arrivals, dist workload.Dist, estService, sloDeadline float64, batch int, seed int64,
	tr *telemetry.Tracer, attr *slo.Attribution) (*audit.Report, *scheduler.Collector, error) {
	return ProfiledOpenLoop(mk, layers, arr, dist, estService, sloDeadline, batch, seed, tr, attr, nil)
}

// TracedOpenLoop is ObservedOpenLoop without per-request attribution.
func TracedOpenLoop(mk func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error),
	layers int, arr trace.Arrivals, dist workload.Dist, estService, slo float64, batch int, seed int64,
	tr *telemetry.Tracer) (*audit.Report, *scheduler.Collector, error) {
	return ObservedOpenLoop(mk, layers, arr, dist, estService, slo, batch, seed, tr, nil)
}

// AuditedOpenLoop is TracedOpenLoop without telemetry.
func AuditedOpenLoop(mk func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error),
	layers int, arr trace.Arrivals, dist workload.Dist, estService, slo float64, batch int, seed int64) (*audit.Report, *scheduler.Collector, error) {
	return TracedOpenLoop(mk, layers, arr, dist, estService, slo, batch, seed, nil)
}

// ObservedPlan runs a bursty open-loop conservation audit of an E3 plan
// on the given cluster with the span tracer and per-request attribution
// attached — the self-check and telemetry warm-up e3-serve performs at
// boot before exposing the plan over HTTP. The tracer (commonly a ring)
// ends up holding the run's spans and histograms for the live /metrics
// and /v1/trace endpoints; the attribution ends up holding the run's
// critical-path breakdowns.
func ObservedPlan(clus *cluster.Cluster, m *ee.EEModel, plan optimizer.Plan, dist workload.Dist,
	avgRate, horizon, sloDeadline float64, seed int64,
	tr *telemetry.Tracer, attr *slo.Attribution) (*audit.Report, *scheduler.Collector, error) {
	return ProfiledPlan(clus, m, plan, dist, avgRate, horizon, sloDeadline, seed, tr, attr, nil)
}

// ProfiledPlan is ObservedPlan with the virtual-time compute profiler
// attached as well: the profiler ends up holding the boot run's compute
// profile for the live /v1/flame endpoint, reconciled exactly against the
// run's utilization ledger.
func ProfiledPlan(clus *cluster.Cluster, m *ee.EEModel, plan optimizer.Plan, dist workload.Dist,
	avgRate, horizon, sloDeadline float64, seed int64,
	tr *telemetry.Tracer, attr *slo.Attribution, fl *flame.Profiler) (*audit.Report, *scheduler.Collector, error) {
	arr := trace.Bursty(trace.DefaultBursty(avgRate), horizon, seed)
	return ProfiledOpenLoop(func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
		return scheduler.NewPipeline(eng, clus, m, plan, coll)
	}, m.Base.NumLayers(), arr, dist, plan.Latency, sloDeadline, plan.Batch, seed, tr, attr, fl)
}

// TracedPlan is ObservedPlan without per-request attribution.
func TracedPlan(clus *cluster.Cluster, m *ee.EEModel, plan optimizer.Plan, dist workload.Dist,
	avgRate, horizon, slo float64, seed int64, tr *telemetry.Tracer) (*audit.Report, *scheduler.Collector, error) {
	return ObservedPlan(clus, m, plan, dist, avgRate, horizon, slo, seed, tr, nil)
}

// AuditPlan is TracedPlan without telemetry, returning only the report.
func AuditPlan(clus *cluster.Cluster, m *ee.EEModel, plan optimizer.Plan, dist workload.Dist,
	avgRate, horizon, slo float64, seed int64) (*audit.Report, error) {
	rep, _, err := TracedPlan(clus, m, plan, dist, avgRate, horizon, slo, seed, nil)
	return rep, err
}
