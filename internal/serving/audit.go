package serving

import (
	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/optimizer"
	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/trace"
	"e3/internal/workload"
)

// AuditedOpenLoop replays an arrival trace through a dynamic batcher with
// the lifecycle ledger wired end to end (generator → batcher → runner →
// collector), then verifies conservation: every minted sample must be
// completed or dropped exactly once, with monotone timestamps and
// classified drop reasons. The runner is built by mk against the engine
// and a ledger-carrying collector. It returns the verified report and the
// collector for further inspection.
func AuditedOpenLoop(mk func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error),
	layers int, arr trace.Arrivals, dist workload.Dist, estService, slo float64, batch int, seed int64) (*audit.Report, *scheduler.Collector, error) {
	eng := sim.NewEngine()
	coll := scheduler.NewCollector(layers, slo, 0)
	coll.Audit = audit.NewLedger()
	r, err := mk(eng, coll)
	if err != nil {
		return nil, nil, err
	}
	gen := workload.NewGenerator(dist, seed)
	gen.SetAudit(coll.Audit)
	b := NewBatcher(eng, r, batch, estService, 0.2)
	c := RunOpenLoop(eng, r, b, arr, gen, slo)
	return c.AuditReport(), c, nil
}

// AuditPlan runs a bursty open-loop conservation audit of an E3 plan on
// the given cluster — the self-check e3-serve performs at boot under
// -audit before exposing the plan over HTTP.
func AuditPlan(clus *cluster.Cluster, m *ee.EEModel, plan optimizer.Plan, dist workload.Dist,
	avgRate, horizon, slo float64, seed int64) (*audit.Report, error) {
	arr := trace.Bursty(trace.DefaultBursty(avgRate), horizon, seed)
	rep, _, err := AuditedOpenLoop(func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
		return scheduler.NewPipeline(eng, clus, m, plan, coll)
	}, m.Base.NumLayers(), arr, dist, plan.Latency, slo, plan.Batch, seed)
	return rep, err
}
