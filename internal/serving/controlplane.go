package serving

import (
	"fmt"
	"net/http"

	"e3/internal/forecast"
	"e3/internal/optimizer"
	"e3/internal/slo"
)

// ControlPlane bundles the control-plane observability state a server
// exposes: the active plan's search provenance, the forecaster's accuracy
// telemetry, and the bounded replan history. Any field may be nil; the
// endpoints render what is present.
type ControlPlane struct {
	// Provenance is the search trace of the planning invocation that
	// produced the active plan.
	Provenance *optimizer.SearchTrace
	// Forecast is the estimator's accuracy telemetry.
	Forecast *forecast.Stats
	// Diffs retains the recent plan-diff history; Replans counts planner
	// invocations and PlanChanges the ones that changed the deployment.
	Diffs       *optimizer.DiffRing
	Replans     int
	PlanChanges int
	// PlanCacheHits counts replans answered from the cross-window plan
	// cache; PlanCacheMisses the ones that ran a fresh search.
	PlanCacheHits   int
	PlanCacheMisses int
	// Budget is the replan loop's SLO error-budget accountant.
	Budget *slo.Budget
}

// AttachControlPlane exposes control-plane observability through /v1/plan
// (provenance + replan history) and /metrics (forecast accuracy, safety
// counters, replan counters).
func (a *API) AttachControlPlane(cp *ControlPlane) {
	a.mu.Lock()
	a.cp = cp
	a.mu.Unlock()
}

// ReplanJSON is the /v1/plan replan-history block.
type ReplanJSON struct {
	Invocations     int                  `json:"invocations"`
	PlanChanges     int                  `json:"plan_changes"`
	PlanCacheHits   int                  `json:"plan_cache_hits"`
	PlanCacheMisses int                  `json:"plan_cache_misses"`
	HistoryTotal    int                  `json:"history_total"`
	HistoryEvicted  int                  `json:"history_evicted"`
	History         []optimizer.PlanDiff `json:"history"`
}

// controlPlaneJSON renders the attached control plane into a plan
// response. Caller holds a.mu.
func (a *API) controlPlaneJSON(resp *PlanResponse) {
	if a.cp == nil {
		return
	}
	resp.Provenance = a.cp.Provenance
	rj := &ReplanJSON{
		Invocations:     a.cp.Replans,
		PlanChanges:     a.cp.PlanChanges,
		PlanCacheHits:   a.cp.PlanCacheHits,
		PlanCacheMisses: a.cp.PlanCacheMisses,
		HistoryTotal:    a.cp.Diffs.Total(),
		HistoryEvicted:  a.cp.Diffs.Evicted(),
		History:         []optimizer.PlanDiff{},
	}
	if items := a.cp.Diffs.Items(); items != nil {
		rj.History = items
	}
	resp.Replans = rj
}

// writeControlPlaneMetrics appends the forecast and replan series to a
// /metrics scrape. Caller holds a.mu.
func (a *API) writeControlPlaneMetrics(w http.ResponseWriter) {
	if a.cp == nil {
		return
	}
	if st := a.cp.Forecast; st != nil {
		fmt.Fprintln(w, "# HELP e3_forecast_mae Rolling mean absolute per-layer forecast error.")
		fmt.Fprintln(w, "# TYPE e3_forecast_mae gauge")
		fmt.Fprintf(w, "e3_forecast_mae %g\n", st.MAE())
		fmt.Fprintln(w, "# HELP e3_forecast_mape Rolling mean absolute percentage forecast error (fraction).")
		fmt.Fprintln(w, "# TYPE e3_forecast_mape gauge")
		fmt.Fprintf(w, "e3_forecast_mape %g\n", st.MAPE())
		fmt.Fprintln(w, "# HELP e3_forecast_windows_total Prediction/observation pairs scored.")
		fmt.Fprintln(w, "# TYPE e3_forecast_windows_total counter")
		fmt.Fprintf(w, "e3_forecast_windows_total %d\n", st.Windows())
		fmt.Fprintln(w, "# HELP e3_forecast_safety_total Forecast safety interventions by kind.")
		fmt.Fprintln(w, "# TYPE e3_forecast_safety_total counter")
		fmt.Fprintf(w, "e3_forecast_safety_total{event=\"clamp\"} %d\n", st.ClampHits())
		fmt.Fprintf(w, "e3_forecast_safety_total{event=\"fit-failure\"} %d\n", st.FitFailures())
		fmt.Fprintf(w, "e3_forecast_safety_total{event=\"monotone-fix\"} %d\n", st.MonotoneFixes())
		fmt.Fprintf(w, "e3_forecast_safety_total{event=\"persistence-fallback\"} %d\n", st.PersistenceFallbacks())
	}
	fmt.Fprintln(w, "# HELP e3_replan_invocations_total Planner invocations by the replan loop.")
	fmt.Fprintln(w, "# TYPE e3_replan_invocations_total counter")
	fmt.Fprintf(w, "e3_replan_invocations_total %d\n", a.cp.Replans)
	fmt.Fprintln(w, "# HELP e3_replan_plan_changes_total Replans that changed the deployment.")
	fmt.Fprintln(w, "# TYPE e3_replan_plan_changes_total counter")
	fmt.Fprintf(w, "e3_replan_plan_changes_total %d\n", a.cp.PlanChanges)
	fmt.Fprintln(w, "# HELP e3_replan_plan_cache_hits_total Replans answered from the cross-window plan cache.")
	fmt.Fprintln(w, "# TYPE e3_replan_plan_cache_hits_total counter")
	fmt.Fprintf(w, "e3_replan_plan_cache_hits_total %d\n", a.cp.PlanCacheHits)
	fmt.Fprintln(w, "# HELP e3_replan_plan_cache_misses_total Replans that ran a fresh plan search.")
	fmt.Fprintln(w, "# TYPE e3_replan_plan_cache_misses_total counter")
	fmt.Fprintf(w, "e3_replan_plan_cache_misses_total %d\n", a.cp.PlanCacheMisses)
	if b := a.cp.Budget; b != nil {
		fmt.Fprintln(w, "# HELP e3_slo_budget_target Attainment target the error budget is tracked against.")
		fmt.Fprintln(w, "# TYPE e3_slo_budget_target gauge")
		fmt.Fprintf(w, "e3_slo_budget_target %g\n", b.Target())
		fmt.Fprintln(w, "# HELP e3_slo_budget_windows_total Windows folded into the error budget.")
		fmt.Fprintln(w, "# TYPE e3_slo_budget_windows_total counter")
		fmt.Fprintf(w, "e3_slo_budget_windows_total %d\n", b.Windows())
		fmt.Fprintln(w, "# HELP e3_slo_budget_breaches_total Windows whose burn rate crossed the alert threshold.")
		fmt.Fprintln(w, "# TYPE e3_slo_budget_breaches_total counter")
		fmt.Fprintf(w, "e3_slo_budget_breaches_total %d\n", b.Breaches())
		last := b.Last()
		fmt.Fprintln(w, "# HELP e3_slo_budget_attainment Last window's SLO attainment fraction.")
		fmt.Fprintln(w, "# TYPE e3_slo_budget_attainment gauge")
		fmt.Fprintf(w, "e3_slo_budget_attainment %g\n", last.Attainment)
		fmt.Fprintln(w, "# HELP e3_slo_budget_burn_rate Last window's error-budget burn rate (1 = burning exactly the budget).")
		fmt.Fprintln(w, "# TYPE e3_slo_budget_burn_rate gauge")
		fmt.Fprintf(w, "e3_slo_budget_burn_rate %g\n", last.BurnRate)
		fmt.Fprintln(w, "# HELP e3_slo_budget_remaining Fraction of the cumulative error budget still unspent.")
		fmt.Fprintln(w, "# TYPE e3_slo_budget_remaining gauge")
		fmt.Fprintf(w, "e3_slo_budget_remaining %g\n", last.BudgetRemaining)
		fmt.Fprintln(w, "# HELP e3_slo_budget_exhaustion_seconds Projected seconds until budget exhaustion at the current burn rate (-1 = never).")
		fmt.Fprintln(w, "# TYPE e3_slo_budget_exhaustion_seconds gauge")
		fmt.Fprintf(w, "e3_slo_budget_exhaustion_seconds %g\n", last.ExhaustionIn)
	}
}
