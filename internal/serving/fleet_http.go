package serving

// Fleet observability surface. The fleet tier (internal/fleet, which
// imports serving and therefore cannot be imported back) summarizes a
// completed fleet run into a FleetStatus; the API renders it as
// per-replica rows in /v1/health and e3_fleet_* series on /metrics.

import (
	"fmt"
	"net/http"
)

// FleetTenantStatus is one (replica, tenant) stack's terminal row.
type FleetTenantStatus struct {
	Tenant     string  `json:"tenant"`
	Routed     int     `json:"routed"`
	Served     int     `json:"served"`
	Violations int     `json:"violations"`
	Dropped    int     `json:"dropped"`
	GoodputPS  float64 `json:"goodput_per_sec"`
	CapacityPS float64 `json:"capacity_per_sec"`
	BurnRate   float64 `json:"burn_rate"`
}

// FleetReplicaStatus is one replica's row in /v1/health.
type FleetReplicaStatus struct {
	Index   int                 `json:"index"`
	GPUs    string              `json:"gpus"`
	Events  uint64              `json:"events"`
	Tenants []FleetTenantStatus `json:"tenants"`
}

// FleetStatus summarizes a fleet run for the health and metrics
// endpoints. Conserved reports the fleet-level invariant checks (front
// door conserves, every ledger reconciles, everything drained); a false
// value fails the readiness probe.
type FleetStatus struct {
	Replicas  int                  `json:"replicas"`
	Workers   int                  `json:"workers"`
	Epochs    int                  `json:"epochs"`
	Minted    int                  `json:"minted"`
	Routed    int                  `json:"routed"`
	DoorShed  int                  `json:"door_shed"`
	Events    uint64               `json:"events"`
	Conserved bool                 `json:"conserved"`
	Rows      []FleetReplicaStatus `json:"rows"`
}

// AttachFleet exposes a fleet run's status through /v1/health and
// /metrics.
func (a *API) AttachFleet(fs *FleetStatus) {
	a.mu.Lock()
	a.fleet = fs
	a.mu.Unlock()
}

// writeFleetMetrics renders the e3_fleet_* series. Caller holds a.mu.
func (a *API) writeFleetMetrics(w http.ResponseWriter) {
	fs := a.fleet
	if fs == nil {
		return
	}
	fmt.Fprintln(w, "# HELP e3_fleet_replicas Replica shards in the attached fleet run.")
	fmt.Fprintln(w, "# TYPE e3_fleet_replicas gauge")
	fmt.Fprintf(w, "e3_fleet_replicas %d\n", fs.Replicas)
	fmt.Fprintln(w, "# HELP e3_fleet_workers Shard-runner worker count of the attached fleet run.")
	fmt.Fprintln(w, "# TYPE e3_fleet_workers gauge")
	fmt.Fprintf(w, "e3_fleet_workers %d\n", fs.Workers)
	fmt.Fprintln(w, "# HELP e3_fleet_epochs_total Routing epochs executed.")
	fmt.Fprintln(w, "# TYPE e3_fleet_epochs_total counter")
	fmt.Fprintf(w, "e3_fleet_epochs_total %d\n", fs.Epochs)

	fmt.Fprintln(w, "# HELP e3_fleet_samples_total Fleet front-door accounting by outcome.")
	fmt.Fprintln(w, "# TYPE e3_fleet_samples_total counter")
	fmt.Fprintf(w, "e3_fleet_samples_total{outcome=\"minted\"} %d\n", fs.Minted)
	fmt.Fprintf(w, "e3_fleet_samples_total{outcome=\"routed\"} %d\n", fs.Routed)
	fmt.Fprintf(w, "e3_fleet_samples_total{outcome=\"door_shed\"} %d\n", fs.DoorShed)

	fmt.Fprintln(w, "# HELP e3_fleet_events_total Simulator events processed, summed across shards.")
	fmt.Fprintln(w, "# TYPE e3_fleet_events_total counter")
	fmt.Fprintf(w, "e3_fleet_events_total %d\n", fs.Events)

	fmt.Fprintln(w, "# HELP e3_fleet_conserved Whether the fleet's conservation invariants held (1 = yes).")
	fmt.Fprintln(w, "# TYPE e3_fleet_conserved gauge")
	conserved := 0
	if fs.Conserved {
		conserved = 1
	}
	fmt.Fprintf(w, "e3_fleet_conserved %d\n", conserved)

	fmt.Fprintln(w, "# HELP e3_fleet_replica_events_total Events processed per replica shard.")
	fmt.Fprintln(w, "# TYPE e3_fleet_replica_events_total counter")
	for _, row := range fs.Rows {
		fmt.Fprintf(w, "e3_fleet_replica_events_total{replica=\"%d\",gpus=\"%s\"} %d\n",
			row.Index, promEscape(row.GPUs), row.Events)
	}

	fmt.Fprintln(w, "# HELP e3_fleet_tenant_samples_total Per-replica per-tenant outcomes of the attached fleet run.")
	fmt.Fprintln(w, "# TYPE e3_fleet_tenant_samples_total counter")
	for _, row := range fs.Rows {
		for _, tr := range row.Tenants {
			base := fmt.Sprintf("replica=\"%d\",tenant=\"%s\"", row.Index, promEscape(tr.Tenant))
			fmt.Fprintf(w, "e3_fleet_tenant_samples_total{%s,outcome=\"routed\"} %d\n", base, tr.Routed)
			fmt.Fprintf(w, "e3_fleet_tenant_samples_total{%s,outcome=\"served\"} %d\n", base, tr.Served)
			fmt.Fprintf(w, "e3_fleet_tenant_samples_total{%s,outcome=\"violated\"} %d\n", base, tr.Violations)
			fmt.Fprintf(w, "e3_fleet_tenant_samples_total{%s,outcome=\"dropped\"} %d\n", base, tr.Dropped)
		}
	}

	fmt.Fprintln(w, "# HELP e3_fleet_tenant_goodput_per_sec Goodput per (replica, tenant) stack.")
	fmt.Fprintln(w, "# TYPE e3_fleet_tenant_goodput_per_sec gauge")
	for _, row := range fs.Rows {
		for _, tr := range row.Tenants {
			fmt.Fprintf(w, "e3_fleet_tenant_goodput_per_sec{replica=\"%d\",tenant=\"%s\"} %g\n",
				row.Index, promEscape(tr.Tenant), tr.GoodputPS)
		}
	}

	fmt.Fprintln(w, "# HELP e3_fleet_tenant_burn_rate Final-epoch SLO budget burn per (replica, tenant) stack.")
	fmt.Fprintln(w, "# TYPE e3_fleet_tenant_burn_rate gauge")
	for _, row := range fs.Rows {
		for _, tr := range row.Tenants {
			fmt.Fprintf(w, "e3_fleet_tenant_burn_rate{replica=\"%d\",tenant=\"%s\"} %g\n",
				row.Index, promEscape(tr.Tenant), tr.BurnRate)
		}
	}
}
