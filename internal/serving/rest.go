package serving

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"e3/internal/audit"
	"e3/internal/ee"
	"e3/internal/flame"
	"e3/internal/metrics"
	"e3/internal/optimizer"
	"e3/internal/slo"
	"e3/internal/telemetry"
)

// API serves E3 inference over HTTP/JSON, mirroring the TorchServe REST
// front end the paper's implementation uses (§4). Inference requests carry
// the input's difficulty (the simulation's stand-in for input content);
// the response reports the exit decision and the plan-predicted latency.
type API struct {
	// net/http runs each handler on its own goroutine, so the REST edge is
	// the one place in serving that is genuinely concurrent; the mutex
	// guards only the API's own counters, never event-loop state.
	mu    sync.Mutex //e3:concurrent net/http handlers run on server goroutines
	model *ee.EEModel
	plan  optimizer.Plan

	served     int
	exitCounts map[int]int
	// inferLat buckets the plan-predicted latency of live requests for the
	// /metrics histogram (fixed buckets: a scrape never walks per-request
	// state).
	inferLat *metrics.Histogram
	// auditRep is the verified lifecycle report of a boot-time audit run
	// (nil when the server started without -audit).
	auditRep *audit.Report
	// tracer holds the boot run's spans and histograms for /metrics and
	// /v1/trace (nil when the server started without telemetry).
	tracer *telemetry.Tracer
	// cp holds the control-plane observability state for /v1/plan and
	// /metrics (nil when none is attached).
	cp *ControlPlane
	// recorder holds the flight recorder for /v1/debug/bundle (nil when
	// none is attached).
	recorder *slo.Recorder
	// flameProf/flameStat hold the boot-time traced run's virtual-time
	// compute profile and its exact-reconcile verdict for /v1/flame and
	// /v1/health (nil/zero when the server booted without profiling).
	flameProf *flame.Profile
	flameStat flame.ReconcileStat
	// fleet holds the boot-time fleet run's status for /v1/health rows
	// and e3_fleet_* metrics (nil when the server booted without -fleet).
	fleet *FleetStatus
}

// NewAPI builds the handler set for a planned model.
func NewAPI(m *ee.EEModel, plan optimizer.Plan) *API {
	return &API{
		model: plan.ExecModel(m), plan: plan, exitCounts: make(map[int]int),
		inferLat: metrics.NewLogHistogram(1e-4, 10.0, 40),
	}
}

// Handler returns the routed HTTP handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", a.handleHealth)
	mux.HandleFunc("/v1/infer", a.handleInfer)
	mux.HandleFunc("/v1/plan", a.handlePlan)
	mux.HandleFunc("/v1/stats", a.handleStats)
	mux.HandleFunc("/v1/trace", a.handleTrace)
	mux.HandleFunc("/v1/health", a.handleHealthV1)
	mux.HandleFunc("/v1/flame", a.handleFlameV1)
	mux.HandleFunc("/v1/debug/bundle", a.handleDebugBundle)
	mux.HandleFunc("/metrics", a.handleMetrics)
	return mux
}

func (a *API) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// InferRequest is the /v1/infer body.
type InferRequest struct {
	// Difficulty in [0,1] stands in for the input content; real
	// deployments derive it from the model's own ramp confidences.
	Difficulty float64 `json:"difficulty"`
}

// InferResponse reports the exit decision.
type InferResponse struct {
	ExitLayer          int     `json:"exit_layer"`
	TotalLayers        int     `json:"total_layers"`
	ExitedEarly        bool    `json:"exited_early"`
	ServedBySplit      int     `json:"served_by_split"`
	PredictedLatencyMS float64 `json:"predicted_latency_ms"`
}

func (a *API) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Difficulty < 0 || req.Difficulty > 1 {
		http.Error(w, "difficulty must be in [0,1]", http.StatusBadRequest)
		return
	}
	exit := a.model.ExitLayerFor(req.Difficulty)
	lat := 0.0
	splitIdx := 0
	for i, s := range a.plan.Splits {
		lat += s.StageTime
		splitIdx = i
		if exit <= s.To {
			break
		}
		lat += s.CommTime
	}
	a.mu.Lock()
	a.served++
	a.exitCounts[exit]++
	a.inferLat.Observe(lat)
	a.mu.Unlock()

	writeJSON(w, InferResponse{
		ExitLayer:          exit,
		TotalLayers:        a.model.Base.NumLayers(),
		ExitedEarly:        exit < a.model.Base.NumLayers(),
		ServedBySplit:      splitIdx,
		PredictedLatencyMS: lat * 1e3,
	})
}

// PlanResponse summarizes the active plan, plus — when a control plane is
// attached — the plan's search provenance and the replan history.
type PlanResponse struct {
	Model     string      `json:"model"`
	Batch     int         `json:"batch"`
	GoodputPS float64     `json:"goodput_per_sec"`
	LatencyMS float64     `json:"latency_ms"`
	GPUs      int         `json:"gpus"`
	CostPerS  float64     `json:"cost_per_sec_usd"`
	Splits    []SplitJSON `json:"splits"`

	Provenance *optimizer.SearchTrace `json:"provenance,omitempty"`
	Replans    *ReplanJSON            `json:"replans,omitempty"`
}

// SplitJSON is one planned split.
type SplitJSON struct {
	From     int    `json:"from"`
	To       int    `json:"to"`
	Kind     string `json:"gpu"`
	Replicas int    `json:"replicas"`
}

func (a *API) handlePlan(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	resp := PlanResponse{
		Model:     a.model.Name,
		Batch:     a.plan.Batch,
		GoodputPS: a.plan.Goodput,
		LatencyMS: a.plan.Latency * 1e3,
		GPUs:      a.plan.GPUs,
		CostPerS:  a.plan.CostPerSec,
	}
	for _, s := range a.plan.Splits {
		resp.Splits = append(resp.Splits, SplitJSON{From: s.From, To: s.To, Kind: string(s.Kind), Replicas: s.Replicas})
	}
	a.controlPlaneJSON(&resp)
	writeJSON(w, resp)
}

// AttachAudit exposes a verified lifecycle audit through /v1/stats.
func (a *API) AttachAudit(rep *audit.Report) {
	a.mu.Lock()
	a.auditRep = rep
	a.mu.Unlock()
}

// AuditJSON summarizes a conservation audit for /v1/stats.
type AuditJSON struct {
	Samples    int `json:"samples"`
	Completed  int `json:"completed"`
	Dropped    int `json:"dropped"`
	Violations int `json:"violations"`
}

// StatsResponse reports live counters plus, when the server booted with
// -audit, the lifecycle ledger's per-reason drop breakdown and verdict.
type StatsResponse struct {
	Served      int            `json:"served"`
	ExitCounts  map[int]int    `json:"exit_counts"`
	DropReasons map[string]int `json:"drop_reasons"`
	Audit       *AuditJSON     `json:"audit,omitempty"`
}

func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	counts := make(map[int]int, len(a.exitCounts))
	for k, v := range a.exitCounts {
		counts[k] = v
	}
	resp := StatsResponse{Served: a.served, ExitCounts: counts, DropReasons: map[string]int{}}
	if a.auditRep != nil {
		for reason, n := range a.auditRep.ByReason {
			resp.DropReasons[string(reason)] = n
		}
		resp.Audit = &AuditJSON{
			Samples:    a.auditRep.Samples,
			Completed:  a.auditRep.Completed,
			Dropped:    a.auditRep.Dropped,
			Violations: len(a.auditRep.Violations),
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
