package serving

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"e3/internal/metrics"
	"e3/internal/telemetry"
)

// Live observability endpoints. /metrics serves Prometheus text
// exposition (counters plus fixed-bucket histograms, so a scrape is
// O(buckets) regardless of how many requests the attached run served);
// /v1/trace serves the tracer's ring-buffered recent spans as JSON.

// AttachTelemetry exposes a tracer — typically the ring tracer fed by the
// boot-time simulated run — through /metrics and /v1/trace.
func (a *API) AttachTelemetry(tr *telemetry.Tracer) {
	a.mu.Lock()
	a.tracer = tr
	a.mu.Unlock()
}

// promEscape escapes a Prometheus label value.
func promEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// writePromHistogram renders one histogram in Prometheus exposition
// format. extraLabels must be pre-rendered (`split="0"`) or empty.
func writePromHistogram(w http.ResponseWriter, name, help, extraLabels string, h *metrics.Histogram, typed bool) {
	if typed {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	}
	sep := ""
	if extraLabels != "" {
		sep = ","
	}
	bounds, cum := h.Buckets()
	for i, b := range bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			name, extraLabels, sep, strconv.FormatFloat(b, 'g', -1, 64), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, extraLabels, sep, h.Count())
	if extraLabels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, extraLabels, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, extraLabels, h.Count())
	}
}

func (a *API) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintln(w, "# HELP e3_infer_requests_total Inference requests served over HTTP.")
	fmt.Fprintln(w, "# TYPE e3_infer_requests_total counter")
	fmt.Fprintf(w, "e3_infer_requests_total %d\n", a.served)

	layers := make([]int, 0, len(a.exitCounts))
	for k := range a.exitCounts {
		layers = append(layers, k)
	}
	sort.Ints(layers)
	fmt.Fprintln(w, "# HELP e3_exit_layer_total Requests by early-exit layer.")
	fmt.Fprintln(w, "# TYPE e3_exit_layer_total counter")
	for _, k := range layers {
		fmt.Fprintf(w, "e3_exit_layer_total{layer=\"%d\"} %d\n", k, a.exitCounts[k])
	}

	writePromHistogram(w, "e3_infer_predicted_latency_seconds",
		"Plan-predicted latency of live inference requests.", "", a.inferLat, true)

	a.writeControlPlaneMetrics(w)
	a.writeFlameMetrics(w)
	a.writeFleetMetrics(w)

	if a.tracer == nil {
		return
	}
	arrived, completed, dropped := a.tracer.Counts()
	fmt.Fprintln(w, "# HELP e3_sim_samples_total Samples of the attached simulated run by outcome.")
	fmt.Fprintln(w, "# TYPE e3_sim_samples_total counter")
	fmt.Fprintf(w, "e3_sim_samples_total{outcome=\"arrived\"} %d\n", arrived)
	fmt.Fprintf(w, "e3_sim_samples_total{outcome=\"completed\"} %d\n", completed)
	fmt.Fprintf(w, "e3_sim_samples_total{outcome=\"dropped\"} %d\n", dropped)

	reasons := make([]string, 0, len(a.tracer.DropsByReason()))
	for reason := range a.tracer.DropsByReason() {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	fmt.Fprintln(w, "# HELP e3_sim_drops_total Dropped samples of the attached run by reason.")
	fmt.Fprintln(w, "# TYPE e3_sim_drops_total counter")
	for _, reason := range reasons {
		fmt.Fprintf(w, "e3_sim_drops_total{reason=\"%s\"} %d\n",
			promEscape(reason), a.tracer.DropsByReason()[reason])
	}

	writePromHistogram(w, "e3_sim_latency_seconds",
		"Completion latency of the attached simulated run.", "", a.tracer.LatencyHist(), true)

	stages := a.tracer.Stages()
	first := true
	for _, st := range stages {
		writePromHistogram(w, "e3_split_batch_size",
			"Executed batch sizes per split of the attached run.",
			fmt.Sprintf("split=\"%d\"", st), a.tracer.BatchHist(st), first)
		first = false
	}

	fmt.Fprintln(w, "# HELP e3_trace_spans_total Spans recorded by the tracer (including ring-evicted).")
	fmt.Fprintln(w, "# TYPE e3_trace_spans_total counter")
	fmt.Fprintf(w, "e3_trace_spans_total %d\n", a.tracer.Total())
	fmt.Fprintln(w, "# HELP e3_trace_spans_evicted_total Spans evicted from the ring buffer.")
	fmt.Fprintln(w, "# TYPE e3_trace_spans_evicted_total counter")
	fmt.Fprintf(w, "e3_trace_spans_evicted_total %d\n", a.tracer.Evicted())
}

// SpanJSON is one span of the /v1/trace response.
type SpanJSON struct {
	Track string  `json:"track"`
	Kind  string  `json:"kind"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Stage int     `json:"stage"`
	Batch int     `json:"batch"`
	GPU   string  `json:"gpu,omitempty"`
}

// TraceResponse is the /v1/trace body: the most recent spans the ring
// retains, oldest first.
type TraceResponse struct {
	TotalRecorded uint64     `json:"total_recorded"`
	Evicted       uint64     `json:"evicted"`
	Spans         []SpanJSON `json:"spans"`
}

func (a *API) handleTrace(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	resp := TraceResponse{Spans: []SpanJSON{}}
	if a.tracer != nil {
		resp.TotalRecorded = a.tracer.Total()
		resp.Evicted = a.tracer.Evicted()
		for _, s := range a.tracer.Spans() {
			resp.Spans = append(resp.Spans, SpanJSON{
				Track: s.Track, Kind: s.Kind.String(), Start: s.Start, End: s.End,
				Stage: s.Stage, Batch: s.Batch, GPU: s.GPU,
			})
		}
	}
	writeJSON(w, resp)
}
