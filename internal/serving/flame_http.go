package serving

// /v1/flame serves the boot-time traced run's virtual-time compute
// profile. Unlike -pprof (wall-clock CPU/heap profiles of the server
// process itself), this answers "where did the simulated fleet's
// GPU-seconds go" — the profile is bounded (it is a finished fold, not a
// growing log), so serving it is O(stacks) per request.

import (
	"fmt"
	"net/http"
	"sort"

	"e3/internal/flame"
)

// AttachFlame exposes a compute profile and its reconcile verdict through
// /v1/flame; the verdict also gates /v1/health readiness.
func (a *API) AttachFlame(prof *flame.Profile, stat flame.ReconcileStat) {
	a.mu.Lock()
	a.flameProf = prof
	a.flameStat = stat
	a.mu.Unlock()
}

// FlameResponse is the default (JSON) /v1/flame body.
type FlameResponse struct {
	Reconcile flame.ReconcileStat `json:"reconcile"`
	Profile   *flame.Profile      `json:"profile"`
}

// writeFlameMetrics emits the e3_flame_* rollup series for /metrics:
// per-leaf busy weight, per-cause bubble weight, and the reconcile
// verdict. Silent when no profile is attached. The caller holds a.mu.
func (a *API) writeFlameMetrics(w http.ResponseWriter) {
	if a.flameProf == nil {
		return
	}
	busy, bubble := a.flameProf.Rollup()
	writeLabeled := func(name, help, label string, vals map[string]int64) {
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, label, promEscape(k), vals[k])
		}
	}
	writeLabeled("e3_flame_busy_nanos_total",
		"Virtual busy nanoseconds of the profiled run by leaf frame.", "class", busy)
	writeLabeled("e3_flame_bubble_nanos_total",
		"Virtual idle nanoseconds of the profiled run by bubble cause.", "cause", bubble)
	ok := 0
	if a.flameStat.OK() {
		ok = 1
	}
	fmt.Fprintln(w, "# HELP e3_flame_reconcile_ok Whether the flame profile reconciled exactly against the ledger.")
	fmt.Fprintln(w, "# TYPE e3_flame_reconcile_ok gauge")
	fmt.Fprintf(w, "e3_flame_reconcile_ok %d\n", ok)
	fmt.Fprintln(w, "# HELP e3_flame_residual_nanos Total integer disagreement of the flame reconcile.")
	fmt.Fprintln(w, "# TYPE e3_flame_residual_nanos gauge")
	fmt.Fprintf(w, "e3_flame_residual_nanos %d\n", a.flameStat.Residual)
}

// handleFlameV1 serves the attached profile. ?format=folded returns
// collapsed-stack text, ?format=pprof a gzip profile.proto (loadable in
// `go tool pprof`); the default is the JSON summary with the reconcile
// verdict. 404 when the server booted without profiling.
func (a *API) handleFlameV1(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	prof, stat := a.flameProf, a.flameStat
	a.mu.Unlock()
	if prof == nil {
		http.Error(w, "no compute profile attached", http.StatusNotFound)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, FlameResponse{Reconcile: stat, Profile: prof})
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(prof.Folded())
	case "pprof":
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := prof.WritePprof(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "format must be json, folded, or pprof", http.StatusBadRequest)
	}
}
