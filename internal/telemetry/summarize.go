package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SplitSummary aggregates one split's execute spans.
type SplitSummary struct {
	Stage int
	// Batches is the number of execute spans; Samples the sum of their
	// batch sizes.
	Batches int
	Samples int
	// Tracks is the number of distinct GPUs that served the split.
	Tracks int
	// Busy is total execute time across those GPUs (GPU-seconds).
	Busy float64
	// Util is Busy / (horizon × Tracks): the mean busy fraction of the
	// split's GPUs over the trace horizon.
	Util float64
	// Bubble is the complementary idle time (GPU-seconds): horizon ×
	// Tracks − Busy. This is the quantity E3's pipelining claims to keep
	// near zero.
	Bubble float64
	// MeanBatch is Samples / Batches.
	MeanBatch float64
	// BatchHist counts execute spans by exact batch size.
	BatchHist map[int]int
}

// LaneSummary aggregates one non-execute span kind.
type LaneSummary struct {
	Count int
	Total float64
}

// Mean is the average span duration (0 if none).
func (l LaneSummary) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return l.Total / float64(l.Count)
}

// WaitSummary is the queue-wait distribution ahead of one split: the
// batcher queue for split 0, the merge (fusion) queue for later splits.
type WaitSummary struct {
	Split int
	Count int
	// P50, P90, P99, and Max are nearest-rank percentiles of the wait
	// durations (seconds).
	P50, P90, P99, Max float64
}

// Summary is what e3-trace reports about a trace: the timeline horizon,
// per-split occupancy, and the overhead lanes.
type Summary struct {
	// Start and End bound every span in the trace; Horizon = End − Start.
	Start, End float64
	// GPUTracks counts distinct execute tracks (one per GPU).
	GPUTracks int
	Splits    []SplitSummary
	QueueWait LaneSummary
	Transfer  LaneSummary
	Fuse      LaneSummary
	// Waits is the per-split queue-wait percentile table: split 0 is the
	// dynamic batcher's queue (KindQueueWait spans); split s>0 is the
	// merge queue feeding that split (its KindFuse spans).
	Waits []WaitSummary
}

// Horizon is the trace's virtual-time extent.
func (s Summary) Horizon() float64 { return s.End - s.Start }

// Summarize reduces a span stream to per-split occupancy statistics. The
// horizon is the extent of all spans; each split's utilization denominator
// is that horizon times the number of GPUs that served the split.
func Summarize(spans []Span) Summary {
	var sum Summary
	if len(spans) == 0 {
		return sum
	}
	sum.Start, sum.End = spans[0].Start, spans[0].End
	type splitAcc struct {
		batches, samples int
		busy             float64
		tracks           map[string]bool
		hist             map[int]int
	}
	splits := make(map[int]*splitAcc)
	gpuTracks := make(map[string]bool)
	waitBy := make(map[int][]float64)
	for _, s := range spans {
		if s.Start < sum.Start {
			sum.Start = s.Start
		}
		if s.End > sum.End {
			sum.End = s.End
		}
		switch s.Kind {
		case KindExecute:
			gpuTracks[s.Track] = true
			acc := splits[s.Stage]
			if acc == nil {
				acc = &splitAcc{tracks: make(map[string]bool), hist: make(map[int]int)}
				splits[s.Stage] = acc
			}
			acc.batches++
			acc.samples += s.Batch
			acc.busy += s.Duration()
			acc.tracks[s.Track] = true
			acc.hist[s.Batch]++
		case KindQueueWait:
			sum.QueueWait.Count++
			sum.QueueWait.Total += s.Duration()
			waitBy[0] = append(waitBy[0], s.Duration())
		case KindTransfer:
			sum.Transfer.Count++
			sum.Transfer.Total += s.Duration()
		case KindFuse:
			sum.Fuse.Count++
			sum.Fuse.Total += s.Duration()
			waitBy[s.Stage] = append(waitBy[s.Stage], s.Duration())
		}
	}
	sum.GPUTracks = len(gpuTracks)
	horizon := sum.Horizon()
	stages := make([]int, 0, len(splits))
	for st := range splits {
		stages = append(stages, st)
	}
	sort.Ints(stages)
	for _, st := range stages {
		acc := splits[st]
		ss := SplitSummary{
			Stage:     st,
			Batches:   acc.batches,
			Samples:   acc.samples,
			Tracks:    len(acc.tracks),
			Busy:      acc.busy,
			BatchHist: acc.hist,
		}
		if acc.batches > 0 {
			ss.MeanBatch = float64(acc.samples) / float64(acc.batches)
		}
		if horizon > 0 && ss.Tracks > 0 {
			capacity := horizon * float64(ss.Tracks)
			ss.Util = ss.Busy / capacity
			if ss.Util > 1 {
				ss.Util = 1
			}
			ss.Bubble = capacity - ss.Busy
			if ss.Bubble < 0 {
				ss.Bubble = 0
			}
		}
		sum.Splits = append(sum.Splits, ss)
	}
	waitSplits := make([]int, 0, len(waitBy))
	for st := range waitBy {
		waitSplits = append(waitSplits, st)
	}
	sort.Ints(waitSplits)
	for _, st := range waitSplits {
		durs := waitBy[st]
		sort.Float64s(durs)
		sum.Waits = append(sum.Waits, WaitSummary{
			Split: st,
			Count: len(durs),
			P50:   nearestRank(durs, 0.50),
			P90:   nearestRank(durs, 0.90),
			P99:   nearestRank(durs, 0.99),
			Max:   durs[len(durs)-1],
		})
	}
	return sum
}

// nearestRank is the nearest-rank percentile of an ascending-sorted
// non-empty slice: the smallest value with at least p of the mass at or
// below it.
func nearestRank(sorted []float64, p float64) float64 {
	idx := int(p*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// BubbleShares decomposes one split's idle (bubble) time by cause, in
// virtual nanoseconds. It is produced by the flame fold
// (flame.SummarizeBubbles); the type lives here so the summary printer
// can consume it without an import cycle.
type BubbleShares struct {
	QueueStarvedNanos    int64
	TransferBlockedNanos int64
	FuseBlockedNanos     int64
	DrainedNanos         int64
	IdleNanos            int64
}

// Total is the split's classified bubble time.
func (b BubbleShares) Total() int64 {
	return b.QueueStarvedNanos + b.TransferBlockedNanos + b.FuseBlockedNanos +
		b.DrainedNanos + b.IdleNanos
}

// share is a cause's fraction of the split's bubble time, as a percentage.
func (b BubbleShares) share(part int64) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(part) / float64(t)
}

// Print renders the summary as the aligned text e3-trace -summarize
// emits.
func (s Summary) Print(w io.Writer) { s.PrintWithTaxonomy(w, nil) }

// PrintWithTaxonomy renders the summary table; when a bubble taxonomy is
// supplied (per-split cause decomposition from the flame fold), the
// undifferentiated bubble(s) column is replaced by the cause-share
// columns starv/xfer/fuse/drain/idle (% of that split's idle time).
func (s Summary) PrintWithTaxonomy(w io.Writer, bubbles map[int]BubbleShares) {
	fmt.Fprintf(w, "trace: horizon %.3fs (t=%.3f..%.3f), %d GPU track(s)\n",
		s.Horizon(), s.Start, s.End, s.GPUTracks)
	if bubbles == nil {
		fmt.Fprintf(w, "  %-6s %-8s %-8s %-6s %-10s %-7s %-9s %-10s %s\n",
			"split", "batches", "samples", "gpus", "busy(s)", "util", "bubble(s)", "meanbatch", "batch histogram")
	} else {
		fmt.Fprintf(w, "  %-6s %-8s %-8s %-6s %-10s %-7s %-7s %-6s %-6s %-6s %-6s %-10s %s\n",
			"split", "batches", "samples", "gpus", "busy(s)", "util",
			"starv%", "xfer%", "fuse%", "drain%", "idle%", "meanbatch", "batch histogram")
	}
	for _, sp := range s.Splits {
		if bubbles == nil {
			fmt.Fprintf(w, "  %-6d %-8d %-8d %-6d %-10.3f %-7.1f %-9.3f %-10.2f %s\n",
				sp.Stage, sp.Batches, sp.Samples, sp.Tracks, sp.Busy,
				sp.Util*100, sp.Bubble, sp.MeanBatch, formatBatchHist(sp.BatchHist))
			continue
		}
		b := bubbles[sp.Stage]
		fmt.Fprintf(w, "  %-6d %-8d %-8d %-6d %-10.3f %-7.1f %-7.1f %-6.1f %-6.1f %-6.1f %-6.1f %-10.2f %s\n",
			sp.Stage, sp.Batches, sp.Samples, sp.Tracks, sp.Busy, sp.Util*100,
			b.share(b.QueueStarvedNanos), b.share(b.TransferBlockedNanos),
			b.share(b.FuseBlockedNanos), b.share(b.DrainedNanos), b.share(b.IdleNanos),
			sp.MeanBatch, formatBatchHist(sp.BatchHist))
	}
	fmt.Fprintf(w, "  queue-wait: n=%d total=%.3fs mean=%.1fms\n",
		s.QueueWait.Count, s.QueueWait.Total, s.QueueWait.Mean()*1e3)
	fmt.Fprintf(w, "  transfer:   n=%d total=%.3fs mean=%.1fms\n",
		s.Transfer.Count, s.Transfer.Total, s.Transfer.Mean()*1e3)
	fmt.Fprintf(w, "  fusion:     n=%d total=%.3fs mean=%.1fms\n",
		s.Fuse.Count, s.Fuse.Total, s.Fuse.Mean()*1e3)
	if len(s.Waits) > 0 {
		fmt.Fprintln(w, "  queue-wait percentiles (split 0 = batcher queue, split s>0 = merge queue):")
		for _, ws := range s.Waits {
			fmt.Fprintf(w, "    split %-3d n=%-7d p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
				ws.Split, ws.Count, ws.P50*1e3, ws.P90*1e3, ws.P99*1e3, ws.Max*1e3)
		}
	}
}

// formatBatchHist renders "1:12 4:3 8:960" with sizes ascending.
func formatBatchHist(hist map[int]int) string {
	sizes := make([]int, 0, len(hist))
	for b := range hist {
		sizes = append(sizes, b)
	}
	sort.Ints(sizes)
	parts := make([]string, len(sizes))
	for i, b := range sizes {
		parts[i] = fmt.Sprintf("%d:%d", b, hist[b])
	}
	return strings.Join(parts, " ")
}
