package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// summarySample: 2 GPUs over a 10-second horizon. Split 0 runs on both
// GPUs (busy 6+4 = 10 GPU-seconds of a 20 GPU-second capacity = 50%
// util, 10s bubble); split 1 runs on one GPU (busy 2 of 10 = 20%).
func summarySample() []Span {
	return []Span{
		{Track: "g0", Kind: KindExecute, Start: 0, End: 6, Stage: 0, Batch: 8, GPU: "V100"},
		{Track: "g1", Kind: KindExecute, Start: 1, End: 5, Stage: 0, Batch: 8, GPU: "V100"},
		{Track: "g1", Kind: KindExecute, Start: 6, End: 8, Stage: 1, Batch: 4, GPU: "V100"},
		{Track: "batcher", Kind: KindQueueWait, Start: 0, End: 1, Stage: -1, Batch: 8},
		{Track: "batcher", Kind: KindQueueWait, Start: 2, End: 5, Stage: -1, Batch: 8},
		{Track: "xfer:s0->s1", Kind: KindTransfer, Start: 5, End: 5.5, Stage: 0, Batch: 4},
		{Track: "merge:s1", Kind: KindFuse, Start: 5.5, End: 10, Stage: 1, Batch: 4},
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize(summarySample())
	if sum.Start != 0 || sum.End != 10 {
		t.Fatalf("horizon = [%v, %v], want [0, 10]", sum.Start, sum.End)
	}
	if sum.GPUTracks != 2 {
		t.Fatalf("GPUTracks = %d, want 2", sum.GPUTracks)
	}
	if len(sum.Splits) != 2 {
		t.Fatalf("got %d splits, want 2", len(sum.Splits))
	}

	s0 := sum.Splits[0]
	if s0.Stage != 0 || s0.Batches != 2 || s0.Samples != 16 || s0.Tracks != 2 {
		t.Fatalf("split 0 = %+v", s0)
	}
	if !approx(s0.Busy, 10) || !approx(s0.Util, 0.5) || !approx(s0.Bubble, 10) {
		t.Fatalf("split 0 occupancy: busy=%v util=%v bubble=%v", s0.Busy, s0.Util, s0.Bubble)
	}
	if !approx(s0.MeanBatch, 8) || s0.BatchHist[8] != 2 {
		t.Fatalf("split 0 batches: mean=%v hist=%v", s0.MeanBatch, s0.BatchHist)
	}

	s1 := sum.Splits[1]
	if s1.Stage != 1 || s1.Tracks != 1 || !approx(s1.Busy, 2) || !approx(s1.Util, 0.2) || !approx(s1.Bubble, 8) {
		t.Fatalf("split 1 = %+v", s1)
	}

	if sum.QueueWait.Count != 2 || !approx(sum.QueueWait.Total, 4) || !approx(sum.QueueWait.Mean(), 2) {
		t.Fatalf("queue-wait lane = %+v", sum.QueueWait)
	}
	if sum.Transfer.Count != 1 || !approx(sum.Transfer.Total, 0.5) {
		t.Fatalf("transfer lane = %+v", sum.Transfer)
	}
	if sum.Fuse.Count != 1 || !approx(sum.Fuse.Total, 4.5) {
		t.Fatalf("fuse lane = %+v", sum.Fuse)
	}

	// Per-split queue-wait percentiles: split 0 folds the batcher-queue
	// spans (durations 1 and 3), split 1 its merge-queue span (4.5).
	if len(sum.Waits) != 2 {
		t.Fatalf("got %d wait rows, want 2: %+v", len(sum.Waits), sum.Waits)
	}
	w0 := sum.Waits[0]
	if w0.Split != 0 || w0.Count != 2 || !approx(w0.P50, 1) || !approx(w0.P90, 3) || !approx(w0.P99, 3) || !approx(w0.Max, 3) {
		t.Fatalf("split-0 waits = %+v", w0)
	}
	w1 := sum.Waits[1]
	if w1.Split != 1 || w1.Count != 1 || !approx(w1.P50, 4.5) || !approx(w1.P99, 4.5) {
		t.Fatalf("split-1 waits = %+v", w1)
	}
}

func TestNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.50, 5}, {0.90, 9}, {0.99, 10}, {1.0, 10}, {0.01, 1}} {
		if got := nearestRank(sorted, tc.p); got != tc.want {
			t.Fatalf("nearestRank(p=%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := nearestRank([]float64{7}, 0.5); got != 7 {
		t.Fatalf("single-element percentile = %v, want 7", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	sum := Summarize(nil)
	if sum.Horizon() != 0 || sum.GPUTracks != 0 || len(sum.Splits) != 0 {
		t.Fatalf("empty summary not zero: %+v", sum)
	}
	var buf bytes.Buffer
	sum.Print(&buf) // must not panic
}

func TestSummarizeUtilClamped(t *testing.T) {
	// Overlapping spans on one track can push busy past capacity; util
	// must clamp to 1 and bubble to 0.
	spans := []Span{
		{Track: "g0", Kind: KindExecute, Start: 0, End: 10, Stage: 0, Batch: 1},
		{Track: "g0", Kind: KindExecute, Start: 0, End: 10, Stage: 0, Batch: 1},
	}
	sum := Summarize(spans)
	s0 := sum.Splits[0]
	if s0.Util != 1 || s0.Bubble != 0 {
		t.Fatalf("util=%v bubble=%v, want clamped to 1 and 0", s0.Util, s0.Bubble)
	}
}

func TestSummaryPrint(t *testing.T) {
	var buf bytes.Buffer
	Summarize(summarySample()).Print(&buf)
	out := buf.String()
	for _, want := range []string{
		"horizon 10.000s",
		"2 GPU track(s)",
		"8:2",         // split-0 batch histogram
		"queue-wait:", // lanes present
		"mean=2000.0ms",
		"queue-wait percentiles",
		"p99=3000.00ms", // split-0 batcher-queue tail
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestTracerSpansFeedSummarize(t *testing.T) {
	tr := New()
	tr.Execute("g0", "V100", 0, 8, 0, 1)
	tr.Execute("g0", "V100", 1, 4, 1, 1.5)
	tr.QueueWait(8, 0, 0.25)
	sum := Summarize(tr.Spans())
	if sum.GPUTracks != 1 || len(sum.Splits) != 2 || sum.QueueWait.Count != 1 {
		t.Fatalf("tracer -> summary wiring broken: %+v", sum)
	}
}
