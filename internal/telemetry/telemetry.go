// Package telemetry records what the end-of-run aggregates cannot show: a
// virtual-time span per unit of work as a request flows through the
// serving stack — queue wait in the batcher, per-batch execution on each
// split's GPU (with batch size and GPU kind), inter-split activation
// transfer, and survivor fusion in the merge queues — plus O(1) streaming
// counters and histograms derived from the same stream (completion
// latency, per-split batch size). Per-GPU occupancy timelines fall out of
// the execute spans' tracks.
//
// The tracer obeys the simulator's invariants: every timestamp is virtual
// (stamped by the caller from the sim clock — the package never reads any
// clock), recording happens synchronously on the event loop's goroutine,
// and the span counters must reconcile with the audit ledger's terminal
// counts (Reconcile), so tracing cannot silently disagree with the
// conservation audit.
//
// Like audit.Ledger, a nil *Tracer is valid and records nothing: call
// sites thread telemetry unconditionally and pay nothing when it is off.
package telemetry

import (
	"fmt"
	"sort"

	"e3/internal/audit"
	"e3/internal/metrics"
)

// Kind classifies a span.
type Kind uint8

const (
	// KindExecute is one batch running a split (or the whole model) on a
	// GPU; its track is the device ID, so execute spans form per-GPU
	// occupancy timelines.
	KindExecute Kind = iota
	// KindQueueWait is the time a dispatch batch's head waited in the
	// dynamic batcher's queue.
	KindQueueWait
	// KindTransfer is an inter-split activation transfer.
	KindTransfer
	// KindFuse is the time a merge-queue head waited for its survivor
	// batch to be re-formed (fusion).
	KindFuse
	// KindReplan is a control-plane replan instant (zero-duration span on
	// the "control-plane" track), so Perfetto shows plan changes against
	// the GPU occupancy timelines.
	KindReplan
	// KindPlanCache marks a replan that was answered from the cross-window
	// plan cache instead of a fresh search (zero-duration span on the
	// "control-plane" track, always paired with a KindReplan span at the
	// same instant).
	KindPlanCache
	// KindSLOBurn marks a scheduling window whose error-budget burn rate
	// crossed the configured threshold (zero-duration span on the
	// "control-plane" track; Batch carries the window index).
	KindSLOBurn
)

// String names the kind; it doubles as the Chrome trace "cat" field.
func (k Kind) String() string {
	switch k {
	case KindExecute:
		return "execute"
	case KindQueueWait:
		return "queue-wait"
	case KindTransfer:
		return "transfer"
	case KindFuse:
		return "fuse"
	case KindReplan:
		return "replan"
	case KindPlanCache:
		return "plan-cache"
	case KindSLOBurn:
		return "slo-burn"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// KindFromString inverts String (for trace import).
func KindFromString(s string) (Kind, bool) {
	switch s {
	case "execute":
		return KindExecute, true
	case "queue-wait":
		return KindQueueWait, true
	case "transfer":
		return KindTransfer, true
	case "fuse":
		return KindFuse, true
	case "replan":
		return KindReplan, true
	case "plan-cache":
		return KindPlanCache, true
	case "slo-burn":
		return KindSLOBurn, true
	}
	return 0, false
}

// Span is one timed interval on a named track, in virtual seconds.
type Span struct {
	// Track groups spans into one timeline row: the GPU device ID for
	// execute spans, a logical lane ("batcher", "xfer:s0->s1", "merge:s1")
	// otherwise.
	Track string
	Kind  Kind
	// Start and End are virtual times; End ≥ Start always.
	Start, End float64
	// Stage is the split index the work belongs to (-1 when not split
	// work, e.g. batcher queue wait).
	Stage int
	// Batch is the number of samples the span carries.
	Batch int
	// GPU is the device kind for execute spans ("V100"), empty otherwise.
	GPU string
}

// Duration is the span's extent in virtual seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// Histogram bucket layouts. Latency covers 100 µs – 10 s; batch sizes
// cover 1 – 4096 in powers of two. Both are fixed so the /metrics
// endpoint stays O(buckets) regardless of run length.
const (
	latHistLo, latHistHi = 1e-4, 10.0
	latHistBuckets       = 40
	batchHistLo          = 1
	batchHistHi          = 4096
	batchHistBuckets     = 13
)

// Tracer records spans (optionally into a bounded ring) plus streaming
// counters and histograms. It is not safe for concurrent use: like the
// ledger, all recording happens on the event loop's goroutine.
type Tracer struct {
	spans []Span
	// capacity bounds the span store (0 = unbounded, for trace export);
	// next is the ring's write cursor once it is full.
	capacity int
	next     int

	total uint64 // spans recorded, including evicted ones

	arrived, completed, dropped uint64
	dropsBy                     map[string]uint64

	lat     *metrics.Histogram
	batchBy map[int]*metrics.Histogram

	// firstAt/lastAt bound every event time seen (spans and lifecycle
	// events), giving the observation horizon even after ring eviction.
	firstAt, lastAt float64
	seenAt          bool

	// xferTrack/mergeTrack cache the per-stage track names: Transfer and
	// Fuse fire once per batch, and formatting the same handful of strings
	// millions of times was measurable on hour-long traces.
	//
	// Ownership: these maps — like every field above — are mutated
	// without synchronization on the contract that one event loop owns
	// the tracer. A tracer must never be shared across engines: two
	// shard loops lazily inserting into the same cache map is a
	// concurrent map write. The fleet tier gives each shard its own
	// tracer for exactly this reason.
	xferTrack  map[int]string
	mergeTrack map[int]string
}

// New returns an unbounded tracer, for full-run trace export.
func New() *Tracer { return newTracer(0) }

// NewRing returns a tracer that retains only the most recent capacity
// spans — the live-serving configuration, where memory must not grow with
// uptime. Counters and histograms still cover the full run.
func NewRing(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return newTracer(capacity)
}

func newTracer(capacity int) *Tracer {
	return &Tracer{
		capacity: capacity,
		dropsBy:  make(map[string]uint64),
		lat:      metrics.NewLogHistogram(latHistLo, latHistHi, latHistBuckets),
		batchBy:  make(map[int]*metrics.Histogram),
	}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Record stores one span. Spans whose End precedes their Start are
// clamped to zero duration — they can only arise from float jitter at
// scheduling boundaries, mirroring LatencyRecorder's clamp.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if s.End < s.Start {
		s.End = s.Start
	}
	t.extendHorizon(s.Start)
	t.extendHorizon(s.End)
	t.total++
	if t.capacity > 0 && len(t.spans) == t.capacity {
		t.spans[t.next] = s
		t.next = (t.next + 1) % t.capacity
		return
	}
	t.spans = append(t.spans, s)
}

// Execute records one batch running stage on the given device track.
func (t *Tracer) Execute(track, gpuKind string, stage, batch int, start, end float64) {
	if t == nil {
		return
	}
	t.Record(Span{Track: track, Kind: KindExecute, Start: start, End: end,
		Stage: stage, Batch: batch, GPU: gpuKind})
	h := t.batchBy[stage]
	if h == nil {
		h = metrics.NewLogHistogram(batchHistLo, batchHistHi, batchHistBuckets)
		t.batchBy[stage] = h
	}
	h.Observe(float64(batch))
}

// QueueWait records a dispatched batch's head wait in the batcher queue.
func (t *Tracer) QueueWait(batch int, start, end float64) {
	t.Record(Span{Track: "batcher", Kind: KindQueueWait, Start: start, End: end,
		Stage: -1, Batch: batch})
}

// Transfer records an inter-split activation transfer out of fromStage.
func (t *Tracer) Transfer(fromStage, batch int, start, end float64) {
	if t == nil {
		return
	}
	track, ok := t.xferTrack[fromStage]
	if !ok {
		track = fmt.Sprintf("xfer:s%d->s%d", fromStage, fromStage+1)
		if t.xferTrack == nil {
			t.xferTrack = make(map[int]string)
		}
		t.xferTrack[fromStage] = track
	}
	t.Record(Span{Track: track,
		Kind: KindTransfer, Start: start, End: end, Stage: fromStage, Batch: batch})
}

// Fuse records a merge-queue head's wait for survivor batch re-formation
// at stage.
func (t *Tracer) Fuse(stage, batch int, start, end float64) {
	if t == nil {
		return
	}
	track, ok := t.mergeTrack[stage]
	if !ok {
		track = fmt.Sprintf("merge:s%d", stage)
		if t.mergeTrack == nil {
			t.mergeTrack = make(map[int]string)
		}
		t.mergeTrack[stage] = track
	}
	t.Record(Span{Track: track, Kind: KindFuse,
		Start: start, End: end, Stage: stage, Batch: batch})
}

// Replan records a control-plane replan instant for scheduling window w:
// a zero-duration span on the "control-plane" track, visible in Perfetto
// alongside the per-GPU occupancy timelines. Batch carries the window
// index; Stage is -1 (not split work).
func (t *Tracer) Replan(window int, at float64) {
	t.Record(Span{Track: "control-plane", Kind: KindReplan,
		Start: at, End: at, Stage: -1, Batch: window})
}

// PlanCacheHit records that window w's replan reused a cached plan rather
// than searching. It rides the control-plane track next to the window's
// KindReplan span so cached and searched replans are distinguishable in
// Perfetto and in span queries.
func (t *Tracer) PlanCacheHit(window int, at float64) {
	t.Record(Span{Track: "control-plane", Kind: KindPlanCache,
		Start: at, End: at, Stage: -1, Batch: window})
}

// SLOBurn records an error-budget burn-rate threshold crossing in
// scheduling window w: a zero-duration span on the "control-plane" track,
// next to the window's replan instants, so budget breaches are visible
// against the GPU occupancy timelines. Batch carries the window index;
// Stage is -1 (not split work).
func (t *Tracer) SLOBurn(window int, at float64) {
	t.Record(Span{Track: "control-plane", Kind: KindSLOBurn,
		Start: at, End: at, Stage: -1, Batch: window})
}

// extendHorizon widens the observation window to include event time at.
func (t *Tracer) extendHorizon(at float64) {
	if !t.seenAt || at < t.firstAt {
		t.firstAt = at
	}
	if !t.seenAt || at > t.lastAt {
		t.lastAt = at
	}
	t.seenAt = true
}

// Horizon reports the virtual-time window [start, end] covered by every
// recorded event, surviving ring eviction. Zeroes when nothing was
// recorded.
func (t *Tracer) Horizon() (start, end float64) {
	if t == nil || !t.seenAt {
		return 0, 0
	}
	return t.firstAt, t.lastAt
}

// Arrive counts a sample minted by the generator at virtual time at.
func (t *Tracer) Arrive(at float64) {
	if t == nil {
		return
	}
	t.extendHorizon(at)
	t.arrived++
}

// Complete counts a sample finishing at virtual time at and observes its
// completion latency.
func (t *Tracer) Complete(at, latency float64) {
	if t == nil {
		return
	}
	t.extendHorizon(at)
	t.completed++
	t.lat.Observe(latency)
}

// Drop counts a sample shed without execution at virtual time at, by
// reason.
func (t *Tracer) Drop(at float64, reason string) {
	if t == nil {
		return
	}
	t.extendHorizon(at)
	t.dropped++
	t.dropsBy[reason]++
}

// Spans returns the retained spans oldest-first (a copy). For a wrapped
// ring this is the most recent Capacity spans in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.spans))
	if t.capacity > 0 && len(t.spans) == t.capacity {
		out = append(out, t.spans[t.next:]...)
		out = append(out, t.spans[:t.next]...)
		return out
	}
	return append(out, t.spans...)
}

// Total reports spans recorded over the tracer's lifetime, including ones
// a ring has since evicted.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Evicted reports how many spans the ring has discarded.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	return t.total - uint64(len(t.spans))
}

// Counts reports the lifecycle counters: samples minted, completed, and
// dropped.
func (t *Tracer) Counts() (arrived, completed, dropped uint64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.arrived, t.completed, t.dropped
}

// DropsByReason returns the per-reason drop counters (the live map; do
// not mutate).
func (t *Tracer) DropsByReason() map[string]uint64 {
	if t == nil {
		return nil
	}
	return t.dropsBy
}

// LatencyHist returns the streaming completion-latency histogram (nil for
// a nil tracer).
func (t *Tracer) LatencyHist() *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.lat
}

// BatchHist returns the batch-size histogram for one stage (nil if the
// stage never executed).
func (t *Tracer) BatchHist(stage int) *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.batchBy[stage]
}

// Stages returns the stage indices that have batch histograms, ascending.
func (t *Tracer) Stages() []int {
	if t == nil {
		return nil
	}
	out := make([]int, 0, len(t.batchBy))
	for s := range t.batchBy {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Reconcile cross-checks the tracer's lifecycle counters against a
// verified audit report, appending any mismatch to the report's
// violations: telemetry that disagrees with the conservation ledger is a
// recording bug, and -audit must fail on it. A nil tracer reconciles
// vacuously.
func (t *Tracer) Reconcile(rep *audit.Report) {
	if t == nil || rep == nil {
		return
	}
	if int(t.arrived) != rep.Samples {
		rep.Violate("telemetry: %d arrive events, ledger tracked %d samples", t.arrived, rep.Samples)
	}
	if int(t.completed) != rep.Completed {
		rep.Violate("telemetry: %d completion events, ledger completed %d", t.completed, rep.Completed)
	}
	if int(t.dropped) != rep.Dropped {
		rep.Violate("telemetry: %d drop events, ledger dropped %d", t.dropped, rep.Dropped)
	}
	// Walk reasons in sorted order, not map order: violations are report
	// output and must be byte-identical run to run.
	reasons := make([]string, 0, len(t.dropsBy))
	for reason := range t.dropsBy {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		n := t.dropsBy[reason]
		if int(n) != rep.ByReason[audit.Reason(reason)] {
			rep.Violate("telemetry: %d drops for reason %q, ledger has %d", n, reason, rep.ByReason[audit.Reason(reason)])
		}
	}
}
