package telemetry

import (
	"reflect"
	"testing"

	"e3/internal/audit"
)

// tracerWithDrops records one drop for each of eight reasons the ledger
// knows nothing about, so Reconcile appends eight violations.
func tracerWithDrops() *Tracer {
	tr := New()
	for _, reason := range []string{"zeta", "admission", "mu", "alpha", "stale", "omega", "beta", "kappa"} {
		tr.Drop(float64(len(reason)), reason)
	}
	return tr
}

// TestReconcileViolationOrderIsDeterministic pins the fix for the
// drops-by-reason walk: dropsBy is a map, and ranging it directly
// appended the per-reason violations in randomized order. Reconcile now
// walks sorted reasons; reverting that makes some pair of the repeated
// reports below disagree with near certainty (8 reasons over 24
// iterations).
func TestReconcileViolationOrderIsDeterministic(t *testing.T) {
	run := func() []string {
		rep := &audit.Report{ByReason: make(map[audit.Reason]int)}
		tracerWithDrops().Reconcile(rep)
		return rep.Violations
	}
	reference := run()
	// One dropped-total mismatch (8 drops vs an empty report) plus 8
	// per-reason mismatches.
	if len(reference) != 9 {
		t.Fatalf("fixture produced %d violations, want 9: %v", len(reference), reference)
	}
	for i := 0; i < 24; i++ {
		if got := run(); !reflect.DeepEqual(got, reference) {
			t.Fatalf("iteration %d: violation order is nondeterministic:\n got %v\nwant %v", i, got, reference)
		}
	}
}

// TestStagesAscending pins Stages' contract: the indices come out sorted
// no matter the order stages first appeared.
func TestStagesAscending(t *testing.T) {
	tr := New()
	for _, s := range []int{5, 1, 7, 0, 3, 6, 2, 4} {
		tr.Execute("g0", "V100", s, 8, float64(s), float64(s)+1)
	}
	got := tr.Stages()
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Stages() = %v, want %v", got, want)
	}
}
