package telemetry

import (
	"testing"

	"e3/internal/audit"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Track: "g0"})
	tr.Execute("g0", "V100", 0, 8, 0, 1)
	tr.QueueWait(8, 0, 0.5)
	tr.Transfer(0, 4, 1, 1.1)
	tr.Fuse(1, 8, 1, 1.2)
	tr.Arrive(0)
	tr.Complete(1, 1)
	tr.Drop(2, "admission")
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	if tr.Spans() != nil || tr.Total() != 0 || tr.Evicted() != 0 {
		t.Fatal("nil tracer retained state")
	}
	a, c, d := tr.Counts()
	if a != 0 || c != 0 || d != 0 {
		t.Fatal("nil tracer counted lifecycle events")
	}
	if tr.LatencyHist() != nil || tr.BatchHist(0) != nil || tr.Stages() != nil {
		t.Fatal("nil tracer returned histograms")
	}
	if s, e := tr.Horizon(); s != 0 || e != 0 {
		t.Fatal("nil tracer has a horizon")
	}
	tr.Reconcile(&audit.Report{}) // must not panic or violate
}

func TestRecordClampsBackwardSpan(t *testing.T) {
	tr := New()
	tr.Record(Span{Track: "g0", Start: 2.0, End: 1.9})
	s := tr.Spans()[0]
	if s.End != s.Start {
		t.Fatalf("backward span not clamped: start=%v end=%v", s.Start, s.End)
	}
	if s.Duration() != 0 {
		t.Fatalf("clamped span has duration %v", s.Duration())
	}
}

func TestRingEvictsOldestKeepsOrder(t *testing.T) {
	tr := NewRing(3)
	for i := 0; i < 7; i++ {
		tr.Record(Span{Track: "g0", Start: float64(i), End: float64(i) + 0.5})
	}
	if tr.Total() != 7 {
		t.Fatalf("Total = %d, want 7", tr.Total())
	}
	if tr.Evicted() != 4 {
		t.Fatalf("Evicted = %d, want 4", tr.Evicted())
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	for i, s := range spans {
		if want := float64(4 + i); s.Start != want {
			t.Fatalf("span %d start = %v, want %v (oldest-first order)", i, s.Start, want)
		}
	}
	// Horizon still covers evicted spans.
	if lo, hi := tr.Horizon(); lo != 0 || hi != 6.5 {
		t.Fatalf("Horizon = [%v, %v], want [0, 6.5]", lo, hi)
	}
}

func TestRingBelowCapacityIsStable(t *testing.T) {
	tr := NewRing(8)
	tr.Record(Span{Track: "a", Start: 1, End: 2})
	tr.Record(Span{Track: "b", Start: 2, End: 3})
	if tr.Evicted() != 0 {
		t.Fatalf("Evicted = %d before wrap", tr.Evicted())
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Track != "a" || spans[1].Track != "b" {
		t.Fatalf("unexpected spans %+v", spans)
	}
}

func TestExecuteFeedsBatchHistogram(t *testing.T) {
	tr := New()
	tr.Execute("g0", "V100", 0, 8, 0, 1)
	tr.Execute("g1", "V100", 0, 8, 0, 1)
	tr.Execute("g2", "T4", 1, 4, 1, 2)
	stages := tr.Stages()
	if len(stages) != 2 || stages[0] != 0 || stages[1] != 1 {
		t.Fatalf("Stages = %v, want [0 1]", stages)
	}
	if n := tr.BatchHist(0).Count(); n != 2 {
		t.Fatalf("stage 0 batch observations = %d, want 2", n)
	}
	if got := tr.BatchHist(1).Sum(); got != 4 {
		t.Fatalf("stage 1 batch sum = %v, want 4", got)
	}
	if tr.BatchHist(7) != nil {
		t.Fatal("histogram for never-executed stage")
	}
}

func TestLifecycleCountersAndLatency(t *testing.T) {
	tr := New()
	tr.Arrive(0)
	tr.Arrive(0.1)
	tr.Arrive(0.2)
	tr.Complete(1.0, 0.05)
	tr.Complete(1.1, 0.07)
	tr.Drop(0.3, "admission")
	a, c, d := tr.Counts()
	if a != 3 || c != 2 || d != 1 {
		t.Fatalf("Counts = (%d, %d, %d), want (3, 2, 1)", a, c, d)
	}
	if got := tr.DropsByReason()["admission"]; got != 1 {
		t.Fatalf("admission drops = %d, want 1", got)
	}
	if n := tr.LatencyHist().Count(); n != 2 {
		t.Fatalf("latency observations = %d, want 2", n)
	}
	if lo, hi := tr.Horizon(); lo != 0 || hi != 1.1 {
		t.Fatalf("Horizon = [%v, %v], want [0, 1.1]", lo, hi)
	}
}

// reconcileReport builds a verified-shape report matching n arrivals, c
// completions, and drops by reason.
func reconcileReport(samples, completed int, byReason map[audit.Reason]int) *audit.Report {
	dropped := 0
	for _, n := range byReason {
		dropped += n
	}
	return &audit.Report{Samples: samples, Completed: completed, Dropped: dropped, ByReason: byReason}
}

func TestReconcileAgreement(t *testing.T) {
	tr := New()
	tr.Arrive(0)
	tr.Arrive(0.1)
	tr.Complete(1, 0.5)
	tr.Drop(0.2, string(audit.ReasonAdmission))
	rep := reconcileReport(2, 1, map[audit.Reason]int{audit.ReasonAdmission: 1})
	tr.Reconcile(rep)
	if len(rep.Violations) != 0 {
		t.Fatalf("agreeing tracer produced violations: %v", rep.Violations)
	}
}

func TestReconcileFlagsEveryMismatch(t *testing.T) {
	tr := New()
	tr.Arrive(0) // 1 arrival; report claims 2
	tr.Complete(1, 0.5)
	tr.Complete(1.1, 0.5) // 2 completions; report claims 1
	tr.Drop(0.2, "admission")
	tr.Drop(0.3, "stale-shed") // reason the report lacks
	rep := reconcileReport(2, 1, map[audit.Reason]int{audit.ReasonAdmission: 1})
	tr.Reconcile(rep)
	// arrived, completed, dropped totals, and the stale-shed reason all
	// disagree: 4 violations.
	if len(rep.Violations) != 4 {
		t.Fatalf("violations = %d (%v), want 4", len(rep.Violations), rep.Violations)
	}
}

func TestReconcileNilReportIsSafe(t *testing.T) {
	tr := New()
	tr.Arrive(0)
	tr.Reconcile(nil)
}
