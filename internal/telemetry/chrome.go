package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export/import. The format is the JSON object form of
// the Trace Event Format that Perfetto and chrome://tracing load: one
// complete ("X") event per span with microsecond timestamps, one thread
// per track, and thread_name metadata ("M") events naming the tracks.
// Virtual seconds map to microseconds (1 virtual second = 1e6 ts units),
// so Perfetto's time ruler reads directly in virtual time.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// trackOrder sorts GPU (execute) tracks first, then logical lanes, each
// group alphabetically — so Perfetto shows the GPU occupancy timelines on
// top.
func trackOrder(spans []Span) []string {
	kindByTrack := make(map[string]Kind)
	for _, s := range spans {
		if _, seen := kindByTrack[s.Track]; !seen {
			kindByTrack[s.Track] = s.Kind
		}
	}
	tracks := make([]string, 0, len(kindByTrack))
	for tr := range kindByTrack {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		gi := kindByTrack[tracks[i]] == KindExecute
		gj := kindByTrack[tracks[j]] == KindExecute
		if gi != gj {
			return gi
		}
		return tracks[i] < tracks[j]
	})
	return tracks
}

// WriteChrome renders spans as Chrome trace-event JSON. Spans are sorted
// by (track, start, end) so each thread's events carry monotone
// timestamps regardless of recording interleave.
func WriteChrome(w io.Writer, spans []Span) error {
	tracks := trackOrder(spans)
	tid := make(map[string]int, len(tracks))
	file := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, tr := range tracks {
		tid[tr] = i + 1
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: i + 1,
			Args: map[string]any{"name": tr},
		})
	}
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Track != sorted[j].Track {
			return tid[sorted[i].Track] < tid[sorted[j].Track]
		}
		if sorted[i].Start < sorted[j].Start {
			return true
		}
		if sorted[i].Start > sorted[j].Start {
			return false
		}
		return sorted[i].End < sorted[j].End
	})
	for _, s := range sorted {
		args := map[string]any{"batch": s.Batch}
		if s.Stage >= 0 {
			args["stage"] = s.Stage
		}
		if s.GPU != "" {
			args["gpu"] = s.GPU
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: s.Kind.String(),
			Cat:  s.Kind.String(),
			Ph:   "X",
			TS:   s.Start * 1e6,
			Dur:  (s.End - s.Start) * 1e6,
			PID:  chromePID,
			TID:  tid[s.Track],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// ReadChrome parses Chrome trace-event JSON written by WriteChrome back
// into spans. Events of unknown phase or category are skipped; a complete
// event on a thread with no thread_name metadata is an error, as is a
// negative duration.
func ReadChrome(r io.Reader) ([]Span, error) {
	var file chromeFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("telemetry: parse chrome trace: %w", err)
	}
	trackByTID := make(map[int]string)
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if name, ok := ev.Args["name"].(string); ok {
				trackByTID[ev.TID] = name
			}
		}
	}
	var spans []Span
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		kind, ok := KindFromString(ev.Cat)
		if !ok {
			continue
		}
		track, ok := trackByTID[ev.TID]
		if !ok {
			return nil, fmt.Errorf("telemetry: event %q on tid %d has no thread_name metadata", ev.Name, ev.TID)
		}
		if ev.Dur < 0 {
			return nil, fmt.Errorf("telemetry: event %q on track %s has negative duration %v", ev.Name, track, ev.Dur)
		}
		s := Span{
			Track: track,
			Kind:  kind,
			Start: ev.TS / 1e6,
			End:   (ev.TS + ev.Dur) / 1e6,
			Stage: -1,
		}
		if v, ok := argInt(ev.Args, "batch"); ok {
			s.Batch = v
		}
		if v, ok := argInt(ev.Args, "stage"); ok {
			s.Stage = v
		}
		if v, ok := ev.Args["gpu"].(string); ok {
			s.GPU = v
		}
		spans = append(spans, s)
	}
	return spans, nil
}

// argInt reads a JSON number arg as an int (JSON decodes numbers to
// float64).
func argInt(args map[string]any, key string) (int, bool) {
	v, ok := args[key].(float64)
	if !ok {
		return 0, false
	}
	return int(v + 0.5), true
}
