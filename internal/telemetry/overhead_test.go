// Telemetry overhead gate. This file lives in an external test package so
// it can drive the full traced demo through internal/experiments without
// an import cycle (experiments → serving → scheduler → telemetry).
//
// Wall-clock timing is deliberate and legal here: the invariant lint
// skips test files, and the quantity under test IS host cost — how much
// real time span recording adds to a simulated run. The gate is
// env-gated (E3_OVERHEAD_GATE=1, set by `make overhead`) so plain
// `go test ./...` stays timing-noise-free.
package telemetry_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"e3/internal/experiments"
	"e3/internal/flame"
	"e3/internal/slo"
	"e3/internal/telemetry"
)

// gateHorizon is virtual seconds of demo workload per timed run.
const gateHorizon = 10.0

// maxOverheadFrac bounds traced wall time at 1.5x untraced. Ring
// recording is O(1) per span with no allocation after the ring fills, so
// real regressions (per-span allocation, map churn in the hot path) blow
// well past this while scheduler jitter stays well under it.
const maxOverheadFrac = 0.5

// slackMS absorbs absolute timer noise on runs this short.
const slackMS = 10.0

func timeDemo(tb testing.TB, mk func() (*telemetry.Tracer, *slo.Attribution, *flame.Profiler), rounds int) float64 {
	tb.Helper()
	best := 0.0
	for i := 0; i < rounds; i++ {
		tr, attr, fl := mk()
		start := time.Now()
		rep, coll, _, err := experiments.RunProfiledDemo(tr, attr, fl, gateHorizon)
		elapsed := time.Since(start).Seconds() * 1e3
		if err != nil {
			tb.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			tb.Fatalf("demo failed its audit: %v", err)
		}
		if fl != nil {
			// Profiling rides the gate only if it also stays correct: the
			// fold must reconcile exactly while being timed.
			if stat := fl.Verify(coll.Util); !stat.OK() {
				tb.Fatalf("flame reconcile residual %dns during overhead run", stat.Residual)
			}
		}
		if attr != nil {
			// The observed config also pays for a flight-recorder trigger,
			// so the gate bounds the full always-on observability stack.
			rec := &slo.Recorder{Spans: tr, Ledger: coll.Audit, Attr: attr}
			if rec.Trigger(slo.TriggerEngineAbort, "overhead probe", gateHorizon) == nil {
				tb.Fatal("recorder produced no bundle")
			}
		}
		if i == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best
}

func TestTelemetryOverheadGate(t *testing.T) {
	if os.Getenv("E3_OVERHEAD_GATE") == "" {
		t.Skip("set E3_OVERHEAD_GATE=1 (make overhead) to run the wall-clock gate")
	}
	// Warm caches (first run pays lazy init for both configs alike).
	timeDemo(t, func() (*telemetry.Tracer, *slo.Attribution, *flame.Profiler) { return nil, nil, nil }, 1)

	off := timeDemo(t, func() (*telemetry.Tracer, *slo.Attribution, *flame.Profiler) { return nil, nil, nil }, 5)
	// The observed config is the full live-serving stack: ring tracer,
	// per-request attribution fold, an armed flight recorder, and the
	// virtual-time compute profiler.
	on := timeDemo(t, func() (*telemetry.Tracer, *slo.Attribution, *flame.Profiler) {
		return telemetry.NewRing(4096), slo.NewAttribution(slo.DefaultTopK), flame.NewProfiler(0)
	}, 5)

	bound := off*(1+maxOverheadFrac) + slackMS
	overheadPct := 0.0
	if off > 0 {
		overheadPct = (on - off) / off * 100
	}
	t.Logf("untraced %.2fms, ring-traced %.2fms (%.1f%% overhead, bound %.2fms)", off, on, overheadPct, bound)
	if on > bound {
		t.Fatalf("telemetry overhead too high: untraced %.2fms, traced %.2fms exceeds bound %.2fms (%s)",
			off, on, bound, fmt.Sprintf("%.1f%% over untraced", overheadPct))
	}
}

func BenchmarkTracedDemoOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.RunTracedDemo(nil, gateHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTracedDemoRing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.RunTracedDemo(telemetry.NewRing(4096), gateHorizon); err != nil {
			b.Fatal(err)
		}
	}
}
