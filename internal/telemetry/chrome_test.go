package telemetry

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

func chromeSample() []Span {
	return []Span{
		{Track: "v100-1", Kind: KindExecute, Start: 0.3, End: 0.5, Stage: 1, Batch: 4, GPU: "V100"},
		{Track: "v100-0", Kind: KindExecute, Start: 0.0, End: 0.2, Stage: 0, Batch: 8, GPU: "V100"},
		{Track: "batcher", Kind: KindQueueWait, Start: 0.0, End: 0.05, Stage: -1, Batch: 8},
		{Track: "v100-0", Kind: KindExecute, Start: 0.2, End: 0.4, Stage: 0, Batch: 8, GPU: "V100"},
		{Track: "xfer:s0->s1", Kind: KindTransfer, Start: 0.2, End: 0.25, Stage: 0, Batch: 4},
		{Track: "merge:s1", Kind: KindFuse, Start: 0.25, End: 0.3, Stage: 1, Batch: 4},
	}
}

func TestWriteChromeStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, chromeSample()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit == "" {
		t.Fatal("missing displayTimeUnit")
	}

	// One thread_name metadata event per track; GPU tracks get the lowest
	// tids so they render on top.
	names := make(map[int]string)
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
			names[ev.TID] = ev.Args["name"].(string)
		}
	}
	if len(names) != 5 {
		t.Fatalf("got %d named tracks, want 5: %v", len(names), names)
	}
	if names[1] != "v100-0" || names[2] != "v100-1" {
		t.Fatalf("GPU tracks not first: %v", names)
	}

	// Per-track timestamps monotone, durations non-negative, microsecond
	// scaling.
	lastTS := make(map[int]float64)
	nX := 0
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		nX++
		if ev.Dur < 0 {
			t.Fatalf("negative duration on %q", ev.Name)
		}
		if prev, seen := lastTS[ev.TID]; seen && ev.TS < prev {
			t.Fatalf("track %s timestamps not monotone: %v after %v", names[ev.TID], ev.TS, prev)
		}
		lastTS[ev.TID] = ev.TS
	}
	if nX != len(chromeSample()) {
		t.Fatalf("emitted %d complete events, want %d", nX, len(chromeSample()))
	}
	// Spot-check scaling: v100-1's execute starts at 0.3 virtual seconds =
	// 3e5 µs.
	if !strings.Contains(buf.String(), "\"ts\":300000") {
		t.Fatalf("expected 0.3s -> 300000µs scaling in output")
	}
}

func TestChromeRoundTrip(t *testing.T) {
	in := chromeSample()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip returned %d spans, want %d", len(out), len(in))
	}
	// ReadChrome returns spans in the file's (track, start) sort order;
	// bring the originals into the same order and compare pairwise.
	want := make([]Span, len(in))
	copy(want, in)
	sortSpansLikeChrome(want)
	for i, got := range out {
		w := want[i]
		if got.Track != w.Track || got.Kind != w.Kind || got.Stage != w.Stage || got.Batch != w.Batch || got.GPU != w.GPU {
			t.Fatalf("span %d: round-trip mutated span: got %+v want %+v", i, got, w)
		}
		if !approx(got.Start, w.Start) || !approx(got.End, w.End) {
			t.Fatalf("span %d: round-trip moved span: got [%v,%v] want [%v,%v]", i, got.Start, got.End, w.Start, w.End)
		}
	}
}

// sortSpansLikeChrome mirrors WriteChrome's on-disk event order: tracks in
// trackOrder sequence, then by start and end within a track.
func sortSpansLikeChrome(spans []Span) {
	order := trackOrder(spans)
	rank := make(map[string]int, len(order))
	for i, tr := range order {
		rank[tr] = i
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Track != spans[j].Track {
			return rank[spans[i].Track] < rank[spans[j].Track]
		}
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End < spans[j].End
	})
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 {
		t.Fatalf("empty trace round-tripped %d spans", len(spans))
	}
}

func TestReadChromeRejectsOrphanEvent(t *testing.T) {
	in := `{"traceEvents":[{"name":"execute","cat":"execute","ph":"X","ts":0,"dur":10,"pid":1,"tid":9}]}`
	if _, err := ReadChrome(strings.NewReader(in)); err == nil {
		t.Fatal("expected error for complete event without thread_name metadata")
	}
}

func TestReadChromeRejectsNegativeDuration(t *testing.T) {
	in := `{"traceEvents":[` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"g0"}},` +
		`{"name":"execute","cat":"execute","ph":"X","ts":5,"dur":-1,"pid":1,"tid":1}]}`
	if _, err := ReadChrome(strings.NewReader(in)); err == nil {
		t.Fatal("expected error for negative duration")
	}
}

func TestReadChromeSkipsForeignEvents(t *testing.T) {
	in := `{"traceEvents":[` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"g0"}},` +
		`{"name":"other","cat":"other","ph":"X","ts":0,"dur":1,"pid":1,"tid":1},` +
		`{"name":"b","ph":"B","ts":0,"pid":1,"tid":1},` +
		`{"name":"execute","cat":"execute","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"batch":2,"stage":0}}]}`
	spans, err := ReadChrome(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Batch != 2 {
		t.Fatalf("expected 1 known span, got %+v", spans)
	}
}
