package trace

import (
	"math"
	"sort"
	"testing"
)

func TestUniformRate(t *testing.T) {
	a := Uniform(100, 10)
	if got := a.Rate(10); math.Abs(got-100) > 1 {
		t.Errorf("uniform rate = %v, want ~100", got)
	}
	if !sort.Float64sAreSorted(a) {
		t.Error("uniform arrivals unsorted")
	}
}

func TestPoissonRateAndOrder(t *testing.T) {
	a := Poisson(500, 20, 1)
	if got := a.Rate(20); math.Abs(got-500)/500 > 0.05 {
		t.Errorf("poisson rate = %v, want ~500", got)
	}
	if !sort.Float64sAreSorted(a) {
		t.Error("poisson arrivals unsorted")
	}
	// Poisson burstiness (CV² of gaps) ≈ 1.
	if b := a.Burstiness(); b < 0.8 || b > 1.25 {
		t.Errorf("poisson burstiness = %v, want ~1", b)
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	a := Poisson(100, 5, 7)
	b := Poisson(100, 5, 7)
	if len(a) != len(b) {
		t.Fatal("poisson not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("poisson not deterministic")
		}
	}
}

func TestBurstyIsBurstier(t *testing.T) {
	horizon := 300.0
	bursty := Bursty(DefaultBursty(1000), horizon, 2)
	poisson := Poisson(1000, horizon, 2)
	if bb, pb := bursty.Burstiness(), poisson.Burstiness(); bb < 3*pb {
		t.Errorf("bursty CV² %v not well above poisson %v", bb, pb)
	}
	if !sort.Float64sAreSorted(bursty) {
		t.Error("bursty arrivals unsorted")
	}
}

func TestBurstyAverageRateScaled(t *testing.T) {
	horizon := 600.0
	a := Bursty(DefaultBursty(1000), horizon, 3)
	got := a.Rate(horizon)
	// Thinning targets the average; allow generation variance below.
	if got > 1050 || got < 400 {
		t.Errorf("bursty avg rate = %v, want ≤ ~1000 and non-trivial", got)
	}
}

func TestBurstyHasQuietPeriods(t *testing.T) {
	a := Bursty(DefaultBursty(1000), 300, 4)
	// Longest gap must be substantial (seconds) — the near-idle periods
	// that keep GPU utilization under 50% in Figure 19.
	longest := 0.0
	for i := 1; i < len(a); i++ {
		if g := a[i] - a[i-1]; g > longest {
			longest = g
		}
	}
	if longest < 0.5 {
		t.Errorf("longest quiet gap = %vs, want ≥ 0.5s", longest)
	}
}

func TestRateEmptyAndZeroHorizon(t *testing.T) {
	var a Arrivals
	if a.Rate(10) != 0 {
		t.Error("empty rate not 0")
	}
	if (Arrivals{1, 2}).Rate(0) != 0 {
		t.Error("zero-horizon rate not 0")
	}
	if a.Burstiness() != 0 {
		t.Error("empty burstiness not 0")
	}
}

func TestDiurnalRateAndModulation(t *testing.T) {
	const (
		avg     = 1000.0
		period  = 100.0
		horizon = 400.0
	)
	a := Diurnal(avg, period, 0.5, horizon, 9)
	if got := a.Rate(horizon); math.Abs(got-avg)/avg > 0.05 {
		t.Errorf("diurnal avg rate = %v, want ~%v", got, avg)
	}
	// Quarter-period windows around the sine peak vs trough must differ.
	count := func(lo, hi float64) int {
		n := 0
		for _, at := range a {
			// Fold into one period.
			ph := math.Mod(at, period)
			if ph >= lo && ph < hi {
				n++
			}
		}
		return n
	}
	peak := count(15, 35)   // around period/4 (sin ≈ 1)
	trough := count(65, 85) // around 3·period/4 (sin ≈ -1)
	if float64(peak) < 1.8*float64(trough) {
		t.Errorf("diurnal modulation weak: peak window %d vs trough %d", peak, trough)
	}
}

func TestDiurnalDepthClamp(t *testing.T) {
	a := Diurnal(100, 50, 2.0, 100, 10) // depth clamps to 0.95
	if len(a) == 0 {
		t.Fatal("no arrivals")
	}
	b := Diurnal(100, 50, -1, 100, 10) // clamps to 0 (plain Poisson)
	if bb := b.Burstiness(); bb < 0.7 || bb > 1.3 {
		t.Errorf("depth-0 diurnal burstiness = %v, want ~1 (Poisson)", bb)
	}
}
