// Package trace generates request arrival processes: closed-loop (always a
// full batch waiting), open-loop Poisson/uniform, and a bursty
// Twitter-like trace reproducing the ArchiveTeam stream's shape the paper
// uses in §5.7 — extreme bursts separated by long quiet periods, amplified
// by scaling to a high average rate.
package trace

import (
	"math"
	"math/rand"
)

// Arrivals is a sorted list of request arrival times (seconds).
type Arrivals []float64

// Rate reports the average arrival rate over the horizon.
func (a Arrivals) Rate(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(len(a)) / horizon
}

// Uniform generates perfectly-paced arrivals at the given rate.
func Uniform(rate, horizon float64) Arrivals {
	n := int(rate * horizon)
	out := make(Arrivals, 0, n)
	step := 1 / rate
	for t := step; t <= horizon; t += step {
		out = append(out, t)
	}
	return out
}

// Poisson generates a homogeneous Poisson process at the given rate.
func Poisson(rate, horizon float64, seed int64) Arrivals {
	rng := rand.New(rand.NewSource(seed))
	var out Arrivals
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if t > horizon {
			return out
		}
		out = append(out, t)
	}
}

// Stream yields arrival times one at a time, in order. Hour-scale traces
// at paper rates (9000 req/s × 3600 s ≈ 32M arrivals) need not be
// materialized as a slice — the open-loop driver pulls the next arrival
// as it consumes the previous one, keeping memory O(1) in trace length.
type Stream interface {
	// Next returns the next arrival time; ok is false once the horizon is
	// exhausted.
	Next() (at float64, ok bool)
}

// PoissonStream is the streaming form of Poisson: for equal (rate,
// horizon, seed) it yields exactly the arrival sequence Poisson returns,
// one draw at a time. Bursty cannot stream — its exact-rate thinning pass
// needs the full realization first.
type PoissonStream struct {
	rng           *rand.Rand
	rate, horizon float64
	t             float64
}

// NewPoissonStream starts a homogeneous Poisson arrival stream.
func NewPoissonStream(rate, horizon float64, seed int64) *PoissonStream {
	return &PoissonStream{rng: rand.New(rand.NewSource(seed)), rate: rate, horizon: horizon}
}

// Next implements Stream.
func (p *PoissonStream) Next() (float64, bool) {
	p.t += p.rng.ExpFloat64() / p.rate
	if p.t > p.horizon {
		return 0, false
	}
	return p.t, true
}

// SliceStream adapts a materialized Arrivals list to the Stream interface.
type SliceStream struct {
	arr Arrivals
	i   int
}

// NewSliceStream streams an existing arrival list.
func NewSliceStream(arr Arrivals) *SliceStream { return &SliceStream{arr: arr} }

// Next implements Stream.
func (s *SliceStream) Next() (float64, bool) {
	if s.i >= len(s.arr) {
		return 0, false
	}
	at := s.arr[s.i]
	s.i++
	return at, true
}

// BurstyConfig shapes the Twitter-like generator.
type BurstyConfig struct {
	// AvgRate is the target mean arrival rate after scaling (req/s).
	AvgRate float64
	// BurstRateMultiple is the within-burst rate relative to AvgRate.
	BurstRateMultiple float64
	// MeanBurstLen and MeanGapLen are exponential-mean durations (s) of
	// burst episodes and quiet gaps.
	MeanBurstLen, MeanGapLen float64
	// QuietRateFraction is the baseline rate during gaps relative to
	// AvgRate (long near-idle periods when small).
	QuietRateFraction float64
}

// DefaultBursty mimics the scaled Twitter trace: ~1000 req/s average with
// short violent bursts and long near-idle stretches (GPU util < 50%).
func DefaultBursty(avgRate float64) BurstyConfig {
	return BurstyConfig{
		AvgRate:           avgRate,
		BurstRateMultiple: 10,
		MeanBurstLen:      2.0,
		MeanGapLen:        18.0,
		QuietRateFraction: 0.01,
	}
}

// Bursty generates an alternating burst/gap modulated Poisson process and
// then rescales arrival times so the realized average rate matches
// AvgRate exactly (the paper scales the Twitter trace the same way).
func Bursty(cfg BurstyConfig, horizon float64, seed int64) Arrivals {
	rng := rand.New(rand.NewSource(seed))
	var out Arrivals
	t := 0.0
	inBurst := false
	for t < horizon {
		var segLen, rate float64
		if inBurst {
			segLen = rng.ExpFloat64() * cfg.MeanBurstLen
			rate = cfg.AvgRate * cfg.BurstRateMultiple
		} else {
			segLen = rng.ExpFloat64() * cfg.MeanGapLen
			rate = cfg.AvgRate * cfg.QuietRateFraction
		}
		end := math.Min(t+segLen, horizon)
		if rate > 0 {
			at := t
			for {
				at += rng.ExpFloat64() / rate
				if at > end {
					break
				}
				out = append(out, at)
			}
		}
		t = end
		inBurst = !inBurst
	}
	if len(out) == 0 {
		return out
	}
	// Rescale to hit the exact target average rate: thin or replicate by
	// adjusting the time axis would distort burst shape, so instead thin
	// probabilistically (if too many) or keep as-is when close.
	want := int(cfg.AvgRate * horizon)
	if want <= 0 || len(out) <= want {
		return out
	}
	keep := float64(want) / float64(len(out))
	thinned := out[:0]
	for _, a := range out {
		if rng.Float64() < keep {
			thinned = append(thinned, a)
		}
	}
	return thinned
}

// Diurnal generates a sinusoidally-modulated Poisson process around the
// average rate with the given period (the hours-scale variability the
// paper's production workload exhibits, §4). depth in [0,1) scales the
// swing: rate(t) = avg · (1 + depth·sin(2πt/period)).
func Diurnal(avgRate, period, depth, horizon float64, seed int64) Arrivals {
	if depth < 0 {
		depth = 0
	}
	if depth > 0.95 {
		depth = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	var out Arrivals
	t := 0.0
	// Thinning against the peak rate.
	peak := avgRate * (1 + depth)
	for {
		t += rng.ExpFloat64() / peak
		if t > horizon {
			return out
		}
		rate := avgRate * (1 + depth*math.Sin(2*math.Pi*t/period))
		if rng.Float64() < rate/peak {
			out = append(out, t)
		}
	}
}

// Burstiness reports the squared coefficient of variation of interarrival
// times (1 for Poisson, ≫1 for bursty traces).
func (a Arrivals) Burstiness() float64 {
	if len(a) < 3 {
		return 0
	}
	gaps := make([]float64, len(a)-1)
	mean := 0.0
	for i := 1; i < len(a); i++ {
		gaps[i-1] = a[i] - a[i-1]
		mean += gaps[i-1]
	}
	mean /= float64(len(gaps))
	if mean == 0 {
		return 0
	}
	varSum := 0.0
	for _, g := range gaps {
		d := g - mean
		varSum += d * d
	}
	varSum /= float64(len(gaps))
	return varSum / (mean * mean)
}
