package ee

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"e3/internal/model"
)

// TestWrapperEquivalenceProperty: disabling interior ramps (keeping a set
// of boundary ramps active) must map every input's exit to the first
// *active boundary* at or after its original exit — never earlier, never
// past a boundary it would have crossed. This is the invariant that makes
// the §3.4 wrapper safe: split outputs are identical, only where the
// decision is applied changes.
func TestWrapperEquivalenceProperty(t *testing.T) {
	base := model.BERTBase()
	orig := NewDeeBERT(base, 0.4)
	rng := rand.New(rand.NewSource(41))

	f := func(rawBounds [2]uint8, rawDiff uint16) bool {
		// Two distinct boundaries in [1, 11].
		b1 := int(rawBounds[0]%11) + 1
		b2 := int(rawBounds[1]%11) + 1
		if b1 == b2 {
			b2 = b1%11 + 1
		}
		bounds := []int{b1, b2}
		sort.Ints(bounds)

		wrapped := orig.Clone()
		keep := map[int]bool{bounds[0]: true, bounds[1]: true}
		for _, r := range wrapped.Ramps() {
			if !keep[r] {
				if err := wrapped.Disable(r); err != nil {
					return false
				}
			}
		}

		d := float64(rawDiff) / 65535
		e0 := orig.ExitLayerFor(d)
		e1 := wrapped.ExitLayerFor(d)
		if e1 < e0 {
			return false // wrapper may delay an exit, never hasten it
		}
		// The wrapped exit must be the first kept boundary ≥ e0, or L.
		want := base.NumLayers()
		for _, b := range bounds {
			if b >= e0 {
				want = b
				break
			}
		}
		return e1 == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestWrapperPreservesBoundarySurvival: for any difficulty, whether a
// sample survives past a kept boundary is identical with and without
// interior ramps — the property E3's merging correctness rests on.
func TestWrapperPreservesBoundarySurvival(t *testing.T) {
	base := model.BERTBase()
	orig := NewDeeBERT(base, 0.4)
	wrapped := orig.Clone()
	const boundary = 6
	for _, r := range wrapped.Ramps() {
		if r != boundary {
			if err := wrapped.Disable(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	for d := 0.0; d <= 1.0; d += 0.001 {
		s0 := orig.ExitLayerFor(d) > boundary
		s1 := wrapped.ExitLayerFor(d) > boundary
		if s0 != s1 {
			t.Fatalf("boundary survival differs at d=%v: orig=%v wrapped=%v", d, s0, s1)
		}
	}
}
