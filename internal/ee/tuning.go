package ee

import (
	"errors"
	"math/rand"
)

// This file implements the "sophisticated use-cases such as real-time ramp
// tuning" the paper's §3.4 defers to future work: given an accuracy
// budget, pick the loosest exit threshold — and therefore the highest
// goodput — whose estimated accuracy stays within budget.

// AccuracyModel estimates the accuracy of an EE model on a workload: the
// base (no-exit) accuracy minus a per-early-exit risk that grows with the
// threshold's looseness (a looser bound exits less-confident inputs).
type AccuracyModel struct {
	// BaseAccuracy is the full model's accuracy in percent.
	BaseAccuracy float64
	// ExitRisk maps a threshold to the expected accuracy cost (fraction)
	// per early-exited input.
	ExitRisk func(threshold float64) float64
}

// DefaultExitRisk is calibrated to the paper's observations: entropy 0.4
// costs ~1.7% accuracy when nearly all inputs exit early (§2.2), with
// sub-/super-linear cost below/above.
func DefaultExitRisk(threshold float64) float64 {
	switch {
	case threshold <= 0.3:
		return 0.006
	case threshold <= 0.4:
		return 0.017
	default:
		return 0.045
	}
}

// sampler is the minimal difficulty source (satisfied by workload.Dist,
// kept structural to avoid the import cycle).
type sampler interface {
	Sample(*rand.Rand) float64
}

// EarlyExitFraction estimates, by sampling, the fraction of a workload
// that leaves the model before the final classifier.
func EarlyExitFraction(m *EEModel, dist sampler, n int, seed int64) float64 {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	early := 0
	L := m.Base.NumLayers()
	for i := 0; i < n; i++ {
		if m.ExitLayerFor(dist.Sample(rng)) < L {
			early++
		}
	}
	return float64(early) / float64(n)
}

// Estimate returns the model's expected accuracy (percent) on a workload.
func (a AccuracyModel) Estimate(m *EEModel, dist sampler, threshold float64, n int, seed int64) float64 {
	frac := EarlyExitFraction(m, dist, n, seed)
	return a.BaseAccuracy - 100*frac*a.ExitRisk(threshold)
}

// TuneResult reports a tuning outcome.
type TuneResult struct {
	Threshold float64
	Model     *EEModel
	// Accuracy is the estimated accuracy at the chosen threshold.
	Accuracy float64
	// MeanExitLayer indicates the compute level the threshold buys.
	MeanExitLayer float64
}

// TuneEntropy finds the loosest entropy threshold in [lo, hi] whose
// estimated accuracy stays at or above minAccuracy. Looser thresholds
// exit earlier (monotonically lower accuracy, higher goodput), so a
// binary search applies. build must construct the EE model for a
// threshold; dist is the current workload.
func TuneEntropy(build func(threshold float64) *EEModel, acc AccuracyModel, dist sampler, minAccuracy, lo, hi float64, seed int64) (TuneResult, error) {
	if lo <= 0 || hi >= 1 || lo >= hi {
		return TuneResult{}, errors.New("ee: tune bounds must satisfy 0 < lo < hi < 1")
	}
	estimate := func(th float64) (float64, *EEModel) {
		m := build(th)
		return acc.Estimate(m, dist, th, 8000, seed), m
	}
	// The tightest bound must be acceptable, or no threshold is.
	accLo, mLo := estimate(lo)
	if accLo < minAccuracy {
		return TuneResult{}, errors.New("ee: accuracy budget unreachable even at the tightest threshold")
	}
	bestTh, bestM, bestAcc := lo, mLo, accLo
	l, h := lo, hi
	for i := 0; i < 20; i++ {
		mid := (l + h) / 2
		a, m := estimate(mid)
		if a >= minAccuracy {
			bestTh, bestM, bestAcc = mid, m, a
			l = mid
		} else {
			h = mid
		}
	}
	// Mean exit layer via the same sampling.
	rng := rand.New(rand.NewSource(seed))
	diffs := make([]float64, 4000)
	for i := range diffs {
		diffs[i] = dist.Sample(rng)
	}
	return TuneResult{
		Threshold:     bestTh,
		Model:         bestM,
		Accuracy:      bestAcc,
		MeanExitLayer: bestM.MeanExitLayer(diffs),
	}, nil
}

// DisableUnproductiveRamps applies the simple §3.4 wrapper use-case
// outside of split planning: turn off every ramp whose exit mass on the
// workload falls below minExitFrac, keeping the rest. It returns the
// number of ramps disabled. The receiver is mutated.
func (m *EEModel) DisableUnproductiveRamps(dist sampler, minExitFrac float64, n int, seed int64) int {
	if n < 1 {
		n = 4000
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		counts[m.ExitLayerFor(dist.Sample(rng))]++
	}
	disabled := 0
	for _, r := range m.ActiveRamps() {
		if float64(counts[r])/float64(n) < minExitFrac {
			if err := m.Disable(r); err == nil {
				disabled++
			}
		}
	}
	return disabled
}
