// Package ee implements early-exit networks over the model zoo: exit-ramp
// placement, exit policies (entropy, confidence, patience), per-sample exit
// depth, ramp compute overheads, and the §3.4 exit-wrapper that lets E3
// disable unproductive ramps.
//
// Exit semantics. Each input carries a latent difficulty d ∈ [0,1]. Under a
// policy's *default* threshold, the input becomes exit-ready at depth
// fraction d of the model — i.e. difficulty is calibrated as the exit depth
// itself, so dataset distributions (workload package) directly encode the
// exit behaviour the paper measured. Tightening or loosening the threshold
// rescales that depth: a looser entropy bound (higher threshold) lets
// inputs exit earlier, a tighter one later. An input actually exits at the
// first *active* ramp at or past its ready depth; if none exists it runs
// the full model.
package ee

import (
	"fmt"
	"math"
	"sort"

	"e3/internal/model"
)

// PolicyKind distinguishes exit-decision mechanisms (§2.2).
type PolicyKind int

// Supported ramp decision mechanisms.
const (
	// Entropy exits when prediction entropy falls below Threshold
	// (DeeBERT-style). Ramps are independent.
	Entropy PolicyKind = iota
	// Confidence exits when softmax confidence exceeds Threshold
	// (BranchyNet, CALM, Llama). Ramps are independent.
	Confidence
	// Patience exits after Patience consecutive ramps agree
	// (PABEE-style). Ramps are dependent: decisions use earlier ramps.
	Patience
)

func (k PolicyKind) String() string {
	switch k {
	case Entropy:
		return "entropy"
	case Confidence:
		return "confidence"
	case Patience:
		return "patience"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// Policy is an exit decision rule.
type Policy struct {
	Kind PolicyKind
	// Threshold is the entropy bound (exit when entropy < Threshold) or
	// confidence bound (exit when confidence ≥ Threshold).
	Threshold float64
	// RefThreshold anchors calibration: at Threshold == RefThreshold an
	// input's exit-ready depth equals its difficulty.
	RefThreshold float64
	// Patience and RefPatience play the same roles for Patience policies.
	Patience, RefPatience int
}

// DepthScale converts the policy's threshold into a multiplier on an
// input's exit-ready depth. 1 at the reference threshold.
func (p Policy) DepthScale() float64 {
	switch p.Kind {
	case Entropy:
		// Entropy decays roughly exponentially with depth, so the depth at
		// which it crosses a bound θ scales with ln(θ). Higher θ → easier
		// bound → earlier exit.
		if p.Threshold <= 0 || p.Threshold >= 1 || p.RefThreshold <= 0 || p.RefThreshold >= 1 {
			panic(fmt.Sprintf("ee: entropy thresholds must lie in (0,1): %+v", p))
		}
		return math.Log(p.Threshold) / math.Log(p.RefThreshold)
	case Confidence:
		// Residual uncertainty (1-conf) decays with depth; the crossing
		// depth scales with ln(1-τ). Higher τ → harder bound → later exit.
		if p.Threshold <= 0 || p.Threshold >= 1 || p.RefThreshold <= 0 || p.RefThreshold >= 1 {
			panic(fmt.Sprintf("ee: confidence thresholds must lie in (0,1): %+v", p))
		}
		return math.Log(1-p.Threshold) / math.Log(1-p.RefThreshold)
	case Patience:
		return 1
	default:
		panic(fmt.Sprintf("ee: unknown policy kind %d", p.Kind))
	}
}

// EEModel is a base model plus exit ramps.
type EEModel struct {
	Name   string
	Base   *model.Model
	Policy Policy
	// rampAfter holds 1-based layer indices k (k < L) carrying a ramp
	// after layer k, sorted ascending. The final classifier after layer L
	// is implicit and is not an early exit.
	rampAfter []int
	disabled  map[int]bool
	// LMHeadRamp marks ramps that must project to the full vocabulary
	// (CALM, Llama); their FLOP cost dwarfs classifier ramps.
	LMHeadRamp bool
}

// New assembles an EE model with ramps after the given (1-based) layers.
func New(name string, base *model.Model, p Policy, rampAfter []int, lmHead bool) (*EEModel, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	L := base.NumLayers()
	seen := make(map[int]bool)
	ramps := make([]int, 0, len(rampAfter))
	for _, r := range rampAfter {
		if r < 1 || r >= L {
			return nil, fmt.Errorf("ee: ramp after layer %d outside [1,%d)", r, L)
		}
		if seen[r] {
			return nil, fmt.Errorf("ee: duplicate ramp after layer %d", r)
		}
		seen[r] = true
		ramps = append(ramps, r)
	}
	sort.Ints(ramps)
	return &EEModel{
		Name:       name,
		Base:       base,
		Policy:     p,
		rampAfter:  ramps,
		disabled:   make(map[int]bool),
		LMHeadRamp: lmHead,
	}, nil
}

// mustNew panics on error; used by the preset constructors whose inputs
// are compile-time constants.
func mustNew(name string, base *model.Model, p Policy, ramps []int, lmHead bool) *EEModel {
	m, err := New(name, base, p, ramps, lmHead)
	if err != nil {
		panic(err)
	}
	return m
}

func everyLayer(l int) []int {
	out := make([]int, l-1)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// NewVanilla wraps a model with no early exits at all; every input runs
// the full network. Baselines share the EE executor through this wrapper.
func NewVanilla(base *model.Model) *EEModel {
	p := Policy{Kind: Entropy, Threshold: 0.4, RefThreshold: 0.4}
	return mustNew(base.Name, base, p, nil, false)
}

// NewDeeBERT attaches an entropy ramp after every encoder layer, the
// paper's primary NLP baseline (entropy 0.4 default, §5).
func NewDeeBERT(base *model.Model, threshold float64) *EEModel {
	p := Policy{Kind: Entropy, Threshold: threshold, RefThreshold: 0.4}
	return mustNew("DeeBERT", base, p, everyLayer(base.NumLayers()), false)
}

// NewDistilBERTEE is the in-house EE variant of DistilBERT (§2.2): same
// ramp construction as DeeBERT on the 6-layer base.
func NewDistilBERTEE(base *model.Model, threshold float64) *EEModel {
	p := Policy{Kind: Entropy, Threshold: threshold, RefThreshold: 0.4}
	return mustNew("DistilBERT-EE", base, p, everyLayer(base.NumLayers()), false)
}

// NewBranchyNet attaches confidence ramps at the stage-ish boundaries of a
// vision model (BranchyNet places a few branches, not one per block).
func NewBranchyNet(base *model.Model) *EEModel {
	p := Policy{Kind: Confidence, Threshold: 0.75, RefThreshold: 0.75}
	L := base.NumLayers()
	ramps := []int{L / 4, L / 2, 3 * L / 4}
	return mustNew("B-"+base.Name, base, p, ramps, false)
}

// NewPABEE attaches patience ramps after every layer (exit after Patience
// consecutive agreeing predictions), the Figure 18 architecture.
func NewPABEE(base *model.Model, patience int) *EEModel {
	p := Policy{Kind: Patience, Patience: patience, RefPatience: 6}
	return mustNew("PABEE", base, p, everyLayer(base.NumLayers()), false)
}

// NewCALM attaches softmax-confidence ramps with full LM-head projections
// after every decoder layer (threshold 0.25 is the CALM paper default).
func NewCALM(base *model.Model, threshold float64) *EEModel {
	p := Policy{Kind: Confidence, Threshold: threshold, RefThreshold: 0.25}
	return mustNew("CALM", base, p, everyLayer(base.NumLayers()), true)
}

// NewLlamaEE replicates the final layer as an exit ramp after every
// decoder layer (§5.1.3); each check pays the 128K-vocab LM head.
func NewLlamaEE(base *model.Model) *EEModel {
	p := Policy{Kind: Confidence, Threshold: 0.5, RefThreshold: 0.5}
	return mustNew(base.Name+"-EE", base, p, everyLayer(base.NumLayers()), true)
}

// Clone returns an independent copy (ramp enable/disable state included).
func (m *EEModel) Clone() *EEModel {
	cp := *m
	cp.rampAfter = append([]int(nil), m.rampAfter...)
	cp.disabled = make(map[int]bool, len(m.disabled))
	for k, v := range m.disabled {
		cp.disabled[k] = v
	}
	return &cp
}

// Ramps returns all ramp positions (1-based "after layer k"), enabled or not.
func (m *EEModel) Ramps() []int { return append([]int(nil), m.rampAfter...) }

// ActiveRamps returns currently enabled ramp positions, ascending.
func (m *EEModel) ActiveRamps() []int {
	out := make([]int, 0, len(m.rampAfter))
	for _, r := range m.rampAfter {
		if !m.disabled[r] {
			out = append(out, r)
		}
	}
	return out
}

// HasRampAfter reports whether an enabled ramp follows layer k.
func (m *EEModel) HasRampAfter(k int) bool {
	if m.disabled[k] {
		return false
	}
	i := sort.SearchInts(m.rampAfter, k)
	return i < len(m.rampAfter) && m.rampAfter[i] == k
}

// Disable turns off the ramp after layer k (the §3.4 exit-wrapper).
func (m *EEModel) Disable(k int) error {
	if !m.hasRamp(k) {
		return fmt.Errorf("ee: no ramp after layer %d", k)
	}
	m.disabled[k] = true
	return nil
}

// Enable re-activates the ramp after layer k.
func (m *EEModel) Enable(k int) error {
	if !m.hasRamp(k) {
		return fmt.Errorf("ee: no ramp after layer %d", k)
	}
	delete(m.disabled, k)
	return nil
}

func (m *EEModel) hasRamp(k int) bool {
	i := sort.SearchInts(m.rampAfter, k)
	return i < len(m.rampAfter) && m.rampAfter[i] == k
}

// ExitLayerFor returns the 1-based layer after which an input of the given
// difficulty leaves the model: a ramp position, or NumLayers() if it runs
// to the final classifier. Deterministic given difficulty.
func (m *EEModel) ExitLayerFor(difficulty float64) int {
	L := m.Base.NumLayers()
	ready := m.readyDepth(difficulty) * float64(L)
	for _, r := range m.rampAfter {
		if m.disabled[r] {
			continue
		}
		if float64(r) >= ready {
			return r
		}
	}
	return L
}

// readyDepth returns the depth fraction at which the input becomes
// exit-ready under the policy.
func (m *EEModel) readyDepth(difficulty float64) float64 {
	if difficulty < 0 {
		difficulty = 0
	}
	if difficulty > 1 {
		difficulty = 1
	}
	var d float64
	if m.Policy.Kind == Patience {
		L := float64(m.Base.NumLayers())
		d = difficulty + float64(m.Policy.Patience-m.Policy.RefPatience)/L
	} else {
		d = difficulty * m.Policy.DepthScale()
	}
	if d < 0 {
		return 0
	}
	return d
}

// RampFLOPs is the per-sample compute of one exit check: a pooled
// classifier head (hidden² + hidden·classes) or, for LM-head ramps, a
// hidden×vocab projection — the Figure 12 overhead.
func (m *EEModel) RampFLOPs() float64 {
	h := float64(m.Base.Hidden)
	if m.LMHeadRamp {
		return 2*h*h + 2*h*float64(m.Base.Vocab)
	}
	return 2 * (h*h + h*float64(maxInt(m.Base.Classes, 2)))
}

// HeadFLOPs is the final classifier's per-sample cost, paid by every
// sample that reaches the end of the model (also by non-EE baselines).
func (m *EEModel) HeadFLOPs() float64 { return m.RampFLOPs() }

// MeanExitLayer estimates the average exit layer over a difficulty
// distribution by quadrature over 1000 difficulty points.
func (m *EEModel) MeanExitLayer(cdfSamples []float64) float64 {
	if len(cdfSamples) == 0 {
		return float64(m.Base.NumLayers())
	}
	sum := 0.0
	for _, d := range cdfSamples {
		sum += float64(m.ExitLayerFor(d))
	}
	return sum / float64(len(cdfSamples))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
