package ee

import (
	"testing"

	"e3/internal/model"
	"e3/internal/workload"
)

func bertAcc() AccuracyModel {
	return AccuracyModel{BaseAccuracy: 92.7, ExitRisk: DefaultExitRisk}
}

func TestEarlyExitFraction(t *testing.T) {
	m := NewDeeBERT(model.BERTBase(), 0.4)
	// Constant trivially easy inputs: everyone exits early.
	if got := EarlyExitFraction(m, workload.Constant(0.05), 1000, 1); got != 1 {
		t.Errorf("easy exit fraction = %v, want 1", got)
	}
	// Constant maximally hard: nobody does.
	if got := EarlyExitFraction(m, workload.Constant(0.999), 1000, 1); got != 0 {
		t.Errorf("hard exit fraction = %v, want 0", got)
	}
}

func TestAccuracyEstimateMonotoneInThreshold(t *testing.T) {
	acc := bertAcc()
	dist := workload.SST2()
	prev := 100.0
	for _, th := range []float64{0.3, 0.4, 0.5} {
		m := NewDeeBERT(model.BERTBase(), th)
		a := acc.Estimate(m, dist, th, 8000, 2)
		if a > prev+1e-9 {
			t.Errorf("accuracy rose with looser threshold %v: %v after %v", th, a, prev)
		}
		if a > acc.BaseAccuracy {
			t.Errorf("EE accuracy %v above base %v", a, acc.BaseAccuracy)
		}
		prev = a
	}
}

func TestTuneEntropyHitsBudget(t *testing.T) {
	build := func(th float64) *EEModel { return NewDeeBERT(model.BERTBase(), th) }
	dist := workload.SST2()
	acc := bertAcc()

	// A generous budget should pick a loose threshold (lots of exits).
	loose, err := TuneEntropy(build, acc, dist, 89.0, 0.05, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A strict budget picks a tight one.
	tight, err := TuneEntropy(build, acc, dist, 92.0, 0.05, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Threshold <= tight.Threshold {
		t.Errorf("generous budget threshold %v not looser than strict %v", loose.Threshold, tight.Threshold)
	}
	if loose.Accuracy < 89.0 || tight.Accuracy < 92.0 {
		t.Errorf("budgets violated: %v / %v", loose.Accuracy, tight.Accuracy)
	}
	// Looser threshold must buy earlier exits (more compute saving).
	if loose.MeanExitLayer >= tight.MeanExitLayer {
		t.Errorf("loose mean exit %v not earlier than tight %v", loose.MeanExitLayer, tight.MeanExitLayer)
	}
}

func TestTuneEntropyUnreachableBudget(t *testing.T) {
	build := func(th float64) *EEModel { return NewDeeBERT(model.BERTBase(), th) }
	if _, err := TuneEntropy(build, bertAcc(), workload.SST2(), 99.9, 0.05, 0.95, 4); err == nil {
		t.Error("unreachable budget accepted")
	}
}

func TestTuneEntropyBadBounds(t *testing.T) {
	build := func(th float64) *EEModel { return NewDeeBERT(model.BERTBase(), th) }
	for _, b := range [][2]float64{{0, 0.5}, {0.5, 1}, {0.6, 0.4}} {
		if _, err := TuneEntropy(build, bertAcc(), workload.SST2(), 90, b[0], b[1], 5); err == nil {
			t.Errorf("bounds %v accepted", b)
		}
	}
}

func TestDisableUnproductiveRamps(t *testing.T) {
	m := NewDeeBERT(model.BERTBase(), 0.4)
	// Inputs exiting only around layer 6: every other ramp is useless.
	disabled := m.DisableUnproductiveRamps(workload.Constant(0.5), 0.05, 4000, 6)
	if disabled != 10 {
		t.Errorf("disabled %d ramps, want 10 (all but ramp 6)", disabled)
	}
	if !m.HasRampAfter(6) {
		t.Error("the productive ramp was disabled")
	}
	// Behaviour unchanged for those inputs.
	if got := m.ExitLayerFor(0.5); got != 6 {
		t.Errorf("exit layer after pruning = %d, want 6", got)
	}
}

func TestDisableUnproductiveRampsKeepsBroadWorkloads(t *testing.T) {
	m := NewDeeBERT(model.BERTBase(), 0.4)
	before := len(m.ActiveRamps())
	disabled := m.DisableUnproductiveRamps(workload.Mix(0.5), 0.02, 8000, 7)
	if remaining := len(m.ActiveRamps()); remaining != before-disabled {
		t.Errorf("ramp accounting off: %d active after disabling %d of %d", remaining, disabled, before)
	}
	// A broad mix keeps most mid-model ramps.
	if disabled > 6 {
		t.Errorf("disabled %d ramps on a broad mix, expected few", disabled)
	}
}
