package ee

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"e3/internal/model"
	"e3/internal/workload"
)

func TestNewRejectsBadRamps(t *testing.T) {
	base := model.BERTBase()
	p := Policy{Kind: Entropy, Threshold: 0.4, RefThreshold: 0.4}
	if _, err := New("x", base, p, []int{0}, false); err == nil {
		t.Error("ramp at 0 accepted")
	}
	if _, err := New("x", base, p, []int{12}, false); err == nil {
		t.Error("ramp at final layer accepted (final head is not an early exit)")
	}
	if _, err := New("x", base, p, []int{3, 3}, false); err == nil {
		t.Error("duplicate ramp accepted")
	}
}

func TestDeeBERTRampLayout(t *testing.T) {
	m := NewDeeBERT(model.BERTBase(), 0.4)
	ramps := m.ActiveRamps()
	if len(ramps) != 11 {
		t.Fatalf("DeeBERT ramps = %d, want 11", len(ramps))
	}
	for i, r := range ramps {
		if r != i+1 {
			t.Fatalf("ramp positions %v, want 1..11", ramps)
		}
	}
}

func TestExitLayerAnchoredToDifficulty(t *testing.T) {
	// At the reference threshold, difficulty d exits at ~ceil(d·L).
	m := NewDeeBERT(model.BERTBase(), 0.4)
	cases := []struct {
		d    float64
		want int
	}{
		{0.01, 1}, {0.49, 6}, {0.5, 6}, {0.51, 7}, {0.99, 12}, {1.0, 12},
	}
	for _, c := range cases {
		if got := m.ExitLayerFor(c.d); got != c.want {
			t.Errorf("ExitLayerFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestThresholdShiftsExits(t *testing.T) {
	base := model.BERTBase()
	loose := NewDeeBERT(base, 0.5) // easier bound → earlier exits
	ref := NewDeeBERT(base, 0.4)
	tight := NewDeeBERT(base, 0.3)
	for d := 0.1; d < 0.95; d += 0.1 {
		l, r, ti := loose.ExitLayerFor(d), ref.ExitLayerFor(d), tight.ExitLayerFor(d)
		if l > r || r > ti {
			t.Fatalf("exit layers not ordered at d=%v: loose=%d ref=%d tight=%d", d, l, r, ti)
		}
	}
	// And strictly different somewhere.
	if loose.ExitLayerFor(0.5) >= tight.ExitLayerFor(0.5) {
		t.Error("thresholds have no effect at d=0.5")
	}
}

func TestConfidenceScaleDirection(t *testing.T) {
	base := model.T5Decoder(18)
	low := NewCALM(base, 0.15)  // easy bound → earlier exits
	ref := NewCALM(base, 0.25)  // anchor
	high := NewCALM(base, 0.60) // hard bound → later exits
	d := 0.4
	if !(low.ExitLayerFor(d) <= ref.ExitLayerFor(d) && ref.ExitLayerFor(d) <= high.ExitLayerFor(d)) {
		t.Errorf("confidence threshold direction wrong: %d %d %d",
			low.ExitLayerFor(d), ref.ExitLayerFor(d), high.ExitLayerFor(d))
	}
}

func TestPatienceShiftsExits(t *testing.T) {
	base := model.BERTLarge()
	quick6 := NewPABEE(base, 6) // reference
	quick3 := NewPABEE(base, 3) // less patience → earlier
	slow9 := NewPABEE(base, 9)  // more patience → later
	d := 0.5
	if !(quick3.ExitLayerFor(d) < quick6.ExitLayerFor(d) && quick6.ExitLayerFor(d) < slow9.ExitLayerFor(d)) {
		t.Errorf("patience direction wrong: %d %d %d",
			quick3.ExitLayerFor(d), quick6.ExitLayerFor(d), slow9.ExitLayerFor(d))
	}
}

func TestDisableRampPushesExitLater(t *testing.T) {
	m := NewDeeBERT(model.BERTBase(), 0.4)
	if got := m.ExitLayerFor(0.2); got != 3 {
		t.Fatalf("baseline exit = %d, want 3", got)
	}
	for _, r := range []int{3, 4} {
		if err := m.Disable(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.ExitLayerFor(0.2); got != 5 {
		t.Errorf("exit with ramps 3,4 disabled = %d, want 5", got)
	}
	if err := m.Enable(3); err != nil {
		t.Fatal(err)
	}
	if got := m.ExitLayerFor(0.2); got != 3 {
		t.Errorf("exit after re-enable = %d, want 3", got)
	}
}

func TestDisableUnknownRamp(t *testing.T) {
	m := NewBranchyNet(model.ResNet50()) // ramps at 4, 8, 12
	if err := m.Disable(5); err == nil {
		t.Error("disabling nonexistent ramp succeeded")
	}
	if err := m.Enable(5); err == nil {
		t.Error("enabling nonexistent ramp succeeded")
	}
}

func TestAllRampsDisabledRunsFullModel(t *testing.T) {
	m := NewDeeBERT(model.BERTBase(), 0.4)
	for _, r := range m.Ramps() {
		if err := m.Disable(r); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0.0; d <= 1.0; d += 0.1 {
		if got := m.ExitLayerFor(d); got != 12 {
			t.Fatalf("with all ramps disabled, exit = %d, want 12", got)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := NewDeeBERT(model.BERTBase(), 0.4)
	c := m.Clone()
	if err := c.Disable(3); err != nil {
		t.Fatal(err)
	}
	if !m.HasRampAfter(3) {
		t.Error("disabling ramp on clone affected original")
	}
	if c.HasRampAfter(3) {
		t.Error("clone ramp not disabled")
	}
}

func TestRampFLOPs(t *testing.T) {
	bert := NewDeeBERT(model.BERTBase(), 0.4)
	llama := NewLlamaEE(model.Llama318B())
	// Classifier ramp ≈ 2·768² ≈ 1.18 MFLOPs.
	if got := bert.RampFLOPs(); got < 1e6 || got > 2e6 {
		t.Errorf("BERT ramp FLOPs = %.3g, want ~1.2e6", got)
	}
	// LM-head ramp ≈ 2·4096·128256 ≈ 1.05 GFLOPs — must dwarf a layer's
	// per-token cost to reproduce Figure 12.
	if got := llama.RampFLOPs(); got < llama.Base.Layers[0].FLOPs {
		t.Errorf("Llama ramp FLOPs %.3g not ≥ layer FLOPs %.3g", got, llama.Base.Layers[0].FLOPs)
	}
}

func TestCalibrationGLUEMidModelExit(t *testing.T) {
	// Figure 3: roughly half the GLUE samples exit by ramp 6 of DeeBERT.
	m := NewDeeBERT(model.BERTBase(), 0.4)
	rng := rand.New(rand.NewSource(11))
	for name, dist := range map[string]workload.Dist{"sst2": workload.SST2(), "qnli": workload.QNLI()} {
		exited := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if m.ExitLayerFor(dist.Sample(rng)) <= 6 {
				exited++
			}
		}
		frac := float64(exited) / n
		if frac < 0.35 || frac > 0.65 {
			t.Errorf("%s: frac exited by ramp 6 = %v, want ~0.5", name, frac)
		}
	}
}

func TestCalibrationCALM(t *testing.T) {
	// §5.1.3: ~70% of WMT tokens exit by decoder layer 2 of 8.
	m := NewCALM(model.T5Decoder(25), 0.25)
	rng := rand.New(rand.NewSource(12))
	dist := workload.WMT()
	exited := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.ExitLayerFor(dist.Sample(rng)) <= 2 {
			exited++
		}
	}
	frac := float64(exited) / n
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("CALM: frac exited by layer 2 = %v, want ~0.7", frac)
	}
}

func TestCalibrationLlamaBoolQ(t *testing.T) {
	// §5.1.3: ~50% of BoolQ inputs exit by layer 25 of 32.
	m := NewLlamaEE(model.Llama318B())
	rng := rand.New(rand.NewSource(13))
	dist := workload.BoolQ()
	exited := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.ExitLayerFor(dist.Sample(rng)) <= 25 {
			exited++
		}
	}
	frac := float64(exited) / n
	if frac < 0.38 || frac > 0.62 {
		t.Errorf("Llama: frac exited by layer 25 = %v, want ~0.5", frac)
	}
}

func TestCalibrationDistilBERTMidExit(t *testing.T) {
	// §5.1.2: a major fraction of DistilBERT-EE inputs exit right after
	// layer 3 (the middle of the 6-layer model).
	m := NewDistilBERTEE(model.DistilBERT(), 0.4)
	rng := rand.New(rand.NewSource(14))
	dist := workload.Mix(0.8)
	exited := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.ExitLayerFor(dist.Sample(rng)) <= 3 {
			exited++
		}
	}
	if frac := float64(exited) / n; frac < 0.5 {
		t.Errorf("DistilBERT-EE: frac exited by layer 3 = %v, want > 0.5", frac)
	}
}

func TestExitLayerMonotoneInDifficulty(t *testing.T) {
	models := []*EEModel{
		NewDeeBERT(model.BERTBase(), 0.4),
		NewBranchyNet(model.ResNet50()),
		NewCALM(model.T5Decoder(18), 0.25),
		NewPABEE(model.BERTLarge(), 6),
		NewLlamaEE(model.Llama318B()),
	}
	f := func(ra, rb uint16) bool {
		a := float64(ra) / 65535
		b := float64(rb) / 65535
		if a > b {
			a, b = b, a
		}
		for _, m := range models {
			ea, eb := m.ExitLayerFor(a), m.ExitLayerFor(b)
			if ea > eb || ea < 1 || eb > m.Base.NumLayers() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(15))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMeanExitLayer(t *testing.T) {
	m := NewDeeBERT(model.BERTBase(), 0.4)
	got := m.MeanExitLayer([]float64{0.01, 0.99})
	if math.Abs(got-6.5) > 1e-9 {
		t.Errorf("mean exit = %v, want 6.5", got)
	}
	if got := m.MeanExitLayer(nil); got != 12 {
		t.Errorf("mean exit of empty = %v, want L", got)
	}
}

func TestPolicyKindString(t *testing.T) {
	if Entropy.String() != "entropy" || Confidence.String() != "confidence" || Patience.String() != "patience" {
		t.Error("PolicyKind.String broken")
	}
}

func TestDepthScalePanicsOnBadThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad threshold did not panic")
		}
	}()
	Policy{Kind: Entropy, Threshold: 1.5, RefThreshold: 0.4}.DepthScale()
}
