package llm

// Continuous (iterative) batching, Orca-style: instead of padding a static
// batch until its longest request finishes, each iteration refills freed
// slots from the queue. The paper defers combining this with E3 to future
// work but observes the key fact we reproduce here: continuous batching
// fixes *cross-iteration* waste, while the EE batch-shrinking problem
// lives *within* an iteration — so early exits still need E3's splits.

import (
	"e3/internal/ee"
	"e3/internal/exec"
	"e3/internal/gpu"
	"e3/internal/workload"
)

// continuousState tracks one in-flight request's progress.
type continuousState struct {
	req  Request
	next int // next token index to generate
}

// ContinuousBatchStats summarizes a continuous-batching run.
type ContinuousBatchStats struct {
	// Completed requests and the virtual time consumed.
	Completed int
	Elapsed   float64
	// Iterations executed and mean slot occupancy (1 = no bubbles).
	Iterations int
	Occupancy  float64
}

// RunContinuous serves requests with iterative scheduling on one device:
// every iteration forms a token batch from up to `slots` active requests,
// refilling freed slots immediately. Exit behaviour follows the model's
// ramps (within-iteration shrinkage for EE models). It stops once all
// requests complete.
func RunContinuous(m *ee.EEModel, reqs []Request, slots int, spec gpu.Spec) ContinuousBatchStats {
	if slots < 1 {
		slots = 1
	}
	L := m.Base.NumLayers()
	var stats ContinuousBatchStats
	queue := append([]Request(nil), reqs...)
	active := make([]*continuousState, 0, slots)
	filled := 0

	for len(queue) > 0 || len(active) > 0 {
		// Refill freed slots.
		for len(active) < slots && len(queue) > 0 {
			active = append(active, &continuousState{req: queue[0]})
			queue = queue[1:]
		}
		// One iteration: one token per active request.
		batch := make([]workload.Sample, len(active))
		for i, st := range active {
			batch[i] = workload.Sample{ID: int64(i), Difficulty: st.req.Difficulties[st.next]}
		}
		res := exec.RunSegment(m, 1, L, batch, spec, 1)
		stats.Elapsed += res.Duration
		stats.Iterations++
		filled += len(active)

		// Advance and retire.
		kept := active[:0]
		for _, st := range active {
			st.next++
			if st.next >= st.req.Tokens() {
				stats.Completed++
				continue
			}
			kept = append(kept, st)
		}
		active = kept
	}
	if stats.Iterations > 0 {
		stats.Occupancy = float64(filled) / float64(stats.Iterations*slots)
	}
	return stats
}

// GoodputContinuous measures requests/second under continuous batching on
// nGPU identical devices, each running an independent iterative scheduler
// over its share of a request stream.
func GoodputContinuous(m *ee.EEModel, lengths LengthDist, dist workload.Dist, slots, nGPU, nReqs int, spec gpu.Spec, seed int64) float64 {
	reqs := GenRequests(nReqs, lengths, dist, seed)
	stats := RunContinuous(m, reqs, slots, spec)
	if stats.Elapsed == 0 {
		return 0
	}
	return float64(stats.Completed) / stats.Elapsed * float64(nGPU)
}
