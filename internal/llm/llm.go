// Package llm serves autoregressive models (§5.1.3): requests generate one
// token per model pass, so a batch of requests is a stream of token
// iterations. Static batching (T5, CALM) pads every request to the
// longest generation in its batch; E3 instead feeds the token stream
// through its split pipeline, so finished requests never occupy slots and
// per-token early exits (CALM-style) shrink only the forwarded batch.
package llm

import (
	"math"
	"math/rand"

	"e3/internal/ee"
	"e3/internal/exec"
	"e3/internal/gpu"
	"e3/internal/workload"
)

// Request is one generation job: its output length and a difficulty per
// generated token.
type Request struct {
	Difficulties []float64
}

// Tokens is the request's output length.
func (r Request) Tokens() int { return len(r.Difficulties) }

// LengthDist draws output lengths.
type LengthDist interface {
	Sample(rng *rand.Rand) int
	Mean() float64
}

// FixedLen always generates n tokens (translation-like).
type FixedLen int

// Sample returns the fixed length.
func (f FixedLen) Sample(*rand.Rand) int { return int(f) }

// Mean returns the fixed length.
func (f FixedLen) Mean() float64 { return float64(f) }

// GeometricLen draws lengths ≥ 1 with the given mean (summarization-like
// variable outputs; the paper's SAMSum runs averaged 18 tokens).
type GeometricLen struct{ MeanTokens float64 }

// Sample draws a geometric length.
func (g GeometricLen) Sample(rng *rand.Rand) int {
	if g.MeanTokens <= 1 {
		return 1
	}
	p := 1 / g.MeanTokens
	n := 1
	for rng.Float64() > p && n < 512 {
		n++
	}
	return n
}

// Mean returns the configured mean.
func (g GeometricLen) Mean() float64 { return math.Max(g.MeanTokens, 1) }

// UniformLen draws lengths uniformly in [Min, Max] (summarization-like
// outputs with bounded spread).
type UniformLen struct{ Min, Max int }

// Sample draws a uniform length.
func (u UniformLen) Sample(rng *rand.Rand) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rng.Intn(u.Max-u.Min+1)
}

// Mean returns the distribution mean.
func (u UniformLen) Mean() float64 { return float64(u.Min+u.Max) / 2 }

// GenRequests draws n requests with token difficulties from dist.
func GenRequests(n int, lengths LengthDist, dist workload.Dist, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, n)
	for i := range out {
		l := lengths.Sample(rng)
		d := make([]float64, l)
		for j := range d {
			d[j] = dist.Sample(rng)
		}
		out[i] = Request{Difficulties: d}
	}
	return out
}

// padDifficulty is the difficulty assigned to pad tokens of finished
// requests under static batching: trivially easy, they exit at the first
// ramp (or run the full model when the model has no ramps — the padding
// waste the paper's T5 baseline pays).
const padDifficulty = 0.01

// StaticBatchTime returns the time one GPU needs to serve a batch of
// requests with static batching: maxLen iterations, each a full pass over
// a constant-width token batch (finished requests contribute pad tokens).
// Exit behaviour follows the model's ramps — none for vanilla T5,
// per-layer confidence exits for CALM.
func StaticBatchTime(m *ee.EEModel, reqs []Request, spec gpu.Spec) float64 {
	if len(reqs) == 0 {
		return 0
	}
	maxLen := 0
	for _, r := range reqs {
		if r.Tokens() > maxLen {
			maxLen = r.Tokens()
		}
	}
	L := m.Base.NumLayers()
	total := 0.0
	for it := 0; it < maxLen; it++ {
		batch := make([]workload.Sample, len(reqs))
		for i, r := range reqs {
			d := padDifficulty
			if it < r.Tokens() {
				d = r.Difficulties[it]
			}
			batch[i] = workload.Sample{ID: int64(i), Difficulty: d}
		}
		total += exec.RunSegment(m, 1, L, batch, spec, 1).Duration
	}
	return total
}

// GoodputStatic measures requests/second for static batching over nGPU
// identical devices serving independent batches in parallel: each GPU
// repeatedly takes `batch` requests and runs them to completion.
func GoodputStatic(m *ee.EEModel, lengths LengthDist, dist workload.Dist, batch, nGPU int, spec gpu.Spec, trials int, seed int64) float64 {
	if trials < 1 {
		trials = 1
	}
	totalTime := 0.0
	totalReqs := 0
	for tr := 0; tr < trials; tr++ {
		reqs := GenRequests(batch, lengths, dist, seed+int64(tr))
		totalTime += StaticBatchTime(m, reqs, spec)
		totalReqs += len(reqs)
	}
	if totalTime == 0 {
		return 0
	}
	return float64(totalReqs) / totalTime * float64(nGPU)
}

// StreamBatchTime returns the time one E3 split chain spends advancing one
// token-iteration for a full batch: splits run graph-mode back to back.
// Used to sanity-check plans; the real E3 numbers come from the pipeline
// simulation over the token stream.
func StreamBatchTime(m *ee.EEModel, bounds []int, batch []workload.Sample, spec gpu.Spec) float64 {
	total := 0.0
	from := 1
	cur := batch
	all := make([]int, 0, len(bounds)+1)
	all = append(all, bounds...)
	all = append(all, m.Base.NumLayers())
	for _, b := range all {
		res := exec.RunSplit(m, from, b, cur, spec, 1)
		total += res.Duration
		cur = res.Survivors
		from = b + 1
		if len(cur) == 0 {
			break
		}
	}
	return total
}
