package llm

import (
	"math"
	"math/rand"
	"testing"

	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/workload"
)

func TestGeometricLenMean(t *testing.T) {
	g := GeometricLen{MeanTokens: 18}
	rng := rand.New(rand.NewSource(1))
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		l := g.Sample(rng)
		if l < 1 {
			t.Fatal("length below 1")
		}
		sum += l
	}
	mean := float64(sum) / n
	if math.Abs(mean-18) > 1 {
		t.Errorf("geometric mean length = %v, want ~18", mean)
	}
}

func TestFixedLen(t *testing.T) {
	if FixedLen(25).Sample(nil) != 25 || FixedLen(25).Mean() != 25 {
		t.Error("FixedLen broken")
	}
}

func TestGenRequestsDeterministic(t *testing.T) {
	a := GenRequests(10, FixedLen(5), workload.WMT(), 3)
	b := GenRequests(10, FixedLen(5), workload.WMT(), 3)
	for i := range a {
		if a[i].Tokens() != 5 {
			t.Fatalf("request %d has %d tokens", i, a[i].Tokens())
		}
		for j := range a[i].Difficulties {
			if a[i].Difficulties[j] != b[i].Difficulties[j] {
				t.Fatal("GenRequests not deterministic")
			}
		}
	}
}

func TestStaticBatchTimeScalesWithLength(t *testing.T) {
	m := ee.NewVanilla(model.T5Decoder(18))
	spec := gpu.Get(gpu.A6000)
	short := GenRequests(4, FixedLen(5), workload.WMT(), 1)
	long := GenRequests(4, FixedLen(20), workload.WMT(), 1)
	ts := StaticBatchTime(m, short, spec)
	tl := StaticBatchTime(m, long, spec)
	if ratio := tl / ts; math.Abs(ratio-4) > 0.1 {
		t.Errorf("length 20/5 time ratio = %v, want ~4 (per-token iterations)", ratio)
	}
}

func TestStaticBatchPaddingWaste(t *testing.T) {
	// Mixed lengths: the batch takes as long as its longest request.
	m := ee.NewVanilla(model.T5Decoder(18))
	spec := gpu.Get(gpu.A6000)
	mixed := []Request{
		{Difficulties: make([]float64, 2)},
		{Difficulties: make([]float64, 30)},
	}
	uniform := []Request{
		{Difficulties: make([]float64, 30)},
		{Difficulties: make([]float64, 30)},
	}
	if tm, tu := StaticBatchTime(m, mixed, spec), StaticBatchTime(m, uniform, spec); math.Abs(tm-tu) > 1e-9 {
		t.Errorf("mixed batch %v != uniform batch %v — padding must dominate", tm, tu)
	}
}

func TestCALMFasterThanT5AtBatch1(t *testing.T) {
	// §5.1.3: at batch 1, CALM's per-token exits (70% by layer 2) give a
	// large speedup over vanilla T5.
	t5 := ee.NewVanilla(model.T5Decoder(25))
	calm := ee.NewCALM(model.T5Decoder(25), 0.25)
	spec := gpu.Get(gpu.A6000)
	gT5 := GoodputStatic(t5, FixedLen(25), workload.WMT(), 1, 4, spec, 30, 2)
	gCALM := GoodputStatic(calm, FixedLen(25), workload.WMT(), 1, 4, spec, 30, 2)
	ratio := gCALM / gT5
	if ratio < 1.5 {
		t.Errorf("CALM/T5 at batch 1 = %v, want ≥ 1.5 (paper: 2.84)", ratio)
	}
}

func TestCALMAdvantageShrinksWithBatch(t *testing.T) {
	t5 := ee.NewVanilla(model.T5Decoder(25))
	calm := ee.NewCALM(model.T5Decoder(25), 0.25)
	spec := gpu.Get(gpu.A6000)
	r1 := GoodputStatic(calm, FixedLen(25), workload.WMT(), 1, 4, spec, 20, 3) /
		GoodputStatic(t5, FixedLen(25), workload.WMT(), 1, 4, spec, 20, 3)
	r16 := GoodputStatic(calm, FixedLen(25), workload.WMT(), 16, 4, spec, 20, 3) /
		GoodputStatic(t5, FixedLen(25), workload.WMT(), 16, 4, spec, 20, 3)
	if r16 >= r1 {
		t.Errorf("CALM advantage did not shrink with batch: %v at 1, %v at 16", r1, r16)
	}
}

func TestGoodputScalesWithGPUs(t *testing.T) {
	m := ee.NewVanilla(model.T5Decoder(18))
	spec := gpu.Get(gpu.A6000)
	g1 := GoodputStatic(m, FixedLen(10), workload.WMT(), 4, 1, spec, 10, 4)
	g4 := GoodputStatic(m, FixedLen(10), workload.WMT(), 4, 4, spec, 10, 4)
	if math.Abs(g4/g1-4) > 1e-9 {
		t.Errorf("GPU scaling = %v, want 4", g4/g1)
	}
}

func TestStreamBatchTimeDrainsBounds(t *testing.T) {
	calm := ee.NewCALM(model.T5Decoder(25), 0.25)
	spec := gpu.Get(gpu.A6000)
	batch := make([]workload.Sample, 8)
	for i := range batch {
		batch[i] = workload.Sample{ID: int64(i), Difficulty: 0.1} // all exit by layer 2... actually at first ramp ≥ 0.8
	}
	withSplit := StreamBatchTime(calm, []int{2}, batch, spec)
	noSplit := StreamBatchTime(calm, nil, batch, spec)
	if withSplit <= 0 || noSplit <= 0 {
		t.Fatal("non-positive stream times")
	}
	// All tokens exit at the layer-2 boundary: the split chain stops
	// there, so it must be cheaper than the single 8-layer split.
	if withSplit >= noSplit {
		t.Errorf("split stream %v not cheaper than unsplit %v for easy tokens", withSplit, noSplit)
	}
}

func TestEmptyBatch(t *testing.T) {
	m := ee.NewVanilla(model.T5Decoder(18))
	if StaticBatchTime(m, nil, gpu.Get(gpu.A6000)) != 0 {
		t.Error("empty batch should be free")
	}
}
