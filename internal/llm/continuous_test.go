package llm

import (
	"math"
	"testing"

	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/workload"
)

func TestContinuousCompletesEverything(t *testing.T) {
	m := ee.NewVanilla(model.T5Decoder(18))
	reqs := GenRequests(40, UniformLen{Min: 3, Max: 30}, workload.WMT(), 1)
	stats := RunContinuous(m, reqs, 8, gpu.Get(gpu.A6000))
	if stats.Completed != 40 {
		t.Fatalf("completed %d of 40", stats.Completed)
	}
	if stats.Elapsed <= 0 || stats.Iterations <= 0 {
		t.Fatalf("bad stats: %+v", stats)
	}
	if stats.Occupancy <= 0 || stats.Occupancy > 1 {
		t.Fatalf("occupancy %v outside (0,1]", stats.Occupancy)
	}
}

func TestContinuousBeatsStaticOnVariableLengths(t *testing.T) {
	// Orca's result: with variable output lengths, refilling slots beats
	// padding to the longest request.
	m := ee.NewVanilla(model.T5Decoder(18))
	spec := gpu.Get(gpu.A6000)
	lengths := UniformLen{Min: 3, Max: 30}
	dist := workload.WMT()

	gStatic := GoodputStatic(m, lengths, dist, 16, 1, spec, 24, 2)
	gCont := GoodputContinuous(m, lengths, dist, 16, 1, 384, spec, 2)
	if gCont <= gStatic*1.15 {
		t.Errorf("continuous %v not well above static %v", gCont, gStatic)
	}
}

func TestContinuousMatchesStaticOnFixedLengths(t *testing.T) {
	// With identical lengths there is nothing to refill: throughputs agree
	// within the tail effect of the final draining batches.
	m := ee.NewVanilla(model.T5Decoder(18))
	spec := gpu.Get(gpu.A6000)
	gStatic := GoodputStatic(m, FixedLen(20), workload.WMT(), 8, 1, spec, 24, 3)
	gCont := GoodputContinuous(m, FixedLen(20), workload.WMT(), 8, 1, 192, spec, 3)
	if math.Abs(gCont-gStatic)/gStatic > 0.1 {
		t.Errorf("continuous %v vs static %v differ by >10%% on fixed lengths", gCont, gStatic)
	}
}

func TestContinuousDoesNotFixEEShrinkage(t *testing.T) {
	// The paper's point: iterative scheduling is orthogonal to E3 — the
	// batch still shrinks *within* an iteration for an EE model, so
	// CALM-with-Orca keeps paying per-ramp overheads that vanilla does not.
	spec := gpu.Get(gpu.A6000)
	lengths := UniformLen{Min: 3, Max: 30}
	dist := workload.WMT()
	vanilla := GoodputContinuous(ee.NewVanilla(model.T5Decoder(18)), lengths, dist, 16, 1, 384, spec, 4)
	calm := GoodputContinuous(ee.NewCALM(model.T5Decoder(18), 0.25), lengths, dist, 16, 1, 384, spec, 4)
	if calm >= vanilla {
		t.Errorf("continuous batching alone should not rescue CALM at batch 16: calm %v vs vanilla %v", calm, vanilla)
	}
}

func TestContinuousSlotClamp(t *testing.T) {
	m := ee.NewVanilla(model.T5Decoder(18))
	reqs := GenRequests(4, FixedLen(5), workload.WMT(), 5)
	stats := RunContinuous(m, reqs, 0, gpu.Get(gpu.A6000)) // clamps to 1
	if stats.Completed != 4 {
		t.Fatalf("completed %d of 4 with slot clamp", stats.Completed)
	}
}

func TestGoodputContinuousEmpty(t *testing.T) {
	m := ee.NewVanilla(model.T5Decoder(18))
	if g := GoodputContinuous(m, FixedLen(5), workload.WMT(), 4, 1, 0, gpu.Get(gpu.A6000), 6); g != 0 {
		t.Errorf("zero requests gave goodput %v", g)
	}
}
