// Package flame is the deterministic virtual-time compute profiler: it
// folds the event loop's execution into weighted sample stacks so "where
// did the fleet's GPU-seconds go" has a structural answer instead of a
// single utilization number. Busy time folds as
//
//	gpu:<kind> ; dev:<id> ; model:<name> ; split:<s> ; layers:<a>-<b> ;
//	    {useful | ramp-overhead | pad-waste}
//
// and every gap between batches folds as a bubble with a cause taxonomy
//
//	gpu:<kind> ; dev:<id> ; bubble ; split:<s> ;
//	    {queue-starved | transfer-blocked | fuse-blocked | drained | idle}
//
// fed by the same boundary hooks that drive slo.Attribution (execute,
// transfer, fuse), so the profile cannot drift from the run it describes:
// Reconcile checks the per-device busy totals against
// metrics.UtilizationTracker's spans *exactly* and folds any disagreement
// into the conservation report, like telemetry.Reconcile.
//
// All weights are integer virtual nanoseconds. Every span endpoint is
// rounded once (toNanos) and all arithmetic after that is integer, so
// totals are associative: the same seed produces byte-identical folded
// output regardless of accumulation order, and busy + bubble − overlap −
// excess == horizon holds with zero residual, not "within epsilon".
//
// Like audit.Ledger and telemetry.Tracer, a nil *Profiler is valid and
// records nothing; call sites thread it unconditionally.
package flame

import (
	"fmt"
	"math"

	"e3/internal/audit"
	"e3/internal/metrics"
)

// toNanos converts a virtual-seconds timestamp or duration to integer
// virtual nanoseconds. Each float is rounded exactly once at the profiler
// boundary; everything downstream is integer math.
func toNanos(x float64) int64 {
	return int64(math.Round(x * 1e9))
}

// Bubble-cause leaf frames. Interior gaps are classified by what the
// device was waiting for; boundary gaps by where in the run they sit.
const (
	classQueueStarved = iota // device free, nothing upstream to run
	classTransferBlocked     // survivors in flight toward this stage
	classFuseBlocked         // merge queue holding survivors for re-formation
	classDrained             // after the device's last batch, to end of run
	classIdle                // before the device's first batch (or never ran)
	numClasses
)

// className maps the class index to its leaf frame.
var className = [numClasses]string{
	"queue-starved", "transfer-blocked", "fuse-blocked", "drained", "idle",
}

// ringSize bounds the per-stage transfer/fuse interval memory used for
// gap classification. Gaps are classified against *recent* activity at
// the same stage, so a small ring is enough; it keeps the profiler O(1)
// memory in run length.
const ringSize = 64

// ivlRing is a fixed-size ring of [start, end) intervals in nanos.
type ivlRing struct {
	buf  [ringSize][2]int64
	n    int
	next int
}

func (r *ivlRing) push(s, e int64) {
	r.buf[r.next] = [2]int64{s, e}
	r.next = (r.next + 1) % ringSize
	if r.n < ringSize {
		r.n++
	}
}

// overlaps reports whether any retained interval intersects [lo, hi).
func (r *ivlRing) overlaps(lo, hi int64) bool {
	for i := 0; i < r.n; i++ {
		iv := r.buf[i]
		if iv[0] < hi && iv[1] > lo {
			return true
		}
	}
	return false
}

// devState is one device's streaming fold state.
type devState struct {
	id, kind string
	// started flips on the first executed batch; before that the device's
	// whole past is a leading idle gap.
	started bool
	// lastEndN is the integer end of device coverage so far (the union
	// cursor): execute spans arrive start-ordered off the event loop, so a
	// single cursor computes the exact span union.
	lastEndN int64
	// firstSplit/lastSplit attribute boundary gaps (leading idle, trailing
	// drain) to the stage the device was serving.
	firstSplit, lastSplit int
	// Integer totals for the conservation identity
	// busy − overlap − excess + bubble == horizon.
	busyN, overlapN, gapN int64
}

// execKey caches the three busy-leaf folded stacks per execution shape.
type execKey struct {
	dev, model   string
	split, from, to int
}

// execStacks holds the prebuilt folded stacks for one execution shape.
type execStacks struct {
	useful, ramp, pad string
}

// gapKey caches bubble stacks per (device, split, class).
type gapKey struct {
	dev   string
	split int
	class uint8
}

// Profiler folds boundary events into weighted stacks. All recording
// happens synchronously on the event loop's goroutine; timestamps are
// virtual, stamped by the caller from the sim clock.
type Profiler struct {
	start  float64
	startN int64
	// horizon tracks the latest event time seen (and any CloseAt), in
	// both domains; the float keeps Profile metadata readable.
	horizon  float64
	horizonN int64

	devs  map[string]*devState
	order []string // device registration order; folds walk it sorted

	// weights accumulates folded-stack → virtual nanoseconds. Boundary
	// gaps (leading idle before the first batch) land here as they are
	// classified; trailing gaps are closed by Profile's pure fold.
	weights map[string]int64

	execCache map[execKey]*execStacks
	gapCache  map[gapKey]string

	// xfer[s] holds recent activation-transfer intervals *into* stage s;
	// fuse[s] holds recent merge-queue fusion waits at stage s. Both feed
	// gap classification only.
	xfer map[int]*ivlRing
	fuse map[int]*ivlRing
}

// NewProfiler starts a profiler whose horizon opens at virtual time start.
func NewProfiler(start float64) *Profiler {
	return &Profiler{
		start: start, startN: toNanos(start),
		horizon: start, horizonN: toNanos(start),
		devs:      make(map[string]*devState),
		weights:   make(map[string]int64),
		execCache: make(map[execKey]*execStacks),
		gapCache:  make(map[gapKey]string),
		xfer:      make(map[int]*ivlRing),
		fuse:      make(map[int]*ivlRing),
	}
}

// Enabled reports whether the profiler records anything.
func (p *Profiler) Enabled() bool { return p != nil }

// Register ensures a device appears in the fold even if it never runs a
// batch (its whole horizon is then an idle bubble), mirroring
// metrics.UtilizationTracker.Register.
func (p *Profiler) Register(devID, gpuKind string) {
	if p == nil {
		return
	}
	p.dev(devID, gpuKind)
}

func (p *Profiler) dev(devID, gpuKind string) *devState {
	d, ok := p.devs[devID]
	if !ok {
		d = &devState{id: devID, kind: gpuKind, lastEndN: p.startN}
		p.devs[devID] = d
		p.order = append(p.order, devID)
	}
	return d
}

func (p *Profiler) extendHorizon(at float64) {
	if at > p.horizon {
		p.horizon = at
		p.horizonN = toNanos(at)
	}
}

// CloseAt extends the profile horizon to the run's end time (mirroring
// GoodputMeter.CloseAt) so trailing device gaps are measured against the
// full run, not the last busy instant.
func (p *Profiler) CloseAt(at float64) {
	if p == nil {
		return
	}
	p.extendHorizon(at)
}

// Execute folds one executed batch: [start, end] busy on devID, of which
// ramp seconds were ramp-head overhead and pad seconds were pad-waste
// (samples riding a compiled split past their exit). Any gap since the
// device's previous batch is classified and folded as a bubble. Calls
// must arrive in nondecreasing start order per device — the event loop's
// dispatch order — which lets a single cursor compute the exact busy
// union.
func (p *Profiler) Execute(devID, gpuKind, model string, split, from, to int, start, end, ramp, pad float64) {
	if p == nil {
		return
	}
	d := p.dev(devID, gpuKind)
	sN, eN := toNanos(start), toNanos(end)
	if eN < sN {
		eN = sN
	}
	p.extendHorizon(end)

	// Decompose busy time. The ramp and pad components are rounded
	// independently, so the integer dust (at most a couple of nanoseconds)
	// lands in useful: the three leaves always sum to the span exactly.
	totalN := eN - sN
	rampN, padN := toNanos(ramp), toNanos(pad)
	if rampN < 0 {
		rampN = 0
	}
	if padN < 0 {
		padN = 0
	}
	if padN > totalN {
		padN = totalN
	}
	if rampN > totalN-padN {
		rampN = totalN - padN
	}
	usefulN := totalN - rampN - padN

	// Classify the gap (or overlap) against the device's coverage cursor.
	if !d.started {
		d.started = true
		d.firstSplit, d.lastSplit = split, split
		if lead := sN - p.startN; lead > 0 {
			// Leading idle: the device was provisioned before its first
			// batch arrived.
			p.weights[p.gapStack(d, split, classIdle)] += lead
			d.gapN += lead
		}
	} else if sN >= d.lastEndN {
		if gap := sN - d.lastEndN; gap > 0 {
			class := p.classifyGap(split, d.lastEndN, sN)
			p.weights[p.gapStack(d, split, class)] += gap
			d.gapN += gap
		}
	} else {
		// Overlapping busy spans (the Serial runner credits every batch of
		// a phase at the phase start): account the double-counted time so
		// the conservation identity stays exact.
		ov := eN
		if d.lastEndN < ov {
			ov = d.lastEndN
		}
		d.overlapN += ov - sN
	}
	if eN > d.lastEndN {
		d.lastEndN = eN
	}
	d.lastSplit = split
	d.busyN += totalN

	st := p.execStacks(d, model, split, from, to)
	if usefulN > 0 {
		p.weights[st.useful] += usefulN
	}
	if rampN > 0 {
		p.weights[st.ramp] += rampN
	}
	if padN > 0 {
		p.weights[st.pad] += padN
	}
}

// Transfer records an activation transfer *into* toStage over
// [start, end]; gaps at toStage that overlap it classify as
// transfer-blocked.
func (p *Profiler) Transfer(toStage int, start, end float64) {
	if p == nil {
		return
	}
	p.extendHorizon(end)
	r := p.xfer[toStage]
	if r == nil {
		r = &ivlRing{}
		p.xfer[toStage] = r
	}
	r.push(toNanos(start), toNanos(end))
}

// Fuse records a merge-queue fusion wait at stage over [start, end]; gaps
// at that stage overlapping it classify as fuse-blocked.
func (p *Profiler) Fuse(stage int, start, end float64) {
	if p == nil {
		return
	}
	p.extendHorizon(end)
	r := p.fuse[stage]
	if r == nil {
		r = &ivlRing{}
		p.fuse[stage] = r
	}
	r.push(toNanos(start), toNanos(end))
}

// classifyGap names the cause of an interior device gap [lo, hi) before a
// batch of the given stage ran. Precedence: an in-flight transfer toward
// the stage beats a fusion wait beats plain queue starvation — the
// upstream-most cause wins.
func (p *Profiler) classifyGap(stage int, lo, hi int64) int {
	if r := p.xfer[stage]; r != nil && r.overlaps(lo, hi) {
		return classTransferBlocked
	}
	if r := p.fuse[stage]; r != nil && r.overlaps(lo, hi) {
		return classFuseBlocked
	}
	return classQueueStarved
}

// execStacks returns the cached busy-leaf stacks for one execution shape.
func (p *Profiler) execStacks(d *devState, model string, split, from, to int) *execStacks {
	k := execKey{dev: d.id, model: model, split: split, from: from, to: to}
	st, ok := p.execCache[k]
	if !ok {
		prefix := fmt.Sprintf("gpu:%s;dev:%s", escapeFrame(d.kind), escapeFrame(d.id))
		if model != "" {
			// Span-replayed profiles (FromSpans) carry no model name and
			// omit the frame rather than folding an empty one.
			prefix += ";model:" + escapeFrame(model)
		}
		prefix += fmt.Sprintf(";split:%d", split)
		if from > 0 || to > 0 {
			prefix += fmt.Sprintf(";layers:%d-%d", from, to)
		}
		st = &execStacks{
			useful: prefix + ";useful",
			ramp:   prefix + ";ramp-overhead",
			pad:    prefix + ";pad-waste",
		}
		p.execCache[k] = st
	}
	return st
}

// gapStack returns the cached bubble stack for (device, split, class).
// A negative split (a device that never ran) omits the split frame.
func (p *Profiler) gapStack(d *devState, split, class int) string {
	k := gapKey{dev: d.id, split: split, class: uint8(class)}
	s, ok := p.gapCache[k]
	if !ok {
		if split < 0 {
			s = fmt.Sprintf("gpu:%s;dev:%s;bubble;%s",
				escapeFrame(d.kind), escapeFrame(d.id), className[class])
		} else {
			s = fmt.Sprintf("gpu:%s;dev:%s;bubble;split:%d;%s",
				escapeFrame(d.kind), escapeFrame(d.id), split, className[class])
		}
		p.gapCache[k] = s
	}
	return s
}

// Profile folds the current state into an immutable Profile at the
// profiler's horizon. The fold is pure: trailing gaps (drained devices,
// never-run devices) are closed into the returned profile without
// mutating the profiler, so per-window snapshots and the final profile
// come from the same accumulator.
func (p *Profiler) Profile() *Profile {
	if p == nil {
		return &Profile{Schema: ProfileSchema, Stacks: map[string]int64{}}
	}
	pr := &Profile{
		Schema: ProfileSchema,
		StartS: p.start,
		EndS:   p.horizon,
		Stacks: make(map[string]int64, len(p.weights)+len(p.devs)),
	}
	// Same-key map copy: order-independent.
	for k, v := range p.weights {
		pr.Stacks[k] = v
	}
	horizonLen := p.horizonN - p.startN
	for _, id := range p.sortedDevs() {
		d := p.devs[id]
		dt := DeviceTotals{
			ID: d.id, Kind: d.kind,
			BusyNanos:    d.busyN,
			OverlapNanos: d.overlapN,
			BubbleNanos:  d.gapN,
			HorizonNanos: horizonLen,
		}
		switch {
		case !d.started:
			// Never ran: the whole horizon is one idle bubble.
			if horizonLen > 0 {
				pr.Stacks[p.gapStack(d, -1, classIdle)] += horizonLen
				dt.BubbleNanos += horizonLen
			}
		case d.lastEndN < p.horizonN:
			// Trailing drain: after the device's last batch, to end of run.
			gap := p.horizonN - d.lastEndN
			pr.Stacks[p.gapStack(d, d.lastSplit, classDrained)] += gap
			dt.BubbleNanos += gap
		case d.lastEndN > p.horizonN:
			// Work past the measurement horizon (possible only when the
			// caller closed the profile early): excess keeps the identity.
			dt.ExcessNanos = d.lastEndN - p.horizonN
		}
		pr.Devices = append(pr.Devices, dt)
		pr.TotalNanos += dt.BusyNanos - dt.OverlapNanos - dt.ExcessNanos + dt.BubbleNanos
	}
	return pr
}

// sortedDevs returns device IDs in sorted order for deterministic folds.
func (p *Profiler) sortedDevs() []string {
	out := append([]string(nil), p.order...)
	sortStrings(out)
	return out
}

// ReconcileStat is the outcome of checking the profile against the
// utilization ledger: Residual is the total integer disagreement in
// nanoseconds (0 means the profile accounts for every device's busy and
// idle time exactly).
type ReconcileStat struct {
	// Devices is the number of devices cross-checked.
	Devices int `json:"devices"`
	// BusyNanos and BubbleNanos total the profile's two sides.
	BusyNanos   int64 `json:"busy_nanos"`
	BubbleNanos int64 `json:"bubble_nanos"`
	// Residual sums |flame busy − ledger busy| and |conservation identity
	// residual| across devices, plus 1 per device-set mismatch.
	Residual int64 `json:"residual_nanos"`
	// Checked marks that a reconcile ran (a zero stat with Checked=false
	// means no profiler was attached).
	Checked bool `json:"checked"`
}

// OK reports an exact reconcile.
func (s ReconcileStat) OK() bool { return s.Checked && s.Residual == 0 }

// Verify cross-checks the fold against the utilization tracker's busy
// spans: per device, the flame busy total must equal the span sum in
// integer nanoseconds *exactly* (both sides round the same floats once),
// and busy − overlap − excess + bubble must equal the horizon. It returns
// the totals and residual without judging them; Reconcile folds failures
// into a conservation report.
func (p *Profiler) Verify(util *metrics.UtilizationTracker) ReconcileStat {
	if p == nil {
		return ReconcileStat{}
	}
	return p.reconcile(nil, util)
}

// Reconcile runs Verify and folds every disagreement into the
// conservation report, like telemetry.Reconcile: a profile that cannot
// account for the run's GPU time exactly is a recording bug and the audit
// must fail on it. A nil profiler reconciles vacuously.
func (p *Profiler) Reconcile(rep *audit.Report, util *metrics.UtilizationTracker) ReconcileStat {
	if p == nil || rep == nil {
		return ReconcileStat{}
	}
	return p.reconcile(rep, util)
}

// reconcile is the shared check; a nil rep collects the residual without
// reporting violations.
func (p *Profiler) reconcile(rep *audit.Report, util *metrics.UtilizationTracker) ReconcileStat {
	pr := p.Profile()
	stat := ReconcileStat{Devices: len(pr.Devices), Checked: true}
	seen := make(map[string]bool, len(pr.Devices))
	for _, dt := range pr.Devices {
		seen[dt.ID] = true
		stat.BusyNanos += dt.BusyNanos
		stat.BubbleNanos += dt.BubbleNanos
		if got := dt.BusyNanos - dt.OverlapNanos - dt.ExcessNanos + dt.BubbleNanos; got != dt.HorizonNanos {
			stat.Residual += absInt64(got - dt.HorizonNanos)
			if rep != nil {
				rep.Violate("flame: device %s accounts %dns of a %dns horizon (busy %d - overlap %d - excess %d + bubble %d)",
					dt.ID, got, dt.HorizonNanos, dt.BusyNanos, dt.OverlapNanos, dt.ExcessNanos, dt.BubbleNanos)
			}
		}
		if util != nil {
			ledger := int64(0)
			for _, sp := range util.BusySpans(dt.ID) {
				ledger += toNanos(sp[1]) - toNanos(sp[0])
			}
			if ledger != dt.BusyNanos {
				stat.Residual += absInt64(dt.BusyNanos - ledger)
				if rep != nil {
					rep.Violate("flame: device %s busy %dns disagrees with utilization ledger %dns",
						dt.ID, dt.BusyNanos, ledger)
				}
			}
		}
	}
	if util != nil {
		for _, name := range util.Resources() {
			if !seen[name] {
				// A ledger resource the profiler never saw counts as one
				// unit of residual so the mismatch is visible.
				stat.Residual++
				if rep != nil {
					rep.Violate("flame: utilization ledger tracks device %s the profiler never saw", name)
				}
			}
		}
	}
	return stat
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
