package flame

// pprof export: the profile encoded as a gzip-compressed pprof
// profile.proto, loadable with `go tool pprof <file>`. The sample value
// is virtual nanoseconds ("virtualtime/nanoseconds"), one Sample per
// folded stack with leaf-first location ids, one Function/Location pair
// per unique frame. The encoder is hand-rolled protobuf (varint +
// length-delimited only — the whole message needs nothing else) so the
// repo stays dependency-free; a golden test decodes it back with an
// equally hand-rolled reader.
//
// Determinism: strings enter the table in sorted-stack/root-first-frame
// order, the gzip header carries no timestamp, and no wall-clock field is
// populated, so the same profile always encodes to the same bytes.

import (
	"compress/gzip"
	"io"
)

// profile.proto field numbers (only the ones we emit).
const (
	profSampleType  = 1 // repeated ValueType
	profSample      = 2 // repeated Sample
	profLocation    = 4 // repeated Location
	profFunction    = 5 // repeated Function
	profStringTable = 6 // repeated string
	profDuration    = 10
	profPeriodType  = 11 // ValueType
	profPeriod      = 12

	vtType = 1 // ValueType.type (string index)
	vtUnit = 2 // ValueType.unit

	sampleLocationID = 1 // Sample.location_id (packed uint64)
	sampleValue      = 2 // Sample.value (packed int64)

	locID   = 1 // Location.id
	locLine = 4 // Location.line

	lineFunctionID = 1 // Line.function_id

	funcID         = 1 // Function.id
	funcName       = 2 // Function.name (string index)
	funcSystemName = 3
	funcFilename   = 4
)

// protoBuf is a minimal protobuf writer: varints and length-delimited
// fields are all profile.proto needs.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// tag writes a field key: field number shifted over the wire type
// (0 = varint, 2 = length-delimited).
func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

func (p *protoBuf) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(uint64(v))
}

func (p *protoBuf) bytesField(field int, b []byte) {
	p.tag(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *protoBuf) stringField(field int, s string) {
	p.tag(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packedField writes a packed repeated varint field (skipped when empty).
func (p *protoBuf) packedField(field int, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vals {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// valueType encodes a ValueType{type, unit} submessage.
func valueType(typeIdx, unitIdx int64) []byte {
	var vt protoBuf
	vt.int64Field(vtType, typeIdx)
	vt.int64Field(vtUnit, unitIdx)
	return vt.b
}

// WritePprof encodes the profile as gzip-compressed profile.proto.
func (pr *Profile) WritePprof(w io.Writer) error {
	// String table: index 0 must be the empty string. Frames are interned
	// first-seen walking sorted stacks root-first, so the table order is a
	// pure function of the profile.
	strs := []string{"", "virtualtime", "nanoseconds"}
	strIdx := map[string]int64{"": 0, "virtualtime": 1, "nanoseconds": 2}
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}

	// One Function + Location per unique frame; location id == function id.
	frameLoc := map[string]uint64{}
	var frameOrder []string
	locFor := func(frame string) uint64 {
		if id, ok := frameLoc[frame]; ok {
			return id
		}
		id := uint64(len(frameOrder) + 1)
		frameLoc[frame] = id
		frameOrder = append(frameOrder, frame)
		intern(frame)
		return id
	}

	var samples protoBuf
	for _, stack := range pr.sortedStacks() {
		weight := pr.Stacks[stack]
		if weight <= 0 {
			continue
		}
		frames := SplitStack(stack)
		// pprof wants leaf-first location ids; folded stacks are root-first.
		locs := make([]uint64, 0, len(frames))
		for i := len(frames) - 1; i >= 0; i-- {
			locs = append(locs, locFor(frames[i]))
		}
		var s protoBuf
		s.packedField(sampleLocationID, locs)
		s.packedField(sampleValue, []uint64{uint64(weight)})
		samples.bytesField(profSample, s.b)
	}

	var out protoBuf
	out.bytesField(profSampleType, valueType(1, 2))
	out.b = append(out.b, samples.b...)
	for i, frame := range frameOrder {
		id := uint64(i + 1)
		var loc protoBuf
		loc.int64Field(locID, int64(id))
		var line protoBuf
		line.int64Field(lineFunctionID, int64(id))
		loc.bytesField(locLine, line.b)
		out.bytesField(profLocation, loc.b)

		var fn protoBuf
		fn.int64Field(funcID, int64(id))
		fn.int64Field(funcName, strIdx[frame])
		fn.int64Field(funcSystemName, strIdx[frame])
		out.bytesField(profFunction, fn.b)
	}
	for _, s := range strs {
		out.stringField(profStringTable, s)
	}
	out.int64Field(profDuration, toNanos(pr.EndS)-toNanos(pr.StartS))
	out.bytesField(profPeriodType, valueType(1, 2))
	out.int64Field(profPeriod, 1)

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}
