package flame

// Profile is the immutable fold output: the three export formats (folded
// text, pprof, JSON) and the differential comparator all read this one
// struct. Folded stacks use ';' as the frame separator with a private
// escaping scheme (escapeFrame) so model and device names containing
// ';', spaces, or newlines round-trip losslessly.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ProfileSchema versions the JSON profile encoding.
const ProfileSchema = 1

// DeviceTotals is one device's integer accounting. The conservation
// identity Busy − Overlap − Excess + Bubble == Horizon holds exactly for
// every device in a reconciled profile.
type DeviceTotals struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// BusyNanos is total executed batch time (overlapping spans counted
	// each time; OverlapNanos is the double-counted portion).
	BusyNanos    int64 `json:"busy_nanos"`
	OverlapNanos int64 `json:"overlap_nanos,omitempty"`
	// ExcessNanos is busy coverage past the measurement horizon (only when
	// a profile is snapshotted mid-span).
	ExcessNanos int64 `json:"excess_nanos,omitempty"`
	// BubbleNanos is total classified gap time.
	BubbleNanos int64 `json:"bubble_nanos"`
	// HorizonNanos is the profile window length.
	HorizonNanos int64 `json:"horizon_nanos"`
}

// Profile is a deterministic virtual-time compute profile: folded stacks
// with integer-nanosecond weights plus per-device accounting totals.
type Profile struct {
	Schema int `json:"schema"`
	// StartS/EndS bound the profile window in virtual seconds.
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	// TotalNanos sums busy − overlap − excess + bubble over devices; in a
	// reconciled profile it equals devices × horizon.
	TotalNanos int64 `json:"total_nanos"`
	// Stacks maps escaped folded stack → weight in virtual nanoseconds.
	Stacks  map[string]int64 `json:"stacks"`
	Devices []DeviceTotals   `json:"devices,omitempty"`
}

// escapeFrame makes a frame safe for folded-stack encoding: backslash,
// the ';' separator, spaces (the folded format's stack/weight separator),
// and newlines (the record separator) are escaped. Byte-oriented on
// purpose — only ASCII specials need escaping, and byte transparency
// keeps frames that are not valid UTF-8 intact through a round trip.
func escapeFrame(s string) string {
	if !strings.ContainsAny(s, "\\; \n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case ';':
			b.WriteString(`\;`)
		case ' ':
			b.WriteString(`\_`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// unescapeFrame inverts escapeFrame. Unknown escapes keep the escaped
// character; a trailing backslash is kept literally.
func unescapeFrame(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	esc := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if esc {
			switch c {
			case '_':
				b.WriteByte(' ')
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(c)
			}
			esc = false
			continue
		}
		if c == '\\' {
			esc = true
			continue
		}
		b.WriteByte(c)
	}
	if esc {
		b.WriteByte('\\')
	}
	return b.String()
}

// SplitStack splits an escaped folded stack into unescaped frames,
// root-first. Splitting happens on unescaped ';' only.
func SplitStack(stack string) []string {
	var frames []string
	start, esc := 0, false
	for i := 0; i < len(stack); i++ {
		if esc {
			esc = false
			continue
		}
		switch stack[i] {
		case '\\':
			esc = true
		case ';':
			frames = append(frames, unescapeFrame(stack[start:i]))
			start = i + 1
		}
	}
	return append(frames, unescapeFrame(stack[start:]))
}

// JoinStack escapes frames and joins them with ';' (the inverse of
// SplitStack).
func JoinStack(frames []string) string {
	esc := make([]string, len(frames))
	for i, f := range frames {
		esc[i] = escapeFrame(f)
	}
	return strings.Join(esc, ";")
}

// sortStrings is sort.Strings; factored so the fold code reads without an
// import at every call site.
func sortStrings(s []string) { sort.Strings(s) }

// sortedStacks returns the profile's stacks in sorted order — the
// canonical iteration order for every deterministic export.
func (pr *Profile) sortedStacks() []string {
	out := make([]string, 0, len(pr.Stacks))
	for k := range pr.Stacks {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Folded renders the profile as collapsed-stack text, one "stack weight"
// line per folded stack in sorted stack order: the byte-identical-across-
// runs format the flamegate compares, directly loadable by standard
// flamegraph tooling.
func (pr *Profile) Folded() []byte {
	var b strings.Builder
	for _, k := range pr.sortedStacks() {
		if w := pr.Stacks[k]; w > 0 {
			b.WriteString(k)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(w, 10))
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}

// ParseFolded inverts Folded (weights on duplicate stacks accumulate).
// Lines that are empty or lack a weight field are rejected.
func ParseFolded(r io.Reader) (*Profile, error) {
	pr := &Profile{Schema: ProfileSchema, Stacks: map[string]int64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		i := strings.LastIndexByte(txt, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("folded line %d: no weight field", line)
		}
		w, err := strconv.ParseInt(txt[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("folded line %d: weight: %w", line, err)
		}
		pr.Stacks[txt[:i]] += w
		pr.TotalNanos += w
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pr, nil
}

// WriteJSON writes the deterministic JSON encoding: encoding/json emits
// map keys sorted, Devices are already sorted by ID, so same profile ⇒
// same bytes.
func (pr *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pr)
}

// ReadProfile decodes a JSON profile written by WriteJSON.
func ReadProfile(r io.Reader) (*Profile, error) {
	var pr Profile
	if err := json.NewDecoder(r).Decode(&pr); err != nil {
		return nil, err
	}
	if pr.Schema != ProfileSchema {
		return nil, fmt.Errorf("flame profile schema %d (want %d)", pr.Schema, ProfileSchema)
	}
	if pr.Stacks == nil {
		pr.Stacks = map[string]int64{}
	}
	return &pr, nil
}

// BusyNanos sums non-bubble weight: time the devices spent executing.
func (pr *Profile) BusyNanos() int64 {
	var n int64
	for k, w := range pr.Stacks {
		if !isBubbleStack(k) {
			n += w
		}
	}
	return n
}

// BubbleNanos sums bubble weight: classified device gaps.
func (pr *Profile) BubbleNanos() int64 {
	var n int64
	for k, w := range pr.Stacks {
		if isBubbleStack(k) {
			n += w
		}
	}
	return n
}

// Rollup aggregates the profile by leaf frame: busy weight keyed by
// {useful, ramp-overhead, pad-waste}, bubble weight keyed by cause
// {queue-starved, transfer-blocked, fuse-blocked, drained, idle} — the
// shape the /metrics e3_flame_* series export.
func (pr *Profile) Rollup() (busy, bubble map[string]int64) {
	busy = make(map[string]int64, 3)
	bubble = make(map[string]int64, numClasses)
	for stack, w := range pr.Stacks {
		if w <= 0 {
			continue
		}
		frames := SplitStack(stack)
		leaf := frames[len(frames)-1]
		if isBubbleStack(stack) {
			bubble[leaf] += w
		} else {
			busy[leaf] += w
		}
	}
	return busy, bubble
}

// isBubbleStack reports whether an escaped folded stack is a bubble fold
// (contains the literal ";bubble;" frame boundary — escaped device names
// can never produce an unescaped ';').
func isBubbleStack(stack string) bool {
	return strings.Contains(stack, ";bubble;")
}

// DiffEntry is one stack's signed GPU-time delta between two profiles
// (positive: B has more).
type DiffEntry struct {
	Stack      string `json:"stack"`
	ANanos     int64  `json:"a_nanos"`
	BNanos     int64  `json:"b_nanos"`
	DeltaNanos int64  `json:"delta_nanos"`
}

// DiffReport aligns two profiles frame-by-frame: every stack present in
// either side, with signed deltas ranked by |GPU-time moved|.
type DiffReport struct {
	ATotalNanos int64 `json:"a_total_nanos"`
	BTotalNanos int64 `json:"b_total_nanos"`
	// MovedNanos is the one-sided volume of change: the sum of positive
	// deltas (equivalently, of |negative| deltas, up to the total shift).
	MovedNanos int64       `json:"moved_nanos"`
	Entries    []DiffEntry `json:"entries"`
}

// Diff compares two profiles stack-by-stack. Entries carry only stacks
// whose weight changed, sorted by |delta| descending (ties: stack
// ascending) — the "what moved" ranking.
func Diff(a, b *Profile) *DiffReport {
	rep := &DiffReport{}
	keys := make(map[string]bool, len(a.Stacks)+len(b.Stacks))
	for k, w := range a.Stacks {
		keys[k] = true
		rep.ATotalNanos += w
	}
	for k, w := range b.Stacks {
		keys[k] = true
		rep.BTotalNanos += w
	}
	for k := range keys {
		aw, bw := a.Stacks[k], b.Stacks[k]
		if aw == bw {
			continue
		}
		d := bw - aw
		if d > 0 {
			rep.MovedNanos += d
		}
		rep.Entries = append(rep.Entries, DiffEntry{Stack: k, ANanos: aw, BNanos: bw, DeltaNanos: d})
	}
	sort.Slice(rep.Entries, func(i, j int) bool {
		di, dj := absInt64(rep.Entries[i].DeltaNanos), absInt64(rep.Entries[j].DeltaNanos)
		if di != dj {
			return di > dj
		}
		return rep.Entries[i].Stack < rep.Entries[j].Stack
	})
	return rep
}
