package flame

// Span replay: rebuild a compute profile from a recorded telemetry span
// stream (a Chrome trace re-imported by e3-trace, or a live ring). The
// replayed profile is coarser than a live one — spans carry no ramp/pad
// decomposition, so all busy weight folds as useful, and no model name —
// but the bubble taxonomy is identical, which is what the per-split
// summary table needs.

import (
	"sort"
	"strconv"
	"strings"

	"e3/internal/telemetry"
)

// FromSpans folds a span stream into a profile. Spans are replayed in
// stable virtual-time order (ties keep stream order), so the result is
// deterministic for any fixed input stream.
func FromSpans(spans []telemetry.Span) *Profile {
	if len(spans) == 0 {
		return (*Profiler)(nil).Profile()
	}
	ordered := append([]telemetry.Span(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })

	start, end := ordered[0].Start, ordered[0].End
	for _, sp := range ordered {
		if sp.Start < start {
			start = sp.Start
		}
		if sp.End > end {
			end = sp.End
		}
	}
	p := NewProfiler(start)
	for _, sp := range ordered {
		switch sp.Kind {
		case telemetry.KindExecute:
			p.Execute(sp.Track, sp.GPU, "", sp.Stage, 0, 0, sp.Start, sp.End, 0, 0)
		case telemetry.KindTransfer:
			// The span records the source stage; the gap it explains is at
			// the destination.
			p.Transfer(sp.Stage+1, sp.Start, sp.End)
		case telemetry.KindFuse:
			p.Fuse(sp.Stage, sp.Start, sp.End)
		}
	}
	p.CloseAt(end)
	return p.Profile()
}

// SummarizeBubbles aggregates the profile's bubble weight per split by
// cause, keyed by split index (-1 collects bubbles with no split frame —
// devices that never ran). This is the bridge the e3-trace summary table
// uses for its taxonomy columns.
func SummarizeBubbles(pr *Profile) map[int]telemetry.BubbleShares {
	out := make(map[int]telemetry.BubbleShares)
	for stack, w := range pr.Stacks { //e3:unordered per-split sums are commutative; iteration order cannot change them
		if !isBubbleStack(stack) || w <= 0 {
			continue
		}
		frames := SplitStack(stack)
		// Frames past the "bubble" marker: optional "split:N", then the
		// cause leaf.
		i := 0
		for i < len(frames) && frames[i] != "bubble" {
			i++
		}
		split, cause := -1, ""
		for _, f := range frames[i+1:] {
			if n, ok := strings.CutPrefix(f, "split:"); ok {
				if v, err := strconv.Atoi(n); err == nil {
					split = v
				}
				continue
			}
			cause = f
		}
		bs := out[split]
		switch cause {
		case className[classQueueStarved]:
			bs.QueueStarvedNanos += w
		case className[classTransferBlocked]:
			bs.TransferBlockedNanos += w
		case className[classFuseBlocked]:
			bs.FuseBlockedNanos += w
		case className[classDrained]:
			bs.DrainedNanos += w
		case className[classIdle]:
			bs.IdleNanos += w
		}
		out[split] = bs
	}
	return out
}
