package flame_test

// Flamegate: the deterministic guarantees `make flamegate` enforces.
// Always on (no env gate) because every check is seeded virtual-time
// simulation — no wall-clock timing, no flakiness budget.
//
//  1. Same seed ⇒ byte-identical folded output across runs.
//  2. The fold reconciles exactly (zero integer-nanosecond residual)
//     against the utilization ledger.
//  3. Folded output is independent of planner worker count (the replan
//     loop profiled with 1 worker matches 4 workers byte for byte).
//  4. The serial-vs-pipeline diff on the same seed and plan is non-empty
//     — the §5.8.7 comparison the paper's bubble analysis rides on.

import (
	"bytes"
	"testing"

	"e3/internal/experiments"
	"e3/internal/flame"
	"e3/internal/forecast"
	"e3/internal/replan"
)

const gateHorizon = 2.0

// profiledDemoFold runs the pipeline demo under the profiler and returns
// the folded bytes plus the reconcile verdict.
func profiledDemoFold(t *testing.T) ([]byte, flame.ReconcileStat) {
	t.Helper()
	fl := flame.NewProfiler(0)
	rep, coll, _, err := experiments.RunProfiledDemo(nil, nil, fl, gateHorizon)
	if err != nil {
		t.Fatalf("profiled demo: %v", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	return fl.Profile().Folded(), fl.Verify(coll.Util)
}

func TestFlameGateDeterministicAndExact(t *testing.T) {
	a, statA := profiledDemoFold(t)
	b, statB := profiledDemoFold(t)
	if !statA.OK() || !statB.OK() {
		t.Fatalf("flame reconcile not exact: run A residual %dns, run B residual %dns",
			statA.Residual, statB.Residual)
	}
	if statA.Devices == 0 {
		t.Fatal("flame reconcile checked no devices")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different folded output:\nA: %d bytes\nB: %d bytes", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("folded output is empty")
	}
}

// replanFold profiles the drifting replan demo at a given planner worker
// count and returns the folded bytes plus the loop's reconcile verdict.
func replanFold(t *testing.T, workers int) ([]byte, flame.ReconcileStat) {
	t.Helper()
	fl := flame.NewProfiler(0)
	cfg := replan.DriftingDemo(4, forecast.MethodARIMA, nil)
	cfg.PlannerWorkers = workers
	cfg.Flame = fl
	res, err := replan.Run(cfg)
	if err != nil {
		t.Fatalf("replan (workers=%d): %v", workers, err)
	}
	if err := res.Report.Err(); err != nil {
		t.Fatalf("replan audit (workers=%d): %v", workers, err)
	}
	if len(res.FlameWindows) != 4 {
		t.Fatalf("want 4 per-window flame snapshots, got %d", len(res.FlameWindows))
	}
	return fl.Profile().Folded(), res.FlameStat
}

func TestFlameGateWorkerCountInvariant(t *testing.T) {
	one, statOne := replanFold(t, 1)
	four, statFour := replanFold(t, 4)
	if !statOne.OK() || !statFour.OK() {
		t.Fatalf("replan flame reconcile not exact: workers=1 residual %dns, workers=4 residual %dns",
			statOne.Residual, statFour.Residual)
	}
	if !bytes.Equal(one, four) {
		t.Fatal("planner worker count changed the folded flame output")
	}
}

func TestFlameGateSerialVsPipelineDiff(t *testing.T) {
	flP := flame.NewProfiler(0)
	if _, _, _, err := experiments.RunProfiledDemo(nil, nil, flP, gateHorizon); err != nil {
		t.Fatalf("pipeline demo: %v", err)
	}
	flS := flame.NewProfiler(0)
	if _, _, _, err := experiments.RunProfiledSerialDemo(flS, gateHorizon); err != nil {
		t.Fatalf("serial demo: %v", err)
	}
	d := flame.Diff(flP.Profile(), flS.Profile())
	if d.MovedNanos == 0 || len(d.Entries) == 0 {
		t.Fatal("serial vs pipeline diff is empty; the runners cannot have identical compute profiles")
	}
}
