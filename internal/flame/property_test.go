package flame_test

// Property test: across seeds and runner architectures, the flame fold
// must account for every device's busy time exactly — the profiler's
// integer busy nanoseconds equal the utilization ledger's span sum per
// device, and the conservation identity busy − overlap − excess + bubble
// == horizon holds with zero residual. The runner cases mirror the
// conservation-audit experiment (pipeline, data-parallel baseline, serial
// ablation).

import (
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/flame"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/trace"
	"e3/internal/workload"
)

const (
	propSLO     = 0.100
	propBatch   = 8
	propRate    = 2000.0
	propHorizon = 1.0
	propSeeds   = 20
)

func propPlan(t *testing.T, dee *ee.EEModel, dist workload.Dist) optimizer.Plan {
	t.Helper()
	clus := cluster.Homogeneous(gpu.V100, 8)
	prof := profile.FromDist(dee, dist, 8000, 1)
	plan, err := optimizer.MaximizeGoodput(optimizer.Config{
		Model: dee, Profile: prof, Batch: propBatch, Cluster: clus,
		SLO: propSLO, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac,
		Pipelining: true, ModelParallel: true,
	})
	if err != nil {
		t.Fatalf("planning failed: %v", err)
	}
	return plan
}

func TestFlameAccountsLedgerExactlyAcrossSeedsAndRunners(t *testing.T) {
	base := model.BERTBase()
	dee := ee.NewDeeBERT(base, 0.4)
	dist := workload.Mix(0.8)
	plan := propPlan(t, dee, dist)

	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 8) }
	cases := []struct {
		name string
		est  float64
		mk   func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error)
	}{
		{"pipeline", plan.Latency, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			return scheduler.NewPipeline(eng, mk(), dee, plan, coll)
		}},
		{"dataparallel", 0.030, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			clus := mk()
			devs := make([]int, clus.Size())
			for i := range devs {
				devs[i] = i
			}
			return scheduler.NewDataParallel(eng, clus, dee, devs, coll)
		}},
		{"serial", plan.Latency, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			return scheduler.NewSerial(eng, mk(), dee, plan, coll), nil
		}},
	}

	for _, rc := range cases {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			for seed := int64(1); seed <= propSeeds; seed++ {
				arr := trace.Bursty(trace.DefaultBursty(propRate), propHorizon, seed)
				fl := flame.NewProfiler(0)
				rep, coll, err := serving.ProfiledOpenLoop(rc.mk, base.NumLayers(), arr, dist,
					rc.est, propSLO, propBatch, seed, nil, nil, fl)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				// Reconcile already folded flame disagreements into the audit
				// report; the report must stay clean.
				if err := rep.Err(); err != nil {
					t.Fatalf("seed %d: audit: %v", seed, err)
				}
				stat := fl.Verify(coll.Util)
				if !stat.Checked || stat.Devices == 0 {
					t.Fatalf("seed %d: flame reconcile did not run (devices=%d)", seed, stat.Devices)
				}
				if !stat.OK() {
					t.Fatalf("seed %d: flame busy/idle disagrees with ledger: residual %dns over %d devices",
						seed, stat.Residual, stat.Devices)
				}
				// The profile's own totals must satisfy the conservation
				// identity per device — 100.000%% accounted, exactly.
				pr := fl.Profile()
				for _, d := range pr.Devices {
					if got := d.BusyNanos - d.OverlapNanos - d.ExcessNanos + d.BubbleNanos; got != d.HorizonNanos {
						t.Fatalf("seed %d: device %s identity broken: busy-ovl-exc+bubble=%d != horizon=%d",
							seed, d.ID, got, d.HorizonNanos)
					}
				}
			}
		})
	}
}
