package flame_test

// Fuzz the folded-frame escaping: frames containing the ';' separator,
// the folded format's ' ' weight delimiter, newlines, or backslashes must
// survive a JoinStack → SplitStack round trip, and the joined form must
// never contain an unescaped separator that would corrupt column parsing.

import (
	"strings"
	"testing"

	"e3/internal/flame"
)

func FuzzFrameEscapeRoundTrip(f *testing.F) {
	f.Add("useful", "dev:V100-0")
	f.Add("model:a;b", "with space")
	f.Add("back\\slash", "new\nline")
	f.Add("", ";; ;\n\\")
	f.Add("trailing\\", "\\;")
	f.Fuzz(func(t *testing.T, a, b string) {
		frames := []string{a, b}
		joined := flame.JoinStack(frames)

		// The folded line format is "<stack> <weight>": an unescaped space
		// or newline inside the stack would corrupt it.
		if strings.ContainsAny(joined, " \n") {
			t.Fatalf("joined stack contains unescaped space/newline: %q", joined)
		}
		got := flame.SplitStack(joined)
		if len(got) != len(frames) {
			t.Fatalf("round trip changed frame count: %q -> %q (from %q)", frames, got, joined)
		}
		for i := range frames {
			if got[i] != frames[i] {
				t.Fatalf("frame %d: %q -> %q (joined %q)", i, frames[i], got[i], joined)
			}
		}
	})
}
