package flame_test

// Golden pprof-export test: WritePprof's output is decoded back with a
// hand-rolled varint/protobuf reader (mirroring the hand-rolled writer)
// and checked sample-by-sample against the profile's folded stacks. Also
// pins byte-level determinism: encoding the same profile twice must give
// identical bytes.

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"e3/internal/flame"
)

// uvarint decodes one base-128 varint.
func uvarint(t *testing.T, b []byte, i int) (uint64, int) {
	t.Helper()
	var v uint64
	var s uint
	for {
		if i >= len(b) {
			t.Fatalf("varint overruns buffer at %d", i)
		}
		c := b[i]
		i++
		v |= uint64(c&0x7f) << s
		if c < 0x80 {
			return v, i
		}
		s += 7
	}
}

// decodedProfile is the subset of profile.proto the test reads back.
type decodedProfile struct {
	sampleType [][2]int64 // {type, unit} string indexes
	samples    []struct {
		locs  []uint64
		value []int64
	}
	locFunc  map[uint64]uint64 // location id -> function id (via Line)
	funcName map[uint64]int64  // function id -> name string index
	strings  []string
	duration int64
	period   int64
}

// decodePprof parses the gzip profile.proto WritePprof emits. It only
// understands the fields the writer produces, and fails the test on any
// other wire shape — which is the point: the output must stay exactly
// this simple.
func decodePprof(t *testing.T, data []byte) *decodedProfile {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}

	dp := &decodedProfile{locFunc: map[uint64]uint64{}, funcName: map[uint64]int64{}}
	fields := func(b []byte, fn func(field uint64, wire uint64, v uint64, body []byte)) {
		i := 0
		for i < len(b) {
			key, ni := uvarint(t, b, i)
			i = ni
			field, wire := key>>3, key&7
			switch wire {
			case 0:
				v, ni := uvarint(t, b, i)
				i = ni
				fn(field, 0, v, nil)
			case 2:
				l, ni := uvarint(t, b, i)
				i = ni
				if i+int(l) > len(b) {
					t.Fatalf("field %d body overruns buffer", field)
				}
				fn(field, 2, 0, b[i:i+int(l)])
				i += int(l)
			default:
				t.Fatalf("unexpected wire type %d for field %d", wire, field)
			}
		}
	}
	packed := func(b []byte) []uint64 {
		var out []uint64
		i := 0
		for i < len(b) {
			var v uint64
			v, i = uvarint(t, b, i)
			out = append(out, v)
		}
		return out
	}

	fields(raw, func(field, wire, v uint64, body []byte) {
		switch field {
		case 1, 11: // sample_type, period_type
			var vt [2]int64
			fields(body, func(f, _, u uint64, _ []byte) {
				if f >= 1 && f <= 2 {
					vt[f-1] = int64(u)
				}
			})
			if field == 1 {
				dp.sampleType = append(dp.sampleType, vt)
			}
		case 2: // sample
			var s struct {
				locs  []uint64
				value []int64
			}
			fields(body, func(f, _, _ uint64, sb []byte) {
				switch f {
				case 1:
					s.locs = packed(sb)
				case 2:
					for _, u := range packed(sb) {
						s.value = append(s.value, int64(u))
					}
				}
			})
			dp.samples = append(dp.samples, s)
		case 4: // location
			var id, fid uint64
			fields(body, func(f, _, u uint64, lb []byte) {
				switch f {
				case 1:
					id = u
				case 4: // line
					fields(lb, func(lf, _, lu uint64, _ []byte) {
						if lf == 1 {
							fid = lu
						}
					})
				}
			})
			dp.locFunc[id] = fid
		case 5: // function
			var id uint64
			var name int64
			fields(body, func(f, _, u uint64, _ []byte) {
				switch f {
				case 1:
					id = u
				case 2:
					name = int64(u)
				}
			})
			dp.funcName[id] = name
		case 6: // string_table
			dp.strings = append(dp.strings, string(body))
		case 10:
			dp.duration = int64(v)
		case 12:
			dp.period = int64(v)
		}
	})
	return dp
}

// goldenProfile builds a small fixed profile covering every frame class:
// useful/ramp/pad busy decomposition, a transfer-blocked gap, a
// queue-starved gap, and trailing drained/idle time.
func goldenProfile() *flame.Profile {
	p := flame.NewProfiler(0)
	p.Register("V100-0", "V100")
	p.Register("V100-1", "V100")
	p.Execute("V100-0", "V100", "DeeBERT", 0, 1, 3, 0.0, 0.010, 0.001, 0.002)
	p.Transfer(1, 0.010, 0.011)
	p.Execute("V100-1", "V100", "DeeBERT", 1, 4, 6, 0.011, 0.030, 0, 0)
	p.Execute("V100-0", "V100", "DeeBERT", 0, 1, 3, 0.020, 0.025, 0, 0)
	p.CloseAt(0.040)
	return p.Profile()
}

func TestPprofExportDecodesBack(t *testing.T) {
	pr := goldenProfile()
	var buf bytes.Buffer
	if err := pr.WritePprof(&buf); err != nil {
		t.Fatalf("WritePprof: %v", err)
	}
	dp := decodePprof(t, buf.Bytes())

	// Sample type is virtualtime/nanoseconds, string 0 is empty.
	if len(dp.strings) < 3 || dp.strings[0] != "" {
		t.Fatalf("string table must start with \"\": %q", dp.strings[:min(3, len(dp.strings))])
	}
	if len(dp.sampleType) != 1 {
		t.Fatalf("want 1 sample type, got %d", len(dp.sampleType))
	}
	st := dp.sampleType[0]
	if dp.strings[st[0]] != "virtualtime" || dp.strings[st[1]] != "nanoseconds" {
		t.Fatalf("sample type %q/%q, want virtualtime/nanoseconds",
			dp.strings[st[0]], dp.strings[st[1]])
	}
	if dp.period != 1 {
		t.Fatalf("period = %d, want 1", dp.period)
	}
	if dp.duration <= 0 {
		t.Fatalf("duration_nanos = %d, want > 0", dp.duration)
	}

	// Every sample must rebuild (leaf-first locations → root-first frames)
	// into exactly one folded stack with the same weight, and every stack
	// must appear exactly once.
	seen := map[string]int64{}
	for i, s := range dp.samples {
		if len(s.value) != 1 {
			t.Fatalf("sample %d has %d values, want 1", i, len(s.value))
		}
		frames := make([]string, 0, len(s.locs))
		for j := len(s.locs) - 1; j >= 0; j-- { // undo leaf-first
			fid, ok := dp.locFunc[s.locs[j]]
			if !ok {
				t.Fatalf("sample %d references unknown location %d", i, s.locs[j])
			}
			nameIdx, ok := dp.funcName[fid]
			if !ok {
				t.Fatalf("location %d references unknown function %d", s.locs[j], fid)
			}
			frames = append(frames, dp.strings[nameIdx])
		}
		seen[flame.JoinStack(frames)] += s.value[0]
	}
	for stack, w := range pr.Stacks {
		if w <= 0 {
			continue
		}
		if seen[stack] != w {
			t.Errorf("stack %q: pprof weight %d, folded weight %d", stack, seen[stack], w)
		}
		delete(seen, stack)
	}
	for stack, w := range seen {
		if _, ok := pr.Stacks[stack]; !ok {
			t.Errorf("pprof has extra stack %q (weight %d)", stack, w)
		}
	}

	// Byte-level determinism: same profile, same bytes.
	var buf2 bytes.Buffer
	if err := pr.WritePprof(&buf2); err != nil {
		t.Fatalf("WritePprof (second): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("encoding the same profile twice produced different bytes")
	}
}

// TestPprofGoldenWeights pins the golden profile's exact decomposition so
// an accidental change to the busy/gap classifier shows up as a diff here
// rather than only as a flamegate failure downstream.
func TestPprofGoldenWeights(t *testing.T) {
	pr := goldenProfile()
	want := map[string]int64{
		"gpu:V100;dev:V100-0;model:DeeBERT;split:0;layers:1-3;useful":        12_000_000,
		"gpu:V100;dev:V100-0;model:DeeBERT;split:0;layers:1-3;ramp-overhead": 1_000_000,
		"gpu:V100;dev:V100-0;model:DeeBERT;split:0;layers:1-3;pad-waste":     2_000_000,
		"gpu:V100;dev:V100-0;bubble;split:0;queue-starved":                   10_000_000,
		"gpu:V100;dev:V100-0;bubble;split:0;drained":                         15_000_000,
		"gpu:V100;dev:V100-1;model:DeeBERT;split:1;layers:4-6;useful":        19_000_000,
		"gpu:V100;dev:V100-1;bubble;split:1;idle":                            11_000_000,
		"gpu:V100;dev:V100-1;bubble;split:1;drained":                         10_000_000,
	}
	for stack, w := range want {
		if pr.Stacks[stack] != w {
			t.Errorf("stack %q = %d, want %d", stack, pr.Stacks[stack], w)
		}
	}
	var total int64
	for _, w := range pr.Stacks {
		total += w
	}
	var wantTotal int64
	for _, w := range want {
		wantTotal += w
	}
	if total != wantTotal {
		t.Errorf("profile has extra weight: total %d, want %d; stacks: %v", total, wantTotal, pr.Stacks)
	}
}
