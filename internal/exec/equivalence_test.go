package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/workload"
)

// TestGraphEagerExitEquivalence: graph-mode split chains and eager
// segments must agree on *which layer* every sample exits at (only the
// completion timing differs). This pins the semantic boundary between the
// two execution modes.
func TestGraphEagerExitEquivalence(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	rng := rand.New(rand.NewSource(51))

	f := func(rawDiffs []uint16, rawCut uint8) bool {
		if len(rawDiffs) == 0 || len(rawDiffs) > 32 {
			return true
		}
		cut := int(rawCut%11) + 1
		batch := make([]workload.Sample, len(rawDiffs))
		for i, r := range rawDiffs {
			batch[i] = workload.Sample{ID: int64(i + 1), Difficulty: float64(r) / 65535}
		}

		eagerExits := map[int64]int{}
		res := RunSegment(m, 1, 12, batch, spec, 1)
		for _, c := range res.Completions {
			eagerExits[c.Sample.ID] = c.ExitLayer
		}

		graphExits := map[int64]int{}
		s1 := RunSplit(m, 1, cut, batch, spec, 1)
		for _, c := range s1.Completions {
			graphExits[c.Sample.ID] = c.ExitLayer
		}
		if cut < 12 {
			s2 := RunSplit(m, cut+1, 12, s1.Survivors, spec, 1)
			for _, c := range s2.Completions {
				graphExits[c.Sample.ID] = c.ExitLayer
			}
		}

		if len(eagerExits) != len(graphExits) {
			return false
		}
		for id, e := range eagerExits {
			if graphExits[id] != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestGraphChainUsefulFLOPs: in graph mode every sample rides to its
// split's boundary, so useful FLOPs per split equal batch × split FLOPs —
// the constant-batch property, verified at the accounting level.
func TestGraphChainUsefulFLOPs(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	batch := mkBatch(0.1, 0.4, 0.7, 0.95)
	res := RunSplit(m, 1, 6, batch, spec, 1)
	want := 0.0
	for _, l := range m.Base.Layers[:6] {
		want += l.FLOPs * 4
	}
	if res.UsefulFLOPs != want {
		t.Errorf("split useful FLOPs = %v, want %v (constant batch)", res.UsefulFLOPs, want)
	}
}
