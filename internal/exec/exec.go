// Package exec runs batches of samples through contiguous layer segments
// of an (early-exit) model on a simulated GPU. It is the shared execution
// substrate: the vanilla and naive-EE baselines run the whole model as one
// segment; E3's scheduler runs each split as a segment and merges the
// survivors.
//
// Time accounting per layer k with a currently-active batch b:
//
//	layer compute   spec.LayerTime(flops_k, b)
//	ramp check      spec.LayerTime(rampFLOPs, b) + 2·launch   (if enabled)
//	batch reform    ReformOverhead                            (if exits occurred)
//
// Samples that exit at a ramp complete at that instant; if the active batch
// drains to zero the remaining layers are skipped entirely (the batch-1
// win of EE models).
package exec

import (
	"fmt"

	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/workload"
)

// Overhead constants, calibrated to DeeBERT-style PyTorch serving.
const (
	// SyncBase is the fixed cost of one exit check's device-host
	// synchronization: the GPU pipeline drains while logits cross PCIe and
	// the host evaluates the exit criterion. Single-sample streams skip it
	// (no batch bookkeeping; frameworks fuse the check into decode).
	SyncBase = 500e-6
	// SyncPerSample is the host-side per-sample share of an exit check
	// (entropy evaluation, index bookkeeping in framework-speed host code).
	SyncPerSample = 60e-6
	// ReformOverhead is the fixed host-side cost of compacting a batch
	// after some samples exited (gather launch + bookkeeping).
	ReformOverhead = 150e-6
	// ReformPerSample is the per-survivor activation gather cost.
	ReformPerSample = 20e-6
)

// rampCheckTime is the full cost of evaluating one ramp over an active
// batch in eager mode: the ramp head kernels plus the synchronization
// stall. Batch 1 skips the stall — a single-sample stream needs no batch
// bookkeeping.
func rampCheckTime(spec gpu.Spec, rampFLOPs float64, active int) float64 {
	t := spec.LayerTime(rampFLOPs, active) + 2*spec.LaunchOverhead
	if active > 1 {
		t += SyncBase + float64(active)*SyncPerSample
	}
	return t
}

// rampCheckTimeFrac mirrors rampCheckTime for fractional expected batches.
func rampCheckTimeFrac(spec gpu.Spec, rampFLOPs, active float64) float64 {
	t := spec.LayerTimeFrac(rampFLOPs, 0, active) + 2*spec.LaunchOverhead
	if active > 1 {
		t += SyncBase + active*SyncPerSample
	}
	return t
}

// Completion records one sample finishing, Offset seconds after the
// segment started.
type Completion struct {
	Sample workload.Sample
	Offset float64
	// ExitLayer is the 1-based layer after which the sample left.
	ExitLayer int
}

// Result summarizes one segment execution.
type Result struct {
	// Duration is the total busy time of the device for this batch.
	Duration float64
	// HandoffDelay is host-side work (boundary sync, batch reform) that
	// happens after the device frees: E3's pipelining overlaps it with the
	// next batch, so it delays survivors and completions but not the
	// device (RunSplit only; zero for eager segments).
	HandoffDelay float64
	// Completions lists samples that finished inside this segment.
	Completions []Completion
	// Survivors continue to the next segment (empty if the segment ends
	// at the final layer).
	Survivors []workload.Sample
	// UsefulFLOPs is the model compute performed (excludes ramp checks),
	// for utilization accounting.
	UsefulFLOPs float64
	// RampTime is the share of Duration spent on early-exit machinery:
	// ramp-head kernels, exit-check synchronization, batch reforms.
	RampTime float64
	// PadTime is the share of Duration attributable to samples riding a
	// compiled split past their exit layer (E3's padding waste): each
	// layer's compute is charged pro rata to the samples whose exit point
	// already passed. It is a counterfactual attribution — Duration itself
	// is unchanged by it.
	PadTime float64

	// padHist is reusable scratch for the pad attribution: exit counts per
	// layer offset within the split (see RunSplitInto).
	padHist []int
}

// RunSegment executes layers [from, to] (1-based, inclusive) of m over the
// batch on the given GPU spec, with a straggler slowdown factor (1 =
// healthy). It panics on malformed segment bounds — those are planner bugs.
func RunSegment(m *ee.EEModel, from, to int, batch []workload.Sample, spec gpu.Spec, slowdown float64) Result {
	L := m.Base.NumLayers()
	if from < 1 || to > L || from > to {
		panic(fmt.Sprintf("exec: bad segment [%d,%d] for %d-layer model", from, to, L))
	}
	if slowdown < 1 {
		slowdown = 1
	}

	var res Result
	if len(batch) == 0 {
		return res
	}

	// Partition samples by exit layer once.
	exitAt := make([]int, len(batch))
	for i, s := range batch {
		exitAt[i] = m.ExitLayerFor(s.Difficulty)
		if exitAt[i] < from {
			// Defensive: a sample routed past its exit point completes
			// immediately (upstream should have removed it).
			res.Completions = append(res.Completions, Completion{Sample: s, Offset: 0, ExitLayer: exitAt[i]})
			exitAt[i] = -1
		}
	}

	t := 0.0
	active := 0
	for _, e := range exitAt {
		if e >= from {
			active++
		}
	}
	rampFLOPs := m.RampFLOPs()

	for k := from; k <= to && active > 0; k++ {
		layer := m.Base.Layers[k-1]
		t += spec.LayerTimeW(layer.FLOPs, layer.WeightBytes, active) * slowdown
		res.UsefulFLOPs += layer.FLOPs * float64(active)

		checkHere := m.HasRampAfter(k) || k == L
		if !checkHere {
			continue
		}
		t += rampCheckTime(spec, rampFLOPs, active) * slowdown
		res.RampTime += rampCheckTime(spec, rampFLOPs, active) * slowdown

		exited := 0
		for i, e := range exitAt {
			if e == k || (k == L && e >= from) {
				res.Completions = append(res.Completions, Completion{Sample: batch[i], Offset: t, ExitLayer: e})
				exitAt[i] = -1
				exited++
			}
		}
		active -= exited
		if exited > 0 && active > 0 && k < to {
			t += (ReformOverhead + float64(active)*ReformPerSample) * slowdown
			res.RampTime += (ReformOverhead + float64(active)*ReformPerSample) * slowdown
		}
	}

	if to < L {
		for i, e := range exitAt {
			if e >= from {
				res.Survivors = append(res.Survivors, batch[i])
				_ = e
			}
		}
	}
	res.Duration = t
	return res
}

// RunSplit executes layers [from, to] the way E3 runs a split: as one
// compiled graph over a *constant* batch. Ramp heads inside the split run
// inline as cheap GPU kernels (no host sync); exit decisions are applied
// once, at the split boundary, where a single sync and batch reform
// happens. Samples whose exit ramp lies inside the split therefore ride
// along to the boundary — E3's compute saving comes from not forwarding
// them to the next split, not from shrinking mid-split.
func RunSplit(m *ee.EEModel, from, to int, batch []workload.Sample, spec gpu.Spec, slowdown float64) Result {
	var res Result
	RunSplitInto(m, from, to, batch, spec, slowdown, &res)
	return res
}

// RunSplitInto is RunSplit writing into a caller-owned Result whose
// Completions/Survivors backing arrays are reused across calls — the hot
// path runs one split per dispatched batch, so recycling the two slices
// removes the dominant steady-state allocation. Scalar fields are reset
// and the slices truncated to length zero (capacity kept); the caller must
// treat any previous contents of res as dead.
//
//e3:hotpath runs one split per dispatched batch; recycled Result slices are the point
func RunSplitInto(m *ee.EEModel, from, to int, batch []workload.Sample, spec gpu.Spec, slowdown float64, res *Result) {
	L := m.Base.NumLayers()
	if from < 1 || to > L || from > to {
		panic(fmt.Sprintf("exec: bad split [%d,%d] for %d-layer model", from, to, L))
	}
	if slowdown < 1 {
		slowdown = 1
	}
	res.Duration = 0
	res.HandoffDelay = 0
	res.UsefulFLOPs = 0
	res.RampTime = 0
	res.PadTime = 0
	res.Completions = res.Completions[:0]
	res.Survivors = res.Survivors[:0]
	if len(batch) == 0 {
		return
	}
	b := len(batch)
	rampFLOPs := m.RampFLOPs()

	// Partition exits up front (the decision is a pure function of the
	// sample, so applying it before or after the time loop is equivalent)
	// and histogram them by layer offset: padHist[0] counts samples already
	// past their exit on entry, padHist[k-from+1] counts exits after layer
	// k. The time loop turns this into the pad-waste attribution.
	span := to - from + 2
	if cap(res.padHist) < span {
		res.padHist = make([]int, span) //e3:alloc one-time scratch grow; reused across calls once capacity covers the widest segment
	} else {
		res.padHist = res.padHist[:span]
		for i := range res.padHist {
			res.padHist[i] = 0
		}
	}
	exited := 0
	for _, s := range batch {
		e := m.ExitLayerFor(s.Difficulty)
		if e <= to {
			res.Completions = append(res.Completions, Completion{Sample: s, ExitLayer: e})
			exited++
			j := e - from + 1
			if j < 0 {
				j = 0
			}
			res.padHist[j]++
		} else {
			res.Survivors = append(res.Survivors, s)
		}
	}

	t := 0.0
	dead := res.padHist[0]
	for k := from; k <= to; k++ {
		layer := m.Base.Layers[k-1]
		t += spec.LayerTimeW(layer.FLOPs, layer.WeightBytes, b) * slowdown
		res.UsefulFLOPs += layer.FLOPs * float64(b)
		if dead > 0 {
			// Charge the layer pro rata to riders whose exit already passed.
			res.PadTime += spec.LayerTimeW(layer.FLOPs, layer.WeightBytes, b) * slowdown * (float64(dead) / float64(b))
		}
		if m.HasRampAfter(k) || k == L {
			// Inline ramp head: kernels only, decision deferred.
			t += (spec.LayerTime(rampFLOPs, b) + 2*spec.LaunchOverhead) * slowdown
			res.RampTime += (spec.LayerTime(rampFLOPs, b) + 2*spec.LaunchOverhead) * slowdown
		}
		dead += res.padHist[k-from+1]
	}
	res.Duration = t

	// The boundary sync applies all deferred exit decisions; it runs on
	// the host after the device frees, so it lands in HandoffDelay.
	handoff := (SyncBase + float64(b)*SyncPerSample) * slowdown
	if exited > 0 && len(res.Survivors) > 0 {
		handoff += (ReformOverhead + float64(len(res.Survivors))*ReformPerSample) * slowdown
	}
	res.HandoffDelay = handoff
	// Boundary completions happen once decisions are applied.
	for i := range res.Completions {
		res.Completions[i].Offset = t + handoff
	}
}

// SplitHandoff predicts RunSplit's HandoffDelay for planning.
func SplitHandoff(batch int, exitFrac float64) float64 {
	h := SyncBase + float64(batch)*SyncPerSample
	if exitFrac > 1e-9 && exitFrac < 1-1e-9 {
		h += ReformOverhead + float64(batch)*(1-exitFrac)*ReformPerSample
	}
	return h
}

// SplitTime predicts RunSplit's duration for a constant batch without
// materializing samples; exitFrac is the expected fraction of the batch
// exiting at the boundary (drives the reform term).
func SplitTime(m *ee.EEModel, from, to int, batch int, exitFrac float64, spec gpu.Spec) float64 {
	L := m.Base.NumLayers()
	if from < 1 || to > L || from > to {
		panic(fmt.Sprintf("exec: bad split [%d,%d] for %d-layer model", from, to, L))
	}
	if batch <= 0 {
		return 0
	}
	rampFLOPs := m.RampFLOPs()
	t := 0.0
	for k := from; k <= to; k++ {
		l := m.Base.Layers[k-1]
		t += spec.LayerTimeW(l.FLOPs, l.WeightBytes, batch)
		if m.HasRampAfter(k) || k == L {
			t += spec.LayerTime(rampFLOPs, batch) + 2*spec.LaunchOverhead
		}
	}
	_ = exitFrac // the boundary handoff is predicted by SplitHandoff
	return t
}

// SegmentTime predicts the busy time of a segment for a *fractional*
// expected batch profile, matching RunSegment's accounting. survival[k]
// must give the expected batch size entering layer k (1-based); it is the
// optimizer's P(k,c,B) aggregation (§3.2).
func SegmentTime(m *ee.EEModel, from, to int, batchAt func(k int) float64, spec gpu.Spec) float64 {
	L := m.Base.NumLayers()
	if from < 1 || to > L || from > to {
		panic(fmt.Sprintf("exec: bad segment [%d,%d] for %d-layer model", from, to, L))
	}
	rampFLOPs := m.RampFLOPs()
	t := 0.0
	for k := from; k <= to; k++ {
		b := batchAt(k)
		if b <= 1e-9 {
			break
		}
		t += spec.LayerTimeFrac(m.Base.Layers[k-1].FLOPs, m.Base.Layers[k-1].WeightBytes, b)
		if m.HasRampAfter(k) || k == L {
			t += rampCheckTimeFrac(spec, rampFLOPs, b)
			next := 0.0
			if k+1 <= L {
				next = batchAt(k + 1)
			}
			if next < b-1e-9 && next > 1e-9 && k < to {
				t += ReformOverhead + next*ReformPerSample
			}
		}
	}
	return t
}
