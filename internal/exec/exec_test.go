package exec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/workload"
)

func mkBatch(difficulties ...float64) []workload.Sample {
	out := make([]workload.Sample, len(difficulties))
	for i, d := range difficulties {
		out[i] = workload.Sample{ID: int64(i + 1), Difficulty: d}
	}
	return out
}

func TestVanillaFullPass(t *testing.T) {
	m := ee.NewVanilla(model.BERTBase())
	spec := gpu.Get(gpu.V100)
	batch := mkBatch(0.1, 0.5, 0.9, 0.99)
	res := RunSegment(m, 1, 12, batch, spec, 1)
	if len(res.Completions) != 4 || len(res.Survivors) != 0 {
		t.Fatalf("completions=%d survivors=%d, want 4/0", len(res.Completions), len(res.Survivors))
	}
	// Everyone completes at the very end with identical offsets.
	for _, c := range res.Completions {
		if c.Offset != res.Duration {
			t.Errorf("vanilla completion offset %v != duration %v", c.Offset, res.Duration)
		}
		if c.ExitLayer != 12 {
			t.Errorf("vanilla exit layer %d, want 12", c.ExitLayer)
		}
	}
	// Duration ≈ 12 layers (with weight reads) + final head.
	want := 0.0
	for _, l := range m.Base.Layers {
		want += spec.LayerTimeW(l.FLOPs, l.WeightBytes, 4)
	}
	want += spec.LayerTime(m.RampFLOPs(), 4) + 2*spec.LaunchOverhead + SyncBase + 4*SyncPerSample
	if math.Abs(res.Duration-want) > 1e-12 {
		t.Errorf("duration %v, want %v", res.Duration, want)
	}
}

func TestEarlyExitsCompleteSooner(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	batch := mkBatch(0.1, 0.95) // exit at layer ~2 and ~12
	res := RunSegment(m, 1, 12, batch, spec, 1)
	if len(res.Completions) != 2 {
		t.Fatalf("completions = %d, want 2", len(res.Completions))
	}
	byID := map[int64]Completion{}
	for _, c := range res.Completions {
		byID[c.Sample.ID] = c
	}
	if byID[1].Offset >= byID[2].Offset {
		t.Errorf("easy sample (off=%v) not earlier than hard (off=%v)", byID[1].Offset, byID[2].Offset)
	}
	if byID[1].ExitLayer >= byID[2].ExitLayer {
		t.Errorf("exit layers %d vs %d", byID[1].ExitLayer, byID[2].ExitLayer)
	}
}

func TestDrainedBatchSkipsLayers(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	// Single easy sample: exits at layer ~2; remaining 10 layers skipped.
	easy := RunSegment(m, 1, 12, mkBatch(0.12), spec, 1)
	hard := RunSegment(m, 1, 12, mkBatch(0.99), spec, 1)
	if easy.Duration >= hard.Duration/2 {
		t.Errorf("easy single-sample run %v not well under half of hard %v", easy.Duration, hard.Duration)
	}
}

func TestSegmentSurvivors(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	// Difficulties map to exit layers ~2, ~6, ~11, 12.
	batch := mkBatch(0.12, 0.5, 0.9, 0.99)
	res := RunSegment(m, 1, 6, batch, spec, 1)
	if len(res.Completions) != 2 {
		t.Fatalf("completions in [1,6] = %d, want 2", len(res.Completions))
	}
	if len(res.Survivors) != 2 {
		t.Fatalf("survivors = %d, want 2", len(res.Survivors))
	}
	// Survivors keep their identity.
	if res.Survivors[0].ID != 3 || res.Survivors[1].ID != 4 {
		t.Errorf("survivor IDs = %d,%d, want 3,4", res.Survivors[0].ID, res.Survivors[1].ID)
	}
}

func TestSecondSegmentContinues(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	batch := mkBatch(0.12, 0.5, 0.9, 0.99)
	first := RunSegment(m, 1, 6, batch, spec, 1)
	second := RunSegment(m, 7, 12, first.Survivors, spec, 1)
	if got := len(first.Completions) + len(second.Completions); got != 4 {
		t.Fatalf("total completions across segments = %d, want 4", got)
	}
	if len(second.Survivors) != 0 {
		t.Errorf("final segment left %d survivors", len(second.Survivors))
	}
}

func TestMisroutedSampleCompletesImmediately(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	// Exit layer ~2 but routed into segment [7,12].
	res := RunSegment(m, 7, 12, mkBatch(0.12), spec, 1)
	if len(res.Completions) != 1 || res.Completions[0].Offset != 0 {
		t.Fatalf("misrouted sample: %+v", res.Completions)
	}
	if res.Duration != 0 {
		t.Errorf("duration = %v, want 0 (nothing to compute)", res.Duration)
	}
}

func TestStragglerSlowdownScales(t *testing.T) {
	m := ee.NewVanilla(model.BERTBase())
	spec := gpu.Get(gpu.V100)
	batch := mkBatch(0.5, 0.5)
	healthy := RunSegment(m, 1, 12, batch, spec, 1)
	slow := RunSegment(m, 1, 12, batch, spec, 2)
	if math.Abs(slow.Duration-2*healthy.Duration) > 1e-12 {
		t.Errorf("slowdown 2 gave %v, want %v", slow.Duration, 2*healthy.Duration)
	}
	// Sub-1 slowdowns clamp to healthy.
	clamped := RunSegment(m, 1, 12, batch, spec, 0.5)
	if clamped.Duration != healthy.Duration {
		t.Error("slowdown < 1 not clamped")
	}
}

func TestEmptyBatch(t *testing.T) {
	m := ee.NewVanilla(model.BERTBase())
	res := RunSegment(m, 1, 12, nil, gpu.Get(gpu.V100), 1)
	if res.Duration != 0 || len(res.Completions) != 0 || len(res.Survivors) != 0 {
		t.Errorf("empty batch result: %+v", res)
	}
}

func TestBadSegmentPanics(t *testing.T) {
	m := ee.NewVanilla(model.BERTBase())
	for _, c := range [][2]int{{0, 5}, {5, 13}, {8, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("segment %v did not panic", c)
				}
			}()
			RunSegment(m, c[0], c[1], mkBatch(0.5), gpu.Get(gpu.V100), 1)
		}()
	}
}

func TestNaiveEESlowerThanVanillaAtLargeBatch(t *testing.T) {
	// The core paper phenomenon (§2.3): at large batch the EE model's
	// per-batch time saving is small (sub-saturation shrinkage) while ramp
	// overheads accrue, so per-sample EE throughput falls below vanilla.
	base := model.BERTBase()
	eeM := ee.NewDeeBERT(base, 0.4)
	van := ee.NewVanilla(base)
	spec := gpu.Get(gpu.V100)
	rng := rand.New(rand.NewSource(21))
	dist := workload.Mix(0.8)

	perSample := func(m *ee.EEModel, b int) float64 {
		total := 0.0
		const trials = 50
		for tr := 0; tr < trials; tr++ {
			batch := make([]workload.Sample, b)
			for i := range batch {
				batch[i] = workload.Sample{ID: int64(i), Difficulty: dist.Sample(rng)}
			}
			total += RunSegment(m, 1, 12, batch, spec, 1).Duration
		}
		return total / float64(trials*b)
	}

	// At batch 1, EE must be clearly faster (compute saving dominates).
	if e, v := perSample(eeM, 1), perSample(van, 1); e >= v*0.75 {
		t.Errorf("batch 1: EE per-sample %v not well below vanilla %v", e, v)
	}
	// At batch 2, EE still wins, but the margin must have shrunk
	// (Figure 7: near-wash at batch 2).
	r1 := perSample(eeM, 1) / perSample(van, 1)
	r2 := perSample(eeM, 2) / perSample(van, 2)
	if r2 <= r1 {
		t.Errorf("EE advantage did not shrink from batch 1 (%v) to 2 (%v)", r1, r2)
	}
	// By batch 4–8, EE must be slower per sample: the §2.3 utilization
	// collapse plus ramp sync overheads overtake the compute saving.
	for _, b := range []int{4, 8} {
		if e, v := perSample(eeM, b), perSample(van, b); e <= v {
			t.Errorf("batch %d: EE per-sample %v not above vanilla %v", b, e, v)
		}
	}
}

func TestSplitGraphModeConstantBatch(t *testing.T) {
	// E3's graph-mode split keeps the batch constant: duration must be
	// independent of the samples' difficulties (exits apply at boundary).
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	easyRes := RunSplit(m, 1, 6, mkBatch(0.05, 0.05, 0.05, 0.05), spec, 1)
	hardRes := RunSplit(m, 1, 6, mkBatch(0.99, 0.99, 0.99, 0.99), spec, 1)
	// Hard batch has no exits → no reform; easy batch exits everyone at
	// the boundary with no survivors → also no reform. Same duration.
	if math.Abs(easyRes.Duration-hardRes.Duration) > 1e-12 {
		t.Errorf("split duration varies with difficulty: %v vs %v", easyRes.Duration, hardRes.Duration)
	}
	if len(easyRes.Completions) != 4 || len(easyRes.Survivors) != 0 {
		t.Errorf("easy batch: %d completions, %d survivors", len(easyRes.Completions), len(easyRes.Survivors))
	}
	if len(hardRes.Completions) != 0 || len(hardRes.Survivors) != 4 {
		t.Errorf("hard batch: %d completions, %d survivors", len(hardRes.Completions), len(hardRes.Survivors))
	}
}

func TestSplitCheaperThanEagerAtScale(t *testing.T) {
	// Graph-mode split execution avoids per-ramp sync stalls, so a full
	// pass as two splits must beat the eager naive-EE pass at batch 8 for
	// a hard batch (no drain benefit for eager mode).
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	batch := mkBatch(0.99, 0.99, 0.99, 0.99, 0.99, 0.99, 0.99, 0.99)
	eager := RunSegment(m, 1, 12, batch, spec, 1)
	s1 := RunSplit(m, 1, 6, batch, spec, 1)
	s2 := RunSplit(m, 7, 12, s1.Survivors, spec, 1)
	if got := s1.Duration + s2.Duration; got >= eager.Duration {
		t.Errorf("graph-mode total %v not below eager %v", got, eager.Duration)
	}
}

func TestSplitCompletionsAtBoundary(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	res := RunSplit(m, 1, 6, mkBatch(0.1, 0.4, 0.9), spec, 1)
	if len(res.Completions) != 2 || len(res.Survivors) != 1 {
		t.Fatalf("completions=%d survivors=%d, want 2/1", len(res.Completions), len(res.Survivors))
	}
	for _, c := range res.Completions {
		if c.Offset != res.Duration+res.HandoffDelay {
			t.Errorf("boundary completion offset %v != duration+handoff %v", c.Offset, res.Duration+res.HandoffDelay)
		}
	}
	if res.HandoffDelay <= 0 {
		t.Error("split with exits must have a positive handoff delay")
	}
}

func TestSplitTimePredictsRunSplit(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.P100)
	batch := mkBatch(0.1, 0.4, 0.7, 0.95)
	run := RunSplit(m, 1, 6, batch, spec, 1)
	pred := SplitTime(m, 1, 6, 4, 0.5, spec)
	if rel := math.Abs(pred-run.Duration) / run.Duration; rel > 0.02 {
		t.Errorf("SplitTime %v vs RunSplit %v (rel %v)", pred, run.Duration, rel)
	}
}

func TestSplitStragglerScales(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	batch := mkBatch(0.99, 0.99)
	h := RunSplit(m, 1, 6, batch, spec, 1)
	s := RunSplit(m, 1, 6, batch, spec, 3)
	if math.Abs(s.Duration-3*h.Duration) > 1e-12 {
		t.Errorf("straggler split %v, want %v", s.Duration, 3*h.Duration)
	}
}

func TestSplitEmptyAndBadBounds(t *testing.T) {
	m := ee.NewVanilla(model.BERTBase())
	if res := RunSplit(m, 1, 12, nil, gpu.Get(gpu.V100), 1); res.Duration != 0 {
		t.Error("empty split batch should be free")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad split bounds did not panic")
		}
	}()
	RunSplit(m, 0, 12, mkBatch(0.5), gpu.Get(gpu.V100), 1)
}

func TestSegmentTimeMatchesRunOnUniformBatch(t *testing.T) {
	// With a constant batch (no exits inside the segment), SegmentTime
	// must equal RunSegment's duration exactly.
	m := ee.NewVanilla(model.BERTBase())
	spec := gpu.Get(gpu.P100)
	batch := mkBatch(0.9, 0.9, 0.9, 0.9)
	run := RunSegment(m, 1, 12, batch, spec, 1)
	pred := SegmentTime(m, 1, 12, func(int) float64 { return 4 }, spec)
	if math.Abs(run.Duration-pred) > 1e-12 {
		t.Errorf("SegmentTime %v != RunSegment %v", pred, run.Duration)
	}
}

func TestSegmentTimePredictsShrinkingBatch(t *testing.T) {
	// SegmentTime over the expected (deterministic) profile of a batch
	// should approximate RunSegment on that concrete batch.
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	diffs := []float64{0.12, 0.3, 0.5, 0.7, 0.9, 0.99, 0.2, 0.6}
	batch := mkBatch(diffs...)
	run := RunSegment(m, 1, 12, batch, spec, 1)
	batchAt := func(k int) float64 {
		n := 0
		for _, d := range diffs {
			if m.ExitLayerFor(d) >= k {
				n++
			}
		}
		return float64(n)
	}
	pred := SegmentTime(m, 1, 12, batchAt, spec)
	if rel := math.Abs(pred-run.Duration) / run.Duration; rel > 0.05 {
		t.Errorf("SegmentTime %v vs RunSegment %v (rel err %v)", pred, run.Duration, rel)
	}
}

// Property: no sample is lost or duplicated across a random split of the
// model into two segments, and completion offsets are within duration.
func TestConservationProperty(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.K80)
	rng := rand.New(rand.NewSource(22))
	f := func(rawDiffs []uint16, rawCut uint8) bool {
		if len(rawDiffs) == 0 || len(rawDiffs) > 64 {
			return true
		}
		cut := int(rawCut%10) + 1 // split after layer 1..10
		batch := make([]workload.Sample, len(rawDiffs))
		for i, r := range rawDiffs {
			batch[i] = workload.Sample{ID: int64(i + 1), Difficulty: float64(r) / 65535}
		}
		r1 := RunSegment(m, 1, cut, batch, spec, 1)
		r2 := RunSegment(m, cut+1, 12, r1.Survivors, spec, 1)
		seen := make(map[int64]int)
		for _, c := range r1.Completions {
			seen[c.Sample.ID]++
			if c.Offset < 0 || c.Offset > r1.Duration+1e-12 {
				return false
			}
		}
		for _, c := range r2.Completions {
			seen[c.Sample.ID]++
			if c.Offset < 0 || c.Offset > r2.Duration+1e-12 {
				return false
			}
		}
		if len(seen) != len(batch) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
