package exec

import (
	"testing"

	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/workload"
)

func benchBatch(n int) []workload.Sample {
	out := make([]workload.Sample, n)
	for i := range out {
		out[i] = workload.Sample{ID: int64(i), Difficulty: float64(i%10) / 10}
	}
	return out
}

// BenchmarkRunSegmentEager measures the eager (naive-EE) execution path.
func BenchmarkRunSegmentEager(b *testing.B) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	batch := benchBatch(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSegment(m, 1, 12, batch, spec, 1)
	}
}

// BenchmarkRunSplitGraph measures E3's graph-mode split execution.
func BenchmarkRunSplitGraph(b *testing.B) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	batch := benchBatch(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSplit(m, 1, 6, batch, spec, 1)
	}
}
