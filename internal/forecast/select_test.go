package forecast

import (
	"math"
	"math/rand"
	"testing"
)

func TestSelectOrderPrefersARForARData(t *testing.T) {
	series := ar1Series(0.75, 0.5, 400, 0.1, 21)
	res, err := SelectOrder(series, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 1 {
		t.Errorf("AR(1) data selected p=%d", res.P)
	}
	if res.D != 0 {
		t.Errorf("stationary data selected d=%d", res.D)
	}
	// The selected model must forecast sanely.
	f := res.Model.Forecast(3)
	for _, v := range f {
		if math.IsNaN(v) || math.Abs(v) > 100 {
			t.Fatalf("selected model forecasts %v", f)
		}
	}
}

func TestSelectOrderPrefersDifferencingForTrend(t *testing.T) {
	series := make([]float64, 200)
	rng := rand.New(rand.NewSource(22))
	for i := range series {
		series[i] = 0.5*float64(i) + rng.NormFloat64()*0.2
	}
	res, err := SelectOrder(series, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 1 {
		t.Errorf("trending data selected d=%d, want 1", res.D)
	}
	// Forecast must continue the trend.
	f := res.Model.Forecast(2)
	if f[0] < series[len(series)-1] {
		t.Errorf("trend forecast %v below last value %v", f[0], series[len(series)-1])
	}
}

func TestSelectOrderShortSeries(t *testing.T) {
	if _, err := SelectOrder([]float64{1, 2}, 2, 1, 1); err == nil {
		t.Error("short series accepted")
	}
}

func TestSelectOrderBeatsFixedOnMA(t *testing.T) {
	// MA(1)-heavy data: the grid should include q=1 and score it at least
	// as well as a pure AR(1).
	rng := rand.New(rand.NewSource(23))
	n := 500
	e := make([]float64, n)
	y := make([]float64, n)
	for i := 1; i < n; i++ {
		e[i] = rng.NormFloat64() * 0.3
		y[i] = e[i] + 0.8*e[i-1]
	}
	res, err := SelectOrder(y, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := FitARIMA(y, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AICc > aicc(ar, y) {
		t.Errorf("selected (%d,%d,%d) AICc %v worse than plain AR(1) %v", res.P, res.D, res.Q, res.AICc, aicc(ar, y))
	}
}
