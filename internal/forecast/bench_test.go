package forecast

import (
	"testing"

	"e3/internal/profile"
)

// BenchmarkFitARIMA measures one per-layer model fit — the estimator runs
// one per layer per scheduling window.
func BenchmarkFitARIMA(b *testing.B) {
	series := ar1Series(0.6, 0.2, 64, 0.05, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitARIMA(series, 1, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorWindow measures a full observe+predict cycle for a
// 12-layer model — the §3.1 control-loop cost per window.
func BenchmarkEstimatorWindow(b *testing.B) {
	e := NewEstimator(12)
	surv := make([]float64, 12)
	for k := range surv {
		surv[k] = 1 - float64(k)*0.07
	}
	obs := profile.NewBatch(surv)
	for i := 0; i < 32; i++ {
		e.Observe(obs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(obs)
		_ = e.Predict()
	}
}
