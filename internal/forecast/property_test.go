package forecast

import (
	"math/rand"
	"testing"

	"e3/internal/profile"
)

// randomProfile draws one valid survival profile: monotone non-increasing
// from 1, values in [0,1].
func randomProfile(r *rand.Rand, l int) profile.Batch {
	surv := make([]float64, l)
	v := 1.0
	for k := 0; k < l; k++ {
		if k > 0 {
			v *= 1 - 0.4*r.Float64()
		}
		surv[k] = v
	}
	return profile.NewBatch(surv)
}

// TestPredictSafetyProperties exercises the §3.1 safety checks on
// arbitrary random histories: for both methods, Predict always returns
// survival in [0,1], monotone non-increasing across layers, and — once
// the history is long enough for ARIMA — within ±0.15 of the last
// observation per layer.
func TestPredictSafetyProperties(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 200; trial++ {
		l := 2 + r.Intn(11)
		n := r.Intn(30)
		method := MethodARIMA
		if trial%2 == 1 {
			method = MethodPersistence
		}
		e := NewEstimator(l)
		e.Method = method
		e.Stats = NewStats(l)
		var last profile.Batch
		for i := 0; i < n; i++ {
			last = randomProfile(r, l)
			e.Observe(last)
		}
		p := e.Predict()
		prev := 1.0
		for k := 1; k <= l; k++ {
			v := p.At(k)
			if v < 0 || v > 1 {
				t.Fatalf("trial %d (method %d, n=%d): At(%d)=%v outside [0,1]", trial, method, n, k, v)
			}
			if v > prev+1e-12 {
				t.Fatalf("trial %d (method %d, n=%d): non-monotone At(%d)=%v > At(%d)=%v",
					trial, method, n, k, v, k-1, prev)
			}
			prev = v
			// Long enough history: every layer's forecast stays near its
			// last observation (persistence is exact; ARIMA is clamped).
			if n >= e.P+e.D+e.Q+4 {
				if d := v - last.At(k); d > 0.15+1e-12 || d < -0.15-1e-12 {
					t.Fatalf("trial %d (method %d, n=%d): At(%d)=%v drifts %v from last obs %v",
						trial, method, n, k, v, d, last.At(k))
				}
			}
		}
	}
}
