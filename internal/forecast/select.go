package forecast

import (
	"math"
)

// Order selection: pick ARIMA(p,d,q) by corrected AIC over a small grid.
// The estimator's fixed (1,1,0) default is right for slow-moving exit
// rates; SelectOrder exists for workloads with richer dynamics (and for
// the curious operator via tests/tools).

// OrderResult reports the selected orders and their score.
type OrderResult struct {
	P, D, Q int
	AICc    float64
	Model   *ARIMA
}

// aicc computes the corrected Akaike criterion for a fitted model against
// the series it was fitted on: n·ln(RSS/n) + 2k·n/(n−k−1).
func aicc(m *ARIMA, series []float64) float64 {
	w := append([]float64(nil), series...)
	for i := 0; i < m.D; i++ {
		w = diff(w)
	}
	start := m.P
	if m.Q > start {
		start = m.Q
	}
	resid := make([]float64, len(w))
	rss := 0.0
	n := 0
	for t := start; t < len(w); t++ {
		pred := m.C
		for j := 0; j < m.P; j++ {
			pred += m.Phi[j] * w[t-1-j]
		}
		for j := 0; j < m.Q; j++ {
			pred += m.Theta[j] * resid[t-1-j]
		}
		resid[t] = w[t] - pred
		rss += resid[t] * resid[t]
		n++
	}
	if n < 3 {
		return math.Inf(1)
	}
	k := float64(m.P + m.Q + 1)
	if float64(n)-k-1 <= 0 {
		return math.Inf(1)
	}
	if rss <= 0 {
		rss = 1e-18
	}
	return float64(n)*math.Log(rss/float64(n)) + 2*k*float64(n)/(float64(n)-k-1)
}

// chooseD picks the differencing order by the variance-minimization
// heuristic: difference while it makes the series meaningfully calmer.
// (AICc values are not comparable across differencing levels, so d is
// fixed before the p/q grid search — standard auto-ARIMA practice.)
func chooseD(series []float64, maxD int) int {
	variance := func(s []float64) float64 {
		if len(s) < 2 {
			return math.Inf(1)
		}
		mean := 0.0
		for _, v := range s {
			mean += v
		}
		mean /= float64(len(s))
		sum := 0.0
		for _, v := range s {
			d := v - mean
			sum += d * d
		}
		return sum / float64(len(s))
	}
	d := 0
	cur := append([]float64(nil), series...)
	curVar := variance(cur)
	for d < maxD {
		next := diff(cur)
		nextVar := variance(next)
		// Require a decisive win to difference: a stationary AR series
		// also shrinks somewhat under differencing (2(1-phi) of the
		// variance), so only a near-collapse indicates a real trend.
		if nextVar >= curVar*0.1 {
			break
		}
		cur, curVar = next, nextVar
		d++
	}
	return d
}

// SelectOrder picks d by the variance heuristic, then fits the grid
// p∈[0,maxP], q∈[0,maxQ] (excluding the degenerate all-zero model) and
// returns the AICc-best fit.
func SelectOrder(series []float64, maxP, maxD, maxQ int) (OrderResult, error) {
	d := chooseD(series, maxD)
	best := OrderResult{AICc: math.Inf(1)}
	var lastErr error
	for p := 0; p <= maxP; p++ {
		for q := 0; q <= maxQ; q++ {
			if p == 0 && q == 0 {
				continue
			}
			m, err := FitARIMA(series, p, d, q)
			if err != nil {
				lastErr = err
				continue
			}
			score := aicc(m, series)
			if score < best.AICc {
				best = OrderResult{P: p, D: d, Q: q, AICc: score, Model: m}
			}
		}
	}
	if best.Model == nil {
		if lastErr == nil {
			lastErr = ErrTooShort
		}
		return best, lastErr
	}
	return best, nil
}
