package forecast

import (
	"math"
	"testing"
)

// TestPredictEnforcesCrossLayerMonotone is the revert-failing regression
// for the cross-layer safety check. Per-layer ARIMA series forecast
// independently; a fast-falling layer crossing a flat deeper layer's
// level produces a raw forecast where survival *increases* with depth.
// Predict must repair that (running-min) before the profile reaches the
// planner, and record the repair.
func TestPredictEnforcesCrossLayerMonotone(t *testing.T) {
	e := NewEstimator(3)
	e.Stats = NewStats(3)
	// Layer 2 falls 0.02/window toward layer 3's flat 0.30; the histories
	// stay valid (monotone within each window) but layer 2's extrapolation
	// (~0.29) undershoots layer 3's (~0.30).
	for i := 0; i < 20; i++ {
		l2 := 0.69 - 0.02*float64(i) // 0.69 → 0.31
		e.Observe(profFrom(1, l2, 0.30))
	}
	p := e.Predict()
	if p.At(3) > p.At(2)+1e-12 {
		t.Errorf("non-monotone forecast reached the profile: At(2)=%v At(3)=%v", p.At(2), p.At(3))
	}
	if got := e.Stats.MonotoneFixes(); got == 0 {
		t.Error("crossing extrapolations produced no monotone fix — Predict is not repairing cross-layer violations")
	}
	// The recorded (scored) forecast is the repaired one, not the raw
	// per-layer output.
	lp := e.Stats.lastPred
	for k := 1; k < len(lp); k++ {
		if lp[k] > lp[k-1]+1e-12 {
			t.Errorf("stats recorded a non-monotone forecast: %v", lp)
		}
	}
}

func TestStatsResidualsAndGauges(t *testing.T) {
	e := NewEstimator(2)
	e.Stats = NewStats(2)
	e.Method = MethodPersistence
	e.Observe(profFrom(1, 0.5)) // no pending prediction: not scored
	if e.Stats.Windows() != 0 {
		t.Fatalf("scored %d windows before any prediction", e.Stats.Windows())
	}
	e.Predict()                 // predicts (1, 0.5)
	e.Observe(profFrom(1, 0.4)) // residual 0.1 on layer 2, 0 on layer 1
	if e.Stats.Windows() != 1 {
		t.Fatalf("windows = %d, want 1", e.Stats.Windows())
	}
	if got := e.Stats.MAE(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("MAE = %v, want 0.05 (mean of 0 and 0.1)", got)
	}
	if got := e.Stats.LastMAE(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("LastMAE = %v, want 0.05", got)
	}
	pl := e.Stats.PerLayerMAE()
	if math.Abs(pl[0]-0) > 1e-12 || math.Abs(pl[1]-0.1) > 1e-12 {
		t.Errorf("per-layer MAE = %v, want [0, 0.1]", pl)
	}
	// MAPE: layer 1 0/1, layer 2 0.1/0.4 = 0.25 → mean 0.125.
	if got := e.Stats.MAPE(); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.125", got)
	}
	// A second unscored observation leaves gauges untouched.
	e.Observe(profFrom(1, 0.3))
	if e.Stats.Windows() != 1 {
		t.Errorf("observation without prediction scored: windows=%d", e.Stats.Windows())
	}
}

func TestStatsCounters(t *testing.T) {
	e := NewEstimator(2)
	e.Stats = NewStats(2)
	e.Observe(profFrom(1, 0.5))
	e.Observe(profFrom(1, 0.5))
	e.Predict() // 2 observations < ARIMA minimum → persistence fallback
	if got := e.Stats.PersistenceFallbacks(); got == 0 {
		t.Error("short-history fallback not counted")
	}
	// Oscillating series drive raw forecasts outside ±0.15 → clamp hits.
	e2 := NewEstimator(2)
	e2.Stats = NewStats(2)
	for _, v := range []float64{0.9, 0.1, 0.95, 0.05, 0.9, 0.1, 0.95, 0.05, 0.9, 0.1} {
		e2.Observe(profFrom(1, v))
	}
	e2.Predict()
	if e2.Stats.ClampHits() == 0 {
		t.Error("oscillating series produced no clamp hits")
	}
}

func TestStatsNilSafe(t *testing.T) {
	var s *Stats
	s.predicted([]float64{1})
	s.observed(profFrom(1))
	s.clampHit()
	s.persistenceFallback()
	s.fitFailure()
	s.monotoneFixed()
	if s.MAE() != 0 || s.MAPE() != 0 || s.LastMAE() != 0 || s.PerLayerMAE() != nil ||
		s.Windows() != 0 || s.ClampHits() != 0 || s.PersistenceFallbacks() != 0 ||
		s.FitFailures() != 0 || s.MonotoneFixes() != 0 {
		t.Error("nil Stats not inert")
	}
	// An estimator without Stats behaves identically.
	a, b := NewEstimator(2), NewEstimator(2)
	b.Stats = NewStats(2)
	for i := 0; i < 12; i++ {
		v := 0.3 + 0.03*float64(i)
		a.Observe(profFrom(1, v))
		b.Observe(profFrom(1, v))
	}
	pa, pb := a.Predict(), b.Predict()
	if pa.At(2) != pb.At(2) {
		t.Errorf("stats changed the forecast: %v vs %v", pa.At(2), pb.At(2))
	}
}

func TestStatsRollingWindowBound(t *testing.T) {
	e := NewEstimator(1)
	e.Stats = NewStats(1)
	e.Method = MethodPersistence
	for i := 0; i < 3*statsWindows; i++ {
		e.Predict()
		e.Observe(profFrom(1))
	}
	if len(e.Stats.absResid) > statsWindows {
		t.Errorf("residual ring grew to %d, bound is %d", len(e.Stats.absResid), statsWindows)
	}
	if e.Stats.Windows() != 3*statsWindows {
		t.Errorf("windows = %d, want %d", e.Stats.Windows(), 3*statsWindows)
	}
}
