package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func ar1Series(phi, c float64, n int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	out[0] = c / (1 - phi)
	for i := 1; i < n; i++ {
		out[i] = c + phi*out[i-1] + noise*rng.NormFloat64()
	}
	return out
}

func TestFitARRecoversCoefficient(t *testing.T) {
	series := ar1Series(0.7, 1.0, 500, 0.1, 1)
	m, err := FitARIMA(series, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.7) > 0.08 {
		t.Errorf("phi = %v, want ~0.7", m.Phi[0])
	}
	// Stationary mean c/(1-phi) ≈ 3.33.
	mean := m.C / (1 - m.Phi[0])
	if math.Abs(mean-10.0/3) > 0.3 {
		t.Errorf("implied mean = %v, want ~3.33", mean)
	}
}

func TestForecastConstantSeries(t *testing.T) {
	series := make([]float64, 50)
	for i := range series {
		series[i] = 4.2
	}
	for _, orders := range [][3]int{{1, 0, 0}, {1, 1, 0}, {2, 1, 1}} {
		m, err := FitARIMA(series, orders[0], orders[1], orders[2])
		if err != nil {
			t.Fatalf("ARIMA%v: %v", orders, err)
		}
		for _, f := range m.Forecast(5) {
			if math.Abs(f-4.2) > 0.01 {
				t.Errorf("ARIMA%v forecast of constant = %v, want 4.2", orders, f)
			}
		}
	}
}

func TestForecastLinearTrendWithDifferencing(t *testing.T) {
	// y_t = 3 + 2t: ARIMA(0,1,0)+drift... we use (1,1,0) which captures
	// the constant difference.
	series := make([]float64, 60)
	for i := range series {
		series[i] = 3 + 2*float64(i)
	}
	m, err := FitARIMA(series, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(3)
	want := []float64{3 + 2*60, 3 + 2*61, 3 + 2*62}
	for i := range fc {
		if math.Abs(fc[i]-want[i]) > 0.5 {
			t.Errorf("trend forecast[%d] = %v, want %v", i, fc[i], want[i])
		}
	}
}

func TestForecastTracksDecayingSeries(t *testing.T) {
	// Exit rates ramping down: forecast should land between the last two
	// values or below the last (continuing the trend), not jump upward.
	series := []float64{0.9, 0.85, 0.8, 0.74, 0.7, 0.66, 0.61, 0.56, 0.52, 0.48, 0.44, 0.4}
	m, err := FitARIMA(series, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Forecast(1)[0]
	if f >= 0.44 || f < 0.2 {
		t.Errorf("decaying-series forecast = %v, want in [0.2, 0.44)", f)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitARIMA([]float64{1, 2}, 2, 1, 1); err == nil {
		t.Error("short series accepted")
	}
	if _, err := FitARIMA([]float64{1, 2, 3}, -1, 0, 0); err == nil {
		t.Error("negative order accepted")
	}
}

func TestForecastZeroHorizon(t *testing.T) {
	m, err := FitARIMA(ar1Series(0.5, 0, 100, 0.1, 2), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Forecast(0); got != nil {
		t.Errorf("Forecast(0) = %v, want nil", got)
	}
}

func TestMAComponentImprovesFit(t *testing.T) {
	// ARMA(1,1) data: fitting with q=1 should recover phi better than a
	// pure AR(1) (which absorbs the MA term into bias).
	rng := rand.New(rand.NewSource(3))
	n := 800
	phi, theta := 0.6, 0.5
	e := make([]float64, n)
	y := make([]float64, n)
	for i := 1; i < n; i++ {
		e[i] = rng.NormFloat64() * 0.2
		y[i] = phi*y[i-1] + e[i] + theta*e[i-1]
	}
	arma, err := FitARIMA(y, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arma.Phi[0]-phi) > 0.12 {
		t.Errorf("ARMA phi = %v, want ~%v", arma.Phi[0], phi)
	}
	if math.Abs(arma.Theta[0]-theta) > 0.2 {
		t.Errorf("ARMA theta = %v, want ~%v", arma.Theta[0], theta)
	}
}

func TestSolveSingular(t *testing.T) {
	_, err := solve([][]float64{{1, 1}, {1, 1}}, []float64{1, 2})
	if err == nil {
		t.Error("singular system solved")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	x, err := solve([][]float64{{2, 1}, {1, 3}}, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("solve = %v, want [1 3]", x)
	}
}

func TestIntegrateRoundTrip(t *testing.T) {
	// diff then integrate must reproduce the continuation.
	orig := []float64{1, 3, 6, 10, 15}
	w := diff(orig) // 2 3 4 5
	// Forecasting the next diffs 6,7 should integrate to 21, 28.
	got := integrate(orig, []float64{6, 7}, 1)
	if math.Abs(got[0]-21) > 1e-9 || math.Abs(got[1]-28) > 1e-9 {
		t.Errorf("integrate = %v, want [21 28]", got)
	}
	_ = w
}

// Property: forecasts of bounded stationary AR(1) series stay bounded.
func TestForecastBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(rawPhi uint8, seed int64) bool {
		phi := float64(rawPhi%80) / 100 // [0, 0.8)
		series := ar1Series(phi, 0.5, 120, 0.05, seed)
		m, err := FitARIMA(series, 1, 0, 0)
		if err != nil {
			return true // short/degenerate inputs may legitimately fail
		}
		for _, v := range m.Forecast(10) {
			if math.IsNaN(v) || math.Abs(v) > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
