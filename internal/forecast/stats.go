package forecast

import "e3/internal/profile"

// statsWindows bounds the rolling residual history Stats retains.
const statsWindows = 64

// Stats accumulates forecast-accuracy telemetry for one Estimator:
// rolling per-layer residuals (predicted vs next observed survival),
// MAE/MAPE gauges over the retained window, and counters for the safety
// machinery (clamp hits, persistence fallbacks, FitARIMA failures,
// cross-layer monotone fixes).
//
// Like audit.Ledger and telemetry.Tracer, a nil *Stats is valid and
// records nothing, so forecasting pays nothing when telemetry is off.
// Attach one via Estimator.Stats.
type Stats struct {
	layers int

	// lastPred holds the most recent Predict output awaiting its matching
	// observation.
	lastPred []float64
	hasPred  bool

	// absResid/pctResid are rolling rings of per-window mean residuals
	// (absolute and percentage) across layers; perLayerAbs accumulates the
	// same residuals per layer.
	absResid    []float64
	pctResid    []float64
	perLayerAbs [][]float64

	windows              int
	clampHits            int
	persistenceFallbacks int
	fitFailures          int
	monotoneFixes        int
}

// NewStats builds telemetry for an l-layer estimator.
func NewStats(l int) *Stats {
	return &Stats{layers: l, perLayerAbs: make([][]float64, l)}
}

// predicted records one Predict output (the actually-used, post-clamp
// forecast).
func (s *Stats) predicted(surv []float64) {
	if s == nil {
		return
	}
	s.lastPred = append(s.lastPred[:0], surv...)
	s.hasPred = true
}

// observed pairs one observed profile with the pending prediction and
// accumulates residuals. Observations with no pending prediction (e.g.
// the very first window) are ignored.
func (s *Stats) observed(p profile.Batch) {
	if s == nil || !s.hasPred || len(s.lastPred) != s.layers {
		return
	}
	s.hasPred = false
	absSum, pctSum := 0.0, 0.0
	pctN := 0
	for k := 1; k <= s.layers; k++ {
		obs := p.At(k)
		resid := s.lastPred[k-1] - obs
		if resid < 0 {
			resid = -resid
		}
		absSum += resid
		if obs > 0 {
			pctSum += resid / obs
			pctN++
		}
		s.perLayerAbs[k-1] = pushBounded(s.perLayerAbs[k-1], resid)
	}
	s.absResid = pushBounded(s.absResid, absSum/float64(s.layers))
	if pctN > 0 {
		s.pctResid = pushBounded(s.pctResid, pctSum/float64(pctN))
	}
	s.windows++
}

func pushBounded(h []float64, v float64) []float64 {
	h = append(h, v)
	if len(h) > statsWindows {
		h = h[len(h)-statsWindows:]
	}
	return h
}

func (s *Stats) clampHit() {
	if s == nil {
		return
	}
	s.clampHits++
}

func (s *Stats) persistenceFallback() {
	if s == nil {
		return
	}
	s.persistenceFallbacks++
}

func (s *Stats) fitFailure() {
	if s == nil {
		return
	}
	s.fitFailures++
}

func (s *Stats) monotoneFixed() {
	if s == nil {
		return
	}
	s.monotoneFixes++
}

func mean(h []float64) float64 {
	if len(h) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	return sum / float64(len(h))
}

// MAE is the mean absolute per-layer forecast error over the retained
// windows (0 with no scored windows).
func (s *Stats) MAE() float64 {
	if s == nil {
		return 0
	}
	return mean(s.absResid)
}

// MAPE is the mean absolute percentage error over the retained windows,
// as a fraction (0.1 == 10%). Layers whose observed survival is zero are
// excluded.
func (s *Stats) MAPE() float64 {
	if s == nil {
		return 0
	}
	return mean(s.pctResid)
}

// LastMAE is the most recent window's mean absolute error (0 with no
// scored windows).
func (s *Stats) LastMAE() float64 {
	if s == nil || len(s.absResid) == 0 {
		return 0
	}
	return s.absResid[len(s.absResid)-1]
}

// PerLayerMAE reports the rolling mean absolute error for each layer.
func (s *Stats) PerLayerMAE() []float64 {
	if s == nil {
		return nil
	}
	out := make([]float64, s.layers)
	for k := range s.perLayerAbs {
		out[k] = mean(s.perLayerAbs[k])
	}
	return out
}

// Windows reports how many prediction/observation pairs have been scored.
func (s *Stats) Windows() int {
	if s == nil {
		return 0
	}
	return s.windows
}

// ClampHits counts per-layer forecasts bounded by a §3.1 safety clamp
// (±0.15 of the last observation or the [0,1] range).
func (s *Stats) ClampHits() int {
	if s == nil {
		return 0
	}
	return s.clampHits
}

// PersistenceFallbacks counts per-layer forecasts that fell back to
// predict-last-value because the history was too short for ARIMA.
func (s *Stats) PersistenceFallbacks() int {
	if s == nil {
		return 0
	}
	return s.persistenceFallbacks
}

// FitFailures counts FitARIMA errors (each also falls back to
// persistence).
func (s *Stats) FitFailures() int {
	if s == nil {
		return 0
	}
	return s.fitFailures
}

// MonotoneFixes counts Predict calls whose per-layer forecasts violated
// cross-layer monotonicity and were repaired by the running-min clamp.
func (s *Stats) MonotoneFixes() int {
	if s == nil {
		return 0
	}
	return s.monotoneFixes
}
