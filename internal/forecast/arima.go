// Package forecast implements the time-series machinery behind E3's online
// batch-profile estimation (§3.1): an ARIMA(p,d,q) model fitted by the
// Hannan–Rissanen two-stage procedure, plus the sliding-window estimator
// that turns per-ramp batch-size observations into a predicted profile for
// the next scheduling window.
package forecast

import (
	"errors"
	"fmt"
	"math"
)

// ARIMA is a fitted ARIMA(p,d,q) model.
type ARIMA struct {
	P, D, Q int
	// Phi are AR coefficients (length P), Theta MA coefficients (length Q)
	// on the d-times-differenced series; C is the intercept.
	Phi, Theta []float64
	C          float64

	// tail retains enough of the training series to forecast.
	tail  []float64 // last values of the original series
	wTail []float64 // last values of the differenced series
	eTail []float64 // last residuals
}

// ErrTooShort reports a series too short to fit the requested orders.
var ErrTooShort = errors.New("forecast: series too short")

// FitARIMA fits ARIMA(p,d,q) to series by Hannan–Rissanen: (1) difference
// d times, (2) fit a long autoregression by least squares and take its
// residuals as innovation estimates, (3) regress the differenced series on
// its own lags and the lagged residuals.
func FitARIMA(series []float64, p, d, q int) (*ARIMA, error) {
	if p < 0 || d < 0 || q < 0 {
		return nil, fmt.Errorf("forecast: negative order p=%d d=%d q=%d", p, d, q)
	}
	w := append([]float64(nil), series...)
	for i := 0; i < d; i++ {
		w = diff(w)
	}
	minLen := p + q + d + 3
	if len(w) < minLen || len(w) <= p+q {
		return nil, fmt.Errorf("%w: len %d for ARIMA(%d,%d,%d)", ErrTooShort, len(series), p, d, q)
	}

	// Stage 1: long AR for residual estimates (only needed when q > 0).
	resid := make([]float64, len(w))
	if q > 0 {
		m := p + q + 2
		if m > len(w)/2 {
			m = len(w) / 2
		}
		if m < 1 {
			m = 1
		}
		phiLong, c, err := fitAR(w, m)
		if err != nil {
			return nil, err
		}
		for t := m; t < len(w); t++ {
			pred := c
			for j := 0; j < m; j++ {
				pred += phiLong[j] * w[t-1-j]
			}
			resid[t] = w[t] - pred
		}
	}

	// Stage 2: joint regression on p lags of w and q lags of residuals.
	start := p
	if q > start {
		start = q
	}
	if q > 0 {
		// Residuals before the long-AR burn-in are zero; skip them.
		start += p + q + 2
		if start >= len(w) {
			start = maxInt(p, q)
		}
	}
	rows := len(w) - start
	if rows < p+q+1 {
		return nil, fmt.Errorf("%w: %d usable rows for %d params", ErrTooShort, rows, p+q+1)
	}
	cols := p + q + 1
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := start + i
		row := make([]float64, cols)
		row[0] = 1
		for j := 0; j < p; j++ {
			row[1+j] = w[t-1-j]
		}
		for j := 0; j < q; j++ {
			row[1+p+j] = resid[t-1-j]
		}
		x[i] = row
		y[i] = w[t]
	}
	beta, err := leastSquares(x, y)
	if err != nil {
		return nil, err
	}

	a := &ARIMA{P: p, D: d, Q: q, C: beta[0]}
	a.Phi = append([]float64(nil), beta[1:1+p]...)
	a.Theta = append([]float64(nil), beta[1+p:1+p+q]...)

	// Recompute residuals under the final model for forecasting state.
	finalResid := make([]float64, len(w))
	for t := maxInt(p, q); t < len(w); t++ {
		pred := a.C
		for j := 0; j < p; j++ {
			pred += a.Phi[j] * w[t-1-j]
		}
		for j := 0; j < q; j++ {
			pred += a.Theta[j] * finalResid[t-1-j]
		}
		finalResid[t] = w[t] - pred
	}

	keep := maxInt(p, q) + d + 1
	if keep > len(series) {
		keep = len(series)
	}
	a.tail = append([]float64(nil), series[len(series)-keep:]...)
	wKeep := maxInt(p, 1)
	if wKeep > len(w) {
		wKeep = len(w)
	}
	a.wTail = append([]float64(nil), w[len(w)-wKeep:]...)
	eKeep := maxInt(q, 1)
	if eKeep > len(finalResid) {
		eKeep = len(finalResid)
	}
	a.eTail = append([]float64(nil), finalResid[len(finalResid)-eKeep:]...)
	return a, nil
}

// Forecast predicts the next h values of the original (undifferenced)
// series. Future innovations are taken as zero.
func (a *ARIMA) Forecast(h int) []float64 {
	if h <= 0 {
		return nil
	}
	w := append([]float64(nil), a.wTail...)
	e := append([]float64(nil), a.eTail...)
	wPred := make([]float64, 0, h)
	for i := 0; i < h; i++ {
		pred := a.C
		for j := 0; j < a.P; j++ {
			idx := len(w) - 1 - j
			if idx >= 0 {
				pred += a.Phi[j] * w[idx]
			}
		}
		for j := 0; j < a.Q; j++ {
			idx := len(e) - 1 - j
			if idx >= 0 {
				pred += a.Theta[j] * e[idx]
			}
		}
		w = append(w, pred)
		e = append(e, 0)
		wPred = append(wPred, pred)
	}
	return integrate(a.tail, wPred, a.D)
}

// diff returns the first difference of s.
func diff(s []float64) []float64 {
	if len(s) < 2 {
		return nil
	}
	out := make([]float64, len(s)-1)
	for i := 1; i < len(s); i++ {
		out[i-1] = s[i] - s[i-1]
	}
	return out
}

// integrate undoes d rounds of differencing on forecasts wPred, seeded by
// the tail of the original series.
func integrate(tail, wPred []float64, d int) []float64 {
	if d == 0 {
		return wPred
	}
	// Build the last value at each differencing level.
	levels := make([][]float64, d+1)
	levels[0] = tail
	for i := 1; i <= d; i++ {
		levels[i] = diff(levels[i-1])
	}
	last := make([]float64, d)
	for i := 0; i < d; i++ {
		lv := levels[i]
		if len(lv) == 0 {
			last[i] = 0
		} else {
			last[i] = lv[len(lv)-1]
		}
	}
	out := make([]float64, len(wPred))
	for i, wp := range wPred {
		v := wp
		for lvl := d - 1; lvl >= 0; lvl-- {
			v += last[lvl]
			last[lvl] = v
		}
		out[i] = v
	}
	return out
}

// fitAR fits an AR(m) with intercept by least squares.
func fitAR(w []float64, m int) (phi []float64, c float64, err error) {
	rows := len(w) - m
	if rows < m+1 {
		return nil, 0, fmt.Errorf("%w: AR(%d) on %d points", ErrTooShort, m, len(w))
	}
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := m + i
		row := make([]float64, m+1)
		row[0] = 1
		for j := 0; j < m; j++ {
			row[1+j] = w[t-1-j]
		}
		x[i] = row
		y[i] = w[t]
	}
	beta, err := leastSquares(x, y)
	if err != nil {
		return nil, 0, err
	}
	return beta[1:], beta[0], nil
}

// leastSquares solves min ‖Xβ−y‖² via the normal equations with a small
// ridge term for numerical safety, using Gaussian elimination.
func leastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errors.New("forecast: empty design matrix")
	}
	n := len(x[0])
	ata := make([][]float64, n)
	atb := make([]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	for r, row := range x {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * y[r]
		}
	}
	// Ridge regularization scaled to the matrix magnitude.
	scale := 0.0
	for i := 0; i < n; i++ {
		scale += ata[i][i]
	}
	ridge := 1e-8 * (scale/float64(n) + 1)
	for i := 0; i < n; i++ {
		ata[i][i] += ridge
	}
	return solve(ata, atb)
}

// solve performs Gaussian elimination with partial pivoting on a (copy of)
// the system a·x = b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-14 {
			return nil, errors.New("forecast: singular system")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := m[r][n]
		for c := r + 1; c < n; c++ {
			v -= m[r][c] * out[c]
		}
		out[r] = v / m[r][r]
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
