package forecast

import (
	"e3/internal/profile"
)

// Method selects the forecasting algorithm.
type Method int

// Forecasting methods. Persistence exists as the ablation baseline
// (predict-last-value); ARIMA is E3's default (§3.1).
const (
	MethodARIMA Method = iota
	MethodPersistence
)

// Estimator is E3's online batch-profile estimator. The workload is cut
// into fixed scheduling windows (2 minutes in the paper); at each window
// boundary the scheduler Observes the window's measured survival profile,
// and Predict forecasts the next window's profile — one ARIMA series per
// layer, clamped to a valid monotone profile so mispredictions can never
// produce an impossible plan (the paper's "safety checks").
type Estimator struct {
	L       int
	Method  Method
	P, D, Q int
	// MaxHistory bounds the sliding window of retained observations.
	MaxHistory int

	histories [][]float64 // per layer (0-based k-1), survival series
}

// NewEstimator builds an estimator for an L-layer model with the default
// ARIMA(1,1,0) orders — an autoregression on window-to-window differences,
// which tracks drifting exit rates and stays numerically stable on the
// short histories a 2-minute window produces.
func NewEstimator(l int) *Estimator {
	e := &Estimator{L: l, Method: MethodARIMA, P: 1, D: 1, Q: 0, MaxHistory: 64}
	e.histories = make([][]float64, l)
	return e
}

// Observe appends one window's measured survival profile.
func (e *Estimator) Observe(p profile.Batch) {
	for k := 1; k <= e.L; k++ {
		h := append(e.histories[k-1], p.At(k))
		if len(h) > e.MaxHistory {
			h = h[len(h)-e.MaxHistory:]
		}
		e.histories[k-1] = h
	}
}

// Observations reports how many windows have been observed.
func (e *Estimator) Observations() int {
	if e.L == 0 {
		return 0
	}
	return len(e.histories[0])
}

// Predict forecasts the next window's survival profile. With no history it
// returns an all-survive profile (conservative: plans like a non-EE
// model); with short history it falls back to persistence.
func (e *Estimator) Predict() profile.Batch {
	surv := make([]float64, e.L)
	for k := 0; k < e.L; k++ {
		surv[k] = e.predictLayer(e.histories[k])
	}
	return profile.NewBatch(surv)
}

func (e *Estimator) predictLayer(h []float64) float64 {
	if len(h) == 0 {
		return 1
	}
	last := h[len(h)-1]
	if e.Method == MethodPersistence || len(h) < e.P+e.D+e.Q+4 {
		return last
	}
	m, err := FitARIMA(h, e.P, e.D, e.Q)
	if err != nil {
		return last
	}
	pred := m.Forecast(1)[0]
	// Safety clamps (§3.1): survival fractions live in [0,1], and exit
	// behaviour moves slowly between 2-minute windows, so a forecast far
	// from the last observation is a bad fit, not a real shift — bound it
	// to ±0.15 of the last value.
	if pred > last+0.15 {
		pred = last + 0.15
	}
	if pred < last-0.15 {
		pred = last - 0.15
	}
	if pred < 0 {
		pred = 0
	}
	if pred > 1 {
		pred = 1
	}
	return pred
}
