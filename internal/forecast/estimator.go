package forecast

import (
	"e3/internal/profile"
)

// Method selects the forecasting algorithm.
type Method int

// Forecasting methods. Persistence exists as the ablation baseline
// (predict-last-value); ARIMA is E3's default (§3.1).
const (
	MethodARIMA Method = iota
	MethodPersistence
)

// Estimator is E3's online batch-profile estimator. The workload is cut
// into fixed scheduling windows (2 minutes in the paper); at each window
// boundary the scheduler Observes the window's measured survival profile,
// and Predict forecasts the next window's profile — one ARIMA series per
// layer, clamped to a valid monotone profile so mispredictions can never
// produce an impossible plan (the paper's "safety checks").
type Estimator struct {
	L       int
	Method  Method
	P, D, Q int
	// MaxHistory bounds the sliding window of retained observations.
	MaxHistory int

	// Stats optionally accumulates forecast-accuracy telemetry (residuals,
	// clamp/fallback counters). Nil (the default) records nothing at zero
	// cost.
	Stats *Stats

	histories [][]float64 // per layer (0-based k-1), survival series
}

// NewEstimator builds an estimator for an L-layer model with the default
// ARIMA(1,1,0) orders — an autoregression on window-to-window differences,
// which tracks drifting exit rates and stays numerically stable on the
// short histories a 2-minute window produces.
func NewEstimator(l int) *Estimator {
	e := &Estimator{L: l, Method: MethodARIMA, P: 1, D: 1, Q: 0, MaxHistory: 64}
	e.histories = make([][]float64, l)
	return e
}

// Observe appends one window's measured survival profile. When Stats is
// attached, the observation also scores the pending Predict output.
func (e *Estimator) Observe(p profile.Batch) {
	e.Stats.observed(p)
	for k := 1; k <= e.L; k++ {
		h := append(e.histories[k-1], p.At(k))
		if len(h) > e.MaxHistory {
			h = h[len(h)-e.MaxHistory:]
		}
		e.histories[k-1] = h
	}
}

// Observations reports how many windows have been observed.
func (e *Estimator) Observations() int {
	if e.L == 0 {
		return 0
	}
	return len(e.histories[0])
}

// Predict forecasts the next window's survival profile. With no history it
// returns an all-survive profile (conservative: plans like a non-EE
// model); with short history it falls back to persistence.
//
// Each layer forecasts independently, so per-layer drift can produce
// survival that *increases* with depth — an impossible profile. The
// cross-layer safety check repairs that with a running-min clamp before
// the profile reaches the planner.
func (e *Estimator) Predict() profile.Batch {
	surv := make([]float64, e.L)
	for k := 0; k < e.L; k++ {
		surv[k] = e.predictLayer(e.histories[k])
	}
	fixed := false
	for k := 1; k < e.L; k++ {
		if surv[k] > surv[k-1] {
			surv[k] = surv[k-1]
			fixed = true
		}
	}
	if fixed {
		e.Stats.monotoneFixed()
	}
	e.Stats.predicted(surv)
	return profile.NewBatch(surv)
}

func (e *Estimator) predictLayer(h []float64) float64 {
	if len(h) == 0 {
		return 1
	}
	last := h[len(h)-1]
	if e.Method == MethodPersistence {
		return last
	}
	if len(h) < e.P+e.D+e.Q+4 {
		e.Stats.persistenceFallback()
		return last
	}
	m, err := FitARIMA(h, e.P, e.D, e.Q)
	if err != nil {
		e.Stats.fitFailure()
		return last
	}
	pred := m.Forecast(1)[0]
	// Safety clamps (§3.1): survival fractions live in [0,1], and exit
	// behaviour moves slowly between 2-minute windows, so a forecast far
	// from the last observation is a bad fit, not a real shift — bound it
	// to ±0.15 of the last value.
	raw := pred
	if pred > last+0.15 {
		pred = last + 0.15
	}
	if pred < last-0.15 {
		pred = last - 0.15
	}
	if pred < 0 {
		pred = 0
	}
	if pred > 1 {
		pred = 1
	}
	if pred != raw {
		e.Stats.clampHit()
	}
	return pred
}
