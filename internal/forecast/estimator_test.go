package forecast

import (
	"math"
	"testing"

	"e3/internal/profile"
)

func profFrom(surv ...float64) profile.Batch { return profile.NewBatch(surv) }

func TestEstimatorNoHistoryPredictsAllSurvive(t *testing.T) {
	e := NewEstimator(4)
	p := e.Predict()
	for k := 1; k <= 4; k++ {
		if p.At(k) != 1 {
			t.Fatalf("cold-start At(%d) = %v, want 1", k, p.At(k))
		}
	}
}

func TestEstimatorPersistenceFallbackOnShortHistory(t *testing.T) {
	e := NewEstimator(3)
	e.Observe(profFrom(1, 0.6, 0.3))
	e.Observe(profFrom(1, 0.5, 0.25))
	p := e.Predict() // 2 observations: too short for ARIMA → persistence
	if math.Abs(p.At(2)-0.5) > 1e-12 || math.Abs(p.At(3)-0.25) > 1e-12 {
		t.Errorf("persistence fallback = %v/%v, want 0.5/0.25", p.At(2), p.At(3))
	}
}

func TestEstimatorTracksStableWorkload(t *testing.T) {
	e := NewEstimator(3)
	for i := 0; i < 20; i++ {
		e.Observe(profFrom(1, 0.55, 0.30))
	}
	p := e.Predict()
	if math.Abs(p.At(2)-0.55) > 0.02 || math.Abs(p.At(3)-0.30) > 0.02 {
		t.Errorf("stable prediction = %v/%v, want 0.55/0.30", p.At(2), p.At(3))
	}
}

func TestEstimatorTracksDrift(t *testing.T) {
	// Survival drifting upward (workload getting harder): the ARIMA
	// forecast must move toward the recent values, not the stale mean.
	e := NewEstimator(2)
	for i := 0; i < 24; i++ {
		s := 0.3 + 0.02*float64(i) // 0.30 → 0.76
		e.Observe(profFrom(1, s))
	}
	p := e.Predict()
	if p.At(2) < 0.70 {
		t.Errorf("drift prediction = %v, want ≥ 0.70 (recent values ~0.76)", p.At(2))
	}
	if p.At(2) > 1 {
		t.Errorf("prediction escaped clamp: %v", p.At(2))
	}
}

func TestEstimatorClampsWildForecasts(t *testing.T) {
	// A violently oscillating series can produce out-of-range raw
	// forecasts; the estimator must clamp into [0,1] and keep the profile
	// monotone.
	e := NewEstimator(2)
	vals := []float64{0.9, 0.1, 0.95, 0.05, 0.9, 0.1, 0.95, 0.05, 0.9, 0.1, 0.95, 0.05}
	for _, v := range vals {
		e.Observe(profFrom(1, v))
	}
	p := e.Predict()
	if p.At(2) < 0 || p.At(2) > 1 || p.At(1) != 1 {
		t.Errorf("clamped prediction invalid: At(1)=%v At(2)=%v", p.At(1), p.At(2))
	}
}

func TestEstimatorWindowBound(t *testing.T) {
	e := NewEstimator(1)
	e.MaxHistory = 8
	for i := 0; i < 100; i++ {
		e.Observe(profFrom(1))
	}
	if got := e.Observations(); got != 8 {
		t.Errorf("history length = %d, want bounded to 8", got)
	}
}

func TestPersistenceMethod(t *testing.T) {
	e := NewEstimator(2)
	e.Method = MethodPersistence
	for i := 0; i < 30; i++ {
		e.Observe(profFrom(1, 0.2+0.02*float64(i)))
	}
	p := e.Predict()
	want := 0.2 + 0.02*29
	if math.Abs(p.At(2)-want) > 1e-12 {
		t.Errorf("persistence = %v, want exactly last value %v", p.At(2), want)
	}
}

func TestEstimatorAccuracyOnRealisticShift(t *testing.T) {
	// Simulate the §5.4 workload switch: survival at the mid-cut jumps
	// from 0.5 to 0.7. Within a few windows the estimator must be within
	// 0.05 of the new level (Figure 21's "closely matches reality").
	e := NewEstimator(2)
	for i := 0; i < 15; i++ {
		e.Observe(profFrom(1, 0.5))
	}
	for i := 0; i < 5; i++ {
		e.Observe(profFrom(1, 0.7))
	}
	p := e.Predict()
	if math.Abs(p.At(2)-0.7) > 0.05 {
		t.Errorf("post-shift prediction = %v, want within 0.05 of 0.7", p.At(2))
	}
}
