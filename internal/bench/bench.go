// Package bench defines the shared envelope for e3-bench's machine-
// readable JSON artifacts (the BENCH_PR*.json zoo). Every emitter —
// -bench-out, -plan-bench, -sim-bench — wraps its kind-specific payload
// in a Report carrying the schema version, the workload seed, the trace
// parameters, and a flat headline-metrics map, so downstream tooling can
// index artifacts without knowing every payload shape. Decode also
// accepts the pre-envelope files (no "schema" key) as Schema 0 with the
// whole document as payload, so old BENCH files stay readable.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// CurrentSchema is the envelope version this package writes.
const CurrentSchema = 1

// TraceParams records the workload that produced a report.
type TraceParams struct {
	HorizonS   float64 `json:"horizon_s,omitempty"`
	AvgRate    float64 `json:"avg_rate,omitempty"`
	Batch      int     `json:"batch,omitempty"`
	Windows    int     `json:"windows,omitempty"`
	WindowDurS float64 `json:"window_dur_s,omitempty"`
}

// Report is the envelope. Payload holds the kind-specific body verbatim.
type Report struct {
	// Schema is the envelope version; 0 marks a legacy pre-envelope file
	// whose entire document is the payload.
	Schema int `json:"schema"`
	// Tool and Kind identify the emitter ("e3-bench") and the artifact
	// family ("traced-demo", "replan-loop", "plan-bench", "sim-bench").
	Tool string `json:"tool,omitempty"`
	Kind string `json:"kind,omitempty"`
	// Seed is the workload seed the run used (0 when not seed-driven).
	Seed  int64        `json:"seed,omitempty"`
	Trace *TraceParams `json:"trace_params,omitempty"`
	// Metrics is the flat headline-scalar index (throughput, p99, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`

	Payload json.RawMessage `json:"payload,omitempty"`
}

// Wrap builds an envelope around a payload value.
func Wrap(kind string, seed int64, tp *TraceParams, metrics map[string]float64, payload any) (*Report, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("bench: encode %s payload: %w", kind, err)
	}
	return &Report{
		Schema: CurrentSchema, Tool: "e3-bench", Kind: kind,
		Seed: seed, Trace: tp, Metrics: metrics, Payload: raw,
	}, nil
}

// Decode reads an envelope, accepting legacy pre-envelope documents: a
// JSON object without a "schema" key decodes as Schema 0 with the whole
// document as payload.
func Decode(data []byte) (*Report, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("bench: not a JSON object: %w", err)
	}
	if _, ok := probe["schema"]; !ok {
		return &Report{Schema: 0, Payload: json.RawMessage(data)}, nil
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if rep.Schema > CurrentSchema {
		return nil, fmt.Errorf("bench: envelope schema %d is newer than supported %d", rep.Schema, CurrentSchema)
	}
	return &rep, nil
}

// ReadFile decodes an envelope (or legacy document) from disk.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteFile writes the envelope as indented JSON with a trailing newline
// (the convention every BENCH artifact follows).
func WriteFile(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
