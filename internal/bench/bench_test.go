package bench_test

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"e3/internal/bench"
)

func TestWrapRoundTrip(t *testing.T) {
	type payload struct {
		Throughput float64 `json:"throughput_rps"`
	}
	env, err := bench.Wrap("traced-demo", 424242,
		&bench.TraceParams{HorizonS: 10, AvgRate: 2000, Batch: 8},
		map[string]float64{"throughput_rps": 1234.5},
		payload{Throughput: 1234.5})
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := bench.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Schema != bench.CurrentSchema || got.Kind != "traced-demo" || got.Seed != 424242 {
		t.Fatalf("envelope fields lost: %+v", got)
	}
	var p payload
	if err := json.Unmarshal(got.Payload, &p); err != nil {
		t.Fatalf("payload: %v", err)
	}
	if p.Throughput != 1234.5 {
		t.Fatalf("payload lost: %+v", p)
	}
}

func TestDecodeRejectsNewerSchema(t *testing.T) {
	if _, err := bench.Decode([]byte(`{"schema": 99}`)); err == nil {
		t.Fatal("want error for schema 99")
	}
}

// TestDecodeAllExistingBenchArtifacts proves the envelope reader accepts
// every BENCH_PR*.json already committed at the repo root: pre-envelope
// files (no "schema" key) must decode as Schema 0 with the whole document
// as payload, and envelope files must carry a non-empty kind.
func TestDecodeAllExistingBenchArtifacts(t *testing.T) {
	paths, err := filepath.Glob("../../BENCH_PR*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("expected at least 4 BENCH_PR*.json artifacts at the repo root, found %d: %v", len(paths), paths)
	}
	for _, path := range paths {
		rep, err := bench.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if rep.Schema == 0 {
			// Legacy: payload must be the original document, still an object.
			var doc map[string]json.RawMessage
			if err := json.Unmarshal(rep.Payload, &doc); err != nil {
				t.Errorf("%s: legacy payload not an object: %v", filepath.Base(path), err)
			} else if len(doc) == 0 {
				t.Errorf("%s: legacy payload empty", filepath.Base(path))
			}
			continue
		}
		if rep.Kind == "" {
			t.Errorf("%s: envelope (schema %d) missing kind", filepath.Base(path), rep.Schema)
		}
		if len(rep.Payload) == 0 {
			t.Errorf("%s: envelope missing payload", filepath.Base(path))
		}
	}
}
