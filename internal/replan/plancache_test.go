package replan

import (
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/forecast"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/telemetry"
)

func cacheProblem(surv []float64) optimizer.Config {
	return optimizer.Config{
		Model:   ee.NewDeeBERT(model.BERTBase(), 0.4),
		Profile: profile.NewBatch(surv),
		Batch:   8,
		Cluster: cluster.Homogeneous(gpu.V100, 8),
		SLO:     0.100, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac,
		Pipelining: true, ModelParallel: true,
	}
}

func flatSurv(L int, v float64) []float64 {
	s := make([]float64, L)
	for i := range s {
		s[i] = v
	}
	return s
}

// TestPlanCacheToleranceMatching: forecasts within the per-layer tolerance
// share a cached plan; forecasts beyond it, or any other planner input
// change, do not.
func TestPlanCacheToleranceMatching(t *testing.T) {
	c := NewPlanCache(4, 0.02)
	base := cacheProblem(flatSurv(12, 0.500))
	p := optimizer.Plan{GPUs: 3}
	c.Store(base, p)

	near := cacheProblem(flatSurv(12, 0.515)) // within 0.02 everywhere
	if got, ok := c.Lookup(near); !ok || got.GPUs != 3 {
		t.Error("forecast within tolerance missed the cache")
	}
	far := cacheProblem(flatSurv(12, 0.55)) // 0.05 away
	if _, ok := c.Lookup(far); ok {
		t.Error("forecast beyond tolerance hit the cache")
	}

	batch := base
	batch.Batch = 16
	if _, ok := c.Lookup(batch); ok {
		t.Error("batch change hit the cache")
	}
	clus := base
	clus.Cluster = cluster.Homogeneous(gpu.V100, 4)
	if _, ok := c.Lookup(clus); ok {
		t.Error("cluster change hit the cache")
	}
	knob := base
	knob.MaxSplits = 5
	if _, ok := c.Lookup(knob); ok {
		t.Error("MaxSplits change hit the cache")
	}
	slo := base
	slo.SLO = 0.2
	if _, ok := c.Lookup(slo); ok {
		t.Error("SLO change hit the cache")
	}

	// Disabling a ramp changes the model's planning identity even though
	// the pointer is unchanged.
	ramps := base.Model.ActiveRamps()
	if err := base.Model.Disable(ramps[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(base); ok {
		t.Error("active-ramp change hit the cache")
	}
}

// TestPlanCacheFIFO: bounded capacity evicts oldest-first, the hit/miss
// counters track Lookup outcomes, and a nil cache is inert.
func TestPlanCacheFIFO(t *testing.T) {
	c := NewPlanCache(2, 0.02)
	a := cacheProblem(flatSurv(12, 0.2))
	b := cacheProblem(flatSurv(12, 0.5))
	d := cacheProblem(flatSurv(12, 0.8))
	c.Store(a, optimizer.Plan{GPUs: 1})
	c.Store(b, optimizer.Plan{GPUs: 2})
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	c.Store(d, optimizer.Plan{GPUs: 3}) // evicts the oldest (a)
	if _, ok := c.Lookup(a); ok {
		t.Error("oldest entry survived eviction")
	}
	if got, ok := c.Lookup(b); !ok || got.GPUs != 2 {
		t.Error("entry b evicted early")
	}
	if got, ok := c.Lookup(d); !ok || got.GPUs != 3 {
		t.Error("entry d missing")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", c.Hits, c.Misses)
	}

	var nilCache *PlanCache
	if _, ok := nilCache.Lookup(a); ok {
		t.Error("nil cache hit")
	}
	nilCache.Store(a, optimizer.Plan{}) // must not panic
	if nilCache.Len() != 0 {
		t.Error("nil cache has entries")
	}
}

// TestPlanCacheStableForecastGate is the verify gate's cache criterion:
// on a stable workload with replanning forced every window, the replans
// after the forecast settles must be answered from the cache, with the
// hits visible per-window, in the result counters, and on the
// control-plane telemetry track.
func TestPlanCacheStableForecastGate(t *testing.T) {
	tr := telemetry.New()
	cfg := DriftingDemo(8, forecast.MethodARIMA, tr)
	cfg.Workload = nil      // constant Mix(0.8): the forecast settles
	cfg.DriftThreshold = -1 // force a replan every window
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 8 {
		t.Fatalf("replans %d, want one per window", res.Replans)
	}
	if res.PlanCacheHits == 0 {
		t.Fatal("stable forecast produced zero plan-cache hits; replans are not taking the cache path")
	}
	if res.PlanCacheHits+res.PlanCacheMisses != res.Replans {
		t.Errorf("hits %d + misses %d != replans %d",
			res.PlanCacheHits, res.PlanCacheMisses, res.Replans)
	}
	if res.PlanCacheHits < res.Replans/2 {
		t.Errorf("only %d/%d replans hit the cache on a stable forecast", res.PlanCacheHits, res.Replans)
	}

	perWindow := 0
	for _, w := range res.Windows {
		if w.PlanCacheHit {
			perWindow++
			if !w.Replanned {
				t.Errorf("window %d: cache hit without a replan", w.Window)
			}
		}
	}
	if perWindow != res.PlanCacheHits {
		t.Errorf("per-window hits %d != result hits %d", perWindow, res.PlanCacheHits)
	}

	spans := 0
	for _, s := range tr.Spans() {
		if s.Kind == telemetry.KindPlanCache {
			spans++
			if s.Track != "control-plane" {
				t.Errorf("plan-cache span on track %q", s.Track)
			}
			if s.End != s.Start {
				t.Errorf("plan-cache span has duration %v", s.Duration())
			}
		}
	}
	if spans != res.PlanCacheHits {
		t.Errorf("%d plan-cache spans, %d hits", spans, res.PlanCacheHits)
	}

	// Cached replans still audit clean and still count as replans in the
	// diff history (the telemetry-reconciliation invariant).
	if !res.Report.OK() {
		t.Errorf("conservation violations with caching: %v", res.Report.Violations)
	}
	if res.Diffs.Total() != res.Replans {
		t.Errorf("diff history %d != replans %d", res.Diffs.Total(), res.Replans)
	}
}

// TestPlanCacheDisabled: a negative size turns the cache off; every
// replan searches and no plan-cache telemetry appears.
func TestPlanCacheDisabled(t *testing.T) {
	tr := telemetry.New()
	cfg := DriftingDemo(5, forecast.MethodARIMA, tr)
	cfg.Workload = nil
	cfg.DriftThreshold = -1
	cfg.PlanCacheSize = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHits != 0 || res.PlanCacheMisses != 0 {
		t.Errorf("disabled cache counted hits=%d misses=%d", res.PlanCacheHits, res.PlanCacheMisses)
	}
	for _, s := range tr.Spans() {
		if s.Kind == telemetry.KindPlanCache {
			t.Fatal("plan-cache span recorded with caching disabled")
		}
	}
	if res.Replans != 5 {
		t.Errorf("replans %d, want 5", res.Replans)
	}
}

// TestPlanCacheServesWithinSLO: a run that leans on cached plans must stay
// audit-clean and keep serving within the SLO — reuse can change which
// plan serves a window, never whether the plan is valid.
func TestPlanCacheServesWithinSLO(t *testing.T) {
	cfg := DriftingDemo(8, forecast.MethodARIMA, nil)
	cfg.Workload = nil
	cfg.DriftThreshold = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHits == 0 {
		t.Fatal("no cache hits; scenario does not exercise the cache")
	}
	if !res.Report.OK() {
		t.Fatalf("conservation violations with cached plans: %v", res.Report.Violations)
	}
	for _, w := range res.Windows {
		if w.PlanCacheHit && w.SLOAttainment < 0.9 {
			t.Errorf("window %d served from cache with attainment %.3f", w.Window, w.SLOAttainment)
		}
	}
	if res.FinalPlan.Latency > cfg.SLO {
		t.Errorf("final plan latency %.4f exceeds SLO %.4f", res.FinalPlan.Latency, cfg.SLO)
	}
}
