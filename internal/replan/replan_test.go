package replan

import (
	"strings"
	"testing"

	"e3/internal/forecast"
	"e3/internal/telemetry"
)

const testWindows = 10

// TestReplanLoopConservation: the audit ledger and telemetry reconcile
// across every plan switch — no sample lost or double-counted when the
// pipeline is rebuilt mid-run.
func TestReplanLoopConservation(t *testing.T) {
	tr := telemetry.New()
	res, err := Run(DriftingDemo(testWindows, forecast.MethodARIMA, tr))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.OK() {
		t.Fatalf("conservation violations across plan switches:\n%s", strings.Join(res.Report.Violations, "\n"))
	}
	if len(res.Windows) != testWindows {
		t.Fatalf("%d window stats, want %d", len(res.Windows), testWindows)
	}
	total := 0
	for _, w := range res.Windows {
		total += w.Served + w.Violations + w.Dropped
	}
	arrived, completed, dropped := tr.Counts()
	if uint64(total) != arrived || arrived != completed+dropped {
		t.Errorf("per-window outcomes %d != tracer arrivals %d (completed %d + dropped %d)",
			total, arrived, completed, dropped)
	}
}

// TestReplanLoopAdapts: the drifting mix forces at least one real plan
// change, and every change is visible in the diff history.
func TestReplanLoopAdapts(t *testing.T) {
	res, err := Run(DriftingDemo(testWindows, forecast.MethodARIMA, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanChanges < 1 {
		t.Fatalf("no plan change across %d drifting windows", testWindows)
	}
	if res.Replans < res.PlanChanges {
		t.Errorf("replans %d < plan changes %d", res.Replans, res.PlanChanges)
	}
	changed := 0
	for _, d := range res.Diffs.Items() {
		if d.Changed {
			changed++
		}
	}
	if res.Diffs.Total() == res.Replans && changed != res.PlanChanges {
		t.Errorf("diff history records %d changes, result says %d", changed, res.PlanChanges)
	}
	if res.Provenance == nil || !res.Provenance.Accounted() {
		t.Error("last planning invocation's provenance missing or unaccounted")
	}
	if len(res.FinalPlan.Splits) == 0 {
		t.Error("no final plan")
	}
}

// TestReplanLoopDeterminism: same seed → byte-identical plan-diff
// sequence.
func TestReplanLoopDeterminism(t *testing.T) {
	render := func() string {
		res, err := Run(DriftingDemo(testWindows, forecast.MethodARIMA, nil))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, d := range res.Diffs.Items() {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed produced different plan-diff sequences:\n--- run 1:\n%s--- run 2:\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty diff sequence")
	}
}

// TestReplanARIMABeatsPersistence pins the acceptance criterion: on the
// same seed and drifting mix, the ARIMA forecaster's MAE is strictly
// below the persistence baseline's.
func TestReplanARIMABeatsPersistence(t *testing.T) {
	arima, err := Run(DriftingDemo(testWindows, forecast.MethodARIMA, nil))
	if err != nil {
		t.Fatal(err)
	}
	persist, err := Run(DriftingDemo(testWindows, forecast.MethodPersistence, nil))
	if err != nil {
		t.Fatal(err)
	}
	if arima.MeanForecastMAE >= persist.MeanForecastMAE {
		t.Errorf("ARIMA MAE %.5f not strictly below persistence %.5f",
			arima.MeanForecastMAE, persist.MeanForecastMAE)
	}
}

// TestReplanTelemetryTrack: replan instants land on the control-plane
// track as zero-duration spans carrying the window index.
func TestReplanTelemetryTrack(t *testing.T) {
	tr := telemetry.New()
	res, err := Run(DriftingDemo(6, forecast.MethodARIMA, tr))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	lastAt := -1.0
	for _, s := range tr.Spans() {
		if s.Kind != telemetry.KindReplan {
			continue
		}
		got++
		if s.Track != "control-plane" {
			t.Errorf("replan span on track %q", s.Track)
		}
		if s.End != s.Start {
			t.Errorf("replan span has duration %v", s.Duration())
		}
		if s.Start < lastAt {
			t.Errorf("replan instants not monotone: %v after %v", s.Start, lastAt)
		}
		lastAt = s.Start
	}
	// Every successful replan that produced a diff also recorded a span.
	if got != res.Diffs.Total() {
		t.Errorf("%d replan spans, %d diffs recorded", got, res.Diffs.Total())
	}
}

// TestReplanStaticMixHoldsPlan: with no drift and a loose threshold, the
// loop plans once and holds.
func TestReplanStaticMixHoldsPlan(t *testing.T) {
	cfg := DriftingDemo(5, forecast.MethodARIMA, nil)
	cfg.Workload = nil // constant Mix(0.8)
	cfg.DriftThreshold = 0.30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Window 0 plans from the cold-start all-survive profile; window 1's
	// first real forecast forces one correction. After that the mix is
	// static and the plan must hold.
	if res.Replans > 2 {
		t.Errorf("static mix replanned %d times, want ≤ 2 (cold start + first observation)", res.Replans)
	}
	if !res.Report.OK() {
		t.Errorf("conservation violations on static mix: %v", res.Report.Violations)
	}
}
