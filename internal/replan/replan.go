// Package replan drives E3's adaptation loop end to end on the sim clock:
// each scheduling window predicts the next exit profile (§3.1), re-runs
// the split/replicate planner when the forecast drifts from the plan's
// assumptions (§3.2), serves the window's arrivals under the active plan,
// then observes the window's measured profile back into the estimator.
//
// One engine, one collector, one lifecycle ledger, and one span tracer
// persist across every window and plan switch, so the conservation audit
// and the telemetry reconciliation hold over the whole run — a replan may
// rebuild the pipeline, but it cannot lose or double-count a sample.
package replan

import (
	"fmt"

	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/flame"
	"e3/internal/forecast"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/slo"
	"e3/internal/telemetry"
	"e3/internal/trace"
	"e3/internal/workload"
)

// diffHistory bounds the plan-diff ring a run retains.
const diffHistory = 32

// Config is one windowed replan run.
type Config struct {
	Model   *ee.EEModel
	Cluster *cluster.Cluster
	// Batch is B0; SLO the end-to-end deadline (seconds).
	Batch int
	SLO   float64

	// Windows is W, the number of scheduling windows; WindowDur each
	// window's virtual duration (the paper uses 2 minutes; tests use
	// seconds).
	Windows   int
	WindowDur float64
	// AvgRate is the bursty arrival process's mean rate (samples/s).
	AvgRate float64
	Seed    int64

	// DriftThreshold triggers a replan when the forecast profile's max
	// per-layer deviation from the active plan's assumed profile exceeds
	// it. Zero replans every window.
	DriftThreshold float64

	// Workload selects window w's difficulty mix, modelling §5.4-style
	// shifts. Nil holds Mix(0.8) throughout.
	Workload func(w int) workload.Dist

	// Method selects the forecaster (ARIMA default, persistence baseline).
	Method forecast.Method

	// Tracer optionally records spans across the run, including replan
	// instants on the control-plane track. Nil disables telemetry.
	Tracer *telemetry.Tracer

	// Attr optionally folds per-request critical-path breakdowns across
	// the run; its checks reconcile into the final audit report. Nil
	// disables attribution.
	Attr *slo.Attribution

	// Flame optionally folds the whole run's execution into a virtual-time
	// compute profile, snapshotted at every window boundary (plan switches
	// show up as profile shifts across Result.FlameWindows) and reconciled
	// exactly against the utilization ledger at end of run. Nil disables
	// profiling.
	Flame *flame.Profiler

	// SLOTarget is the attainment target the error budget accrues
	// against; BurnThreshold is the window burn rate that counts as a
	// breach (each emits a control-plane instant and can trigger the
	// flight recorder). Out-of-range values take slo's defaults. Budget
	// accounting always runs — it is O(1) per window.
	SLOTarget     float64
	BurnThreshold float64

	// Recorder, when non-nil, is armed with the run's tracer, diff ring,
	// forecast stats, ledger, budget, and attribution, and triggers on
	// burn-rate breaches, audit violations, and engine aborts.
	Recorder *slo.Recorder

	// PlanCacheSize bounds the cross-window plan cache. Zero takes
	// DefaultPlanCacheSize; negative disables caching entirely.
	PlanCacheSize int
	// PlanCacheTolerance is the per-layer survival deviation under which
	// two forecasts count as the same cached problem (zero takes
	// DefaultPlanCacheTolerance).
	PlanCacheTolerance float64

	// MaxSplits, MaxBoundaryCands and PlannerWorkers forward to the
	// planner; zero values take the planner's defaults.
	MaxSplits        int
	MaxBoundaryCands int
	PlannerWorkers   int
}

// WindowStat is one window's outcome.
type WindowStat struct {
	Window int     `json:"window"`
	Start  float64 `json:"start_s"`

	Served     int `json:"served"`
	Violations int `json:"violations"`
	Dropped    int `json:"dropped"`
	// Goodput is within-SLO completions per second of window time.
	Goodput float64 `json:"goodput"`
	// SLOAttainment is served / (served + violations + dropped); 1 when
	// the window had no outcomes.
	SLOAttainment float64 `json:"slo_attainment"`

	// ForecastMAE is the mean absolute per-layer error of this window's
	// forecast against its observed profile.
	ForecastMAE float64 `json:"forecast_mae"`
	// Drift is the forecast's max per-layer deviation from the active
	// plan's assumed profile at the window boundary.
	Drift float64 `json:"drift"`

	Replanned   bool `json:"replanned"`
	PlanChanged bool `json:"plan_changed"`
	// PlanCacheHit marks a replan answered from the cross-window plan
	// cache instead of a fresh search.
	PlanCacheHit bool `json:"plan_cache_hit"`

	// Budget is the window's error-budget accounting (burn rate, budget
	// remaining, time-to-exhaustion, breach flag).
	Budget slo.WindowBudget `json:"budget"`
}

// Result is one run's outcome.
type Result struct {
	Windows []WindowStat
	// Diffs retains the most recent plan diffs (bounded); Replans counts
	// planner invocations, PlanChanges the ones whose plan differed.
	Diffs       *optimizer.DiffRing
	Replans     int
	PlanChanges int
	// PlanCacheHits counts replans served from the cross-window cache;
	// PlanCacheMisses counts the ones that ran a search.
	PlanCacheHits   int
	PlanCacheMisses int

	FinalPlan optimizer.Plan
	// Provenance is the last planner invocation's search trace.
	Provenance *optimizer.SearchTrace
	// Forecast is the estimator's accuracy telemetry over the whole run.
	Forecast *forecast.Stats
	// MeanForecastMAE is the rolling MAE gauge at end of run.
	MeanForecastMAE float64

	// Report is the conservation audit over the entire run, with the
	// tracer's counters reconciled in.
	Report *audit.Report

	// Budget is the run's error-budget tracker (never nil: budget
	// accounting always runs).
	Budget *slo.Budget

	// FlameWindows holds one cumulative profile snapshot per window (only
	// when a profiler was attached): FlameWindows[w] covers the run through
	// window w's end, so window w's own compute is the Diff of snapshots
	// w−1 and w. FlameStat is the end-of-run exact-reconcile outcome.
	FlameWindows []*flame.Profile
	FlameStat    flame.ReconcileStat
}

// Run executes the windowed loop. The engine, collector, ledger, and
// tracer span the whole run; each window builds a fresh pipeline + batcher
// for the active plan and drains it completely before the next boundary.
func Run(cfg Config) (*Result, error) {
	if cfg.Model == nil || cfg.Cluster == nil {
		return nil, fmt.Errorf("replan: nil model or cluster")
	}
	if cfg.Windows < 1 || cfg.WindowDur <= 0 {
		return nil, fmt.Errorf("replan: need at least one window of positive duration")
	}
	mix := cfg.Workload
	if mix == nil {
		mix = func(int) workload.Dist { return workload.Mix(0.8) }
	}
	layers := cfg.Model.Base.NumLayers()

	eng := sim.NewEngine()
	eng.SetEventLimit(200_000_000)
	coll := scheduler.NewCollector(layers, cfg.SLO, 0)
	coll.Audit = audit.NewLedger()
	coll.Trace = cfg.Tracer
	coll.Attr = cfg.Attr
	coll.Flame = cfg.Flame
	gen := workload.NewGenerator(mix(0), cfg.Seed)
	gen.SetAudit(coll.Audit)
	gen.SetTrace(cfg.Tracer)

	est := forecast.NewEstimator(layers)
	est.Method = cfg.Method
	est.Stats = forecast.NewStats(layers)

	budget := slo.NewBudget(cfg.SLOTarget, cfg.BurnThreshold)
	res := &Result{Diffs: optimizer.NewDiffRing(diffHistory), Forecast: est.Stats, Budget: budget}
	// Arm the flight recorder with every source this run owns; it
	// snapshots them all into one bundle when a trigger fires.
	if rec := cfg.Recorder; rec != nil {
		rec.Spans = cfg.Tracer
		rec.Diffs = res.Diffs
		rec.Forecast = est.Stats
		rec.Ledger = coll.Audit
		rec.Budget = budget
		rec.Attr = cfg.Attr
	}
	// abort triggers the recorder on an engine failure before bubbling the
	// error: the bundle is the black box the failed run leaves behind.
	abort := func(w int, err error) error {
		wrapped := fmt.Errorf("replan: window %d: %w", w, err)
		cfg.Recorder.Trigger(slo.TriggerEngineAbort, wrapped.Error(), eng.Now())
		return wrapped
	}
	var plan optimizer.Plan
	var planProfile profile.Batch
	havePlan := false
	prevServed, prevViolations, prevDropped := 0, 0, 0

	// Shared planner state across every window: the planning problem the
	// optimizer sees for window w's forecast, one memoized segment-cost
	// table (the model/batch/cluster geometry never changes mid-run, so
	// every window's search reuses it), and the cross-window plan cache.
	planConfig := func(pred profile.Batch, tr *optimizer.SearchTrace) optimizer.Config {
		return optimizer.Config{
			Model: cfg.Model, Profile: pred, Batch: cfg.Batch, Cluster: cfg.Cluster,
			SLO: cfg.SLO, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac,
			MaxSplits: cfg.MaxSplits, MaxBoundaryCands: cfg.MaxBoundaryCands,
			Workers:    cfg.PlannerWorkers,
			Pipelining: true, ModelParallel: true,
			Trace: tr,
		}
	}
	costs := optimizer.NewCostTableFor(planConfig(profile.Batch{}, nil))
	var cache *PlanCache
	if cfg.PlanCacheSize >= 0 {
		cache = NewPlanCache(cfg.PlanCacheSize, cfg.PlanCacheTolerance)
	}

	for w := 0; w < cfg.Windows; w++ {
		start := eng.Now()
		pred := est.Predict()

		// Replan when the forecast has drifted from the active plan's
		// assumptions (or there is no plan yet).
		drift := 0.0
		reason := "initial plan"
		if havePlan {
			drift = pred.MaxAbsDiff(planProfile)
			reason = fmt.Sprintf("forecast drift %.3f > %.3f", drift, cfg.DriftThreshold)
		}
		replanned := false
		changed := false
		cacheHit := false
		if !havePlan || drift > cfg.DriftThreshold {
			tr := &optimizer.SearchTrace{}
			ocfg := planConfig(pred, tr)
			ocfg.Costs = costs
			if cached, ok := cache.Lookup(ocfg); ok {
				// The cache already solved a quantization-identical
				// problem; reuse its winner without searching. The reuse is
				// still a replan: it pushes a diff and a control-plane span,
				// plus a plan-cache span marking the skipped search.
				d := optimizer.DiffPlans(plan, cached)
				d.Window, d.At = w, start
				d.Reason = reason + " [plan cache]"
				res.Diffs.Push(d)
				res.Replans++
				replanned, cacheHit = true, true
				changed = d.Changed
				if d.Changed {
					res.PlanChanges++
				}
				cfg.Tracer.Replan(w, start)
				cfg.Tracer.PlanCacheHit(w, start)
				plan, planProfile, havePlan = cached, pred, true
			} else if next, err := optimizer.MaximizeGoodput(ocfg); err != nil {
				if !havePlan {
					return nil, fmt.Errorf("replan: window %d: %w", w, err)
				}
				// Keep serving the old plan; the failed search still counts
				// as a replan and its provenance is retained.
				res.Provenance = tr
				res.Replans++
			} else {
				d := optimizer.DiffPlans(plan, next)
				d.Window, d.At, d.Reason = w, start, reason
				res.Diffs.Push(d)
				res.Replans++
				replanned = true
				changed = d.Changed
				if d.Changed {
					res.PlanChanges++
				}
				cfg.Tracer.Replan(w, start)
				plan, planProfile, havePlan = next, pred, true
				res.Provenance = tr
				cache.Store(ocfg, next)
			}
		}

		// Serve the window's arrivals under the active plan with a fresh
		// pipeline + batcher; the collector/ledger/tracer persist.
		pipe, err := scheduler.NewPipeline(eng, cfg.Cluster, cfg.Model, plan, coll)
		if err != nil {
			return nil, abort(w, err)
		}
		b := serving.NewBatcher(eng, pipe, plan.Batch, plan.Latency, 0.2)
		gen.SwitchDist(mix(w))
		// Poisson (not bursty) arrivals: each window must yield a usable
		// profile observation, and DefaultBursty's ~18 s idle gaps would
		// starve short windows to a few dozen samples of pure noise.
		for _, off := range trace.Poisson(cfg.AvgRate, cfg.WindowDur, cfg.Seed+int64(w)*1000) {
			at := start + off
			eng.At(at, func() {
				b.Arrive(gen.Next(eng.Now(), cfg.SLO))
			})
		}
		if err := eng.RunAll(); err != nil {
			return nil, abort(w, err)
		}
		b.Flush()
		pipe.FlushAll()
		if err := eng.RunAll(); err != nil {
			return nil, abort(w, err)
		}

		// Observe: score the forecast, feed the estimator, account the
		// window.
		obs := coll.ObservedProfile()
		est.Observe(obs)
		served := coll.Good.Served - prevServed
		violations := coll.Violations - prevViolations
		dropped := coll.Dropped - prevDropped
		prevServed, prevViolations, prevDropped = coll.Good.Served, coll.Violations, coll.Dropped
		total := served + violations + dropped
		attain := 1.0
		if total > 0 {
			attain = float64(served) / float64(total)
		}
		// Fold the window into the error budget; a burn-rate breach is a
		// control-plane instant and a flight-recorder trigger.
		wb := budget.ObserveWindow(w, served, violations, dropped, cfg.WindowDur)
		if wb.Breached {
			cfg.Tracer.SLOBurn(w, eng.Now())
			cfg.Recorder.Trigger(slo.TriggerSLOBurn,
				fmt.Sprintf("window %d burn rate %.2f >= %.2f", w, wb.BurnRate, budget.BurnThreshold()),
				eng.Now())
		}
		res.Windows = append(res.Windows, WindowStat{
			Window: w, Start: start,
			Served: served, Violations: violations, Dropped: dropped,
			Goodput:       float64(served) / cfg.WindowDur,
			SLOAttainment: attain,
			ForecastMAE:   est.Stats.LastMAE(),
			Drift:         drift,
			Replanned:     replanned,
			PlanChanged:   changed,
			PlanCacheHit:  cacheHit,
			Budget:        wb,
		})
		if cfg.Flame != nil {
			// Snapshot the cumulative profile at the window boundary; the
			// fold is pure, so this is cheap and does not disturb the
			// accumulator.
			res.FlameWindows = append(res.FlameWindows, cfg.Flame.Profile())
		}
		coll.ResetWindow()
	}

	coll.Good.CloseAt(eng.Now())
	cfg.Flame.CloseAt(eng.Now())
	rep := coll.AuditReport()
	cfg.Tracer.Reconcile(rep)
	cfg.Attr.Reconcile(rep)
	res.FlameStat = cfg.Flame.Reconcile(rep, coll.Util)
	if !rep.OK() {
		cfg.Recorder.Trigger(slo.TriggerAuditViolation, rep.Violations[0], eng.Now())
	}
	res.Report = rep
	res.FinalPlan = plan
	res.MeanForecastMAE = est.Stats.MAE()
	if cache != nil {
		res.PlanCacheHits, res.PlanCacheMisses = cache.Hits, cache.Misses
	}
	return res, nil
}

// DriftingDemo is the canonical drifting-mix configuration the bench and
// the verify gate run: BERT-Base/DeeBERT on 8 V100s with the workload's
// easy fraction drifting 0.9 → 0.3 across the run, which forces the
// planner to move its cut as exit mass migrates deeper.
func DriftingDemo(windows int, method forecast.Method, tr *telemetry.Tracer) Config {
	return Config{
		Model:          ee.NewDeeBERT(model.BERTBase(), 0.4),
		Cluster:        cluster.Homogeneous(gpu.V100, 8),
		Batch:          8,
		SLO:            0.100,
		Windows:        windows,
		WindowDur:      2.0,
		AvgRate:        2000,
		Seed:           424242,
		DriftThreshold: 0.05,
		Workload: func(w int) workload.Dist {
			frac := 0.9
			if windows > 1 {
				frac = 0.9 - 0.6*float64(w)/float64(windows-1)
			}
			return workload.Mix(frac)
		},
		Method: method,
		Tracer: tr,
	}
}
