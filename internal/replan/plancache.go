package replan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"e3/internal/gpu"
	"e3/internal/optimizer"
)

// Plan-cache defaults: a handful of distinct operating points covers the
// profiles a drifting workload revisits, and a 2% survival tolerance
// matches the planner's own MinExitFrac default — forecasts closer than
// that produce indistinguishable plans in practice.
const (
	DefaultPlanCacheSize      = 16
	DefaultPlanCacheTolerance = 0.02
)

// cacheEntry is one memoized planning outcome: the non-profile problem
// fingerprint, the exact forecast the plan was computed for, and the plan.
type cacheEntry struct {
	confKey string
	profile []float64
	plan    optimizer.Plan
}

// PlanCache memoizes winning plans across scheduling windows. A lookup
// hits when an entry was solved for the identical planning problem — same
// model identity and active ramps, batch, SLO, knobs, and cluster
// inventory — and a predicted exit profile within a per-layer tolerance.
// Workloads that oscillate between operating points (diurnal mixes,
// alternating tenants) re-reach such profiles, and the cache answers those
// replans without a search.
//
// Matching is by proximity rather than by quantized fingerprint because
// window-to-window forecasts wobble a little even when the workload is
// stable; bin-edge flapping would defeat an exact-key cache precisely in
// the steady states it exists for. Lookup scans insertion order and takes
// the first match, so runs stay deterministic.
//
// The cache is FIFO-bounded and deliberately lock-free: replan's control
// loop runs on the single-threaded sim clock, so there is nothing to
// synchronize. A nil *PlanCache is valid and never hits or stores, so
// callers can thread an optional cache without guards.
type PlanCache struct {
	tol     float64
	cap     int
	entries []cacheEntry // insertion order, oldest first (FIFO eviction)

	// Hits and Misses count Lookup outcomes over the cache's lifetime.
	Hits, Misses int
}

// NewPlanCache builds a cache holding up to capacity plans with the given
// per-layer profile tolerance. Non-positive arguments take the defaults.
func NewPlanCache(capacity int, tolerance float64) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	if tolerance <= 0 {
		tolerance = DefaultPlanCacheTolerance
	}
	return &PlanCache{tol: tolerance, cap: capacity}
}

// configKey fingerprints everything the planner sees except the profile.
func configKey(cfg optimizer.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|L%d|b%d|slo%.9g|slack%.9g|minexit%.9g|splits%d|cands%d|p%t|mp%t|w%t",
		cfg.Model.Name, cfg.Model.Base.NumLayers(), cfg.Batch,
		cfg.SLO, cfg.SlackFrac, cfg.MinExitFrac,
		cfg.MaxSplits, cfg.MaxBoundaryCands,
		cfg.Pipelining, cfg.ModelParallel, cfg.DisableInteriorRamps)
	b.WriteString("|ramps")
	for _, r := range cfg.Model.ActiveRamps() {
		fmt.Fprintf(&b, ",%d", r)
	}
	b.WriteString("|cluster")
	counts := cfg.Cluster.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, ",%s=%d", k, counts[gpu.Kind(k)])
	}
	return b.String()
}

// profileOf extracts the per-layer survival vector the cache compares.
func profileOf(cfg optimizer.Config) []float64 {
	L := cfg.Model.Base.NumLayers()
	s := make([]float64, L)
	for k := 1; k <= L; k++ {
		s[k-1] = cfg.Profile.At(k)
	}
	return s
}

// withinTol reports whether two survival vectors differ by at most tol at
// every layer.
func withinTol(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// Lookup finds a cached plan for cfg's planning problem. Nil-safe: a nil
// cache always misses without counting.
func (c *PlanCache) Lookup(cfg optimizer.Config) (optimizer.Plan, bool) {
	if c == nil {
		return optimizer.Plan{}, false
	}
	ck := configKey(cfg)
	prof := profileOf(cfg)
	for i := range c.entries {
		if c.entries[i].confKey == ck && withinTol(c.entries[i].profile, prof, c.tol) {
			c.Hits++
			return c.entries[i].plan, true
		}
	}
	c.Misses++
	return optimizer.Plan{}, false
}

// Store memoizes a freshly searched plan, evicting the oldest entry at
// capacity. Nil-safe.
func (c *PlanCache) Store(cfg optimizer.Config, p optimizer.Plan) {
	if c == nil {
		return
	}
	for len(c.entries) >= c.cap {
		c.entries = c.entries[1:]
	}
	c.entries = append(c.entries, cacheEntry{
		confKey: configKey(cfg), profile: profileOf(cfg), plan: p,
	})
}

// Len reports the number of cached plans.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}
