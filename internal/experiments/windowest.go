package experiments

import (
	"e3/internal/ee"
	"e3/internal/forecast"
	"e3/internal/profile"
	"e3/internal/workload"
)

// windowEstimator drives the forecast.Estimator with synthetic scheduling
// windows, for the Figure 21 experiment and the forecaster ablation.
type windowEstimator struct {
	m   *ee.EEModel
	est *forecast.Estimator
}

func newWindowEstimator(m *ee.EEModel) *windowEstimator {
	return &windowEstimator{m: m, est: forecast.NewEstimator(m.Base.NumLayers())}
}

// observeWindow simulates one window's traffic at the given easy fraction
// and feeds the measured profile to the estimator, returning it.
func (w *windowEstimator) observeWindow(easyFrac float64, seed int64) profile.Batch {
	obs := profile.FromDist(w.m, workload.Mix(easyFrac), 12000, seed)
	w.est.Observe(obs)
	return obs
}

// predict forecasts the next window's profile.
func (w *windowEstimator) predict() profile.Batch { return w.est.Predict() }
