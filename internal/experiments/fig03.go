package experiments

import (
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/profile"
	"e3/internal/workload"
)

func init() { register("fig03", Fig03) }

// Fig03 reproduces Figure 3: samples in a DeeBERT batch exit as they pass
// the ramps, shrinking the batch and collapsing GPU utilization for the
// remainder of the model.
func Fig03() Table {
	const inputBatch = 8
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	spec := gpu.Get(gpu.V100)
	t := Table{
		ID:      "fig03",
		Title:   "DeeBERT batch decay and GPU utilization per ramp (input batch 8)",
		Columns: []string{"ramp", "QNLI batch", "QNLI util (%)", "SST-2 batch", "SST-2 util (%)"},
		Notes:   "paper: ~half the samples exit by ramp 6, cutting utilization by >25% for the rest of the model",
	}
	qnli := profile.FromDist(m, workload.QNLI(), 20000, 3)
	sst2 := profile.FromDist(m, workload.SST2(), 20000, 4)
	fullUtil := spec.Utilization(inputBatch)
	for ramp := 1; ramp <= 12; ramp++ {
		qb := qnli.BatchAt(ramp, inputBatch)
		sb := sst2.BatchAt(ramp, inputBatch)
		qu := 100 * spec.UtilizationFrac(qb) / fullUtil
		su := 100 * spec.UtilizationFrac(sb) / fullUtil
		t.Rows = append(t.Rows, []string{itoa(ramp), f2(qb), f1(qu), f2(sb), f1(su)})
	}
	return t
}
