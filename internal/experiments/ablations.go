package experiments

import (
	"math"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/forecast"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
)

func init() {
	register("ablation-forecaster", AblationForecaster)
	register("ablation-pipelining", AblationPipelining)
	register("ablation-splits", AblationSplits)
}

// AblationForecaster compares ARIMA against last-value persistence on a
// drifting workload: the DESIGN.md "ARIMA vs naive forecasting" ablation.
func AblationForecaster() Table {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	const cut = 7

	run := func(method forecast.Method) (trendMAE, shiftMAE float64) {
		w := newWindowEstimator(m)
		w.est.Method = method
		// Steady drift in easy fraction (hardness rising through the day),
		// then a level shift.
		easyAt := func(i int) float64 {
			if i < 22 {
				return 0.85 - 0.025*float64(i)
			}
			return 0.85
		}
		for i := 0; i < 8; i++ {
			w.observeWindow(easyAt(i), int64(300+i))
		}
		nT, nS := 0, 0
		for i := 8; i < 26; i++ {
			pred := w.predict()
			actual := w.observeWindow(easyAt(i), int64(300+i))
			err := math.Abs(pred.At(cut) - actual.At(cut))
			if i < 22 {
				trendMAE += err
				nT++
			} else {
				shiftMAE += err
				nS++
			}
		}
		return trendMAE / float64(nT), shiftMAE / float64(nS)
	}

	aT, aS := run(forecast.MethodARIMA)
	pT, pS := run(forecast.MethodPersistence)
	return Table{
		ID:      "ablation-forecaster",
		Title:   "Forecaster ablation: mean abs survival error at the mid cut",
		Columns: []string{"method", "trend MAE", "post-shift MAE"},
		Rows: [][]string{
			{"ARIMA(1,1,0)", f3(aT), f3(aS)},
			{"persistence", f3(pT), f3(pS)},
		},
		Notes: "ARIMA tracks the between-window trend; both need ~1 window to absorb a level shift",
	}
}

// AblationPipelining quantifies §3.2.2: composing stages by max() versus
// sum() in the planner.
func AblationPipelining() Table {
	dee := ee.NewDeeBERT(model.BERTBase(), 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }

	t := Table{
		ID:      "ablation-pipelining",
		Title:   "Pipelining ablation: planned goodput, max() vs sum() composition",
		Columns: []string{"batch", "pipelined (samples/s)", "non-pipelined (samples/s)", "gain"},
	}
	for _, b := range []int{2, 4, 8} {
		on, err1 := planE3(mk(), dee, dist, b, defaultSLO, nil)
		off, err2 := planE3(mk(), dee, dist, b, defaultSLO, func(cfg *optimizer.Config) {
			cfg.Pipelining = false
		})
		gOn, gOff := 0.0, 0.0
		if err1 == nil {
			gOn = on.Goodput
		}
		if err2 == nil {
			gOff = off.Goodput
		}
		r := 0.0
		if gOff > 0 {
			r = gOn / gOff
		}
		t.Rows = append(t.Rows, []string{itoa(b), f0(gOn), f0(gOff), f2(r)})
	}
	return t
}

// AblationSplits sweeps the optimizer's split budget: the marginal value
// of allowing more cut points.
func AblationSplits() Table {
	dee := ee.NewDeeBERT(model.BERTBase(), 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }

	t := Table{
		ID:      "ablation-splits",
		Title:   "Split-budget ablation: planned goodput vs MaxSplits (batch 8)",
		Columns: []string{"max splits", "planned goodput (samples/s)", "splits used"},
	}
	for _, ms := range []int{1, 2, 3, 4, 5} {
		plan, err := planE3(mk(), dee, dist, 8, defaultSLO, func(cfg *optimizer.Config) {
			cfg.MaxSplits = ms
		})
		if err != nil {
			t.Rows = append(t.Rows, []string{itoa(ms), "-", "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{itoa(ms), f0(plan.Goodput), itoa(len(plan.Splits))})
	}
	return t
}
