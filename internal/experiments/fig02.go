package experiments

import (
	"math/rand"

	"e3/internal/ee"
	"e3/internal/exec"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/workload"
)

func init() { register("fig02", Fig02) }

// baseAccuracy holds Figure 2's published base accuracies (stock models
// and their distilled variants); early-exit penalties come from the ee
// package's accuracy model.
var baseAccuracy = map[string]map[string]float64{
	"SST-2": {"BERT": 92.7, "DistilBERT": 91.3},
	"QNLI":  {"BERT": 91.0, "DistilBERT": 89.2},
}

// eeAccuracy derates a base accuracy by the early-exit fraction.
func eeAccuracy(base float64, m *ee.EEModel, dist workload.Dist, threshold float64) float64 {
	acc := ee.AccuracyModel{BaseAccuracy: base, ExitRisk: ee.DefaultExitRisk}
	return acc.Estimate(m, dist, threshold, 20000, 42)
}

// meanLatencyBatch1 measures the eager batch-1 latency of a model.
func meanLatencyBatch1(m *ee.EEModel, dist workload.Dist, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	spec := gpu.Get(gpu.V100)
	total := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		batch := []workload.Sample{{Difficulty: dist.Sample(rng)}}
		total += exec.RunSegment(m, 1, m.Base.NumLayers(), batch, spec, 1).Duration
	}
	return total / n
}

// Fig02 reproduces Figure 2: early exits bring large latency savings with
// mild accuracy loss, on both stock BERT and distilled DistilBERT
// (batch 1; latency normalized to vanilla BERT).
func Fig02() Table {
	const threshold = 0.4
	bert := ee.NewVanilla(model.BERTBase())
	bertEE := ee.NewDeeBERT(model.BERTBase(), threshold)
	distil := ee.NewVanilla(model.DistilBERT())
	distilEE := ee.NewDistilBERTEE(model.DistilBERT(), threshold)

	t := Table{
		ID:      "fig02",
		Title:   "Early exits: accuracy vs normalized batch-1 latency (entropy 0.4)",
		Columns: []string{"dataset", "model", "accuracy (%)", "avg latency (% of BERT)"},
		Notes:   "paper: BERT-EE saves ~42.7% latency at ~1.7% accuracy cost; DistilBERT-EE saves ~10.5% vs DistilBERT",
	}
	for _, ds := range []struct {
		name string
		dist workload.Dist
	}{{"SST-2", workload.SST2()}, {"QNLI", workload.QNLI()}} {
		ref := meanLatencyBatch1(bert, ds.dist, 7)
		rows := []struct {
			label string
			m     *ee.EEModel
			acc   float64
		}{
			{"BERT", bert, baseAccuracy[ds.name]["BERT"]},
			{"BERT-EE", bertEE, eeAccuracy(baseAccuracy[ds.name]["BERT"], bertEE, ds.dist, threshold)},
			{"DistilBERT", distil, baseAccuracy[ds.name]["DistilBERT"]},
			{"DistilBERT-EE", distilEE, eeAccuracy(baseAccuracy[ds.name]["DistilBERT"], distilEE, ds.dist, threshold)},
		}
		for _, r := range rows {
			lat := meanLatencyBatch1(r.m, ds.dist, 7)
			t.Rows = append(t.Rows, []string{ds.name, r.label, f1(r.acc), f1(100 * lat / ref)})
		}
	}
	return t
}
