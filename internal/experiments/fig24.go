package experiments

import (
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
)

func init() {
	register("fig24", Fig24)
	register("fig25", Fig25)
	register("fig26", Fig26)
}

// Fig24 reproduces Figure 24: SLOs determine the feasible batch size —
// strict SLOs mean tiny batches (where EE shines), loose ones enable
// large batches (where E3's batch restoration dominates).
func Fig24() Table {
	base := model.BERTBase()
	van := ee.NewVanilla(base)
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }

	t := Table{
		ID:      "fig24",
		Title:   "Impact of SLO: max batch per SLO, goodput per system (16xV100)",
		Columns: []string{"SLO (ms)", "batch", "BERT-BASE", "DeeBERT", "E3"},
		Notes:   "paper: E3 within 1% of DeeBERT at batch 1, up to 63%/34% over DeeBERT/BERT as batching grows",
	}
	cases := []struct {
		slo   float64
		batch int
	}{
		{0.025, 1}, {0.050, 2}, {0.075, 4}, {0.100, 8},
		{0.200, 16}, {0.500, 32}, {1.000, 64},
	}
	for _, c := range cases {
		gVan := measureBaseline(mk, van, dist, c.batch, c.slo, 241)
		gDee := measureBaseline(mk, dee, dist, c.batch, c.slo, 241)
		gE3 := e3Goodput(mk, dee, dist, c.batch, c.slo, 241, nil)
		t.Rows = append(t.Rows, []string{f0(c.slo * 1e3), itoa(c.batch), f0(gVan), f0(gDee), f0(gE3)})
	}
	return t
}

// Fig25 reproduces Figure 25: granting E3 the §3.4 exit-wrapper — it
// disables exits inside a split (except the last) — avoids exit-head
// kernels and boosts goodput.
func Fig25() Table {
	base := model.BERTBase()
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }

	t := Table{
		ID:      "fig25",
		Title:   "Exit-wrapper (ramp disabling) goodput improvement",
		Columns: []string{"batch", "E3 (samples/s)", "E3+wrapper (samples/s)", "improvement (%)"},
		Notes:   "paper: 7-16% improvement, growing with batch size",
	}
	for _, b := range []int{1, 2, 4, 8} {
		gBase := e3Goodput(mk, dee, dist, b, defaultSLO, 251, nil)
		gWrap := e3Goodput(mk, dee, dist, b, defaultSLO, 251, func(cfg *optimizer.Config) {
			cfg.DisableInteriorRamps = true
		})
		imp := 0.0
		if gBase > 0 {
			imp = 100 * (gWrap/gBase - 1)
		}
		t.Rows = append(t.Rows, []string{itoa(b), f0(gBase), f0(gWrap), f1(imp)})
	}
	return t
}

// Fig26 reproduces Figure 26: the model-parallelism ablation. With MP off,
// split phases run globally with barriers; utilization collapses as
// survivors shrink.
func Fig26() Table {
	base := model.BERTBase()
	van := ee.NewVanilla(base)
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }

	t := Table{
		ID:      "fig26",
		Title:   "Model parallelism ablation (16xV100, GLUE 80E/20H)",
		Columns: []string{"batch", "BERT-BASE", "DeeBERT", "E3 MP-off", "E3 MP-on", "on/off"},
		Notes:   "paper: parallel split execution significantly outperforms serialized execution",
	}
	for _, b := range []int{2, 4, 8} {
		gVan := measureBaseline(mk, van, dist, b, defaultSLO, 261)
		gDee := measureBaseline(mk, dee, dist, b, defaultSLO, 261)
		gOn := e3Goodput(mk, dee, dist, b, defaultSLO, 261, nil)
		gOff := 0.0
		if planOn, err := planE3(mk(), dee, dist, b, defaultSLO, nil); err == nil {
			gOff = measureE3Serial(mk, dee, planOn, dist, b, defaultSLO, 261)
		}
		r := 0.0
		if gOff > 0 {
			r = gOn / gOff
		}
		t.Rows = append(t.Rows, []string{itoa(b), f0(gVan), f0(gDee), f0(gOff), f0(gOn), f2(r)})
	}
	return t
}
