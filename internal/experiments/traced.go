package experiments

import (
	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/slo"
	"e3/internal/telemetry"
	"e3/internal/trace"
)

// The traced demo reuses the audit experiment's setting (BERT-Base
// DeeBERT, V100×8, bursty open loop) so the exported timeline shows the
// same run the conservation audit verifies.
const (
	tracedBatch   = 8
	tracedAvgRate = 2000.0
	tracedHorizon = 10.0
	tracedSeed    = 424242
)

// RunObservedDemo plans the demo setting and replays it through the E3
// pipeline with the given tracer and per-request attribution attached end
// to end (either may be nil; both nil measures the unobserved baseline).
// The returned report has the tracer's counters and the attribution's
// breakdown checks reconciled against the ledger; horizon is virtual
// seconds of bursty arrivals.
func RunObservedDemo(tr *telemetry.Tracer, attr *slo.Attribution, horizon float64) (*audit.Report, *scheduler.Collector, optimizer.Plan, error) {
	base := model.BERTBase()
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 8) }

	plan, err := planE3(mk(), dee, dist, tracedBatch, defaultSLO, nil)
	if err != nil {
		return nil, nil, optimizer.Plan{}, err
	}
	arr := trace.Bursty(trace.DefaultBursty(tracedAvgRate), horizon, tracedSeed)
	rep, coll, err := serving.ObservedOpenLoop(func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
		return scheduler.NewPipeline(eng, mk(), dee, plan, coll)
	}, base.NumLayers(), arr, dist, plan.Latency, defaultSLO, tracedBatch, tracedSeed, tr, attr)
	if err != nil {
		return nil, nil, optimizer.Plan{}, err
	}
	return rep, coll, plan, nil
}

// RunTracedDemo is RunObservedDemo without per-request attribution.
func RunTracedDemo(tr *telemetry.Tracer, horizon float64) (*audit.Report, *scheduler.Collector, optimizer.Plan, error) {
	return RunObservedDemo(tr, nil, horizon)
}
