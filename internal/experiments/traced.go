package experiments

import (
	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/flame"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/slo"
	"e3/internal/telemetry"
	"e3/internal/trace"
)

// The traced demo reuses the audit experiment's setting (BERT-Base
// DeeBERT, V100×8, bursty open loop) so the exported timeline shows the
// same run the conservation audit verifies.
const (
	tracedBatch   = 8
	tracedAvgRate = 2000.0
	tracedHorizon = 10.0
	tracedSeed    = 424242
)

// DemoSeed and DemoAvgRate export the demo setting's workload parameters
// for report envelopes and flame artifacts that describe demo runs.
const (
	DemoSeed    int64   = tracedSeed
	DemoAvgRate float64 = tracedAvgRate
	DemoBatch   int     = tracedBatch
)

// RunProfiledDemo plans the demo setting and replays it through the E3
// pipeline with the given tracer, per-request attribution, and compute
// profiler attached end to end (any may be nil; all nil measures the
// unobserved baseline). The returned report has the tracer's counters,
// the attribution's breakdown checks, and the flame fold's exact
// busy/idle accounting reconciled against the ledger; horizon is virtual
// seconds of bursty arrivals.
func RunProfiledDemo(tr *telemetry.Tracer, attr *slo.Attribution, fl *flame.Profiler, horizon float64) (*audit.Report, *scheduler.Collector, optimizer.Plan, error) {
	base := model.BERTBase()
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 8) }

	plan, err := planE3(mk(), dee, dist, tracedBatch, defaultSLO, nil)
	if err != nil {
		return nil, nil, optimizer.Plan{}, err
	}
	arr := trace.Bursty(trace.DefaultBursty(tracedAvgRate), horizon, tracedSeed)
	rep, coll, err := serving.ProfiledOpenLoop(func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
		return scheduler.NewPipeline(eng, mk(), dee, plan, coll)
	}, base.NumLayers(), arr, dist, plan.Latency, defaultSLO, tracedBatch, tracedSeed, tr, attr, fl)
	if err != nil {
		return nil, nil, optimizer.Plan{}, err
	}
	return rep, coll, plan, nil
}

// RunProfiledSerialDemo replays the same demo workload and plan through
// the phase-synchronized Serial runner (§5.8.7) with the compute profiler
// attached — the other half of the serial-vs-pipeline flame diff: same
// seed, same plan, different runner, so every delta in the profile is the
// runner's doing.
func RunProfiledSerialDemo(fl *flame.Profiler, horizon float64) (*audit.Report, *scheduler.Collector, optimizer.Plan, error) {
	base := model.BERTBase()
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 8) }

	plan, err := planE3(mk(), dee, dist, tracedBatch, defaultSLO, nil)
	if err != nil {
		return nil, nil, optimizer.Plan{}, err
	}
	arr := trace.Bursty(trace.DefaultBursty(tracedAvgRate), horizon, tracedSeed)
	rep, coll, err := serving.ProfiledOpenLoop(func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
		return scheduler.NewSerial(eng, mk(), dee, plan, coll), nil
	}, base.NumLayers(), arr, dist, plan.Latency, defaultSLO, tracedBatch, tracedSeed, nil, nil, fl)
	if err != nil {
		return nil, nil, optimizer.Plan{}, err
	}
	return rep, coll, plan, nil
}

// RunObservedDemo is RunProfiledDemo without compute profiling.
func RunObservedDemo(tr *telemetry.Tracer, attr *slo.Attribution, horizon float64) (*audit.Report, *scheduler.Collector, optimizer.Plan, error) {
	return RunProfiledDemo(tr, attr, nil, horizon)
}

// RunTracedDemo is RunObservedDemo without per-request attribution.
func RunTracedDemo(tr *telemetry.Tracer, horizon float64) (*audit.Report, *scheduler.Collector, optimizer.Plan, error) {
	return RunObservedDemo(tr, nil, horizon)
}
