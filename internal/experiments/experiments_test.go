package experiments

// Shape tests: each asserts the qualitative claims of a paper figure —
// who wins, roughly by how much, where crossovers fall — on the simulated
// substrate. Absolute values are not asserted (the substrate is not the
// authors' testbed).

import (
	"strconv"
	"testing"
)

func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d); table %dx%d", tab.ID, row, col, len(tab.Rows), len(tab.Columns))
	}
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig02", "fig03", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
		"ablation-forecaster", "ablation-pipelining", "ablation-splits",
	}
	ids := IDs()
	got := make(map[string]bool, len(ids))
	for _, id := range ids {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, err := Run("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFig02Shape(t *testing.T) {
	tab := Fig02()
	// Rows per dataset: BERT, BERT-EE, DistilBERT, DistilBERT-EE.
	for ds := 0; ds < 2; ds++ {
		base := ds * 4
		bertLat := cell(t, tab, base, 3)
		eeLat := cell(t, tab, base+1, 3)
		if eeLat > bertLat*0.75 {
			t.Errorf("row %d: BERT-EE latency %.1f%% of BERT, want ≥25%% saving", base+1, eeLat)
		}
		bertAcc := cell(t, tab, base, 2)
		eeAcc := cell(t, tab, base+1, 2)
		if drop := bertAcc - eeAcc; drop < 0.5 || drop > 3 {
			t.Errorf("row %d: EE accuracy drop %.2f, want mild (0.5-3)", base+1, drop)
		}
		distLat := cell(t, tab, base+2, 3)
		distEELat := cell(t, tab, base+3, 3)
		if distEELat >= distLat {
			t.Errorf("row %d: DistilBERT-EE latency %.1f not below DistilBERT %.1f", base+3, distEELat, distLat)
		}
	}
}

func TestFig03Shape(t *testing.T) {
	tab := Fig03()
	// Batch decays monotonically; by ramp 6 roughly half the inputs left;
	// utilization falls by >25% over the back half.
	prev := 9.0
	for r := 0; r < 12; r++ {
		b := cell(t, tab, r, 1)
		if b > prev+1e-9 {
			t.Fatalf("ramp %d: batch grew (%v after %v)", r+1, b, prev)
		}
		prev = b
	}
	mid := cell(t, tab, 5, 1) // ramp 6, QNLI
	if mid < 3 || mid > 6.5 {
		t.Errorf("QNLI batch at ramp 6 = %v, want ~half of 8", mid)
	}
	if u := cell(t, tab, 8, 2); u > 75 {
		t.Errorf("QNLI util at ramp 9 = %v%%, want collapsed below 75%%", u)
	}
}

func TestFig07Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := Fig07()
	// Batch 1 (row 0): DeeBERT beats BERT; E3 at or below DeeBERT.
	if dee, bert := cell(t, tab, 0, 2), cell(t, tab, 0, 1); dee <= bert {
		t.Errorf("batch 1: DeeBERT %v not above BERT %v", dee, bert)
	}
	if e3, dee := cell(t, tab, 0, 3), cell(t, tab, 0, 2); e3 > dee*1.05 {
		t.Errorf("batch 1: E3 %v should not beat DeeBERT %v (model-parallel penalty)", e3, dee)
	}
	// Batch 8 (row 3): BERT overtakes DeeBERT; E3 leads both by a healthy
	// factor (paper: 1.16x/1.44x).
	bert8, dee8, e38 := cell(t, tab, 3, 1), cell(t, tab, 3, 2), cell(t, tab, 3, 3)
	if dee8 >= bert8 {
		t.Errorf("batch 8: DeeBERT %v not below BERT %v (utilization collapse)", dee8, bert8)
	}
	if r := e38 / bert8; r < 1.1 || r > 2.3 {
		t.Errorf("batch 8: E3/BERT = %v, want within [1.1, 2.3]", r)
	}
	if r := e38 / dee8; r < 1.2 || r > 2.4 {
		t.Errorf("batch 8: E3/DeeBERT = %v, want within [1.2, 2.4]", r)
	}
	// E3 goodput grows with batch.
	for row := 1; row < 4; row++ {
		if cell(t, tab, row, 3) <= cell(t, tab, row-1, 3) {
			t.Errorf("E3 goodput not increasing at row %d", row)
		}
	}
}

func TestFig09Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := Fig09()
	// Compression complements E3: E3 above DistilBERT-EE from batch 2 on;
	// paper's headline 1.67x at larger batches sits in our band.
	last := len(tab.Rows) - 1
	if r := cell(t, tab, last, 5); r < 1.2 || r > 2.6 {
		t.Errorf("E3/DistilBERT-EE at largest batch = %v, want [1.2, 2.6]", r)
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := Fig12()
	// The EE variant loses to vanilla at every batch (LM-head ramp cost);
	// E3 beats vanilla modestly.
	for row := range tab.Rows {
		van, eeV, e3 := cell(t, tab, row, 1), cell(t, tab, row, 2), cell(t, tab, row, 3)
		if eeV >= van {
			t.Errorf("row %d: Llama-EE %v not below vanilla %v", row, eeV, van)
		}
		if e3 < van {
			t.Errorf("row %d: E3 %v below vanilla %v", row, e3, van)
		}
		if e3 > van*1.6 {
			t.Errorf("row %d: E3 %v implausibly above vanilla %v (paper: ≤1.48x)", row, e3, van)
		}
	}
}

func TestFig20OptimizerLightweight(t *testing.T) {
	tab := Fig20()
	for row := range tab.Rows {
		for col := 1; col <= 2; col++ {
			if msV := cell(t, tab, row, col); msV > 5000 {
				t.Errorf("optimizer took %vms — not lightweight", msV)
			}
		}
	}
}

func TestFig21PredictionsTrackReality(t *testing.T) {
	tab := Fig21()
	// Mean absolute batch error at cut 1 over the ten windows must be
	// small relative to the input batch of 8.
	sum := 0.0
	for row := range tab.Rows {
		d := cell(t, tab, row, 1) - cell(t, tab, row, 2)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	if mae := sum / float64(len(tab.Rows)); mae > 0.8 {
		t.Errorf("cut-1 batch MAE = %v of batch 8, want < 0.8", mae)
	}
}

func TestFig22ErrorToleranceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := Fig22()
	perfect := cell(t, tab, 0, 1)
	at20 := cell(t, tab, 2, 1)
	worst := cell(t, tab, len(tab.Rows)-1, 1)
	if loss := 1 - at20/perfect; loss > 0.15 {
		t.Errorf("20%% error loses %.0f%% goodput, want mild (<15%%)", loss*100)
	}
	if worst <= 0 {
		t.Error("100% error must still serve (correctness unaffected)")
	}
	if worst > perfect {
		t.Error("more error should not help")
	}
}

func TestFig25WrapperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := Fig25()
	for row := range tab.Rows {
		imp := cell(t, tab, row, 3)
		if imp < 2 || imp > 25 {
			t.Errorf("row %d: wrapper improvement %v%%, want within [2, 25]", row, imp)
		}
	}
}

func TestFig26ModelParallelShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := Fig26()
	for row := range tab.Rows {
		if r := cell(t, tab, row, 5); r < 1.3 {
			t.Errorf("row %d: MP on/off ratio %v, want ≥ 1.3", row, r)
		}
	}
}

func TestAblationForecasterShape(t *testing.T) {
	tab := AblationForecaster()
	arima := cell(t, tab, 0, 1)
	persist := cell(t, tab, 1, 1)
	if arima >= persist {
		t.Errorf("ARIMA trend MAE %v not below persistence %v", arima, persist)
	}
}

func TestAblationSplitsMonotone(t *testing.T) {
	tab := AblationSplits()
	prev := 0.0
	for row := range tab.Rows {
		g := cell(t, tab, row, 1)
		if g < prev-1e-9 {
			t.Errorf("planned goodput decreased with split budget at row %d", row)
		}
		prev = g
	}
	// Splitting at all must pay: ≥2 splits beats 1.
	if cell(t, tab, 1, 1) <= cell(t, tab, 0, 1) {
		t.Error("2 splits not better than 1")
	}
}

func TestTablePrint(t *testing.T) {
	tab := Table{ID: "x", Title: "t", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: "n"}
	var sb stringBuilder
	tab.Print(&sb)
	if sb.s == "" {
		t.Error("Print produced nothing")
	}
}

type stringBuilder struct{ s string }

func (b *stringBuilder) Write(p []byte) (int, error) {
	b.s += string(p)
	return len(p), nil
}
