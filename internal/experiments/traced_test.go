package experiments

import (
	"bytes"
	"testing"

	"e3/internal/telemetry"
)

// TestTracedDemoChromeExport is the PR's acceptance check: run the traced
// demo, export the span stream as Chrome trace-event JSON, parse it back,
// and validate the structure — monotone per-track virtual timestamps, one
// execute track per GPU of the demo cluster, and span/event counts that
// reconcile with the conservation ledger.
func TestTracedDemoChromeExport(t *testing.T) {
	tr := telemetry.New()
	rep, coll, _, err := RunTracedDemo(tr, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("traced demo failed its audit: %v", err)
	}
	if rep.Completed == 0 {
		t.Fatal("traced demo completed nothing")
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChrome(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace does not parse back: %v", err)
	}
	if len(spans) != len(tr.Spans()) {
		t.Fatalf("round-trip kept %d of %d spans", len(spans), len(tr.Spans()))
	}

	// Monotone virtual timestamps per track, non-negative durations.
	lastStart := make(map[string]float64)
	execTracks := make(map[string]bool)
	execBatches := 0
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span on %s runs backwards: [%v, %v]", s.Track, s.Start, s.End)
		}
		if prev, seen := lastStart[s.Track]; seen && s.Start < prev {
			t.Fatalf("track %s not monotone: start %v after %v", s.Track, s.Start, prev)
		}
		lastStart[s.Track] = s.Start
		if s.Kind == telemetry.KindExecute {
			execTracks[s.Track] = true
			execBatches++
			if s.Batch < 1 {
				t.Fatalf("execute span with batch %d", s.Batch)
			}
			if s.GPU == "" {
				t.Fatalf("execute span on %s missing GPU kind", s.Track)
			}
		}
	}
	// One occupancy track per GPU: the demo cluster is V100×8 and the
	// pipeline must have spread work across all of it at 2000 rps.
	if len(execTracks) != 8 {
		t.Fatalf("execute spans cover %d GPU tracks, want 8: %v", len(execTracks), execTracks)
	}
	if execBatches == 0 {
		t.Fatal("no execute spans recorded")
	}

	// The tracer's lifecycle counters reconcile with the ledger (Reconcile
	// already folded mismatches into rep; double-check directly too).
	arrived, completed, dropped := tr.Counts()
	if int(arrived) != rep.Samples || int(completed) != rep.Completed || int(dropped) != rep.Dropped {
		t.Fatalf("tracer counts (%d, %d, %d) disagree with ledger (%d, %d, %d)",
			arrived, completed, dropped, rep.Samples, rep.Completed, rep.Dropped)
	}

	// The summarizer agrees with the collector's utilization tracker about
	// which devices worked.
	sum := telemetry.Summarize(tr.Spans())
	if sum.GPUTracks != 8 {
		t.Fatalf("summary sees %d GPU tracks, want 8", sum.GPUTracks)
	}
	if len(sum.Splits) == 0 {
		t.Fatal("summary has no splits")
	}
	for _, sp := range sum.Splits {
		if sp.Util < 0 || sp.Util > 1 {
			t.Fatalf("split %d utilization %v out of [0,1]", sp.Stage, sp.Util)
		}
	}
	_ = coll
}

// TestTracedDemoRingReconciles checks that ring eviction does not break
// count reconciliation: counters are O(1) state, not derived from the
// retained spans.
func TestTracedDemoRingReconciles(t *testing.T) {
	tr := telemetry.NewRing(64)
	rep, _, _, err := RunTracedDemo(tr, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("ring-traced demo failed its audit: %v", err)
	}
	if tr.Evicted() == 0 {
		t.Fatal("demo did not wrap the 64-span ring; test is vacuous")
	}
	if len(tr.Spans()) != 64 {
		t.Fatalf("ring retains %d spans, want 64", len(tr.Spans()))
	}
}

// TestAuditTableUnchangedByTelemetry pins that attaching the tracer to
// RunAudit kept the table shape: same columns, all runners OK.
func TestAuditTableUnchangedByTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("audit run is slow")
	}
	tbl, violations := RunAudit()
	if violations != 0 {
		t.Fatalf("audit found %d violations", violations)
	}
	if len(tbl.Columns) != 9 || tbl.Columns[8] != "verdict" {
		t.Fatalf("audit table columns changed: %v", tbl.Columns)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("audit table has %d rows, want 3", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[8] != "OK" {
			t.Fatalf("runner %s verdict %q", row[0], row[8])
		}
	}
}
