package experiments

import (
	"fmt"

	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/telemetry"
	"e3/internal/trace"
)

func init() {
	register("audit", func() Table { t, _ := RunAudit(); return t })
}

// RunAudit drives a bursty open-loop trace through each runner (E3
// pipeline, data-parallel baseline, serial ablation) with the lifecycle
// ledger and a ring span tracer attached, and reports the conservation
// verdict per runner. The tracer's event counts are reconciled against
// the ledger (telemetry.Tracer.Reconcile), so a recording bug surfaces as
// an audit violation. The second return value counts invariant violations
// across all runners; cmd/e3-bench -audit exits nonzero when it is not 0.
func RunAudit() (Table, int) {
	base := model.BERTBase()
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 8) }
	const (
		batch   = 8
		avgRate = 2000.0
		horizon = 10.0
		seed    = 424242
	)
	arr := trace.Bursty(trace.DefaultBursty(avgRate), horizon, seed)

	t := Table{
		ID:      "audit",
		Title:   "Lifecycle conservation audit (bursty open loop, all runners)",
		Columns: []string{"runner", "samples", "completed", "dropped", "admission", "stale-shed", "sla-flush", "violations", "verdict"},
		Notes:   "every minted sample must terminate exactly once with monotone timestamps and a classified drop reason",
	}

	plan, err := planE3(mk(), dee, dist, batch, defaultSLO, nil)
	if err != nil {
		t.Rows = append(t.Rows, []string{"pipeline", "-", "-", "-", "-", "-", "-", "-", "planning failed: " + err.Error()})
		return t, 1
	}

	type runnerCase struct {
		name string
		est  float64
		mk   func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error)
	}
	cases := []runnerCase{
		{"pipeline", plan.Latency, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			return scheduler.NewPipeline(eng, mk(), dee, plan, coll)
		}},
		{"dataparallel", 0.030, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			clus := mk()
			devs := make([]int, clus.Size())
			for i := range devs {
				devs[i] = i
			}
			return scheduler.NewDataParallel(eng, clus, dee, devs, coll)
		}},
		{"serial", plan.Latency, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			return scheduler.NewSerial(eng, mk(), dee, plan, coll), nil
		}},
	}

	violations := 0
	for _, rc := range cases {
		rep, _, err := serving.TracedOpenLoop(rc.mk, base.NumLayers(), arr, dist, rc.est, defaultSLO, batch, seed,
			telemetry.NewRing(4096))
		if err != nil {
			t.Rows = append(t.Rows, []string{rc.name, "-", "-", "-", "-", "-", "-", "-", "build failed: " + err.Error()})
			violations++
			continue
		}
		verdict := "OK"
		if !rep.OK() {
			verdict = "FAIL: " + rep.Violations[0]
			violations += len(rep.Violations)
		}
		t.Rows = append(t.Rows, []string{
			rc.name,
			itoa(rep.Samples), itoa(rep.Completed), itoa(rep.Dropped),
			itoa(rep.ByReason[audit.ReasonAdmission]),
			itoa(rep.ByReason[audit.ReasonStaleShed]),
			itoa(rep.ByReason[audit.ReasonSLAFlush]),
			itoa(len(rep.Violations)),
			verdict,
		})
	}
	if violations > 0 {
		t.Notes = fmt.Sprintf("%s — %d VIOLATION(S) FOUND", t.Notes, violations)
	}
	return t, violations
}
