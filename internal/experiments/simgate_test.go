package experiments

import (
	"os"
	"testing"
	"time"
)

// TestSimBenchPooledUnpooledByteIdentical is the determinism property the
// fast path must never trade away: for any seed, a pooled run and an
// unpooled run of the same config produce identical exhaustive ledger
// digests (every sample's full event sequence), identical event counts,
// and identical serving metrics. It runs unconditionally — it is the
// contract, not a perf gate.
func TestSimBenchPooledUnpooledByteIdentical(t *testing.T) {
	plan, err := PlanSimBench(DefaultSimBench())
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 42, 97} {
		cfg := DefaultSimBench()
		cfg.Rate, cfg.Horizon, cfg.Seed = 3000, 4, seed
		cfg.AuditStride = 1 // exhaustive: the digest covers every sample
		cfg.Plan = &plan

		cfg.Pooled = true
		pooled, err := RunSimBench(cfg)
		if err != nil {
			t.Fatalf("seed %d pooled: %v", seed, err)
		}
		cfg.Pooled = false
		plain, err := RunSimBench(cfg)
		if err != nil {
			t.Fatalf("seed %d unpooled: %v", seed, err)
		}

		if pooled.Digest != plain.Digest {
			t.Fatalf("seed %d: pooled and unpooled ledger digests differ — pooling changed execution", seed)
		}
		if pooled.Events != plain.Events {
			t.Fatalf("seed %d: event counts differ (pooled %d, unpooled %d)", seed, pooled.Events, plain.Events)
		}
		if pooled.Requests != plain.Requests || pooled.Completed != plain.Completed || pooled.Dropped != plain.Dropped {
			t.Fatalf("seed %d: terminal totals differ: pooled %d/%d/%d vs unpooled %d/%d/%d",
				seed, pooled.Requests, pooled.Completed, pooled.Dropped,
				plain.Requests, plain.Completed, plain.Dropped)
		}
		if pooled.Goodput != plain.Goodput || pooled.Latency != plain.Latency {
			t.Fatalf("seed %d: serving metrics differ under pooling", seed)
		}
		if !pooled.AuditOK {
			t.Fatalf("seed %d: conservation audit failed: %v", seed, pooled.Report.Violations)
		}
	}
}

// TestSimGate is the env-gated data-plane throughput floor (E3_SIM_GATE=1,
// wired into `make simgate` / `make verify`): a two-virtual-minute slice
// of the paper-scale trace must sustain at least floorEventsPerSec through
// the full serving stack. Wall-clock measurement is legitimate here — the
// virtualtime analyzer exempts test files — and planning runs outside the
// timed region.
func TestSimGate(t *testing.T) {
	if os.Getenv("E3_SIM_GATE") == "" {
		t.Skip("set E3_SIM_GATE=1 to enforce the data-plane events/sec floor")
	}
	// Floor: >6x the pre-fast-path data plane (155k events/s on this
	// hardware class), with headroom below the ~2M/s the fast path
	// measures so slower CI machines do not flake.
	const floorEventsPerSec = 1_000_000

	cfg := DefaultSimBench()
	cfg.Horizon = 120
	plan, err := PlanSimBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Plan = &plan

	start := time.Now()
	res, err := RunSimBench(cfg)
	wall := time.Since(start).Seconds()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AuditOK {
		t.Fatalf("conservation audit failed: %v", res.Report.Violations)
	}
	evps := float64(res.Events) / wall
	t.Logf("requests=%d events=%d wall=%.2fs events/s=%.0f goodput=%.0f",
		res.Requests, res.Events, wall, evps, res.Goodput)
	if evps < floorEventsPerSec {
		t.Fatalf("data plane sustained %.0f events/s, floor is %d", evps, floorEventsPerSec)
	}
}
