package experiments

import (
	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/metrics"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/trace"
	"e3/internal/workload"
)

// SimBenchConfig parameterizes the data-plane throughput benchmark: a
// Poisson open-loop trace through the full serving stack (generator →
// batcher → pipeline runner → collector) with the sampled conservation
// ledger attached. The default is the paper-scale stress case — 9000 req/s
// for a virtual hour, ~32M arrivals — which the fast path must complete in
// seconds of wall time.
type SimBenchConfig struct {
	// Rate is the Poisson arrival rate (req/s); Horizon the trace length in
	// virtual seconds.
	Rate    float64
	Horizon float64
	Seed    int64
	// AuditStride audits every Nth request in per-event detail (population
	// totals stay exact for all); 1 = exhaustive.
	AuditStride int64
	// Pooled recycles batch slices through the batcher → runner path.
	// Pooled and unpooled runs are byte-identical in results.
	Pooled bool
	GPUs   int
	Batch  int
	// Plan optionally supplies a precomputed plan so harnesses can time
	// the data plane alone; nil plans fresh via the optimizer.
	Plan *optimizer.Plan
}

// PlanSimBench computes the plan a config would use, for callers that
// want planning outside their timed region.
func PlanSimBench(cfg SimBenchConfig) (optimizer.Plan, error) {
	base := model.BERTBase()
	dee := ee.NewDeeBERT(base, 0.4)
	return planE3(cluster.Homogeneous(gpu.V100, cfg.GPUs), dee, mix80(), cfg.Batch, defaultSLO, nil)
}

// DefaultSimBench is the paper-scale trace the -sim-bench harness and the
// simgate floor measure: 9000 req/s × 1 h on BERT-Base/DeeBERT over 8
// V100s, every 1000th request audited in detail.
func DefaultSimBench() SimBenchConfig {
	return SimBenchConfig{
		Rate: 9000, Horizon: 3600, Seed: 97,
		AuditStride: 1000, Pooled: true, GPUs: 8, Batch: 8,
	}
}

// SimBenchResult reports one benchmark run. Wall-clock timing is the
// caller's job (the simulator package is virtual-time only).
type SimBenchResult struct {
	// Requests is the exact arrival count (from the ledger's population
	// counters); Events the engine events processed.
	Requests int
	Events   uint64
	// Completed counts terminal completions (within or past SLO); Dropped
	// counts shed samples. Completed+Dropped == Requests when conservation
	// holds.
	Completed int
	Dropped   int
	// Goodput is served-within-SLO samples per virtual second.
	Goodput float64
	// AuditOK is the verified conservation report's verdict; Report holds
	// the full report for inspection.
	AuditOK bool
	Report  *audit.Report
	// Digest canonically serializes the ledger (totals + every tracked
	// sample's event sequence) — equal digests mean identical executions.
	Digest string
	// Latency is the completion-latency five-number summary, compared
	// verbatim in the pooled-vs-unpooled property test.
	Latency metrics.Summary
}

// RunSimBench executes one configured run. The same config always yields
// the same result (virtual time, seeded randomness, deterministic event
// order), so pooled vs unpooled toggles must produce equal digests.
func RunSimBench(cfg SimBenchConfig) (SimBenchResult, error) {
	base := model.BERTBase()
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	clus := cluster.Homogeneous(gpu.V100, cfg.GPUs)
	var plan optimizer.Plan
	if cfg.Plan != nil {
		plan = *cfg.Plan
	} else {
		var err error
		plan, err = planE3(clus, dee, dist, cfg.Batch, defaultSLO, nil)
		if err != nil {
			return SimBenchResult{}, err
		}
	}

	eng := sim.NewEngine()
	// Size the runaway backstop to the workload: a paper-scale hour needs
	// ~55M events, past the driver's 50M default. ~2 events/request
	// steady-state, with 8x headroom so a real scheduling loop still trips.
	eng.SetEventLimit(uint64(cfg.Rate*cfg.Horizon)*8 + 1_000_000)
	coll := scheduler.NewCollector(base.NumLayers(), defaultSLO, 0)
	coll.Audit = audit.NewSampledLedger(cfg.AuditStride)
	pipe, err := scheduler.NewPipeline(eng, clus, dee, plan, coll)
	if err != nil {
		return SimBenchResult{}, err
	}
	b := serving.NewBatcher(eng, pipe, cfg.Batch, plan.Latency, defaultSlack)
	if cfg.Pooled {
		pool := workload.NewBatchPool()
		b.SetPool(pool)
		pipe.SetPool(pool)
	}
	gen := workload.NewGenerator(dist, cfg.Seed)
	gen.SetAudit(coll.Audit)

	st := trace.NewPoissonStream(cfg.Rate, cfg.Horizon, cfg.Seed)
	c, err := serving.RunOpenLoopStream(eng, pipe, b, st, gen, defaultSLO)
	if err != nil {
		return SimBenchResult{}, err
	}
	rep := c.AuditReport()
	return SimBenchResult{
		Requests:  rep.Samples,
		Events:    eng.Processed(),
		Completed: c.Good.Served + c.Violations,
		Dropped:   c.Dropped,
		Goodput:   c.Good.Goodput(),
		AuditOK:   rep.OK(),
		Report:    rep,
		Digest:    coll.Audit.Digest(),
		Latency:   c.Lat.Summarize(),
	}, nil
}
