package experiments

import (
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/multi"
	"e3/internal/sim"
	"e3/internal/workload"
)

func init() { register("extension-multitenant", ExtensionMultiTenant) }

// ExtensionMultiTenant partitions one 24-V100 cluster between an NLP
// ranker and a vision service, serves both at their demanded rates, and
// reports per-tenant goodput and the devices each received — the
// multi-service shape of the paper's §2.4 production infrastructure.
func ExtensionMultiTenant() Table {
	tenants := []multi.Tenant{
		{
			Name:  "nlp-ranker",
			Model: ee.NewDeeBERT(model.BERTBase(), 0.4),
			Dist:  workload.Mix(0.8),
			Rate:  4000,
			SLO:   defaultSLO,
			Batch: 8,
		},
		{
			Name:  "vision",
			Model: ee.NewBranchyNet(model.ResNet50()),
			Dist:  workload.ImageNet(),
			Rate:  8000,
			SLO:   defaultSLO,
			Batch: 16,
		},
	}
	t := Table{
		ID:      "extension-multitenant",
		Title:   "Multi-tenant cluster partitioning (24xV100, two services)",
		Columns: []string{"tenant", "demanded (req/s)", "devices", "planned (req/s)", "measured (req/s)", "bad frac"},
		Notes:   "extension of §2.4's multi-service infrastructure: disjoint E3 deployments from one inventory",
	}
	clus := cluster.Homogeneous(gpu.V100, 24)
	allocs, err := multi.Plan(clus, tenants)
	if err != nil {
		return t
	}
	eng := sim.NewEngine()
	fleet, err := multi.Deploy(eng, clus, tenants, allocs)
	if err != nil {
		return t
	}

	// Offer each tenant exactly its demanded rate for 3 virtual seconds.
	for _, tn := range tenants {
		tn := tn
		gen := workload.NewGenerator(tn.Dist, 311)
		interval := float64(tn.Batch) / tn.Rate
		for at := interval; at < 3.0; at += interval {
			at := at
			eng.At(at, func() {
				_ = fleet.Ingest(tn.Name, gen.Batch(tn.Batch, eng.Now(), tn.SLO))
			})
		}
	}
	eng.SetEventLimit(50_000_000)
	if err := eng.RunAll(); err != nil {
		t.Notes += " [ABORTED: " + err.Error() + "]"
		return t
	}
	fleet.FlushAll()
	if err := eng.RunAll(); err != nil {
		t.Notes += " [ABORTED: " + err.Error() + "]"
		return t
	}

	for _, a := range fleet.Allocations() {
		var tn multi.Tenant
		for _, cand := range tenants {
			if cand.Name == a.Tenant {
				tn = cand
			}
		}
		c := fleet.Collector(a.Tenant)
		c.Good.CloseAt(eng.Now())
		total := c.Good.Served + c.Violations + c.Dropped
		bad := 0.0
		if total > 0 {
			bad = float64(c.Violations+c.Dropped) / float64(total)
		}
		t.Rows = append(t.Rows, []string{
			a.Tenant, f0(tn.Rate), itoa(len(a.Devices)), f0(a.Plan.Goodput),
			f0(c.Good.Goodput()), pct(bad),
		})
	}
	return t
}
