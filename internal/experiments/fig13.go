package experiments

import (
	"math"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/workload"
)

func init() {
	register("fig13", Fig13)
	register("fig14", Fig14)
	register("fig15", Fig15)
}

// Fig13 reproduces Figure 13: at equal cost (~$0.013/s), E3 exploits a
// heterogeneous mix (6 V100 + 8 P100 + 15 K80) that neither baseline can
// use well — EE models prefer cheap GPUs, non-EE models fast ones, E3
// places splits across both.
func Fig13() Table {
	base := model.BERTBase()
	van := ee.NewVanilla(base)
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	hom := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }
	het := func() *cluster.Cluster { return cluster.PaperHeterogeneous() }

	t := Table{
		ID:    "fig13",
		Title: "Heterogeneous equal-cost clusters (~$0.013/s), GLUE 80E/20H",
		Columns: []string{"batch", "BERT-BASE (samples/s)", "DeeBERT (samples/s)", "E3-het (samples/s)",
			"E3/best-baseline"},
		Notes: "paper: E3 up to 1.70x; baselines cannot exploit heterogeneity (each sticks to one kind)",
	}
	for _, b := range []int{1, 2, 4, 8} {
		// Each baseline gets its better of the two equal-cost clusters
		// (the paper's configurations: 16 V100, or 6 V100 + 8 P100 + 15 K80).
		gVan := math.Max(
			measureBaseline(hom, van, dist, b, defaultSLO, 131),
			measureBaseline(het, van, dist, b, defaultSLO, 131))
		gDee := math.Max(
			measureBaseline(hom, dee, dist, b, defaultSLO, 131),
			measureBaseline(het, dee, dist, b, defaultSLO, 131))
		gE3 := e3Goodput(het, dee, dist, b, defaultSLO, 131, nil)
		best := math.Max(gVan, gDee)
		r := 0.0
		if best > 0 {
			r = gE3 / best
		}
		t.Rows = append(t.Rows, []string{itoa(b), f0(gVan), f0(gDee), f0(gE3), f2(r)})
	}
	return t
}

// perGPUGoodput estimates a data-parallel baseline's per-GPU goodput.
func perGPUGoodput(m *ee.EEModel, dist workload.Dist, batch int, kind gpu.Kind, slo float64, seed int64) float64 {
	one := func() *cluster.Cluster { return cluster.Homogeneous(kind, 2) }
	return measureBaseline(one, m, dist, batch, slo, seed) / 2
}

// Fig14 reproduces Figure 14: the number of V100s each system needs to
// sustain 6000 samples/s.
func Fig14() Table {
	const target = 6000.0
	base := model.BERTBase()
	van := ee.NewVanilla(base)
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	big := cluster.Homogeneous(gpu.V100, 64)

	t := Table{
		ID:      "fig14",
		Title:   "V100s needed for 6000 samples/s (GLUE 80E/20H, SLO 100ms)",
		Columns: []string{"batch", "BERT-BASE", "DeeBERT", "E3"},
		Notes:   "paper: E3 needs the fewest GPUs at every batch size",
	}
	for _, b := range []int{1, 2, 4, 8} {
		nVan := gpusFor(target, perGPUGoodput(van, dist, b, gpu.V100, defaultSLO, 141))
		nDee := gpusFor(target, perGPUGoodput(dee, dist, b, gpu.V100, defaultSLO, 141))
		nE3 := "-"
		prof := profile.FromDist(dee, dist, 8000, 1)
		cfg := optimizer.Config{Model: dee, Profile: prof, Batch: b, Cluster: big,
			SLO: defaultSLO, SlackFrac: defaultSlack, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true}
		if p, err := optimizer.MinimizeGPUs(cfg, target); err == nil {
			nE3 = itoa(p.GPUs)
		}
		t.Rows = append(t.Rows, []string{itoa(b), nVan, nDee, nE3})
	}
	return t
}

func gpusFor(target, perGPU float64) string {
	if perGPU <= 0 {
		return "-"
	}
	return itoa(int(math.Ceil(target / perGPU)))
}

// Fig15 reproduces Figure 15: the cheapest configuration sustaining 6000
// samples/s on a heterogeneous pool, in dollars per minute.
func Fig15() Table {
	const target = 6000.0
	base := model.BERTBase()
	van := ee.NewVanilla(base)
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	// A deep heterogeneous pool for the search.
	pool := cluster.New(map[gpu.Kind]int{gpu.V100: 48, gpu.P100: 48, gpu.K80: 48}, 2)

	t := Table{
		ID:      "fig15",
		Title:   "Cheapest config for 6000 samples/s ($/min, heterogeneous pool)",
		Columns: []string{"batch", "BERT-BASE ($/min)", "DeeBERT ($/min)", "E3 ($/min)"},
		Notes:   "paper: E3 achieves the target at up to 35% lower cost",
	}
	kinds := []gpu.Kind{gpu.V100, gpu.P100, gpu.K80}
	for _, b := range []int{1, 2, 4, 8} {
		t.Rows = append(t.Rows, []string{
			itoa(b),
			cheapestBaseline(van, dist, b, target, 151, kinds),
			cheapestBaseline(dee, dist, b, target, 151, kinds),
			cheapestE3(dee, dist, b, target, pool),
		})
	}
	return t
}

// cheapestBaseline picks the best single GPU kind (from the same pool E3
// draws on) for a data-parallel baseline and prices the required count.
func cheapestBaseline(m *ee.EEModel, dist workload.Dist, batch int, target float64, seed int64, kinds []gpu.Kind) string {
	best := math.Inf(1)
	for _, k := range kinds {
		per := perGPUGoodput(m, dist, batch, k, defaultSLO, seed)
		if per <= 0 {
			continue
		}
		n := math.Ceil(target / per)
		cost := n * gpu.Get(k).CostPerSecond() * 60
		if cost < best {
			best = cost
		}
	}
	if math.IsInf(best, 1) {
		return "-"
	}
	return f2(best)
}

func cheapestE3(m *ee.EEModel, dist workload.Dist, batch int, target float64, pool *cluster.Cluster) string {
	prof := profile.FromDist(m, dist, 8000, 1)
	cfg := optimizer.Config{Model: m, Profile: prof, Batch: batch, Cluster: pool,
		SLO: defaultSLO, SlackFrac: defaultSlack, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true}
	p, err := optimizer.MinimizeCost(cfg, target)
	if err != nil {
		return "-"
	}
	return f2(p.CostPerSec * 60)
}
