package experiments

import (
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/trace"
	"e3/internal/workload"
)

func init() {
	register("fig18", Fig18)
	register("fig19", Fig19)
}

// Fig18 reproduces Figure 18: E3 generalizes across EE architectures —
// here PABEE's patience-counter ramps on BERT-LARGE.
func Fig18() Table {
	base := model.BERTLarge()
	return runTriple(tripleSpec{
		id:        "fig18",
		title:     "EE-architecture generality: PABEE on BERT-LARGE (16xV100)",
		names:     [3]string{"BERT-LARGE", "PABEE", "E3"},
		vanilla:   ee.NewVanilla(base),
		naive:     ee.NewPABEE(base, 6),
		dist:      mix80(),
		batches:   []int{1, 2, 4, 8},
		mkCluster: func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) },
		slo:       0.250, // BERT-LARGE needs a looser bound than BASE
		seed:      181,
		notes:     "paper: E3 up to 1.55x over PABEE",
	})
}

// Fig19 reproduces Figure 19: the scaled Twitter trace — extreme bursts,
// long idle stretches, GPU utilization under 50%. Open-loop clients with
// dynamic batching.
func Fig19() Table {
	base := model.BERTBase()
	van := ee.NewVanilla(base)
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }
	const (
		batch   = 8
		avgRate = 1000.0
		horizon = 300.0
	)
	arr := trace.Bursty(trace.DefaultBursty(avgRate), horizon, 191)

	runOne := func(build func(*sim.Engine, *cluster.Cluster, *scheduler.Collector) scheduler.Runner, est float64) (goodput, util float64) {
		eng := sim.NewEngine()
		clus := mk()
		coll := scheduler.NewCollector(base.NumLayers(), defaultSLO, 0)
		r := build(eng, clus, coll)
		b := serving.NewBatcher(eng, r, batch, est, defaultSlack)
		gen := workload.NewGenerator(dist, 191)
		c, err := serving.RunOpenLoop(eng, r, b, arr, gen, defaultSLO)
		if err != nil {
			return 0, 0
		}
		return c.Good.Goodput(), c.Util.Utilization(eng.Now())
	}

	t := Table{
		ID:      "fig19",
		Title:   "Extremely bursty open-loop workload (Twitter trace, ~1000 req/s avg)",
		Columns: []string{"system", "goodput (req/s)", "GPU util (%)"},
		Notes:   "paper: E3 +29% over DeeBERT, +16% over BERT-BASE; utilization stays under 50%",
	}
	gVan, uVan := runOne(dataParallelBuilder(van), 0.030)
	gDee, uDee := runOne(dataParallelBuilder(dee), 0.030)
	plan, err := planE3(mk(), dee, dist, batch, defaultSLO, nil)
	gE3, uE3 := 0.0, 0.0
	if err == nil {
		gE3, uE3 = runOne(pipelineBuilder(dee, mk, dist, batch), plan.Latency)
	}
	t.Rows = append(t.Rows,
		[]string{"BERT-BASE", f0(gVan), f1(uVan * 100)},
		[]string{"DeeBERT", f0(gDee), f1(uDee * 100)},
		[]string{"E3", f0(gE3), f1(uE3 * 100)},
	)
	return t
}
