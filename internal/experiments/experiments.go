// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §5). Each figNN.go holds one runner; the registry
// maps experiment IDs to runners so cmd/e3-bench and the root benchmark
// harness can execute them individually or en masse.
//
// Absolute numbers differ from the paper (the substrate is an analytical
// simulator, not the authors' testbed); the *shapes* — who wins, by what
// rough factor, where crossovers fall — are the reproduction target and
// are asserted in experiments_test.go.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/workload"
)

// Table is one experiment's printable result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Print renders the table as aligned text.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as RFC-4180-ish CSV (header row first) for
// downstream plotting.
func (t Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// Runner produces one experiment's table.
type Runner func() Table

var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs lists registered experiments in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(), nil
}

// ---- shared measurement machinery ----

// Defaults mirror the paper's setup.
const (
	defaultSLO   = 0.100
	defaultSlack = 0.2
	// probeHorizon is virtual seconds per goodput probe; short enough to
	// keep experiments fast, long enough to reach steady state.
	probeHorizon = 2.0
	// probeTol is the tolerated bad (dropped/violated) fraction.
	probeTol = 0.01
	// upperRate bounds the goodput binary search.
	upperRate = 60000
)

// sysKind names the three compared systems.
type sysKind int

const (
	sysVanilla sysKind = iota
	sysNaiveEE
	sysE3
)

// measureBaseline returns the sustained goodput of a data-parallel
// baseline (vanilla or naive EE) on the given cluster.
func measureBaseline(mk func() *cluster.Cluster, m *ee.EEModel, dist workload.Dist, batch int, slo float64, seed int64) float64 {
	build := func() (*sim.Engine, scheduler.Runner) {
		clus := mk()
		eng := sim.NewEngine()
		coll := scheduler.NewCollector(m.Base.NumLayers(), slo, 0)
		devs := make([]int, clus.Size())
		for i := range devs {
			devs[i] = i
		}
		d, err := scheduler.NewDataParallel(eng, clus, m, devs, coll)
		if err != nil {
			panic(err)
		}
		return eng, d
	}
	gen := func() *workload.Generator { return workload.NewGenerator(dist, seed) }
	return serving.MaxGoodput(build, gen, batch, slo, probeHorizon, upperRate, probeTol)
}

// planE3 computes an E3 plan for the given setting.
func planE3(clus *cluster.Cluster, m *ee.EEModel, dist workload.Dist, batch int, slo float64, mutate func(*optimizer.Config)) (optimizer.Plan, error) {
	prof := profile.FromDist(m, dist, 8000, 1)
	cfg := optimizer.Config{
		Model: m, Profile: prof, Batch: batch, Cluster: clus,
		SLO: slo, SlackFrac: defaultSlack, MinExitFrac: optimizer.DefaultMinExitFrac,
		Pipelining: true, ModelParallel: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return optimizer.MaximizeGoodput(cfg)
}

// measureE3 returns E3's sustained goodput for a plan.
func measureE3(mk func() *cluster.Cluster, m *ee.EEModel, plan optimizer.Plan, dist workload.Dist, batch int, slo float64, seed int64) float64 {
	build := func() (*sim.Engine, scheduler.Runner) {
		clus := mk()
		eng := sim.NewEngine()
		coll := scheduler.NewCollector(m.Base.NumLayers(), slo, 0)
		p, err := scheduler.NewPipeline(eng, clus, m, plan, coll)
		if err != nil {
			panic(err)
		}
		return eng, p
	}
	gen := func() *workload.Generator { return workload.NewGenerator(dist, seed) }
	return serving.MaxGoodput(build, gen, batch, slo, probeHorizon, upperRate, probeTol)
}

// measureE3Serial measures the §5.8.7 ablation (model parallelism off).
func measureE3Serial(mk func() *cluster.Cluster, m *ee.EEModel, plan optimizer.Plan, dist workload.Dist, batch int, slo float64, seed int64) float64 {
	build := func() (*sim.Engine, scheduler.Runner) {
		clus := mk()
		eng := sim.NewEngine()
		coll := scheduler.NewCollector(m.Base.NumLayers(), slo, 0)
		return eng, scheduler.NewSerial(eng, clus, m, plan, coll)
	}
	gen := func() *workload.Generator { return workload.NewGenerator(dist, seed) }
	return serving.MaxGoodput(build, gen, batch, slo, probeHorizon, upperRate, probeTol)
}

// e3Goodput plans and measures in one step, returning 0 when no feasible
// plan exists (e.g. the batch violates the SLO).
func e3Goodput(mk func() *cluster.Cluster, m *ee.EEModel, dist workload.Dist, batch int, slo float64, seed int64, mutate func(*optimizer.Config)) float64 {
	plan, err := planE3(mk(), m, dist, batch, slo, mutate)
	if err != nil {
		return 0
	}
	return measureE3(mk, m, plan, dist, batch, slo, seed)
}

func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func ms(v float64) string  { return fmt.Sprintf("%.1f", v*1e3) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
