package experiments

import (
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/workload"
)

func init() { register("extension-straggler", ExtensionStraggler) }

// ExtensionStraggler exercises the §3.3 straggler path end to end: one
// replica of E3's first split runs 4x slow; the monitor must strike and
// exclude it, and goodput must stay close to the healthy cluster's.
func ExtensionStraggler() Table {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	dist := mix80()
	const batch = 8

	run := func(slow bool) (goodput float64, excluded int, violFrac float64) {
		clus := cluster.Homogeneous(gpu.V100, 16)
		plan, err := planE3(clus, m, dist, batch, defaultSLO, nil)
		if err != nil {
			return 0, 0, 0
		}
		if slow {
			devs := clus.OfKind(plan.Splits[0].Kind)
			clus.MarkStraggler(devs[0], 4.0)
		}
		eng := sim.NewEngine()
		coll := scheduler.NewCollector(m.Base.NumLayers(), defaultSLO, 0)
		pipe, err := scheduler.NewPipeline(eng, clus, m, plan, coll)
		if err != nil {
			return 0, 0, 0
		}
		gen := workload.NewGenerator(dist, 301)
		// Offer 70% of the healthy plan so a healthy run is clean.
		c, err := serving.RunClosedLoop(eng, pipe, gen, batch, plan.Goodput*0.7, 4.0, defaultSLO)
		if err != nil {
			return 0, 0, 0
		}
		total := c.Good.Served + c.Violations + c.Dropped
		if total == 0 {
			return 0, pipe.ExcludedInstances(), 0
		}
		return c.Good.Goodput(), pipe.ExcludedInstances(),
			float64(c.Violations+c.Dropped) / float64(total)
	}

	gHealthy, exHealthy, vHealthy := run(false)
	gSlow, exSlow, vSlow := run(true)

	t := Table{
		ID:      "extension-straggler",
		Title:   "Straggler detection and exclusion (one 4x-slow replica)",
		Columns: []string{"scenario", "goodput (samples/s)", "excluded instances", "bad fraction"},
		Notes:   "§3.3: the monitor strikes slow instances out of rotation; goodput degrades gracefully",
	}
	t.Rows = append(t.Rows,
		[]string{"healthy", f0(gHealthy), itoa(exHealthy), pct(vHealthy)},
		[]string{"straggler", f0(gSlow), itoa(exSlow), pct(vSlow)},
	)
	return t
}
