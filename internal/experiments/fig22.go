package experiments

import (
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/workload"
)

func init() {
	register("fig22", Fig22)
	register("fig23", Fig23)
}

// Fig22 reproduces Figure 22: sensitivity to batch-profile misprediction
// on the Llama setup. Errors only shave goodput (plans become suboptimal);
// correctness is untouched.
func Fig22() Table {
	base := model.Llama318B()
	m := ee.NewLlamaEE(base)
	dist := workload.BoolQ()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.A6000, 4) }
	const slo = 0.5

	t := Table{
		ID:      "fig22",
		Title:   "Goodput under injected profile-prediction error (Llama-3.1-8B)",
		Columns: []string{"error (%)", "batch 8 (samples/s)", "batch 16 (samples/s)"},
		Notes:   "paper: ~4-8% goodput loss at 20% error; large errors only shrink gains, never break correctness",
	}
	truth := profile.FromDist(m, dist, 8000, 1)
	measure := func(batch int, errFrac float64) float64 {
		cfg := optimizer.Config{
			Model: m, Profile: truth.WithError(errFrac), Batch: batch, Cluster: mk(),
			SLO: slo, SlackFrac: defaultSlack, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
			DisableInteriorRamps: true,
		}
		plan, err := optimizer.MaximizeGoodput(cfg)
		if err != nil {
			return 0
		}
		return measureE3(mk, m, plan, dist, batch, slo, 221)
	}
	for _, e := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
		t.Rows = append(t.Rows, []string{f0(e * 100), f0(measure(8, e)), f0(measure(16, e))})
	}
	return t
}

// Fig23 reproduces Figure 23: looser exit entropy (more tolerated error)
// exits more inputs and widens E3's lead.
func Fig23() Table {
	base := model.BERTBase()
	van := ee.NewVanilla(base)
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }
	dist := mix80()

	t := Table{
		ID:      "fig23",
		Title:   "Impact of exit entropy (error tolerance), 16xV100, GLUE 80E/20H",
		Columns: []string{"entropy", "batch", "BERT-BASE", "DeeBERT", "E3", "E3/DeeBERT"},
		Notes:   "paper: at entropy 0.5, E3 up to 43% over DeeBERT; low entropy disables exits",
	}
	for _, th := range []float64{0.3, 0.4, 0.5} {
		dee := ee.NewDeeBERT(base, th)
		for _, b := range []int{1, 2, 4, 8} {
			gVan := measureBaseline(mk, van, dist, b, defaultSLO, 231)
			gDee := measureBaseline(mk, dee, dist, b, defaultSLO, 231)
			gE3 := e3Goodput(mk, dee, dist, b, defaultSLO, 231, nil)
			r := 0.0
			if gDee > 0 {
				r = gE3 / gDee
			}
			t.Rows = append(t.Rows, []string{f1(th), itoa(b), f0(gVan), f0(gDee), f0(gE3), f2(r)})
		}
	}
	return t
}
