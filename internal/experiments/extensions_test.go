package experiments

import "testing"

func TestExtensionTuningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := ExtensionTuning()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Lower accuracy floors must buy looser thresholds, earlier mean
	// exits, and at least as much goodput.
	prevTh, prevExit, prevGood := 0.0, 0.0, 1e18
	for row := range tab.Rows {
		th := cell(t, tab, row, 1)
		acc := cell(t, tab, row, 2)
		floor := cell(t, tab, row, 0)
		exitL := cell(t, tab, row, 3)
		good := cell(t, tab, row, 4)
		if acc < floor {
			t.Errorf("row %d: tuned accuracy %v below floor %v", row, acc, floor)
		}
		if th < prevTh {
			t.Errorf("row %d: threshold tightened as the floor relaxed", row)
		}
		if row > 0 && exitL > prevExit+1e-9 {
			t.Errorf("row %d: mean exit got later as the floor relaxed", row)
		}
		if row > 0 && good > prevGood*1.01 && prevGood != 0 {
			// goodput must not *decrease* as budget relaxes
			_ = good
		}
		if row > 0 && good+1 < prevGood && prevTh != th {
			t.Errorf("row %d: goodput fell (%v → %v) despite a looser threshold", row, prevGood, good)
		}
		prevTh, prevExit, prevGood = th, exitL, good
	}
}

func TestExtensionContinuousShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := ExtensionContinuous()
	t5Static := cell(t, tab, 0, 1)
	t5Cont := cell(t, tab, 1, 1)
	calmCont := cell(t, tab, 2, 1)
	e3 := cell(t, tab, 3, 1)
	if t5Cont <= t5Static {
		t.Errorf("continuous batching (%v) did not beat static (%v)", t5Cont, t5Static)
	}
	if calmCont >= t5Cont {
		t.Errorf("continuous batching alone rescued CALM (%v ≥ %v) — within-iteration shrinkage should persist", calmCont, t5Cont)
	}
	if e3 <= t5Cont {
		t.Errorf("E3 (%v) did not beat T5+continuous (%v)", e3, t5Cont)
	}
}

func TestExtensionBuffersLifecycle(t *testing.T) {
	tab := ExtensionBuffers()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	steadyGPUs := cell(t, tab, 0, 2)
	spikeGPUs := cell(t, tab, 1, 2)
	recovGPUs := cell(t, tab, 2, 2)
	if tab.Rows[0][3] != "no" || tab.Rows[1][3] != "yes" || tab.Rows[2][3] != "no" {
		t.Errorf("buffer lifecycle wrong: %v", tab.Rows)
	}
	if spikeGPUs <= steadyGPUs {
		t.Errorf("spike plan GPUs %v not above steady %v", spikeGPUs, steadyGPUs)
	}
	if recovGPUs > steadyGPUs {
		t.Errorf("recovered plan GPUs %v above steady %v", recovGPUs, steadyGPUs)
	}
}

func TestExtensionStragglerShape(t *testing.T) {
	tab := ExtensionStraggler()
	gHealthy := cell(t, tab, 0, 1)
	gSlow := cell(t, tab, 1, 1)
	exSlow := cell(t, tab, 1, 2)
	if exSlow < 1 {
		t.Error("straggler never excluded")
	}
	if gSlow < gHealthy*0.85 {
		t.Errorf("straggler goodput %v fell more than 15%% below healthy %v", gSlow, gHealthy)
	}
}

func TestExtensionMultiTenantShape(t *testing.T) {
	tab := ExtensionMultiTenant()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 tenants", len(tab.Rows))
	}
	totalDevs := 0.0
	for row := range tab.Rows {
		demanded := cell(t, tab, row, 1)
		planned := cell(t, tab, row, 3)
		measured := cell(t, tab, row, 4)
		if planned < demanded {
			t.Errorf("row %d: planned %v below demand %v", row, planned, demanded)
		}
		// Offered exactly the demand: measured goodput ≈ demand.
		if measured < demanded*0.95 {
			t.Errorf("row %d: measured %v well below offered %v", row, measured, demanded)
		}
		totalDevs += cell(t, tab, row, 2)
	}
	if totalDevs > 24 {
		t.Errorf("tenants use %v devices of 24", totalDevs)
	}
}

func TestProductionStoryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := Production()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	cost := func(row int) float64 { return cell(t, tab, row, 3) }
	// Naive EE batching must cost MORE per request than the stock model —
	// the paper's showstopper.
	if cost(3) <= cost(0) {
		t.Errorf("naive EE cost %v not above stock %v", cost(3), cost(0))
	}
	// E3 must bring the EE model's cost well below stock, into the same
	// league as the 6-layer compressed variant.
	if cost(4) >= cost(0)*0.75 {
		t.Errorf("E3 cost %v not well below stock %v", cost(4), cost(0))
	}
	if cost(4) > cost(1)*1.4 {
		t.Errorf("E3 cost %v not in the 6-layer league (%v)", cost(4), cost(1))
	}
	// The 3-layer variant is cheapest but pays the accuracy loss.
	if cost(2) >= cost(1) {
		t.Errorf("3-layer cost %v not below 6-layer %v", cost(2), cost(1))
	}
	if acc := cell(t, tab, 2, 1); acc > cell(t, tab, 0, 1)-3 {
		t.Errorf("3-layer accuracy %v not clearly below reference", acc)
	}
}
