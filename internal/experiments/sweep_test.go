package experiments

import "testing"

// TestEveryExperimentRuns executes the entire registry once and checks the
// structural invariants every table must satisfy: a title, columns, at
// least one row, and row widths matching the header. It is the regression
// net for the whole harness; skipped under -short.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full evaluation (~90s)")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != id {
				t.Errorf("table ID %q != registry id %q", tab.ID, id)
			}
			if tab.Title == "" || len(tab.Columns) == 0 {
				t.Error("missing title or columns")
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tab.Columns))
				}
				for j, cellVal := range row {
					if cellVal == "" {
						t.Errorf("row %d col %d empty", i, j)
					}
				}
			}
		})
	}
}
