package experiments

import (
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/optimizer"
	"e3/internal/workload"
)

// tripleSpec describes the recurring experiment shape "vanilla vs naive EE
// vs E3, goodput per batch size".
type tripleSpec struct {
	id, title string
	names     [3]string
	vanilla   *ee.EEModel
	naive     *ee.EEModel
	dist      workload.Dist
	batches   []int
	mkCluster func() *cluster.Cluster
	slo       float64
	seed      int64
	e3mutate  func(*optimizer.Config)
	notes     string
}

// goodputTriple measures the three systems at one batch size. A zero means
// the configuration was infeasible (e.g. SLO-violating batch).
func goodputTriple(s tripleSpec, batch int) (van, naive, e3 float64) {
	van = measureBaseline(s.mkCluster, s.vanilla, s.dist, batch, s.slo, s.seed)
	naive = measureBaseline(s.mkCluster, s.naive, s.dist, batch, s.slo, s.seed)
	e3 = e3Goodput(s.mkCluster, s.naive, s.dist, batch, s.slo, s.seed, s.e3mutate)
	return van, naive, e3
}

// runTriple renders the standard three-system table.
func runTriple(s tripleSpec) Table {
	t := Table{
		ID:    s.id,
		Title: s.title,
		Columns: []string{"batch", s.names[0] + " (samples/s)", s.names[1] + " (samples/s)",
			s.names[2] + " (samples/s)", "E3/" + s.names[0], "E3/" + s.names[1]},
		Notes: s.notes,
	}
	for _, b := range s.batches {
		van, naive, e3 := goodputTriple(s, b)
		r1, r2 := 0.0, 0.0
		if van > 0 {
			r1 = e3 / van
		}
		if naive > 0 {
			r2 = e3 / naive
		}
		t.Rows = append(t.Rows, []string{itoa(b), f0(van), f0(naive), f0(e3), f2(r1), f2(r2)})
	}
	return t
}

// mix80 is the paper's predominant production-like workload.
func mix80() workload.Dist { return workload.Mix(0.8) }
