package experiments

import (
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/workload"
)

func init() {
	register("fig07", Fig07)
	register("fig08", Fig08)
	register("fig09", Fig09)
}

// Fig07 reproduces Figure 7: NLP goodput vs batch size on 16 homogeneous
// V100s — BERT-BASE vs DeeBERT vs E3.
func Fig07() Table {
	base := model.BERTBase()
	return runTriple(tripleSpec{
		id:        "fig07",
		title:     "NLP goodput, 16xV100, GLUE 80E/20H, SLO 100ms",
		names:     [3]string{"BERT-BASE", "DeeBERT", "E3"},
		vanilla:   ee.NewVanilla(base),
		naive:     ee.NewDeeBERT(base, 0.4),
		dist:      mix80(),
		batches:   []int{1, 2, 4, 8},
		mkCluster: func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) },
		slo:       defaultSLO,
		seed:      71,
		notes:     "paper: E3 up to 1.44x over DeeBERT, 1.30x over BERT-BASE; DeeBERT wins only at batch 1",
	})
}

// Fig08 reproduces Figure 8: vision goodput vs batch on 16 V100s —
// ResNet-50 vs BranchyNet-ResNet50 vs E3.
func Fig08() Table {
	base := model.ResNet50()
	return runTriple(tripleSpec{
		id:        "fig08",
		title:     "Vision goodput, 16xV100, ImageNet, SLO 100ms",
		names:     [3]string{"ResNet50", "B-ResNet50", "E3"},
		vanilla:   ee.NewVanilla(base),
		naive:     ee.NewBranchyNet(base),
		dist:      workload.ImageNet(),
		batches:   []int{1, 2, 4, 8, 16, 32},
		mkCluster: func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) },
		slo:       defaultSLO,
		seed:      81,
		notes:     "paper: E3 up to 1.74x over B-ResNet50",
	})
}

// Fig09 reproduces Figure 9: E3 complements compression — DistilBERT vs
// the in-house DistilBERT-EE vs E3 on DistilBERT-EE.
func Fig09() Table {
	base := model.DistilBERT()
	return runTriple(tripleSpec{
		id:        "fig09",
		title:     "Compressed-model goodput, 16xV100, GLUE 80E/20H, SLO 100ms",
		names:     [3]string{"DistilBERT", "DistilBERT-EE", "E3"},
		vanilla:   ee.NewVanilla(base),
		naive:     ee.NewDistilBERTEE(base, 0.4),
		dist:      mix80(),
		batches:   []int{1, 2, 4, 8, 16, 32},
		mkCluster: func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) },
		slo:       defaultSLO,
		seed:      91,
		notes:     "paper: E3 boosts the compressed model by up to 1.67x",
	})
}
