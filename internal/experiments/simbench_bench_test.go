package experiments

import (
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/telemetry"
	"e3/internal/trace"
)

// BenchmarkTracedRunnerPath measures the fully-instrumented serving path —
// exhaustive ledger plus ring tracer, the e3-serve boot configuration —
// over a two-virtual-second Poisson slice per iteration. Allocations here
// are dominated by the per-sample/per-span record path the fast-path work
// pools and caches.
func BenchmarkTracedRunnerPath(b *testing.B) {
	base := model.BERTBase()
	dee := ee.NewDeeBERT(base, 0.4)
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 8) }
	plan, err := planE3(mk(), dee, dist, 8, defaultSLO, nil)
	if err != nil {
		b.Fatal(err)
	}
	arr := trace.Poisson(3000, 2, 7)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := telemetry.NewRing(4096)
		rep, _, err := serving.TracedOpenLoop(func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			return scheduler.NewPipeline(eng, mk(), dee, plan, coll)
		}, base.NumLayers(), arr, dist, plan.Latency, defaultSLO, 8, 7, tr)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("audit failed: %v", rep.Violations)
		}
	}
}
