package experiments

import (
	"time"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
)

func init() {
	register("fig20", Fig20)
	register("fig21", Fig21)
}

// Fig20 reproduces Figure 20's table: the optimizer is lightweight — it
// finds splits and placements in seconds even for the 46-GPU
// heterogeneous cluster.
func Fig20() Table {
	t := Table{
		ID:      "fig20",
		Title:   "Optimizer runtime (wall-clock seconds)",
		Columns: []string{"model", "homogeneous (ms)", "heterogeneous (ms)"},
		Notes:   "paper: 0.87-1.53s homogeneous, 2.09-3.63s heterogeneous (their testbed CPU)",
	}
	cases := []struct {
		label string
		mk    func() *ee.EEModel
	}{
		{"ResNet50", func() *ee.EEModel { return ee.NewBranchyNet(model.ResNet50()) }},
		{"BERT-BASE", func() *ee.EEModel { return ee.NewDeeBERT(model.BERTBase(), 0.4) }},
		{"BERT-LARGE", func() *ee.EEModel { return ee.NewDeeBERT(model.BERTLarge(), 0.4) }},
	}
	hom := cluster.Homogeneous("V100", 16)
	het := cluster.PaperEvaluation()
	for _, c := range cases {
		m := c.mk()
		prof := profile.FromDist(m, mix80(), 8000, 1)
		timeIt := func(clus *cluster.Cluster) float64 {
			cfg := optimizer.Config{Model: m, Profile: prof, Batch: 8, Cluster: clus,
				SLO: 0.25, SlackFrac: defaultSlack, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
				MaxSplits: 4}
			// Figure 20 measures the optimizer's real compute cost, not
			// simulated behaviour, so the wall clock is the instrument here.
			start := time.Now() //e3:wallclock measuring actual optimizer runtime
			// Repeat to get a stable reading; report the per-solve time.
			const reps = 20
			for i := 0; i < reps; i++ {
				_, _ = optimizer.MaximizeGoodput(cfg)
			}
			return time.Since(start).Seconds() / reps //e3:wallclock measuring actual optimizer runtime
		}
		t.Rows = append(t.Rows, []string{c.label, f2(timeIt(hom) * 1e3), f2(timeIt(het) * 1e3)})
	}
	return t
}

// Fig21 reproduces Figure 21: the online batch-profile estimator's
// predictions versus reality at two model cuts over ten scheduling
// windows, under a drifting workload.
func Fig21() Table {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	const inputBatch = 8
	cut1, cut2 := 4, 8

	t := Table{
		ID:    "fig21",
		Title: "Batch-profile estimation: predicted vs actual batch size at two cuts (input batch 8)",
		Columns: []string{"window", "cut1 predicted", "cut1 actual",
			"cut2 predicted", "cut2 actual"},
		Notes: "paper: predictions closely match reality",
	}
	est := newWindowEstimator(m)
	// Warm up on a drifting easy fraction, then report ten windows.
	easyAt := func(w int) float64 { return 0.75 - 0.02*float64(w%12) }
	for w := 0; w < 8; w++ {
		est.observeWindow(easyAt(w), int64(210+w))
	}
	for w := 0; w < 10; w++ {
		pred := est.predict()
		actual := est.observeWindow(easyAt(8+w), int64(218+w))
		t.Rows = append(t.Rows, []string{
			itoa(w + 1),
			f2(pred.At(cut1+1) * inputBatch), f2(actual.At(cut1+1) * inputBatch),
			f2(pred.At(cut2+1) * inputBatch), f2(actual.At(cut2+1) * inputBatch),
		})
	}
	return t
}
