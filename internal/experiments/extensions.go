package experiments

// Extension experiments: features the paper flags as future work, built
// and measured here — real-time ramp tuning (§3.4), spike-buffer resources
// (§3.1), and the synergy question with Orca-style iterative scheduling
// (§5.1.3's deferral).

import (
	"e3/internal/cluster"
	"e3/internal/core"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/llm"
	"e3/internal/model"
	"e3/internal/sim"
	"e3/internal/workload"
)

func init() {
	register("extension-tuning", ExtensionTuning)
	register("extension-continuous", ExtensionContinuous)
	register("extension-buffers", ExtensionBuffers)
}

// ExtensionTuning demonstrates accuracy-budgeted ramp tuning: given an
// accuracy floor, pick the loosest entropy threshold and report the
// goodput it buys (§3.4 future work).
func ExtensionTuning() Table {
	dist := workload.SST2()
	acc := ee.AccuracyModel{BaseAccuracy: 92.7, ExitRisk: ee.DefaultExitRisk}
	build := func(th float64) *ee.EEModel { return ee.NewDeeBERT(model.BERTBase(), th) }
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }

	t := Table{
		ID:      "extension-tuning",
		Title:   "Accuracy-budgeted ramp tuning (SST-2, batch 8, 16xV100)",
		Columns: []string{"accuracy floor (%)", "tuned entropy", "est accuracy (%)", "mean exit layer", "E3 goodput"},
		Notes:   "extension of §3.4: the loosest threshold within budget maximizes exits and goodput",
	}
	for _, floor := range []float64{92.0, 91.5, 91.0, 90.0} {
		res, err := ee.TuneEntropy(build, acc, dist, floor, 0.05, 0.95, 11)
		if err != nil {
			t.Rows = append(t.Rows, []string{f1(floor), "-", "-", "-", "-"})
			continue
		}
		g := e3Goodput(mk, res.Model, dist, 8, defaultSLO, 271, nil)
		t.Rows = append(t.Rows, []string{
			f1(floor), f3(res.Threshold), f2(res.Accuracy), f1(res.MeanExitLayer), f0(g),
		})
	}
	return t
}

// ExtensionContinuous measures Orca-style iterative scheduling against
// static batching and E3: continuous batching removes *cross-iteration*
// padding waste, but the EE batch-shrinking problem remains *within* an
// iteration — exactly the paper's argument for why E3 is orthogonal.
func ExtensionContinuous() Table {
	spec := gpu.Get(gpu.A6000)
	lengths := llm.UniformLen{Min: 6, Max: 30}
	dist := workload.WMT()
	const (
		slots = 16
		nGPU  = 4
		nReqs = 384
	)
	avgLen := lengths.Mean()

	t5 := ee.NewVanilla(model.T5Decoder(avgLen))
	calm := ee.NewCALM(model.T5Decoder(avgLen), 0.25)

	gT5Static := llm.GoodputStatic(t5, lengths, dist, slots, nGPU, spec, 24, 281)
	gT5Cont := llm.GoodputContinuous(t5, lengths, dist, slots, nGPU, nReqs, spec, 281)
	gCALMCont := llm.GoodputContinuous(calm, lengths, dist, slots, nGPU, nReqs, spec, 281)

	slo := 0.100 * avgLen / 4
	gE3 := e3Goodput(func() *cluster.Cluster { return cluster.Homogeneous(gpu.A6000, nGPU) },
		calm, dist, slots, slo, 281, nil) / avgLen

	t := Table{
		ID:      "extension-continuous",
		Title:   "Iterative scheduling (Orca-style) vs E3 (T5 translation, batch 16, 4xA6000)",
		Columns: []string{"system", "req/s", "vs T5-static"},
		Notes:   "continuous batching fixes cross-iteration waste; within-iteration EE shrinkage still needs E3's splits",
	}
	add := func(name string, g float64) {
		r := 0.0
		if gT5Static > 0 {
			r = g / gT5Static
		}
		t.Rows = append(t.Rows, []string{name, f1(g), f2(r)})
	}
	add("T5 static", gT5Static)
	add("T5 + continuous", gT5Cont)
	add("CALM + continuous", gCALMCont)
	add("E3 token pipeline", gE3)
	return t
}

// ExtensionBuffers exercises the §3.1 spike-buffer mechanism end to end:
// a burst beyond the steady plan's capacity engages reserved GPUs within
// one scheduling window.
func ExtensionBuffers() Table {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	clus := cluster.Homogeneous(gpu.V100, 16)
	eng := sim.NewEngine()
	sys, err := core.New(eng, clus, m, core.Options{
		SLO: defaultSLO, Batch: 8, ReplanInterval: 2, BufferGPUs: 4,
	})
	t := Table{
		ID:      "extension-buffers",
		Title:   "Spike buffer resources (4 of 16 V100s reserved)",
		Columns: []string{"phase", "offered (req/s)", "plan GPUs", "buffers active"},
		Notes:   "extension of §3.1: overload engages the reserve at the next window, recovery releases it",
	}
	if err != nil {
		return t
	}
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		return t
	}
	sys.StartAutoReplan()
	gen := workload.NewGenerator(workload.Mix(0.8), 291)

	feed := func(from, to, rate float64) {
		interval := 8 / rate
		for at := from + interval; at < to; at += interval {
			at := at
			eng.At(at, func() { sys.Ingest(gen.Batch(8, eng.Now(), defaultSLO)) })
		}
	}
	steadyRate := sys.Plan().Goodput * 0.7
	spikeRate := sys.Plan().Goodput * 1.9

	record := func(phase string, rate float64) {
		t.Rows = append(t.Rows, []string{phase, f0(rate), itoa(sys.Plan().GPUs), boolStr(sys.BuffersActive())})
	}

	eng.SetEventLimit(100_000_000)
	feed(0, 2, steadyRate)
	if err := eng.Run(2.1); err != nil {
		t.Notes += " [ABORTED: " + err.Error() + "]"
		return t
	}
	record("steady", steadyRate)

	feed(2.1, 4.1, spikeRate)
	if err := eng.Run(4.3); err != nil {
		t.Notes += " [ABORTED: " + err.Error() + "]"
		return t
	}
	record("spike", spikeRate)

	feed(4.3, 12.3, steadyRate)
	if err := eng.Run(12.5); err != nil {
		t.Notes += " [ABORTED: " + err.Error() + "]"
		return t
	}
	record("recovered", steadyRate)

	sys.StopAutoReplan()
	return t
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
