package experiments

import (
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/metrics"
	"e3/internal/model"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/workload"
)

func init() {
	register("fig16", Fig16)
	register("fig17", Fig17)
}

// Fig16 reproduces Figure 16: goodput under three easy:hard mixes. E3's
// profiler/optimizer adapt — behaving like an EE model on easy traffic and
// like the stock model on hard traffic.
func Fig16() Table {
	base := model.BERTBase()
	van := ee.NewVanilla(base)
	dee := ee.NewDeeBERT(base, 0.4)
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }

	t := Table{
		ID:      "fig16",
		Title:   "Workload adaptability: goodput per easy:hard mix (16xV100)",
		Columns: []string{"mix", "batch", "BERT-BASE", "DeeBERT", "E3"},
		Notes:   "paper: EE wins on easy mixes/small batches; stock wins on hard; E3 adapts and leads overall (up to 23% below stock at 20E/80H small batches)",
	}
	for _, mix := range []struct {
		label string
		easy  float64
	}{{"80E/20H", 0.8}, {"50E/50H", 0.5}, {"20E/80H", 0.2}} {
		dist := workload.Mix(mix.easy)
		for _, b := range []int{1, 2, 4, 8} {
			gVan := measureBaseline(mk, van, dist, b, defaultSLO, 161)
			gDee := measureBaseline(mk, dee, dist, b, defaultSLO, 161)
			gE3 := e3Goodput(mk, dee, dist, b, defaultSLO, 161, nil)
			t.Rows = append(t.Rows, []string{mix.label, itoa(b), f0(gVan), f0(gDee), f0(gE3)})
		}
	}
	return t
}

// latencyRun serves a fixed moderate load and returns the latency summary.
func latencyRun(mk func() *cluster.Cluster, m *ee.EEModel, build func(*sim.Engine, *cluster.Cluster, *scheduler.Collector) scheduler.Runner, dist workload.Dist, batch int, rate float64, seed int64) metrics.Summary {
	eng := sim.NewEngine()
	clus := mk()
	coll := scheduler.NewCollector(m.Base.NumLayers(), defaultSLO, 0)
	r := build(eng, clus, coll)
	gen := workload.NewGenerator(dist, seed)
	if _, err := serving.RunClosedLoop(eng, r, gen, batch, rate, 4.0, defaultSLO); err != nil {
		return metrics.Summary{}
	}
	return coll.Lat.Summarize()
}

// Fig17 reproduces Figure 17: latency distributions (min, quartiles, max)
// for the three systems at batch 8 on a 50:50 mix, homogeneous and
// heterogeneous clusters.
func Fig17() Table {
	base := model.BERTBase()
	van := ee.NewVanilla(base)
	dee := ee.NewDeeBERT(base, 0.4)
	dist := workload.Mix(0.5)
	const batch = 8

	t := Table{
		ID:      "fig17",
		Title:   "Latency distribution, batch 8, 50E/50H mix (ms)",
		Columns: []string{"cluster", "system", "min", "p25", "median", "p75", "max"},
		Notes:   "paper: E3 attains the lowest min/median/quartiles; only its tail (hard inputs) pays the split overhead, still within SLO",
	}
	clusters := []struct {
		label string
		mk    func() *cluster.Cluster
	}{
		{"homogeneous", func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }},
		{"heterogeneous", func() *cluster.Cluster { return cluster.PaperHeterogeneous() }},
	}
	for _, cl := range clusters {
		// Operate near the weakest system's capacity (the paper serves the
		// common sustainable load): baselines queue heavily there while E3,
		// with far more headroom, stays lightly loaded.
		rate := 0.9 * measureBaseline(cl.mk, dee, dist, batch, defaultSLO, 171)
		if rate <= 0 {
			rate = 500
		}
		rows := []struct {
			label string
			m     *ee.EEModel
			build func(*sim.Engine, *cluster.Cluster, *scheduler.Collector) scheduler.Runner
		}{
			{"BERT-BASE", van, dataParallelBuilder(van)},
			{"DeeBERT", dee, dataParallelBuilder(dee)},
			{"E3", dee, pipelineBuilder(dee, cl.mk, dist, batch)},
		}
		for _, r := range rows {
			s := latencyRun(cl.mk, r.m, r.build, dist, batch, rate, 171)
			t.Rows = append(t.Rows, []string{cl.label, r.label, ms(s.Min), ms(s.P25), ms(s.Median), ms(s.P75), ms(s.Max)})
		}
	}
	return t
}

func dataParallelBuilder(m *ee.EEModel) func(*sim.Engine, *cluster.Cluster, *scheduler.Collector) scheduler.Runner {
	return func(eng *sim.Engine, clus *cluster.Cluster, coll *scheduler.Collector) scheduler.Runner {
		devs := make([]int, clus.Size())
		for i := range devs {
			devs[i] = i
		}
		d, err := scheduler.NewDataParallel(eng, clus, m, devs, coll)
		if err != nil {
			panic(err)
		}
		return d
	}
}

func pipelineBuilder(m *ee.EEModel, mk func() *cluster.Cluster, dist workload.Dist, batch int) func(*sim.Engine, *cluster.Cluster, *scheduler.Collector) scheduler.Runner {
	plan, err := planE3(mk(), m, dist, batch, defaultSLO, nil)
	return func(eng *sim.Engine, clus *cluster.Cluster, coll *scheduler.Collector) scheduler.Runner {
		if err != nil {
			panic(err)
		}
		p, perr := scheduler.NewPipeline(eng, clus, m, plan, coll)
		if perr != nil {
			panic(perr)
		}
		return p
	}
}
