package experiments

import (
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
)

func init() { register("production", Production) }

// Production reproduces the §2.4 narrative as a table: the production
// service's four options for taming per-input compute cost. The 12-layer
// model has the best accuracy but blows the budget; the 6-layer distilled
// variant keeps accuracy but still exceeds it; the 3-layer variant meets
// the budget at ~4% accuracy loss; and the 12-layer model with early
// exits meets both — once E3 restores batching.
func Production() Table {
	const batch = 8
	dist := mix80()
	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 16) }
	clusterCost := cluster.Homogeneous(gpu.V100, 16).CostPerSecond()

	// Per-million-request dollar cost at each option's sustained goodput.
	costPerM := func(goodput float64) float64 {
		if goodput <= 0 {
			return 0
		}
		return clusterCost / goodput * 1e6
	}

	// Accuracy story from §2.4: the 12L derivative is the reference; 6L
	// met accuracy targets; 3L lost ~4%; EE on 12L stayed within 1%.
	type option struct {
		label    string
		accuracy float64
		m        *ee.EEModel
		useE3    bool
	}
	options := []option{
		{"12-layer (stock)", 92.7, ee.NewVanilla(model.BERTBase()), false},
		{"6-layer (distill+prune)", 92.0, ee.NewVanilla(model.BERTCompressed6()), false},
		{"3-layer (distill+prune)", 88.7, ee.NewVanilla(model.BERTCompressed3()), false},
		{"12-layer + EE, naive batching", 91.9, ee.NewDeeBERT(model.BERTBase(), 0.4), false},
		{"12-layer + EE, E3", 91.9, ee.NewDeeBERT(model.BERTBase(), 0.4), true},
	}

	t := Table{
		ID:      "production",
		Title:   "The §2.4 production story: per-input cost vs accuracy (16xV100, batch 8)",
		Columns: []string{"option", "accuracy (%)", "goodput (req/s)", "$ per 1M requests"},
		Notes:   "paper: compression alone either missed the compute budget (6L) or the accuracy bar (3L); EEs met both but needed E3 to batch",
	}
	for _, o := range options {
		var g float64
		if o.useE3 {
			g = e3Goodput(mk, o.m, dist, batch, defaultSLO, 321, nil)
		} else {
			g = measureBaseline(mk, o.m, dist, batch, defaultSLO, 321)
		}
		t.Rows = append(t.Rows, []string{o.label, f1(o.accuracy), f0(g), f2(costPerM(g))})
	}
	return t
}
