package experiments

import (
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/llm"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/workload"
)

func init() {
	register("fig10", Fig10)
	register("fig11", Fig11)
	register("fig12", Fig12)
}

// llmTriple measures T5 / CALM / E3 requests-per-second for one generative
// task on 4×A6000 (the paper's LLM testbed).
func llmTriple(id, title string, lengths llm.LengthDist, dist workload.Dist, seed int64, notes string) Table {
	const nGPU = 4
	spec := gpu.Get(gpu.A6000)
	avgLen := lengths.Mean()

	t := Table{
		ID:    id,
		Title: title,
		Columns: []string{"batch", "T5 (req/s)", "CALM (req/s)", "E3 (req/s)",
			"E3/T5", "CALM/T5"},
		Notes: notes,
	}
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		t5 := ee.NewVanilla(model.T5Decoder(avgLen))
		calm := ee.NewCALM(model.T5Decoder(avgLen), 0.25)

		gT5 := llm.GoodputStatic(t5, lengths, dist, b, nGPU, spec, 24, seed)
		gCALM := llm.GoodputStatic(calm, lengths, dist, b, nGPU, spec, 24, seed)

		// E3 consumes the token stream through its split pipeline: no
		// padding waste, constant batch per split. Goodput in tokens/s,
		// converted to requests/s by the mean generation length. The LLM
		// SLO is per-request generation time.
		slo := 0.100 * avgLen / 4
		gE3tokens := e3Goodput(func() *cluster.Cluster { return cluster.Homogeneous(gpu.A6000, nGPU) },
			calm, dist, b, slo, seed, nil)
		gE3 := gE3tokens / avgLen

		r1, r2 := 0.0, 0.0
		if gT5 > 0 {
			r1 = gE3 / gT5
			r2 = gCALM / gT5
		}
		t.Rows = append(t.Rows, []string{itoa(b), f1(gT5), f1(gCALM), f1(gE3), f2(r1), f2(r2)})
	}
	return t
}

// Fig10 reproduces Figure 10: WMT machine translation on T5+CALM.
func Fig10() Table {
	return llmTriple("fig10",
		"LLM translation goodput (WMT, T5/CALM/E3, 4xA6000)",
		llm.FixedLen(25), workload.WMT(), 101,
		"paper: CALM 2.84x over T5 at batch 1, diminishing with batch; E3 holds its speedup at all batches")
}

// Fig11 reproduces Figure 11: SAMSum summarization with variable-length
// outputs (average 18 tokens), where static-batch padding hurts the
// baselines and E3's token stream shines.
func Fig11() Table {
	return llmTriple("fig11",
		"LLM summarization goodput (SAMSum, avg 18 tokens, 4xA6000)",
		llm.UniformLen{Min: 6, Max: 30}, workload.SAMSum(), 111,
		"paper: E3 up to 3.8x over T5 (variable-length outputs amplify padding waste)")
}

// Fig12 reproduces Figure 12: decoder-only Llama-3.1-8B on BoolQ
// (single-token answers). The naive EE variant pays a 128K-vocab LM-head
// projection at every layer and loses even to vanilla; E3 checks exits
// only at split boundaries (the §3.4 wrapper) and wins.
func Fig12() Table {
	base := model.Llama318B()
	t := runTriple(tripleSpec{
		id:      "fig12",
		title:   "Llama-3.1-8B BoolQ goodput (single-token, 4xA6000)",
		names:   [3]string{"Llama3.1-8b", "Llama3.1-8b-EE", "E3"},
		vanilla: ee.NewVanilla(base),
		naive:   ee.NewLlamaEE(base),
		dist:    workload.BoolQ(),
		batches: []int{1, 2, 4, 8, 16, 32},
		mkCluster: func() *cluster.Cluster {
			return cluster.Homogeneous(gpu.A6000, 4)
		},
		slo:  0.5, // generation SLO for an 8B model
		seed: 121,
		e3mutate: func(cfg *optimizer.Config) {
			cfg.DisableInteriorRamps = true
		},
		notes: "paper: EE variant underperforms vanilla even at batch 1 (ramp overhead); E3 up to 1.48x over vanilla",
	})
	return t
}
