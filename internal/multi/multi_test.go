package multi

import (
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/sim"
	"e3/internal/workload"
)

func twoTenants() []Tenant {
	return []Tenant{
		{
			Name:  "ranker",
			Model: ee.NewDeeBERT(model.BERTBase(), 0.4),
			Dist:  workload.Mix(0.8),
			Rate:  4000,
			SLO:   0.1,
			Batch: 8,
		},
		{
			Name:  "vision",
			Model: ee.NewBranchyNet(model.ResNet50()),
			Dist:  workload.ImageNet(),
			Rate:  8000,
			SLO:   0.1,
			Batch: 16,
		},
	}
}

func TestPlanPartitionsDisjointly(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 24)
	allocs, err := Plan(clus, twoTenants())
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 {
		t.Fatalf("allocations = %d", len(allocs))
	}
	seen := make(map[int]string)
	totalDevs := 0
	for _, a := range allocs {
		if a.Plan.Goodput <= 0 {
			t.Errorf("tenant %s has zero-goodput plan", a.Tenant)
		}
		for _, d := range a.Devices {
			if owner, dup := seen[d]; dup {
				t.Fatalf("device %d assigned to both %s and %s", d, owner, a.Tenant)
			}
			seen[d] = a.Tenant
		}
		totalDevs += len(a.Devices)
		if len(a.Devices) != a.Plan.GPUs {
			t.Errorf("tenant %s pinned %d devices, plan says %d", a.Tenant, len(a.Devices), a.Plan.GPUs)
		}
	}
	if totalDevs > clus.Size() {
		t.Fatalf("allocated %d devices from a %d-GPU cluster", totalDevs, clus.Size())
	}
}

func TestPlanMeetsEachTenantsRate(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 24)
	tenants := twoTenants()
	allocs, err := Plan(clus, tenants)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range allocs {
		for _, tn := range tenants {
			if tn.Name == a.Tenant && a.Plan.Goodput < tn.Rate {
				t.Errorf("tenant %s plan sustains %v < demanded %v", tn.Name, a.Plan.Goodput, tn.Rate)
			}
		}
	}
}

func TestPlanLeftoversGoToTightestTenant(t *testing.T) {
	// A roomy cluster: leftovers exist; total allocated goodput must be at
	// least the sum of minimal plans (the tightest tenant got a boost or
	// stayed equal).
	clus := cluster.Homogeneous(gpu.V100, 32)
	allocs, err := Plan(clus, twoTenants())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range allocs {
		if a.Plan.Goodput <= 0 {
			t.Fatal("bad plan")
		}
	}
}

func TestPlanRejectsOverload(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 4)
	ts := twoTenants()
	ts[0].Rate = 50000
	if _, err := Plan(clus, ts); err == nil {
		t.Error("impossible multi-tenant demand accepted")
	}
}

func TestPlanValidation(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 8)
	if _, err := Plan(clus, nil); err == nil {
		t.Error("empty tenant list accepted")
	}
	ts := twoTenants()
	ts[1].Name = ts[0].Name
	if _, err := Plan(clus, ts); err == nil {
		t.Error("duplicate tenant names accepted")
	}
	ts = twoTenants()
	ts[0].Name = ""
	if _, err := Plan(clus, ts); err == nil {
		t.Error("empty tenant name accepted")
	}
}

func TestDeployAndServeBothTenants(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 24)
	tenants := twoTenants()
	allocs, err := Plan(clus, tenants)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	fleet, err := Deploy(eng, clus, tenants, allocs)
	if err != nil {
		t.Fatal(err)
	}

	genR := workload.NewGenerator(workload.Mix(0.8), 61)
	genV := workload.NewGenerator(workload.ImageNet(), 62)
	for i := 0; i < 100; i++ {
		at := float64(i) * 0.002
		eng.At(at, func() {
			if err := fleet.Ingest("ranker", genR.Batch(8, eng.Now(), 10)); err != nil {
				t.Error(err)
			}
			if err := fleet.Ingest("vision", genV.Batch(16, eng.Now(), 10)); err != nil {
				t.Error(err)
			}
		})
	}
	eng.SetEventLimit(10_000_000)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	fleet.FlushAll()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}

	cr := fleet.Collector("ranker")
	cv := fleet.Collector("vision")
	if got := cr.Good.Served + cr.Violations; got != 800 {
		t.Errorf("ranker served+violated = %d, want 800", got)
	}
	if got := cv.Good.Served + cv.Violations; got != 1600 {
		t.Errorf("vision served+violated = %d, want 1600", got)
	}
	if err := fleet.Ingest("nope", nil); err == nil {
		t.Error("unknown tenant accepted")
	}
}
