// Package multi serves several early-exit models from one shared cluster —
// the multi-tenant shape of the paper's production infrastructure ("of
// several services it supports...", §2.4). A Fleet partitions devices
// across tenants by solving each tenant's minimal allocation for its
// offered load (optimizer.MinimizeGPUs semantics) and granting leftover
// capacity to the most-constrained tenant, then runs one E3 pipeline per
// tenant on disjoint devices.
package multi

import (
	"errors"
	"fmt"
	"sort"

	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/workload"
)

// Tenant is one model deployment sharing the cluster.
type Tenant struct {
	Name  string
	Model *ee.EEModel
	// Dist is the tenant's workload (used to profile exits).
	Dist workload.Dist
	// Rate is the offered load the allocation must sustain (samples/s).
	Rate float64
	// SLO and Batch follow the usual E3 meanings.
	SLO   float64
	Batch int
}

// Allocation is the outcome for one tenant.
type Allocation struct {
	Tenant  string
	Plan    optimizer.Plan
	Devices []int // indices into the shared cluster
}

// Fleet is a planned multi-tenant deployment.
type Fleet struct {
	eng    *sim.Engine
	clus   *cluster.Cluster
	allocs []Allocation
	pipes  map[string]*scheduler.Pipeline
	colls  map[string]*scheduler.Collector
}

// Plan partitions the cluster across tenants. Tenants are served in
// descending rate-demand order; each receives the minimal device set
// sustaining its rate, drawn from the remaining inventory. Leftover
// devices go to the tenant with the least headroom. It fails if any
// tenant cannot be satisfied.
func Plan(clus *cluster.Cluster, tenants []Tenant) ([]Allocation, error) {
	if len(tenants) == 0 {
		return nil, errors.New("multi: no tenants")
	}
	names := make(map[string]bool)
	for _, t := range tenants {
		if t.Name == "" {
			return nil, errors.New("multi: tenant with empty name")
		}
		if names[t.Name] {
			return nil, fmt.Errorf("multi: duplicate tenant %q", t.Name)
		}
		names[t.Name] = true
	}

	// Hardest demands first so they get first pick of the inventory.
	order := make([]Tenant, len(tenants))
	copy(order, tenants)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Rate > order[j].Rate })

	remaining := clus.Counts()
	var allocs []Allocation
	for _, t := range order {
		sub := clusterFromCounts(remaining, clus)
		prof := profile.FromDist(t.Model, t.Dist, 8000, 1)
		cfg := optimizer.Config{
			Model: t.Model, Profile: prof, Batch: t.Batch, Cluster: sub,
			SLO: t.SLO, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
		}
		plan, err := optimizer.MinimizeGPUs(cfg, t.Rate)
		if err != nil {
			return nil, fmt.Errorf("multi: tenant %q: %w", t.Name, err)
		}
		for _, s := range plan.Splits {
			remaining[s.Kind] -= s.Replicas
		}
		allocs = append(allocs, Allocation{Tenant: t.Name, Plan: plan})
	}

	// Grant leftovers to the tenant with the least headroom (plan goodput
	// closest to its demanded rate), by replanning it on its devices plus
	// everything left.
	if total(remaining) > 0 {
		worst, worstHeadroom := -1, 0.0
		for i, a := range allocs {
			head := a.Plan.Goodput / rateOf(order, a.Tenant)
			if worst == -1 || head < worstHeadroom {
				worst, worstHeadroom = i, head
			}
		}
		t := tenantOf(order, allocs[worst].Tenant)
		pool := make(map[gpu.Kind]int, len(remaining))
		for k, n := range remaining {
			pool[k] = n
		}
		for _, s := range allocs[worst].Plan.Splits {
			pool[s.Kind] += s.Replicas
		}
		sub := clusterFromCounts(pool, clus)
		prof := profile.FromDist(t.Model, t.Dist, 8000, 1)
		cfg := optimizer.Config{
			Model: t.Model, Profile: prof, Batch: t.Batch, Cluster: sub,
			SLO: t.SLO, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
		}
		if plan, err := optimizer.MaximizeGoodput(cfg); err == nil && plan.Goodput > allocs[worst].Plan.Goodput {
			allocs[worst].Plan = plan
		}
	}

	// Pin concrete devices, disjointly, in allocation order.
	used := make(map[int]bool)
	for i := range allocs {
		devs, err := pinDevices(clus, allocs[i].Plan, used)
		if err != nil {
			return nil, fmt.Errorf("multi: pinning %q: %w", allocs[i].Tenant, err)
		}
		allocs[i].Devices = devs
	}
	return allocs, nil
}

// rateOf finds a tenant's demanded rate.
func rateOf(ts []Tenant, name string) float64 {
	for _, t := range ts {
		if t.Name == name {
			return t.Rate
		}
	}
	return 1
}

func tenantOf(ts []Tenant, name string) Tenant {
	for _, t := range ts {
		if t.Name == name {
			return t
		}
	}
	return Tenant{}
}

func total(counts map[gpu.Kind]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// clusterFromCounts materializes a sub-cluster with the given inventory,
// inheriting the parent topology.
func clusterFromCounts(counts map[gpu.Kind]int, parent *cluster.Cluster) *cluster.Cluster {
	sub := cluster.New(counts, 2)
	sub.Topology = parent.Topology
	return sub
}

// pinDevices picks concrete unused device indices per split kind.
func pinDevices(clus *cluster.Cluster, plan optimizer.Plan, used map[int]bool) ([]int, error) {
	var out []int
	for _, s := range plan.Splits {
		need := s.Replicas
		for _, idx := range clus.OfKind(s.Kind) {
			if need == 0 {
				break
			}
			if used[idx] {
				continue
			}
			used[idx] = true
			out = append(out, idx)
			need--
		}
		if need > 0 {
			return nil, fmt.Errorf("short %d %s devices", need, s.Kind)
		}
	}
	return out, nil
}

// Deploy binds allocations to pipelines on one engine.
func Deploy(eng *sim.Engine, clus *cluster.Cluster, tenants []Tenant, allocs []Allocation) (*Fleet, error) {
	f := &Fleet{
		eng: eng, clus: clus, allocs: allocs,
		pipes: make(map[string]*scheduler.Pipeline),
		colls: make(map[string]*scheduler.Collector),
	}
	used := make(map[int]bool)
	for _, a := range allocs {
		t := tenantOf(tenants, a.Tenant)
		if t.Name == "" {
			return nil, fmt.Errorf("multi: allocation for unknown tenant %q", a.Tenant)
		}
		// Build a view restricted to this tenant's devices so pipelines
		// cannot double-book. Devices keep their identity via the subset
		// construction below.
		sub := &cluster.Cluster{Topology: clus.Topology}
		for _, idx := range a.Devices {
			if used[idx] {
				return nil, fmt.Errorf("multi: device %d double-booked", idx)
			}
			used[idx] = true
			sub.Devices = append(sub.Devices, clus.Devices[idx])
		}
		coll := scheduler.NewCollector(t.Model.Base.NumLayers(), t.SLO, eng.Now())
		pipe, err := scheduler.NewPipeline(eng, sub, t.Model, a.Plan, coll)
		if err != nil {
			return nil, fmt.Errorf("multi: tenant %q: %w", a.Tenant, err)
		}
		f.pipes[a.Tenant] = pipe
		f.colls[a.Tenant] = coll
	}
	return f, nil
}

// ServingTenant is one tenant's full serving stack on a shared engine:
// the dynamic batcher front door, the pipeline it dispatches to, and the
// collector (with a lifecycle ledger attached) the pipeline reports into.
// This is the multi-tenant partitioning promoted into the serving path —
// the fleet tier builds one of these per (replica, tenant).
type ServingTenant struct {
	Spec    Tenant
	Alloc   Allocation
	Batcher *serving.Batcher
	Pipe    *scheduler.Pipeline
	Coll    *scheduler.Collector
}

// slackFrac is the SLO headroom the batcher reserves (paper: 20%), the
// same value every E3 experiment uses.
const slackFrac = 0.2

// DeployServing binds allocations to complete serving stacks on one
// engine: per tenant, a collector with a sampled conservation ledger
// (auditStride ≤ 1 = exhaustive), a pipeline restricted to the tenant's
// pinned devices, and a dynamic batcher in front. All tenants share the
// given batch pool — legal because they share one event loop; the pool,
// like the engine, is owned by that loop (a nil pool disables recycling).
func DeployServing(eng *sim.Engine, clus *cluster.Cluster, tenants []Tenant, allocs []Allocation, auditStride int64, pool *workload.BatchPool) ([]ServingTenant, error) {
	out := make([]ServingTenant, 0, len(allocs))
	used := make(map[int]bool)
	for _, a := range allocs {
		t := tenantOf(tenants, a.Tenant)
		if t.Name == "" {
			return nil, fmt.Errorf("multi: allocation for unknown tenant %q", a.Tenant)
		}
		sub := &cluster.Cluster{Topology: clus.Topology}
		for _, idx := range a.Devices {
			if used[idx] {
				return nil, fmt.Errorf("multi: device %d double-booked", idx)
			}
			used[idx] = true
			sub.Devices = append(sub.Devices, clus.Devices[idx])
		}
		coll := scheduler.NewCollector(t.Model.Base.NumLayers(), t.SLO, eng.Now())
		coll.Audit = audit.NewSampledLedger(auditStride)
		pipe, err := scheduler.NewPipeline(eng, sub, t.Model, a.Plan, coll)
		if err != nil {
			return nil, fmt.Errorf("multi: tenant %q: %w", a.Tenant, err)
		}
		pipe.SetPool(pool)
		b := serving.NewBatcher(eng, pipe, t.Batch, a.Plan.Latency, slackFrac)
		b.SetPool(pool)
		out = append(out, ServingTenant{Spec: t, Alloc: a, Batcher: b, Pipe: pipe, Coll: coll})
	}
	return out, nil
}

// Ingest routes a batch to a tenant's pipeline.
func (f *Fleet) Ingest(tenant string, batch []workload.Sample) error {
	p, ok := f.pipes[tenant]
	if !ok {
		return fmt.Errorf("multi: unknown tenant %q", tenant)
	}
	p.Ingest(batch)
	return nil
}

// Collector exposes a tenant's stats.
func (f *Fleet) Collector(tenant string) *scheduler.Collector { return f.colls[tenant] }

// FlushAll drains every tenant's merge queues.
func (f *Fleet) FlushAll() {
	for _, p := range f.pipes {
		p.FlushAll()
	}
}

// Allocations returns the planned partitioning.
func (f *Fleet) Allocations() []Allocation { return f.allocs }
