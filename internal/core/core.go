// Package core is E3's public face: it wires the online batch-profile
// estimator (§3.1), the DP optimizer (§3.2) and the heterogeneity-aware
// model-parallel scheduler (§3.3) into one serving system, re-planning
// every scheduling window and reacting to drift between predicted and
// observed exit behaviour.
//
// Typical use:
//
//	eng := sim.NewEngine()
//	sys, _ := core.New(eng, clus, ee.NewDeeBERT(model.BERTBase(), 0.4), core.Options{
//	    SLO: 0.100, Batch: 8,
//	})
//	_ = sys.Bootstrap(workload.Mix(0.8))
//	sys.StartAutoReplan()
//	... feed batches via sys.Ingest ...
package core

import (
	"errors"
	"fmt"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/forecast"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/workload"
)

// Options configures an E3 system.
type Options struct {
	// SLO is the end-to-end latency bound in seconds (required).
	SLO float64
	// SlackFrac reserves SLO headroom; the paper uses 20% (default 0.2).
	SlackFrac float64
	// Batch is B0, the constant batch size (required).
	Batch int
	// ReplanInterval is the scheduling window; the paper re-runs the
	// optimizer every 2 minutes (default 120 s).
	ReplanInterval float64
	// DriftThreshold re-plans early when the observed profile departs
	// from the prediction by more than this survival gap (default 0.15).
	DriftThreshold float64
	// DisableModelParallel and DisablePipelining run the §5.8 ablations.
	DisableModelParallel bool
	DisablePipelining    bool
	// UseExitWrapper disables unproductive interior ramps (§3.4).
	UseExitWrapper bool
	// BufferGPUs holds back this many devices from steady-state plans;
	// they join the cluster when a window shows overload and are released
	// when load normalizes (§3.1's spike buffer resources).
	BufferGPUs int
	// OverloadBadFrac and RecoverBadFrac are the per-window bad-outcome
	// fractions that engage and release the buffers (defaults 2% / 0.5%).
	OverloadBadFrac, RecoverBadFrac float64
	// ForecastMethod selects ARIMA (default) or persistence.
	ForecastMethod forecast.Method
	// BootstrapSamples sizes the offline profile estimate (default 8000).
	BootstrapSamples int
	// Seed drives bootstrap sampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.SlackFrac == 0 {
		o.SlackFrac = 0.2
	}
	if o.ReplanInterval == 0 {
		o.ReplanInterval = 120
	}
	if o.DriftThreshold == 0 {
		o.DriftThreshold = 0.15
	}
	if o.BootstrapSamples == 0 {
		o.BootstrapSamples = 8000
	}
	if o.OverloadBadFrac == 0 {
		o.OverloadBadFrac = 0.02
	}
	if o.RecoverBadFrac == 0 {
		o.RecoverBadFrac = 0.005
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// System is a running E3 deployment.
type System struct {
	eng   *sim.Engine
	clus  *cluster.Cluster
	model *ee.EEModel
	opts  Options

	est  *forecast.Estimator
	coll *scheduler.Collector
	pipe *scheduler.Pipeline
	plan optimizer.Plan

	predicted profile.Batch
	replans   int
	started   bool
	// buffersActive expands plans onto the reserved buffer devices.
	buffersActive bool
}

// New assembles an (un-bootstrapped) system.
func New(eng *sim.Engine, clus *cluster.Cluster, m *ee.EEModel, opts Options) (*System, error) {
	opts = opts.withDefaults()
	if eng == nil || clus == nil || m == nil {
		return nil, errors.New("core: nil engine, cluster or model")
	}
	if opts.SLO <= 0 {
		return nil, errors.New("core: SLO required")
	}
	if opts.Batch < 1 {
		return nil, errors.New("core: batch required")
	}
	est := forecast.NewEstimator(m.Base.NumLayers())
	est.Method = opts.ForecastMethod
	return &System{
		eng: eng, clus: clus, model: m, opts: opts,
		est:  est,
		coll: scheduler.NewCollector(m.Base.NumLayers(), opts.SLO, eng.Now()),
	}, nil
}

// Bootstrap profiles the workload offline, plans, and builds the pipeline.
func (s *System) Bootstrap(dist workload.Dist) error {
	prof := profile.FromDist(s.model, dist, s.opts.BootstrapSamples, s.opts.Seed)
	return s.applyProfile(prof)
}

// BootstrapWithProfile plans directly from a known profile (used by
// experiments that inject prediction error, §5.8.3).
func (s *System) BootstrapWithProfile(prof profile.Batch) error {
	return s.applyProfile(prof)
}

func (s *System) applyProfile(prof profile.Batch) error {
	plan, err := optimizer.MaximizeGoodput(s.config(prof))
	if err != nil {
		return fmt.Errorf("core: planning failed: %w", err)
	}
	pipe, err := scheduler.NewPipeline(s.eng, s.clus, s.model, plan, s.coll)
	if err != nil {
		return fmt.Errorf("core: binding plan: %w", err)
	}
	s.predicted = prof
	s.plan = plan
	s.pipe = pipe
	return nil
}

// planCluster is the device pool the next plan may use: the full cluster
// when buffers are engaged, otherwise the cluster minus the reserve.
func (s *System) planCluster() *cluster.Cluster {
	if s.opts.BufferGPUs <= 0 || s.buffersActive {
		return s.clus
	}
	n := s.clus.Size() - s.opts.BufferGPUs
	if n < 1 {
		n = 1
	}
	return s.clus.Subset(n)
}

func (s *System) config(prof profile.Batch) optimizer.Config {
	return optimizer.Config{
		Model:                s.model,
		Profile:              prof,
		Batch:                s.opts.Batch,
		Cluster:              s.planCluster(),
		SLO:                  s.opts.SLO,
		SlackFrac:            s.opts.SlackFrac,
		MinExitFrac:          optimizer.DefaultMinExitFrac,
		Pipelining:           !s.opts.DisablePipelining,
		ModelParallel:        !s.opts.DisableModelParallel,
		DisableInteriorRamps: s.opts.UseExitWrapper,
	}
}

// Ingest implements scheduler.Runner.
func (s *System) Ingest(batch []workload.Sample) {
	if s.pipe == nil {
		panic("core: Ingest before Bootstrap")
	}
	s.pipe.Ingest(batch)
}

// Collector implements scheduler.Runner.
func (s *System) Collector() *scheduler.Collector { return s.coll }

// FlushAll drains partial merge queues (end of run).
func (s *System) FlushAll() {
	if s.pipe != nil {
		s.pipe.FlushAll()
	}
}

// Plan returns the active plan.
func (s *System) Plan() optimizer.Plan { return s.plan }

// Replans reports how many times the system rebuilt its pipeline.
func (s *System) Replans() int { return s.replans }

// PredictedProfile returns the profile behind the active plan.
func (s *System) PredictedProfile() profile.Batch { return s.predicted }

// StartAutoReplan schedules the per-window control loop: observe the
// window's exit histogram, feed the estimator, forecast the next window,
// and re-plan. Between windows, a drift check re-plans early if the
// observed profile has departed sharply from the prediction (§3.1).
// The loop reschedules itself indefinitely; call StopAutoReplan before
// draining the engine with RunAll, or bound the run with Engine.Run.
func (s *System) StartAutoReplan() {
	if s.started {
		return
	}
	s.started = true
	s.scheduleWindow()
}

// StopAutoReplan halts the control loop after its next firing.
func (s *System) StopAutoReplan() { s.started = false }

func (s *System) scheduleWindow() {
	s.eng.After(s.opts.ReplanInterval, func() {
		if !s.started {
			return
		}
		s.windowTick()
		s.scheduleWindow()
	})
	// Mid-window drift check.
	s.eng.After(s.opts.ReplanInterval/2, func() {
		if !s.started {
			return
		}
		obs := s.coll.ObservedProfile()
		if obs.MaxAbsDiff(s.predicted) > s.opts.DriftThreshold {
			s.replanFrom(obs)
		}
	})
}

// BuffersActive reports whether the spike reserve is currently deployed.
func (s *System) BuffersActive() bool { return s.buffersActive }

func (s *System) windowTick() {
	obs := s.coll.ObservedProfile()
	bad := s.coll.WindowBadFrac()
	s.est.Observe(obs)
	s.coll.ResetWindow()
	// Spike buffers: engage on overload, release once the window is clean.
	if s.opts.BufferGPUs > 0 {
		if !s.buffersActive && bad > s.opts.OverloadBadFrac {
			s.buffersActive = true
		} else if s.buffersActive && bad < s.opts.RecoverBadFrac {
			s.buffersActive = false
		}
	}
	pred := s.est.Predict()
	s.replanFrom(pred)
}

// replanFrom recomputes the plan and swaps the pipeline. In-flight batches
// finish on the old instances; new ingests land on the new ones (the
// transparent reconfiguration §4 describes).
func (s *System) replanFrom(prof profile.Batch) {
	plan, err := optimizer.MaximizeGoodput(s.config(prof))
	if err != nil {
		// Keep serving on the old plan; a later window may succeed.
		return
	}
	pipe, err := scheduler.NewPipeline(s.eng, s.clus, s.model, plan, s.coll)
	if err != nil {
		return
	}
	s.predicted = prof
	s.plan = plan
	s.pipe = pipe
	s.replans++
}
