package core

import (
	"testing"

	"e3/internal/workload"
)

func TestBufferGPUsReservedInSteadyState(t *testing.T) {
	_, sys := newSys(t, Options{BufferGPUs: 4})
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	if got := sys.Plan().GPUs; got > 12 {
		t.Errorf("steady-state plan uses %d GPUs, want ≤ 12 (4 reserved)", got)
	}
	if sys.BuffersActive() {
		t.Error("buffers active at bootstrap")
	}
}

func TestBufferGPUsEngageUnderOverload(t *testing.T) {
	eng, sys := newSys(t, Options{BufferGPUs: 4, ReplanInterval: 1.0})
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	steady := sys.Plan().GPUs
	sys.StartAutoReplan()

	// Offer well beyond the reduced plan's capacity so the window shows
	// violations; the next tick must pull in the reserve.
	rate := sys.Plan().Goodput * 1.8
	gen := workload.NewGenerator(workload.Mix(0.8), 9)
	interval := 8 / rate
	for at := interval; at < 3.0; at += interval {
		at := at
		eng.At(at, func() { sys.Ingest(gen.Batch(8, eng.Now(), 0.1)) })
	}
	eng.SetEventLimit(50_000_000)
	if err := eng.Run(3.2); err != nil {
		t.Fatal(err)
	}
	if !sys.BuffersActive() {
		t.Fatal("overload did not engage the buffer GPUs")
	}
	if got := sys.Plan().GPUs; got <= steady {
		t.Errorf("overload plan uses %d GPUs, want more than steady %d", got, steady)
	}

	// Let the system drain with no further load: buffers release.
	sys.StopAutoReplan()
	// Run two clean windows manually.
	sys.Collector().ResetWindow()
	for i := 0; i < 100; i++ {
		sys.Collector().Complete(workload.Sample{Arrival: eng.Now(), Deadline: eng.Now() + 1}, eng.Now(), 12)
	}
	sys.windowTick()
	if sys.BuffersActive() {
		t.Error("clean window did not release the buffers")
	}
}

func TestWindowBadFracDrivesDetector(t *testing.T) {
	_, sys := newSys(t, Options{BufferGPUs: 2})
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	c := sys.Collector()
	// 10% violations in this window.
	for i := 0; i < 90; i++ {
		c.Complete(workload.Sample{Deadline: 10}, 1, 12)
	}
	for i := 0; i < 10; i++ {
		c.Complete(workload.Sample{Deadline: 0.5}, 1, 12)
	}
	if got := c.WindowBadFrac(); got < 0.09 || got > 0.11 {
		t.Fatalf("window bad frac = %v, want ~0.10", got)
	}
	sys.windowTick()
	if !sys.BuffersActive() {
		t.Error("10% bad window did not engage buffers")
	}
}
