package core

import (
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/forecast"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/profile"
	"e3/internal/sim"
	"e3/internal/workload"
)

func newSys(t *testing.T, opts Options) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	clus := cluster.Homogeneous(gpu.V100, 16)
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	if opts.SLO == 0 {
		opts.SLO = 0.1
	}
	if opts.Batch == 0 {
		opts.Batch = 8
	}
	sys, err := New(eng, clus, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	clus := cluster.Homogeneous(gpu.V100, 4)
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	if _, err := New(nil, clus, m, Options{SLO: 0.1, Batch: 8}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(eng, clus, m, Options{Batch: 8}); err == nil {
		t.Error("zero SLO accepted")
	}
	if _, err := New(eng, clus, m, Options{SLO: 0.1}); err == nil {
		t.Error("zero batch accepted")
	}
}

func TestBootstrapAndServe(t *testing.T) {
	eng, sys := newSys(t, Options{})
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	if len(sys.Plan().Splits) == 0 {
		t.Fatal("no plan after bootstrap")
	}
	gen := workload.NewGenerator(workload.Mix(0.8), 1)
	for i := 0; i < 100; i++ {
		at := float64(i) * sys.Plan().CycleTime
		eng.At(at, func() { sys.Ingest(gen.Batch(8, eng.Now(), 10)) })
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	sys.FlushAll()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	c := sys.Collector()
	if got := c.Good.Served + c.Violations; got != 800 {
		t.Fatalf("served+violated = %d, want 800", got)
	}
}

func TestIngestBeforeBootstrapPanics(t *testing.T) {
	_, sys := newSys(t, Options{})
	defer func() {
		if recover() == nil {
			t.Error("Ingest before Bootstrap did not panic")
		}
	}()
	sys.Ingest(workload.NewGenerator(workload.Mix(0.8), 2).Batch(8, 0, 1))
}

func TestAutoReplanWindows(t *testing.T) {
	eng, sys := newSys(t, Options{ReplanInterval: 1.0})
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	sys.StartAutoReplan()
	gen := workload.NewGenerator(workload.Mix(0.8), 3)
	// Feed steadily for 5 windows.
	for at := 0.01; at < 5.0; at += 0.01 {
		at := at
		eng.At(at, func() { sys.Ingest(gen.Batch(8, eng.Now(), 10)) })
	}
	eng.SetEventLimit(20_000_000)
	if err := eng.Run(5.1); err != nil {
		t.Fatal(err)
	}
	if sys.Replans() < 3 {
		t.Errorf("replans = %d after 5 windows, want ≥ 3", sys.Replans())
	}
}

func TestReplanAdaptsToWorkloadShift(t *testing.T) {
	// §5.4: bootstrap on easy traffic, shift to hard; the profiler must
	// move the planned first-split survival upward.
	eng, sys := newSys(t, Options{ReplanInterval: 1.0})
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	easyCut := sys.PredictedProfile().At(7)
	sys.StartAutoReplan()
	gen := workload.NewGenerator(workload.Mix(0.2), 4) // hard from the start
	for at := 0.01; at < 6.0; at += 0.01 {
		at := at
		eng.At(at, func() { sys.Ingest(gen.Batch(8, eng.Now(), 10)) })
	}
	eng.SetEventLimit(20_000_000)
	if err := eng.Run(6.1); err != nil {
		t.Fatal(err)
	}
	hardCut := sys.PredictedProfile().At(7)
	if hardCut <= easyCut {
		t.Errorf("predicted mid-model survival did not rise after shift: %v → %v", easyCut, hardCut)
	}
	if sys.Replans() == 0 {
		t.Error("no replans despite drastic workload shift")
	}
}

func TestExitWrapperOption(t *testing.T) {
	_, sys := newSys(t, Options{UseExitWrapper: true})
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	if !sys.Plan().DisabledInteriorRamps {
		t.Error("exit-wrapper plan not flagged")
	}
}

func TestForecastMethodOption(t *testing.T) {
	_, sys := newSys(t, Options{ForecastMethod: forecast.MethodPersistence})
	if sys.est.Method != forecast.MethodPersistence {
		t.Error("forecast method not applied")
	}
}

func TestBootstrapWithErrorProfile(t *testing.T) {
	// §5.8.3: planning from a deliberately wrong profile must still
	// produce a working system (correctness unaffected).
	eng, sys := newSys(t, Options{})
	good := sys2Profile(t, sys)
	if err := sys.BootstrapWithProfile(good.WithError(0.5)); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Mix(0.8), 5)
	for i := 0; i < 50; i++ {
		at := float64(i) * 0.01
		eng.At(at, func() { sys.Ingest(gen.Batch(8, eng.Now(), 10)) })
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	sys.FlushAll()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	c := sys.Collector()
	if got := c.Good.Served + c.Violations; got != 400 {
		t.Fatalf("erroneous profile lost samples: %d of 400", got)
	}
}

func sys2Profile(t *testing.T, sys *System) profile.Batch {
	t.Helper()
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	return sys.PredictedProfile()
}

func TestAblationOptionsProduceWeakerPlans(t *testing.T) {
	_, full := newSys(t, Options{})
	if err := full.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	_, noPipe := newSys(t, Options{DisablePipelining: true})
	if err := noPipe.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	_, noMP := newSys(t, Options{DisableModelParallel: true})
	if err := noMP.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	if noPipe.Plan().Goodput >= full.Plan().Goodput {
		t.Errorf("no-pipelining plan %v not below full %v", noPipe.Plan().Goodput, full.Plan().Goodput)
	}
	if noMP.Plan().Goodput >= full.Plan().Goodput {
		t.Errorf("no-MP plan %v not below full %v", noMP.Plan().Goodput, full.Plan().Goodput)
	}
	if noMP.Plan().ModelParallel {
		t.Error("no-MP plan mislabelled")
	}
}

func TestStopAutoReplanHaltsLoop(t *testing.T) {
	eng, sys := newSys(t, Options{ReplanInterval: 1.0})
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		t.Fatal(err)
	}
	sys.StartAutoReplan()
	sys.StopAutoReplan()
	// With the loop stopped, the engine must drain completely.
	eng.SetEventLimit(1_000_000)
	if err := eng.RunAll(); err != nil {
		t.Fatalf("engine did not drain after StopAutoReplan: %v", err)
	}
	if sys.Replans() != 0 {
		t.Errorf("replans = %d after immediate stop", sys.Replans())
	}
}
