package simnet

import (
	"math"
	"testing"
)

func TestTransferTimeZeroBytes(t *testing.T) {
	if got := Ethernet10G.TransferTime(0); got != 0 {
		t.Errorf("zero-byte transfer = %v, want 0", got)
	}
}

func TestTransferTimeLinear(t *testing.T) {
	l := Ethernet10G
	t1 := l.TransferTime(1e6)
	t2 := l.TransferTime(2e6)
	// Subtracting latency, time should double exactly.
	if got := (t2 - l.Latency) / (t1 - l.Latency); math.Abs(got-2) > 1e-9 {
		t.Errorf("bandwidth term not linear: ratio %v", got)
	}
}

func TestEthernetSlowerThanPCIe(t *testing.T) {
	bytes := 6.3e6 // one BERT batch of 16 activations
	if PCIe.TransferTime(bytes) >= Ethernet10G.TransferTime(bytes) {
		t.Error("PCIe should be faster than 10G Ethernet")
	}
	// A 6.3 MB activation batch over 10G Ethernet is milliseconds — the
	// overhead E3's pipelining must hide.
	if got := Ethernet10G.TransferTime(bytes); got < 3e-3 || got > 10e-3 {
		t.Errorf("ethernet transfer of %v bytes = %v s, want single-digit ms", bytes, got)
	}
}

func TestTopologyBetween(t *testing.T) {
	top := Default()
	if got := top.Between(3, 3); got.Name != "pcie" {
		t.Errorf("same-machine link = %q, want pcie", got.Name)
	}
	if got := top.Between(0, 1); got.Name != "eth10g" {
		t.Errorf("cross-machine link = %q, want eth10g", got.Name)
	}
}

func TestWorstCase(t *testing.T) {
	if got := Default().WorstCase(); got.Name != "eth10g" {
		t.Errorf("worst case = %q, want eth10g", got.Name)
	}
}

func TestZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-bandwidth link did not panic")
		}
	}()
	(Link{Name: "bad"}).TransferTime(1)
}
