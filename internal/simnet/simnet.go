// Package simnet models the cluster interconnect: GPUs on one server share
// a PCIe bus; servers are joined by 10 Gbps Ethernet (the paper's testbed,
// §5 Experimental Setup). Transfer time is latency + bytes/bandwidth.
package simnet

import "fmt"

// Link is a point-to-point transfer path.
type Link struct {
	// BandwidthBps is usable bandwidth in bytes per second.
	BandwidthBps float64
	// Latency is the fixed per-transfer setup cost in seconds.
	Latency float64
	Name    string
}

// The paper's two interconnects. PCIe 3.0 x16 delivers ~12 GB/s usable and
// is shared within a server; 10 Gbps Ethernet delivers ~1.17 GB/s usable
// after framing.
var (
	PCIe = Link{BandwidthBps: 12e9, Latency: 5e-6, Name: "pcie"}
	// Ethernet10G models the paper's inter-server links.
	Ethernet10G = Link{BandwidthBps: 1.17e9, Latency: 50e-6, Name: "eth10g"}
	// Loopback models a split boundary placed on the same GPU (no copy).
	Loopback = Link{BandwidthBps: 900e9, Latency: 0, Name: "local"}
)

// TransferTime returns the seconds needed to move n bytes over the link.
func (l Link) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	if l.BandwidthBps <= 0 {
		panic(fmt.Sprintf("simnet: link %q has no bandwidth", l.Name))
	}
	return l.Latency + bytes/l.BandwidthBps
}

// Topology answers "what link joins these two devices" given their machine
// placement. Machine indices identify servers; equal indices share PCIe.
type Topology struct {
	Intra Link // link between GPUs on the same machine
	Inter Link // link between GPUs on different machines
}

// Default is the paper's testbed topology.
func Default() Topology {
	return Topology{Intra: PCIe, Inter: Ethernet10G}
}

// Between returns the link joining devices on machines a and b.
func (t Topology) Between(a, b int) Link {
	if a == b {
		return t.Intra
	}
	return t.Inter
}

// WorstCase returns the slower of the two links; the optimizer uses it when
// placement is not yet decided (conservative planning, so realized comm can
// only be cheaper than planned).
func (t Topology) WorstCase() Link {
	if t.Intra.BandwidthBps < t.Inter.BandwidthBps {
		return t.Intra
	}
	return t.Inter
}
