package scheduler

import (
	"math"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/exec"
	"e3/internal/optimizer"
	"e3/internal/sim"
	"e3/internal/workload"
)

// Serial executes an E3 plan with model parallelism turned OFF (§5.8.7):
// the cluster runs split phases globally. Every device takes a fresh batch
// through split 1; a barrier and survivor exchange follow; the (fewer)
// merged batches of split 2 run while leftover devices idle; and so on.
// Each phase lasts as long as its slowest wave, which is the utilization
// loss the model-parallel pipeline removes.
type Serial struct {
	eng     *sim.Engine
	clus    *cluster.Cluster
	model   *ee.EEModel
	plan    optimizer.Plan
	coll    *Collector
	pending [][]workload.Sample
	running bool
	// draining forces partial rounds after FlushAll so end-of-run leftovers
	// smaller than a full round still execute instead of vanishing.
	draining bool
}

const serialBarrier = 1e-3

// NewSerial builds the ablation runner.
func NewSerial(eng *sim.Engine, clus *cluster.Cluster, m *ee.EEModel, plan optimizer.Plan, coll *Collector) *Serial {
	s := &Serial{eng: eng, clus: clus, model: plan.ExecModel(m), plan: plan, coll: coll}
	for _, d := range clus.Devices {
		coll.Util.Register(d.ID)
		coll.Flame.Register(d.ID, string(d.Kind))
	}
	return s
}

// Collector implements Runner.
func (s *Serial) Collector() *Collector { return s.coll }

// Ingest implements Runner: batches accumulate until a full round (one
// batch per device) is available, then the round executes phase by phase.
func (s *Serial) Ingest(batch []workload.Sample) {
	if len(batch) == 0 {
		return
	}
	s.pending = append(s.pending, batch)
	s.tryRound(false)
}

// Flush runs a final partial round.
func (s *Serial) Flush() { s.tryRound(true) }

// FlushAll implements the serving layer's end-of-run Flusher hook: it
// keeps forcing partial rounds until the pending queue is empty, so no
// ingested sample is silently abandoned.
func (s *Serial) FlushAll() {
	s.draining = true
	s.tryRound(true)
}

func (s *Serial) tryRound(force bool) {
	g := s.clus.Size()
	if s.running || len(s.pending) == 0 {
		return
	}
	if !force && len(s.pending) < g {
		return
	}
	n := len(s.pending)
	if n > g {
		n = g
	}
	round := s.pending[:n]
	s.pending = s.pending[n:]
	s.running = true
	s.runRound(round)
}

// runRound executes one global phase-synchronized round.
func (s *Serial) runRound(round [][]workload.Sample) {
	g := s.clus.Size()
	b0 := s.plan.Batch
	// Pool all samples; phase i re-forms batches of B0 from survivors.
	var pool []workload.Sample
	for _, b := range round {
		pool = append(pool, b...)
	}
	now := s.eng.Now()
	elapsed := 0.0
	for si, sp := range s.plan.Splits {
		if len(pool) == 0 {
			break
		}
		nb := (len(pool) + b0 - 1) / b0
		waves := (nb + g - 1) / g
		spec := s.clus.Devices[0].Spec()
		var phaseDur float64
		var survivors []workload.Sample
		for i := 0; i < nb; i++ {
			lo, hi := i*b0, (i+1)*b0
			if hi > len(pool) {
				hi = len(pool)
			}
			for _, smp := range pool[lo:hi] {
				s.coll.Audit.Dispatched(smp.ID, now+elapsed, si, i%g)
				s.coll.Attr.Dispatched(smp, now+elapsed, si)
			}
			res := exec.RunSplit(s.model, sp.From, sp.To, pool[lo:hi], spec, s.clus.Devices[i%g].Slowdown)
			// No pipelining: the boundary handoff sits on the critical path.
			if d := res.Duration + res.HandoffDelay; d > phaseDur {
				phaseDur = d
			}
			dev := s.clus.Devices[i%g]
			s.coll.Util.AddBusy(dev.ID, now+elapsed, res.Duration)
			s.coll.Trace.Execute(dev.ID, string(dev.Kind), si, hi-lo, now+elapsed, now+elapsed+res.Duration)
			s.coll.Attr.Executed(si, pool[lo:hi], now+elapsed, now+elapsed+res.Duration)
			s.coll.Flame.Execute(dev.ID, string(dev.Kind), s.model.Name, si, sp.From, sp.To,
				now+elapsed, now+elapsed+res.Duration, res.RampTime, res.PadTime)
			// Every completion of this batch lands at the end of the phase;
			// one event finishes them all in slice order, matching the
			// per-sample events this replaces.
			if comps := res.Completions; len(comps) > 0 {
				s.eng.After(elapsed+res.Duration+res.HandoffDelay, func() {
					done := s.eng.Now()
					for _, c := range comps {
						s.coll.Complete(c.Sample, done, c.ExitLayer)
					}
				})
			}
			survivors = append(survivors, res.Survivors...)
		}
		phaseDur *= float64(waves)
		elapsed += phaseDur
		if si < len(s.plan.Splits)-1 {
			elapsed += serialBarrier + sp.CommTime
		}
		pool = survivors
	}
	if math.IsNaN(elapsed) || elapsed < 0 {
		elapsed = 0
	}
	s.eng.After(elapsed, func() {
		s.running = false
		s.tryRound(s.draining)
	})
}
