package scheduler

import (
	"math"
	"testing"

	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/sim"
	"e3/internal/workload"
)

func testPlan(t *testing.T, clus *cluster.Cluster, batch int, easyFrac float64) (optimizer.Plan, *ee.EEModel) {
	t.Helper()
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	prof := profile.FromDist(m, workload.Mix(easyFrac), 8000, 1)
	cfg := optimizer.Config{
		Model: m, Profile: prof, Batch: batch, Cluster: clus,
		SLO: 0.1, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
	}
	p, err := optimizer.MaximizeGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

// feed ingests n full batches at the given interval and runs to completion.
func feed(t *testing.T, eng *sim.Engine, r Runner, gen *workload.Generator, batch, n int, interval, slo float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		at := float64(i) * interval
		eng.At(at, func() {
			r.Ingest(gen.Batch(batch, eng.Now(), slo))
		})
	}
	eng.SetEventLimit(5_000_000)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineServesEverySample(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 8)
	plan, m := testPlan(t, clus, 8, 0.8)
	eng := sim.NewEngine()
	coll := NewCollector(12, 0.1, 0)
	coll.Audit = audit.NewLedger()
	p, err := NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Mix(0.8), 7)
	gen.SetAudit(coll.Audit)
	const batches = 50
	feed(t, eng, p, gen, 8, batches, plan.CycleTime/float64(len(plan.Splits)), 10 /* loose SLO */)
	p.FlushAll()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	got := coll.Good.Served + coll.Violations
	if got != batches*8 {
		t.Fatalf("served+violated = %d, want %d (no sample may vanish)", got, batches*8)
	}
	if coll.Lat.Count() != batches*8 {
		t.Fatalf("latency samples = %d, want %d", coll.Lat.Count(), batches*8)
	}
	if p.PendingMerge() != 0 {
		t.Errorf("merge queues not drained: %d", p.PendingMerge())
	}
	if err := coll.AuditReport().Err(); err != nil {
		t.Error(err)
	}
}

func TestPipelineThroughputNearPlan(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 16)
	plan, m := testPlan(t, clus, 8, 0.8)
	eng := sim.NewEngine()
	coll := NewCollector(12, 10, 0)
	p, err := NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Mix(0.8), 8)
	// Offer at the planned rate for a sustained period.
	interval := 8.0 / plan.Goodput
	feed(t, eng, p, gen, 8, 3000, interval, 10)
	p.FlushAll()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	got := coll.Good.Goodput()
	if got < plan.Goodput*0.7 {
		t.Errorf("achieved %v samples/s, plan predicted %v (want ≥ 70%%)", got, plan.Goodput)
	}
}

func TestPipelineEarlySamplesFinishFaster(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 8)
	plan, m := testPlan(t, clus, 8, 0.8)
	if len(plan.Splits) < 2 {
		t.Skip("plan has one split; nothing to compare")
	}
	eng := sim.NewEngine()
	coll := NewCollector(12, 10, 0)
	p, err := NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	// Half trivially easy, half maximally hard: easy must beat hard on
	// median latency because they never cross the boundary.
	mix := workload.Mixture{
		Components: []workload.Dist{workload.Constant(0.05), workload.Constant(0.99)},
		Weights:    []float64{1, 1},
	}
	gen := workload.NewGenerator(mix, 9)
	feed(t, eng, p, gen, 8, 200, plan.CycleTime, 10)
	p.FlushAll()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-class latency from the exit histogram via quantiles:
	// easy exit early → the 25th percentile must sit well under the 75th.
	s := coll.Lat.Summarize()
	if s.P25 >= s.P75*0.8 {
		t.Errorf("latency quartiles too close (p25=%v p75=%v); early exits not reflected", s.P25, s.P75)
	}
}

func TestPipelineObservedProfileMatchesWorkload(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 8)
	plan, m := testPlan(t, clus, 8, 0.5)
	eng := sim.NewEngine()
	coll := NewCollector(12, 10, 0)
	p, err := NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Mix(0.5), 10)
	feed(t, eng, p, gen, 8, 1000, plan.CycleTime, 10)
	p.FlushAll()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := profile.FromDist(m, workload.Mix(0.5), 20000, 11)
	got := coll.ObservedProfile()
	// The pipeline observes exits only at split boundaries and the end,
	// so compare survival at the boundaries.
	for _, sp := range plan.Splits[:len(plan.Splits)-1] {
		w := want.After(sp.To)
		g := got.After(sp.To)
		if math.Abs(w-g) > 0.05 {
			t.Errorf("boundary %d survival: observed %v, workload %v", sp.To, g, w)
		}
	}
}

func TestPipelineStragglerExclusion(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 8)
	plan, m := testPlan(t, clus, 8, 0.8)
	// Make one replica of the first split pathologically slow.
	firstKindDevs := clus.OfKind(plan.Splits[0].Kind)
	clus.MarkStraggler(firstKindDevs[0], 4.0)
	eng := sim.NewEngine()
	coll := NewCollector(12, 10, 0)
	p, err := NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Mix(0.8), 12)
	feed(t, eng, p, gen, 8, 200, plan.CycleTime, 10)
	p.FlushAll()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if p.ExcludedInstances() == 0 {
		t.Error("straggler never excluded")
	}
	if got := coll.Good.Served + coll.Violations; got != 200*8 {
		t.Errorf("samples lost under straggler: %d of %d", got, 200*8)
	}
}

func TestPipelineInsufficientDevices(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 16)
	plan, m := testPlan(t, clus, 8, 0.8)
	tiny := cluster.Homogeneous(gpu.V100, 1)
	eng := sim.NewEngine()
	if _, err := NewPipeline(eng, tiny, m, plan, NewCollector(12, 0.1, 0)); err == nil && plan.GPUs > 1 {
		t.Error("plan bound to a cluster that cannot host it")
	}
}

func TestDataParallelVanilla(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 4)
	m := ee.NewVanilla(model.BERTBase())
	eng := sim.NewEngine()
	coll := NewCollector(12, 10, 0)
	coll.Audit = audit.NewLedger()
	devs := []int{0, 1, 2, 3}
	d, err := NewDataParallel(eng, clus, m, devs, coll)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Mix(0.8), 13)
	gen.SetAudit(coll.Audit)
	feed(t, eng, d, gen, 8, 100, 0.004, 10)
	if got := coll.Good.Served; got != 800 {
		t.Errorf("vanilla served %d, want 800", got)
	}
	if err := coll.AuditReport().Err(); err != nil {
		t.Error(err)
	}
	// All latencies identical shape: every sample runs the full model, so
	// min latency ≥ full-model time.
	full := 0.0
	spec := gpu.Get(gpu.V100)
	for _, l := range m.Base.Layers {
		full += spec.LayerTime(l.FLOPs, 8)
	}
	if coll.Lat.Min() < full {
		t.Errorf("min latency %v below full-model compute %v", coll.Lat.Min(), full)
	}
}

func TestDataParallelEEFasterAtBatch1(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 2)
	eng := sim.NewEngine()
	run := func(m *ee.EEModel) float64 {
		coll := NewCollector(12, 10, eng.Now())
		d, err := NewDataParallel(eng, clus, m, []int{0, 1}, coll)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewGenerator(workload.Mix(0.8), 14)
		start := eng.Now()
		for i := 0; i < 400; i++ {
			d.Ingest(gen.Batch(1, start, 10))
		}
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return eng.Now() - start
	}
	tEE := run(ee.NewDeeBERT(model.BERTBase(), 0.4))
	tV := run(ee.NewVanilla(model.BERTBase()))
	if tEE >= tV {
		t.Errorf("EE batch-1 makespan %v not below vanilla %v", tEE, tV)
	}
}

func TestDataParallelValidation(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 2)
	m := ee.NewVanilla(model.BERTBase())
	eng := sim.NewEngine()
	if _, err := NewDataParallel(eng, clus, m, nil, NewCollector(12, 1, 0)); err == nil {
		t.Error("no devices accepted")
	}
	if _, err := NewDataParallel(eng, clus, m, []int{5}, NewCollector(12, 1, 0)); err == nil {
		t.Error("out-of-range device accepted")
	}
}

func TestSerialSlowerThanPipeline(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 8)
	plan, m := testPlan(t, clus, 8, 0.8)
	if len(plan.Splits) < 2 {
		t.Skip("single-split plan")
	}
	const batches = 400
	makespan := func(r Runner, flush func()) float64 {
		eng := sim.NewEngine()
		switch v := r.(type) {
		case *Pipeline:
			v.eng = eng
		case *Serial:
			v.eng = eng
		}
		gen := workload.NewGenerator(workload.Mix(0.8), 15)
		gen.SetAudit(r.Collector().Audit)
		for i := 0; i < batches; i++ {
			r.Ingest(gen.Batch(8, 0, 10))
		}
		flush()
		eng.SetEventLimit(5_000_000)
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	engP := sim.NewEngine()
	collP := NewCollector(12, 10, 0)
	pipe, err := NewPipeline(engP, clus, m, plan, collP)
	if err != nil {
		t.Fatal(err)
	}
	tPipe := makespan(pipe, pipe.FlushAll)

	engS := sim.NewEngine()
	collS := NewCollector(12, 10, 0)
	collS.Audit = audit.NewLedger()
	ser := NewSerial(engS, clus, m, plan, collS)
	tSer := makespan(ser, ser.Flush)

	if tPipe >= tSer {
		t.Errorf("pipeline makespan %v not below serial %v (Fig 26 shape)", tPipe, tSer)
	}
	if got := collS.Good.Served + collS.Violations; got != batches*8 {
		t.Errorf("serial lost samples: %d of %d", got, batches*8)
	}
	if err := collS.AuditReport().Err(); err != nil {
		t.Error(err)
	}
}

func TestCollectorObservedProfile(t *testing.T) {
	c := NewCollector(4, 1, 0)
	// 2 exit at layer 2, 2 at layer 4.
	c.Complete(workload.Sample{Deadline: 10}, 1, 2)
	c.Complete(workload.Sample{Deadline: 10}, 1, 2)
	c.Complete(workload.Sample{Deadline: 10}, 1, 4)
	c.Complete(workload.Sample{Deadline: 10}, 1, 4)
	p := c.ObservedProfile()
	if p.At(1) != 1 || p.At(2) != 1 {
		t.Errorf("survival entering 1,2 = %v,%v, want 1,1", p.At(1), p.At(2))
	}
	if p.At(3) != 0.5 || p.At(4) != 0.5 {
		t.Errorf("survival entering 3,4 = %v,%v, want 0.5,0.5", p.At(3), p.At(4))
	}
	c.ResetWindow()
	q := c.ObservedProfile()
	if q.At(3) != 1 {
		t.Errorf("after reset, survival = %v, want all-survive", q.At(3))
	}
}

func TestCollectorSLOAccounting(t *testing.T) {
	c := NewCollector(4, 0.1, 0)
	c.Complete(workload.Sample{Arrival: 0, Deadline: 0.1}, 0.05, 4) // ok
	c.Complete(workload.Sample{Arrival: 0, Deadline: 0.1}, 0.50, 4) // violation
	c.Drop(workload.Sample{}, 0.5, audit.ReasonAdmission)
	if c.Good.Served != 1 || c.Violations != 1 || c.Dropped != 1 {
		t.Errorf("served=%d violations=%d dropped=%d", c.Good.Served, c.Violations, c.Dropped)
	}
}
