package scheduler

import (
	"fmt"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/exec"
	"e3/internal/sim"
	"e3/internal/workload"
)

// DataParallel runs the whole model on every instance in eager mode —
// how the vanilla and naive-EE baselines serve. Vanilla models simply have
// no ramps; EE models shrink their batches mid-flight and pay per-ramp
// synchronization (§2.3).
type DataParallel struct {
	eng       *sim.Engine
	clus      *cluster.Cluster
	model     *ee.EEModel
	coll      *Collector
	instances []*instance
	rr        int
	// ewmaBatch tracks recent per-batch service time for backlog-aware
	// admission control.
	ewmaBatch float64
}

// NewDataParallel builds a runner over the given device indices.
func NewDataParallel(eng *sim.Engine, clus *cluster.Cluster, m *ee.EEModel, devices []int, coll *Collector) (*DataParallel, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("scheduler: data-parallel runner needs at least one device")
	}
	d := &DataParallel{eng: eng, clus: clus, model: m, coll: coll}
	for _, idx := range devices {
		if idx < 0 || idx >= clus.Size() {
			return nil, fmt.Errorf("scheduler: device index %d out of range", idx)
		}
		inst := &instance{device: idx}
		inst.rearm = func() { d.runNext(inst) }
		d.instances = append(d.instances, inst)
		coll.Util.Register(clus.Devices[idx].ID)
		coll.Flame.Register(clus.Devices[idx].ID, string(clus.Devices[idx].Kind))
	}
	return d, nil
}

// Collector implements Runner.
func (d *DataParallel) Collector() *Collector { return d.coll }

// Ingest implements Runner.
func (d *DataParallel) Ingest(batch []workload.Sample) {
	if len(batch) == 0 {
		return
	}
	var pick *instance
	n := len(d.instances)
	for i := 0; i < n; i++ {
		inst := d.instances[(d.rr+i)%n]
		if pick == nil || len(inst.queue) < len(pick.queue) {
			pick = inst
		}
	}
	d.rr++
	now := d.eng.Now()
	for _, s := range batch {
		d.coll.Audit.Dispatched(s.ID, now, 0, pick.device)
		d.coll.Attr.Dispatched(s, now, 0)
	}
	pick.queue = append(pick.queue, batch)
	if !pick.busy {
		d.runNext(pick)
	}
}

func (d *DataParallel) runNext(inst *instance) {
	if len(inst.queue) == 0 {
		inst.busy = false
		return
	}
	inst.busy = true
	batch := inst.queue[0]
	// Compact in place so the popped head does not linger in the array.
	n := copy(inst.queue, inst.queue[1:])
	inst.queue[n] = nil
	inst.queue = inst.queue[:n]

	dev := d.clus.Devices[inst.device]
	L := d.model.Base.NumLayers()
	res := exec.RunSegment(d.model, 1, L, batch, dev.Spec(), dev.Slowdown)
	now := d.eng.Now()
	d.coll.Util.AddBusy(dev.ID, now, res.Duration)
	d.coll.Trace.Execute(dev.ID, string(dev.Kind), 0, len(batch), now, now+res.Duration)
	d.coll.Attr.Executed(0, batch, now, now+res.Duration)
	d.coll.Flame.Execute(dev.ID, string(dev.Kind), d.model.Name, 0, 1, L,
		now, now+res.Duration, res.RampTime, res.PadTime)
	if d.ewmaBatch == 0 {
		d.ewmaBatch = res.Duration
	} else {
		d.ewmaBatch = 0.9*d.ewmaBatch + 0.1*res.Duration
	}
	// RunSegment emits completions in ramp order with non-decreasing
	// offsets; samples exiting at the same ramp share one. Group each
	// equal-offset run into a single engine event — within-run order is the
	// slice order and runs stay in emission order, so execution matches the
	// per-sample events this replaces.
	for lo, comps := 0, res.Completions; lo < len(comps); {
		hi := lo + 1
		for hi < len(comps) && comps[hi].Offset == comps[lo].Offset {
			hi++
		}
		grp := comps[lo:hi]
		d.eng.After(grp[0].Offset, func() {
			done := d.eng.Now()
			for _, c := range grp {
				d.coll.Complete(c.Sample, done, c.ExitLayer)
			}
		})
		lo = hi
	}
	d.eng.After(res.Duration, inst.rearm)
}

// QueueDepth reports total batches awaiting execution (for backlog-aware
// admission control in the serving layer).
func (d *DataParallel) QueueDepth() int {
	n := 0
	for _, inst := range d.instances {
		n += len(inst.queue)
		if inst.busy {
			n++
		}
	}
	return n
}

// BacklogDelay estimates how long a batch dispatched now will wait before
// execution starts, from the queued work and recent batch service times.
func (d *DataParallel) BacklogDelay() float64 {
	return float64(d.QueueDepth()) * d.ewmaBatch / float64(len(d.instances))
}
