package scheduler

import (
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/sim"
	"e3/internal/workload"
)

func TestPipelinePartialBatchFlushes(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 8)
	plan, m := testPlan(t, clus, 8, 0.8)
	if len(plan.Splits) < 2 {
		t.Skip("single-split plan")
	}
	eng := sim.NewEngine()
	coll := NewCollector(12, 10, 0)
	p, err := NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	// One lone batch whose survivors can never fill a downstream batch:
	// the age-based flush must still push them through without FlushAll.
	gen := workload.NewGenerator(workload.Constant(0.95), 31) // all survive past early splits
	p.Ingest(gen.Batch(3, 0, 10))
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := coll.Good.Served; got != 3 {
		t.Fatalf("served %d of 3 without FlushAll — partial-batch flush broken", got)
	}
}

func TestPipelineSheddingDropsStaleWork(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 8)
	plan, m := testPlan(t, clus, 8, 0.8)
	eng := sim.NewEngine()
	coll := NewCollector(12, 0.1, 0)
	p, err := NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	// Samples whose deadline is already unreachable: the dispatcher sheds
	// them instead of computing them late.
	stale := make([]workload.Sample, 8)
	for i := range stale {
		stale[i] = workload.Sample{ID: int64(i + 1), Difficulty: 0.9, Arrival: 0, Deadline: 0.001}
	}
	p.Ingest(stale)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if coll.Dropped != 8 {
		t.Errorf("dropped %d of 8 stale samples", coll.Dropped)
	}
	if coll.Good.Served != 0 {
		t.Errorf("served %d stale samples", coll.Good.Served)
	}
}

func TestPipelineFailOpenRecoversExclusions(t *testing.T) {
	// If every instance of a stage gets struck out (a bad baseline, not a
	// real straggler), dispatch must reset the exclusions rather than
	// funnel all work through one device.
	clus := cluster.Homogeneous(gpu.V100, 8)
	plan, m := testPlan(t, clus, 8, 0.8)
	eng := sim.NewEngine()
	coll := NewCollector(12, 10, 0)
	p, err := NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range p.stages[0].instances {
		inst.excluded = true
		inst.strikes = 2
	}
	gen := workload.NewGenerator(workload.Mix(0.8), 32)
	p.Ingest(gen.Batch(8, 0, 10))
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	p.FlushAll()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if p.ExcludedInstances() >= len(p.stages[0].instances) {
		t.Error("fail-open did not clear exclusions")
	}
	if got := coll.Good.Served + coll.Violations; got != 8 {
		t.Errorf("served+violated = %d of 8 under total exclusion", got)
	}
}

func TestSerialFlushPartialRound(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 8)
	plan, m := testPlan(t, clus, 8, 0.8)
	eng := sim.NewEngine()
	coll := NewCollector(12, 10, 0)
	s := NewSerial(eng, clus, m, plan, coll)
	gen := workload.NewGenerator(workload.Mix(0.8), 33)
	// Fewer batches than devices: only Flush starts the round.
	for i := 0; i < 3; i++ {
		s.Ingest(gen.Batch(8, 0, 10))
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if coll.Good.Served != 0 {
		t.Fatalf("round started before Flush with %d/%d batches", 3, clus.Size())
	}
	s.Flush()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := coll.Good.Served + coll.Violations; got != 24 {
		t.Errorf("served+violated = %d of 24 after Flush", got)
	}
}

func TestSerialBackToBackRounds(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 4)
	plan, m := testPlan(t, clus, 8, 0.8)
	eng := sim.NewEngine()
	coll := NewCollector(12, 10, 0)
	s := NewSerial(eng, clus, m, plan, coll)
	gen := workload.NewGenerator(workload.Mix(0.8), 34)
	// Two full rounds plus a remainder.
	for i := 0; i < 9; i++ {
		s.Ingest(gen.Batch(8, 0, 10))
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := coll.Good.Served + coll.Violations; got != 72 {
		t.Errorf("served+violated = %d of 72 across rounds", got)
	}
}

func TestDataParallelBacklogDelay(t *testing.T) {
	clus := cluster.Homogeneous(gpu.V100, 2)
	m := ee.NewVanilla(model.BERTBase())
	eng := sim.NewEngine()
	coll := NewCollector(12, 10, 0)
	d, err := NewDataParallel(eng, clus, m, []int{0, 1}, coll)
	if err != nil {
		t.Fatal(err)
	}
	if d.BacklogDelay() != 0 {
		t.Error("fresh runner reports backlog")
	}
	gen := workload.NewGenerator(workload.Mix(0.8), 35)
	for i := 0; i < 20; i++ {
		d.Ingest(gen.Batch(8, 0, 10))
	}
	// Run a couple of events so the EWMA seeds, then check mid-backlog.
	eng.Step()
	if d.QueueDepth() == 0 {
		t.Skip("queue drained unexpectedly fast")
	}
	if d.BacklogDelay() <= 0 {
		t.Error("backlogged runner reports zero delay")
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}
