// Package scheduler executes plans on the simulated cluster: E3's
// heterogeneity-aware model-parallel pipeline (§3.3), the data-parallel
// runner the baselines use, and the phase-synchronized serial runner of
// the model-parallelism ablation (§5.8.7). All runners share a Collector
// that accounts goodput, latency, utilization, and the observed exit
// histogram that feeds E3's online profiler.
package scheduler

import (
	"e3/internal/audit"
	"e3/internal/flame"
	"e3/internal/metrics"
	"e3/internal/profile"
	"e3/internal/slo"
	"e3/internal/telemetry"
	"e3/internal/workload"
)

// Runner is anything that accepts formed batches and serves them.
type Runner interface {
	// Ingest hands a formed batch to the runner at the current virtual
	// time. The runner owns the samples from then on.
	Ingest(batch []workload.Sample)
	// Collector exposes the runner's statistics sink.
	Collector() *Collector
}

// Collector accumulates serving statistics.
type Collector struct {
	SLO float64

	Lat  metrics.LatencyRecorder
	Good *metrics.GoodputMeter
	Util *metrics.UtilizationTracker

	// Violations counts samples completed after their deadline; Dropped
	// counts samples shed before execution.
	Violations int
	Dropped    int

	// DroppedByReason breaks Dropped down by classified shed reason.
	DroppedByReason map[audit.Reason]int

	// Audit is an optional lifecycle ledger shared by the generator, the
	// batcher, and the runner (nil disables auditing at zero cost).
	Audit *audit.Ledger

	// Trace is an optional span tracer shared the same way (nil disables
	// telemetry at zero cost). Runners record per-batch execute, transfer,
	// and fusion spans; the collector records completion/drop events so the
	// tracer's counters reconcile with the ledger.
	Trace *telemetry.Tracer

	// Attr is an optional per-request latency attribution sink shared the
	// same way (nil disables it at zero cost). The batcher and runners feed
	// it the same boundary events they feed the ledger; the collector
	// records the terminal events so its counters reconcile with both.
	Attr *slo.Attribution

	// Flame is an optional virtual-time compute profiler fed the same
	// boundary events (nil disables it at zero cost). Runners fold every
	// executed batch, transfer, and fusion wait into it; its totals
	// reconcile exactly against Util.
	Flame *flame.Profiler

	// exitCounts[k] counts samples that exited after layer k (1-based).
	exitCounts []int
	layers     int

	// Per-window counters for the overload detector (reset each window).
	windowServed     int
	windowViolations int
}

// NewCollector builds a collector for an L-layer model.
func NewCollector(layers int, slo, start float64) *Collector {
	return &Collector{
		SLO:             slo,
		Good:            metrics.NewGoodputMeter(start),
		Util:            metrics.NewUtilizationTracker(start),
		exitCounts:      make([]int, layers+1),
		layers:          layers,
		DroppedByReason: make(map[audit.Reason]int),
	}
}

// Complete records a sample finishing at virtual time `at` having exited
// after the given layer.
func (c *Collector) Complete(s workload.Sample, at float64, exitLayer int) {
	c.Lat.Observe(at - s.Arrival)
	if exitLayer >= 1 && exitLayer <= c.layers {
		c.exitCounts[exitLayer]++
	}
	if at <= s.Deadline {
		c.Good.ServeOK(1, at)
		c.windowServed++
	} else {
		c.Violations++
		c.Good.Drop(1, at)
		c.windowViolations++
	}
	c.Audit.Completed(s.ID, at, exitLayer)
	c.Trace.Complete(at, at-s.Arrival)
	c.Attr.Completed(s, at)
}

// Drop records a sample shed without execution, classified by reason
// (admission control, stale-backlog shedding, or SLA-pressure flush).
func (c *Collector) Drop(s workload.Sample, at float64, reason audit.Reason) {
	c.Dropped++
	if c.DroppedByReason == nil {
		c.DroppedByReason = make(map[audit.Reason]int)
	}
	c.DroppedByReason[reason]++
	c.Good.Drop(1, at)
	c.windowViolations++
	c.Audit.Dropped(s.ID, at, reason)
	c.Trace.Drop(at, string(reason))
	c.Attr.Dropped(s, at)
}

// AuditReport verifies the attached ledger's conservation invariants and
// cross-checks its terminal totals against this collector's counters.
// With no ledger attached it reports only the counter cross-check (which
// fails unless both sides are zero, making a missing ledger loud).
func (c *Collector) AuditReport() *audit.Report {
	r := c.Audit.Verify()
	r.CrossCheck(c.Good.Served+c.Violations, c.Dropped)
	return r
}

// ObservedProfile reconstructs the survival profile from the exit
// histogram — the measurement E3's estimator consumes each window (§3.1).
func (c *Collector) ObservedProfile() profile.Batch {
	total := 0
	for _, n := range c.exitCounts {
		total += n
	}
	surv := make([]float64, c.layers)
	if total == 0 {
		for k := range surv {
			surv[k] = 1
		}
		return profile.NewBatch(surv)
	}
	alive := total
	for k := 1; k <= c.layers; k++ {
		surv[k-1] = float64(alive) / float64(total)
		alive -= c.exitCounts[k]
	}
	return profile.NewBatch(surv)
}

// WindowBadFrac reports the fraction of this window's outcomes that were
// violations or drops — the overload signal for buffer activation.
func (c *Collector) WindowBadFrac() float64 {
	total := c.windowServed + c.windowViolations
	if total == 0 {
		return 0
	}
	return float64(c.windowViolations) / float64(total)
}

// WindowCounts exposes the current window's served and violation
// counters (drops are already folded into violations) so an external
// budget accountant — the fleet router's per-epoch burn scoring — can
// feed slo.Budget.ObserveWindow without owning the collector.
func (c *Collector) WindowCounts() (served, violations int) {
	return c.windowServed, c.windowViolations
}

// ResetWindow clears the exit histogram and window counters for the next
// scheduling window while keeping cumulative serving metrics.
func (c *Collector) ResetWindow() {
	for i := range c.exitCounts {
		c.exitCounts[i] = 0
	}
	c.windowServed = 0
	c.windowViolations = 0
}
