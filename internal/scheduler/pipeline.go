package scheduler

import (
	"fmt"

	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/exec"
	"e3/internal/optimizer"
	"e3/internal/sim"
	"e3/internal/workload"
)

// Pipeline executes an E3 plan: one stage per split, each with replicated
// instances pinned to devices of the planned kind; survivor batches flow
// to the next stage's merge queue where full batches are re-formed, and
// every instance starts its next batch as soon as it finishes the current
// one (pipelining, §3.2.2). Straggling instances are detected by comparing
// observed to planned stage time and excluded from future dispatch (§3.3).
type Pipeline struct {
	eng   *sim.Engine
	clus  *cluster.Cluster
	model *ee.EEModel
	plan  optimizer.Plan
	coll  *Collector

	stages []*stage
	// MaxMergeWait bounds how long a survivor may sit in a merge queue
	// before a partial batch is dispatched.
	maxMergeWait float64
	// stragglerFactor flags an instance whose batch ran this many times
	// slower than planned.
	stragglerFactor float64
	// pool optionally recycles batch slices: ingested batches are dead
	// once RunSplit has copied completions and survivors out of them, and
	// survivor slices once the merge queue has absorbed them. Nil = no
	// recycling (identical behavior, more allocation).
	pool *workload.BatchPool
	// compFree recycles completion buffers (active only when pool is set):
	// a buffer is handed to RunSplitInto, rides the grouped completion
	// event, and returns here once the collector has consumed it.
	compFree [][]exec.Completion
}

// maxCompFree bounds the completion-buffer free list, mirroring the batch
// pool's per-class bound.
const maxCompFree = 64

type stage struct {
	split     optimizer.Split
	instances []*instance
	merge     []pendingSample
	flushArm  bool
	// flushFn is the prebuilt partial-batch flush event, built once so
	// drain does not allocate a fresh closure per arm.
	flushFn func()
	rr      int
	// downstream is the planned residual time from this stage's dispatch
	// to completion (its own stage time plus everything after); the merge
	// flush uses it to dispatch partial batches before deadlines burn.
	downstream float64
}

type pendingSample struct {
	s  workload.Sample
	at float64
	// dest is the instance whose device the survivor's activations were
	// transferred to; batches formed from the merge queue dispatch there
	// so realized comm time matches realized placement.
	dest *instance
}

type instance struct {
	device  int // index into cluster.Devices
	busy    bool
	queue   [][]workload.Sample
	strikes int
	// excluded instances receive no new work (§3.3 straggler handling).
	excluded bool
	// rearm is the prebuilt "device freed, start the next batch" event,
	// scheduled once per executed batch.
	rearm func()
}

// NewPipeline binds a plan to concrete devices. It fails if the cluster
// cannot supply the planned replica counts per kind.
func NewPipeline(eng *sim.Engine, clus *cluster.Cluster, m *ee.EEModel, plan optimizer.Plan, coll *Collector) (*Pipeline, error) {
	p := &Pipeline{
		eng: eng, clus: clus, model: plan.ExecModel(m), plan: plan, coll: coll,
		maxMergeWait:    plan.CycleTime,
		stragglerFactor: 1.5,
	}
	if p.maxMergeWait <= 0 {
		p.maxMergeWait = 0.010
	}
	used := make(map[int]bool)
	for _, sp := range plan.Splits {
		st := &stage{split: sp}
		pool := clus.OfKind(sp.Kind)
		for _, devIdx := range pool {
			if len(st.instances) == sp.Replicas {
				break
			}
			if used[devIdx] {
				continue
			}
			used[devIdx] = true
			st.instances = append(st.instances, &instance{device: devIdx})
			coll.Util.Register(clus.Devices[devIdx].ID)
			coll.Flame.Register(clus.Devices[devIdx].ID, string(clus.Devices[devIdx].Kind))
		}
		if len(st.instances) != sp.Replicas {
			return nil, fmt.Errorf("scheduler: need %d %s devices for split [%d,%d], cluster has fewer free",
				sp.Replicas, sp.Kind, sp.From, sp.To)
		}
		p.stages = append(p.stages, st)
	}
	// Residual path time per stage, back to front.
	rest := 0.0
	for i := len(p.stages) - 1; i >= 0; i-- {
		rest += p.stages[i].split.StageTime + p.stages[i].split.CommTime
		p.stages[i].downstream = rest
	}
	// Prebuild the per-instance rearm and per-stage flush events: both fire
	// once per executed batch / armed flush on the hot path, and building
	// them here means scheduling them allocates nothing.
	for si, st := range p.stages {
		for _, inst := range st.instances {
			inst.rearm = func() { p.runNext(si, inst) }
		}
		st.flushFn = func() {
			st.flushArm = false
			p.flush(si)
		}
	}
	return p, nil
}

// Collector implements Runner.
func (p *Pipeline) Collector() *Collector { return p.coll }

// Plan returns the executing plan.
func (p *Pipeline) Plan() optimizer.Plan { return p.plan }

// SetPool attaches a batch pool shared with the batcher: ingested batches
// are returned once their samples have been copied into completions and
// survivors, and survivor slices once merged. A nil pool (the default)
// allocates as before.
func (p *Pipeline) SetPool(pool *workload.BatchPool) { p.pool = pool }

// Ingest implements Runner: a formed batch enters stage 0.
func (p *Pipeline) Ingest(batch []workload.Sample) {
	if len(batch) == 0 {
		return
	}
	p.dispatch(0, batch)
}

// pickInstance selects the least-loaded non-excluded instance of a stage
// (round-robin tie-break). It is called both at dispatch and at survivor
// hand-off time, so transfer cost is computed against the instance the
// batch will actually land on.
func (p *Pipeline) pickInstance(si int) *instance {
	st := p.stages[si]
	var pick *instance
	n := len(st.instances)
	for i := 0; i < n; i++ {
		inst := st.instances[(st.rr+i)%n]
		if inst.excluded {
			continue
		}
		if pick == nil || len(inst.queue) < len(pick.queue) {
			pick = inst
		}
	}
	if pick == nil {
		// Every instance excluded: the baseline itself must be wrong.
		// Fail open by clearing the stage's exclusions and retrying.
		for _, inst := range st.instances {
			inst.excluded = false
			inst.strikes = 0
		}
		pick = st.instances[st.rr%n]
	}
	st.rr++
	return pick
}

// dispatch hands a batch to the least-loaded non-excluded instance of a
// stage.
func (p *Pipeline) dispatch(si int, batch []workload.Sample) {
	p.dispatchTo(si, p.pickInstance(si), batch)
}

// dispatchTo enqueues a batch on a specific instance.
func (p *Pipeline) dispatchTo(si int, pick *instance, batch []workload.Sample) {
	now := p.eng.Now()
	for _, s := range batch {
		p.coll.Audit.Dispatched(s.ID, now, si, pick.device)
		p.coll.Attr.Dispatched(s, now, si)
	}
	pick.queue = append(pick.queue, batch)
	if !pick.busy {
		p.runNext(si, pick)
	}
}

// runNext starts the instance's next queued batch.
func (p *Pipeline) runNext(si int, inst *instance) {
	if len(inst.queue) == 0 {
		inst.busy = false
		return
	}
	inst.busy = true
	batch := inst.queue[0]
	// Compact the per-instance queue in place: advancing the slice strands
	// the popped head (and its batch) in the backing array until a realloc.
	n := copy(inst.queue, inst.queue[1:])
	inst.queue[n] = nil
	inst.queue = inst.queue[:n]

	st := p.stages[si]

	// Shed stale work (Clockwork-style, §3.1): a backlogged sample that
	// cannot meet its deadline even if it ran right now is dropped rather
	// than computed late — overload drains at shed speed, not compute
	// speed.
	now := p.eng.Now()
	viable := batch[:0]
	for _, smp := range batch {
		if smp.Deadline < now+st.downstream {
			p.coll.Drop(smp, now, audit.ReasonStaleShed)
			continue
		}
		viable = append(viable, smp)
	}
	batch = viable
	if len(batch) == 0 {
		p.pool.Put(batch) // every sample shed; the array is dead
		p.runNext(si, inst)
		return
	}

	dev := p.clus.Devices[inst.device]
	// Hand RunSplitInto recycled output buffers: survivors come from the
	// batch pool (they are Put back once merged), completions from the
	// pipeline's own free list (Put back after the grouped completion event
	// fires). With no pool both start empty and RunSplitInto allocates as
	// RunSplit would — either way the values written are identical.
	var res exec.Result
	if p.pool != nil {
		res.Completions = p.getCompBuf(len(batch))
		res.Survivors = p.pool.Get(len(batch))[:0]
	}
	exec.RunSplitInto(p.model, st.split.From, st.split.To, batch, dev.Spec(), dev.Slowdown, &res)
	p.coll.Util.AddBusy(dev.ID, now, res.Duration)
	p.coll.Trace.Execute(dev.ID, string(dev.Kind), si, len(batch), now, now+res.Duration)
	p.coll.Attr.Executed(si, batch, now, now+res.Duration)
	p.coll.Flame.Execute(dev.ID, string(dev.Kind), p.model.Name, si, st.split.From, st.split.To,
		now, now+res.Duration, res.RampTime, res.PadTime)

	// Straggler detection (§3.3): compare against the planned time for
	// this exact batch size — partial batches have high fixed costs, so
	// linear scaling of the stage time would flag healthy devices.
	planned := exec.SplitTime(p.model, st.split.From, st.split.To, len(batch), 0.5, dev.Spec())
	if planned > 0 && res.Duration > p.stragglerFactor*planned {
		inst.strikes++
		if inst.strikes >= 2 {
			inst.excluded = true
		}
	}

	// RunSplit stamps every completion of a batch with the same offset
	// (compute end + handoff), so one engine event completes them all:
	// within-batch order is the slice order, matching the per-sample events
	// this replaces (consecutive seq at equal time), and the heap carries
	// one event per batch instead of one per sample.
	if comps := res.Completions; len(comps) > 0 {
		p.eng.After(comps[0].Offset, func() {
			done := p.eng.Now()
			for _, c := range comps {
				p.coll.Complete(c.Sample, done, c.ExitLayer)
			}
			p.putCompBuf(comps)
		})
	} else {
		p.putCompBuf(res.Completions)
	}
	// Completions and survivors are value copies, so the ingested batch is
	// dead from here on and its array can back a future dispatch.
	p.pool.Put(batch)
	if len(res.Survivors) > 0 && si+1 < len(p.stages) {
		// Choose the target instance now, before computing transfer time:
		// dispatch round-robins across replicas, and on clusters with
		// heterogeneous links the comm time differs per target device.
		target := p.pickInstance(si + 1)
		comm := p.clus.Link(inst.device, target.device).
			TransferTime(p.model.Base.Layers[st.split.To-1].ActBytes * float64(len(res.Survivors)))
		survivors := res.Survivors
		xferStart := now + res.Duration + res.HandoffDelay
		p.coll.Trace.Transfer(si, len(survivors), xferStart, xferStart+comm)
		p.coll.Flame.Transfer(si+1, xferStart, xferStart+comm)
		p.eng.After(res.Duration+res.HandoffDelay+comm, func() {
			p.receive(si+1, survivors, target)
		})
	} else {
		// No survivors to forward (all exited, or final stage): the
		// survivors buffer is idle — recycle it now.
		p.pool.Put(res.Survivors)
	}
	// Pipelining: the instance frees at compute completion; handoff and
	// transfer overlap the next batch.
	p.eng.After(res.Duration, inst.rearm)
}

// receive merges survivors into a stage's queue and forms batches. dest is
// the instance their activations were transferred to.
func (p *Pipeline) receive(si int, survivors []workload.Sample, dest *instance) {
	st := p.stages[si]
	now := p.eng.Now()
	for _, s := range survivors {
		p.coll.Audit.Merged(s.ID, now, si)
		p.coll.Attr.Merged(s, now, si)
		st.merge = append(st.merge, pendingSample{s: s, at: now, dest: dest})
	}
	// The merge queue copied every survivor by value; recycle the slice.
	p.pool.Put(survivors)
	p.drain(si)
}

// takeMerged removes the first n merge-queue entries of a stage, returning
// the formed batch (drawn from the pool when one is attached) and the
// transfer destination of its head. The merge queue is compacted in place
// so consumed entries do not linger in the backing array.
func (st *stage) takeMerged(n int, pool *workload.BatchPool) ([]workload.Sample, *instance) {
	batch := pool.Get(n)
	dest := st.merge[0].dest
	for i := 0; i < n; i++ {
		batch[i] = st.merge[i].s
	}
	m := copy(st.merge, st.merge[n:])
	for i := m; i < len(st.merge); i++ {
		st.merge[i] = pendingSample{}
	}
	st.merge = st.merge[:m]
	return batch, dest
}

// fuseAndDispatch forms a batch of n from the stage's merge queue and
// dispatches it, recording the fusion wait (head entry → batch formation)
// as a telemetry span.
func (p *Pipeline) fuseAndDispatch(si, n int) {
	st := p.stages[si]
	headAt := st.merge[0].at
	batch, dest := st.takeMerged(n, p.pool)
	p.coll.Trace.Fuse(si, len(batch), headAt, p.eng.Now())
	p.coll.Flame.Fuse(si, headAt, p.eng.Now())
	p.dispatchMerged(si, dest, batch)
}

// dispatchMerged hands a merge-formed batch to the instance its head's
// activations already live on, falling back to a fresh pick if that
// instance has since been excluded.
func (p *Pipeline) dispatchMerged(si int, dest *instance, batch []workload.Sample) {
	if dest == nil || dest.excluded {
		dest = p.pickInstance(si)
	}
	p.dispatchTo(si, dest, batch)
}

// flushDeadline is the latest time the merge head may sit before a partial
// batch must go: its SLA dispatch point or the age bound, whichever is
// sooner.
func (p *Pipeline) flushDeadline(si int, head pendingSample) float64 {
	st := p.stages[si]
	slaAt := head.s.Deadline - st.downstream*1.3
	ageAt := head.at + p.maxMergeWait
	if slaAt < ageAt {
		return slaAt
	}
	return ageAt
}

// drain dispatches full batches and arms the partial-batch flush timer.
func (p *Pipeline) drain(si int) {
	st := p.stages[si]
	b0 := p.plan.Batch
	for len(st.merge) >= b0 {
		p.fuseAndDispatch(si, b0)
	}
	if len(st.merge) > 0 && !st.flushArm {
		st.flushArm = true
		delay := p.flushDeadline(si, st.merge[0]) - p.eng.Now()
		if delay < 0 {
			delay = 0
		}
		p.eng.After(delay, st.flushFn)
	}
}

// getCompBuf returns a zero-length completion buffer with capacity for n
// entries, recycled when the free list has one. Buffers are only recycled
// when a batch pool is attached; otherwise it returns nil and append
// allocates exactly as the unpooled path always has.
func (p *Pipeline) getCompBuf(n int) []exec.Completion {
	if p.pool == nil {
		return nil
	}
	if k := len(p.compFree); k > 0 {
		b := p.compFree[k-1]
		p.compFree[k-1] = nil
		p.compFree = p.compFree[:k-1]
		if cap(b) >= n {
			return b[:0]
		}
	}
	return make([]exec.Completion, 0, n)
}

// putCompBuf zeroes a completion buffer and files it for reuse; the caller
// must not retain any alias afterwards.
func (p *Pipeline) putCompBuf(b []exec.Completion) {
	if p.pool == nil || cap(b) == 0 || len(p.compFree) >= maxCompFree {
		return
	}
	b = b[:cap(b)]
	for i := range b {
		b[i] = exec.Completion{}
	}
	p.compFree = append(p.compFree, b[:0])
}

// flush dispatches a partial batch whose head can wait no longer.
func (p *Pipeline) flush(si int) {
	st := p.stages[si]
	if len(st.merge) == 0 {
		return
	}
	now := p.eng.Now()
	if now+1e-12 < p.flushDeadline(si, st.merge[0]) {
		// Head changed since arming; re-arm for the new head.
		p.drain(si)
		return
	}
	n := len(st.merge)
	if n > p.plan.Batch {
		n = p.plan.Batch
	}
	p.fuseAndDispatch(si, n)
	p.drain(si)
}

// ExcludedInstances reports how many instances the straggler monitor has
// taken out of rotation.
func (p *Pipeline) ExcludedInstances() int {
	n := 0
	for _, st := range p.stages {
		for _, inst := range st.instances {
			if inst.excluded {
				n++
			}
		}
	}
	return n
}

// PendingMerge reports queued survivors awaiting batch formation (for
// tests and drain-at-shutdown).
func (p *Pipeline) PendingMerge() int {
	n := 0
	for _, st := range p.stages {
		n += len(st.merge)
	}
	return n
}

// FlushAll force-dispatches every partial merge queue (end of run).
func (p *Pipeline) FlushAll() {
	for si := range p.stages {
		st := p.stages[si]
		for len(st.merge) > 0 {
			n := len(st.merge)
			if n > p.plan.Batch {
				n = p.plan.Batch
			}
			p.fuseAndDispatch(si, n)
		}
	}
}
