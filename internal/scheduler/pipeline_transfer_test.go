package scheduler

import (
	"testing"

	"e3/internal/audit"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/sim"
	"e3/internal/workload"
)

// transferMergeGap runs two full batches of stage-0 survivors through a
// manual two-stage plan (stage 0: one replica on device 0; stage 1: two
// replicas round-robinned across devices 1 and 2) and returns the gap
// between the two batches' merge-arrival times at stage 1, read from the
// lifecycle ledger. Round-robin sends batch 1 to device 1 and batch 2 to
// device 2, so the gap includes the transfer time onto device 2.
func transferMergeGap(t *testing.T, gpusPerMachine int) float64 {
	t.Helper()
	clus := cluster.New(map[gpu.Kind]int{gpu.V100: 3}, gpusPerMachine)
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	plan := optimizer.Plan{
		Splits: []optimizer.Split{
			{From: 1, To: 6, Kind: gpu.V100, Replicas: 1, StageTime: 0.010, CommTime: 0.001},
			{From: 7, To: 12, Kind: gpu.V100, Replicas: 2, StageTime: 0.010},
		},
		Batch:         4,
		CycleTime:     0.010,
		Pipelined:     true,
		ModelParallel: true,
	}
	eng := sim.NewEngine()
	coll := NewCollector(12, 10.0, 0)
	coll.Audit = audit.NewLedger()
	p, err := NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	// Difficulty 1 samples run the full model, so every sample survives
	// stage 0 and crosses the inter-stage link. Lax deadlines keep stale
	// shedding and SLA flushes out of the picture.
	mk := func(base int64) []workload.Sample {
		b := make([]workload.Sample, plan.Batch)
		for i := range b {
			b[i] = workload.Sample{ID: base + int64(i), Difficulty: 1, Arrival: 0, Deadline: 100}
		}
		return b
	}
	p.Ingest(mk(1))
	p.Ingest(mk(5))
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	mergedAt := func(id int64) float64 {
		for _, e := range coll.Audit.Events(id) {
			if e.Kind == audit.KindMerged {
				return e.At
			}
		}
		t.Fatalf("sample %d: no merged event (did not survive stage 0?)", id)
		return 0
	}
	return mergedAt(5) - mergedAt(1)
}

// Regression: inter-stage transfer time must be computed against the
// instance the survivors are actually handed to, not instances[0] of the
// next stage. With 3 GPUs packed 2 per machine, round-robin sends the
// second batch to the off-machine device 2 over Ethernet (50µs latency,
// ~1.2GB/s) while the seed priced every transfer against on-machine device
// 1 over PCIe (5µs, 12GB/s) — so the merge-arrival gap between two batches
// was identical to the all-one-machine layout and the simulated pipeline
// never saw cross-machine transfer cost.
func TestPipelineTransferPricedAgainstChosenInstance(t *testing.T) {
	gapHetero := transferMergeGap(t, 2) // dev0,dev1 on machine 0; dev2 on machine 1
	gapHomo := transferMergeGap(t, 3)   // all three devices on one machine
	// The Ethernet hop adds at least its 50µs base latency (minus PCIe's
	// 5µs) plus the bandwidth gap on the activation bytes.
	if gapHetero <= gapHomo+40e-6 {
		t.Fatalf("merge gap hetero %.6gs vs homo %.6gs: cross-machine transfer not priced (want ≥ %.6gs difference)",
			gapHetero, gapHomo, 40e-6)
	}
}
