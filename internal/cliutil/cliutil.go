// Package cliutil holds the flag-parsing helpers shared by the e3 command
// line tools: GPU cluster specs and model names.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
)

// ParseGPUSpec parses "V100=6,P100=8,K80=15" into per-kind counts,
// validating kinds against the catalogue.
func ParseGPUSpec(spec string) (map[gpu.Kind]int, error) {
	counts := make(map[gpu.Kind]int)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("cliutil: bad GPU spec %q (want KIND=N,...)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("cliutil: bad GPU count in %q", part)
		}
		kind := gpu.Kind(strings.ToUpper(strings.TrimSpace(kv[0])))
		known := false
		for _, k := range gpu.Kinds() {
			if k == kind {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("cliutil: unknown GPU kind %q (have %v)", kv[0], gpu.Kinds())
		}
		counts[kind] += n
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("cliutil: empty GPU spec %q", spec)
	}
	return counts, nil
}

// ModelNames lists the model identifiers BuildModel accepts.
func ModelNames() []string {
	return []string{"bert-base", "bert-large", "distilbert", "resnet50", "pabee", "t5", "llama"}
}

// BuildModel constructs the named early-exit model with its default ramp
// architecture; entropy applies to the entropy-ramped models.
func BuildModel(name string, entropy float64) (*ee.EEModel, error) {
	switch strings.ToLower(name) {
	case "bert-base":
		return ee.NewDeeBERT(model.BERTBase(), entropy), nil
	case "bert-large":
		return ee.NewDeeBERT(model.BERTLarge(), entropy), nil
	case "distilbert":
		return ee.NewDistilBERTEE(model.DistilBERT(), entropy), nil
	case "resnet50":
		return ee.NewBranchyNet(model.ResNet50()), nil
	case "pabee":
		return ee.NewPABEE(model.BERTLarge(), 6), nil
	case "t5":
		return ee.NewCALM(model.T5Decoder(18), 0.25), nil
	case "llama":
		return ee.NewLlamaEE(model.Llama318B()), nil
	default:
		return nil, fmt.Errorf("cliutil: unknown model %q (try %s)", name, strings.Join(ModelNames(), ", "))
	}
}
