package cliutil

import (
	"testing"

	"e3/internal/gpu"
)

func TestParseGPUSpec(t *testing.T) {
	counts, err := ParseGPUSpec("V100=6, p100=8,K80=15")
	if err != nil {
		t.Fatal(err)
	}
	if counts[gpu.V100] != 6 || counts[gpu.P100] != 8 || counts[gpu.K80] != 15 {
		t.Errorf("counts = %v", counts)
	}
}

func TestParseGPUSpecAccumulates(t *testing.T) {
	counts, err := ParseGPUSpec("V100=2,V100=3")
	if err != nil {
		t.Fatal(err)
	}
	if counts[gpu.V100] != 5 {
		t.Errorf("duplicate kinds should accumulate: %v", counts)
	}
}

func TestParseGPUSpecErrors(t *testing.T) {
	for _, spec := range []string{"", "V100", "V100=x", "V100=-1", "H100=4"} {
		if _, err := ParseGPUSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestBuildModelAllNames(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := BuildModel(name, 0.4)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if m.Base.NumLayers() == 0 {
			t.Errorf("%s: empty model", name)
		}
	}
	if _, err := BuildModel("gpt5", 0.4); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestBuildModelCaseInsensitive(t *testing.T) {
	if _, err := BuildModel("BERT-Base", 0.4); err != nil {
		t.Error(err)
	}
}
