package model

import "fmt"

// transformerEncoder builds n identical encoder blocks. Per-block FLOPs
// follow the standard 2·params·tokens estimate with params =
// 4·h² (attention projections) + 2·h·ffn (MLP).
func transformerEncoder(name string, n, hidden, ffn, seqLen int) []Layer {
	params := float64(4*hidden*hidden + 2*hidden*ffn)
	flops := 2 * params * float64(seqLen)
	act := float64(seqLen * hidden * 4) // fp32 activations
	layers := make([]Layer, n)
	for i := range layers {
		layers[i] = Layer{
			Name:        fmt.Sprintf("%s-enc%d", name, i+1),
			FLOPs:       flops,
			ActBytes:    act,
			WeightBytes: params * 4, // fp32 weights
		}
	}
	return layers
}

// BERTBase is the 12-layer encoder the paper's production service and most
// NLP experiments use (hidden 768, FFN 3072, seq 128).
func BERTBase() *Model {
	return &Model{
		Name:            "BERT-BASE",
		Layers:          transformerEncoder("bert", 12, 768, 3072, 128),
		Task:            Classification,
		Hidden:          768,
		Vocab:           30522,
		Classes:         2,
		SeqLen:          128,
		AvgOutputTokens: 1,
	}
}

// BERTLarge is the 24-layer variant used by the PABEE experiment (Fig 18).
func BERTLarge() *Model {
	return &Model{
		Name:            "BERT-LARGE",
		Layers:          transformerEncoder("bertL", 24, 1024, 4096, 128),
		Task:            Classification,
		Hidden:          1024,
		Vocab:           30522,
		Classes:         2,
		SeqLen:          128,
		AvgOutputTokens: 1,
	}
}

// DistilBERT is the 6-layer distilled BERT (Fig 9's compressed model).
func DistilBERT() *Model {
	return &Model{
		Name:            "DistilBERT",
		Layers:          transformerEncoder("distil", 6, 768, 3072, 128),
		Task:            Classification,
		Hidden:          768,
		Vocab:           30522,
		Classes:         2,
		SeqLen:          128,
		AvgOutputTokens: 1,
	}
}

// BERTCompressed6 and BERTCompressed3 are the §2.4 production service's
// distillation+pruning variants of its 12-layer BERT derivative: the
// 6-layer version met accuracy targets but exceeded the per-input compute
// budget; the 3-layer version met the budget at ~4% accuracy loss.
func BERTCompressed6() *Model {
	m := &Model{
		Name:            "BERT-6L",
		Layers:          transformerEncoder("bert6", 6, 768, 3072, 128),
		Task:            Classification,
		Hidden:          768,
		Vocab:           30522,
		Classes:         2,
		SeqLen:          128,
		AvgOutputTokens: 1,
	}
	return m
}

// BERTCompressed3 is the aggressive 3-layer production variant.
func BERTCompressed3() *Model {
	return &Model{
		Name:            "BERT-3L",
		Layers:          transformerEncoder("bert3", 3, 768, 3072, 128),
		Task:            Classification,
		Hidden:          768,
		Vocab:           30522,
		Classes:         2,
		SeqLen:          128,
		AvgOutputTokens: 1,
	}
}

// ResNet50 models the TorchVision ResNet-50 as its 16 bottleneck blocks
// (stages of 3/4/6/3). Per-block FLOPs and activation sizes follow the
// published 224×224 profile (≈4.1 GFLOPs total); BranchyNet attaches its
// ramps at these block boundaries.
func ResNet50() *Model {
	type stage struct {
		blocks   int
		gflops   float64 // per block
		actBytes float64 // output feature map, fp32
	}
	stages := []stage{
		{3, 0.24, 56 * 56 * 256 * 4},
		{4, 0.27, 28 * 28 * 512 * 4},
		{6, 0.27, 14 * 14 * 1024 * 4},
		{3, 0.37, 7 * 7 * 2048 * 4},
	}
	var layers []Layer
	for si, s := range stages {
		for b := 0; b < s.blocks; b++ {
			layers = append(layers, Layer{
				Name:     fmt.Sprintf("res-s%db%d", si+1, b+1),
				FLOPs:    s.gflops * 1e9,
				ActBytes: s.actBytes,
				// ResNet-50 has ~25.6M params over 16 blocks, fp32.
				WeightBytes: 25.6e6 * 4 / 16,
			})
		}
	}
	return &Model{
		Name:            "ResNet-50",
		Layers:          layers,
		Task:            Classification,
		Hidden:          2048,
		Vocab:           0,
		Classes:         1000,
		SeqLen:          1,
		AvgOutputTokens: 1,
	}
}

// T5Decoder models the CALM setup (§5.1.3): an encoder-decoder LLM whose
// early exits act on the 8 decoder layers; the encoder runs once per
// request and is folded into a fixed preamble layer. Dimensions follow
// T5-large (hidden 1024, FFN 4096); decode operates one token at a time so
// per-layer FLOPs use seqLen 1 scaled by 3 for encoder cross-attention.
func T5Decoder(avgOutputTokens float64) *Model {
	const hidden, ffn = 1024, 4096
	perTokenParams := float64(6*hidden*hidden + 2*hidden*ffn) // self+cross attn + MLP
	dec := make([]Layer, 8)
	for i := range dec {
		dec[i] = Layer{
			Name:        fmt.Sprintf("t5-dec%d", i+1),
			FLOPs:       2 * perTokenParams,
			ActBytes:    float64(hidden * 4),
			WeightBytes: perTokenParams * 4, // fp32 weights, read per decode pass
		}
	}
	return &Model{
		Name:            "T5",
		Layers:          dec,
		Task:            Autoregressive,
		Hidden:          hidden,
		Vocab:           32128,
		Classes:         0,
		SeqLen:          1,
		AvgOutputTokens: avgOutputTokens,
	}
}

// Llama318B models the 32-layer Llama-3.1-8B decoder in single-token
// (BoolQ yes/no) mode, as in Figure 12. Its 128K vocabulary makes every
// per-layer exit check pay a ~1 GFLOP LM-head projection — the overhead
// that sinks the naive EE variant.
func Llama318B() *Model {
	const hidden, ffn = 4096, 14336
	perTokenParams := float64(4*hidden*hidden) + float64(3*hidden*ffn) // GQA approximated as full
	dec := make([]Layer, 32)
	for i := range dec {
		dec[i] = Layer{
			Name:        fmt.Sprintf("llama-dec%d", i+1),
			FLOPs:       2 * perTokenParams,
			ActBytes:    float64(hidden * 4),
			WeightBytes: perTokenParams * 2, // fp16 serving weights
		}
	}
	return &Model{
		Name:            "Llama3.1-8b",
		Layers:          dec,
		Task:            Autoregressive,
		Hidden:          hidden,
		Vocab:           128256,
		Classes:         2,
		SeqLen:          1,
		AvgOutputTokens: 1, // single-token BoolQ answers
	}
}
