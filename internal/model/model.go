// Package model describes DNNs as the serving system sees them: an ordered
// list of layers, each with a per-sample compute footprint (FLOPs) and an
// output activation size (bytes). That is all E3's profiler, optimizer and
// executor consume; the zoo in zoo.go instantiates the paper's models from
// their published architectural configurations.
package model

import "fmt"

// Layer is one splittable unit of a model (a transformer encoder block, a
// residual stage block, a decoder layer, ...).
type Layer struct {
	Name string
	// FLOPs is the per-sample compute cost of the layer.
	FLOPs float64
	// ActBytes is the per-sample size of the layer's output activation —
	// what must cross the wire if a split boundary follows this layer.
	ActBytes float64
	// WeightBytes is the layer's parameter footprint, read from device
	// memory once per batch pass (bandwidth-bound for small batches).
	WeightBytes float64
}

// Task categorizes a model's inference pattern.
type Task int

// Task kinds.
const (
	// Classification models run a single forward pass per input.
	Classification Task = iota
	// Autoregressive models run one forward pass per generated token.
	Autoregressive
)

func (t Task) String() string {
	switch t {
	case Classification:
		return "classification"
	case Autoregressive:
		return "autoregressive"
	default:
		return fmt.Sprintf("task(%d)", int(t))
	}
}

// Model is a DNN as a splittable layer sequence.
type Model struct {
	Name   string
	Layers []Layer
	Task   Task

	// Hidden is the model's hidden (embedding) dimension; ramp classifier
	// cost scales with it.
	Hidden int
	// Vocab is the output vocabulary size. For LM-head-style exit ramps
	// (CALM, Llama) each exit check pays a Hidden×Vocab projection, which
	// is why Figure 12's Llama-EE underperforms even vanilla.
	Vocab int
	// Classes is the classification label count (entropy-ramp head cost).
	Classes int
	// SeqLen is the representative input sequence length (tokens or
	// pixels-equivalent) the FLOPs figures assume.
	SeqLen int
	// AvgOutputTokens is the mean generation length for autoregressive
	// tasks (1 for classification).
	AvgOutputTokens float64
}

// NumLayers reports the number of splittable layers.
func (m *Model) NumLayers() int { return len(m.Layers) }

// TotalFLOPs is the per-sample compute of a full (no-exit) forward pass.
func (m *Model) TotalFLOPs() float64 {
	sum := 0.0
	for _, l := range m.Layers {
		sum += l.FLOPs
	}
	return sum
}

// PrefixFLOPs is the per-sample compute of layers [0, k) — i.e. the cost
// paid by a sample that exits after layer k-1.
func (m *Model) PrefixFLOPs(k int) float64 {
	if k > len(m.Layers) {
		k = len(m.Layers)
	}
	sum := 0.0
	for _, l := range m.Layers[:k] {
		sum += l.FLOPs
	}
	return sum
}

// Validate checks structural invariants; zoo constructors are covered by
// tests, user-assembled models should call it.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("model: empty name")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("model %s: no layers", m.Name)
	}
	for i, l := range m.Layers {
		if l.FLOPs <= 0 {
			return fmt.Errorf("model %s: layer %d (%s) has non-positive FLOPs", m.Name, i, l.Name)
		}
		if l.ActBytes <= 0 {
			return fmt.Errorf("model %s: layer %d (%s) has non-positive activation size", m.Name, i, l.Name)
		}
	}
	if m.Hidden <= 0 {
		return fmt.Errorf("model %s: non-positive hidden dim", m.Name)
	}
	if m.Task == Autoregressive && m.AvgOutputTokens < 1 {
		return fmt.Errorf("model %s: autoregressive with AvgOutputTokens %v < 1", m.Name, m.AvgOutputTokens)
	}
	return nil
}
