package model

import (
	"math"
	"testing"
)

func TestZooValidates(t *testing.T) {
	for _, m := range []*Model{BERTBase(), BERTLarge(), DistilBERT(), ResNet50(), T5Decoder(18), Llama318B()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestBERTBaseShape(t *testing.T) {
	m := BERTBase()
	if m.NumLayers() != 12 {
		t.Fatalf("BERT-BASE layers = %d, want 12", m.NumLayers())
	}
	// Per-layer FLOPs ≈ 2·(4·768² + 2·768·3072)·128 ≈ 1.81 GFLOPs.
	got := m.Layers[0].FLOPs
	if math.Abs(got-1.81e9)/1.81e9 > 0.02 {
		t.Errorf("BERT layer FLOPs = %.3g, want ~1.81e9", got)
	}
	// Activation: 128 tokens × 768 dims × 4 bytes.
	if m.Layers[0].ActBytes != 128*768*4 {
		t.Errorf("activation bytes = %v", m.Layers[0].ActBytes)
	}
}

func TestDistilBERTHalvesBERT(t *testing.T) {
	if got, want := DistilBERT().TotalFLOPs(), BERTBase().TotalFLOPs()/2; math.Abs(got-want) > 1e-6*want {
		t.Errorf("DistilBERT FLOPs = %v, want half of BERT = %v", got, want)
	}
}

func TestBERTLargeHeavierThanBase(t *testing.T) {
	ratio := BERTLarge().TotalFLOPs() / BERTBase().TotalFLOPs()
	// 24 vs 12 layers at larger width: roughly 3.5×.
	if ratio < 3 || ratio > 4.5 {
		t.Errorf("LARGE/BASE FLOP ratio = %v, want 3–4.5", ratio)
	}
}

func TestResNet50Profile(t *testing.T) {
	m := ResNet50()
	if m.NumLayers() != 16 {
		t.Fatalf("ResNet-50 blocks = %d, want 16 (3+4+6+3)", m.NumLayers())
	}
	total := m.TotalFLOPs()
	if total < 3.5e9 || total > 5e9 {
		t.Errorf("ResNet-50 total = %.3g FLOPs, want ~4.1e9", total)
	}
	// Activation footprint shrinks with depth (stage 1 vs stage 4).
	if m.Layers[0].ActBytes <= m.Layers[15].ActBytes {
		t.Error("ResNet activations should shrink with depth")
	}
}

func TestLlamaVocabDominatesRampCost(t *testing.T) {
	m := Llama318B()
	if m.NumLayers() != 32 {
		t.Fatalf("Llama layers = %d, want 32", m.NumLayers())
	}
	// LM-head projection (hidden×vocab) must be a large fraction of a
	// decoder layer's per-token FLOPs — the Figure 12 mechanism.
	lmHead := 2 * float64(m.Hidden) * float64(m.Vocab)
	ratio := lmHead / m.Layers[0].FLOPs
	if ratio < 0.5 {
		t.Errorf("LM-head/layer FLOP ratio = %v, want ≥ 0.5 (ramp overhead must bite)", ratio)
	}
}

func TestPrefixFLOPs(t *testing.T) {
	m := BERTBase()
	if got := m.PrefixFLOPs(0); got != 0 {
		t.Errorf("PrefixFLOPs(0) = %v, want 0", got)
	}
	if got, want := m.PrefixFLOPs(6), m.TotalFLOPs()/2; math.Abs(got-want) > 1e-6*want {
		t.Errorf("PrefixFLOPs(6) = %v, want %v", got, want)
	}
	if got := m.PrefixFLOPs(99); got != m.TotalFLOPs() {
		t.Errorf("PrefixFLOPs(overshoot) = %v, want total", got)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	cases := []struct {
		name string
		m    Model
	}{
		{"empty name", Model{Layers: []Layer{{Name: "l", FLOPs: 1, ActBytes: 1}}, Hidden: 1}},
		{"no layers", Model{Name: "x", Hidden: 1}},
		{"zero flops", Model{Name: "x", Layers: []Layer{{Name: "l", ActBytes: 1}}, Hidden: 1}},
		{"zero act", Model{Name: "x", Layers: []Layer{{Name: "l", FLOPs: 1}}, Hidden: 1}},
		{"zero hidden", Model{Name: "x", Layers: []Layer{{Name: "l", FLOPs: 1, ActBytes: 1}}}},
		{"bad autoregressive", Model{Name: "x", Task: Autoregressive, Layers: []Layer{{Name: "l", FLOPs: 1, ActBytes: 1}}, Hidden: 1}},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid model", c.name)
		}
	}
}

func TestTaskString(t *testing.T) {
	if Classification.String() != "classification" || Autoregressive.String() != "autoregressive" {
		t.Error("Task.String broken")
	}
	if Task(9).String() == "" {
		t.Error("unknown task should still stringify")
	}
}

func TestT5DecoderAutoregressive(t *testing.T) {
	m := T5Decoder(18)
	if m.Task != Autoregressive || m.AvgOutputTokens != 18 {
		t.Errorf("T5 task/tokens = %v/%v", m.Task, m.AvgOutputTokens)
	}
	if m.NumLayers() != 8 {
		t.Errorf("T5 decoder layers = %d, want 8", m.NumLayers())
	}
}

func TestCompressedVariantsScale(t *testing.T) {
	b12 := BERTBase().TotalFLOPs()
	b6 := BERTCompressed6().TotalFLOPs()
	b3 := BERTCompressed3().TotalFLOPs()
	if math.Abs(b6-b12/2) > 1e-6*b12 || math.Abs(b3-b12/4) > 1e-6*b12 {
		t.Errorf("compressed FLOPs: 12L=%g 6L=%g 3L=%g, want 1/2 and 1/4", b12, b6, b3)
	}
	for _, m := range []*Model{BERTCompressed6(), BERTCompressed3()} {
		if err := m.Validate(); err != nil {
			t.Error(err)
		}
	}
}
