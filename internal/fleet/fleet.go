// Package fleet scales E3 past one cluster: N replica clusters (possibly
// heterogeneous), each a complete single-goroutine serving stack —
// its own sim.Engine, per-tenant dynamic batchers, pipeline runners,
// sampled conservation ledgers, and batch pool — executed by a
// deterministic parallel shard runner and fed by a GPU-aware router.
//
// Time is divided into routing epochs. At each epoch boundary the
// coordinator (a single goroutine) mints the epoch's arrivals from
// per-tenant Poisson streams, scores every replica from the telemetry the
// replicas already export (queue depth, in-flight backlog, utilization,
// SLO budget burn), routes the arrivals with a smooth weighted
// round-robin over those scores (front-door admission shedding arrivals
// the whole fleet is too backlogged to serve), and injects each replica's
// share into its event loop. The shards then advance in parallel to the
// epoch boundary — they share nothing, so one goroutine per shard is
// safe — and barrier-synchronize before the next routing decision.
//
// Because routing depends only on barrier-time snapshots and each shard's
// execution between barriers is a deterministic single-goroutine event
// loop, the fleet result — every ledger digest, every router decision —
// is byte-identical to a serial reference execution of the same shards in
// index order, at any worker count. The determinism property test and
// `make fleetgate` enforce that contract.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/multi"
	"e3/internal/sim"
	"e3/internal/slo"
	"e3/internal/trace"
	"e3/internal/workload"
)

// TenantSpec is one model deployment served fleet-wide. Rate is the
// aggregate offered load across the whole fleet; the router decides how
// it lands on replicas.
type TenantSpec struct {
	Name  string
	Model *ee.EEModel
	Dist  workload.Dist
	// Rate is the fleet-wide Poisson arrival rate (req/s).
	Rate float64
	// SLO and Batch follow the usual E3 meanings.
	SLO   float64
	Batch int
}

// ReplicaSpec describes one replica cluster's inventory. Replicas may be
// heterogeneous — the router's scores absorb capacity differences.
type ReplicaSpec struct {
	GPUs map[gpu.Kind]int
}

// Size is the replica's device count.
func (r ReplicaSpec) Size() int {
	n := 0
	for _, c := range r.GPUs {
		n += c
	}
	return n
}

// describe renders the inventory deterministically (kinds sorted).
func (r ReplicaSpec) describe() string {
	kinds := make([]string, 0, len(r.GPUs))
	for k := range r.GPUs {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%dx%s", r.GPUs[gpu.Kind(k)], k))
	}
	return strings.Join(parts, "+")
}

// Config parameterizes a fleet run.
type Config struct {
	Tenants  []TenantSpec
	Replicas []ReplicaSpec
	// Horizon is the arrival-trace length in virtual seconds; EpochDur the
	// routing-epoch length (both virtual).
	Horizon  float64
	EpochDur float64
	Seed     int64
	// AuditStride samples per-event ledger detail every Nth request per
	// (replica, tenant); population totals stay exact. ≤1 = exhaustive.
	AuditStride int64
	// Workers bounds the shard-runner goroutines; ≤1 runs the serial
	// reference execution (shards in index order, one goroutine).
	Workers int
}

// validate rejects configs the build cannot honor.
func (c Config) validate() error {
	if len(c.Tenants) == 0 {
		return errors.New("fleet: no tenants")
	}
	if len(c.Replicas) == 0 {
		return errors.New("fleet: no replicas")
	}
	if c.Horizon <= 0 || c.EpochDur <= 0 {
		return errors.New("fleet: horizon and epoch duration must be positive")
	}
	seen := make(map[string]bool)
	for _, t := range c.Tenants {
		if t.Name == "" {
			return errors.New("fleet: tenant with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("fleet: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// replicaTenant is one (replica, tenant) serving stack plus the routing
// bookkeeping the coordinator reads at barriers.
type replicaTenant struct {
	st multi.ServingTenant
	// capacity is the allocation's planned goodput (samples/s) — the
	// GPU-aware half of the router's score.
	capacity float64
	// routed counts arrivals the router assigned to this stack.
	routed int
	// budget tracks per-epoch SLO burn; burn feeds the router's score.
	budget *slo.Budget
	// lastBurn is the burn rate ObserveWindow reported at the last barrier.
	lastBurn float64
}

// Replica is one shard: a complete serving stack on its own engine. All
// fields are owned by the shard's event loop; between barriers exactly
// one goroutine touches them.
type Replica struct {
	Index int
	Spec  ReplicaSpec
	eng   *sim.Engine
	clus  *cluster.Cluster
	// pool recycles batch slices through this shard's batchers and
	// pipelines only. Pools are loop-owned (see workload.BatchPool): two
	// shards must never exchange pooled buffers, so each replica gets its
	// own pool at build time (the ownership regression test pins this).
	pool    *workload.BatchPool
	tenants []*replicaTenant
	// drained marks the final drain done (Good meters closed).
	drained bool
}

// Engine exposes the shard's engine for diagnostics (events processed).
func (r *Replica) Engine() *sim.Engine { return r.eng }

// Pool exposes the shard-owned batch pool (ownership regression test).
func (r *Replica) Pool() *workload.BatchPool { return r.pool }

// Fleet is a built deployment: replicas plus the coordinator-owned
// router, streams, and generators.
type Fleet struct {
	cfg      Config
	replicas []*Replica
	router   *Router
	// streams/gens mint each tenant's fleet-wide arrivals; both are owned
	// by the coordinator goroutine, never a shard.
	streams []*trace.PoissonStream
	gens    []*workload.Generator
	// pending holds the next not-yet-consumed arrival per tenant stream
	// (NaN-free: ok=false when the stream is exhausted).
	pending   []float64
	pendingOK []bool
}

// planScale returns the fraction of fleet-wide tenant demand replica r
// must be planned to sustain: its share of the fleet's device inventory.
func planScale(cfg Config, r int) float64 {
	total := 0
	for _, spec := range cfg.Replicas {
		total += spec.Size()
	}
	if total == 0 {
		return 0
	}
	return float64(cfg.Replicas[r].Size()) / float64(total)
}

// New builds the fleet: per replica, a multi-tenant partition of its
// cluster (tenant demand scaled by the replica's share of the fleet's
// inventory) deployed as full serving stacks with sampled ledgers and a
// shard-owned batch pool. Planning that cannot sustain the scaled demand
// retries at half the demand (twice) before failing — the router and the
// replicas' own admission control absorb the shortfall at run time.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.EpochDur > cfg.Horizon {
		cfg.EpochDur = cfg.Horizon
	}
	f := &Fleet{cfg: cfg, router: NewRouter(len(cfg.Replicas), len(cfg.Tenants))}
	for i, spec := range cfg.Replicas {
		rep, err := buildReplica(cfg, i, spec)
		if err != nil {
			return nil, err
		}
		f.replicas = append(f.replicas, rep)
	}
	for ti, t := range cfg.Tenants {
		// Distinct deterministic seeds per tenant so streams and
		// difficulty draws are independent but reproducible.
		seed := cfg.Seed + int64(ti)*1_000_003
		f.streams = append(f.streams, trace.NewPoissonStream(t.Rate, cfg.Horizon, seed))
		f.gens = append(f.gens, workload.NewGenerator(t.Dist, seed+7))
		at, ok := f.streams[ti].Next()
		f.pending = append(f.pending, at)
		f.pendingOK = append(f.pendingOK, ok)
	}
	f.router.init(f)
	return f, nil
}

// buildReplica plans and deploys one shard.
func buildReplica(cfg Config, idx int, spec ReplicaSpec) (*Replica, error) {
	clus := cluster.New(spec.GPUs, 2)
	scale := planScale(cfg, idx)
	tenants := make([]multi.Tenant, 0, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		tenants = append(tenants, multi.Tenant{
			Name: t.Name, Model: t.Model, Dist: t.Dist,
			Rate: t.Rate * scale, SLO: t.SLO, Batch: t.Batch,
		})
	}
	allocs, err := planWithBackoff(clus, tenants)
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %d: %w", idx, err)
	}
	eng := sim.NewEngine()
	// Runaway backstop scaled to this shard's expected share of events
	// (~2 events/request steady state, 8x headroom, 1M floor).
	expect := 0.0
	for _, t := range tenants {
		expect += t.Rate * cfg.Horizon
	}
	eng.SetEventLimit(uint64(expect)*8 + 1_000_000)
	pool := workload.NewBatchPool()
	stacks, err := multi.DeployServing(eng, clus, tenants, allocs, cfg.AuditStride, pool)
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %d: %w", idx, err)
	}
	rep := &Replica{Index: idx, Spec: spec, eng: eng, clus: clus, pool: pool}
	// DeployServing returns stacks in allocation order (demand-sorted);
	// re-index them into config tenant order so every coordinator walk is
	// deterministic and tenant-index addressable.
	for _, t := range cfg.Tenants {
		var st *multi.ServingTenant
		for j := range stacks {
			if stacks[j].Spec.Name == t.Name {
				st = &stacks[j]
				break
			}
		}
		if st == nil {
			return nil, fmt.Errorf("fleet: replica %d: tenant %q missing from deployment", idx, t.Name)
		}
		rep.tenants = append(rep.tenants, &replicaTenant{
			st:       *st,
			capacity: st.Alloc.Plan.Goodput,
			budget:   slo.NewBudget(slo.DefaultTarget, slo.DefaultBurnThreshold),
		})
	}
	return rep, nil
}

// planWithBackoff partitions a replica cluster across tenants, halving
// every tenant's demanded rate (up to twice) when the inventory cannot
// sustain it — a deliberately degraded plan beats refusing to serve.
func planWithBackoff(clus *cluster.Cluster, tenants []multi.Tenant) ([]multi.Allocation, error) {
	scaled := make([]multi.Tenant, len(tenants))
	copy(scaled, tenants)
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var allocs []multi.Allocation
		allocs, err = multi.Plan(clus, scaled)
		if err == nil {
			return allocs, nil
		}
		for i := range scaled {
			scaled[i].Rate /= 2
		}
	}
	return nil, err
}

// inject schedules one tenant's routed arrivals into the shard's event
// loop as a single self-rescheduling closure (one live event per stream,
// as in serving.RunOpenLoopStream). The destination ledger records the
// arrival at its virtual time, then the batcher admits or sheds it.
// Called by the coordinator at an epoch boundary, before the shard
// advances; samples must be sorted by arrival time (they are — routing
// preserves stream order).
func (r *Replica) inject(tenantIdx int, samples []workload.Sample) {
	if len(samples) == 0 {
		return
	}
	rt := r.tenants[tenantIdx]
	rt.routed += len(samples)
	i := 0
	var step func()
	step = func() {
		s := samples[i]
		rt.st.Coll.Audit.Arrived(s.ID, r.eng.Now())
		rt.st.Batcher.Arrive(s)
		i++
		if i < len(samples) {
			r.eng.At(samples[i].Arrival, step)
		}
	}
	r.eng.At(samples[0].Arrival, step)
}

// Advance runs the shard's event loop to the barrier time. It is the
// unit the shard runner parallelizes; everything it touches is owned by
// this shard.
func (r *Replica) Advance(until float64) error {
	return r.eng.Run(until)
}

// Drain finishes the shard after the last epoch: run the loop dry, force
// out partial batches and merge queues, run dry again, and close the
// goodput meters at the final clock.
func (r *Replica) Drain() error {
	err := r.eng.RunAll()
	for _, rt := range r.tenants {
		rt.st.Batcher.Flush()
	}
	for _, rt := range r.tenants {
		rt.st.Pipe.FlushAll()
	}
	if err2 := r.eng.RunAll(); err == nil {
		err = err2
	}
	for _, rt := range r.tenants {
		rt.st.Coll.Good.CloseAt(r.eng.Now())
	}
	r.drained = true
	return err
}

// Digest canonically serializes the shard's state: every tenant ledger's
// digest in config-tenant order. Equal digests mean byte-identical shard
// executions.
func (r *Replica) Digest() string {
	out := ""
	for _, rt := range r.tenants {
		out += "tenant " + rt.st.Spec.Name + "\n" + rt.st.Coll.Audit.Digest()
	}
	return out
}
