package fleet

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// TestFleetGate is the `make fleetgate` entry point, env-gated like the
// planner and sim gates so plain `go test ./...` stays fast and free of
// timing noise. It checks both halves of the acceptance bar on the
// demo-scale trace:
//
//  1. Determinism (always meaningful): at every worker count, the
//     parallel fleet reproduces the serial reference byte-for-byte —
//     every per-shard ledger digest and the router decision log.
//  2. Scaling (physically bounded by the host): aggregate events/s at 8
//     shards x 8 workers must beat 1 shard by a factor scaled to the
//     cores actually present — >=4x with 8+ cores, >=2x with 4, >=1.2x
//     with 2, and skipped (loudly) on 1 core, where N goroutines
//     serialize and no speedup is possible. BENCH_PR10.json records the
//     honest curve with gomaxprocs alongside.
func TestFleetGate(t *testing.T) {
	if os.Getenv("E3_FLEET_GATE") == "" {
		t.Skip("set E3_FLEET_GATE=1 to run the fleet scaling gate (enabled by `make fleetgate`)")
	}

	// Half 1: demo-scale parallel == serial at every worker count.
	for _, shards := range []int{1, 2, 4, 8} {
		ref, err := Run(DemoConfig(shards, 1))
		if err != nil {
			t.Fatalf("%d shards serial: %v", shards, err)
		}
		par, err := Run(DemoConfig(shards, shards))
		if err != nil {
			t.Fatalf("%d shards parallel: %v", shards, err)
		}
		if par.Digests() != ref.Digests() {
			t.Fatalf("%d shards: parallel run diverged from serial reference", shards)
		}
		t.Logf("%d shards: parallel == serial (%d events, %d routed)", shards, par.Events, par.Routed)
	}

	// Half 2: wall-clock scaling, bounded by the machine.
	cores := runtime.NumCPU()
	required := 0.0
	switch {
	case cores >= 8:
		required = 4.0
	case cores >= 4:
		required = 2.0
	case cores >= 2:
		required = 1.2
	}
	if required == 0 {
		t.Logf("SKIPPING scaling half: only %d CPU core(s) — 8 shard goroutines serialize onto one core, "+
			"so no wall-clock speedup is physically possible; the determinism half above still gates", cores)
		return
	}

	measure := func(shards, workers int) float64 {
		best := 0.0
		for i := 0; i < 2; i++ {
			start := time.Now()
			res, err := Run(DemoConfig(shards, workers))
			wall := time.Since(start).Seconds()
			if err != nil {
				t.Fatalf("%d shards x %d workers: %v", shards, workers, err)
			}
			if eps := float64(res.Events) / wall; eps > best {
				best = eps
			}
		}
		return best
	}
	one := measure(1, 1)
	eight := measure(8, 8)
	factor := eight / one
	t.Logf("scaling: 1 shard %.0f events/s, 8 shards %.0f events/s — %.2fx (required >=%.1fx on %d cores)",
		one, eight, factor, required, cores)
	if factor < required {
		t.Fatalf("fleet scaling %.2fx below the %.1fx bar for %d cores", factor, required, cores)
	}
}
