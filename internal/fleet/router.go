package fleet

import (
	"fmt"
	"math"
	"strings"

	"e3/internal/workload"
)

// snapKey identifies one (replica, tenant) stack in snapshot maps.
// Indexed arrays keep everything allocation-light and ordered.

// ReplicaSnapshot is the telemetry the router reads at an epoch barrier —
// all of it already exported by the serving stacks: batcher queue depth,
// ledger in-flight backlog, planned capacity, and SLO budget burn.
type ReplicaSnapshot struct {
	Replica int
	Tenant  string
	// QueueDepth is the batcher's pending-sample count at the barrier.
	QueueDepth int
	// Inflight is arrived − completed − dropped from the ledger's O(1)
	// exact totals: samples admitted but not yet terminal.
	Inflight int
	// Capacity is the allocation plan's goodput (samples/s).
	Capacity float64
	// Burn is the SLO budget burn rate ObserveWindow reported for the
	// last epoch (0 before the first barrier).
	Burn float64
	// Score is the routing weight derived from the above.
	Score float64
}

// TenantDecision is the router's per-epoch record for one tenant: the
// scores it routed with, where every arrival went, and how many were
// shed at the front door. Together with the deterministic smooth-WRR
// rule, it fully determines the assignment sequence.
type TenantDecision struct {
	Tenant string
	Scores []float64
	// Routed[r] counts this epoch's arrivals assigned to replica r.
	Routed []int
	// Shed counts arrivals rejected by front-door admission (the whole
	// fleet too backlogged to meet the deadline).
	Shed int
}

// EpochDecision is one epoch's routing record.
type EpochDecision struct {
	Epoch   int
	End     float64
	Tenants []TenantDecision
}

// Router scores replicas from barrier-time telemetry and spreads each
// tenant's arrivals with a smooth weighted round-robin: every arrival
// adds each replica's score to its credit, the highest credit wins (ties
// to the lowest index), and the winner pays the total score back. The
// credit state persists across epochs so long-run shares track scores
// even when epochs carry few arrivals. The router is owned by the
// coordinator goroutine; shards never touch it.
type Router struct {
	nReplicas int
	// credits[t][r] is tenant t's smooth-WRR credit for replica r.
	credits [][]float64
	// Log is the append-only decision record; its Digest is part of the
	// fleet determinism contract.
	Log []EpochDecision
	// Minted / RoutedTotal / ShedTotal are fleet-conservation counters:
	// Minted == RoutedTotal + ShedTotal always.
	Minted      int
	RoutedTotal int
	ShedTotal   int
}

// NewRouter builds a router for nReplicas × nTenants credit lanes.
func NewRouter(nReplicas, nTenants int) *Router {
	r := &Router{nReplicas: nReplicas}
	for i := 0; i < nTenants; i++ {
		r.credits = append(r.credits, make([]float64, nReplicas))
	}
	return r
}

// init gives the router its back-reference-free view of static capacity;
// nothing to do today beyond shape checks, kept as a hook for scorers
// that precompute.
func (ro *Router) init(f *Fleet) {}

// minScore floors every replica's score so no replica is ever starved:
// even a fully backlogged or budget-burning replica keeps a trickle of
// credit growth and is eventually routed to (the starvation test pins
// this).
const minScore = 0.05

// score computes one (replica, tenant) routing weight:
//
//	capacity × max(minScore, 1 − inflight/(capacity×epochDur)) × 1/(1+max(0, burn−1))
//
// Capacity is the GPU-aware term (an A6000 replica outscores a K80 one);
// the middle term discounts a replica already holding ~an epoch of
// backlog; the last term backs off replicas burning SLO budget faster
// than their target allows.
func score(capacity float64, inflight int, epochDur, burn float64) float64 {
	if capacity <= 0 {
		return minScore
	}
	room := 1 - float64(inflight)/(capacity*epochDur)
	if room < minScore {
		room = minScore
	}
	pen := 1 / (1 + math.Max(0, burn-1))
	return capacity * room * pen
}

// Snapshots reads every (replica, tenant) stack's barrier-time telemetry
// and derives routing scores. Replica-major, tenant-minor order.
func (ro *Router) Snapshots(f *Fleet) []ReplicaSnapshot {
	var out []ReplicaSnapshot
	for _, rep := range f.replicas {
		for ti, rt := range rep.tenants {
			arrived, completed, dropped := rt.st.Coll.Audit.Totals()
			s := ReplicaSnapshot{
				Replica:    rep.Index,
				Tenant:     f.cfg.Tenants[ti].Name,
				QueueDepth: rt.st.Batcher.QueueLen(),
				Inflight:   arrived - completed - dropped,
				Capacity:   rt.capacity,
				Burn:       rt.lastBurn,
			}
			s.Score = score(s.Capacity, s.Inflight, f.cfg.EpochDur, s.Burn)
			out = append(out, s)
		}
	}
	return out
}

// RouteEpoch mints every tenant arrival in (start, end], applies
// front-door admission, assigns survivors to replicas by smooth WRR over
// barrier-time scores, and injects each replica's share into its event
// loop. Coordinator-only; must run between barriers, never concurrently
// with shard execution.
func (ro *Router) RouteEpoch(f *Fleet, epoch int, start, end float64) EpochDecision {
	snaps := ro.Snapshots(f)
	dec := EpochDecision{Epoch: epoch, End: end}
	for ti, t := range f.cfg.Tenants {
		td := TenantDecision{
			Tenant: t.Name,
			Scores: make([]float64, ro.nReplicas),
			Routed: make([]int, ro.nReplicas),
		}
		// The tenant's score row and mutable backlog view for this epoch.
		inflight := make([]int, ro.nReplicas)
		for _, s := range snaps {
			if s.Tenant != t.Name {
				continue
			}
			td.Scores[s.Replica] = s.Score
			inflight[s.Replica] = s.Inflight + s.QueueDepth
		}
		total := 0.0
		for _, s := range td.Scores {
			total += s
		}
		perReplica := make([][]workload.Sample, ro.nReplicas)
		for f.pendingOK[ti] && f.pending[ti] <= end {
			at := f.pending[ti]
			f.pending[ti], f.pendingOK[ti] = f.streams[ti].Next()
			// Mint in stream order so IDs and difficulty draws are
			// independent of routing. Shed samples consume a draw too —
			// they existed — but reach no ledger; only the router
			// remembers them (Minted = RoutedTotal + ShedTotal).
			s := f.gens[ti].Next(at, t.SLO)
			ro.Minted++
			// Front-door admission: if even the least-loaded replica's
			// estimated backlog at this arrival's time — epoch-start
			// inflight plus what we routed it this epoch, minus what it
			// drains at planned capacity by then — cannot clear within
			// the SLO, the deadline is hopeless fleet-wide: shed at the
			// door instead of burning a replica's queue on it.
			if doorHopeless(inflight, f, ti, t.SLO, at-start) {
				td.Shed++
				ro.ShedTotal++
				continue
			}
			pick := ro.pickWRR(ti, td.Scores, total)
			td.Routed[pick]++
			ro.RoutedTotal++
			inflight[pick]++
			perReplica[pick] = append(perReplica[pick], s)
		}
		for r, share := range perReplica {
			f.replicas[r].inject(ti, share)
		}
		dec.Tenants = append(dec.Tenants, td)
	}
	ro.Log = append(ro.Log, dec)
	return dec
}

// doorHopeless reports whether no replica can clear its estimated
// backlog for this tenant within the SLO — the fleet-level analogue of
// the batcher's deadlineHopeless check. The estimate drains the
// barrier-time backlog at planned capacity for the `elapsed` seconds
// since the epoch started, so arrivals late in an epoch are not charged
// for backlog the replica has already worked off.
func doorHopeless(inflight []int, f *Fleet, ti int, slo, elapsed float64) bool {
	for r := range inflight {
		cap := f.replicas[r].tenants[ti].capacity
		if cap <= 0 {
			continue
		}
		est := float64(inflight[r]) - cap*elapsed
		if est <= 0 || est/cap <= slo {
			return false
		}
	}
	return true
}

// pickWRR advances tenant ti's smooth weighted round-robin one step.
func (ro *Router) pickWRR(ti int, scores []float64, total float64) int {
	credits := ro.credits[ti]
	best := 0
	for r := 0; r < ro.nReplicas; r++ {
		credits[r] += scores[r]
		if credits[r] > credits[best] {
			best = r
		}
	}
	credits[best] -= total
	return best
}

// Digest canonically serializes the decision log: every epoch, every
// tenant, every score and per-replica count. Byte-identical digests mean
// identical routing — the second half of the determinism contract.
func (ro *Router) Digest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "router minted=%d routed=%d shed=%d\n", ro.Minted, ro.RoutedTotal, ro.ShedTotal)
	for _, ep := range ro.Log {
		fmt.Fprintf(&b, "epoch %d end=%.9g\n", ep.Epoch, ep.End)
		for _, td := range ep.Tenants {
			fmt.Fprintf(&b, "  %s shed=%d", td.Tenant, td.Shed)
			for r := range td.Routed {
				fmt.Fprintf(&b, " r%d=%d/%.6g", r, td.Routed[r], td.Scores[r])
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
