package fleet

import (
	"testing"

	"e3/internal/workload"
)

// TestShardPoolOwnership pins satellite-1's contract: every shard owns
// its own BatchPool instance, and a buffer retired into one shard's pool
// can never surface from another shard's Get. workload.BatchPool is
// unsynchronized by design (loop-owned, like the engine heap), so
// sharing one across parallel shards would be a data race; the fleet
// must isolate them at construction.
func TestShardPoolOwnership(t *testing.T) {
	f, err := New(tinyConfig(11, 2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(f.replicas) != 2 {
		t.Fatalf("want 2 replicas, got %d", len(f.replicas))
	}
	p0, p1 := f.replicas[0].Pool(), f.replicas[1].Pool()
	if p0 == nil || p1 == nil {
		t.Fatal("replica without a pool: pooling must be on in the fleet path")
	}
	if p0 == p1 {
		t.Fatal("two shards share one BatchPool instance — cross-loop data race")
	}

	// Retire a sentinel buffer into shard 0's pool, then drain shard 1's
	// pool completely: the sentinel's backing array must never come back
	// from shard 1.
	sentinel := make([]workload.Sample, 8)
	base := &sentinel[0]
	p0.Put(sentinel)
	for i := 0; i < 1024; i++ {
		got := p1.Get(8)
		if len(got) > 0 && &got[0] == base {
			t.Fatal("buffer Put into shard 0's pool returned by shard 1's Get")
		}
	}
	// And it does come back from its own pool — the recycling works.
	got := p0.Get(8)
	if len(got) == 0 || &got[0] != base {
		t.Error("sentinel buffer not recycled by its owning shard's pool")
	}
}

// TestShardStackIsolation verifies no serving-stack component is shared
// between shards: engines, batchers, pipelines, collectors, ledgers, and
// pools must all be distinct instances per replica.
func TestShardStackIsolation(t *testing.T) {
	f, err := New(tinyConfig(12, 2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := f.replicas[0], f.replicas[1]
	if a.eng == b.eng {
		t.Error("shards share an engine")
	}
	if a.pool == b.pool {
		t.Error("shards share a batch pool")
	}
	for ti := range a.tenants {
		at, bt := a.tenants[ti], b.tenants[ti]
		if at.st.Batcher == bt.st.Batcher {
			t.Errorf("tenant %d: shards share a batcher", ti)
		}
		if at.st.Pipe == bt.st.Pipe {
			t.Errorf("tenant %d: shards share a pipeline", ti)
		}
		if at.st.Coll == bt.st.Coll {
			t.Errorf("tenant %d: shards share a collector", ti)
		}
		if at.st.Coll.Audit == bt.st.Coll.Audit {
			t.Errorf("tenant %d: shards share a ledger", ti)
		}
	}
}
