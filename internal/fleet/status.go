package fleet

import "e3/internal/serving"

// Status summarizes the run for the serving layer's /v1/health and
// /metrics surfaces. Conserved reflects Verify (which Run already
// enforced for a returned Result, but the server re-derives it so an
// unverified Result cannot present as healthy).
func (r *Result) Status() *serving.FleetStatus {
	fs := &serving.FleetStatus{
		Replicas:  len(r.Shards),
		Workers:   r.Config.Workers,
		Epochs:    r.Epochs,
		Minted:    r.Minted,
		Routed:    r.Routed,
		DoorShed:  r.DoorShed,
		Events:    r.Events,
		Conserved: r.Verify() == nil,
	}
	for _, sr := range r.Shards {
		row := serving.FleetReplicaStatus{Index: sr.Index, GPUs: sr.GPUs, Events: sr.Events}
		for _, tr := range sr.Tenants {
			row.Tenants = append(row.Tenants, serving.FleetTenantStatus{
				Tenant:     tr.Tenant,
				Routed:     tr.Routed,
				Served:     tr.Served,
				Violations: tr.Violations,
				Dropped:    tr.Dropped,
				GoodputPS:  tr.Goodput,
				CapacityPS: tr.Capacity,
				BurnRate:   tr.Burn,
			})
		}
		fs.Rows = append(fs.Rows, row)
	}
	return fs
}
