package fleet

import (
	"testing"

	"e3/internal/gpu"
)

// TestFleetDeterminismAcrossWorkers is the determinism contract: for 20
// seeds, running the same fleet at 2, 4, and 8 workers must reproduce
// the serial reference execution (workers=1, shards in index order)
// byte-for-byte — every per-shard ledger digest and the router's full
// decision log.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ref, err := Run(tinyConfig(seed, 1))
		if err != nil {
			t.Fatalf("seed %d serial reference: %v", seed, err)
		}
		refDigest := ref.Digests()
		for _, workers := range []int{2, 4, 8} {
			got, err := Run(tinyConfig(seed, workers))
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if d := got.Digests(); d != refDigest {
				t.Fatalf("seed %d workers %d: digests diverge from serial reference\nserial:\n%.400s\nparallel:\n%.400s",
					seed, workers, refDigest, d)
			}
			if got.Events != ref.Events {
				t.Fatalf("seed %d workers %d: event count %d != serial %d", seed, workers, got.Events, ref.Events)
			}
		}
	}
}

// TestFleetDeterminismHeterogeneous repeats the contract on an uneven
// fleet, where work per shard differs and worker scheduling varies most.
func TestFleetDeterminismHeterogeneous(t *testing.T) {
	mk := func(seed int64, workers int) Config {
		cfg := tinyConfig(seed, workers)
		cfg.Replicas = append(cfg.Replicas, ReplicaSpec{GPUs: map[gpu.Kind]int{gpu.V100: 2}})
		return cfg
	}
	for seed := int64(100); seed < 105; seed++ {
		ref, err := Run(mk(seed, 1))
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := Run(mk(seed, workers))
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if got.Digests() != ref.Digests() {
				t.Fatalf("seed %d workers %d: heterogeneous fleet diverged from serial reference", seed, workers)
			}
		}
	}
}

// TestRouterNoStarvation saturates a deliberately uneven fleet and
// checks that no replica goes unrouted while another saturates: the
// score floor keeps even the weakest replica accumulating WRR credit.
func TestRouterNoStarvation(t *testing.T) {
	cfg := tinyConfig(3, 1)
	// Third replica is much weaker; offered load well above its share.
	cfg.Replicas = append(cfg.Replicas, ReplicaSpec{GPUs: map[gpu.Kind]int{gpu.V100: 2}})
	cfg.Tenants[0].Rate = 1200
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	perReplica := make([]int, len(cfg.Replicas))
	for _, sr := range res.Shards {
		for _, tr := range sr.Tenants {
			perReplica[sr.Index] += tr.Routed
		}
	}
	for r, n := range perReplica {
		if n == 0 {
			t.Fatalf("replica %d starved: routed 0 of %d arrivals (per-replica %v)", r, res.Routed, perReplica)
		}
	}
	// Shares must track capacity: the two 4-GPU replicas each carry more
	// than the 2-GPU one.
	if perReplica[2] >= perReplica[0] || perReplica[2] >= perReplica[1] {
		t.Errorf("capacity-blind shares under saturation: %v", perReplica)
	}
}

// TestRouterSmoothWRRShares pins the smooth-WRR mechanics directly:
// weights 3:1 over 40 picks give exactly 30/10 with no run longer than
// the weight ratio allows.
func TestRouterSmoothWRRShares(t *testing.T) {
	ro := NewRouter(2, 1)
	scores := []float64{3, 1}
	counts := make([]int, 2)
	maxRun, run, last := 0, 0, -1
	for i := 0; i < 40; i++ {
		pick := ro.pickWRR(0, scores, 4)
		counts[pick]++
		if pick == last {
			run++
		} else {
			run = 1
		}
		if run > maxRun {
			maxRun = run
		}
		last = pick
	}
	if counts[0] != 30 || counts[1] != 10 {
		t.Fatalf("WRR shares = %v, want [30 10]", counts)
	}
	if maxRun > 3 {
		t.Errorf("smooth WRR produced a run of %d; interleaving should bound runs by the weight ratio", maxRun)
	}
}
