package fleet

// The shard runner is the fleet tier's ONLY concurrency. Everything else
// in this package — the router, the streams, the generators, every
// replica's engine and serving stack — is single-goroutine by the same
// contract the eventloop analyzer enforces across the simulator. The
// runner may parallelize exactly one thing: advancing disjoint shards
// between two barriers. Shards share no state (each owns its engine,
// batchers, pipelines, ledgers, and batch pool), every worker joins
// before the function returns, and results land in index-addressed slots
// — so execution is byte-identical to the serial index-order walk that
// workers<=1 performs, at any worker count.

import (
	"sync"
	"sync/atomic"
)

// runShards applies fn to every replica, in index order when workers<=1
// (the serial reference execution), or via a deterministic worker pool
// otherwise. The first error in index order is returned either way.
func runShards(replicas []*Replica, workers int, fn func(*Replica) error) error {
	errs := make([]error, len(replicas))
	if workers <= 1 || len(replicas) == 1 {
		for i, rep := range replicas {
			errs[i] = fn(rep)
		}
		return firstErr(errs)
	}
	nw := workers
	if nw > len(replicas) {
		nw = len(replicas)
	}
	var next atomic.Int64
	//e3:concurrent deterministic shard pool: shards are disjoint between barriers, results land in index slots, and every worker joins before return
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		//e3:concurrent worker goroutines are joined by wg.Wait below; each claims whole shards, so no simulator state is shared
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(replicas) {
					return
				}
				errs[i] = fn(replicas[i])
			}
		}()
	}
	wg.Wait()
	return firstErr(errs)
}

// firstErr mirrors the serial walk's error semantics: the lowest-index
// failure wins regardless of which worker hit it first.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
