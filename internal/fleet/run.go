package fleet

import (
	"fmt"
)

// TenantResult is one (replica, tenant) stack's terminal accounting.
type TenantResult struct {
	Tenant string
	// Routed counts arrivals the router assigned here; the ledger's
	// Arrived total must equal it (checked by Verify).
	Routed     int
	Arrived    int
	Served     int
	Violations int
	Dropped    int
	Goodput    float64
	// QueueDepth and Inflight are the post-drain residuals (0 when the
	// drain completed cleanly).
	QueueDepth int
	Inflight   int
	Capacity   float64
	Burn       float64
}

// ShardResult is one replica's terminal accounting.
type ShardResult struct {
	Index  int
	GPUs   string
	Events uint64
	// Digest canonically serializes every tenant ledger on this shard.
	Digest  string
	Tenants []TenantResult
}

// Result is a fleet run's complete outcome: per-shard digests and
// accounting, the router's decision-log digest, and fleet-level
// conservation totals. Two Results from the same Config are
// byte-comparable via Digests().
type Result struct {
	Config Config
	// Epochs is the number of routing epochs executed.
	Epochs int
	// Minted = Routed + DoorShed (fleet front-door conservation).
	Minted   int
	Routed   int
	DoorShed int
	// Served/Violations/Dropped aggregate every shard's collectors.
	Served     int
	Violations int
	Dropped    int
	// Events is the summed engine event count across shards — the
	// numerator of the scaling curve.
	Events       uint64
	Shards       []ShardResult
	RouterDigest string
}

// Run executes the fleet to its horizon: per epoch, the coordinator
// routes the epoch's arrivals from barrier-time snapshots, the shard
// runner advances every replica to the barrier (in parallel at
// cfg.Workers, serially in index order at ≤1), and budgets burn at the
// barrier. After the last epoch the shards drain and the run verifies
// its conservation invariants.
func Run(cfg Config) (*Result, error) {
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	cfg = f.cfg // epoch clamping applied
	epochs := 0
	for start := 0.0; start < cfg.Horizon; epochs++ {
		end := cfg.EpochDur * float64(epochs+1)
		if end > cfg.Horizon {
			end = cfg.Horizon
		}
		f.router.RouteEpoch(f, epochs, start, end)
		if err := runShards(f.replicas, cfg.Workers, func(r *Replica) error {
			return r.Advance(end)
		}); err != nil {
			return nil, fmt.Errorf("fleet: epoch %d: %w", epochs, err)
		}
		f.burnBudgets(cfg.EpochDur)
		start = end
	}
	if err := runShards(f.replicas, cfg.Workers, func(r *Replica) error {
		return r.Drain()
	}); err != nil {
		return nil, fmt.Errorf("fleet: drain: %w", err)
	}
	// Every stack's ledger must pass its own lifecycle invariants and
	// cross-check against its collector before the fleet-level checks.
	for _, rep := range f.replicas {
		for ti, rt := range rep.tenants {
			if rpt := rt.st.Coll.AuditReport(); !rpt.OK() {
				return nil, fmt.Errorf("fleet: shard %d tenant %s: %w", rep.Index, cfg.Tenants[ti].Name, rpt.Err())
			}
		}
	}
	res := f.collect(epochs)
	if err := res.Verify(); err != nil {
		return nil, err
	}
	return res, nil
}

// burnBudgets runs at each barrier: every stack's epoch window feeds its
// SLO budget, whose burn rate becomes next epoch's routing signal.
// Coordinator-only.
func (f *Fleet) burnBudgets(epochDur float64) {
	for _, rep := range f.replicas {
		for _, rt := range rep.tenants {
			served, violations := rt.st.Coll.WindowCounts()
			wb := rt.budget.ObserveWindow(0, served, violations, 0, epochDur)
			rt.lastBurn = wb.BurnRate
			rt.st.Coll.ResetWindow()
		}
	}
}

// collect assembles the terminal Result.
func (f *Fleet) collect(epochs int) *Result {
	res := &Result{
		Config:       f.cfg,
		Epochs:       epochs,
		Minted:       f.router.Minted,
		Routed:       f.router.RoutedTotal,
		DoorShed:     f.router.ShedTotal,
		RouterDigest: f.router.Digest(),
	}
	for _, rep := range f.replicas {
		sr := ShardResult{
			Index:  rep.Index,
			GPUs:   gpuString(rep.Spec),
			Events: rep.eng.Processed(),
			Digest: rep.Digest(),
		}
		res.Events += sr.Events
		for ti, rt := range rep.tenants {
			arrived, completed, dropped := rt.st.Coll.Audit.Totals()
			tr := TenantResult{
				Tenant:     f.cfg.Tenants[ti].Name,
				Routed:     rt.routed,
				Arrived:    arrived,
				Served:     rt.st.Coll.Good.Served,
				Violations: rt.st.Coll.Violations,
				Dropped:    rt.st.Coll.Dropped,
				Goodput:    rt.st.Coll.Good.Goodput(),
				QueueDepth: rt.st.Batcher.QueueLen(),
				Inflight:   arrived - completed - dropped,
				Capacity:   rt.capacity,
				Burn:       rt.lastBurn,
			}
			res.Served += tr.Served
			res.Violations += tr.Violations
			res.Dropped += tr.Dropped
			sr.Tenants = append(sr.Tenants, tr)
		}
		res.Shards = append(res.Shards, sr)
	}
	return res
}

// Verify checks the fleet's conservation invariants: the front door
// conserves (minted = routed + shed), every stack's ledger arrived total
// equals what the router sent it, every ledger's own lifecycle
// invariants hold, and nothing is left in flight after the drain.
func (r *Result) Verify() error {
	if r.Minted != r.Routed+r.DoorShed {
		return fmt.Errorf("fleet: door leak: minted %d != routed %d + shed %d", r.Minted, r.Routed, r.DoorShed)
	}
	for _, sr := range r.Shards {
		for _, tr := range sr.Tenants {
			if tr.Arrived != tr.Routed {
				return fmt.Errorf("fleet: shard %d tenant %s: ledger arrived %d != routed %d",
					sr.Index, tr.Tenant, tr.Arrived, tr.Routed)
			}
			if tr.QueueDepth != 0 || tr.Inflight != 0 {
				return fmt.Errorf("fleet: shard %d tenant %s not drained: queue=%d inflight=%d",
					sr.Index, tr.Tenant, tr.QueueDepth, tr.Inflight)
			}
		}
	}
	return nil
}

// Digests flattens the determinism-relevant state: every shard digest in
// index order plus the router's decision log. Byte-equal Digests ⇒ the
// two runs were identical.
func (r *Result) Digests() string {
	out := ""
	for _, sr := range r.Shards {
		out += fmt.Sprintf("shard %d\n%s", sr.Index, sr.Digest)
	}
	return out + r.RouterDigest
}

// gpuString renders a replica's inventory deterministically.
func gpuString(spec ReplicaSpec) string {
	return spec.describe()
}
