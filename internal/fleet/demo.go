package fleet

import (
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/workload"
)

// DemoTenants is the multi-model zoo the fleet demos serve: BERT on
// GLUE, ResNet on ImageNet, and Llama on BoolQ, each with its paper SLO
// regime. Rates are fleet-wide and scale with the replica count so each
// shard sees comparable per-cluster load regardless of fleet size.
func DemoTenants(replicas int) []TenantSpec {
	scale := float64(replicas)
	return []TenantSpec{
		{
			Name:  "bert-sst2",
			Model: ee.NewDeeBERT(model.BERTBase(), 0.4),
			Dist:  workload.SST2(),
			Rate:  900 * scale,
			SLO:   0.100,
			Batch: 8,
		},
		{
			Name:  "resnet-imagenet",
			Model: ee.NewBranchyNet(model.ResNet50()),
			Dist:  workload.ImageNet(),
			Rate:  600 * scale,
			SLO:   0.150,
			Batch: 8,
		},
		{
			Name:  "llama-boolq",
			Model: ee.NewLlamaEE(model.Llama318B()),
			Dist:  workload.BoolQ(),
			Rate:  30 * scale,
			SLO:   0.500,
			Batch: 4,
		},
	}
}

// demoReplicaInventory is one shard's device complement: enough V100s
// for the BERT/ResNet demand plus the A6000s Llama needs (fig22 serves
// Llama-3.1-8B on A6000s).
func demoReplicaInventory() map[gpu.Kind]int {
	return map[gpu.Kind]int{gpu.V100: 8, gpu.A6000: 4}
}

// DemoConfig builds the canonical fleet run the bench, the server, and
// the gate all use: n homogeneous replicas serving the demo zoo.
// Horizon and epoch are short enough for CI, long enough that every
// stack forms thousands of batches per shard.
func DemoConfig(n, workers int) Config {
	specs := make([]ReplicaSpec, n)
	for i := range specs {
		specs[i] = ReplicaSpec{GPUs: demoReplicaInventory()}
	}
	return Config{
		Tenants:     DemoTenants(n),
		Replicas:    specs,
		Horizon:     30,
		EpochDur:    1,
		Seed:        1097,
		AuditStride: 100,
		Workers:     workers,
	}
}

// HeteroConfig is DemoConfig with a deliberately uneven fleet — every
// other replica gets roughly half the inventory — so routing shares must
// follow capacity, not replica count. The starvation test runs on this.
func HeteroConfig(n, workers int) Config {
	cfg := DemoConfig(n, workers)
	for i := range cfg.Replicas {
		if i%2 == 1 {
			cfg.Replicas[i] = ReplicaSpec{GPUs: map[gpu.Kind]int{gpu.V100: 4, gpu.A6000: 2}}
		}
	}
	return cfg
}
