package fleet

import (
	"testing"

	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/workload"
)

func testBERT() *ee.EEModel   { return ee.NewDeeBERT(model.BERTBase(), 0.4) }
func testResNet() *ee.EEModel { return ee.NewBranchyNet(model.ResNet50()) }

// tinyConfig is the fast two-replica, two-tenant fleet the unit and
// property tests run: small clusters keep planning cheap, rates keep
// each shard busy enough to form batches every epoch.
func tinyConfig(seed int64, workers int) Config {
	return Config{
		Tenants: []TenantSpec{
			{Name: "bert", Model: testBERT(), Dist: workload.SST2(), Rate: 400, SLO: 0.100, Batch: 8},
			{Name: "resnet", Model: testResNet(), Dist: workload.ImageNet(), Rate: 240, SLO: 0.150, Batch: 8},
		},
		Replicas: []ReplicaSpec{
			{GPUs: map[gpu.Kind]int{gpu.V100: 4}},
			{GPUs: map[gpu.Kind]int{gpu.V100: 4}},
		},
		Horizon:     4,
		EpochDur:    0.5,
		Seed:        seed,
		AuditStride: 10,
		Workers:     workers,
	}
}

func TestFleetRunSmoke(t *testing.T) {
	res, err := Run(tinyConfig(1, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Minted == 0 || res.Routed == 0 {
		t.Fatalf("no traffic: minted=%d routed=%d", res.Minted, res.Routed)
	}
	if res.Served == 0 {
		t.Fatalf("nothing served (violations=%d dropped=%d shed=%d)", res.Violations, res.Dropped, res.DoorShed)
	}
	if res.Minted != res.Routed+res.DoorShed {
		t.Fatalf("door leak: %d != %d + %d", res.Minted, res.Routed, res.DoorShed)
	}
	if len(res.Shards) != 2 {
		t.Fatalf("want 2 shards, got %d", len(res.Shards))
	}
	for _, sr := range res.Shards {
		if sr.Events == 0 {
			t.Errorf("shard %d processed no events", sr.Index)
		}
	}
	t.Logf("minted=%d served=%d violations=%d dropped=%d shed=%d events=%d",
		res.Minted, res.Served, res.Violations, res.Dropped, res.DoorShed, res.Events)
}

// TestFleetHeterogeneousReplicas runs the uneven fleet: replicas of
// different sizes must still plan, serve, and conserve.
func TestFleetHeterogeneousReplicas(t *testing.T) {
	cfg := tinyConfig(7, 2)
	cfg.Replicas[1] = ReplicaSpec{GPUs: map[gpu.Kind]int{gpu.V100: 2}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Both replicas must carry traffic, and the bigger one more of it.
	big, small := 0, 0
	for _, sr := range res.Shards {
		for _, tr := range sr.Tenants {
			if sr.Index == 0 {
				big += tr.Routed
			} else {
				small += tr.Routed
			}
		}
	}
	if big == 0 || small == 0 {
		t.Fatalf("a replica was starved: big=%d small=%d", big, small)
	}
	if big <= small {
		t.Errorf("capacity-blind routing: 4-GPU replica got %d, 2-GPU got %d", big, small)
	}
}

// TestFleetConfigValidation exercises the rejection paths.
func TestFleetConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Tenants: DemoTenants(1)},
		{Tenants: DemoTenants(1), Replicas: []ReplicaSpec{{GPUs: map[gpu.Kind]int{gpu.V100: 4}}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: want error, got nil", i)
		}
	}
	dup := tinyConfig(1, 1)
	dup.Tenants[1].Name = dup.Tenants[0].Name
	if _, err := New(dup); err == nil {
		t.Error("duplicate tenant name accepted")
	}
}
