package optimizer

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// RejectReason classifies why the search discarded a candidate plan.
type RejectReason string

// Rejection reasons. Every enumerated candidate either survives as a
// feasible plan or is rejected for exactly one of these, so the trace's
// accounting identity (sum of reasons + feasible == enumerated) holds.
const (
	// RejectMemory: some split does not fit its assigned GPU kind
	// (SplitFits failed).
	RejectMemory RejectReason = "memory-misfit"
	// RejectReplicas: the cluster cannot supply even the minimum replica
	// counts for the candidate's kind assignment.
	RejectReplicas RejectReason = "replica-shortage"
	// RejectSLO: the candidate's end-to-end latency exceeds SLO minus
	// slack.
	RejectSLO RejectReason = "slo-violation"
	// RejectRate: the candidate is feasible but sustains less than the
	// target rate (minimizing objectives only).
	RejectRate RejectReason = "below-target-rate"
	// RejectDegenerate: the candidate produced no forward progress (zero
	// stage times or an empty cluster).
	RejectDegenerate RejectReason = "degenerate"
)

// rejectOrder fixes the rendering order of reasons in Explain output.
var rejectOrder = []RejectReason{
	RejectMemory, RejectReplicas, RejectSLO, RejectRate, RejectDegenerate,
}

// Dense reason indices for the search's per-task tallies (array instead
// of a map on the hot path). Order matches rejectOrder.
const (
	idxMemory = iota
	idxReplicas
	idxSLO
	idxRate
	idxDegenerate
	numReasons
)

func reasonIndex(r RejectReason) int {
	switch r {
	case RejectMemory:
		return idxMemory
	case RejectReplicas:
		return idxReplicas
	case RejectSLO:
		return idxSLO
	case RejectRate:
		return idxRate
	}
	return idxDegenerate
}

var reasonByIndex = [numReasons]RejectReason{
	RejectMemory, RejectReplicas, RejectSLO, RejectRate, RejectDegenerate,
}

// maxRunnersUp bounds how many losing candidates the trace retains with
// scores.
const maxRunnersUp = 5

// ScoredPlan is one retained candidate with its objective score (goodput
// for max-goodput, device count for min-gpus, $/s for min-cost).
type ScoredPlan struct {
	Plan  Plan    `json:"plan"`
	Score float64 `json:"score"`
}

// SearchTrace records one planning invocation's search: the input
// snapshot, how many candidates were enumerated and why the losers lost,
// and the winner with its top runners-up. Attach one via Config.Trace.
//
// Like audit.Ledger and telemetry.Tracer, a nil *SearchTrace is valid and
// records nothing, so the planner's hot path pays nothing when provenance
// is off. A SearchTrace is single-use: attach a fresh one per planning
// call.
type SearchTrace struct {
	// Input snapshot.
	Objective  string         `json:"objective"`
	Model      string         `json:"model"`
	Layers     int            `json:"layers"`
	Batch      int            `json:"batch"`
	SLO        float64        `json:"slo_s"`
	SlackFrac  float64        `json:"slack_frac"`
	TargetRate float64        `json:"target_rate,omitempty"`
	Profile    []float64      `json:"profile"`
	Cluster    map[string]int `json:"cluster"`

	// Boundary-candidate pruning (§3.2's first filter).
	RampCandidates []int `json:"ramp_candidates"`
	PrunedRamps    int   `json:"ramps_pruned_below_min_exit"`
	CappedRamps    int   `json:"ramps_capped"`

	// Candidate accounting: Enumerated == sum(Rejected) + Feasible.
	Enumerated int                  `json:"candidates_enumerated"`
	Rejected   map[RejectReason]int `json:"rejected_by_reason"`
	Feasible   int                  `json:"feasible"`
	// Dominance pruning (fast path only): kind-assignment subtrees whose
	// admissible bound proved they cannot beat the incumbent or reach the
	// target, and the candidates inside them. Pruned candidates are never
	// enumerated, so the accounting identity above is unaffected.
	PrunedSubtrees   int `json:"pruned_subtrees"`
	PrunedCandidates int `json:"pruned_candidates"`
	// Beaten counts feasible candidates that lost to the winner on the
	// objective (Feasible - 1 when a winner exists).
	Beaten int `json:"beaten"`

	Winner    *Plan        `json:"winner,omitempty"`
	RunnersUp []ScoredPlan `json:"runners_up"`
	// Err records the planner's failure when no feasible plan existed.
	Err string `json:"error,omitempty"`

	// top retains the best candidates seen, winner first, under better.
	top    []ScoredPlan
	better func(a, b Plan) bool
	score  func(Plan) float64
	// mu makes the recording hooks race-safe; the parallel search merges
	// per-partition tallies under it (absorb).
	mu sync.Mutex
}

// begin snapshots the planning inputs and installs the objective's
// comparator. cfg must already have defaults applied.
func (t *SearchTrace) begin(cfg Config, objective string, target float64,
	better func(a, b Plan) bool, score func(Plan) float64) {
	if t == nil {
		return
	}
	t.Objective = objective
	t.TargetRate = target
	t.Model = cfg.Model.Name
	t.Layers = cfg.Model.Base.NumLayers()
	t.Batch = cfg.Batch
	t.SLO = cfg.SLO
	t.SlackFrac = cfg.SlackFrac
	t.Profile = make([]float64, t.Layers)
	for k := 1; k <= t.Layers; k++ {
		t.Profile[k-1] = cfg.Profile.At(k)
	}
	t.Cluster = make(map[string]int)
	for kind, n := range cfg.Cluster.Counts() {
		t.Cluster[string(kind)] = n
	}
	t.Rejected = make(map[RejectReason]int)
	t.RunnersUp = []ScoredPlan{}
	t.better = better
	t.score = score
}

// ramps records the boundary-candidate filter's outcome.
func (t *SearchTrace) ramps(cands []int, pruned, capped int) {
	if t == nil {
		return
	}
	t.RampCandidates = append([]int(nil), cands...)
	t.PrunedRamps = pruned
	t.CappedRamps = capped
}

// candidate counts one enumerated partition × kind assignment.
func (t *SearchTrace) candidate() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Enumerated++
	t.mu.Unlock()
}

// reject classifies one enumerated candidate's elimination.
func (t *SearchTrace) reject(r RejectReason) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Rejected[r]++
	t.mu.Unlock()
}

// insertScored inserts sp into a bounded best-first list under better.
// Insertion preserves first-seen order on ties, mirroring the planner's
// own "strictly better replaces" rule, so top[0] is always the plan the
// planner will pick from the candidates inserted so far.
func insertScored(top []ScoredPlan, sp ScoredPlan, better func(a, b Plan) bool) []ScoredPlan {
	pos := len(top)
	for i := range top {
		if better(sp.Plan, top[i].Plan) {
			pos = i
			break
		}
	}
	if pos >= maxRunnersUp+1 {
		return top
	}
	top = append(top, ScoredPlan{})
	copy(top[pos+1:], top[pos:])
	top[pos] = sp
	if len(top) > maxRunnersUp+1 {
		top = top[:maxRunnersUp+1]
	}
	return top
}

// feasible records one surviving candidate, keeping the best few ranked
// by the objective comparator.
func (t *SearchTrace) feasible(p Plan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Feasible++
	t.top = insertScored(t.top, ScoredPlan{Plan: p, Score: t.score(p)}, t.better)
	t.mu.Unlock()
}

// absorb folds one partition task's private tally into the trace. The
// parallel search calls it at chunk barriers in enumeration order, so the
// retained top list is byte-identical to a serial run: any candidate
// evicted from a task-local bounded list would also have been evicted
// from the global one (its evictors precede it globally too).
func (t *SearchTrace) absorb(tal *partTally) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Enumerated += tal.enumerated
	for i, n := range tal.rejected {
		if n > 0 {
			t.Rejected[reasonByIndex[i]] += n
		}
	}
	t.Feasible += tal.feasible
	t.PrunedSubtrees += tal.prunedSubtrees
	t.PrunedCandidates += tal.prunedCands
	for _, sp := range tal.top {
		t.top = insertScored(t.top, sp, t.better)
	}
}

// finish closes the trace with the planner's outcome.
func (t *SearchTrace) finish(winner Plan, found bool, err error) {
	if t == nil {
		return
	}
	if err != nil {
		t.Err = err.Error()
	}
	if found {
		w := winner
		t.Winner = &w
		t.Beaten = t.Feasible - 1
		if len(t.top) > 1 {
			t.RunnersUp = append([]ScoredPlan(nil), t.top[1:]...)
		}
	}
}

// Accounted reports the trace's conservation identity: every enumerated
// candidate was either rejected for exactly one reason or survived as
// feasible, and every feasible candidate is the winner or beaten.
func (t *SearchTrace) Accounted() bool {
	if t == nil {
		return true
	}
	rejected := 0
	for _, n := range t.Rejected {
		rejected += n
	}
	if rejected+t.Feasible != t.Enumerated {
		return false
	}
	if t.Winner != nil && t.Beaten != t.Feasible-1 {
		return false
	}
	return true
}

// clusterString renders the cluster snapshot deterministically
// (kind=count, sorted by kind).
func (t *SearchTrace) clusterString() string {
	kinds := make([]string, 0, len(t.Cluster))
	for k := range t.Cluster {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := ""
	for i, k := range kinds {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%d", k, t.Cluster[k])
	}
	return out
}

// scoreUnit names the objective's score for Explain output.
func (t *SearchTrace) scoreUnit() string {
	switch t.Objective {
	case "min-gpus":
		return "gpus"
	case "min-cost":
		return "$/s"
	}
	return "samples/s"
}

// WriteExplain renders the trace as a human-readable "why this plan won"
// report.
func (t *SearchTrace) WriteExplain(w io.Writer) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "search: objective %s, model %s (%d layers), batch %d, SLO %.0fms (slack %.0f%%), cluster %s\n",
		t.Objective, t.Model, t.Layers, t.Batch, t.SLO*1e3, t.SlackFrac*100, t.clusterString())
	if t.TargetRate > 0 {
		fmt.Fprintf(w, "target: %.0f samples/s\n", t.TargetRate)
	}
	fmt.Fprintf(w, "ramps:  %d boundary candidate(s) kept (%d pruned below min exit mass, %d capped): %v\n",
		len(t.RampCandidates), t.PrunedRamps, t.CappedRamps, t.RampCandidates)
	if t.PrunedCandidates > 0 {
		fmt.Fprintf(w, "pruned: %d candidate(s) in %d subtree(s) killed by dominance bounds before evaluation\n",
			t.PrunedCandidates, t.PrunedSubtrees)
	}
	fmt.Fprintf(w, "enumerated %d candidate(s):\n", t.Enumerated)
	for _, r := range rejectOrder {
		if n := t.Rejected[r]; n > 0 {
			fmt.Fprintf(w, "  %-18s %d\n", string(r), n)
		}
	}
	fmt.Fprintf(w, "  %-18s %d", "feasible", t.Feasible)
	if t.Winner != nil && t.Beaten > 0 {
		fmt.Fprintf(w, "  (%d beaten on %s)", t.Beaten, t.scoreUnit())
	}
	fmt.Fprintln(w)
	if t.Winner == nil {
		fmt.Fprintf(w, "no feasible plan: %s\n", t.Err)
		return
	}
	fmt.Fprintf(w, "winner: %s\n", t.Winner)
	for i, ru := range t.RunnersUp {
		fmt.Fprintf(w, "  #%d %s %s", i+2, scoreString(ru.Score, t.Objective), ru.Plan)
		if t.Objective == "max-goodput" && t.Winner.Goodput > 0 {
			fmt.Fprintf(w, "  (%.1f%% vs winner)", (ru.Score/t.Winner.Goodput-1)*100)
		}
		fmt.Fprintln(w)
	}
}

// scoreString formats a score with its objective's unit.
func scoreString(score float64, objective string) string {
	switch objective {
	case "min-gpus":
		return fmt.Sprintf("%.0f gpus", score)
	case "min-cost":
		return fmt.Sprintf("$%.5f/s", score)
	}
	return fmt.Sprintf("%.0f/s", score)
}
