package optimizer

import (
	"strings"
	"testing"

	"e3/internal/cluster"
	"e3/internal/gpu"
)

// traced runs one planning call with a fresh trace attached and returns
// both.
func traced(t *testing.T, cfg Config, run func(Config) (Plan, error)) (Plan, *SearchTrace) {
	t.Helper()
	tr := &SearchTrace{}
	cfg.Trace = tr
	p, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, tr
}

// TestTraceAccountingIdentity pins the acceptance criterion: every
// enumerated candidate is rejected for exactly one reason or survives as
// feasible, across all three objectives and several cluster shapes.
func TestTraceAccountingIdentity(t *testing.T) {
	clusters := map[string]*cluster.Cluster{
		"v100x16": cluster.Homogeneous(gpu.V100, 16),
		"v100x2":  cluster.Homogeneous(gpu.V100, 2),
		"mixed":   cluster.New(map[gpu.Kind]int{gpu.V100: 4, gpu.P100: 4, gpu.K80: 4}, 2),
	}
	for name, c := range clusters {
		for _, easy := range []float64{0.2, 0.8} {
			cfg := bertConfig(8, easy, c)
			_, tr := traced(t, cfg, MaximizeGoodput)
			if !tr.Accounted() {
				t.Errorf("%s easy=%.1f max-goodput: unaccounted trace: enumerated=%d rejected=%v feasible=%d",
					name, easy, tr.Enumerated, tr.Rejected, tr.Feasible)
			}
			if tr.Enumerated == 0 {
				t.Errorf("%s easy=%.1f: no candidates enumerated", name, easy)
			}
			if tr.Winner == nil {
				t.Errorf("%s easy=%.1f: plan returned but trace has no winner", name, easy)
			}

			_, tr2 := traced(t, cfg, func(c Config) (Plan, error) { return MinimizeGPUs(c, 500) })
			if !tr2.Accounted() {
				t.Errorf("%s easy=%.1f min-gpus: unaccounted trace: enumerated=%d rejected=%v feasible=%d",
					name, easy, tr2.Enumerated, tr2.Rejected, tr2.Feasible)
			}
			_, tr3 := traced(t, cfg, func(c Config) (Plan, error) { return MinimizeCost(c, 500) })
			if !tr3.Accounted() {
				t.Errorf("%s easy=%.1f min-cost: unaccounted trace: enumerated=%d rejected=%v feasible=%d",
					name, easy, tr3.Enumerated, tr3.Rejected, tr3.Feasible)
			}
		}
	}
}

// TestTraceAccountingOnFailure: an infeasible problem still accounts every
// candidate and records the error.
func TestTraceAccountingOnFailure(t *testing.T) {
	cfg := bertConfig(8, 0.5, cluster.Homogeneous(gpu.V100, 16))
	cfg.SLO = 1e-6 // impossible latency bound
	tr := &SearchTrace{}
	cfg.Trace = tr
	if _, err := MaximizeGoodput(cfg); err == nil {
		t.Fatal("expected no feasible plan")
	}
	if !tr.Accounted() {
		t.Errorf("unaccounted failure trace: enumerated=%d rejected=%v feasible=%d",
			tr.Enumerated, tr.Rejected, tr.Feasible)
	}
	if tr.Winner != nil {
		t.Error("failure trace has a winner")
	}
	if tr.Err == "" {
		t.Error("failure trace missing error")
	}
	if tr.Rejected[RejectSLO] == 0 {
		t.Errorf("expected SLO rejections, got %v", tr.Rejected)
	}
}

// TestTraceWinnerMatchesPlan: the trace's winner and top-ranked candidate
// are exactly the plan the planner returned.
func TestTraceWinnerMatchesPlan(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.New(map[gpu.Kind]int{gpu.V100: 4, gpu.K80: 8}, 2))
	p, tr := traced(t, cfg, MaximizeGoodput)
	if tr.Winner == nil || tr.Winner.String() != p.String() {
		t.Fatalf("trace winner %v != returned plan %v", tr.Winner, p)
	}
	if tr.Beaten != tr.Feasible-1 {
		t.Errorf("beaten=%d, want feasible-1=%d", tr.Beaten, tr.Feasible-1)
	}
	// Runners-up are ranked: each scores no better than the winner, in
	// non-improving order under the objective.
	prev := p.Goodput
	for i, ru := range tr.RunnersUp {
		if ru.Score > prev {
			t.Errorf("runner-up #%d score %.1f beats predecessor %.1f", i, ru.Score, prev)
		}
		prev = ru.Score
	}
	if len(tr.RunnersUp) > maxRunnersUp {
		t.Errorf("%d runners-up retained, cap is %d", len(tr.RunnersUp), maxRunnersUp)
	}
}

// TestTraceNilSafe: every hook on a nil trace is a no-op; planning without
// a trace matches planning with one.
func TestTraceNilSafe(t *testing.T) {
	var tr *SearchTrace
	tr.begin(Config{}, "x", 0, nil, nil)
	tr.ramps(nil, 0, 0)
	tr.candidate()
	tr.reject(RejectSLO)
	tr.feasible(Plan{})
	tr.finish(Plan{}, true, nil)
	if !tr.Accounted() {
		t.Error("nil trace not accounted")
	}
	tr.WriteExplain(&strings.Builder{})

	cfg := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16))
	plain, err := MaximizeGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withTrace, tr2 := traced(t, cfg, MaximizeGoodput)
	if plain.String() != withTrace.String() {
		t.Errorf("tracing changed the plan: %v vs %v", plain, withTrace)
	}
	_ = tr2
}

// TestWriteExplainGolden pins the human-readable report for a
// deterministic planning problem.
func TestWriteExplainGolden(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 8))
	_, tr := traced(t, cfg, MaximizeGoodput)
	var b strings.Builder
	tr.WriteExplain(&b)
	got := b.String()
	for _, want := range []string{
		"search: objective max-goodput, model DeeBERT (12 layers), batch 8, SLO 100ms (slack 20%), cluster V100=8\n",
		"enumerated",
		"feasible",
		"winner: plan{",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("explain output missing %q:\n%s", want, got)
		}
	}
	// The report itself must reproduce the accounting identity.
	if !tr.Accounted() {
		t.Error("explain golden trace not accounted")
	}
}
