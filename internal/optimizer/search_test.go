package optimizer

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/profile"
	"e3/internal/workload"
)

// randomProblem builds a varied but reproducible planning problem: mixed
// workload difficulty, 1-3 GPU kinds with small counts, batch and split
// budget jittered. Shared by the determinism and oracle-equivalence tests.
func randomProblem(rng *rand.Rand) Config {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	easy := 0.1 + 0.8*rng.Float64()
	kinds := append([]gpu.Kind(nil), gpu.Kinds()...)
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	counts := map[gpu.Kind]int{}
	for _, k := range kinds[:1+rng.Intn(3)] {
		counts[k] = 2 + rng.Intn(8)
	}
	batches := []int{4, 8, 16}
	return Config{
		Model:         m,
		Profile:       profile.FromDist(m, workload.Mix(easy), 3000, rng.Int63()),
		Batch:         batches[rng.Intn(len(batches))],
		Cluster:       cluster.New(counts, 2),
		SLO:           0.05 + 0.15*rng.Float64(),
		SlackFrac:     0.2,
		MinExitFrac:   DefaultMinExitFrac,
		MaxSplits:     2 + rng.Intn(3),
		Pipelining:    rng.Intn(4) > 0,
		ModelParallel: true,
	}
}

func traceTotalsEqual(t *testing.T, label string, a, b *SearchTrace) {
	t.Helper()
	if a.Enumerated != b.Enumerated || a.Feasible != b.Feasible ||
		a.PrunedSubtrees != b.PrunedSubtrees || a.PrunedCandidates != b.PrunedCandidates ||
		a.Beaten != b.Beaten {
		t.Errorf("%s: trace totals differ: enum %d/%d feas %d/%d prunedSub %d/%d prunedCand %d/%d beaten %d/%d",
			label, a.Enumerated, b.Enumerated, a.Feasible, b.Feasible,
			a.PrunedSubtrees, b.PrunedSubtrees, a.PrunedCandidates, b.PrunedCandidates,
			a.Beaten, b.Beaten)
	}
	for _, r := range []RejectReason{RejectMemory, RejectReplicas, RejectSLO, RejectRate, RejectDegenerate} {
		if a.Rejected[r] != b.Rejected[r] {
			t.Errorf("%s: Rejected[%s] %d vs %d", label, r, a.Rejected[r], b.Rejected[r])
		}
	}
	if len(a.RunnersUp) != len(b.RunnersUp) {
		t.Errorf("%s: runners-up count %d vs %d", label, len(a.RunnersUp), len(b.RunnersUp))
		return
	}
	for i := range a.RunnersUp {
		if a.RunnersUp[i].Plan.String() != b.RunnersUp[i].Plan.String() ||
			a.RunnersUp[i].Score != b.RunnersUp[i].Score {
			t.Errorf("%s: runner-up %d differs: %s (%.4f) vs %s (%.4f)", label, i,
				a.RunnersUp[i].Plan, a.RunnersUp[i].Score, b.RunnersUp[i].Plan, b.RunnersUp[i].Score)
		}
	}
}

// TestSearchDeterminismAndOracleEquivalence is the contract for the fast
// path: across many random problems and all three objectives,
//
//  1. the parallel search returns a byte-identical plan AND a byte-identical
//     trace to the serial search, regardless of worker count;
//  2. both return the same winner as the retained reference search; and
//  3. the fast trace still accounts exactly, with the reference's larger
//     enumeration equal to fast enumeration plus dominance-pruned candidates.
func TestSearchDeterminismAndOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const seeds = 50
	for trial := 0; trial < seeds; trial++ {
		base := randomProblem(rng)

		// Objective targets derive from the max-goodput solution when one
		// exists; otherwise the min objectives are exercised on a target
		// that must also fail, which checks error parity.
		refMax, refErr := MaximizeGoodputReference(base)
		target := 1.0
		if refErr == nil {
			target = refMax.Goodput * 0.5
		}

		type objRun struct {
			name string
			ref  func(Config) (Plan, error)
			fast func(Config) (Plan, error)
		}
		objs := []objRun{
			{"max-goodput", MaximizeGoodputReference, MaximizeGoodput},
			{"min-gpus",
				func(c Config) (Plan, error) { return MinimizeGPUsReference(c, target) },
				func(c Config) (Plan, error) { return MinimizeGPUs(c, target) }},
			{"min-cost",
				func(c Config) (Plan, error) { return MinimizeCostReference(c, target) },
				func(c Config) (Plan, error) { return MinimizeCost(c, target) }},
		}
		for _, o := range objs {
			label := fmt.Sprintf("trial %d %s", trial, o.name)

			refCfg := base
			refCfg.Trace = &SearchTrace{}
			refPlan, refErr := o.ref(refCfg)

			serCfg := base
			serCfg.Workers = -1 // force single-threaded
			serCfg.Trace = &SearchTrace{}
			serPlan, serErr := o.fast(serCfg)

			parCfg := base
			parCfg.Workers = 8
			parCfg.Trace = &SearchTrace{}
			parPlan, parErr := o.fast(parCfg)

			if (refErr == nil) != (serErr == nil) || (serErr == nil) != (parErr == nil) {
				t.Fatalf("%s: error parity broken: ref=%v serial=%v parallel=%v",
					label, refErr, serErr, parErr)
			}
			if refErr != nil {
				if refErr.Error() != serErr.Error() {
					t.Errorf("%s: error text differs: %q vs %q", label, refErr, serErr)
				}
				continue
			}
			if serPlan.String() != parPlan.String() {
				t.Fatalf("%s: parallel winner differs from serial:\n  serial:   %s\n  parallel: %s",
					label, serPlan, parPlan)
			}
			if refPlan.String() != serPlan.String() {
				t.Fatalf("%s: fast winner differs from reference:\n  reference: %s\n  fast:      %s",
					label, refPlan, serPlan)
			}
			traceTotalsEqual(t, label, serCfg.Trace, parCfg.Trace)
			for _, tr := range []*SearchTrace{refCfg.Trace, serCfg.Trace, parCfg.Trace} {
				if !tr.Accounted() {
					t.Errorf("%s: trace accounting identity broken", label)
				}
			}
			if got, want := serCfg.Trace.Enumerated+serCfg.Trace.PrunedCandidates, refCfg.Trace.Enumerated; got != want {
				t.Errorf("%s: fast enumerated (%d) + pruned (%d) = %d, reference enumerated %d",
					label, serCfg.Trace.Enumerated, serCfg.Trace.PrunedCandidates, got, want)
			}
		}
	}
}

// TestWorkerCountIrrelevant sweeps worker counts on one problem: every
// choice must give byte-identical plans and traces (the chunked reducer,
// not goroutine scheduling, decides the winner).
func TestWorkerCountIrrelevant(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.PaperEvaluation())
	var wantPlan string
	var wantTrace *SearchTrace
	for _, w := range []int{-1, 1, 2, 3, 5, 8, 16} {
		c := cfg
		c.Workers = w
		c.Trace = &SearchTrace{}
		p, err := MaximizeGoodput(c)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if wantTrace == nil {
			wantPlan, wantTrace = p.String(), c.Trace
			continue
		}
		if p.String() != wantPlan {
			t.Errorf("workers=%d: plan %s, want %s", w, p, wantPlan)
		}
		traceTotalsEqual(t, fmt.Sprintf("workers=%d", w), c.Trace, wantTrace)
	}
}

// TestDominancePruningActuallyPrunes guards the perf claim structurally:
// on the paper's heterogeneous cluster the bound must kill a substantial
// share of the assignment space before evaluation.
func TestDominancePruningActuallyPrunes(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.PaperEvaluation())
	cfg.Trace = &SearchTrace{}
	if _, err := MaximizeGoodput(cfg); err != nil {
		t.Fatal(err)
	}
	tr := cfg.Trace
	if tr.PrunedCandidates == 0 {
		t.Fatal("dominance pruning eliminated nothing on the paper cluster")
	}
	total := tr.Enumerated + tr.PrunedCandidates
	if frac := float64(tr.PrunedCandidates) / float64(total); frac < 0.25 {
		t.Errorf("pruned only %.1f%% of %d candidates; bound too weak", frac*100, total)
	}
	if !tr.Accounted() {
		t.Error("trace accounting identity broken")
	}
	var buf strings.Builder
	tr.WriteExplain(&buf)
	if !strings.Contains(buf.String(), "pruned:") {
		t.Errorf("explain output missing pruned line:\n%s", buf.String())
	}
}

// --- Config.withDefaults: zero-value semantics -------------------------

// TestExplicitZeroMinExitFracHonored is the regression for the old
// footgun where MinExitFrac: 0 was silently replaced by the 2% default.
// With an explicit zero, no ramp may be dropped from the candidate set.
func TestExplicitZeroMinExitFracHonored(t *testing.T) {
	mk := func(easy, minExit float64) Config {
		c := bertConfig(8, easy, cluster.Homogeneous(gpu.V100, 8))
		c.MinExitFrac = minExit
		c.MaxBoundaryCands = -1 // uncapped: exit-mass filtering is the only gate
		c.Trace = &SearchTrace{}
		return c
	}

	// Find a workload mix where the 2% default actually drops tail ramps,
	// so the two semantics are distinguishable.
	for _, easy := range []float64{0.9, 0.98, 0.2, 0.05} {
		def := mk(easy, -1)
		if _, err := MaximizeGoodput(def); err != nil {
			t.Fatal(err)
		}
		if def.Trace.PrunedRamps == 0 {
			continue
		}

		zero := mk(easy, 0)
		if _, err := MaximizeGoodput(zero); err != nil {
			t.Fatal(err)
		}
		if zero.Trace.PrunedRamps != 0 {
			t.Errorf("easy=%.2f: MinExitFrac=0 still pruned %d ramp(s); explicit zero must disable the mass filter",
				easy, zero.Trace.PrunedRamps)
		}
		if len(zero.Trace.RampCandidates) <= len(def.Trace.RampCandidates) {
			t.Errorf("easy=%.2f: zero min-exit saw %d candidates, default saw %d; zero should see more",
				easy, len(zero.Trace.RampCandidates), len(def.Trace.RampCandidates))
		}
		return
	}
	t.Fatal("no tested workload mix has sub-2% ramps; pick a mix that discriminates")
}

// TestExplicitZeroSlackFracHonored: SlackFrac: 0 must budget the full SLO
// rather than the default 20% haircut.
func TestExplicitZeroSlackFracHonored(t *testing.T) {
	base := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 8))
	base.SlackFrac = 0
	p, err := MaximizeGoodput(base)
	if err != nil {
		t.Fatal(err)
	}

	// Pin the SLO just above the zero-slack plan's latency. With zero
	// slack the plan stays feasible; with the default 20% haircut the
	// same latency must be rejected.
	tight := base
	tight.SLO = p.Latency * 1.01
	pz, err := MaximizeGoodput(tight)
	if err != nil {
		t.Fatalf("zero slack rejected a plan within the raw SLO: %v", err)
	}
	if pz.Latency <= 0.8*tight.SLO {
		t.Fatalf("test not discriminating: zero-slack plan latency %.4f fits even a 20%% haircut of %.4f",
			pz.Latency, tight.SLO)
	}

	def := tight
	def.SlackFrac = -1 // default 20%
	pd, err := MaximizeGoodput(def)
	if err == nil && pd.Latency > (1-DefaultSlackFrac)*def.SLO+1e-12 {
		t.Errorf("default slack admitted latency %.4f over the slacked budget %.4f",
			pd.Latency, (1-DefaultSlackFrac)*def.SLO)
	}
	if err == nil && pd.String() == pz.String() {
		t.Errorf("default slack returned the zero-slack plan; SlackFrac default not applied")
	}
}

// TestWithDefaultsSentinels pins the negative-means-default contract.
func TestWithDefaultsSentinels(t *testing.T) {
	neg := &Config{MinExitFrac: -1, SlackFrac: -0.5, Workers: -3, MaxBoundaryCands: -2}
	out := neg.withDefaults()
	if out.MinExitFrac != DefaultMinExitFrac {
		t.Errorf("negative MinExitFrac -> %v, want default %v", out.MinExitFrac, DefaultMinExitFrac)
	}
	if out.SlackFrac != DefaultSlackFrac {
		t.Errorf("negative SlackFrac -> %v, want default %v", out.SlackFrac, DefaultSlackFrac)
	}
	if out.Workers != 1 {
		t.Errorf("negative Workers -> %d, want 1 (serial)", out.Workers)
	}
	if out.MaxBoundaryCands != -2 {
		t.Errorf("negative MaxBoundaryCands -> %d, want preserved (uncapped)", out.MaxBoundaryCands)
	}
	if out.MaxSplits != DefaultMaxSplits {
		t.Errorf("zero MaxSplits -> %d, want %d", out.MaxSplits, DefaultMaxSplits)
	}

	zero := (&Config{}).withDefaults()
	if zero.MinExitFrac != 0 {
		t.Errorf("explicit zero MinExitFrac -> %v, must stay 0", zero.MinExitFrac)
	}
	if zero.SlackFrac != 0 {
		t.Errorf("explicit zero SlackFrac -> %v, must stay 0", zero.SlackFrac)
	}
	if zero.MaxBoundaryCands != DefaultMaxBoundaryCands {
		t.Errorf("zero MaxBoundaryCands -> %d, want default %d", zero.MaxBoundaryCands, DefaultMaxBoundaryCands)
	}
	if zero.Workers < 1 {
		t.Errorf("zero Workers -> %d, want >= 1", zero.Workers)
	}
}

// TestMaxBoundaryCandsKnob: the former hardcoded top-10 cap is now a knob;
// raising it must widen the explored candidate set.
func TestMaxBoundaryCandsKnob(t *testing.T) {
	run := func(cands int) *SearchTrace {
		c := bertConfig(8, 0.5, cluster.Homogeneous(gpu.V100, 8))
		c.MinExitFrac = 0 // keep every ramp in play so only the cap filters
		c.MaxBoundaryCands = cands
		c.Trace = &SearchTrace{}
		if _, err := MaximizeGoodput(c); err != nil {
			t.Fatalf("cands=%d: %v", cands, err)
		}
		return c.Trace
	}
	small, wide := run(3), run(-1)
	if len(small.RampCandidates) != 3 {
		t.Errorf("cap 3 kept %d candidates", len(small.RampCandidates))
	}
	if len(wide.RampCandidates) <= len(small.RampCandidates) {
		t.Errorf("uncapped kept %d candidates, capped kept %d", len(wide.RampCandidates), len(small.RampCandidates))
	}
	if wide.Enumerated+wide.PrunedCandidates <= small.Enumerated+small.PrunedCandidates {
		t.Errorf("wider candidate set explored no more of the space (%d vs %d)",
			wide.Enumerated+wide.PrunedCandidates, small.Enumerated+small.PrunedCandidates)
	}
}

// TestSearchTraceConcurrentHooks hammers the trace's recording hooks from
// many goroutines; run under -race this proves the hooks are safe for the
// parallel search to call directly.
func TestSearchTraceConcurrentHooks(t *testing.T) {
	base := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 8))
	cfg := base.withDefaults()
	tr := &SearchTrace{}
	tr.begin(cfg, "max-goodput", 0,
		func(a, b Plan) bool { return a.Goodput > b.Goodput },
		func(p Plan) float64 { return p.Goodput })

	const workers, per = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.candidate()
				switch i % 3 {
				case 0:
					tr.reject(RejectSLO)
				case 1:
					tr.reject(RejectMemory)
				default:
					tr.feasible(Plan{Goodput: float64(w*per + i)})
				}
			}
		}(w)
	}
	wg.Wait()
	tr.finish(Plan{Goodput: 1e12}, true, nil)
	if tr.Enumerated != workers*per {
		t.Errorf("enumerated %d, want %d", tr.Enumerated, workers*per)
	}
	if !tr.Accounted() {
		t.Error("trace accounting identity broken")
	}
	if len(tr.RunnersUp) != maxRunnersUp {
		t.Errorf("retained %d runners-up, want %d", len(tr.RunnersUp), maxRunnersUp)
	}
	for i := 1; i < len(tr.RunnersUp); i++ {
		if tr.RunnersUp[i].Score > tr.RunnersUp[i-1].Score {
			t.Errorf("runners-up out of order at %d: %.0f > %.0f",
				i, tr.RunnersUp[i].Score, tr.RunnersUp[i-1].Score)
		}
	}
}
