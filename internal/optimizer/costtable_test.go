package optimizer

import (
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/exec"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/profile"
	"e3/internal/workload"
)

// TestCostTableMatchesExecExactly pins the memo table to the unmemoized
// primitives bit for bit: stage times to exec.SplitTime, fit verdicts to
// SplitFits, boundary transfers to the worst-case link. Exact float
// equality is deliberate — the fast search must be a pure refactor of the
// reference arithmetic, not an approximation of it.
func TestCostTableMatchesExecExactly(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	L := m.Base.NumLayers()
	const batch = 8
	link := cluster.PaperEvaluation().Topology.WorstCase()

	tbl := NewCostTable(m, batch, false, link)
	for ki, kind := range gpu.Kinds() {
		spec := gpu.Get(kind)
		for from := 1; from <= L; from++ {
			for to := from; to <= L; to++ {
				want := exec.SplitTime(m, from, to, batch, 0.5, spec)
				if got := tbl.stageTime(ki, from, to); got != want {
					t.Fatalf("stageTime(%s, %d, %d) = %v, exec.SplitTime = %v", kind, from, to, got, want)
				}
				if got, want := tbl.splitFits(ki, from, to), SplitFits(m, from, to, batch, kind); got != want {
					t.Fatalf("splitFits(%s, %d, %d) = %v, SplitFits = %v", kind, from, to, got, want)
				}
			}
		}
	}
	for to := 1; to < L; to++ {
		want := link.TransferTime(m.Base.Layers[to-1].ActBytes * float64(batch))
		if got := tbl.boundaryTransfer(to); got != want {
			t.Fatalf("boundaryTransfer(%d) = %v, want %v", to, got, want)
		}
	}
	if got := tbl.boundaryTransfer(L); got != 0 {
		t.Fatalf("boundaryTransfer(L) = %v, want 0", got)
	}
}

// TestCostTableWrapperMatchesClone: under the exit-wrapper the reference
// clones the model per candidate to disable interior ramps; the table
// must reproduce those clone-based stage times exactly without cloning.
func TestCostTableWrapperMatchesClone(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	L := m.Base.NumLayers()
	const batch = 8
	link := cluster.PaperEvaluation().Topology.WorstCase()
	tbl := NewCostTable(m, batch, true, link)

	for _, b := range m.ActiveRamps() {
		if b >= L {
			continue
		}
		clone := (&Plan{Splits: splitsFromBounds([]int{b}, L), DisabledInteriorRamps: true}).ExecModel(m)
		for ki, kind := range gpu.Kinds() {
			spec := gpu.Get(kind)
			for _, seg := range [][2]int{{1, b}, {b + 1, L}} {
				want := exec.SplitTime(clone, seg[0], seg[1], batch, 0.5, spec)
				if got := tbl.stageTime(ki, seg[0], seg[1]); got != want {
					t.Fatalf("wrapper stageTime(%s, %d, %d) = %v, clone SplitTime = %v",
						kind, seg[0], seg[1], got, want)
				}
			}
		}
	}
}

// TestCostTableCompatibility: a table is reusable across objectives and
// windows exactly while the planning problem's geometry holds still.
func TestCostTableCompatibility(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.PaperEvaluation())
	tbl := NewCostTableFor(cfg)
	if !tbl.CompatibleWith(cfg) {
		t.Fatal("fresh table incompatible with its own config")
	}

	bigger := cfg
	bigger.Cluster = cluster.Homogeneous(gpu.V100, 4)
	if !tbl.CompatibleWith(bigger) {
		t.Error("cluster inventory change should not invalidate the table")
	}

	batch := cfg
	batch.Batch = 16
	if tbl.CompatibleWith(batch) {
		t.Error("batch change must invalidate the table")
	}

	wrap := cfg
	wrap.DisableInteriorRamps = true
	if tbl.CompatibleWith(wrap) {
		t.Error("execution-mode change must invalidate the table")
	}

	ramps := cfg.Model.ActiveRamps()
	if err := cfg.Model.Disable(ramps[0]); err != nil {
		t.Fatal(err)
	}
	if tbl.CompatibleWith(cfg) {
		t.Error("active-ramp change must invalidate the table")
	}
	if err := cfg.Model.Enable(ramps[0]); err != nil {
		t.Fatal(err)
	}
	if !tbl.CompatibleWith(cfg) {
		t.Error("restoring the ramp set must restore compatibility")
	}

	var nilTbl *CostTable
	if nilTbl.CompatibleWith(cfg) {
		t.Error("nil table must be incompatible")
	}
}

// TestSharedCostTableAcrossObjectives: one prebuilt table attached via
// Config.Costs must leave all three objectives' plans unchanged.
func TestSharedCostTableAcrossObjectives(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.PaperEvaluation())
	full, err := MaximizeGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := full.Goodput * 0.5
	gpus, err := MinimizeGPUs(cfg, target)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := MinimizeCost(cfg, target)
	if err != nil {
		t.Fatal(err)
	}

	shared := cfg
	shared.Costs = NewCostTableFor(cfg)
	for name, want := range map[string]string{
		"max-goodput": full.String(), "min-gpus": gpus.String(), "min-cost": cost.String(),
	} {
		var got Plan
		var err error
		switch name {
		case "max-goodput":
			got, err = MaximizeGoodput(shared)
		case "min-gpus":
			got, err = MinimizeGPUs(shared, target)
		default:
			got, err = MinimizeCost(shared, target)
		}
		if err != nil {
			t.Fatalf("%s with shared table: %v", name, err)
		}
		if got.String() != want {
			t.Errorf("%s with shared table: %s, want %s", name, got, want)
		}
	}
}

// TestCostTableProfileIndependent: the table ignores the exit profile
// (stage time is profile-independent; only handoffs depend on it), so
// replan windows with different forecasts share one table.
func TestCostTableProfileIndependent(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	clus := cluster.Homogeneous(gpu.V100, 8)
	mk := func(easy float64) Config {
		return Config{
			Model: m, Profile: profile.FromDist(m, workload.Mix(easy), 4000, 1),
			Batch: 8, Cluster: clus,
			SLO: 0.1, SlackFrac: 0.2, MinExitFrac: DefaultMinExitFrac,
			Pipelining: true, ModelParallel: true,
		}
	}
	tbl := NewCostTableFor(mk(0.9))
	for _, easy := range []float64{0.2, 0.5, 0.9} {
		cfg := mk(easy)
		if !tbl.CompatibleWith(cfg) {
			t.Fatalf("easy=%.1f: table should be profile-independent", easy)
		}
		plain, err1 := MaximizeGoodput(cfg)
		cfg.Costs = tbl
		memo, err2 := MaximizeGoodput(cfg)
		if err1 != nil || err2 != nil {
			t.Fatalf("easy=%.1f: %v / %v", easy, err1, err2)
		}
		if plain.String() != memo.String() {
			t.Errorf("easy=%.1f: shared table changed plan: %s vs %s", easy, memo, plain)
		}
	}
}
