package optimizer

import (
	"math"
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/profile"
	"e3/internal/workload"
)

func bertConfig(batch int, easyFrac float64, c *cluster.Cluster) Config {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	prof := profile.FromDist(m, workload.Mix(easyFrac), 8000, 1)
	return Config{
		Model: m, Profile: prof, Batch: batch, Cluster: c,
		SLO: 0.100, SlackFrac: 0.2, MinExitFrac: DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
	}
}

func TestMaximizeGoodputBasic(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16))
	p, err := MaximizeGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Goodput <= 0 {
		t.Fatal("non-positive goodput")
	}
	if len(p.Splits) < 2 {
		t.Errorf("expected a multi-split plan for an easy workload, got %d split(s): %v", len(p.Splits), p)
	}
	if p.GPUs > 16 {
		t.Errorf("plan uses %d GPUs, cluster has 16", p.GPUs)
	}
	if p.Latency > cfg.SLO*(1-cfg.SlackFrac)+1e-12 {
		t.Errorf("plan latency %v exceeds slacked SLO", p.Latency)
	}
}

func TestPlanCoversModelContiguously(t *testing.T) {
	cfg := bertConfig(8, 0.5, cluster.Homogeneous(gpu.V100, 16))
	p, err := MaximizeGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 1
	for _, s := range p.Splits {
		if s.From != want {
			t.Fatalf("split starts at %d, want %d: %v", s.From, want, p)
		}
		if s.To < s.From {
			t.Fatalf("inverted split: %v", s)
		}
		if s.Replicas < 1 {
			t.Fatalf("split with %d replicas", s.Replicas)
		}
		want = s.To + 1
	}
	if want != 13 {
		t.Fatalf("plan does not end at layer 12: %v", p)
	}
}

func TestEasyWorkloadUsesEarlierCut(t *testing.T) {
	// An easier workload shifts exit mass earlier, so more replication of
	// a shorter first split should appear; at minimum, predicted goodput
	// must be higher than on the hard workload.
	easy, err := MaximizeGoodput(bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16)))
	if err != nil {
		t.Fatal(err)
	}
	hard, err := MaximizeGoodput(bertConfig(8, 0.2, cluster.Homogeneous(gpu.V100, 16)))
	if err != nil {
		t.Fatal(err)
	}
	if easy.Goodput <= hard.Goodput {
		t.Errorf("easy goodput %v not above hard %v", easy.Goodput, hard.Goodput)
	}
}

func TestGoodputGrowsWithBatch(t *testing.T) {
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8} {
		p, err := MaximizeGoodput(bertConfig(b, 0.8, cluster.Homogeneous(gpu.V100, 16)))
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if p.Goodput <= prev {
			t.Errorf("goodput not increasing at batch %d: %v <= %v", b, p.Goodput, prev)
		}
		prev = p.Goodput
	}
}

func TestSLOInfeasible(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16))
	cfg.SLO = 0.001 // 1ms: nothing fits
	if _, err := MaximizeGoodput(cfg); err == nil {
		t.Error("expected infeasibility at 1ms SLO")
	}
}

func TestValidation(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16))
	bad := cfg
	bad.Batch = 0
	if _, err := MaximizeGoodput(bad); err == nil {
		t.Error("batch 0 accepted")
	}
	bad = cfg
	bad.Model = nil
	if _, err := MaximizeGoodput(bad); err == nil {
		t.Error("nil model accepted")
	}
	bad = cfg
	bad.Profile = profile.NewBatch([]float64{1, 1})
	if _, err := MaximizeGoodput(bad); err == nil {
		t.Error("mismatched profile accepted")
	}
	bad = cfg
	bad.SLO = 0
	if _, err := MaximizeGoodput(bad); err == nil {
		t.Error("zero SLO accepted")
	}
}

func TestPipeliningAblation(t *testing.T) {
	on := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16))
	off := on
	off.Pipelining = false
	pOn, err := MaximizeGoodput(on)
	if err != nil {
		t.Fatal(err)
	}
	pOff, err := MaximizeGoodput(off)
	if err != nil {
		t.Fatal(err)
	}
	if pOn.Goodput <= pOff.Goodput {
		t.Errorf("pipelining on (%v) not better than off (%v)", pOn.Goodput, pOff.Goodput)
	}
}

func TestModelParallelAblation(t *testing.T) {
	on := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16))
	off := on
	off.ModelParallel = false
	pOn, err := MaximizeGoodput(on)
	if err != nil {
		t.Fatal(err)
	}
	pOff, err := MaximizeGoodput(off)
	if err != nil {
		t.Fatal(err)
	}
	if pOn.Goodput <= pOff.Goodput {
		t.Errorf("MP on (%v) not better than off (%v)", pOn.Goodput, pOff.Goodput)
	}
	if pOff.ModelParallel {
		t.Error("serial plan mislabelled as model-parallel")
	}
}

func TestExitWrapperImprovesGoodput(t *testing.T) {
	// §5.8.6: disabling interior ramps saves ramp-head kernels.
	base := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16))
	wrapped := base
	wrapped.DisableInteriorRamps = true
	pBase, err := MaximizeGoodput(base)
	if err != nil {
		t.Fatal(err)
	}
	pWrapped, err := MaximizeGoodput(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	gain := pWrapped.Goodput/pBase.Goodput - 1
	if gain <= 0 {
		t.Errorf("exit-wrapper gain = %.1f%%, want positive", gain*100)
	}
	if gain > 0.35 {
		t.Errorf("exit-wrapper gain = %.1f%%, implausibly large", gain*100)
	}
}

func TestExecModelDisablesOnlyInteriorRamps(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	p := Plan{
		Splits:                []Split{{From: 1, To: 6}, {From: 7, To: 12}},
		DisabledInteriorRamps: true,
	}
	em := p.ExecModel(m)
	if !em.HasRampAfter(6) {
		t.Error("boundary ramp 6 disabled")
	}
	for _, r := range []int{1, 2, 3, 4, 5, 7, 8, 9, 10, 11} {
		if em.HasRampAfter(r) {
			t.Errorf("interior ramp %d still active", r)
		}
	}
	// Original untouched.
	if !m.HasRampAfter(3) {
		t.Error("ExecModel mutated the original model")
	}
	// Without the flag, the original is returned as-is.
	if (Plan{}).ExecModel(m) != m {
		t.Error("ExecModel without flag should return the original")
	}
}

func TestMinimizeGPUs(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 40))
	full, err := MaximizeGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := bertConfig(1, 0.8, cluster.Homogeneous(gpu.V100, 40))
	full1, err := MaximizeGoodput(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	target := math.Min(full.Goodput, full1.Goodput) * 0.4
	p, err := MinimizeGPUs(cfg, target)
	if err != nil {
		t.Fatal(err)
	}
	if p.Goodput < target {
		t.Errorf("min-GPU plan goodput %v below target %v", p.Goodput, target)
	}
	if p.GPUs >= full.GPUs {
		t.Errorf("min-GPU plan uses %d GPUs, full plan %d", p.GPUs, full.GPUs)
	}
	// Monotonicity: larger batch should not need more GPUs for the same
	// target (better amortization).
	p1, err := MinimizeGPUs(cfg1, target)
	if err != nil {
		t.Fatal(err)
	}
	if p.GPUs > p1.GPUs {
		t.Errorf("batch 8 needs %d GPUs, batch 1 needs %d — batching should help", p.GPUs, p1.GPUs)
	}
}

func TestMinimizeGPUsInfeasibleTarget(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 2))
	if _, err := MinimizeGPUs(cfg, 1e9); err == nil {
		t.Error("absurd target accepted")
	}
}

func TestMinimizeCostPrefersCheapGPUs(t *testing.T) {
	// On a heterogeneous cluster with a modest target, the cost-minimal
	// plan should be cheaper than a V100-only plan for the same target.
	het := cluster.PaperHeterogeneous() // 6 V100 + 8 P100 + 15 K80
	cfg := bertConfig(8, 0.8, het)
	target := 1500.0
	p, err := MinimizeCost(cfg, target)
	if err != nil {
		t.Fatal(err)
	}
	if p.Goodput < target {
		t.Fatalf("cost plan goodput %v below target", p.Goodput)
	}
	// Compare against restricting to V100s only.
	v100Only := cluster.Homogeneous(gpu.V100, 6)
	cfgV := bertConfig(8, 0.8, v100Only)
	pv, err := MinimizeCost(cfgV, target)
	if err == nil && p.CostPerSec > pv.CostPerSec*1.25 {
		t.Errorf("hetero cost %.6f substantially above V100-only %.6f", p.CostPerSec, pv.CostPerSec)
	}
}

func TestHeterogeneousBeatsOrMatchesHomogeneousAtEqualCost(t *testing.T) {
	// Figure 13's premise: with EE splits, the cost-matched heterogeneous
	// mix should achieve at least comparable goodput.
	hom, err := MaximizeGoodput(bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16)))
	if err != nil {
		t.Fatal(err)
	}
	het, err := MaximizeGoodput(bertConfig(8, 0.8, cluster.PaperHeterogeneous()))
	if err != nil {
		t.Fatal(err)
	}
	if het.Goodput < hom.Goodput*0.8 {
		t.Errorf("heterogeneous goodput %v badly below homogeneous %v at equal cost", het.Goodput, hom.Goodput)
	}
}

func TestPlanStringAndCost(t *testing.T) {
	p, err := MaximizeGoodput(bertConfig(4, 0.8, cluster.Homogeneous(gpu.V100, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if p.String() == "" {
		t.Error("empty String")
	}
	wantCost := float64(p.GPUs) * gpu.Get(gpu.V100).CostPerSecond()
	if math.Abs(p.CostPerSec-wantCost) > 1e-12 {
		t.Errorf("cost %v, want %v", p.CostPerSec, wantCost)
	}
}

func TestVanillaModelGetsSingleSplit(t *testing.T) {
	// A model with no ramps has no boundary candidates: the plan must be
	// one data-parallel split.
	m := ee.NewVanilla(model.BERTBase())
	prof := profile.FromDist(m, workload.Mix(0.8), 2000, 2)
	cfg := Config{
		Model: m, Profile: prof, Batch: 8, Cluster: cluster.Homogeneous(gpu.V100, 16),
		SLO: 0.1, SlackFrac: 0.2, MinExitFrac: DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
	}
	p, err := MaximizeGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Splits) != 1 {
		t.Errorf("vanilla plan has %d splits, want 1", len(p.Splits))
	}
	if p.GPUs != 16 {
		t.Errorf("vanilla plan uses %d GPUs, want all 16", p.GPUs)
	}
}
