package optimizer

import (
	"math"

	"e3/internal/exec"
	"e3/internal/gpu"
)

// This file keeps the original single-threaded, unmemoized search: per
// candidate it rescans layers via exec.SplitTime and, under the
// exit-wrapper, clones the model. It is retained as the equivalence
// oracle for the fast path (the *Reference entry points must return
// byte-identical winners) and as the pre-memoization baseline the
// planner perf gate and e3-bench -plan-bench measure against. Production
// callers use MaximizeGoodput / MinimizeGPUs / MinimizeCost.

// MaximizeGoodputReference solves max-goodput with the original search.
func MaximizeGoodputReference(cfg Config) (Plan, error) {
	return solve(cfg, goodputObjective(), runReference)
}

// MinimizeGPUsReference solves min-gpus with the original search.
func MinimizeGPUsReference(cfg Config, target float64) (Plan, error) {
	return solve(cfg, gpusObjective(target), runReference)
}

// MinimizeCostReference solves min-cost with the original search.
func MinimizeCostReference(cfg Config, target float64) (Plan, error) {
	return solve(cfg, costObjective(target), runReference)
}

// runReference drives the original exhaustive enumeration for one
// objective.
func runReference(cfg Config, obj objective) (Plan, bool) {
	best := obj.seed()
	found := false
	emit := func(p Plan) {
		if obj.better(p, best) {
			best = p
			found = true
		}
	}
	if obj.kind == objGoodput {
		forEachCandidate(cfg, emit)
	} else {
		forEachCandidateMinimal(cfg, obj.target, emit)
	}
	return best, found
}

// forEachCandidate evaluates every partition × kind assignment at maximum
// replica allocation and reports feasible plans.
func forEachCandidate(cfg Config, emit func(Plan)) {
	enumerate(cfg, func(bounds []int, kinds []gpu.Kind) {
		cfg.Trace.candidate()
		p, reject := evaluateMaxRate(cfg, bounds, kinds)
		if reject != "" {
			cfg.Trace.reject(reject)
			return
		}
		cfg.Trace.feasible(p)
		emit(p)
	})
}

// forEachCandidateMinimal evaluates partitions with the *minimal* replica
// counts achieving the target rate; candidates below the target are
// rejected here so the trace accounts them.
func forEachCandidateMinimal(cfg Config, target float64, emit func(Plan)) {
	enumerate(cfg, func(bounds []int, kinds []gpu.Kind) {
		cfg.Trace.candidate()
		p, reject := evaluateMinAlloc(cfg, bounds, kinds, target)
		if reject == "" && p.Goodput < target {
			reject = RejectRate
		}
		if reject != "" {
			cfg.Trace.reject(reject)
			return
		}
		cfg.Trace.feasible(p)
		emit(p)
	})
}

// enumerate walks all partitions (≤ MaxSplits splits with boundaries drawn
// from the candidates) crossed with per-split GPU-kind assignments present
// in the cluster.
func enumerate(cfg Config, visit func(bounds []int, kinds []gpu.Kind)) {
	cands := boundaryCandidates(cfg)
	var kindsAvail []gpu.Kind
	for _, k := range gpu.Kinds() {
		if len(cfg.Cluster.OfKind(k)) > 0 {
			kindsAvail = append(kindsAvail, k)
		}
	}
	if len(kindsAvail) == 0 {
		return
	}

	var walkKinds func(bounds []int, kinds []gpu.Kind)
	walkKinds = func(bounds []int, kinds []gpu.Kind) {
		n := len(bounds) + 1
		if len(kinds) == n {
			visit(bounds, kinds)
			return
		}
		for _, k := range kindsAvail {
			walkKinds(bounds, append(kinds, k))
		}
	}

	var walkBounds func(start int, bounds []int)
	walkBounds = func(start int, bounds []int) {
		walkKinds(bounds, nil)
		if len(bounds)+1 >= cfg.MaxSplits {
			return
		}
		for i := start; i < len(cands); i++ {
			walkBounds(i+1, append(bounds, cands[i]))
		}
	}
	walkBounds(0, nil)
}

// partitionFits checks every split of a partition against its kind.
func partitionFits(cfg Config, splits []Split) bool {
	for _, s := range splits {
		if !SplitFits(cfg.Model, s.From, s.To, cfg.Batch, s.Kind) {
			return false
		}
	}
	return true
}

// stageGeometry computes per-split times, comm and survival for a
// partition under the config's execution mode. This is the unmemoized
// path: O(L) per candidate, plus a model clone under the exit-wrapper.
func stageGeometry(cfg Config, bounds []int, kinds []gpu.Kind) []Split {
	L := cfg.Model.Base.NumLayers()
	m := cfg.Model
	if cfg.DisableInteriorRamps {
		m = (&Plan{Splits: splitsFromBounds(bounds, L), DisabledInteriorRamps: true}).ExecModel(cfg.Model)
	}
	froms := []int{1}
	for _, b := range bounds {
		froms = append(froms, b+1)
	}
	splits := make([]Split, len(froms))
	for i, from := range froms {
		to := L
		if i < len(bounds) {
			to = bounds[i]
		}
		spec := gpu.Get(kinds[i])
		sIn := cfg.Profile.At(from)
		sOut := 0.0
		if to < L {
			sOut = cfg.Profile.After(to)
		}
		exitFrac := 0.0
		if sIn > 0 {
			exitFrac = (sIn - sOut) / sIn
		}
		st := exec.SplitTime(m, from, to, cfg.Batch, exitFrac, spec)
		// The boundary handoff (sync + reform) overlaps the next batch in
		// pipelined execution, so it counts toward latency via CommTime
		// rather than stage time.
		comm := exec.SplitHandoff(cfg.Batch, exitFrac)
		if to < L {
			// Conservative: plan with the slowest interconnect; the
			// runtime can only do better with local placement.
			link := cfg.Cluster.Topology.WorstCase()
			comm += link.TransferTime(cfg.Model.Base.Layers[to-1].ActBytes * float64(cfg.Batch))
		}
		splits[i] = Split{From: from, To: to, Kind: kinds[i], StageTime: st, CommTime: comm, Survival: sIn}
	}
	return splits
}

func splitsFromBounds(bounds []int, l int) []Split {
	from := 1
	var out []Split
	for _, b := range bounds {
		out = append(out, Split{From: from, To: b})
		from = b + 1
	}
	return append(out, Split{From: from, To: l})
}

// evaluateMaxRate allocates every available GPU greedily to the bottleneck
// split and reports the resulting plan, or the reason the candidate was
// rejected ("" means feasible).
func evaluateMaxRate(cfg Config, bounds []int, kinds []gpu.Kind) (Plan, RejectReason) {
	splits := stageGeometry(cfg, bounds, kinds)
	if !partitionFits(cfg, splits) {
		return Plan{}, RejectMemory
	}
	if !cfg.ModelParallel {
		return evaluateSerial(cfg, splits)
	}
	avail := cfg.Cluster.Counts()

	// Start with one replica each; infeasible if kinds are short.
	for i := range splits {
		if avail[splits[i].Kind] == 0 {
			return Plan{}, RejectReplicas
		}
		avail[splits[i].Kind]--
		splits[i].Replicas = 1
	}
	rate := func(i int) float64 {
		w := workPerSample(splits[i], cfg.Batch, cfg.Pipelining)
		if w <= 0 {
			return math.Inf(1)
		}
		return float64(splits[i].Replicas) / w
	}
	for {
		// Find the bottleneck stage that can still grow.
		bi, brate := -1, math.Inf(1)
		for i := range splits {
			r := rate(i)
			if r < brate {
				brate, bi = r, i
			}
		}
		if bi < 0 || avail[splits[bi].Kind] == 0 {
			break
		}
		avail[splits[bi].Kind]--
		splits[bi].Replicas++
	}
	return finishPlan(cfg, splits)
}

// evaluateMinAlloc gives each split exactly the replicas needed for the
// target rate, reporting the rejection reason ("" means feasible; the
// caller still checks the achieved rate against the target).
func evaluateMinAlloc(cfg Config, bounds []int, kinds []gpu.Kind, target float64) (Plan, RejectReason) {
	splits := stageGeometry(cfg, bounds, kinds)
	if !partitionFits(cfg, splits) {
		return Plan{}, RejectMemory
	}
	if !cfg.ModelParallel {
		return evaluateSerial(cfg, splits)
	}
	avail := cfg.Cluster.Counts()
	for i := range splits {
		w := workPerSample(splits[i], cfg.Batch, cfg.Pipelining)
		need := int(math.Ceil(target * w))
		if need < 1 {
			need = 1
		}
		if avail[splits[i].Kind] < need {
			return Plan{}, RejectReplicas
		}
		avail[splits[i].Kind] -= need
		splits[i].Replicas = need
	}
	return finishPlan(cfg, splits)
}
