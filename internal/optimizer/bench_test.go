package optimizer

import (
	"fmt"
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/profile"
	"e3/internal/workload"
)

// benchCase is one planner workload for the benchmark grid: a model scale
// crossed with a cluster heterogeneity level. The grid is what
// `e3-bench -plan-bench` samples to produce BENCH_PR5.json.
type benchCase struct {
	name string
	cfg  Config
}

func benchCases(b *testing.B) []benchCase {
	mk := func(m *ee.EEModel, batch int, c *cluster.Cluster, slo float64, splits int) Config {
		return Config{
			Model:   m,
			Profile: profile.FromDist(m, workload.Mix(0.8), 4000, 1),
			Batch:   batch, Cluster: c,
			SLO: slo, SlackFrac: 0.2, MinExitFrac: DefaultMinExitFrac,
			MaxSplits: splits, Pipelining: true, ModelParallel: true,
		}
	}
	deebert := ee.NewDeeBERT(model.BERTBase(), 0.4)
	large := ee.NewDeeBERT(model.BERTLarge(), 0.4)
	llama := ee.NewLlamaEE(model.Llama318B())
	cases := []benchCase{
		{"small/1kind", mk(deebert, 8, cluster.Homogeneous(gpu.V100, 16), 0.100, 3)},
		{"small/4kind", mk(deebert, 8, cluster.PaperEvaluation(), 0.100, 4)},
		{"bert-large/2kind", mk(large, 8, cluster.New(map[gpu.Kind]int{gpu.V100: 12, gpu.A6000: 8}, 4), 0.250, 3)},
		{"bert-large/4kind", mk(large, 8, cluster.PaperEvaluation(), 0.250, 4)},
		{"llama/3kind", mk(llama, 4, cluster.New(map[gpu.Kind]int{gpu.V100: 16, gpu.A6000: 16, gpu.P100: 8}, 4), 2.0, 4)},
	}
	for _, c := range cases {
		if _, err := MaximizeGoodput(c.cfg); err != nil {
			b.Fatalf("%s: benchmark problem infeasible: %v", c.name, err)
		}
	}
	return cases
}

// BenchmarkSolveHomogeneous measures one full plan search on 16 V100s —
// Figure 20's homogeneous column as a proper Go benchmark.
func BenchmarkSolveHomogeneous(b *testing.B) {
	cfg := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaximizeGoodput(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveHeterogeneous measures the 46-GPU mixed-cluster search —
// Figure 20's heterogeneous column.
func BenchmarkSolveHeterogeneous(b *testing.B) {
	cfg := bertConfig(8, 0.8, cluster.PaperEvaluation())
	cfg.MaxSplits = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaximizeGoodput(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearch compares the three planner paths over the model/cluster
// grid: the retained pre-memoization reference, the memoized serial
// search, and the memoized parallel search (default workers). Allocation
// counts make the "zero per-candidate model clones" claim measurable.
func BenchmarkSearch(b *testing.B) {
	for _, bc := range benchCases(b) {
		run := func(name string, cfg Config, solve func(Config) (Plan, error)) {
			b.Run(fmt.Sprintf("%s/%s", bc.name, name), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := solve(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		run("reference", bc.cfg, MaximizeGoodputReference)
		serial := bc.cfg
		serial.Workers = -1
		run("memo-serial", serial, MaximizeGoodput)
		par := bc.cfg
		par.Workers = 0 // default pool
		run("memo-parallel", par, MaximizeGoodput)
	}
}

// BenchmarkSearchLarge is the widened search the fast path makes
// affordable: double the boundary candidates, five splits.
func BenchmarkSearchLarge(b *testing.B) {
	cfg := bertConfig(8, 0.8, cluster.PaperEvaluation())
	cfg.MaxBoundaryCands = 20
	cfg.MaxSplits = 5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaximizeGoodput(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostTableBuild isolates the memo-table construction cost that
// a replan window amortizes across objectives and windows.
func BenchmarkCostTableBuild(b *testing.B) {
	cfg := bertConfig(8, 0.8, cluster.PaperEvaluation())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := NewCostTableFor(cfg); tbl == nil {
			b.Fatal("nil table")
		}
	}
}
