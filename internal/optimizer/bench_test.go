package optimizer

import (
	"testing"

	"e3/internal/cluster"
	"e3/internal/gpu"
)

// BenchmarkSolveHomogeneous measures one full plan search on 16 V100s —
// Figure 20's homogeneous column as a proper Go benchmark.
func BenchmarkSolveHomogeneous(b *testing.B) {
	cfg := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaximizeGoodput(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveHeterogeneous measures the 46-GPU mixed-cluster search —
// Figure 20's heterogeneous column.
func BenchmarkSolveHeterogeneous(b *testing.B) {
	cfg := bertConfig(8, 0.8, cluster.PaperEvaluation())
	cfg.MaxSplits = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaximizeGoodput(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
