package optimizer

import (
	"fmt"
	"strings"
)

// PlanDiff is the structured difference between two consecutive plans —
// what the control loop's replan actually changed. Window, At, and Reason
// are filled by the caller (the replan loop knows its clock; the
// optimizer does not).
type PlanDiff struct {
	// Window is the scheduling-window index at which the replan fired; At
	// is its virtual time.
	Window int     `json:"window"`
	At     float64 `json:"at"`
	// Reason records why the loop replanned ("initial plan", "forecast
	// drift 0.081 > 0.050", ...).
	Reason string `json:"reason"`
	// Changed is false when the planner was re-run but produced an
	// identical deployment.
	Changed bool `json:"changed"`

	// OldBounds/NewBounds are the interior split boundaries (the To layer
	// of every non-final split); BoundsMoved flags a difference.
	OldBounds   []int `json:"old_bounds"`
	NewBounds   []int `json:"new_bounds"`
	BoundsMoved bool  `json:"bounds_moved"`
	// KindChanges lists per-split GPU-kind changes ("s0: V100->P100"),
	// including splits added or removed by a repartition.
	KindChanges []string `json:"kind_changes,omitempty"`
	// ReplicaChanges lists per-split replica-count deltas ("s1: 4->6").
	ReplicaChanges []string `json:"replica_changes,omitempty"`

	OldGoodput float64 `json:"old_goodput"`
	NewGoodput float64 `json:"new_goodput"`
	OldGPUs    int     `json:"old_gpus"`
	NewGPUs    int     `json:"new_gpus"`
}

// interiorBounds extracts a plan's interior split boundaries.
func interiorBounds(p Plan) []int {
	out := []int{}
	for i := 0; i < len(p.Splits)-1; i++ {
		out = append(out, p.Splits[i].To)
	}
	return out
}

// DiffPlans computes the structured difference from old to new. A
// zero-valued old plan (no splits) marks the initial plan: everything in
// new counts as a change.
func DiffPlans(old, new Plan) PlanDiff {
	d := PlanDiff{
		OldBounds: interiorBounds(old), NewBounds: interiorBounds(new),
		OldGoodput: old.Goodput, NewGoodput: new.Goodput,
		OldGPUs: old.GPUs, NewGPUs: new.GPUs,
	}
	if len(d.OldBounds) != len(d.NewBounds) {
		d.BoundsMoved = true
	} else {
		for i := range d.OldBounds {
			if d.OldBounds[i] != d.NewBounds[i] {
				d.BoundsMoved = true
				break
			}
		}
	}
	n := len(old.Splits)
	if len(new.Splits) < n {
		n = len(new.Splits)
	}
	for i := 0; i < n; i++ {
		o, w := old.Splits[i], new.Splits[i]
		if o.Kind != w.Kind {
			d.KindChanges = append(d.KindChanges, fmt.Sprintf("s%d: %s->%s", i, o.Kind, w.Kind))
		}
		if o.Replicas != w.Replicas {
			d.ReplicaChanges = append(d.ReplicaChanges, fmt.Sprintf("s%d: %d->%d", i, o.Replicas, w.Replicas))
		}
	}
	for i := n; i < len(old.Splits); i++ {
		d.KindChanges = append(d.KindChanges,
			fmt.Sprintf("s%d: removed [%d-%d]x%d@%s", i, old.Splits[i].From, old.Splits[i].To,
				old.Splits[i].Replicas, old.Splits[i].Kind))
	}
	for i := n; i < len(new.Splits); i++ {
		d.KindChanges = append(d.KindChanges,
			fmt.Sprintf("s%d: added [%d-%d]x%d@%s", i, new.Splits[i].From, new.Splits[i].To,
				new.Splits[i].Replicas, new.Splits[i].Kind))
	}
	d.Changed = len(old.Splits) == 0 || d.BoundsMoved ||
		len(d.KindChanges) > 0 || len(d.ReplicaChanges) > 0
	return d
}

// String renders the diff compactly and deterministically — the replan
// loop's determinism test compares these byte for byte.
func (d PlanDiff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window %d @%.3fs (%s):", d.Window, d.At, d.Reason)
	if !d.Changed {
		b.WriteString(" plan unchanged")
		return b.String()
	}
	if d.BoundsMoved {
		fmt.Fprintf(&b, " bounds %v->%v;", d.OldBounds, d.NewBounds)
	}
	for _, c := range d.KindChanges {
		fmt.Fprintf(&b, " kind %s;", c)
	}
	for _, c := range d.ReplicaChanges {
		fmt.Fprintf(&b, " replicas %s;", c)
	}
	fmt.Fprintf(&b, " goodput %.0f->%.0f/s; gpus %d->%d", d.OldGoodput, d.NewGoodput, d.OldGPUs, d.NewGPUs)
	return b.String()
}

// DiffRing retains the most recent plan diffs in a bounded ring, so a
// long-lived server's replan history cannot grow with uptime. Like the
// telemetry span ring, a nil *DiffRing is valid and records nothing.
type DiffRing struct {
	capacity int
	items    []PlanDiff
	next     int
	total    int
}

// NewDiffRing builds a ring retaining the most recent capacity diffs.
func NewDiffRing(capacity int) *DiffRing {
	if capacity < 1 {
		capacity = 1
	}
	return &DiffRing{capacity: capacity}
}

// Push appends one diff, evicting the oldest once full.
func (r *DiffRing) Push(d PlanDiff) {
	if r == nil {
		return
	}
	r.total++
	if len(r.items) == r.capacity {
		r.items[r.next] = d
		r.next = (r.next + 1) % r.capacity
		return
	}
	r.items = append(r.items, d)
}

// Items returns the retained diffs oldest-first (a copy).
func (r *DiffRing) Items() []PlanDiff {
	if r == nil {
		return nil
	}
	out := make([]PlanDiff, 0, len(r.items))
	if len(r.items) == r.capacity {
		out = append(out, r.items[r.next:]...)
		out = append(out, r.items[:r.next]...)
		return out
	}
	return append(out, r.items...)
}

// Total reports diffs pushed over the ring's lifetime, including evicted
// ones.
func (r *DiffRing) Total() int {
	if r == nil {
		return 0
	}
	return r.total
}

// Evicted reports how many diffs the ring has discarded.
func (r *DiffRing) Evicted() int {
	if r == nil {
		return 0
	}
	return r.total - len(r.items)
}
