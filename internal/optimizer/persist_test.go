package optimizer

import (
	"encoding/json"
	"strings"
	"testing"

	"e3/internal/cluster"
	"e3/internal/gpu"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	orig, err := MaximizeGoodput(bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 16)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Batch != orig.Batch || back.Goodput != orig.Goodput ||
		back.GPUs != orig.GPUs || len(back.Splits) != len(orig.Splits) {
		t.Fatalf("round trip changed plan:\n%v\n%v", orig, back)
	}
	for i := range orig.Splits {
		if back.Splits[i] != orig.Splits[i] {
			t.Fatalf("split %d changed: %+v vs %+v", i, orig.Splits[i], back.Splits[i])
		}
	}
}

func TestPlanJSONValidation(t *testing.T) {
	valid, err := MaximizeGoodput(bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 8)))
	if err != nil {
		t.Fatal(err)
	}
	base, err := json.Marshal(valid)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		corrupt func(string) string
	}{
		{"bad version", func(s string) string { return strings.Replace(s, `"version":1`, `"version":9`, 1) }},
		{"bad batch", func(s string) string { return strings.Replace(s, `"batch":8`, `"batch":0`, 1) }},
		{"bad kind", func(s string) string { return strings.ReplaceAll(s, `"gpu":"V100"`, `"gpu":"H100"`) }},
		{"bad from", func(s string) string { return strings.Replace(s, `"from":1`, `"from":2`, 1) }},
		{"no splits", func(s string) string { return `{"version":1,"batch":8,"splits":[]}` }},
		{"not json", func(s string) string { return "{" }},
	}
	for _, c := range cases {
		var p Plan
		if err := json.Unmarshal([]byte(c.corrupt(string(base))), &p); err == nil {
			t.Errorf("%s: corrupted plan accepted", c.name)
		}
	}
}

func TestPlanJSONStableFields(t *testing.T) {
	p, err := MaximizeGoodput(bertConfig(4, 0.8, cluster.Homogeneous(gpu.V100, 8)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, field := range []string{`"version"`, `"batch"`, `"goodput_per_sec"`, `"splits"`, `"gpu"`, `"replicas"`} {
		if !strings.Contains(s, field) {
			t.Errorf("serialized plan missing field %s: %s", field, s)
		}
	}
}
