// Planner fast-path wall-clock gate. Wall timing is deliberate and legal
// here: optimizer is outside the virtual-time lint scope and the quantity
// under test IS host cost — how much real time the memoized search saves
// over the retained reference search. The gate is env-gated
// (E3_PLAN_GATE=1, set by `make plangate`) so plain `go test ./...`
// stays timing-noise-free.
package optimizer

import (
	"os"
	"strconv"
	"testing"
	"time"

	"e3/internal/cluster"
)

// planGateFactor returns the required reference/memoized speedup. The
// measured ratio on the gate problem is ~60x, so the default of 3x leaves
// a wide margin for loaded CI hosts; E3_PLAN_GATE_FACTOR overrides it.
func planGateFactor(t *testing.T) float64 {
	if s := os.Getenv("E3_PLAN_GATE_FACTOR"); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f <= 0 {
			t.Fatalf("bad E3_PLAN_GATE_FACTOR %q", s)
		}
		return f
	}
	return 3
}

// bestOf3 returns the fastest of three wall-clock runs of fn.
func bestOf3(t *testing.T, fn func() (Plan, error)) (time.Duration, Plan) {
	t.Helper()
	var best time.Duration
	var plan Plan
	for i := 0; i < 3; i++ {
		start := time.Now()
		p, err := fn()
		d := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || d < best {
			best, plan = d, p
		}
	}
	return best, plan
}

func TestPlannerPerfGate(t *testing.T) {
	if os.Getenv("E3_PLAN_GATE") == "" {
		t.Skip("set E3_PLAN_GATE=1 (make plangate) to run the wall-clock gate")
	}
	factor := planGateFactor(t)

	// The paper-evaluation cluster at four splits: the heterogeneous
	// search the replan loop pays every drifted window.
	cfg := bertConfig(8, 0.8, cluster.PaperEvaluation())
	cfg.MaxSplits = 4

	// Warm run: both paths pay lazy init alike.
	if _, err := MaximizeGoodput(cfg); err != nil {
		t.Fatal(err)
	}

	refDur, refPlan := bestOf3(t, func() (Plan, error) { return MaximizeGoodputReference(cfg) })
	fastDur, fastPlan := bestOf3(t, func() (Plan, error) { return MaximizeGoodput(cfg) })

	if refPlan.String() != fastPlan.String() {
		t.Fatalf("memoized winner diverged from reference:\n  ref:  %s\n  fast: %s", refPlan, fastPlan)
	}
	speedup := float64(refDur) / float64(fastDur)
	t.Logf("reference %v, memoized %v: %.1fx (gate %.1fx)", refDur, fastDur, speedup, factor)
	if speedup < factor {
		t.Errorf("memoized search only %.1fx faster than reference, gate requires %.1fx", speedup, factor)
	}

	// The widened search the fast path buys: double the boundary
	// candidates and five splits must still finish within the time the
	// reference search needed at the OLD default size.
	large := cfg
	large.MaxBoundaryCands = 20
	large.MaxSplits = 5
	largeDur, _ := bestOf3(t, func() (Plan, error) { return MaximizeGoodput(large) })
	t.Logf("widened search (20 cands, 5 splits): %v vs reference-at-default %v", largeDur, refDur)
	if largeDur > refDur {
		t.Errorf("widened search (%v) slower than the reference at the old default size (%v)", largeDur, refDur)
	}
}
