package optimizer

// Plan persistence: plans serialize to JSON so deployments can be pinned,
// diffed, audited, and re-loaded without re-running the search — the ops
// counterpart of the paper's "transparent reconfiguration" hook (§4).

import (
	"encoding/json"
	"fmt"

	"e3/internal/gpu"
)

// planJSON is the stable wire format.
type planJSON struct {
	Version               int         `json:"version"`
	Batch                 int         `json:"batch"`
	Goodput               float64     `json:"goodput_per_sec"`
	CycleTime             float64     `json:"cycle_time_sec"`
	Latency               float64     `json:"latency_sec"`
	GPUs                  int         `json:"gpus"`
	CostPerSec            float64     `json:"cost_per_sec_usd"`
	DisabledInteriorRamps bool        `json:"disabled_interior_ramps"`
	Pipelined             bool        `json:"pipelined"`
	ModelParallel         bool        `json:"model_parallel"`
	Splits                []splitJSON `json:"splits"`
}

type splitJSON struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Kind      string  `json:"gpu"`
	Replicas  int     `json:"replicas"`
	StageTime float64 `json:"stage_time_sec"`
	CommTime  float64 `json:"comm_time_sec"`
	Survival  float64 `json:"survival"`
}

const planFormatVersion = 1

// MarshalJSON implements json.Marshaler for Plan.
func (p Plan) MarshalJSON() ([]byte, error) {
	out := planJSON{
		Version:               planFormatVersion,
		Batch:                 p.Batch,
		Goodput:               p.Goodput,
		CycleTime:             p.CycleTime,
		Latency:               p.Latency,
		GPUs:                  p.GPUs,
		CostPerSec:            p.CostPerSec,
		DisabledInteriorRamps: p.DisabledInteriorRamps,
		Pipelined:             p.Pipelined,
		ModelParallel:         p.ModelParallel,
	}
	for _, s := range p.Splits {
		out.Splits = append(out.Splits, splitJSON{
			From: s.From, To: s.To, Kind: string(s.Kind), Replicas: s.Replicas,
			StageTime: s.StageTime, CommTime: s.CommTime, Survival: s.Survival,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for Plan, validating the
// structural invariants a loaded plan must satisfy before execution.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var in planJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("optimizer: decoding plan: %w", err)
	}
	if in.Version != planFormatVersion {
		return fmt.Errorf("optimizer: unsupported plan format version %d", in.Version)
	}
	if in.Batch < 1 {
		return fmt.Errorf("optimizer: plan batch %d < 1", in.Batch)
	}
	if len(in.Splits) == 0 {
		return fmt.Errorf("optimizer: plan has no splits")
	}
	out := Plan{
		Batch:                 in.Batch,
		Goodput:               in.Goodput,
		CycleTime:             in.CycleTime,
		Latency:               in.Latency,
		GPUs:                  in.GPUs,
		CostPerSec:            in.CostPerSec,
		DisabledInteriorRamps: in.DisabledInteriorRamps,
		Pipelined:             in.Pipelined,
		ModelParallel:         in.ModelParallel,
	}
	want := 1
	for _, s := range in.Splits {
		if s.From != want || s.To < s.From {
			return fmt.Errorf("optimizer: plan splits not contiguous at [%d,%d] (want from=%d)", s.From, s.To, want)
		}
		if s.Replicas < 1 {
			return fmt.Errorf("optimizer: split [%d,%d] has %d replicas", s.From, s.To, s.Replicas)
		}
		// Validate the GPU kind against the catalogue.
		found := false
		for _, k := range gpu.Kinds() {
			if string(k) == s.Kind {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("optimizer: split [%d,%d] uses unknown GPU kind %q", s.From, s.To, s.Kind)
		}
		out.Splits = append(out.Splits, Split{
			From: s.From, To: s.To, Kind: gpu.Kind(s.Kind), Replicas: s.Replicas,
			StageTime: s.StageTime, CommTime: s.CommTime, Survival: s.Survival,
		})
		want = s.To + 1
	}
	*p = out
	return nil
}
