package optimizer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/profile"
)

// TestPlanInvariantsProperty fuzzes the planner over random survival
// profiles, cluster sizes and batch sizes, asserting the structural
// invariants every emitted plan must satisfy:
//   - splits cover layers 1..L contiguously
//   - every split has ≥1 replica of a kind present in the cluster
//   - total replicas per kind within inventory
//   - latency within the slacked SLO, goodput positive and finite
//   - every split fits its device's memory
func TestPlanInvariantsProperty(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	L := m.Base.NumLayers()
	rng := rand.New(rand.NewSource(31))

	f := func(rawSurv [12]uint8, rawBatch, rawGPUs uint8, hetero bool) bool {
		// Build a random (clamped) survival curve.
		surv := make([]float64, L)
		v := 1.0
		for k := 0; k < L; k++ {
			v -= float64(rawSurv[k]%32) / 256
			if v < 0 {
				v = 0
			}
			surv[k] = v
		}
		prof := profile.NewBatch(surv)

		batch := int(rawBatch%16) + 1
		n := int(rawGPUs%24) + 2
		var clus *cluster.Cluster
		if hetero {
			clus = cluster.New(map[gpu.Kind]int{
				gpu.V100: n/2 + 1, gpu.K80: n / 2, gpu.P100: n / 3,
			}, 2)
		} else {
			clus = cluster.Homogeneous(gpu.V100, n)
		}

		cfg := Config{
			Model: m, Profile: prof, Batch: batch, Cluster: clus,
			SLO: 0.5, SlackFrac: 0.2, MinExitFrac: DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
		}
		plan, err := MaximizeGoodput(cfg)

		// The retained reference search and the memoized path (with a
		// shared prebuilt cost table) must agree with the fast default on
		// every fuzzed problem, feasible or not.
		ref, refErr := MaximizeGoodputReference(cfg)
		if (err == nil) != (refErr == nil) {
			return false
		}
		memoCfg := cfg
		memoCfg.Costs = NewCostTableFor(cfg)
		memo, memoErr := MaximizeGoodput(memoCfg)
		if (err == nil) != (memoErr == nil) {
			return false
		}
		if err != nil {
			return true // infeasible is a valid outcome
		}
		if plan.String() != ref.String() || plan.String() != memo.String() {
			return false
		}
		// Coverage.
		want := 1
		used := map[gpu.Kind]int{}
		for _, s := range plan.Splits {
			if s.From != want || s.To < s.From {
				return false
			}
			if s.Replicas < 1 {
				return false
			}
			used[s.Kind] += s.Replicas
			if !SplitFits(m, s.From, s.To, batch, s.Kind) {
				return false
			}
			want = s.To + 1
		}
		if want != L+1 {
			return false
		}
		avail := clus.Counts()
		for k, u := range used {
			if u > avail[k] {
				return false
			}
		}
		if plan.Latency > cfg.SLO*(1-cfg.SlackFrac)+1e-9 {
			return false
		}
		return plan.Goodput > 0 && plan.GPUs <= clus.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestMinimalAllocNeverBeatsMaxRate checks dominance: for the same
// setting, the minimal allocation for a target never exceeds the
// max-rate plan's GPUs-for-goodput frontier.
func TestMinimalAllocNeverBeatsMaxRate(t *testing.T) {
	cfg := bertConfig(8, 0.8, cluster.Homogeneous(gpu.V100, 24))
	full, err := MaximizeGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8} {
		target := full.Goodput * frac
		p, err := MinimizeGPUs(cfg, target)
		if err != nil {
			t.Fatalf("target %v infeasible: %v", target, err)
		}
		if p.GPUs > full.GPUs {
			t.Errorf("minimal plan for %.0f%% target uses %d GPUs > full plan's %d", frac*100, p.GPUs, full.GPUs)
		}
		if p.Goodput < target {
			t.Errorf("minimal plan misses its target: %v < %v", p.Goodput, target)
		}
	}
}
