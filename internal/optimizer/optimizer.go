// Package optimizer implements E3's planning optimization (§3.2, Fig 6):
// choose where to cut an EE-DNN into splits, which GPU kind runs each
// split, and how many replicas each split gets, so that merged survivor
// batches keep every split running at the full input batch size.
//
// The search enumerates split boundaries over the model's active ramps
// (candidates ranked by predicted exit mass) and, per partition, assigns
// one GPU kind per split (the paper's constraint: replicas of a split
// share a kind) and allocates replicas greedily to the bottleneck stage —
// which solves the max-min rate allocation the recursive DP describes,
// with pipelining composing stages by max() and non-pipelined execution by
// sum(). SLO (minus slack) bounds the end-to-end path; cost- and
// GPU-minimizing variants serve the §5.3 experiments.
package optimizer

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/exec"
	"e3/internal/gpu"
	"e3/internal/profile"
)

// Config is one planning problem.
type Config struct {
	Model   *ee.EEModel
	Profile profile.Batch
	// Batch is B0, the constant batch size every split instance runs.
	Batch   int
	Cluster *cluster.Cluster
	// SLO is the end-to-end latency bound (seconds); SlackFrac reserves
	// headroom (the paper uses 20%).
	SLO       float64
	SlackFrac float64

	// Pipelining composes stage times by max() (§3.2.2); disabling it is
	// the ablation that charges the sum.
	Pipelining bool
	// ModelParallel false forces the §5.8.7 ablation: splits execute
	// serially on each GPU with a cluster-wide barrier and unhidden
	// communication between stages.
	ModelParallel bool
	// DisableInteriorRamps applies the §3.4 exit-wrapper: only split
	// boundaries keep their ramps, saving interior ramp-head kernels.
	DisableInteriorRamps bool

	// MaxSplits bounds the partition search (default 3).
	MaxSplits int
	// MinExitFrac prunes boundary candidates with less predicted exit
	// mass (default 0.02).
	MinExitFrac float64

	// Trace optionally records the search's provenance — candidates
	// enumerated, rejections by reason, and the winner with runners-up.
	// Nil (the default) records nothing at zero cost.
	Trace *SearchTrace
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxSplits == 0 {
		out.MaxSplits = 3
	}
	if out.MinExitFrac == 0 {
		out.MinExitFrac = 0.02
	}
	if out.SlackFrac == 0 {
		out.SlackFrac = 0.2
	}
	return out
}

func (c *Config) validate() error {
	if c.Model == nil || c.Cluster == nil {
		return errors.New("optimizer: nil model or cluster")
	}
	if c.Batch < 1 {
		return fmt.Errorf("optimizer: batch %d < 1", c.Batch)
	}
	if c.Profile.L != c.Model.Base.NumLayers() {
		return fmt.Errorf("optimizer: profile over %d layers, model has %d",
			c.Profile.L, c.Model.Base.NumLayers())
	}
	if c.SLO <= 0 {
		return errors.New("optimizer: non-positive SLO")
	}
	return nil
}

// Split is one planned stage.
type Split struct {
	From, To int // 1-based inclusive layer range
	Kind     gpu.Kind
	Replicas int
	// StageTime is the planned busy time of one instance per batch.
	StageTime float64
	// CommTime is the planned transfer time into the *next* split (0 for
	// the last split).
	CommTime float64
	// Survival is the predicted fraction of fresh samples entering this
	// split.
	Survival float64
}

// Plan is the optimizer's output.
type Plan struct {
	Splits []Split
	// Goodput is the planned sustainable fresh-sample rate (samples/s).
	Goodput float64
	// CycleTime is the pipeline bottleneck stage interval.
	CycleTime float64
	// Latency is the planned worst-case end-to-end latency.
	Latency float64
	// Batch is B0.
	Batch int
	// GPUs is the total device count used; CostPerSec its rental price.
	GPUs       int
	CostPerSec float64
	// DisabledInteriorRamps mirrors the config flag so executors build
	// the right model.
	DisabledInteriorRamps bool
	Pipelined             bool
	ModelParallel         bool
}

// String renders a plan compactly.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan{B0=%d goodput=%.0f/s cycle=%.2fms lat=%.1fms gpus=%d $%.5f/s;",
		p.Batch, p.Goodput, p.CycleTime*1e3, p.Latency*1e3, p.GPUs, p.CostPerSec)
	for _, s := range p.Splits {
		fmt.Fprintf(&b, " [%d-%d]x%d@%s", s.From, s.To, s.Replicas, s.Kind)
	}
	b.WriteString("}")
	return b.String()
}

// ExecModel returns the EE model the executors should run for this plan:
// the original, or a clone with interior ramps disabled when the plan was
// built with the exit-wrapper.
func (p Plan) ExecModel(m *ee.EEModel) *ee.EEModel {
	if !p.DisabledInteriorRamps {
		return m
	}
	boundary := make(map[int]bool)
	for _, s := range p.Splits {
		boundary[s.To] = true
	}
	clone := m.Clone()
	for _, r := range clone.Ramps() {
		if !boundary[r] {
			// Ignore error: r comes from Ramps() so it must exist.
			_ = clone.Disable(r)
		} else {
			_ = clone.Enable(r)
		}
	}
	return clone
}

// MaximizeGoodput plans the highest sustainable rate on the full cluster.
func MaximizeGoodput(cfg Config) (Plan, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Plan{}, err
	}
	cfg.Trace.begin(cfg, "max-goodput", 0,
		func(a, b Plan) bool { return a.Goodput > b.Goodput },
		func(p Plan) float64 { return p.Goodput })
	best := Plan{}
	found := false
	forEachCandidate(cfg, func(p Plan) {
		if p.Goodput > best.Goodput {
			best = p
			found = true
		}
	})
	var err error
	if !found {
		err = fmt.Errorf("optimizer: no feasible plan for batch %d under SLO %.0fms",
			cfg.Batch, cfg.SLO*1e3)
	}
	cfg.Trace.finish(best, found, err)
	if err != nil {
		return Plan{}, err
	}
	return best, nil
}

// MinimizeGPUs plans the smallest device count sustaining target goodput
// (Figure 14). Ties break toward higher goodput.
func MinimizeGPUs(cfg Config, target float64) (Plan, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Plan{}, err
	}
	betterGPUs := func(a, b Plan) bool {
		return a.GPUs < b.GPUs || (a.GPUs == b.GPUs && a.Goodput > b.Goodput)
	}
	cfg.Trace.begin(cfg, "min-gpus", target, betterGPUs,
		func(p Plan) float64 { return float64(p.GPUs) })
	best := Plan{GPUs: math.MaxInt}
	found := false
	forEachCandidateMinimal(cfg, target, func(p Plan) {
		if betterGPUs(p, best) {
			best = p
			found = true
		}
	})
	var err error
	if !found {
		err = fmt.Errorf("optimizer: cluster cannot sustain %.0f samples/s at batch %d", target, cfg.Batch)
	}
	cfg.Trace.finish(best, found, err)
	if err != nil {
		return Plan{}, err
	}
	return best, nil
}

// MinimizeCost plans the cheapest GPU mix sustaining target goodput
// (Figure 15).
func MinimizeCost(cfg Config, target float64) (Plan, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Plan{}, err
	}
	betterCost := func(a, b Plan) bool {
		return a.CostPerSec < b.CostPerSec || (a.CostPerSec == b.CostPerSec && a.Goodput > b.Goodput)
	}
	cfg.Trace.begin(cfg, "min-cost", target, betterCost,
		func(p Plan) float64 { return p.CostPerSec })
	best := Plan{CostPerSec: math.Inf(1)}
	found := false
	forEachCandidateMinimal(cfg, target, func(p Plan) {
		if betterCost(p, best) {
			best = p
			found = true
		}
	})
	var err error
	if !found {
		err = fmt.Errorf("optimizer: cluster cannot sustain %.0f samples/s at batch %d within cost search", target, cfg.Batch)
	}
	cfg.Trace.finish(best, found, err)
	if err != nil {
		return Plan{}, err
	}
	return best, nil
}

// boundaryCandidates returns active ramp positions worth cutting at,
// ranked by predicted exit mass and capped to keep the search tractable.
func boundaryCandidates(cfg Config) []int {
	type cand struct {
		pos  int
		mass float64
	}
	var cands []cand
	pruned := 0
	for _, r := range cfg.Model.ActiveRamps() {
		mass := cfg.Profile.At(r) - cfg.Profile.After(r)
		if mass >= cfg.MinExitFrac {
			cands = append(cands, cand{r, mass})
		} else {
			pruned++
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mass != cands[j].mass {
			return cands[i].mass > cands[j].mass
		}
		return cands[i].pos < cands[j].pos
	})
	const maxCands = 10
	capped := 0
	if len(cands) > maxCands {
		capped = len(cands) - maxCands
		cands = cands[:maxCands]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.pos
	}
	sort.Ints(out)
	cfg.Trace.ramps(out, pruned, capped)
	return out
}

// forEachCandidate evaluates every partition × kind assignment at maximum
// replica allocation and reports feasible plans.
func forEachCandidate(cfg Config, emit func(Plan)) {
	enumerate(cfg, func(bounds []int, kinds []gpu.Kind) {
		cfg.Trace.candidate()
		p, reject := evaluateMaxRate(cfg, bounds, kinds)
		if reject != "" {
			cfg.Trace.reject(reject)
			return
		}
		cfg.Trace.feasible(p)
		emit(p)
	})
}

// forEachCandidateMinimal evaluates partitions with the *minimal* replica
// counts achieving the target rate; candidates below the target are
// rejected here so the trace accounts them.
func forEachCandidateMinimal(cfg Config, target float64, emit func(Plan)) {
	enumerate(cfg, func(bounds []int, kinds []gpu.Kind) {
		cfg.Trace.candidate()
		p, reject := evaluateMinAlloc(cfg, bounds, kinds, target)
		if reject == "" && p.Goodput < target {
			reject = RejectRate
		}
		if reject != "" {
			cfg.Trace.reject(reject)
			return
		}
		cfg.Trace.feasible(p)
		emit(p)
	})
}

// enumerate walks all partitions (≤ MaxSplits splits with boundaries drawn
// from the candidates) crossed with per-split GPU-kind assignments present
// in the cluster.
func enumerate(cfg Config, visit func(bounds []int, kinds []gpu.Kind)) {
	cands := boundaryCandidates(cfg)
	var kindsAvail []gpu.Kind
	for _, k := range gpu.Kinds() {
		if len(cfg.Cluster.OfKind(k)) > 0 {
			kindsAvail = append(kindsAvail, k)
		}
	}
	if len(kindsAvail) == 0 {
		return
	}

	var walkKinds func(bounds []int, kinds []gpu.Kind)
	walkKinds = func(bounds []int, kinds []gpu.Kind) {
		n := len(bounds) + 1
		if len(kinds) == n {
			visit(bounds, kinds)
			return
		}
		for _, k := range kindsAvail {
			walkKinds(bounds, append(kinds, k))
		}
	}

	var walkBounds func(start int, bounds []int)
	walkBounds = func(start int, bounds []int) {
		walkKinds(bounds, nil)
		if len(bounds)+1 >= cfg.MaxSplits {
			return
		}
		for i := start; i < len(cands); i++ {
			walkBounds(i+1, append(bounds, cands[i]))
		}
	}
	walkBounds(0, nil)
}

// SplitFits reports whether layers [from, to] of the model fit in one
// device of the given kind at the given batch: weights plus an activation
// working set (double-buffered input/output per sample) within 90% of
// device memory. It is the memory-feasibility constraint the planner
// applies to every (split, kind) assignment — an 8B-parameter model's
// full weight footprint does not fit a 12 GB K80, but its splits can.
func SplitFits(m *ee.EEModel, from, to, batch int, kind gpu.Kind) bool {
	spec := gpu.Get(kind)
	weights := 0.0
	maxAct := 0.0
	for k := from; k <= to; k++ {
		l := m.Base.Layers[k-1]
		weights += l.WeightBytes
		if l.ActBytes > maxAct {
			maxAct = l.ActBytes
		}
	}
	// LM-head ramps keep the vocabulary projection resident.
	if m.LMHeadRamp {
		weights += 2 * float64(m.Base.Hidden) * float64(m.Base.Vocab)
	}
	working := 4 * maxAct * float64(batch) // in/out double buffering
	return weights+working <= spec.MemGB*1e9*0.9
}

// partitionFits checks every split of a partition against its kind.
func partitionFits(cfg Config, splits []Split) bool {
	for _, s := range splits {
		if !SplitFits(cfg.Model, s.From, s.To, cfg.Batch, s.Kind) {
			return false
		}
	}
	return true
}

// stageGeometry computes per-split times, comm and survival for a
// partition under the config's execution mode.
func stageGeometry(cfg Config, bounds []int, kinds []gpu.Kind) []Split {
	L := cfg.Model.Base.NumLayers()
	m := cfg.Model
	if cfg.DisableInteriorRamps {
		m = (&Plan{Splits: splitsFromBounds(bounds, L), DisabledInteriorRamps: true}).ExecModel(cfg.Model)
	}
	froms := []int{1}
	for _, b := range bounds {
		froms = append(froms, b+1)
	}
	splits := make([]Split, len(froms))
	for i, from := range froms {
		to := L
		if i < len(bounds) {
			to = bounds[i]
		}
		spec := gpu.Get(kinds[i])
		sIn := cfg.Profile.At(from)
		sOut := 0.0
		if to < L {
			sOut = cfg.Profile.After(to)
		}
		exitFrac := 0.0
		if sIn > 0 {
			exitFrac = (sIn - sOut) / sIn
		}
		st := exec.SplitTime(m, from, to, cfg.Batch, exitFrac, spec)
		// The boundary handoff (sync + reform) overlaps the next batch in
		// pipelined execution, so it counts toward latency via CommTime
		// rather than stage time.
		comm := exec.SplitHandoff(cfg.Batch, exitFrac)
		if to < L {
			// Conservative: plan with the slowest interconnect; the
			// runtime can only do better with local placement.
			link := cfg.Cluster.Topology.WorstCase()
			comm += link.TransferTime(cfg.Model.Base.Layers[to-1].ActBytes * float64(cfg.Batch))
		}
		splits[i] = Split{From: from, To: to, Kind: kinds[i], StageTime: st, CommTime: comm, Survival: sIn}
	}
	return splits
}

func splitsFromBounds(bounds []int, l int) []Split {
	from := 1
	var out []Split
	for _, b := range bounds {
		out = append(out, Split{From: from, To: b})
		from = b + 1
	}
	return append(out, Split{From: from, To: l})
}

// workPerSample is the GPU-seconds one fresh sample costs at split i,
// accounting for the fraction of samples that still reach it.
func workPerSample(s Split, batch int, pipelined bool) float64 {
	t := s.StageTime
	if pipelined {
		// A stage can overlap compute with its inbound transfer, but its
		// effective interval cannot beat the transfer itself.
		if s.CommTime > t {
			t = s.CommTime
		}
	}
	return s.Survival * t / float64(batch)
}

// evaluateMaxRate allocates every available GPU greedily to the bottleneck
// split and reports the resulting plan, or the reason the candidate was
// rejected ("" means feasible).
func evaluateMaxRate(cfg Config, bounds []int, kinds []gpu.Kind) (Plan, RejectReason) {
	splits := stageGeometry(cfg, bounds, kinds)
	if !partitionFits(cfg, splits) {
		return Plan{}, RejectMemory
	}
	if !cfg.ModelParallel {
		return evaluateSerial(cfg, splits)
	}
	avail := cfg.Cluster.Counts()

	// Start with one replica each; infeasible if kinds are short.
	for i := range splits {
		if avail[splits[i].Kind] == 0 {
			return Plan{}, RejectReplicas
		}
		avail[splits[i].Kind]--
		splits[i].Replicas = 1
	}
	rate := func(i int) float64 {
		w := workPerSample(splits[i], cfg.Batch, cfg.Pipelining)
		if w <= 0 {
			return math.Inf(1)
		}
		return float64(splits[i].Replicas) / w
	}
	for {
		// Find the bottleneck stage that can still grow.
		bi, brate := -1, math.Inf(1)
		for i := range splits {
			r := rate(i)
			if r < brate {
				brate, bi = r, i
			}
		}
		if bi < 0 || avail[splits[bi].Kind] == 0 {
			break
		}
		avail[splits[bi].Kind]--
		splits[bi].Replicas++
	}
	return finishPlan(cfg, splits)
}

// evaluateMinAlloc gives each split exactly the replicas needed for the
// target rate, reporting the rejection reason ("" means feasible; the
// caller still checks the achieved rate against the target).
func evaluateMinAlloc(cfg Config, bounds []int, kinds []gpu.Kind, target float64) (Plan, RejectReason) {
	splits := stageGeometry(cfg, bounds, kinds)
	if !partitionFits(cfg, splits) {
		return Plan{}, RejectMemory
	}
	if !cfg.ModelParallel {
		return evaluateSerial(cfg, splits)
	}
	avail := cfg.Cluster.Counts()
	for i := range splits {
		w := workPerSample(splits[i], cfg.Batch, cfg.Pipelining)
		need := int(math.Ceil(target * w))
		if need < 1 {
			need = 1
		}
		if avail[splits[i].Kind] < need {
			return Plan{}, RejectReplicas
		}
		avail[splits[i].Kind] -= need
		splits[i].Replicas = need
	}
	return finishPlan(cfg, splits)
}

// evaluateSerial models the §5.8.7 ablation: the cluster executes split
// phases globally — every GPU runs split 1 on a fresh batch, a barrier
// and survivor exchange follow, then split 2 runs over the (fewer) merged
// batches while the remaining GPUs idle, and so on. Each phase costs its
// full stage time regardless of how many GPUs still have work, which is
// exactly the utilization loss model parallelism removes.
func evaluateSerial(cfg Config, splits []Split) (Plan, RejectReason) {
	g := cfg.Cluster.Size()
	if g == 0 {
		return Plan{}, RejectReplicas
	}
	const barrier = 1e-3 // global synchronization per stage transition
	round := 0.0
	for i := range splits {
		splits[i].Replicas = g
		round += splits[i].StageTime
		if i < len(splits)-1 {
			round += splits[i].CommTime + barrier
		}
	}
	if round <= 0 {
		return Plan{}, RejectDegenerate
	}
	goodput := float64(g) * float64(cfg.Batch) / round
	lat := round
	if lat > cfg.SLO*(1-cfg.SlackFrac) {
		return Plan{}, RejectSLO
	}
	cost := 0.0
	for _, d := range cfg.Cluster.Devices {
		cost += d.Spec().CostPerSecond()
	}
	return Plan{
		Splits: splits, Goodput: goodput, CycleTime: round, Latency: lat,
		Batch: cfg.Batch, GPUs: g, CostPerSec: cost,
		DisabledInteriorRamps: cfg.DisableInteriorRamps,
		Pipelined:             false, ModelParallel: false,
	}, ""
}

// finishPlan derives rate, latency, and cost, and applies the SLO check,
// reporting why the candidate died ("" means feasible).
func finishPlan(cfg Config, splits []Split) (Plan, RejectReason) {
	goodput := math.Inf(1)
	cycle := 0.0
	latency := 0.0
	gpus := 0
	cost := 0.0
	for _, s := range splits {
		w := workPerSample(s, cfg.Batch, cfg.Pipelining)
		if w > 0 {
			if r := float64(s.Replicas) / w; r < goodput {
				goodput = r
			}
		}
		interval := s.StageTime
		if cfg.Pipelining && s.CommTime > interval {
			interval = s.CommTime
		}
		if interval > cycle {
			cycle = interval
		}
		latency += s.StageTime + s.CommTime
		gpus += s.Replicas
		cost += float64(s.Replicas) * gpu.Get(s.Kind).CostPerSecond()
	}
	if !cfg.Pipelining {
		// Without pipelining a batch occupies the whole chain; each
		// instance's effective interval is the full path.
		goodput = 0.0
		path := latency
		for _, s := range splits {
			r := float64(s.Replicas) * float64(cfg.Batch) / (s.Survival * path)
			if goodput == 0 || r < goodput {
				goodput = r
			}
		}
		cycle = path
	}
	// One bottleneck cycle of queueing slack at merge points; a
	// single-split plan has no merges.
	if len(splits) > 1 {
		latency += cycle
	}
	if latency > cfg.SLO*(1-cfg.SlackFrac) {
		return Plan{}, RejectSLO
	}
	if math.IsInf(goodput, 1) {
		return Plan{}, RejectDegenerate
	}
	return Plan{
		Splits: splits, Goodput: goodput, CycleTime: cycle, Latency: latency,
		Batch: cfg.Batch, GPUs: gpus, CostPerSec: cost,
		DisabledInteriorRamps: cfg.DisableInteriorRamps,
		Pipelined:             cfg.Pipelining, ModelParallel: true,
	}, ""
}
