// Package optimizer implements E3's planning optimization (§3.2, Fig 6):
// choose where to cut an EE-DNN into splits, which GPU kind runs each
// split, and how many replicas each split gets, so that merged survivor
// batches keep every split running at the full input batch size.
//
// The search enumerates split boundaries over the model's active ramps
// (candidates ranked by predicted exit mass) and, per partition, assigns
// one GPU kind per split (the paper's constraint: replicas of a split
// share a kind) and allocates replicas greedily to the bottleneck stage —
// which solves the max-min rate allocation the recursive DP describes,
// with pipelining composing stages by max() and non-pipelined execution by
// sum(). SLO (minus slack) bounds the end-to-end path; cost- and
// GPU-minimizing variants serve the §5.3 experiments.
package optimizer

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/profile"
)

// Tunable defaults. Config fields using negative-means-default sentinels
// reference these so callers can both request the default explicitly and
// configure the true zero ("prune nothing", "no slack").
const (
	// DefaultMaxSplits bounds the partition search depth.
	DefaultMaxSplits = 3
	// DefaultMinExitFrac prunes boundary candidates below 2% predicted
	// exit mass.
	DefaultMinExitFrac = 0.02
	// DefaultSlackFrac reserves the paper's 20% SLO headroom.
	DefaultSlackFrac = 0.2
	// DefaultMaxBoundaryCands caps the exit ramps considered as split
	// boundaries, ranked by predicted exit mass.
	DefaultMaxBoundaryCands = 10
)

// Config is one planning problem.
type Config struct {
	Model   *ee.EEModel
	Profile profile.Batch
	// Batch is B0, the constant batch size every split instance runs.
	Batch   int
	Cluster *cluster.Cluster
	// SLO is the end-to-end latency bound (seconds); SlackFrac reserves
	// headroom (the paper uses 20%). A zero SlackFrac means no slack;
	// negative selects DefaultSlackFrac.
	SLO       float64
	SlackFrac float64

	// Pipelining composes stage times by max() (§3.2.2); disabling it is
	// the ablation that charges the sum.
	Pipelining bool
	// ModelParallel false forces the §5.8.7 ablation: splits execute
	// serially on each GPU with a cluster-wide barrier and unhidden
	// communication between stages.
	ModelParallel bool
	// DisableInteriorRamps applies the §3.4 exit-wrapper: only split
	// boundaries keep their ramps, saving interior ramp-head kernels.
	DisableInteriorRamps bool

	// MaxSplits bounds the partition search (0 selects DefaultMaxSplits).
	MaxSplits int
	// MinExitFrac prunes boundary candidates with less predicted exit
	// mass. Zero keeps every active ramp; negative selects
	// DefaultMinExitFrac.
	MinExitFrac float64
	// MaxBoundaryCands caps how many exit ramps (ranked by predicted exit
	// mass) the search considers as split boundaries. Zero selects
	// DefaultMaxBoundaryCands; negative removes the cap.
	MaxBoundaryCands int

	// Workers bounds the search's worker pool (the optimizer is
	// deliberately outside the event-loop lint scope). Zero selects
	// min(GOMAXPROCS, 8); negative forces serial. Any value returns a
	// byte-identical plan and trace — parallelism is an implementation
	// detail, not a semantic knob.
	Workers int
	// Costs optionally supplies a precomputed segment cost table (see
	// NewCostTableFor). A nil or incompatible table is replaced
	// internally; sharing a compatible one across objectives and replan
	// windows skips the O(L²·K) rebuild.
	Costs *CostTable

	// Trace optionally records the search's provenance — candidates
	// enumerated, rejections by reason, and the winner with runners-up.
	// Nil (the default) records nothing at zero cost.
	Trace *SearchTrace
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxSplits == 0 {
		out.MaxSplits = DefaultMaxSplits
	}
	// Negative means "default" so that explicit zeros stay configurable:
	// MinExitFrac 0 keeps every active ramp, SlackFrac 0 spends the whole
	// SLO.
	if out.MinExitFrac < 0 {
		out.MinExitFrac = DefaultMinExitFrac
	}
	if out.SlackFrac < 0 {
		out.SlackFrac = DefaultSlackFrac
	}
	if out.MaxBoundaryCands == 0 {
		out.MaxBoundaryCands = DefaultMaxBoundaryCands
	}
	if out.Workers == 0 {
		out.Workers = defaultWorkers()
	}
	if out.Workers < 1 {
		out.Workers = 1
	}
	return out
}

func (c *Config) validate() error {
	if c.Model == nil || c.Cluster == nil {
		return errors.New("optimizer: nil model or cluster")
	}
	if c.Batch < 1 {
		return fmt.Errorf("optimizer: batch %d < 1", c.Batch)
	}
	if c.MaxSplits < 1 {
		return fmt.Errorf("optimizer: MaxSplits %d < 1", c.MaxSplits)
	}
	if c.Profile.L != c.Model.Base.NumLayers() {
		return fmt.Errorf("optimizer: profile over %d layers, model has %d",
			c.Profile.L, c.Model.Base.NumLayers())
	}
	if c.SLO <= 0 {
		return errors.New("optimizer: non-positive SLO")
	}
	return nil
}

// Split is one planned stage.
type Split struct {
	From, To int // 1-based inclusive layer range
	Kind     gpu.Kind
	Replicas int
	// StageTime is the planned busy time of one instance per batch.
	StageTime float64
	// CommTime is the planned transfer time into the *next* split (0 for
	// the last split).
	CommTime float64
	// Survival is the predicted fraction of fresh samples entering this
	// split.
	Survival float64
}

// Plan is the optimizer's output.
type Plan struct {
	Splits []Split
	// Goodput is the planned sustainable fresh-sample rate (samples/s).
	Goodput float64
	// CycleTime is the pipeline bottleneck stage interval.
	CycleTime float64
	// Latency is the planned worst-case end-to-end latency.
	Latency float64
	// Batch is B0.
	Batch int
	// GPUs is the total device count used; CostPerSec its rental price.
	GPUs       int
	CostPerSec float64
	// DisabledInteriorRamps mirrors the config flag so executors build
	// the right model.
	DisabledInteriorRamps bool
	Pipelined             bool
	ModelParallel         bool
}

// String renders a plan compactly.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan{B0=%d goodput=%.0f/s cycle=%.2fms lat=%.1fms gpus=%d $%.5f/s;",
		p.Batch, p.Goodput, p.CycleTime*1e3, p.Latency*1e3, p.GPUs, p.CostPerSec)
	for _, s := range p.Splits {
		fmt.Fprintf(&b, " [%d-%d]x%d@%s", s.From, s.To, s.Replicas, s.Kind)
	}
	b.WriteString("}")
	return b.String()
}

// ExecModel returns the EE model the executors should run for this plan:
// the original, or a clone with interior ramps disabled when the plan was
// built with the exit-wrapper.
func (p Plan) ExecModel(m *ee.EEModel) *ee.EEModel {
	if !p.DisabledInteriorRamps {
		return m
	}
	boundary := make(map[int]bool)
	for _, s := range p.Splits {
		boundary[s.To] = true
	}
	clone := m.Clone()
	for _, r := range clone.Ramps() {
		if !boundary[r] {
			// Ignore error: r comes from Ramps() so it must exist.
			_ = clone.Disable(r)
		} else {
			_ = clone.Enable(r)
		}
	}
	return clone
}

// MaximizeGoodput plans the highest sustainable rate on the full cluster.
func MaximizeGoodput(cfg Config) (Plan, error) {
	return solve(cfg, goodputObjective(), runFast)
}

// MinimizeGPUs plans the smallest device count sustaining target goodput
// (Figure 14). Ties break toward higher goodput.
func MinimizeGPUs(cfg Config, target float64) (Plan, error) {
	return solve(cfg, gpusObjective(target), runFast)
}

// MinimizeCost plans the cheapest GPU mix sustaining target goodput
// (Figure 15).
func MinimizeCost(cfg Config, target float64) (Plan, error) {
	return solve(cfg, costObjective(target), runFast)
}

// boundaryCandidates returns active ramp positions worth cutting at,
// ranked by predicted exit mass and capped to keep the search tractable.
func boundaryCandidates(cfg Config) []int {
	type cand struct {
		pos  int
		mass float64
	}
	var cands []cand
	pruned := 0
	for _, r := range cfg.Model.ActiveRamps() {
		mass := cfg.Profile.At(r) - cfg.Profile.After(r)
		if mass >= cfg.MinExitFrac {
			cands = append(cands, cand{r, mass})
		} else {
			pruned++
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mass != cands[j].mass {
			return cands[i].mass > cands[j].mass
		}
		return cands[i].pos < cands[j].pos
	})
	maxCands := cfg.MaxBoundaryCands
	if maxCands < 0 {
		maxCands = len(cands)
	}
	capped := 0
	if len(cands) > maxCands {
		capped = len(cands) - maxCands
		cands = cands[:maxCands]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.pos
	}
	sort.Ints(out)
	cfg.Trace.ramps(out, pruned, capped)
	return out
}

// SplitFits reports whether layers [from, to] of the model fit in one
// device of the given kind at the given batch: weights plus an activation
// working set (double-buffered input/output per sample) within 90% of
// device memory. It is the memory-feasibility constraint the planner
// applies to every (split, kind) assignment — an 8B-parameter model's
// full weight footprint does not fit a 12 GB K80, but its splits can.
func SplitFits(m *ee.EEModel, from, to, batch int, kind gpu.Kind) bool {
	spec := gpu.Get(kind)
	weights := 0.0
	maxAct := 0.0
	for k := from; k <= to; k++ {
		l := m.Base.Layers[k-1]
		weights += l.WeightBytes
		if l.ActBytes > maxAct {
			maxAct = l.ActBytes
		}
	}
	// LM-head ramps keep the vocabulary projection resident.
	if m.LMHeadRamp {
		weights += 2 * float64(m.Base.Hidden) * float64(m.Base.Vocab)
	}
	working := 4 * maxAct * float64(batch) // in/out double buffering
	return weights+working <= spec.MemGB*1e9*0.9
}

// workPerSample is the GPU-seconds one fresh sample costs at split i,
// accounting for the fraction of samples that still reach it.
func workPerSample(s Split, batch int, pipelined bool) float64 {
	t := s.StageTime
	if pipelined {
		// A stage can overlap compute with its inbound transfer, but its
		// effective interval cannot beat the transfer itself.
		if s.CommTime > t {
			t = s.CommTime
		}
	}
	return s.Survival * t / float64(batch)
}

// evaluateSerial models the §5.8.7 ablation: the cluster executes split
// phases globally — every GPU runs split 1 on a fresh batch, a barrier
// and survivor exchange follow, then split 2 runs over the (fewer) merged
// batches while the remaining GPUs idle, and so on. Each phase costs its
// full stage time regardless of how many GPUs still have work, which is
// exactly the utilization loss model parallelism removes.
func evaluateSerial(cfg Config, splits []Split) (Plan, RejectReason) {
	g := cfg.Cluster.Size()
	if g == 0 {
		return Plan{}, RejectReplicas
	}
	const barrier = 1e-3 // global synchronization per stage transition
	round := 0.0
	for i := range splits {
		splits[i].Replicas = g
		round += splits[i].StageTime
		if i < len(splits)-1 {
			round += splits[i].CommTime + barrier
		}
	}
	if round <= 0 {
		return Plan{}, RejectDegenerate
	}
	goodput := float64(g) * float64(cfg.Batch) / round
	lat := round
	if lat > cfg.SLO*(1-cfg.SlackFrac) {
		return Plan{}, RejectSLO
	}
	cost := 0.0
	for _, d := range cfg.Cluster.Devices {
		cost += d.Spec().CostPerSecond()
	}
	return Plan{
		Splits: splits, Goodput: goodput, CycleTime: round, Latency: lat,
		Batch: cfg.Batch, GPUs: g, CostPerSec: cost,
		DisabledInteriorRamps: cfg.DisableInteriorRamps,
		Pipelined:             false, ModelParallel: false,
	}, ""
}

// finishPlan derives rate, latency, and cost, and applies the SLO check,
// reporting why the candidate died ("" means feasible).
func finishPlan(cfg Config, splits []Split) (Plan, RejectReason) {
	goodput := math.Inf(1)
	cycle := 0.0
	latency := 0.0
	gpus := 0
	cost := 0.0
	for _, s := range splits {
		w := workPerSample(s, cfg.Batch, cfg.Pipelining)
		if w > 0 {
			if r := float64(s.Replicas) / w; r < goodput {
				goodput = r
			}
		}
		interval := s.StageTime
		if cfg.Pipelining && s.CommTime > interval {
			interval = s.CommTime
		}
		if interval > cycle {
			cycle = interval
		}
		latency += s.StageTime + s.CommTime
		gpus += s.Replicas
		cost += float64(s.Replicas) * gpu.Get(s.Kind).CostPerSecond()
	}
	if !cfg.Pipelining {
		// Without pipelining a batch occupies the whole chain; each
		// instance's effective interval is the full path.
		goodput = 0.0
		path := latency
		for _, s := range splits {
			r := float64(s.Replicas) * float64(cfg.Batch) / (s.Survival * path)
			if goodput == 0 || r < goodput {
				goodput = r
			}
		}
		cycle = path
	}
	// One bottleneck cycle of queueing slack at merge points; a
	// single-split plan has no merges.
	if len(splits) > 1 {
		latency += cycle
	}
	if latency > cfg.SLO*(1-cfg.SlackFrac) {
		return Plan{}, RejectSLO
	}
	if math.IsInf(goodput, 1) {
		return Plan{}, RejectDegenerate
	}
	return Plan{
		Splits: splits, Goodput: goodput, CycleTime: cycle, Latency: latency,
		Batch: cfg.Batch, GPUs: gpus, CostPerSec: cost,
		DisabledInteriorRamps: cfg.DisableInteriorRamps,
		Pipelined:             cfg.Pipelining, ModelParallel: true,
	}, ""
}
