package optimizer

import (
	"reflect"
	"strings"
	"testing"

	"e3/internal/gpu"
)

func planWith(splits ...Split) Plan {
	gpus := 0
	for _, s := range splits {
		gpus += s.Replicas
	}
	return Plan{Splits: splits, Goodput: 1000, GPUs: gpus, Batch: 8}
}

func TestDiffPlansUnchanged(t *testing.T) {
	p := planWith(
		Split{From: 1, To: 2, Kind: gpu.V100, Replicas: 5},
		Split{From: 3, To: 12, Kind: gpu.V100, Replicas: 3},
	)
	d := DiffPlans(p, p)
	if d.Changed {
		t.Fatalf("identical plans reported changed: %v", d)
	}
	if !strings.Contains(d.String(), "plan unchanged") {
		t.Errorf("unchanged diff string: %q", d.String())
	}
}

func TestDiffPlansInitial(t *testing.T) {
	p := planWith(Split{From: 1, To: 12, Kind: gpu.V100, Replicas: 8})
	d := DiffPlans(Plan{}, p)
	if !d.Changed {
		t.Fatal("initial plan not flagged as a change")
	}
	if len(d.KindChanges) != 1 || !strings.Contains(d.KindChanges[0], "added") {
		t.Errorf("initial diff kind changes: %v", d.KindChanges)
	}
}

func TestDiffPlansStructured(t *testing.T) {
	old := planWith(
		Split{From: 1, To: 2, Kind: gpu.V100, Replicas: 5},
		Split{From: 3, To: 12, Kind: gpu.V100, Replicas: 3},
	)
	new := planWith(
		Split{From: 1, To: 3, Kind: gpu.P100, Replicas: 6},
		Split{From: 4, To: 12, Kind: gpu.V100, Replicas: 2},
	)
	d := DiffPlans(old, new)
	if !d.Changed || !d.BoundsMoved {
		t.Fatalf("expected moved bounds: %v", d)
	}
	if !reflect.DeepEqual(d.OldBounds, []int{2}) || !reflect.DeepEqual(d.NewBounds, []int{3}) {
		t.Errorf("bounds %v -> %v", d.OldBounds, d.NewBounds)
	}
	if len(d.KindChanges) != 1 || d.KindChanges[0] != "s0: V100->P100" {
		t.Errorf("kind changes: %v", d.KindChanges)
	}
	if len(d.ReplicaChanges) != 2 {
		t.Errorf("replica changes: %v", d.ReplicaChanges)
	}
	s := d.String()
	for _, want := range []string{"bounds [2]->[3]", "V100->P100", "s1: 3->2", "gpus 8->8"} {
		if !strings.Contains(s, want) {
			t.Errorf("diff string missing %q: %q", want, s)
		}
	}
}

func TestDiffPlansSplitCountChange(t *testing.T) {
	old := planWith(Split{From: 1, To: 12, Kind: gpu.V100, Replicas: 8})
	new := planWith(
		Split{From: 1, To: 2, Kind: gpu.V100, Replicas: 5},
		Split{From: 3, To: 12, Kind: gpu.V100, Replicas: 3},
	)
	d := DiffPlans(old, new)
	if !d.Changed || !d.BoundsMoved {
		t.Fatalf("repartition not flagged: %v", d)
	}
	found := false
	for _, c := range d.KindChanges {
		if strings.Contains(c, "added") {
			found = true
		}
	}
	if !found {
		t.Errorf("added split not recorded: %v", d.KindChanges)
	}
}

func TestDiffRingBoundedAndOrdered(t *testing.T) {
	r := NewDiffRing(3)
	for i := 0; i < 5; i++ {
		r.Push(PlanDiff{Window: i})
	}
	if r.Total() != 5 || r.Evicted() != 2 {
		t.Fatalf("total=%d evicted=%d", r.Total(), r.Evicted())
	}
	items := r.Items()
	if len(items) != 3 {
		t.Fatalf("retained %d items", len(items))
	}
	for i, d := range items {
		if d.Window != i+2 {
			t.Errorf("item %d is window %d, want %d (oldest-first)", i, d.Window, i+2)
		}
	}
}

func TestDiffRingNilSafe(t *testing.T) {
	var r *DiffRing
	r.Push(PlanDiff{})
	if r.Items() != nil || r.Total() != 0 || r.Evicted() != 0 {
		t.Error("nil ring not inert")
	}
}
