package optimizer

import (
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/simnet"
)

// CostTable memoizes the per-segment quantities the search re-derives for
// every candidate: the stage time of layers [from, to] on each GPU kind
// (under the config's execution mode), the memory-fit verdict for the same
// (segment, kind) pairs, and the boundary activation transfer over the
// worst-case interconnect. Building it is one O(L²·K) pass over the whole
// catalogue; afterwards a candidate evaluation is pure table lookups — no
// exec.SplitTime layer scan and, under the exit-wrapper, no per-candidate
// model clone (the wrapper's only planning effect is which ramp-check
// terms a segment pays, which the table folds in directly).
//
// One table serves all three objectives and — because it covers every
// catalogue kind, not just the kinds a particular cluster holds — every
// replan window, as long as the model geometry, active-ramp set, batch,
// execution mode, and worst-case link are unchanged (CompatibleWith).
type CostTable struct {
	model   *ee.EEModel
	layers  int
	batch   int
	wrapper bool
	link    simnet.Link
	ramps   []int // active-ramp snapshot at build time

	kinds []gpu.Kind
	// time and fits are per-kind L×L matrices indexed (from-1)*L+(to-1),
	// valid for from <= to.
	time [][]float64
	fits [][]bool
	// transfer[to-1] is the boundary activation move after layer to
	// (to < L) on the worst-case link.
	transfer []float64
}

// NewCostTable builds the memo table for one (model, batch, mode, link)
// planning problem. The incremental build accumulates layer terms in
// exactly exec.SplitTime's order, so stage times match the unmemoized
// search bit for bit.
func NewCostTable(m *ee.EEModel, batch int, disableInteriorRamps bool, link simnet.Link) *CostTable {
	L := m.Base.NumLayers()
	t := &CostTable{
		model:   m,
		layers:  L,
		batch:   batch,
		wrapper: disableInteriorRamps,
		link:    link,
		ramps:   append([]int(nil), m.ActiveRamps()...),
		kinds:   gpu.Kinds(),
	}
	rampFLOPs := m.RampFLOPs()
	lmHead := 0.0
	if m.LMHeadRamp {
		lmHead = 2 * float64(m.Base.Hidden) * float64(m.Base.Vocab)
	}
	t.time = make([][]float64, len(t.kinds))
	t.fits = make([][]bool, len(t.kinds))
	for ki, kind := range t.kinds {
		spec := gpu.Get(kind)
		rampTerm := spec.LayerTime(rampFLOPs, batch) + 2*spec.LaunchOverhead
		memLimit := spec.MemGB * 1e9 * 0.9
		times := make([]float64, L*L)
		fits := make([]bool, L*L)
		for from := 1; from <= L; from++ {
			acc := 0.0 // running segment time, ramp terms folded in per mode
			weights := 0.0
			maxAct := 0.0
			for to := from; to <= L; to++ {
				l := m.Base.Layers[to-1]
				acc += spec.LayerTimeW(l.FLOPs, l.WeightBytes, batch)
				// A segment pays a ramp check where the (planning) model
				// keeps a head: under the wrapper only at its own boundary,
				// otherwise at every interior active ramp too.
				ramp := m.HasRampAfter(to) || to == L
				st := acc
				if t.wrapper {
					if ramp {
						st = acc + rampTerm
					}
				} else if ramp {
					acc += rampTerm
					st = acc
				}
				weights += l.WeightBytes
				if l.ActBytes > maxAct {
					maxAct = l.ActBytes
				}
				idx := (from-1)*L + (to - 1)
				times[idx] = st
				// Mirror SplitFits: weights + LM head + double-buffered
				// activations within 90% of device memory.
				fits[idx] = (weights+lmHead)+4*maxAct*float64(batch) <= memLimit
			}
		}
		t.time[ki] = times
		t.fits[ki] = fits
	}
	t.transfer = make([]float64, L)
	for to := 1; to < L; to++ {
		t.transfer[to-1] = link.TransferTime(m.Base.Layers[to-1].ActBytes * float64(batch))
	}
	return t
}

// NewCostTableFor builds the memo table for one planning problem. Attach
// the result to Config.Costs to share it across objectives and replan
// windows.
func NewCostTableFor(cfg Config) *CostTable {
	return NewCostTable(cfg.Model, cfg.Batch, cfg.DisableInteriorRamps,
		cfg.Cluster.Topology.WorstCase())
}

// CompatibleWith reports whether the table was built for exactly this
// planning problem: same model (pointer and active-ramp set), layer
// count, batch, execution mode, and worst-case interconnect. Cluster
// inventory does not matter — the table covers the whole catalogue — so
// cost/GPU-minimizing objectives and successive replan windows reuse one
// table.
func (t *CostTable) CompatibleWith(cfg Config) bool {
	if t == nil || cfg.Model == nil || cfg.Cluster == nil {
		return false
	}
	if t.model != cfg.Model || t.batch != cfg.Batch ||
		t.wrapper != cfg.DisableInteriorRamps ||
		t.layers != cfg.Model.Base.NumLayers() {
		return false
	}
	if t.link != cfg.Cluster.Topology.WorstCase() {
		return false
	}
	ramps := cfg.Model.ActiveRamps()
	if len(ramps) != len(t.ramps) {
		return false
	}
	for i, r := range ramps {
		if r != t.ramps[i] {
			return false
		}
	}
	return true
}

// kindIndex maps a catalogue kind to its row in the table.
func (t *CostTable) kindIndex(k gpu.Kind) int {
	for i, kk := range t.kinds {
		if kk == k {
			return i
		}
	}
	return -1
}

// stageTime returns the planned busy time of layers [from, to] on one
// instance of kind ki (table row index) at the table's batch.
func (t *CostTable) stageTime(ki, from, to int) float64 {
	return t.time[ki][(from-1)*t.layers+to-1]
}

// splitFits returns the memoized SplitFits verdict for [from, to] on ki.
func (t *CostTable) splitFits(ki, from, to int) bool {
	return t.fits[ki][(from-1)*t.layers+to-1]
}

// boundaryTransfer returns the activation move after layer to on the
// worst-case link (0 for the final layer — nothing leaves the model).
func (t *CostTable) boundaryTransfer(to int) float64 {
	if to >= t.layers {
		return 0
	}
	return t.transfer[to-1]
}
