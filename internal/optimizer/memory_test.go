package optimizer

import (
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/profile"
	"e3/internal/workload"
)

func TestSplitFitsBERTEverywhere(t *testing.T) {
	// BERT-BASE is ~0.4 GB of weights: fits every kind at any batch.
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	for _, k := range gpu.Kinds() {
		if !SplitFits(m, 1, 12, 64, k) {
			t.Errorf("BERT-BASE does not fit %s", k)
		}
	}
}

func TestSplitFitsLlamaMemoryWall(t *testing.T) {
	m := ee.NewLlamaEE(model.Llama318B())
	// The full 32-layer model (~14 GB fp16 + LM head) cannot fit a 12 GB
	// K80 but fits a 48 GB A6000.
	if SplitFits(m, 1, 32, 8, gpu.K80) {
		t.Error("full Llama reported as fitting a K80")
	}
	if !SplitFits(m, 1, 32, 8, gpu.A6000) {
		t.Error("full Llama does not fit an A6000")
	}
	// A quarter of the model fits even the K80 — splitting is how big
	// models reach small devices.
	if !SplitFits(m, 1, 8, 8, gpu.K80) {
		t.Error("an 8-layer Llama split should fit a K80")
	}
}

func TestPlannerRespectsMemory(t *testing.T) {
	// On a K80-only cluster, the planner must never produce a Llama split
	// that exceeds device memory; with MaxSplits 3 the 32 layers cannot be
	// carved small enough if exit mass is concentrated late — verify all
	// emitted splits fit.
	m := ee.NewLlamaEE(model.Llama318B())
	prof := profile.FromDist(m, workload.BoolQ(), 4000, 1)
	cfg := Config{
		Model: m, Profile: prof, Batch: 4, Cluster: cluster.Homogeneous(gpu.K80, 24),
		SLO: 5, SlackFrac: 0.2, MinExitFrac: DefaultMinExitFrac, Pipelining: true, ModelParallel: true, MaxSplits: 4,
	}
	plan, err := MaximizeGoodput(cfg)
	if err != nil {
		// Infeasible is acceptable; producing an over-memory plan is not.
		return
	}
	for _, s := range plan.Splits {
		if !SplitFits(m, s.From, s.To, plan.Batch, s.Kind) {
			t.Errorf("planner emitted over-memory split %+v", s)
		}
	}
}

func TestMemoryForcesSplitAcrossKinds(t *testing.T) {
	// Mixed cluster of K80s and A6000s: any split containing the whole
	// model must land on A6000; K80s may only host partial splits.
	m := ee.NewLlamaEE(model.Llama318B())
	prof := profile.FromDist(m, workload.BoolQ(), 4000, 1)
	clus := cluster.New(map[gpu.Kind]int{gpu.K80: 8, gpu.A6000: 4}, 2)
	cfg := Config{
		Model: m, Profile: prof, Batch: 4, Cluster: clus,
		SLO: 5, SlackFrac: 0.2, MinExitFrac: DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
	}
	plan, err := MaximizeGoodput(cfg)
	if err != nil {
		t.Fatalf("no feasible plan on mixed cluster: %v", err)
	}
	for _, s := range plan.Splits {
		if !SplitFits(m, s.From, s.To, plan.Batch, s.Kind) {
			t.Errorf("over-memory split: %+v", s)
		}
	}
}
