package optimizer

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"e3/internal/exec"
	"e3/internal/gpu"
)

// This file is the planner's fast path: candidate stage times, fits, and
// transfers come from the memoized CostTable; whole kind-assignment
// subtrees die against admissible bounds (branch-and-bound); partitions
// are evaluated on a bounded worker pool. The search is engineered to
// return a byte-identical winner and SearchTrace to the serial reference:
// partitions are processed in the reference's enumeration order, each
// partition's tally is merged in that order, and the incumbent is frozen
// per fixed-size chunk — so the result does not depend on Workers.

// objKind selects the planning objective.
type objKind int

const (
	objGoodput objKind = iota
	objGPUs
	objCost
)

// objective bundles one objective's comparator, score, and failure text.
type objective struct {
	kind   objKind
	name   string
	target float64
}

func goodputObjective() objective { return objective{kind: objGoodput, name: "max-goodput"} }
func gpusObjective(target float64) objective {
	return objective{kind: objGPUs, name: "min-gpus", target: target}
}
func costObjective(target float64) objective {
	return objective{kind: objCost, name: "min-cost", target: target}
}

// minimal reports whether the objective allocates minimally for a target
// rate (vs. maximally for goodput).
func (o objective) minimal() bool { return o.kind != objGoodput }

// better is the objective's strict comparator; ties on the primary score
// break toward higher goodput for the minimizing objectives and lose for
// max-goodput (first seen wins).
func (o objective) better(a, b Plan) bool {
	switch o.kind {
	case objGPUs:
		return a.GPUs < b.GPUs || (a.GPUs == b.GPUs && a.Goodput > b.Goodput)
	case objCost:
		return a.CostPerSec < b.CostPerSec || (a.CostPerSec == b.CostPerSec && a.Goodput > b.Goodput)
	}
	return a.Goodput > b.Goodput
}

// score is the objective's primary score for trace ranking.
func (o objective) score(p Plan) float64 {
	switch o.kind {
	case objGPUs:
		return float64(p.GPUs)
	case objCost:
		return p.CostPerSec
	}
	return p.Goodput
}

// seed is the identity plan every real candidate beats.
func (o objective) seed() Plan {
	switch o.kind {
	case objGPUs:
		return Plan{GPUs: math.MaxInt}
	case objCost:
		return Plan{CostPerSec: math.Inf(1)}
	}
	return Plan{}
}

// failure is the objective's no-feasible-plan error.
func (o objective) failure(cfg Config) error {
	switch o.kind {
	case objGPUs:
		return fmt.Errorf("optimizer: cluster cannot sustain %.0f samples/s at batch %d", o.target, cfg.Batch)
	case objCost:
		return fmt.Errorf("optimizer: cluster cannot sustain %.0f samples/s at batch %d within cost search", o.target, cfg.Batch)
	}
	return fmt.Errorf("optimizer: no feasible plan for batch %d under SLO %.0fms",
		cfg.Batch, cfg.SLO*1e3)
}

// solve runs one objective end to end: defaults, validation, trace
// bracketing, and the chosen search engine.
func solve(cfg Config, obj objective, run func(Config, objective) (Plan, bool)) (Plan, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Plan{}, err
	}
	cfg.Trace.begin(cfg, obj.name, obj.target, obj.better, obj.score)
	best, found := run(cfg, obj)
	var err error
	if !found {
		err = obj.failure(cfg)
	}
	cfg.Trace.finish(best, found, err)
	if err != nil {
		return Plan{}, err
	}
	return best, nil
}

// defaultWorkers sizes the worker pool: enough to cover the chunk, never
// more than the machine offers, capped so planning stays a good citizen
// inside a serving process.
func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// chunkSize is the incumbent-freeze granularity: partitions within one
// chunk are pruned against the same frozen incumbent and merged in
// enumeration order at the chunk barrier. It is a fixed constant —
// independent of Workers — so any pool size yields the same pruning
// decisions, trace, and winner.
const chunkSize = 32

// boundSlack is the relative safety margin on floating-point bound
// comparisons: a subtree is pruned only when its bound misses the
// incumbent (or target) by more than this factor, so rounding in the
// bound arithmetic can never discard the true winner.
const boundSlack = 1e-9

// incumbent is the chunk-frozen best plan tasks prune against.
type incumbent struct {
	plan  Plan
	found bool
}

// runFast drives the memoized, pruned, parallel search for one objective.
func runFast(cfg Config, obj objective) (Plan, bool) {
	tbl := cfg.Costs
	if !tbl.CompatibleWith(cfg) {
		tbl = NewCostTableFor(cfg)
	}
	cands := boundaryCandidates(cfg)
	var kinds []gpu.Kind
	var kindIdx []int
	var counts []int
	for _, k := range gpu.Kinds() {
		if n := len(cfg.Cluster.OfKind(k)); n > 0 {
			kinds = append(kinds, k)
			kindIdx = append(kindIdx, tbl.kindIndex(k))
			counts = append(counts, n)
		}
	}
	if len(kinds) == 0 {
		return Plan{}, false
	}

	// Partitions in the reference enumeration's pre-order.
	var parts [][]int
	var walkBounds func(start int, bounds []int)
	walkBounds = func(start int, bounds []int) {
		parts = append(parts, append([]int(nil), bounds...))
		if len(bounds)+1 >= cfg.MaxSplits {
			return
		}
		for i := start; i < len(cands); i++ {
			walkBounds(i+1, append(bounds, cands[i]))
		}
	}
	walkBounds(0, nil)

	sc := &searchCtx{
		cfg:     &cfg,
		obj:     obj,
		tbl:     tbl,
		kinds:   kinds,
		kindIdx: kindIdx,
		counts:  counts,
		keepTop: cfg.Trace != nil,
	}

	best := obj.seed()
	found := false
	for lo := 0; lo < len(parts); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(parts) {
			hi = len(parts)
		}
		chunk := parts[lo:hi]
		tallies := make([]*partTally, len(chunk))
		inc := incumbent{plan: best, found: found}
		if cfg.Workers <= 1 || len(chunk) == 1 {
			for i, b := range chunk {
				tallies[i] = sc.evalPartition(b, inc)
			}
		} else {
			nw := cfg.Workers
			if nw > len(chunk) {
				nw = len(chunk)
			}
			var next atomic.Int64
			//e3:concurrent deterministic worker pool: chunk results merge in enumeration order and every worker joins before return
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				wg.Add(1)
				//e3:concurrent worker goroutines are joined by wg.Wait below; no simulator state is shared
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(chunk) {
							return
						}
						tallies[i] = sc.evalPartition(chunk[i], inc)
					}
				}()
			}
			wg.Wait()
		}
		// Merge in enumeration order: the total order over candidates is
		// exactly the serial one, so "strictly better replaces, first seen
		// wins ties" resolves identically for any worker count.
		for _, tal := range tallies {
			cfg.Trace.absorb(tal)
			if tal.found && obj.better(tal.best, best) {
				best = tal.best
				found = true
			}
		}
	}
	return best, found
}

// searchCtx is the per-search immutable state shared by partition tasks.
type searchCtx struct {
	cfg     *Config
	obj     objective
	tbl     *CostTable
	kinds   []gpu.Kind // kinds present in the cluster, catalogue order
	kindIdx []int      // table row per kinds entry
	counts  []int      // device inventory per kinds entry
	keepTop bool
}

// partTally is one partition task's private accounting, merged into the
// SearchTrace and incumbent at the chunk barrier.
type partTally struct {
	enumerated int
	rejected   [numReasons]int
	feasible   int
	// Dominance-pruned work (never enumerated).
	prunedSubtrees int
	prunedCands    int
	top            []ScoredPlan
	best           Plan
	found          bool
}

// partEval evaluates every kind assignment of one partition.
type partEval struct {
	sc *searchCtx
	n  int

	from, to   []int
	surv, comm []float64
	st         [][]float64 // [stage][kind] stage time
	fits       [][]bool
	w          [][]float64 // [stage][kind] work per fresh sample

	// Admissible bounds (ModelParallel only).
	prune     bool
	ub        [][]float64 // [stage][kind] rate with the kind's whole inventory
	sufUB     []float64   // [i] best achievable rate over stages i..n-1
	need      [][]int     // [stage][kind] minimal replicas for the target
	stageCost [][]float64 // [stage][kind] cost of that minimal allocation
	sufNeed   []int       // [i] Σ min-over-kinds need for stages i..n-1
	sufCost   []float64

	kidx  []int // current kind assignment (index into sc.kinds)
	avail []int // leaf scratch

	cur      Plan // best seen: chunk incumbent, then local improvements
	curFound bool

	tally partTally
}

// evalPartition precomputes the per-stage geometry for one partition and
// walks its kind assignments with memory accounting and dominance pruning.
func (sc *searchCtx) evalPartition(bounds []int, inc incumbent) *partTally {
	cfg := sc.cfg
	L := cfg.Model.Base.NumLayers()
	n := len(bounds) + 1
	pe := &partEval{
		sc: sc, n: n,
		from: make([]int, n), to: make([]int, n),
		surv: make([]float64, n), comm: make([]float64, n),
		st:   make([][]float64, n),
		fits: make([][]bool, n),
		w:    make([][]float64, n),
		kidx: make([]int, n), avail: make([]int, len(sc.counts)),
		prune: cfg.ModelParallel,
	}
	pe.cur = inc.plan
	pe.curFound = inc.found
	if !inc.found {
		pe.cur = sc.obj.seed()
	}

	from := 1
	for i := 0; i < n; i++ {
		to := L
		if i < len(bounds) {
			to = bounds[i]
		}
		pe.from[i], pe.to[i] = from, to
		sIn := cfg.Profile.At(from)
		sOut := 0.0
		if to < L {
			sOut = cfg.Profile.After(to)
		}
		exitFrac := 0.0
		if sIn > 0 {
			exitFrac = (sIn - sOut) / sIn
		}
		pe.surv[i] = sIn
		pe.comm[i] = exec.SplitHandoff(cfg.Batch, exitFrac) + sc.tbl.boundaryTransfer(to)

		K := len(sc.kinds)
		pe.st[i] = make([]float64, K)
		pe.fits[i] = make([]bool, K)
		pe.w[i] = make([]float64, K)
		for k := 0; k < K; k++ {
			row := sc.kindIdx[k]
			pe.st[i][k] = sc.tbl.stageTime(row, from, to)
			pe.fits[i][k] = sc.tbl.splitFits(row, from, to)
			pe.w[i][k] = workPerSample(Split{
				StageTime: pe.st[i][k], CommTime: pe.comm[i], Survival: sIn,
			}, cfg.Batch, cfg.Pipelining)
		}
		from = to + 1
	}

	if pe.prune {
		pe.buildBounds()
	}
	pe.dfs(0, math.Inf(1), 0, 0)
	pe.tally.best = pe.cur
	pe.tally.found = pe.curFound
	return &pe.tally
}

// buildBounds derives the admissible per-stage bounds: ub is the rate a
// stage could reach with its kind's entire inventory (actual allocations
// use a subset, so actual rate ≤ ub with the same floating-point
// divisions); need/stageCost are the exact minimal allocation the
// min-objectives' leaf will compute. Suffix aggregates give the best any
// completion of a partial assignment could do.
func (pe *partEval) buildBounds() {
	sc := pe.sc
	K := len(sc.kinds)
	minimal := sc.obj.minimal()
	pe.ub = make([][]float64, pe.n)
	pe.sufUB = make([]float64, pe.n+1)
	pe.sufUB[pe.n] = math.Inf(1)
	if minimal {
		pe.need = make([][]int, pe.n)
		pe.stageCost = make([][]float64, pe.n)
		pe.sufNeed = make([]int, pe.n+1)
		pe.sufCost = make([]float64, pe.n+1)
	}
	for i := pe.n - 1; i >= 0; i-- {
		pe.ub[i] = make([]float64, K)
		stageUB := 0.0
		minNeed, minCost := 0, 0.0
		if minimal {
			pe.need[i] = make([]int, K)
			pe.stageCost[i] = make([]float64, K)
			minNeed, minCost = math.MaxInt, math.Inf(1)
		}
		anyFit := false
		for k := 0; k < K; k++ {
			wv := pe.w[i][k]
			u := math.Inf(1)
			if wv > 0 {
				u = float64(sc.counts[k]) / wv
			}
			pe.ub[i][k] = u
			if minimal {
				need := int(math.Ceil(sc.obj.target * wv))
				if need < 1 {
					need = 1
				}
				pe.need[i][k] = need
				cost := float64(need) * gpu.Get(sc.kinds[k]).CostPerSecond()
				pe.stageCost[i][k] = cost
				if pe.fits[i][k] {
					if need < minNeed {
						minNeed = need
					}
					if cost < minCost {
						minCost = cost
					}
				}
			}
			if pe.fits[i][k] {
				anyFit = true
				if u > stageUB {
					stageUB = u
				}
			}
		}
		if !anyFit {
			// No kind fits this stage: every assignment dies on memory,
			// which the DFS accounts exactly; keep the bounds admissible.
			stageUB = 0
			minNeed, minCost = 0, 0
		}
		pe.sufUB[i] = pe.sufUB[i+1]
		if stageUB < pe.sufUB[i] {
			pe.sufUB[i] = stageUB
		}
		if minimal {
			pe.sufNeed[i] = pe.sufNeed[i+1] + minNeed
			pe.sufCost[i] = pe.sufCost[i+1] + minCost
		}
	}
}

// dfs assigns a kind to stage i. ubMin carries the prefix's rate bound,
// gpre/cpre the prefix's exact minimal GPUs and cost (min objectives).
func (pe *partEval) dfs(i int, ubMin float64, gpre int, cpre float64) {
	if i == pe.n {
		pe.leaf()
		return
	}
	subtree := intPow(len(pe.sc.kinds), pe.n-1-i)
	for k := range pe.sc.kinds {
		if !pe.fits[i][k] {
			// Memory misfit kills the whole suffix regardless of later
			// kinds; account every would-be candidate exactly as the
			// reference search does.
			pe.tally.enumerated += subtree
			pe.tally.rejected[idxMemory] += subtree
			continue
		}
		nextUB := ubMin
		ng, nc := gpre, cpre
		if pe.prune {
			if u := pe.ub[i][k]; u < nextUB {
				nextUB = u
			}
			potential := nextUB
			if s := pe.sufUB[i+1]; s < potential {
				potential = s
			}
			prune := false
			if pe.sc.obj.kind == objGoodput {
				// Ties lose to the incumbent, so ≤ prunes.
				prune = pe.curFound && potential*(1+boundSlack) <= pe.cur.Goodput
			} else {
				// No completion can reach the target rate.
				prune = potential*(1+boundSlack) < pe.sc.obj.target
				if !prune {
					switch pe.sc.obj.kind {
					case objGPUs:
						ng = gpre + pe.need[i][k]
						// Equal GPU counts can still win on goodput, so
						// only a strictly worse bound prunes.
						prune = pe.curFound && ng+pe.sufNeed[i+1] > pe.cur.GPUs
					case objCost:
						nc = cpre + pe.stageCost[i][k]
						prune = pe.curFound && nc+pe.sufCost[i+1] > pe.cur.CostPerSec*(1+boundSlack)
					}
				}
			}
			if prune {
				pe.tally.prunedSubtrees++
				pe.tally.prunedCands += subtree
				continue
			}
		}
		pe.kidx[i] = k
		pe.dfs(i+1, nextUB, ng, nc)
	}
}

// leaf evaluates one complete kind assignment. Memory feasibility is
// already established stage by stage.
func (pe *partEval) leaf() {
	cfg := pe.sc.cfg
	pe.tally.enumerated++
	var p Plan
	var rej RejectReason
	switch {
	case !cfg.ModelParallel:
		p, rej = evaluateSerial(*cfg, pe.buildSplits())
	case pe.sc.obj.minimal():
		p, rej = pe.evalMinAlloc()
	default:
		p, rej = pe.evalMaxRate()
	}
	if pe.sc.obj.minimal() && rej == "" && p.Goodput < pe.sc.obj.target {
		rej = RejectRate
	}
	if rej != "" {
		pe.tally.rejected[reasonIndex(rej)]++
		return
	}
	pe.tally.feasible++
	if pe.sc.keepTop {
		pe.tally.top = insertScored(pe.tally.top,
			ScoredPlan{Plan: p, Score: pe.sc.obj.score(p)}, pe.sc.obj.better)
	}
	if pe.sc.obj.better(p, pe.cur) {
		pe.cur = p
		pe.curFound = true
	}
}

// buildSplits materializes the current assignment's splits from the
// precomputed stage geometry.
func (pe *partEval) buildSplits() []Split {
	splits := make([]Split, pe.n)
	for i := 0; i < pe.n; i++ {
		k := pe.kidx[i]
		splits[i] = Split{
			From: pe.from[i], To: pe.to[i], Kind: pe.sc.kinds[k],
			StageTime: pe.st[i][k], CommTime: pe.comm[i], Survival: pe.surv[i],
		}
	}
	return splits
}

// evalMaxRate mirrors the reference evaluateMaxRate on the memoized
// geometry: one replica each, then greedy growth of the bottleneck stage.
func (pe *partEval) evalMaxRate() (Plan, RejectReason) {
	cfg := pe.sc.cfg
	splits := pe.buildSplits()
	copy(pe.avail, pe.sc.counts)
	for i := range splits {
		if pe.avail[pe.kidx[i]] == 0 {
			return Plan{}, RejectReplicas
		}
		pe.avail[pe.kidx[i]]--
		splits[i].Replicas = 1
	}
	for {
		bi, brate := -1, math.Inf(1)
		for i := range splits {
			wv := pe.w[i][pe.kidx[i]]
			r := math.Inf(1)
			if wv > 0 {
				r = float64(splits[i].Replicas) / wv
			}
			if r < brate {
				brate, bi = r, i
			}
		}
		if bi < 0 || pe.avail[pe.kidx[bi]] == 0 {
			break
		}
		pe.avail[pe.kidx[bi]]--
		splits[bi].Replicas++
	}
	return finishPlan(*cfg, splits)
}

// evalMinAlloc mirrors the reference evaluateMinAlloc: exactly the
// replicas each stage needs for the target rate.
func (pe *partEval) evalMinAlloc() (Plan, RejectReason) {
	cfg := pe.sc.cfg
	splits := pe.buildSplits()
	copy(pe.avail, pe.sc.counts)
	for i := range splits {
		need := 1
		if pe.need != nil {
			need = pe.need[i][pe.kidx[i]]
		} else {
			w := pe.w[i][pe.kidx[i]]
			need = int(math.Ceil(pe.sc.obj.target * w))
			if need < 1 {
				need = 1
			}
		}
		if pe.avail[pe.kidx[i]] < need {
			return Plan{}, RejectReplicas
		}
		pe.avail[pe.kidx[i]] -= need
		splits[i].Replicas = need
	}
	return finishPlan(*cfg, splits)
}

// intPow is the number of kind assignments in a depth-(e) suffix.
func intPow(b, e int) int {
	out := 1
	for ; e > 0; e-- {
		out *= b
	}
	return out
}
