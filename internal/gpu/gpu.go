// Package gpu models GPU compute analytically.
//
// E3's phenomena hinge on one hardware fact: below a saturation batch size
// a GPU is latency-bound, so a kernel over 4 samples takes nearly as long
// as one over 8. We capture that with
//
//	t(B) = launch + (flops/peak) * sqrt(B² + Bsat²)
//
// which is flat (≈ Bsat·flops/peak) for B ≪ Bsat and linear for B ≫ Bsat.
// Early exits that shrink a batch below Bsat therefore stop saving time —
// the under-utilization the paper's Figure 3 shows — while exits that
// drain a batch to zero skip layers entirely.
//
// Per-kind peaks, overheads, and prices are calibrated against public
// spec sheets and cloud prices so *relative* speeds and costs (K80 < P100
// < V100 < A6000) match the paper's cluster.
package gpu

import (
	"fmt"
	"math"
	"sort"
)

// Kind identifies a GPU model.
type Kind string

// The four GPU kinds used in the paper's evaluation cluster.
const (
	K80   Kind = "K80"
	P100  Kind = "P100"
	V100  Kind = "V100"
	A6000 Kind = "A6000"
)

// Spec describes one GPU kind's analytical performance model.
type Spec struct {
	Kind Kind
	// PeakTFLOPS is sustained effective throughput for dense inference
	// kernels, in teraFLOPS.
	PeakTFLOPS float64
	// SatBatch is the batch size at which kernels transition from
	// latency-bound to throughput-bound.
	SatBatch float64
	// LaunchOverhead is the fixed per-layer cost (kernel launches,
	// framework dispatch), in seconds.
	LaunchOverhead float64
	// MemGB is device memory, bounding the largest batch that fits.
	MemGB float64
	// MemBWGBps is device memory bandwidth in GB/s. Each layer pass reads
	// its weights once per batch, which dominates small-batch LLM decode.
	MemBWGBps float64
	// HourlyUSD is the rental price used for cost experiments.
	HourlyUSD float64
}

// specs holds the calibrated catalogue. SatBatch grows with device width:
// wider GPUs need larger batches to saturate, which is why the paper's
// EE models prefer cheap narrow GPUs (§5.2).
var specs = map[Kind]Spec{
	K80:   {Kind: K80, PeakTFLOPS: 4.1, SatBatch: 2.5, LaunchOverhead: 100e-6, MemGB: 12, MemBWGBps: 240, HourlyUSD: 0.95},
	P100:  {Kind: P100, PeakTFLOPS: 9.3, SatBatch: 5, LaunchOverhead: 70e-6, MemGB: 16, MemBWGBps: 732, HourlyUSD: 1.87},
	V100:  {Kind: V100, PeakTFLOPS: 15.7, SatBatch: 8, LaunchOverhead: 50e-6, MemGB: 32, MemBWGBps: 900, HourlyUSD: 2.93},
	A6000: {Kind: A6000, PeakTFLOPS: 31.0, SatBatch: 12, LaunchOverhead: 40e-6, MemGB: 48, MemBWGBps: 768, HourlyUSD: 1.85},
}

// Get returns the spec for a kind. Unknown kinds panic: the catalogue is a
// closed set and a typo should fail loudly at construction time.
func Get(k Kind) Spec {
	s, ok := specs[k]
	if !ok {
		panic(fmt.Sprintf("gpu: unknown kind %q", k))
	}
	return s
}

// Kinds returns all known kinds, cheapest first (stable order for
// deterministic optimizer iteration).
func Kinds() []Kind {
	out := make([]Kind, 0, len(specs))
	for k := range specs {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		return specs[out[i]].HourlyUSD < specs[out[j]].HourlyUSD
	})
	return out
}

// CostPerSecond is the rental price in USD per second.
func (s Spec) CostPerSecond() float64 { return s.HourlyUSD / 3600 }

// LayerTime returns the time (seconds) to run one layer of flops-per-sample
// work over a batch, excluding weight reads. Batch 0 is free: a
// fully-exited batch skips the layer.
func (s Spec) LayerTime(flopsPerSample float64, batch int) float64 {
	return s.LayerTimeW(flopsPerSample, 0, batch)
}

// LayerTimeW is LayerTime plus a weight-read term: the layer's weights
// cross memory once per batch regardless of batch size, which is what
// makes small-batch autoregressive decode bandwidth-bound and batching so
// valuable for it.
func (s Spec) LayerTimeW(flopsPerSample, weightBytes float64, batch int) float64 {
	if batch <= 0 || flopsPerSample <= 0 {
		return 0
	}
	b := float64(batch)
	eff := math.Sqrt(b*b + s.SatBatch*s.SatBatch)
	return s.LaunchOverhead + weightBytes/(s.MemBWGBps*1e9) + flopsPerSample*eff/(s.PeakTFLOPS*1e12)
}

// LayerTimeFrac is LayerTimeW for a fractional expected batch, used by the
// optimizer when consuming predicted (non-integer) batch profiles.
func (s Spec) LayerTimeFrac(flopsPerSample, weightBytes, batch float64) float64 {
	if batch <= 0 || flopsPerSample <= 0 {
		return 0
	}
	eff := math.Sqrt(batch*batch + s.SatBatch*s.SatBatch)
	return s.LaunchOverhead + weightBytes/(s.MemBWGBps*1e9) + flopsPerSample*eff/(s.PeakTFLOPS*1e12)
}

// Utilization reports the fraction of peak FLOPS achieved at a batch size:
// B/sqrt(B²+Bsat²). It is what Figure 3's "GPU Util" axis measures.
func (s Spec) Utilization(batch int) float64 {
	if batch <= 0 {
		return 0
	}
	b := float64(batch)
	return b / math.Sqrt(b*b+s.SatBatch*s.SatBatch)
}

// UtilizationFrac is Utilization over a fractional (expected) batch size.
func (s Spec) UtilizationFrac(batch float64) float64 {
	if batch <= 0 {
		return 0
	}
	return batch / math.Sqrt(batch*batch+s.SatBatch*s.SatBatch)
}

// MaxBatch estimates the largest batch that fits in device memory for a
// model with the given per-sample working set (bytes), leaving 20%
// headroom for weights and workspace.
func (s Spec) MaxBatch(bytesPerSample float64) int {
	if bytesPerSample <= 0 {
		return 1 << 20
	}
	usable := s.MemGB * 1e9 * 0.8
	n := int(usable / bytesPerSample)
	if n < 1 {
		n = 1
	}
	return n
}
