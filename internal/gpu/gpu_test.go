package gpu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCatalogueOrdering(t *testing.T) {
	// Compute capability must rise K80 < P100 < V100 < A6000.
	order := []Kind{K80, P100, V100, A6000}
	for i := 1; i < len(order); i++ {
		if Get(order[i]).PeakTFLOPS <= Get(order[i-1]).PeakTFLOPS {
			t.Errorf("%s peak %v not greater than %s peak %v",
				order[i], Get(order[i]).PeakTFLOPS, order[i-1], Get(order[i-1]).PeakTFLOPS)
		}
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get of unknown kind did not panic")
		}
	}()
	Get(Kind("H100"))
}

func TestKindsSortedByPrice(t *testing.T) {
	ks := Kinds()
	if len(ks) != 4 {
		t.Fatalf("Kinds() returned %d kinds, want 4", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if Get(ks[i]).HourlyUSD < Get(ks[i-1]).HourlyUSD {
			t.Errorf("Kinds() not sorted by price: %v", ks)
		}
	}
}

func TestLayerTimeZeroBatchFree(t *testing.T) {
	s := Get(V100)
	if got := s.LayerTime(1e9, 0); got != 0 {
		t.Errorf("LayerTime(_, 0) = %v, want 0 (drained batch skips layer)", got)
	}
}

func TestLayerTimeMonotoneInBatch(t *testing.T) {
	s := Get(V100)
	prev := 0.0
	for b := 1; b <= 128; b *= 2 {
		cur := s.LayerTime(1e9, b)
		if cur <= prev {
			t.Errorf("LayerTime not increasing at batch %d: %v <= %v", b, cur, prev)
		}
		prev = cur
	}
}

func TestLayerTimeSaturationShape(t *testing.T) {
	// Below saturation the marginal cost of doubling the batch must be
	// small; above it, near-linear. This is the core EE-batching mechanism.
	s := Get(V100) // SatBatch 8
	small := s.LayerTime(1e9, 2) / s.LayerTime(1e9, 1)
	large := s.LayerTime(1e9, 128) / s.LayerTime(1e9, 64)
	if small > 1.25 {
		t.Errorf("sub-saturation doubling cost %v, want < 1.25 (latency-bound)", small)
	}
	if large < 1.8 {
		t.Errorf("super-saturation doubling cost %v, want near 2 (throughput-bound)", large)
	}
}

func TestPerSampleTimeDecreasesWithBatch(t *testing.T) {
	// Batching must amortize: per-sample time strictly decreases.
	s := Get(A6000)
	prev := math.Inf(1)
	for b := 1; b <= 64; b *= 2 {
		per := s.LayerTime(5e9, b) / float64(b)
		if per >= prev {
			t.Errorf("per-sample time did not decrease at batch %d", b)
		}
		prev = per
	}
}

func TestUtilizationBounds(t *testing.T) {
	for _, k := range Kinds() {
		s := Get(k)
		if u := s.Utilization(0); u != 0 {
			t.Errorf("%s Utilization(0) = %v", k, u)
		}
		if u := s.Utilization(1 << 20); u < 0.99 || u > 1 {
			t.Errorf("%s Utilization(huge) = %v, want ~1", k, u)
		}
		prev := 0.0
		for b := 1; b <= 64; b++ {
			u := s.Utilization(b)
			if u <= prev || u > 1 {
				t.Fatalf("%s utilization not monotone in (0,1] at batch %d: %v", k, b, u)
			}
			prev = u
		}
	}
}

func TestLayerTimeFracMatchesInt(t *testing.T) {
	s := Get(P100)
	for b := 1; b <= 32; b++ {
		if got, want := s.LayerTimeFrac(2e9, 3e7, float64(b)), s.LayerTimeW(2e9, 3e7, b); math.Abs(got-want) > 1e-15 {
			t.Errorf("frac/int mismatch at batch %d: %v vs %v", b, got, want)
		}
	}
}

func TestWeightBandwidthTerm(t *testing.T) {
	s := Get(A6000)
	// Weight reads add a constant per batch: 768 MB at 768 GB/s = 1 ms.
	base := s.LayerTime(1e9, 4)
	withW := s.LayerTimeW(1e9, 768e6, 4)
	if got := withW - base; math.Abs(got-1e-3) > 1e-9 {
		t.Errorf("weight term = %v, want 1ms", got)
	}
	// The term must not scale with batch (read once per pass).
	d8 := s.LayerTimeW(1e9, 768e6, 8) - s.LayerTime(1e9, 8)
	if math.Abs(d8-1e-3) > 1e-9 {
		t.Errorf("weight term at batch 8 = %v, want 1ms", d8)
	}
}

func TestMaxBatch(t *testing.T) {
	s := Get(K80) // 12 GB
	if got := s.MaxBatch(1e9); got != 9 {
		t.Errorf("MaxBatch(1GB/sample) on K80 = %d, want 9", got)
	}
	if got := s.MaxBatch(1e12); got != 1 {
		t.Errorf("MaxBatch(huge) = %d, want clamped to 1", got)
	}
	if got := s.MaxBatch(0); got < 1<<19 {
		t.Errorf("MaxBatch(0) = %d, want effectively unbounded", got)
	}
}

func TestCostPerSecond(t *testing.T) {
	s := Get(V100)
	if got := s.CostPerSecond() * 3600; math.Abs(got-s.HourlyUSD) > 1e-9 {
		t.Errorf("cost round-trip mismatch: %v vs %v", got, s.HourlyUSD)
	}
}

// Property: for any flops/batch, LayerTime ≥ LaunchOverhead and
// utilization-derived time identity holds: t ≈ launch + flops*B/(peak*util).
func TestLayerTimeUtilizationIdentity(t *testing.T) {
	s := Get(V100)
	f := func(rawFlops uint32, rawBatch uint8) bool {
		flops := float64(rawFlops%1000+1) * 1e7
		batch := int(rawBatch%64) + 1
		tm := s.LayerTime(flops, batch)
		if tm < s.LaunchOverhead {
			return false
		}
		util := s.Utilization(batch)
		want := s.LaunchOverhead + flops*float64(batch)/(s.PeakTFLOPS*1e12*util)
		return math.Abs(tm-want) < 1e-12+1e-9*want
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
