// Package sim provides a deterministic discrete-event simulation engine.
//
// All E3 experiments run on virtual time: an event heap ordered by
// timestamp (ties broken by insertion sequence, so runs are fully
// deterministic). Virtual time is expressed in seconds as float64, which
// keeps latency/throughput math simple and avoids time.Duration overflow
// for long simulated horizons.
//
// The heap is an index-based value heap: events live inline in the
// backing slice, which doubles as the free list — a popped slot is reused
// by the next push, so steady-state scheduling performs no allocation at
// all (the paper-scale traces push tens of millions of events through
// this structure; see README "Data-plane performance"). Pop order depends
// only on the (at, seq) total order, never on the heap's internal layout,
// so it is bit-identical to the retained container/heap reference
// implementation (ReferenceEngine), which the soak and equivalence tests
// enforce.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time = float64

// Event is a scheduled callback. Fn runs when the engine's clock reaches At.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// less orders events by timestamp, insertion sequence breaking ties.
// Exactness is the point: two events are simultaneous only when their
// timestamps are bit-identical. An epsilon here would merge
// close-but-distinct times and reorder causally dependent events.
func (e *event) less(o *event) bool {
	if e.at != o.at { //e3:exactfloat heap tie-break needs bitwise equality
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on the caller's
// goroutine.
type Engine struct {
	now Time
	seq uint64
	// events is a binary min-heap of inline event values ordered by
	// (at, seq); the slice's spare capacity is the free list.
	events []event
	// Processed counts events executed, for diagnostics and runaway guards.
	processed uint64
	// limit aborts Run after this many events (0 = no limit). It exists to
	// turn infinite-loop bugs into errors instead of hangs.
	limit uint64
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetEventLimit aborts Run with an error after n events (0 disables the
// guard).
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// EventLimit reports the configured event limit (0 = no limit), so
// drivers can install a default runaway guard without clobbering a
// caller's stricter one.
func (e *Engine) EventLimit() uint64 { return e.limit }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it is always a model bug and silently clamping it would
// corrupt causality.
//
//e3:hotpath every scheduled event passes through here; steady-state must not allocate
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: schedule at non-finite time %v", t))
	}
	e.seq++
	e.events = append(e.events, event{at: t, seq: e.seq, fn: fn})
	e.siftUp(len(e.events) - 1)
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) {
	e.At(e.now+d, fn)
}

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// siftUp restores the heap invariant after appending at index i.
func (e *Engine) siftUp(i int) {
	h := e.events
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores the heap invariant after replacing the root.
func (e *Engine) siftDown() {
	h := e.events
	n := len(h)
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h[right].less(&h[left]) {
			least = right
		}
		if !h[least].less(&h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event ran.
//
//e3:hotpath pop path runs once per simulated event; see README "Data-plane performance"
func (e *Engine) Step() bool {
	n := len(e.events)
	if n == 0 {
		return false
	}
	at, fn := e.events[0].at, e.events[0].fn
	e.events[0] = e.events[n-1]
	// Zero the vacated tail slot so the callback (and anything it
	// captures) does not linger in the backing array past execution.
	e.events[n-1] = event{}
	e.events = e.events[:n-1]
	e.siftDown()
	e.now = at
	e.processed++
	fn()
	return true
}

// limitErr reports an event-limit abort unambiguously: callers chaining
// Run windows must be able to tell a limit abort (work still pending)
// from a drained queue.
func (e *Engine) limitErr() error {
	return fmt.Errorf("sim: event limit %d exceeded at t=%v with %d event(s) still pending",
		e.limit, e.now, len(e.events))
}

// Run executes events until the queue drains or the next event lies beyond
// until; the clock is left at the time of the last executed event (or at
// until, whichever is later, so callers can chain Run calls on a shared
// timeline). It returns an error only if the event limit is exceeded.
func (e *Engine) Run(until Time) error {
	for len(e.events) > 0 && e.events[0].at <= until {
		if e.limit > 0 && e.processed >= e.limit {
			return e.limitErr()
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
	return nil
}

// RunAll executes every pending event (including ones scheduled by other
// events) until the queue drains.
func (e *Engine) RunAll() error {
	for len(e.events) > 0 {
		if e.limit > 0 && e.processed >= e.limit {
			return e.limitErr()
		}
		e.Step()
	}
	return nil
}
