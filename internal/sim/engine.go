// Package sim provides a deterministic discrete-event simulation engine.
//
// All E3 experiments run on virtual time: an event heap ordered by
// timestamp (ties broken by insertion sequence, so runs are fully
// deterministic). Virtual time is expressed in seconds as float64, which
// keeps latency/throughput math simple and avoids time.Duration overflow
// for long simulated horizons.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time = float64

// Event is a scheduled callback. Fn runs when the engine's clock reaches At.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	// Exactness is the point: two events are simultaneous only when their
	// timestamps are bit-identical, and then insertion order breaks the
	// tie. An epsilon here would merge close-but-distinct times and
	// reorder causally dependent events.
	if h[i].at != h[j].at { //e3:exactfloat heap tie-break needs bitwise equality
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on the caller's
// goroutine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// Processed counts events executed, for diagnostics and runaway guards.
	processed uint64
	// limit aborts Run after this many events (0 = no limit). It exists to
	// turn infinite-loop bugs into errors instead of hangs.
	limit uint64
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetEventLimit aborts Run with an error after n events (0 disables the
// guard).
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it is always a model bug and silently clamping it would
// corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: schedule at non-finite time %v", t))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) {
	e.At(e.now+d, fn)
}

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue drains or the next event lies beyond
// until; the clock is left at the time of the last executed event (or at
// until, whichever is later, so callers can chain Run calls on a shared
// timeline). It returns an error only if the event limit is exceeded.
func (e *Engine) Run(until Time) error {
	for len(e.events) > 0 && e.events[0].at <= until {
		if e.limit > 0 && e.processed >= e.limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.limit, e.now)
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
	return nil
}

// RunAll executes every pending event (including ones scheduled by other
// events) until the queue drains.
func (e *Engine) RunAll() error {
	for len(e.events) > 0 {
		if e.limit > 0 && e.processed >= e.limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.limit, e.now)
		}
		e.Step()
	}
	return nil
}
