package sim

import (
	"math/rand"
	"strings"
	"testing"
)

// TestEngineMatchesReferenceOrder cross-validates the value-heap engine
// against the retained container/heap reference: for seeded random
// schedules (duplicate timestamps included, so tie-breaking is exercised)
// both engines must execute the exact same event sequence.
func TestEngineMatchesReferenceOrder(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(1500)
		ats := make([]float64, n)
		for i := range ats {
			// Coarse quantization forces plenty of exact-tie timestamps.
			ats[i] = float64(rng.Intn(64)) / 8.0
		}
		fast := NewEngine()
		ref := NewReferenceEngine()
		var fastOrder, refOrder []int
		for i, at := range ats {
			i := i
			fast.At(at, func() { fastOrder = append(fastOrder, i) })
			ref.At(at, func() { refOrder = append(refOrder, i) })
		}
		if err := fast.RunAll(); err != nil {
			t.Fatal(err)
		}
		ref.RunAll()
		if len(fastOrder) != n || len(refOrder) != n {
			t.Fatalf("seed %d: ran %d/%d events, want %d", seed, len(fastOrder), len(refOrder), n)
		}
		for i := range fastOrder {
			if fastOrder[i] != refOrder[i] {
				t.Fatalf("seed %d: execution order diverges from reference at position %d: fast %d, ref %d",
					seed, i, fastOrder[i], refOrder[i])
			}
		}
	}
}

// TestEngineSoakMillionEvents pushes 1M events through the engine with
// nested rescheduling and duplicate timestamps, asserting global
// timestamp order, FIFO tie-breaking, and exact conservation (every
// scheduled event runs exactly once). This is the scale regime the
// data-plane fast path exists for; the test doubles as a guard that slot
// reuse in the value heap never loses or duplicates an event.
func TestEngineSoakMillionEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-event soak skipped in -short mode")
	}
	const total = 1_000_000
	e := NewEngine()
	rng := rand.New(rand.NewSource(7))
	scheduled := 0
	ran := 0
	lastAt := -1.0
	lastSeq := uint64(0)
	var schedule func()
	schedule = func() {
		// Each event reschedules a few more until the budget is spent,
		// mixing strictly-later times with exact ties.
		k := rng.Intn(3)
		for i := 0; i < k && scheduled < total; i++ {
			scheduled++
			var at float64
			if rng.Intn(4) == 0 {
				at = e.Now() // exact tie with the running event
			} else {
				at = e.Now() + float64(1+rng.Intn(100))/1000.0
			}
			seq := e.seq + 1 // next seq the engine will assign
			_ = seq
			e.At(at, func() {
				ran++
				if e.Now() < lastAt {
					t.Fatalf("clock went backwards: %v after %v", e.Now(), lastAt)
				}
				lastAt = e.Now()
				schedule()
			})
		}
	}
	// Seed the loop with enough initial events to keep the heap deep.
	for scheduled < 10_000 {
		scheduled++
		at := float64(rng.Intn(1000)) / 100.0
		e.At(at, func() {
			ran++
			if e.Now() < lastAt {
				t.Fatalf("clock went backwards: %v after %v", e.Now(), lastAt)
			}
			lastAt = e.Now()
			schedule()
		})
	}
	// Keep scheduling from a driver tick until the budget is reached.
	var tick func()
	tick = func() {
		schedule()
		if scheduled < total {
			e.After(0.001, tick)
		}
	}
	e.At(0, tick)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ran != scheduled {
		t.Fatalf("conservation: scheduled %d events, ran %d", scheduled, ran)
	}
	if scheduled < total {
		t.Fatalf("soak under-scheduled: %d < %d", scheduled, total)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after RunAll", e.Pending())
	}
	_ = lastSeq
}

// TestEngineTieBreakFIFOUnderSlotReuse interleaves pushes and pops so
// popped slots are reused mid-stream, then asserts FIFO order among
// same-timestamp events — the determinism property the value heap must
// preserve bit-exactly.
func TestEngineTieBreakFIFOUnderSlotReuse(t *testing.T) {
	e := NewEngine()
	var got []int
	next := 0
	// Phase 1: fill and partially drain so the backing array has reused slots.
	for i := 0; i < 64; i++ {
		i := i
		e.At(1.0, func() { got = append(got, i) })
	}
	for i := 0; i < 32; i++ {
		e.Step()
	}
	// Phase 2: more ties at a later time, landing in reused slots.
	for i := 64; i < 128; i++ {
		i := i
		e.At(2.0, func() { got = append(got, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != next {
			t.Fatalf("tie-break order %v, want strict FIFO", got)
		}
		next++
	}
	if next != 128 {
		t.Fatalf("ran %d events, want 128", next)
	}
}

// TestEngineLimitErrorReportsPending pins the event-limit abort message:
// it must carry the pending count so callers chaining Run windows can
// tell a limit abort from a drained queue. Reverting the error format
// fails this test.
func TestEngineLimitErrorReportsPending(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(3)
	for i := 0; i < 10; i++ {
		e.At(float64(i), func() {})
	}
	err := e.RunAll()
	if err == nil {
		t.Fatal("expected event-limit error")
	}
	if want := "7 event(s) still pending"; !strings.Contains(err.Error(), want) {
		t.Fatalf("limit error %q does not report pending count (want substring %q)", err, want)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d after limit abort, want 7", e.Pending())
	}
}

// TestEngineEventLimitGetter pins the EventLimit accessor drivers use to
// avoid clobbering a caller's stricter runaway guard.
func TestEngineEventLimitGetter(t *testing.T) {
	e := NewEngine()
	if e.EventLimit() != 0 {
		t.Fatalf("fresh engine limit = %d, want 0", e.EventLimit())
	}
	e.SetEventLimit(42)
	if e.EventLimit() != 42 {
		t.Fatalf("limit = %d, want 42", e.EventLimit())
	}
}

// TestEngineStepClearsVacatedSlot guards the value heap's tail-slot
// zeroing: after a pop, the vacated backing-array slot must not retain
// the executed callback (the same stale-tail class of bug as the batcher
// queue's).
func TestEngineStepClearsVacatedSlot(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.At(float64(i), func() {})
	}
	for e.Step() {
	}
	tail := e.events[:cap(e.events)]
	for i := range tail {
		if tail[i].fn != nil {
			t.Fatalf("backing-array slot %d retains an executed callback", i)
		}
	}
}
