package sim

import "testing"

// BenchmarkEngineThroughput measures raw event dispatch rate — the floor
// under every serving simulation in the repository.
func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(1e-6, tick)
		}
	}
	b.ResetTimer()
	e.After(1e-6, tick)
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReferenceEngineThroughput is the retained pre-fast-path
// baseline for BenchmarkEngineThroughput (container/heap, one pointer
// allocation per event).
func BenchmarkReferenceEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewReferenceEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(1e-6, tick)
		}
	}
	b.ResetTimer()
	e.After(1e-6, tick)
	e.RunAll()
}

// BenchmarkEngineHeapChurn measures push+pop with a deep pending heap.
func BenchmarkEngineHeapChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	for i := 0; i < 10000; i++ {
		e.At(float64(i), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1e4, func() {})
		e.Step()
	}
}

// BenchmarkReferenceEngineHeapChurn is the retained baseline for
// BenchmarkEngineHeapChurn.
func BenchmarkReferenceEngineHeapChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewReferenceEngine()
	for i := 0; i < 10000; i++ {
		e.At(float64(i), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1e4, func() {})
		e.Step()
	}
}
