package sim

import "container/heap"

// ReferenceEngine is the pre-fast-path event loop, retained verbatim as a
// correctness oracle and performance baseline: a container/heap of
// per-event pointer allocations (one heap allocation plus interface
// boxing per scheduled event). The equivalence tests assert that Engine
// executes any schedule in exactly the order ReferenceEngine does, and
// `e3-bench -sim-bench` / `make simgate` measure the fast engine's
// events/sec and allocs/event against it — the same retained-oracle
// pattern the planner uses with MaximizeGoodputReference.
//
// New simulation code must use Engine; this type exists only for tests
// and benchmarks.
type ReferenceEngine struct {
	now       Time
	seq       uint64
	events    refEventHeap
	processed uint64
}

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refEventHeap []*refEvent

func (h refEventHeap) Len() int { return len(h) }

func (h refEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at { //e3:exactfloat heap tie-break needs bitwise equality
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h refEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *refEventHeap) Push(x any) { *h = append(*h, x.(*refEvent)) }

func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// NewReferenceEngine returns a reference engine with the clock at 0.
func NewReferenceEngine() *ReferenceEngine {
	return &ReferenceEngine{}
}

// Now reports the current virtual time.
func (e *ReferenceEngine) Now() Time { return e.now }

// Processed reports how many events have executed so far.
func (e *ReferenceEngine) Processed() uint64 { return e.processed }

// Pending reports the number of events waiting to run.
func (e *ReferenceEngine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t.
func (e *ReferenceEngine) At(t Time, fn func()) {
	e.seq++
	heap.Push(&e.events, &refEvent{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *ReferenceEngine) After(d float64, fn func()) {
	e.At(e.now+d, fn)
}

// Step executes the single earliest pending event.
func (e *ReferenceEngine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*refEvent)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// RunAll executes every pending event until the queue drains.
func (e *ReferenceEngine) RunAll() {
	for e.Step() {
	}
}
