package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []float64{3, 1, 2, 0.5, 2.5} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events ran out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { got = append(got, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order %v, want FIFO", got)
		}
	}
}

func TestEngineAfterAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.After(2, func() {
		if e.Now() != 2 {
			t.Errorf("now = %v inside event, want 2", e.Now())
		}
		e.After(3, func() {
			if e.Now() != 5 {
				t.Errorf("nested now = %v, want 5", e.Now())
			}
		})
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 5 {
		t.Fatalf("final now = %v, want 5", e.Now())
	}
}

func TestEngineRunUntilStopsEarly(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++ })
	e.At(10, func() { ran++ })
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events before t=5, want 1", ran)
	}
	if e.Now() != 5 {
		t.Fatalf("now = %v after Run(5), want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(10)
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(1, loop)
	if err := e.RunAll(); err == nil {
		t.Fatal("expected event-limit error for infinite loop")
	}
}

func TestEngineNonFiniteTimePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("NaN schedule did not panic")
		}
	}()
	e.At(nan(), func() {})
}

func nan() float64 { var z float64; return z / z }

// Property: for any set of non-negative delays, RunAll executes them all and
// the clock ends at the max delay.
func TestEngineProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		maxT := 0.0
		n := 0
		for _, r := range raw {
			at := float64(r) / 16.0
			if at > maxT {
				maxT = at
			}
			e.At(at, func() { n++ })
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		if n != len(raw) {
			return false
		}
		return len(raw) == 0 || e.Now() == maxT
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
