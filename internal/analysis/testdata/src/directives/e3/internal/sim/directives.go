// Package sim exercises the directive meta-checks: a consumed
// suppression (clean), an unknown directive name, and a stale
// suppression whose violation no longer exists.
package sim

import "time"

// Stamp is sanctioned wall-clock use; virtualtime consults the directive
// while suppressing its diagnostic, so it is not stale.
func Stamp() int64 {
	return time.Now().UnixNano() //e3:wallclock fixture: consumed suppression
}

// Pure triggers no analyzer, so the directives below excuse nothing.
func Pure(a, b int) int {
	//e3:wallclok fixture: typo in the name // want `unknown directive //e3:wallclok`
	x := a + b
	//e3:wallclock fixture: nothing to excuse // want `stale suppression: //e3:wallclock matches no diagnostic on this line`
	return x
}
