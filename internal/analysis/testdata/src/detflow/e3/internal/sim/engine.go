// Package sim is a fixture stand-in for the real engine: just enough
// surface for detflow's sink table (Engine.At / Engine.After) to match.
package sim

// Engine mirrors the real engine's scheduling surface.
type Engine struct {
	now float64
}

// Now returns virtual time — the sanctioned clock.
func (e *Engine) Now() float64 { return e.now }

// At schedules f at absolute virtual time t.
func (e *Engine) At(t float64, f func()) {
	_ = t
	_ = f
}

// After schedules f after virtual delay d.
func (e *Engine) After(d float64, f func()) {
	_ = d
	_ = f
}
