// Package jitter is the fixture's nondeterminism factory. It is *not* a
// sim-domain package, so the v1 per-package analyzers have nothing to say
// about it — only taint tracking catches its results reaching a sink two
// call edges away.
package jitter

import "time"

// Raw is the taint source: a wall-clock read.
func Raw() float64 {
	return float64(time.Now().UnixNano())
}

// Scaled is one call edge downstream; a pure function of Raw is still
// Raw-derived.
func Scaled() float64 {
	return Raw() / 1e9
}
