// Package scheduler exercises detflow's taint rule: wall-clock-derived
// values must not reach engine schedule times, even across call chains
// and sink wrappers.
package scheduler

import (
	"e3/internal/jitter"
	"e3/internal/sim"
)

// Bad schedules at a wall-clock-derived time that crossed two call edges
// (time.Now → jitter.Raw → jitter.Scaled) before reaching the sink.
func Bad(e *sim.Engine, f func()) {
	t := jitter.Scaled()
	e.At(t, f) // want `value derived from time\.Now \(via jitter\.Raw → jitter\.Scaled\) flows into Engine\.At \(an engine schedule time\)`
}

// Good schedules at virtual time.
func Good(e *sim.Engine, f func()) {
	e.At(e.Now()+1, f)
}

// scheduleAt passes its parameter straight into the engine, which makes
// it a sink wrapper: callers handing it tainted values are flagged at
// their own call site.
func scheduleAt(e *sim.Engine, t float64, f func()) {
	e.At(t, f)
}

// BadThroughWrapper feeds taint to the sink through the wrapper.
func BadThroughWrapper(e *sim.Engine, f func()) {
	d := jitter.Scaled()
	scheduleAt(e, d, f) // want `value derived from time\.Now \(via jitter\.Raw → jitter\.Scaled\) flows into scheduleAt \(a sink wrapper\)`
}

// GoodThroughWrapper passes virtual time through the same wrapper.
func GoodThroughWrapper(e *sim.Engine, f func()) {
	scheduleAt(e, e.Now()+1, f)
}

// Sanctioned documents a provably harmless flow with the escape hatch.
func Sanctioned(e *sim.Engine, f func()) {
	t := jitter.Scaled()
	e.At(t, f) //e3:detflow fixture: exercises the suppression path
}
