package scheduler

import "sort"

// Census collects keys and sorts after the loop: order-independent.
func Census(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum accumulates an integer: addition over ints commutes.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Smear accumulates a float in map order: non-associative, so the low
// bits depend on iteration order.
func Smear(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `map iteration order is randomized and this range's effects depend on it`
		total += v
	}
	return total
}

// FirstKey returns an order-chosen element.
func FirstKey(m map[string]int) string {
	for k := range m { // want `map iteration order is randomized`
		return k
	}
	return ""
}

// SanctionedScan carries the escape hatch on an otherwise-flagged loop.
func SanctionedScan(m map[string]int) int {
	best := 0
	//e3:unordered fixture: exercises the suppression path
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Reindex writes through key-derived indexes: distinct cells per
// iteration, commutative.
func Reindex(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}
