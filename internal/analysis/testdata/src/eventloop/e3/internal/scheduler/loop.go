// Fixture for the eventloop analyzer: the constructs that would break
// the simulator's single-goroutine contract, which the race detector
// only catches probabilistically.
package scheduler

import "sync"

type runner struct {
	mu sync.Mutex // want `sync\.Mutex inside an event-loop-owned package`
	ch chan int   // want `channel type`
}

func badSpawn(fn func()) {
	go fn() // want `go statement starts a second goroutine`
}

func badSend(r *runner, v int) {
	r.ch <- v // want `channel send`
}

func badRecv(r *runner) int {
	return <-r.ch // want `channel receive`
}

func badSelect(r *runner) {
	select { // want `select statement`
	case <-r.ch: // want `channel receive`
	}
}

func badRange(r *runner) {
	for range r.ch { // want `range over a channel`
	}
}

func badWaitGroup() {
	var wg sync.WaitGroup // want `sync\.WaitGroup`
	wg.Wait()
}

// okAnnotated is the REST-edge escape hatch.
func okAnnotated() {
	var mu sync.Mutex //e3:concurrent guards counters read from net/http handler goroutines
	mu.Lock()
	mu.Unlock()
}

// okOnce: sync.Once is initialization, not a cross-goroutine protocol.
func okOnce() {
	var once sync.Once
	once.Do(func() {})
}
