// Fixture for the eventloop analyzer's fleet scope: per-shard loop code
// is event-loop-owned even though the fleet runs many loops. A goroutine
// leaked into a shard loop — the classic "parallelize the inject path"
// mistake — must fail lint; the shard runner's sanctioned pool carries
// //e3:concurrent annotations and stays clean.
package fleet

import "sync"

type shard struct {
	inbox chan int // want `channel type`
}

// badInject leaks a goroutine into a shard's loop: the injected closure
// would race the shard's engine callbacks.
func badInject(fn func()) {
	go fn() // want `go statement starts a second goroutine`
}

// badFanIn merges shard results through a channel instead of the
// barrier's index-slot discipline.
func badFanIn(s *shard, v int) {
	s.inbox <- v // want `channel send`
}

// badBarrier hand-rolls a barrier with an unannotated WaitGroup.
func badBarrier() {
	var wg sync.WaitGroup // want `sync\.WaitGroup`
	wg.Wait()
}

// okRunnerPool is the sanctioned shard-runner shape: disjoint shards,
// index-slot results, every worker joined before return, every
// construct annotated.
func okRunnerPool(shards []func()) {
	var wg sync.WaitGroup //e3:concurrent fixture: shard pool joined before return
	for _, s := range shards {
		wg.Add(1)
		go func(f func()) { //e3:concurrent fixture: shard pool joined before return
			defer wg.Done()
			f()
		}(s)
	}
	wg.Wait()
}
