// Package experiments exercises every discard shape errflow flags. The
// wrapper cases sit two call edges from the seed (experiments →
// serving.RunOpenLoop → sim.Engine.Run).
package experiments

import (
	"e3/internal/serving"
	"e3/internal/sim"
)

// BadStatement drops the abort error on the floor.
func BadStatement(e *sim.Engine) {
	e.Run() // want `error returned by Run is discarded \(call used as a statement\)`
}

// BadWrapper drops the error of a wrapper two edges from the seed.
func BadWrapper(e *sim.Engine) {
	_ = serving.RunOpenLoop(e) // want `error returned by RunOpenLoop is discarded \(assigned to _\)`
}

// BadTuple blanks the error position of a tuple return.
func BadTuple() int {
	n, _ := serving.FlushAll(3) // want `error returned by FlushAll is discarded \(error position assigned to _\)`
	return n
}

// BadGo launches the run with nobody to receive the error.
func BadGo(e *sim.Engine) {
	go e.Run() // want `error returned by Run is discarded \(go statement drops the result\)`
}

// Good propagates.
func Good(e *sim.Engine) error {
	return serving.RunOpenLoop(e)
}

// GoodHandled inspects the error.
func GoodHandled(e *sim.Engine) bool {
	return e.Run() == nil
}

// Sanctioned documents a deliberate discard.
func Sanctioned(e *sim.Engine) {
	e.Run() //e3:discard fixture: exercises the suppression path
}
