// Package sim provides the fixture's errflow seed: an error-returning
// Run in an event-loop package.
package sim

import "errors"

// Engine is a stub with the real engine's Run surface.
type Engine struct {
	aborted bool
}

// Run drains the event loop; the abort error reports truncation.
func (e *Engine) Run() error {
	if e.aborted {
		return errors.New("event limit hit")
	}
	return nil
}
