// Package serving wraps the engine: RunOpenLoop joins the errflow family
// through the fixpoint because it returns the engine's abort error, and
// FlushAll is seeded by name.
package serving

import "e3/internal/sim"

// RunOpenLoop drives one open-loop run.
func RunOpenLoop(e *sim.Engine) error {
	return e.Run()
}

// FlushAll reports end-of-run losses.
func FlushAll(pending int) (int, error) {
	return pending, nil
}
