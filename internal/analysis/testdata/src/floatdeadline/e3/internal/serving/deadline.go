// Fixture for the floatdeadline analyzer. The bad cases are the two PR 1
// bug shapes verbatim: the closed-loop driver's epsilon-free
// int(horizon/interval) step count that dropped the final batch, and
// exact equality on deadline-domain float64s at a flush boundary.
package serving

type sample struct {
	Arrival, Deadline float64
}

type ev struct{ at float64 }

// badStepCount is the old closed-loop bug: float drift rounds the ratio
// to 99.999…, truncation loses the last step.
func badStepCount(horizon, interval float64) int {
	return int(horizon / interval) // want `truncating integer conversion of a virtual-time ratio`
}

// okEpsilonStepCount is the shipped fix.
func okEpsilonStepCount(horizon, interval float64) int {
	return int(horizon/interval + 1e-9)
}

func badExactDeadline(s sample, now float64) bool {
	return now == s.Deadline // want `exact == on virtual-time float64`
}

func badExactFlush(flushAt, fireAt float64) bool {
	return flushAt != fireAt // want `exact != on virtual-time float64`
}

func badExactTieBreak(x, y ev) bool {
	return x.at == y.at // want `exact == on virtual-time float64`
}

// okExactTieBreak mirrors the sim engine's annotated heap comparison.
func okExactTieBreak(x, y ev) bool {
	return x.at != y.at //e3:exactfloat heap tie-break needs bitwise equality
}

// okOrdering: boundary orderings are fine; only exact equality and
// truncation are ulp-fragile in a way an ordering is not.
func okOrdering(s sample, now float64) bool { return now <= s.Deadline }

// okCount: float equality on non-time quantities is someone else's
// business.
func okCount(total float64) bool { return total == 0 }

// okIntOfPlainRatio: ratios of non-time floats are not flagged.
func okIntOfPlainRatio(sum, weight float64) int { return int(sum / weight) }
