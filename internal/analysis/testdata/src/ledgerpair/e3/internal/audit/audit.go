// Stub of the real audit package: just enough surface for the ledgerpair
// fixtures to type-check.
package audit

// Reason classifies why a sample was dropped.
type Reason string

// Ledger records lifecycle events.
type Ledger struct{}

// Completed records execution finishing.
func (l *Ledger) Completed(id int64, at float64, exitLayer int) {}

// Dropped records the sample being shed.
func (l *Ledger) Dropped(id int64, at float64, reason Reason) {}
