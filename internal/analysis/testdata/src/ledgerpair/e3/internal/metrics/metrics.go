// Stub of the real metrics package for the ledgerpair fixtures.
package metrics

// GoodputMeter tallies served and dropped samples.
type GoodputMeter struct{ Served int }

// ServeOK credits n on-time completions at virtual time t.
func (g *GoodputMeter) ServeOK(n int, t float64) {}

// Drop debits n shed samples at virtual time t.
func (g *GoodputMeter) Drop(n int, t float64) {}
