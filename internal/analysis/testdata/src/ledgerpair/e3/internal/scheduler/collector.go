// Fixture for the ledgerpair analyzer. The bad cases mirror the
// pre-ledger batcher bug: terminal accounting (goodput-meter hits, drop
// counters) with no paired lifecycle event, which PR 1's conservation
// audit only caught at runtime.
package scheduler

import (
	"e3/internal/audit"
	"e3/internal/metrics"
)

type sample struct{ ID int64 }

// Collector mirrors the real scheduler.Collector's terminal tallies.
type Collector struct {
	Dropped    int
	Violations int
	Good       *metrics.GoodputMeter
	Audit      *audit.Ledger
}

// badDrop sheds into the counters with no ledger event.
func (c *Collector) badDrop(s sample, at float64) {
	c.Dropped++ // want `Collector\.Dropped records a terminal outcome`
	c.Good.Drop(1, at)
}

// badComplete credits goodput with no ledger event.
func (c *Collector) badComplete(s sample, at float64) {
	c.Good.ServeOK(1, at) // want `GoodputMeter\.ServeOK records a terminal outcome`
}

// badViolationTally bumps the violation counter with no ledger event.
func (c *Collector) badViolationTally(s sample, at float64) {
	c.Violations += 1 // want `Collector\.Violations records a terminal outcome`
}

// goodDrop pairs the accounting with the lifecycle event.
func (c *Collector) goodDrop(s sample, at float64) {
	c.Dropped++
	c.Good.Drop(1, at)
	c.Audit.Dropped(s.ID, at, "stale-shed")
}

// goodComplete pairs goodput credit with the completion event.
func (c *Collector) goodComplete(s sample, at float64) {
	c.Good.ServeOK(1, at)
	c.Audit.Completed(s.ID, at, 3)
}

// okReader only reads the tallies; reads are not terminal accounting.
func (c *Collector) okReader() int { return c.Dropped + c.Violations }

//e3:noledger window-level tally reset, not per-sample accounting
func (c *Collector) okExemptWindow() {
	c.Violations = 0
}

//e3:noledger
func (c *Collector) badExemptNoReason() { // want `//e3:noledger needs a reason`
	c.Violations++
}
