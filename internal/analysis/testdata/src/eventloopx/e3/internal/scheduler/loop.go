// Package scheduler is event-loop scope: calls whose callees reach a
// concurrency construct — even two edges away — are flagged at the
// boundary call site.
package scheduler

import "e3/internal/bg"

// Tick is event-loop code; Relay itself is clean but reaches Fire's go
// statement one edge further down.
func Tick(done func(), xs []int) int {
	bg.Relay(done) // want `call from event-loop code reaches go statement at internal/bg/fire\.go:\d+ \(via scheduler\.Tick → bg\.Relay → bg\.Fire\)`
	return bg.SafeSum(xs)
}

// Drain uses the sanctioned pool; the constructs carry annotations, so
// the boundary is clean.
func Drain(fns []func()) {
	bg.Pooled(fns)
}

// Handoff sanctions the edge at the call site instead.
func Handoff(done func()) {
	bg.Fire(done) //e3:concurrent fixture: sanctioned handoff edge
}
