// Package fleet fixture for eventloop-interproc: the coordinator is
// event-loop scope, so a call chain that reaches concurrency outside the
// scope — say a helper that quietly spawns a goroutine per shard — is
// flagged at the boundary call even though every edge in between is
// construct-free.
package fleet

import "e3/internal/bg"

// RouteEpoch is coordinator code; Relay is clean but reaches Fire's go
// statement two edges down.
func RouteEpoch(done func(), xs []int) int {
	bg.Relay(done) // want `call from event-loop code reaches go statement at internal/bg/fire\.go:\d+ \(via fleet\.RouteEpoch → bg\.Relay → bg\.Fire\)`
	return bg.SafeSum(xs)
}

// Advance uses the sanctioned pool — annotated constructs, clean boundary.
func Advance(fns []func()) {
	bg.Pooled(fns)
}
