// Package bg holds concurrency outside the event-loop scope — the
// constructs the per-package eventloop analyzer cannot see but
// event-loop code can still reach through calls.
package bg

import "sync"

// Fire spawns the hazard.
func Fire(done func()) {
	go done()
}

// Relay is the middle edge: no construct of its own.
func Relay(done func()) {
	Fire(done)
}

// SafeSum is concurrency-free and callable from anywhere.
func SafeSum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Pooled runs a sanctioned worker pool: every construct carries its own
// annotation, so reaching it from event-loop code is clean.
func Pooled(fns []func()) {
	var wg sync.WaitGroup //e3:concurrent fixture: joined before return
	for _, fn := range fns {
		wg.Add(1)
		go func(f func()) { //e3:concurrent fixture: joined before return
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}
