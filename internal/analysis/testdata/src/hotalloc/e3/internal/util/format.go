// Package util holds helpers reachable from the fixture's hot path; it
// knows nothing about being hot, which is exactly the failure mode
// hotalloc exists for.
package util

import "fmt"

// Label formats an event label; fmt allocates on every call.
func Label(n int) string {
	return fmt.Sprintf("ev-%d", n) // want `fmt\.Sprintf \(formats and boxes\) allocates on the //e3:hotpath fast path rooted at sim\.Push \(reached via sim\.Push → sim\.describe → util\.Label\)`
}
