// Package sim exercises hotalloc: Push is the annotated hot root, and
// every function it transitively reaches must stay allocation-free.
package sim

import (
	"fmt"

	"e3/internal/util"
)

// Queue is a recycled-capacity event queue.
type Queue struct {
	buf  []int
	tags []string
}

// Push is the hot root: one call per event. Its self-appends amortize
// into recycled capacity and are tolerated; the fmt call hiding two
// edges down in util.Label is not.
//
//e3:hotpath fixture: one push per event
func Push(q *Queue, v int) {
	if v < 0 {
		panic(fmt.Sprintf("negative event id %d", v)) // cold: panic paths do not count
	}
	ensure(q, len(q.tags)+1)
	q.buf = append(q.buf, v)
	q.tags = append(q.tags, describe(v))
}

// describe is one edge below the root; its own body is clean but it
// calls into util.
func describe(v int) string {
	return util.Label(v)
}

// ensure grows the tag buffer; the pool-miss make is sanctioned.
func ensure(q *Queue, n int) {
	if cap(q.tags) < n {
		q.tags = make([]string, 0, n) //e3:alloc fixture: pool miss must allocate
	}
}

// Report is off the hot path; it may allocate freely.
func Report(q *Queue) string {
	return util.Label(len(q.buf))
}
