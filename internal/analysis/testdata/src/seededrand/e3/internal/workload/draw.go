// Fixture for the seededrand analyzer. The bad cases mirror the
// reproducibility bug: drawing workload randomness from the global
// math/rand source, so two same-seed runs produce different traces.
package workload

import "math/rand"

// badGlobalDraw samples a difficulty from the process-global source.
func badGlobalDraw() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the global math/rand source`
}

func badGlobalIntn(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the global math/rand source`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the global math/rand source`
}

// okSeeded constructs and draws from an injected seeded source — the
// sanctioned pattern; rand.New and rand.NewSource are not flagged.
func okSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func okThreaded(rng *rand.Rand) float64 {
	return rng.NormFloat64()
}

// localRand proves the check is type-driven, not textual: a variable
// named rand shadowing the import is not the global source.
type localRand struct{}

func (localRand) Intn(n int) int { return n - 1 }

func okShadowed() int {
	rand := localRand{}
	return rand.Intn(5)
}

// okAnnotated is the escape hatch.
func okAnnotated() float64 {
	return rand.Float64() //e3:unseeded jitter for a log-noise demo, never measured
}
