// Fixture for the virtualtime analyzer. The bad cases mirror the
// pre-ledger batcher bug class: wall-clock reads and timers driving
// simulation-domain logic.
package sim

import "time"

// badNow couples a virtual timestamp to host speed.
func badNow() float64 {
	return float64(time.Now().UnixNano()) / 1e9 // want `time\.Now reads the wall clock`
}

// badElapsed measures simulated work with the machine clock.
func badElapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `time\.Since reads the wall clock`
}

// badFlushTimer arms a real timer where a sim-engine event belongs — the
// exact shape of the old flush-timer bug.
func badFlushTimer(d time.Duration, fn func()) *time.Timer {
	return time.AfterFunc(d, fn) // want `time\.AfterFunc reads the wall clock`
}

func badSleep(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep reads the wall clock`
}

// okAnnotated is a sanctioned wall-clock read at a real edge.
func okAnnotated() time.Time {
	return time.Now() //e3:wallclock run-duration logging at the CLI edge
}

// okAnnotatedAbove carries the directive on the preceding line.
func okAnnotatedAbove() time.Time {
	//e3:wallclock run-duration logging at the CLI edge
	return time.Now()
}

// okDuration uses the time package without touching the clock.
func okDuration(d time.Duration) float64 { return d.Seconds() }
