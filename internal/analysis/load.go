package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages without the go/packages driver:
// in-tree packages are resolved from source by import path, everything
// else falls through to the standard library's source importer (which
// type-checks GOROOT from source, so no pre-built export data or network
// is needed). Test files are skipped — the invariants govern shipped
// simulator code, and external _test packages would complicate the type
// universe for no enforcement gain.
type Loader struct {
	Fset *token.FileSet

	// root is the directory that anchors in-tree import paths.
	root string
	// modulePath is the module prefix ("e3") in module mode; empty in
	// tree mode (testdata fixtures), where import paths are plain
	// root-relative directories.
	modulePath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewModuleLoader roots a loader at the module containing dir. It reads
// the module path from go.mod, so "e3/internal/sim" resolves to
// <moduleRoot>/internal/sim.
func NewModuleLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(root)
	l.modulePath = modPath
	return l, nil
}

// NewTreeLoader roots a loader at a GOPATH-style source tree (the
// analysistest fixture layout): import path "e3/internal/sim" resolves to
// <root>/e3/internal/sim.
func NewTreeLoader(root string) *Loader {
	return newLoader(root)
}

// Root returns the directory anchoring the loader's tree — the module
// root in module mode — which is what -json output relativizes paths to.
func (l *Loader) Root() string { return l.root }

func newLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, readErr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if readErr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, found := strings.CutPrefix(line, "module "); found {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// dirFor maps an import path to a directory inside the loader's tree, or
// reports that the path is external (stdlib).
func (l *Loader) dirFor(importPath string) (string, bool) {
	if l.modulePath != "" {
		if importPath == l.modulePath {
			return l.root, true
		}
		if rest, ok := strings.CutPrefix(importPath, l.modulePath+"/"); ok {
			return filepath.Join(l.root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	dir := filepath.Join(l.root, filepath.FromSlash(importPath))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, true
	}
	return "", false
}

// Import implements types.Importer, chaining in-tree resolution ahead of
// the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load type-checks the package at the given import path (and,
// recursively, its in-tree dependencies).
func (l *Loader) Load(importPath string) (*Package, error) {
	dir, ok := l.dirFor(importPath)
	if !ok {
		return nil, fmt.Errorf("analysis: import path %q is outside the loader's tree", importPath)
	}
	return l.load(importPath, dir)
}

func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, done := l.pkgs[importPath]; done {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file in dir, comments included (the
// directives live there).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Expand resolves package patterns ("./...", "./internal/sim", import
// paths) to the import paths of every matching in-tree package that
// contains non-test Go files. Directories named testdata, hidden
// directories, and the analyzers' own fixture trees are skipped, matching
// the go tool's convention.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var paths []string
	seen := make(map[string]bool)
	add := func(importPath string) {
		if !seen[importPath] {
			seen[importPath] = true
			paths = append(paths, importPath)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walkTree(l.root, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir, err := l.patternDir(base)
			if err != nil {
				return nil, err
			}
			if err := l.walkTree(dir, add); err != nil {
				return nil, err
			}
		default:
			dir, err := l.patternDir(pat)
			if err != nil {
				return nil, err
			}
			importPath, ok := l.importPathFor(dir)
			if !ok {
				return nil, fmt.Errorf("analysis: %s is outside the source tree", pat)
			}
			if hasGoFiles(dir) {
				add(importPath)
			}
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// patternDir resolves a non-wildcard pattern to a directory: "./x" and
// "x" are root-relative, import paths go through dirFor.
func (l *Loader) patternDir(pat string) (string, error) {
	if dir, ok := l.dirFor(pat); ok {
		return dir, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	return "", fmt.Errorf("analysis: pattern %q matches no directory", pat)
}

// importPathFor inverts dirFor.
func (l *Loader) importPathFor(dir string) (string, bool) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	rel = filepath.ToSlash(rel)
	if l.modulePath != "" {
		if rel == "." {
			return l.modulePath, true
		}
		return l.modulePath + "/" + rel, true
	}
	return rel, true
}

func (l *Loader) walkTree(start string, add func(string)) error {
	return filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			if importPath, ok := l.importPathFor(path); ok {
				add(importPath)
			}
		}
		return nil
	})
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadPatterns expands patterns and loads every matched package,
// returning them in import-path order.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
