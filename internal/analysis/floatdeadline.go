package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatDeadline enforces epsilon-safe virtual-time arithmetic. Two past
// bugs motivate it. First, the batcher's SLA flush timer compared a
// recomputed slack against the service estimate at the exact fire
// boundary; floating-point rounding landed the slack an ulp low and the
// flush shed a sample that was still viable (fixed by firing 2% early).
// Second, the closed-loop driver computed the number of steps in a
// horizon as int(horizon/interval); float drift made the ratio
// 99.999999…, truncation lost the final batch, and the conservation
// audit reported missing samples (fixed by adding +1e-9 before
// truncating). The analyzer flags the two mechanically recognisable
// shapes of that bug class:
//
//  1. exact == / != between float64 values where either side is
//     virtual-time-ish (deadline, arrival, horizon, now, …At);
//  2. truncating integer conversions int(a/b) of a virtual-time ratio
//     with no epsilon addend.
//
// Deliberate exact comparisons (the event heap's timestamp tie-break)
// carry //e3:exactfloat with a reason.
var FloatDeadline = &Analyzer{
	Name: "floatdeadline",
	Doc: "flag exact float64 equality on virtual-time/deadline values and " +
		"epsilon-free truncation of virtual-time ratios. " +
		"Escape hatch: //e3:exactfloat <reason>.",
	Applies: scope(
		"e3/internal/sim",
		"e3/internal/simnet",
		"e3/internal/scheduler",
		"e3/internal/serving",
		"e3/internal/metrics",
		"e3/internal/audit",
		"e3/internal/exec",
		"e3/internal/core",
	),
	Run: runFloatDeadline,
}

// timeishName reports whether a bare identifier-ish name denotes a
// virtual-time quantity. The vocabulary is the repo's own: Sample.Deadline
// and .Arrival, engine Now()/now, event .at, batcher flushAt/fireAt,
// horizon and SLO parameters.
func timeishName(name string) bool {
	lower := strings.ToLower(name)
	switch lower {
	case "at", "now", "t":
		return true
	}
	for _, frag := range []string{"deadline", "arrival", "horizon", "slo", "time"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	// CamelCase suffix At (flushAt, fireAt, completeAt) — but not words that
	// merely end in the letters "at" (format, float).
	return strings.HasSuffix(name, "At")
}

// timeish reports whether the expression reads like a virtual-time value:
// an identifier, field, or call whose name is time-ish, or any arithmetic
// combination containing one.
func timeish(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return timeishName(e.Name)
	case *ast.SelectorExpr:
		return timeishName(e.Sel.Name)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return timeishName(sel.Sel.Name)
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			return timeishName(id.Name)
		}
	case *ast.ParenExpr:
		return timeish(e.X)
	case *ast.UnaryExpr:
		return timeish(e.X)
	case *ast.BinaryExpr:
		return timeish(e.X) || timeish(e.Y)
	case *ast.IndexExpr:
		return timeish(e.X)
	}
	return false
}

func runFloatDeadline(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkExactEquality(pass, n)
			case *ast.CallExpr:
				checkTruncatedRatio(pass, n)
			}
			return true
		})
	}
}

// checkExactEquality flags == / != between float64 operands when either
// side is a virtual-time expression.
func checkExactEquality(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if !pass.IsFloat64(b.X) || !pass.IsFloat64(b.Y) {
		return
	}
	if !timeish(b.X) && !timeish(b.Y) {
		return
	}
	if pass.Exempted(b.Pos(), "exactfloat") {
		return
	}
	pass.Reportf(b.OpPos,
		"exact %s on virtual-time float64 values; one ulp of drift flips this — compare with an epsilon tolerance (or annotate //e3:exactfloat <reason> if exactness is the point)",
		b.Op)
}

// checkTruncatedRatio flags integer conversions whose operand is a bare
// division of virtual-time float64s: int(horizon/interval) drops the last
// step when rounding lands the ratio just under the integer. An epsilon
// addend (int(horizon/interval + 1e-9)) or math.Round/Floor/Ceil wrapper
// changes the top-level expression shape and passes.
func checkTruncatedRatio(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if !isIntegerType(tv.Type) {
		return
	}
	arg := unparen(call.Args[0])
	div, ok := arg.(*ast.BinaryExpr)
	if !ok || div.Op != token.QUO {
		return
	}
	if !pass.IsFloat64(div.X) || !pass.IsFloat64(div.Y) {
		return
	}
	if !timeish(div.X) && !timeish(div.Y) {
		return
	}
	if pass.Exempted(call.Pos(), "exactfloat") {
		return
	}
	pass.Reportf(call.Pos(),
		"truncating integer conversion of a virtual-time ratio can lose the final step to float rounding; add an epsilon before truncating (e.g. + 1e-9) or round explicitly")
}

func isIntegerType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
