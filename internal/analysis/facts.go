package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The facts layer is the tentpole of e3-lint v2: one types-backed pass
// over every loaded package that records, per declared function, the
// local facts each analyzer needs — static call edges (the module call
// graph), wall-clock and global-rand uses, concurrency constructs,
// allocating constructs, and map iterations. The per-package analyzers
// read their facts instead of re-walking the AST, and the interprocedural
// analyzers (detflow, hotalloc, errflow, eventloop-interproc) chase the
// call edges those facts define across function and package boundaries.
//
// Honest limits, stated once: the call graph is static. Edges exist for
// direct calls and for references to declared functions and methods
// (taking a method value to prebuild a closure creates an edge); calls
// through interface methods or unresolvable function values do not.
// Standard-library bodies are not walked, so edges stop at the module
// boundary. The runtime gates (race detector, digest property tests)
// remain the backstop for what static analysis cannot see.

// Use is one position-stamped local fact (a wall-clock read, a
// concurrency construct, an allocating construct).
type Use struct {
	Pos  token.Pos
	What string
}

// CallSite is one outgoing edge of a function: a direct call, or a
// reference to a declared function (method value / function value).
type CallSite struct {
	Pos    token.Pos
	Callee *types.Func
	// Ref marks a bare reference rather than a direct call. The function
	// may run later (prebuilt closures, callbacks), so reachability
	// analyses follow Ref edges too.
	Ref bool
	// Cold marks an edge inside a panic(...) argument: the callee runs
	// only on a path that is about to crash, so hot-path and event-loop
	// reachability skip it.
	Cold bool
	// Expr is the call expression for direct calls (nil for references).
	Expr *ast.CallExpr
}

// FuncFacts is everything the suite knows about one declared function.
type FuncFacts struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls lists outgoing edges in source order. Nested func literals
	// are included: a closure built by F calls (and allocates) on F's
	// behalf as far as the static graph is concerned.
	Calls []CallSite
	// WallClock lists calls of package time's clock-reading entry points.
	WallClock []Use
	// GlobalRand lists calls of math/rand's global top-level functions.
	GlobalRand []Use
	// Concurrency lists constructs that introduce or imply a second
	// goroutine: go statements, channel types/ops, select, sync primitives.
	Concurrency []Use
	// Allocs lists constructs that allocate on every execution: makes,
	// news, slice/map literals, escaping composite literals, func
	// literals, non-self appends, string concatenation, string/[]byte
	// conversions, fmt calls, interface boxing. Constructs inside panic
	// arguments are excluded — a panicking path is cold by definition.
	Allocs []Use
	// MapRanges lists range statements iterating a map directly.
	MapRanges []*ast.RangeStmt
}

// Name renders pkg.Receiver.Method or pkg.Func for diagnostics.
func (ff *FuncFacts) Name() string {
	obj := ff.Obj
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, isPtr := rt.(*types.Pointer); isPtr {
			rt = ptr.Elem()
		}
		if named, isNamed := rt.(*types.Named); isNamed {
			name = named.Obj().Name() + "." + name
		}
	}
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	return name
}

// Facts is the module-wide fact base, computed once per RunAnalyzers call
// and shared by every analyzer in the run.
type Facts struct {
	Fset *token.FileSet
	Pkgs []*Package
	Dirs *Directives

	// Funcs indexes facts by the canonical types.Func object. Objects are
	// shared across packages because the loader caches type-checked
	// packages, so a call edge recorded in pkg A resolves to the same
	// *types.Func the facts for pkg B were indexed under.
	Funcs map[*types.Func]*FuncFacts
	// Order lists functions deterministically: packages in load order,
	// files in name order, declarations in source order.
	Order []*FuncFacts
}

// ComputeFacts builds the fact base for a set of loaded packages.
func ComputeFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Dirs:  ParseDirectives(pkgs),
		Funcs: make(map[*types.Func]*FuncFacts),
		Pkgs:  pkgs,
	}
	if len(pkgs) > 0 {
		f.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, isFn := pkg.Info.Defs[fd.Name].(*types.Func)
				if !isFn {
					continue
				}
				ff := &FuncFacts{Obj: obj, Decl: fd, Pkg: pkg}
				collectFuncFacts(pkg, fd, ff)
				f.Funcs[obj] = ff
				f.Order = append(f.Order, ff)
			}
		}
	}
	return f
}

// ByPackage returns the functions declared in the package with the given
// import path, in source order.
func (f *Facts) ByPackage(importPath string) []*FuncFacts {
	var out []*FuncFacts
	for _, ff := range f.Order {
		if ff.Pkg.ImportPath == importPath {
			out = append(out, ff)
		}
	}
	return out
}

// pkgPathOf resolves an expression to the import path of the package it
// names, if it is a package reference.
func pkgPathOf(info *types.Info, e ast.Expr) (string, bool) {
	ident, ok := unparen(e).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// funcOf resolves an expression to the declared function or method it
// names, through the type checker.
func funcOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgLevel reports whether fn is a package-level function (no receiver)
// of the given import path.
func isPkgLevel(fn *types.Func, pkgPath string) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// collectFuncFacts walks one function body (nested func literals
// included) and records its local facts.
func collectFuncFacts(pkg *Package, fd *ast.FuncDecl, ff *FuncFacts) {
	info := pkg.Info

	// Pre-passes over the body: mark panic(...) argument spans (cold by
	// definition — the fmt.Sprintf inside a bounds panic must not fail a
	// hot-path check) and x = append(x, ...)-shaped self-appends (which
	// amortize into recycled capacity, the pattern the data-plane pools
	// depend on, and therefore do not count as per-call allocations).
	var panicSpans [][2]token.Pos
	selfAppends := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
					panicSpans = append(panicSpans, [2]token.Pos{n.Pos(), n.End()})
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				id, ok := unparen(call.Fun).(*ast.Ident)
				if !ok {
					continue
				}
				if b, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "append" {
					continue
				}
				if exprEqual(n.Lhs[i], call.Args[0]) {
					selfAppends[call] = true
				}
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, span := range panicSpans {
			if pos >= span[0] && pos < span[1] {
				return true
			}
		}
		return false
	}
	addAlloc := func(pos token.Pos, what string) {
		if !inPanic(pos) {
			ff.Allocs = append(ff.Allocs, Use{Pos: pos, What: what})
		}
	}

	// callFuns marks Fun expressions of direct calls, and selIdents marks
	// Sel identifiers of visited selectors, so the reference cases below
	// do not double-count direct calls or selector children.
	callFuns := make(map[ast.Expr]bool)
	selIdents := make(map[*ast.Ident]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun := unparen(n.Fun)
			callFuns[fun] = true
			if callee := funcOf(info, fun); callee != nil {
				ff.Calls = append(ff.Calls, CallSite{Pos: n.Pos(), Callee: callee, Cold: inPanic(n.Pos()), Expr: n})
				if isPkgLevel(callee, "time") && wallClockFuncs[callee.Name()] {
					ff.WallClock = append(ff.WallClock, Use{Pos: n.Pos(), What: "time." + callee.Name()})
				}
				if isPkgLevel(callee, "math/rand") && globalRandFuncs[callee.Name()] {
					ff.GlobalRand = append(ff.GlobalRand, Use{Pos: n.Pos(), What: "rand." + callee.Name()})
				}
			}
			collectCallAllocs(info, n, selfAppends, addAlloc)
		case *ast.Ident:
			if !callFuns[ast.Expr(n)] && !selIdents[n] {
				if fn, ok := info.Uses[n].(*types.Func); ok && fn.Pkg() != nil {
					ff.Calls = append(ff.Calls, CallSite{Pos: n.Pos(), Callee: fn, Ref: true})
				}
			}
		case *ast.SelectorExpr:
			selIdents[n.Sel] = true
			if !callFuns[ast.Expr(n)] {
				if fn, ok := info.Uses[n.Sel].(*types.Func); ok && fn.Pkg() != nil {
					ff.Calls = append(ff.Calls, CallSite{Pos: n.Pos(), Callee: fn, Ref: true})
				}
			}
			if pp, ok := pkgPathOf(info, n.X); ok && pp == "sync" && syncPrimitives[n.Sel.Name] {
				ff.Concurrency = append(ff.Concurrency, Use{Pos: n.Pos(), What: "sync." + n.Sel.Name})
			}
		case *ast.GoStmt:
			ff.Concurrency = append(ff.Concurrency, Use{Pos: n.Pos(), What: "go statement"})
		case *ast.SendStmt:
			ff.Concurrency = append(ff.Concurrency, Use{Pos: n.Pos(), What: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ff.Concurrency = append(ff.Concurrency, Use{Pos: n.Pos(), What: "channel receive"})
			}
			if n.Op == token.AND {
				if _, isLit := unparen(n.X).(*ast.CompositeLit); isLit {
					addAlloc(n.Pos(), "address of composite literal")
				}
			}
		case *ast.SelectStmt:
			ff.Concurrency = append(ff.Concurrency, Use{Pos: n.Pos(), What: "select statement"})
		case *ast.ChanType:
			ff.Concurrency = append(ff.Concurrency, Use{Pos: n.Pos(), What: "channel type"})
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Chan:
					ff.Concurrency = append(ff.Concurrency, Use{Pos: n.Pos(), What: "range over a channel"})
				case *types.Map:
					ff.MapRanges = append(ff.MapRanges, n)
				}
			}
		case *ast.FuncLit:
			addAlloc(n.Pos(), "func literal (closure)")
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					addAlloc(n.Pos(), "slice literal")
				case *types.Map:
					addAlloc(n.Pos(), "map literal")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				// Constant-folded concatenation costs nothing at run time.
				if tv, known := info.Types[ast.Expr(n)]; !known || tv.Value == nil {
					addAlloc(n.OpPos, "string concatenation")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				addAlloc(n.TokPos, "string concatenation")
			}
		}
		return true
	})
}

// collectCallAllocs records the allocating aspects of one call: make/new
// builtins, non-self appends, fmt formatting, string/[]byte conversions,
// and interface boxing of concrete arguments.
func collectCallAllocs(info *types.Info, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, addAlloc func(token.Pos, string)) {
	fun := unparen(call.Fun)

	// Type conversions: string <-> []byte/[]rune copy their operand.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			if from != nil && isStringByteConversion(from.Underlying(), tv.Type.Underlying()) {
				addAlloc(call.Pos(), "string/[]byte conversion")
			}
		}
		return
	}

	if id, isIdent := fun.(*ast.Ident); isIdent {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				addAlloc(call.Pos(), "make")
			case "new":
				addAlloc(call.Pos(), "new")
			case "append":
				if !selfAppends[call] {
					addAlloc(call.Pos(), "append that is not x = append(x, ...)")
				}
			}
			return
		}
	}

	callee := funcOf(info, fun)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		addAlloc(call.Pos(), "fmt."+callee.Name()+" (formats and boxes)")
		return
	}

	// Interface boxing: a concrete argument passed to an interface-typed
	// parameter is heap-allocated by the conversion.
	sig, ok := info.TypeOf(fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, isSlice := params.At(params.Len() - 1).Type().(*types.Slice); isSlice {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if basic, isBasic := at.(*types.Basic); isBasic && basic.Kind() == types.UntypedNil {
			continue
		}
		addAlloc(arg.Pos(), "interface boxing of a concrete value")
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isStringByteConversion(from, to types.Type) bool {
	isBytes := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStringType(from) && isBytes(to)) || (isBytes(from) && isStringType(to))
}

// exprEqual reports structural equality for the expression shapes that
// appear as assignment targets: identifiers, field selections, and
// constant/identifier index expressions.
func exprEqual(a, b ast.Expr) bool {
	a, b = unparen(a), unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && exprEqual(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(a.X, b.X) && exprEqual(a.Index, b.Index)
	case *ast.BasicLit:
		b, ok := b.(*ast.BasicLit)
		return ok && a.Kind == b.Kind && a.Value == b.Value
	case *ast.StarExpr:
		b, ok := b.(*ast.StarExpr)
		return ok && exprEqual(a.X, b.X)
	}
	return false
}
