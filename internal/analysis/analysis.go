// Package analysis is e3-lint: a suite of static analyzers that
// mechanically enforce the simulator's unwritten invariants — virtual time
// only, seeded randomness, epsilon-safe deadline math, ledger-paired
// terminal accounting, and single-goroutine event-loop discipline. Every
// bug PR 1's lifecycle ledger flushed out at runtime was a violation of
// one of these rules; the analyzers turn them into build-time errors.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) but is built on the standard library's
// go/ast + go/types alone, because this repository vendors no third-party
// modules. Analyzers therefore run through cmd/e3-lint (a multichecker)
// and through the analysistest-style harness in this package's tests,
// rather than via go vet -vettool.
//
// # Escape hatches
//
// Each analyzer honours a directive comment that exempts one line (or,
// for ledgerpair, one function). Directives take the form
//
//	//e3:<name> <reason>
//
// placed on the flagged line, the line immediately above it, or — for
// function-scoped directives — in the function's doc comment. The
// recognised names are wallclock (virtualtime), exactfloat
// (floatdeadline), unseeded (seededrand), noledger (ledgerpair, reason
// required) and concurrent (eventloop). Reasons are free text but should
// say why the invariant does not apply, since the directive is the only
// record reviewers get.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Analyzer names the reporting analyzer.
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional path:line:col: [name] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output.
	Name string
	// Doc is a one-paragraph description: the invariant, the past bug that
	// motivated it, and the escape hatch.
	Doc string
	// Applies reports whether the analyzer inspects the package with the
	// given import path. Analyzers are scoped because the invariants are
	// domain rules (wall-clock time is fine in cmd/, not in sim/).
	Applies func(importPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzed package to an analyzer, mirroring
// x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	directives map[string][]directive // filename -> line-sorted directives
	report     func(Diagnostic)
}

// directive is one parsed //e3:<name> <reason> comment.
type directive struct {
	line   int
	name   string
	reason string
}

const directivePrefix = "e3:"

// newPass builds a pass over pkg for a, indexing escape-hatch directives.
func newPass(a *Analyzer, pkg *Package, report func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		directives: make(map[string][]directive),
		report:     report,
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				body := strings.TrimPrefix(text, directivePrefix)
				name, reason, _ := strings.Cut(body, " ")
				pos := p.Fset.Position(c.Pos())
				p.directives[pos.Filename] = append(p.directives[pos.Filename], directive{
					line:   pos.Line,
					name:   name,
					reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	for _, ds := range p.directives {
		sort.Slice(ds, func(i, j int) bool { return ds[i].line < ds[j].line })
	}
	return p
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directiveAt returns the directive with the given name on exactly the
// given file line, if any.
func (p *Pass) directiveAt(filename string, line int, name string) (directive, bool) {
	for _, d := range p.directives[filename] {
		if d.line == line && d.name == name {
			return d, true
		}
	}
	return directive{}, false
}

// Exempted reports whether the node at pos carries the named directive on
// its own line or on the line immediately above (a leading comment).
func (p *Pass) Exempted(pos token.Pos, name string) bool {
	position := p.Fset.Position(pos)
	if _, ok := p.directiveAt(position.Filename, position.Line, name); ok {
		return true
	}
	_, ok := p.directiveAt(position.Filename, position.Line-1, name)
	return ok
}

// FuncDirective looks for the named directive attached to a function
// declaration: in its doc comment or on the declaration line itself. It
// returns the directive's reason and whether it was found.
func (p *Pass) FuncDirective(fn *ast.FuncDecl, name string) (reason string, ok bool) {
	declPos := p.Fset.Position(fn.Pos())
	if d, found := p.directiveAt(declPos.Filename, declPos.Line, name); found {
		return d.reason, true
	}
	if fn.Doc != nil {
		start := p.Fset.Position(fn.Doc.Pos()).Line
		end := p.Fset.Position(fn.Doc.End()).Line
		for _, d := range p.directives[declPos.Filename] {
			if d.line >= start && d.line <= end && d.name == name {
				return d.reason, true
			}
		}
	}
	return "", false
}

// PkgFuncCall reports whether call is a direct selector call of a
// package-level function, returning the package path and function name.
// It resolves the receiver through the type checker, so a local variable
// shadowing an import name does not false-positive.
func (p *Pass) PkgFuncCall(call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// MethodCall resolves a selector call to its method object, returning the
// defining package path, the receiver's named type, and the method name.
func (p *Pass) MethodCall(call *ast.CallExpr) (pkgPath, recvType, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	obj, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil {
		return "", "", "", false
	}
	sig, isSig := obj.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", "", false
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", "", "", false
	}
	return obj.Pkg().Path(), named.Obj().Name(), obj.Name(), true
}

// IsFloat64 reports whether the expression's type is float64 (through any
// alias, e.g. sim.Time).
func (p *Pass) IsFloat64(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Float64
}

// scope builds an Applies predicate from an explicit import-path list.
func scope(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(importPath string) bool { return set[importPath] }
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		VirtualTime,
		FloatDeadline,
		SeededRand,
		LedgerPair,
		EventLoop,
	}
}

// RunAnalyzers applies every analyzer whose scope matches to each package
// and returns the findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.ImportPath) {
				continue
			}
			a.Run(newPass(a, pkg, collect))
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Pos.Column != diags[j].Pos.Column {
			return diags[i].Pos.Column < diags[j].Pos.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
