// Package analysis is e3-lint: a suite of static analyzers that
// mechanically enforce the simulator's unwritten invariants — virtual time
// only, seeded randomness, epsilon-safe deadline math, ledger-paired
// terminal accounting, single-goroutine event-loop discipline, and (since
// v2) the interprocedural forms of those rules: determinism taint flow,
// hot-path allocation freedom, and error propagation along call chains.
// Every bug PR 1's lifecycle ledger flushed out at runtime was a violation
// of one of these rules; the analyzers turn them into build-time errors.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) but is built on the standard library's
// go/ast + go/types alone, because this repository vendors no third-party
// modules. Analyzers therefore run through cmd/e3-lint (a multichecker)
// and through the analysistest-style harness in this package's tests,
// rather than via go vet -vettool.
//
// v2 architecture: RunAnalyzers computes one module-wide facts layer
// (facts.go — call graph, wall-clock/rand/concurrency/allocation facts
// per function) and one shared directive index (directives.go), then runs
// two kinds of analyzers against them. Per-package analyzers (Run field)
// see one package at a time through a Pass; module analyzers (RunModule
// field) see the whole fact base through a ModulePass and follow call
// edges across package boundaries. The directives meta-analyzer always
// runs last so it can see which escape hatches the rest of the suite
// actually consulted.
//
// # Escape hatches
//
// Each analyzer honours a directive comment that exempts one line (or,
// for function-scoped rules, one function). Directives take the form
//
//	//e3:<name> <reason>
//
// placed on the flagged line, the line immediately above it, or — for
// function-scoped directives — in the function's doc comment. The
// recognised vocabulary is KnownDirectives in directives.go; unknown
// names and stale suppressions are themselves diagnostics. Reasons are
// free text but should say why the invariant does not apply, since the
// directive is the only record reviewers get.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Analyzer names the reporting analyzer.
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional path:line:col: [name] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Exactly one of Run and RunModule is
// set: Run sees one package at a time (scoped by Applies), RunModule sees
// the whole loaded module through the shared facts layer and does its own
// scoping (interprocedural rules care where a call chain *starts*, not
// which package a diagnostic lands in).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output.
	Name string
	// Doc is a one-paragraph description: the invariant, the past bug that
	// motivated it, and the escape hatch.
	Doc string
	// Applies reports whether the analyzer inspects the package with the
	// given import path. Analyzers are scoped because the invariants are
	// domain rules (wall-clock time is fine in cmd/, not in sim/). Nil or
	// unset for module analyzers.
	Applies func(importPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunModule inspects the whole module's fact base.
	RunModule func(*ModulePass)
}

// Pass carries one analyzed package to a per-package analyzer, mirroring
// x/tools/go/analysis.Pass. Directive lookups delegate to the run-wide
// shared index so the directives meta-analyzer can detect stale
// suppressions across the whole suite.
type Pass struct {
	Analyzer   *Analyzer
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// Facts is the shared module-wide fact base (nil only in tests that
	// construct a Pass by hand).
	Facts *Facts

	dirs   *Directives
	report func(Diagnostic)
}

// newPass builds a pass over pkg for a, sharing the run-wide directive
// index.
func newPass(a *Analyzer, pkg *Package, facts *Facts, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:   a,
		ImportPath: pkg.ImportPath,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		Facts:      facts,
		dirs:       facts.Dirs,
		report:     report,
	}
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Exempted reports whether the node at pos carries the named directive on
// its own line or on the line immediately above (a leading comment),
// marking the directive used for stale-suppression accounting.
func (p *Pass) Exempted(pos token.Pos, name string) bool {
	return p.dirs.exemptedAt(p.Fset, pos, name)
}

// FuncDirective looks for the named directive attached to a function
// declaration: in its doc comment or on the declaration line itself. It
// returns the directive's reason and whether it was found.
func (p *Pass) FuncDirective(fn *ast.FuncDecl, name string) (reason string, ok bool) {
	declPos := p.Fset.Position(fn.Pos())
	docStart := declPos.Line
	if fn.Doc != nil {
		docStart = p.Fset.Position(fn.Doc.Pos()).Line
	}
	return p.dirs.funcDirective(declPos.Filename, docStart, declPos.Line, name)
}

// ModulePass carries the whole module's fact base to a module analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Facts    *Facts

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Facts.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportAt records a diagnostic at a directive's own position.
func (p *ModulePass) reportAt(d *Directive, message string) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      token.Position{Filename: d.File, Line: d.Line, Column: d.Col},
		Message:  message,
	})
}

// Exempted reports whether the node at pos carries the named directive on
// its own line or the line above, marking the directive used.
func (p *ModulePass) Exempted(pos token.Pos, name string) bool {
	return p.Facts.Dirs.exemptedAt(p.Facts.Fset, pos, name)
}

// FuncDirective looks for the named directive attached to a function
// declaration (doc comment or declaration line), marking it used.
func (p *ModulePass) FuncDirective(ff *FuncFacts, name string) (reason string, ok bool) {
	declPos := p.Facts.Fset.Position(ff.Decl.Pos())
	docStart := declPos.Line
	if ff.Decl.Doc != nil {
		docStart = p.Facts.Fset.Position(ff.Decl.Doc.Pos()).Line
	}
	return p.Facts.Dirs.funcDirective(declPos.Filename, docStart, declPos.Line, name)
}

// PkgFuncCall reports whether call is a direct selector call of a
// package-level function, returning the package path and function name.
// It resolves the receiver through the type checker, so a local variable
// shadowing an import name does not false-positive.
func (p *Pass) PkgFuncCall(call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	pp, isPkg := pkgPathOf(p.Info, sel.X)
	if !isPkg {
		return "", "", false
	}
	return pp, sel.Sel.Name, true
}

// MethodCall resolves a selector call to its method object, returning the
// defining package path, the receiver's named type, and the method name.
func (p *Pass) MethodCall(call *ast.CallExpr) (pkgPath, recvType, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	obj, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil {
		return "", "", "", false
	}
	pkgPath, recvType, method, isMethod := methodTriple(obj)
	if !isMethod {
		return "", "", "", false
	}
	return pkgPath, recvType, method, true
}

// methodTriple decomposes a method object into (defining package path,
// receiver named type, method name).
func methodTriple(obj *types.Func) (pkgPath, recvType, method string, ok bool) {
	if obj.Pkg() == nil {
		return "", "", "", false
	}
	sig, isSig := obj.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", "", false
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", "", "", false
	}
	return obj.Pkg().Path(), named.Obj().Name(), obj.Name(), true
}

// IsFloat64 reports whether the expression's type is float64 (through any
// alias, e.g. sim.Time).
func (p *Pass) IsFloat64(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Float64
}

// scope builds an Applies predicate from an explicit import-path list.
func scope(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(importPath string) bool { return set[importPath] }
}

// All returns the full analyzer suite in stable order: the five v1
// per-package analyzers, the four v2 interprocedural analyzers, and the
// directives meta-analyzer (which RunAnalyzers always sequences last).
func All() []*Analyzer {
	return []*Analyzer{
		VirtualTime,
		FloatDeadline,
		SeededRand,
		LedgerPair,
		EventLoop,
		DetFlow,
		HotAlloc,
		ErrFlow,
		EventLoopInterproc,
		DirectiveCheck,
	}
}

// RunAnalyzers computes the shared fact base once, applies every
// per-package analyzer whose scope matches to each package and every
// module analyzer to the whole set, and returns the findings sorted by
// position. The directives meta-analyzer (if present) runs after
// everything else regardless of its position in analyzers, because stale
// detection needs the rest of the suite's used-marks.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	facts := ComputeFacts(pkgs)

	ordered := make([]*Analyzer, 0, len(analyzers))
	var metaLast []*Analyzer
	for _, a := range analyzers {
		if a.Name == DirectiveCheck.Name {
			metaLast = append(metaLast, a)
			continue
		}
		ordered = append(ordered, a)
	}
	ordered = append(ordered, metaLast...)

	for _, a := range ordered {
		switch {
		case a.Run != nil:
			for _, pkg := range pkgs {
				if a.Applies != nil && !a.Applies(pkg.ImportPath) {
					continue
				}
				a.Run(newPass(a, pkg, facts, collect))
			}
		case a.RunModule != nil:
			a.RunModule(&ModulePass{Analyzer: a, Facts: facts, report: collect})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Pos.Column != diags[j].Pos.Column {
			return diags[i].Pos.Column < diags[j].Pos.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
