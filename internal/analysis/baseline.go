package analysis

import (
	"encoding/json"
	"fmt"
	"os"
)

// The baseline workflow: a checked-in JSON file (same schema as the -json
// report, plus per-entry justifications) lists the triaged legacy
// findings the team has explicitly decided to carry. The lint gate then
// enforces two directions at once — a finding not in the baseline fails
// the build (new violation), and a baseline entry matching no finding
// fails it too (the violation was fixed; the entry is a stale excuse that
// must be deleted). The baseline can only shrink without a deliberate,
// reviewable edit.

// Baseline is a parsed baseline file.
type Baseline struct {
	Findings []Finding
}

// LoadBaseline reads and parses a baseline file. A missing file is an
// error: the gate's contract is explicit, so create an empty baseline
// ({"version":1,"findings":[]}) rather than omitting the flag.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &Baseline{Findings: rep.Findings}, nil
}

// Diff matches findings against the baseline by (rule, path, message)
// multiset and returns the fresh findings (present now, not baselined)
// and the stale entries (baselined, no longer present). Lines are
// ignored in matching so drift from unrelated edits does not break the
// gate.
func (b *Baseline) Diff(findings []Finding) (fresh, stale []Finding) {
	remaining := make(map[string]int, len(b.Findings))
	for _, f := range b.Findings {
		remaining[f.key()]++
	}
	for _, f := range findings {
		if remaining[f.key()] > 0 {
			remaining[f.key()]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, f := range b.Findings {
		if remaining[f.key()] > 0 {
			remaining[f.key()]--
			stale = append(stale, f)
		}
	}
	sortFindings(fresh)
	sortFindings(stale)
	return fresh, stale
}
