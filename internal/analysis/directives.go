package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// This file is the one shared implementation of the //e3:<name> <reason>
// escape-hatch vocabulary. Before the facts-layer rework every analyzer
// re-parsed directive comments on its own; now parsing, indexing, lookup,
// and bookkeeping live here, and the suite gains two meta-checks for free:
// unknown directive names (a typo like e3:wallclok silently disables
// nothing — it must be an error) and stale suppressions (a directive whose
// line no longer triggers any analyzer is a leftover lie about the code
// and must be deleted).

// KnownDirectives maps every recognised directive name to the analyzer
// that honours it. The vocabulary is the suite's public surface: README
// "Static invariants" documents it, and DirectiveCheck rejects anything
// outside it.
var KnownDirectives = map[string]string{
	"wallclock":  "virtualtime",
	"exactfloat": "floatdeadline",
	"unseeded":   "seededrand",
	"noledger":   "ledgerpair",
	"concurrent": "eventloop, eventloop-interproc",
	"unordered":  "detflow",
	"detflow":    "detflow",
	"hotpath":    "hotalloc (marks a function as an allocation-free fast path)",
	"alloc":      "hotalloc",
	"discard":    "errflow",
}

// Directive is one parsed //e3:<name> <reason> comment.
type Directive struct {
	File   string
	Line   int
	Col    int
	Name   string
	Reason string

	// used records that some analyzer consulted this directive while
	// deciding a real (would-be) diagnostic — the negation of staleness.
	used bool
}

// Directives indexes every //e3:* comment across a set of loaded packages.
// One instance is shared by every analyzer in a run (via Pass and
// ModulePass), so the used-marks accumulate across the whole suite and
// stale detection can run once at the end.
type Directives struct {
	byFile map[string][]*Directive
	all    []*Directive
}

const directivePrefix = "e3:"

// ParseDirectives scans the comments of every file in pkgs.
func ParseDirectives(pkgs []*Package) *Directives {
	ds := &Directives{byFile: make(map[string][]*Directive)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					body := strings.TrimPrefix(text, directivePrefix)
					name, reason, _ := strings.Cut(body, " ")
					pos := pkg.Fset.Position(c.Pos())
					d := &Directive{
						File:   pos.Filename,
						Line:   pos.Line,
						Col:    pos.Column,
						Name:   name,
						Reason: strings.TrimSpace(reason),
					}
					ds.byFile[pos.Filename] = append(ds.byFile[pos.Filename], d)
					ds.all = append(ds.all, d)
				}
			}
		}
	}
	for _, list := range ds.byFile {
		sort.Slice(list, func(i, j int) bool { return list[i].Line < list[j].Line })
	}
	return ds
}

// at returns the directive with the given name on exactly the given file
// line, if any. It does not mark the directive used — callers that are
// answering "is this finding suppressed?" go through exemptedAt /
// funcDirective, which do.
func (ds *Directives) at(file string, line int, name string) (*Directive, bool) {
	for _, d := range ds.byFile[file] {
		if d.Line == line && d.Name == name {
			return d, true
		}
	}
	return nil, false
}

// exemptedAt reports whether the position carries the named directive on
// its own line or the line immediately above, marking it used.
func (ds *Directives) exemptedAt(fset *token.FileSet, pos token.Pos, name string) bool {
	position := fset.Position(pos)
	if d, ok := ds.at(position.Filename, position.Line, name); ok {
		d.used = true
		return true
	}
	if d, ok := ds.at(position.Filename, position.Line-1, name); ok {
		d.used = true
		return true
	}
	return false
}

// funcDirective looks for the named directive attached to a function
// declaration spanning docStart..declLine (its doc comment or the
// declaration line itself), marking it used.
func (ds *Directives) funcDirective(file string, docStart, declLine int, name string) (reason string, ok bool) {
	for _, d := range ds.byFile[file] {
		if d.Name == name && d.Line >= docStart && d.Line <= declLine {
			d.used = true
			return d.Reason, true
		}
	}
	return "", false
}

// Unknown returns every directive whose name is outside the recognised
// vocabulary, in deterministic (file, line) order.
func (ds *Directives) Unknown() []*Directive {
	var out []*Directive
	for _, d := range ds.all {
		if _, known := KnownDirectives[d.Name]; !known {
			out = append(out, d)
		}
	}
	sortDirectives(out)
	return out
}

// Stale returns every known-name directive that no analyzer consulted
// while suppressing (or deciding) a diagnostic — suppressions whose
// violation no longer exists. Only meaningful after the full suite ran.
func (ds *Directives) Stale() []*Directive {
	var out []*Directive
	for _, d := range ds.all {
		if _, known := KnownDirectives[d.Name]; known && !d.used {
			out = append(out, d)
		}
	}
	sortDirectives(out)
	return out
}

func sortDirectives(list []*Directive) {
	sort.Slice(list, func(i, j int) bool {
		if list[i].File != list[j].File {
			return list[i].File < list[j].File
		}
		return list[i].Line < list[j].Line
	})
}

// knownNames renders the vocabulary for error messages, sorted.
func knownNames() string {
	names := make([]string, 0, len(KnownDirectives))
	for name := range KnownDirectives {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// DirectiveCheck is the meta-analyzer over the escape hatches themselves.
// It must run after every other analyzer in the suite (RunAnalyzers
// guarantees the ordering): an unknown //e3: name is always an error — the
// author believed something was being suppressed and nothing was — and a
// known directive that no analyzer consulted is a stale suppression whose
// violation has since been fixed or refactored away, left behind to
// mislead the next reader.
//
// Note the staleness verdict is relative to the analyzers that ran: when a
// subset of the suite runs (analysistest fixtures), directives consumed
// only by excluded analyzers will look stale. cmd/e3-lint and the
// self-lint always run the full suite.
var DirectiveCheck = &Analyzer{
	Name: "directives",
	Doc: "reject unknown //e3:* directive names and stale suppressions " +
		"(directives that no longer match any diagnostic). No escape hatch: " +
		"fix the name or delete the directive.",
	RunModule: runDirectiveCheck,
}

func runDirectiveCheck(pass *ModulePass) {
	ds := pass.Facts.Dirs
	for _, d := range ds.Unknown() {
		pass.reportAt(d, fmt.Sprintf("unknown directive //e3:%s — known names: %s", d.Name, knownNames()))
	}
	for _, d := range ds.Stale() {
		pass.reportAt(d, fmt.Sprintf("stale suppression: //e3:%s matches no diagnostic on this line; the violation it excused is gone — delete the directive", d.Name))
	}
}
