package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// syncPrimitives are the sync types whose presence implies shared-memory
// concurrency. Once/Pool are tolerated: they are initialization and
// allocation tools, not cross-goroutine protocols.
var syncPrimitives = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Cond":      true,
	"Map":       true,
}

// EventLoop makes the simulator's single-goroutine discipline structural.
// The sim engine, runners, batcher, and collector all mutate shared state
// with no synchronization, on the explicit contract that every callback
// runs on the event loop's goroutine. ROADMAP's race-detector recipe
// checks that contract probabilistically; this analyzer checks it at
// build time by forbidding the constructs that would introduce a second
// goroutine or pretend to tolerate one: go statements, channel types and
// operations, select, and sync primitives. The REST front end is the one
// legitimate concurrent edge (net/http runs handlers on its own
// goroutines) and carries //e3:concurrent where it guards its counters.
var EventLoop = &Analyzer{
	Name: "eventloop",
	Doc: "forbid goroutines, channels, select, and sync primitives inside " +
		"event-loop-owned packages; all simulator state is single-goroutine " +
		"by contract. Escape hatch: //e3:concurrent <reason>.",
	Applies: scope(
		"e3/internal/sim",
		"e3/internal/scheduler",
		"e3/internal/serving",
		"e3/internal/telemetry",
		"e3/internal/replan",
	),
	Run: runEventLoop,
}

func runEventLoop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				reportEventLoop(pass, n.Pos(), "go statement starts a second goroutine")
			case *ast.SendStmt:
				reportEventLoop(pass, n.Pos(), "channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					reportEventLoop(pass, n.Pos(), "channel receive")
				}
			case *ast.SelectStmt:
				reportEventLoop(pass, n.Pos(), "select statement")
			case *ast.ChanType:
				reportEventLoop(pass, n.Pos(), "channel type")
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						reportEventLoop(pass, n.Pos(), "range over a channel")
					}
				}
			case *ast.SelectorExpr:
				if pn, ok := identPkg(pass, n.X); ok && pn == "sync" && syncPrimitives[n.Sel.Name] {
					reportEventLoop(pass, n.Pos(), "sync."+n.Sel.Name)
				}
			}
			return true
		})
	}
}

func reportEventLoop(pass *Pass, pos token.Pos, what string) {
	if pass.Exempted(pos, "concurrent") {
		return
	}
	pass.Reportf(pos,
		"%s inside an event-loop-owned package breaks the single-goroutine contract the unsynchronized simulator state depends on (annotate //e3:concurrent <reason> for a real concurrent edge)",
		what)
}

// identPkg resolves an expression to the import path of the package it
// names, if it is a package reference.
func identPkg(pass *Pass, e ast.Expr) (string, bool) {
	ident, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
