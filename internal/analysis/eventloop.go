package analysis

import (
	"go/ast"
	"go/token"
)

// syncPrimitives are the sync types whose presence implies shared-memory
// concurrency. Once/Pool are tolerated: they are initialization and
// allocation tools, not cross-goroutine protocols.
var syncPrimitives = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Cond":      true,
	"Map":       true,
}

// EventLoop makes the simulator's single-goroutine discipline structural.
// The sim engine, runners, batcher, and collector all mutate shared state
// with no synchronization, on the explicit contract that every callback
// runs on the event loop's goroutine. ROADMAP's race-detector recipe
// checks that contract probabilistically; this analyzer checks it at
// build time by forbidding the constructs that would introduce a second
// goroutine or pretend to tolerate one: go statements, channel types and
// operations, select, and sync primitives. The REST front end is the one
// legitimate concurrent edge (net/http runs handlers on its own
// goroutines) and carries //e3:concurrent where it guards its counters.
//
// v2: function bodies are read from the shared facts layer; struct
// fields, signatures, and package-level declarations still need a
// residual walk. The interprocedural extension (eventloop-interproc)
// follows call edges out of these packages.
var EventLoop = &Analyzer{
	Name: "eventloop",
	Doc: "forbid goroutines, channels, select, and sync primitives inside " +
		"event-loop-owned packages; all simulator state is single-goroutine " +
		"by contract. Escape hatch: //e3:concurrent <reason>.",
	Applies: scope(eventLoopScope...),
	Run:     runEventLoop,
}

// eventLoopScope lists the event-loop-owned packages. It is shared with
// eventloop-interproc, whose root set is exactly these packages.
var eventLoopScope = []string{
	"e3/internal/sim",
	"e3/internal/scheduler",
	"e3/internal/serving",
	"e3/internal/telemetry",
	"e3/internal/replan",
	"e3/internal/slo",
	"e3/internal/flame",
	// The fleet tier runs N event loops, but each shard's code is still
	// loop-owned: the ONLY sanctioned concurrency is the shard runner's
	// annotated worker pool (internal/fleet/runner.go). A goroutine
	// leaked into per-shard loop code is exactly the bug this scope
	// exists to catch — now at N loops instead of one.
	"e3/internal/fleet",
}

func runEventLoop(pass *Pass) {
	for _, ff := range pass.Facts.ByPackage(pass.ImportPath) {
		for _, use := range ff.Concurrency {
			reportEventLoop(pass, use.Pos, eventLoopPhrase(use.What))
		}
	}
	inspectOutsideBodies(pass.Files, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ChanType:
			reportEventLoop(pass, n.Pos(), "channel type")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportEventLoop(pass, n.Pos(), "channel receive")
			}
		case *ast.SelectorExpr:
			if pp, ok := pkgPathOf(pass.Info, n.X); ok && pp == "sync" && syncPrimitives[n.Sel.Name] {
				reportEventLoop(pass, n.Pos(), "sync."+n.Sel.Name)
			}
		}
		return true
	})
}

// eventLoopPhrase renders a concurrency fact for the diagnostic message.
func eventLoopPhrase(what string) string {
	if what == "go statement" {
		return "go statement starts a second goroutine"
	}
	return what
}

func reportEventLoop(pass *Pass, pos token.Pos, what string) {
	if pass.Exempted(pos, "concurrent") {
		return
	}
	pass.Reportf(pos,
		"%s inside an event-loop-owned package breaks the single-goroutine contract the unsynchronized simulator state depends on (annotate //e3:concurrent <reason> for a real concurrent edge)",
		what)
}
