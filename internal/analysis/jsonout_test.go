package analysis_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"e3/internal/analysis"
)

// TestJSONRoundTrip runs a real analyzer over a real fixture tree and
// checks that every finding survives the JSON encoding with an accurate,
// tree-relative path:line — the property the lint gate's diffing and the
// baseline matching both stand on.
func TestJSONRoundTrip(t *testing.T) {
	root := "testdata/src/detflow"
	loader := analysis.NewTreeLoader(root)
	var pkgs []*analysis.Package
	for _, p := range []string{"e3/internal/sim", "e3/internal/jitter", "e3/internal/scheduler"} {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{analysis.DetFlow})
	if len(diags) == 0 {
		t.Fatal("detflow fixture produced no diagnostics; round-trip test is vacuous")
	}
	findings := analysis.ToFindings(diags, loader.Root())

	data, err := analysis.MarshalReport(findings)
	if err != nil {
		t.Fatal(err)
	}
	var rep analysis.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse back: %v", err)
	}
	if rep.Version != 1 {
		t.Errorf("report version = %d, want 1", rep.Version)
	}
	if !reflect.DeepEqual(rep.Findings, findings) {
		t.Errorf("findings changed across the JSON round trip:\n got %+v\nwant %+v", rep.Findings, findings)
	}

	for _, f := range rep.Findings {
		if filepath.IsAbs(f.Path) || strings.Contains(f.Path, `\`) {
			t.Errorf("path %q is not tree-relative slash form", f.Path)
			continue
		}
		src, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(f.Path)))
		if err != nil {
			t.Errorf("finding path %q does not resolve under the tree root: %v", f.Path, err)
			continue
		}
		if lines := bytes.Count(src, []byte("\n")) + 1; f.Line < 1 || f.Line > lines {
			t.Errorf("%s: line %d out of range (file has %d lines)", f.Path, f.Line, lines)
		}
		if f.Rule != "detflow" {
			t.Errorf("finding rule = %q, want detflow", f.Rule)
		}
	}

	// Byte-identical re-marshal: the gate diffs report text.
	again, err := analysis.MarshalReport(findings)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("marshaling the same findings twice produced different bytes")
	}
}

func TestBaselineDiff(t *testing.T) {
	f := func(rule, path, msg string, line int) analysis.Finding {
		return analysis.Finding{Rule: rule, Path: path, Line: line, Message: msg}
	}
	base := &analysis.Baseline{Findings: []analysis.Finding{
		f("detflow", "internal/a/a.go", "msg one", 10),
		f("detflow", "internal/a/a.go", "msg one", 40), // second identical entry: multiset
		f("hotalloc", "internal/b/b.go", "msg two", 7),
	}}

	// Line drift must not matter; message/rule/path must.
	fresh, stale := base.Diff([]analysis.Finding{
		f("detflow", "internal/a/a.go", "msg one", 12),  // matches entry 1 despite drift
		f("detflow", "internal/a/a.go", "msg one", 99),  // matches entry 2 (multiset)
		f("hotalloc", "internal/b/b.go", "msg TWO", 7),  // different message: fresh
		f("errflow", "internal/c/c.go", "msg three", 3), // unknown rule: fresh
	})
	if len(fresh) != 2 {
		t.Fatalf("fresh = %+v, want the changed-message and new-rule findings", fresh)
	}
	if fresh[0].Rule != "hotalloc" || fresh[1].Rule != "errflow" {
		t.Errorf("fresh order/content wrong: %+v", fresh)
	}
	if len(stale) != 1 || stale[0].Rule != "hotalloc" {
		t.Errorf("stale = %+v, want the unmatched hotalloc entry", stale)
	}

	// A clean tree against a non-empty baseline: everything is stale.
	fresh, stale = base.Diff(nil)
	if len(fresh) != 0 || len(stale) != 3 {
		t.Errorf("clean tree: fresh=%d stale=%d, want 0 and 3", len(fresh), len(stale))
	}

	// Empty baseline against findings: everything is fresh.
	empty := &analysis.Baseline{}
	fresh, stale = empty.Diff([]analysis.Finding{f("detflow", "x.go", "m", 1)})
	if len(fresh) != 1 || len(stale) != 0 {
		t.Errorf("empty baseline: fresh=%d stale=%d, want 1 and 0", len(fresh), len(stale))
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint.baseline.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"findings":[{"rule":"detflow","path":"a.go","line":3,"message":"m","justification":"carried"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 1 || b.Findings[0].Justification != "carried" {
		t.Fatalf("baseline = %+v, want one justified entry", b.Findings)
	}
	if _, err := analysis.LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline file must be an error, not an implicit empty baseline")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.LoadBaseline(path); err == nil {
		t.Error("malformed baseline JSON must be an error")
	}
}
