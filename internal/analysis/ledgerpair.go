package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LedgerPair enforces exactly-once lifecycle accounting. The audit
// ledger's conservation proof (every sample terminates exactly once, and
// the ledger's totals cross-check the collector's counters) only holds if
// every code path that records a terminal outcome in the serving metrics
// also records the matching ledger event. PR 1 found the batcher shedding
// samples into the goodput meter with no ledger event — the audit caught
// it at runtime; this makes the pairing structural.
//
// Concretely: within scheduler and serving, any function body that
// performs terminal accounting — calling metrics.GoodputMeter.ServeOK or
// .Drop, or mutating the Collector's Dropped/Violations counters — must
// also call audit.Ledger.Completed or .Dropped in that same body, or the
// function must carry //e3:noledger <reason> (the reason is mandatory:
// the directive is an auditable claim that the accounting is not
// per-sample).
var LedgerPair = &Analyzer{
	Name: "ledgerpair",
	Doc: "terminal accounting (goodput meter hits, drop/violation counters) " +
		"must be paired with an audit.Ledger Completed/Dropped event in the " +
		"same function. Escape hatch: //e3:noledger <reason> (reason required).",
	Applies: scope(
		"e3/internal/scheduler",
		"e3/internal/serving",
	),
	Run: runLedgerPair,
}

const (
	metricsPkg = "e3/internal/metrics"
	auditPkg   = "e3/internal/audit"
)

func runLedgerPair(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLedgerPairing(pass, fn)
		}
	}
}

func checkLedgerPairing(pass *Pass, fn *ast.FuncDecl) {
	var firstTerminal ast.Node
	var terminalDesc string
	hasLedger := false

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			pkgPath, recv, method, ok := pass.MethodCall(n)
			if !ok {
				return true
			}
			if pkgPath == auditPkg && recv == "Ledger" && (method == "Completed" || method == "Dropped") {
				hasLedger = true
			}
			if pkgPath == metricsPkg && recv == "GoodputMeter" && (method == "ServeOK" || method == "Drop") {
				if firstTerminal == nil {
					firstTerminal = n
					terminalDesc = "GoodputMeter." + method
				}
			}
		case *ast.IncDecStmt:
			if name, ok := terminalCounter(pass, n.X); ok && firstTerminal == nil {
				firstTerminal = n
				terminalDesc = name
			}
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN && n.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range n.Lhs {
				if name, ok := terminalCounter(pass, lhs); ok && firstTerminal == nil {
					firstTerminal = n
					terminalDesc = name
				}
			}
		}
		return true
	})

	if firstTerminal == nil {
		return
	}
	reason, exempt := pass.FuncDirective(fn, "noledger")
	if exempt {
		if reason == "" {
			pass.Reportf(fn.Pos(), "//e3:noledger needs a reason: say why %s's terminal accounting in %s is not per-sample", terminalDesc, fn.Name.Name)
		}
		return
	}
	if hasLedger {
		return
	}
	pass.Reportf(firstTerminal.Pos(),
		"%s records a terminal outcome but %s never records a paired audit.Ledger Completed/Dropped event; the conservation audit will drift — pair the event or annotate the function //e3:noledger <reason>",
		terminalDesc, fn.Name.Name)
}

// terminalCounter reports whether the expression writes one of the
// Collector's terminal tally fields.
func terminalCounter(pass *Pass, e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Dropped" && sel.Sel.Name != "Violations" {
		return "", false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Name() != "Collector" ||
		named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "e3/internal/scheduler" {
		return "", false
	}
	return "Collector." + sel.Sel.Name, true
}
