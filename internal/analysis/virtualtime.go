package analysis

import (
	"go/ast"
)

// wallClockFuncs are the package time entry points that read or schedule
// against the machine's clock. Pure conversions (time.Duration arithmetic,
// time.Unix) are not listed: the invariant is about *which clock* drives
// the simulation, not about the time package as a whole.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// VirtualTime enforces the simulator's foundational rule: simulation-domain
// packages run on virtual float64 seconds, never the wall clock. A single
// time.Now inside the event loop silently couples results to host speed and
// destroys run-to-run reproducibility — the property every PR 1 conservation
// audit depends on. Legitimate wall-clock reads at the system's edges (run-
// duration logging, real-compute measurement like experiments' Figure 20
// microbenchmark) carry //e3:wallclock with a reason.
//
// v2: function bodies are read from the shared facts layer; only
// package-level initializers still need a residual walk.
var VirtualTime = &Analyzer{
	Name: "virtualtime",
	Doc: "forbid wall-clock time (time.Now, time.Since, wall timers) in " +
		"simulation-domain packages; virtual float64 timestamps only. " +
		"Escape hatch: //e3:wallclock <reason>.",
	Applies: scope(
		"e3/internal/sim",
		"e3/internal/simnet",
		"e3/internal/scheduler",
		"e3/internal/serving",
		"e3/internal/metrics",
		"e3/internal/audit",
		"e3/internal/exec",
		"e3/internal/trace",
		"e3/internal/profile",
		"e3/internal/workload",
		"e3/internal/experiments",
		"e3/internal/core",
		"e3/internal/telemetry",
		"e3/internal/replan",
		"e3/internal/slo",
		"e3/internal/flame",
	),
	Run: runVirtualTime,
}

func runVirtualTime(pass *Pass) {
	reportUse := func(use Use) {
		if pass.Exempted(use.Pos, "wallclock") {
			return
		}
		pass.Reportf(use.Pos,
			"%s reads the wall clock inside a simulation-domain package; use the sim engine's virtual time (or annotate //e3:wallclock <reason> for a real edge)",
			use.What)
	}
	for _, ff := range pass.Facts.ByPackage(pass.ImportPath) {
		for _, use := range ff.WallClock {
			reportUse(use)
		}
	}
	// Package-level var initializers sit outside any function body and
	// therefore outside the facts layer.
	inspectOutsideBodies(pass.Files, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgPath, fn, ok := pass.PkgFuncCall(call); ok && pkgPath == "time" && wallClockFuncs[fn] {
			reportUse(Use{Pos: call.Pos(), What: "time." + fn})
		}
		return true
	})
}

// inspectOutsideBodies walks the parts of each file that collectFuncFacts
// does not: package-level declarations, function signatures and receivers
// — everything except function bodies.
func inspectOutsideBodies(files []*ast.File, fn func(ast.Node) bool) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil {
					ast.Inspect(d.Recv, fn)
				}
				ast.Inspect(d.Type, fn)
			default:
				ast.Inspect(decl, fn)
			}
		}
	}
}
