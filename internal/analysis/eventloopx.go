package analysis

import (
	"go/types"
	"strings"
)

// EventLoopInterproc extends the eventloop analyzer along call edges. The
// per-package rule keeps goroutines and channels out of the event-loop
// packages themselves, but a helper in any other package can smuggle the
// same hazard back in: event-loop code calls it, it spawns a goroutine,
// and the unsynchronized simulator state is suddenly shared. This
// analyzer walks every call edge that leaves the event-loop scope and
// flags the boundary call site when the callee (transitively) contains a
// concurrency construct.
//
// Suppression composes with the per-construct //e3:concurrent directives:
// a construct annotated at its own line (the optimizer's deterministic,
// joined-before-return worker pool) is considered safe for callers too,
// and the boundary call site itself may carry //e3:concurrent when the
// whole callee is a sanctioned concurrent edge.
var EventLoopInterproc = &Analyzer{
	Name: "eventloop-interproc",
	Doc: "flag calls from event-loop-owned packages into functions that " +
		"transitively use goroutines, channels, or sync primitives. " +
		"Escape hatch: //e3:concurrent <reason> on the construct or the " +
		"boundary call.",
	RunModule: runEventLoopInterproc,
}

// concReach is one reachable concurrency construct with the call chain
// that reaches it.
type concReach struct {
	use   Use
	chain []string
}

func runEventLoopInterproc(pass *ModulePass) {
	scoped := make(map[string]bool, len(eventLoopScope))
	for _, p := range eventLoopScope {
		scoped[p] = true
	}

	// memo caches per-function reachability. A nil entry means "no
	// unexempted construct reachable"; the in-progress sentinel breaks
	// call cycles (a cycle cannot introduce a construct on its own).
	memo := make(map[*types.Func]*concReach)
	inProgress := make(map[*types.Func]bool)

	var reach func(ff *FuncFacts) *concReach
	reach = func(ff *FuncFacts) *concReach {
		if r, done := memo[ff.Obj]; done {
			return r
		}
		if inProgress[ff.Obj] {
			return nil
		}
		inProgress[ff.Obj] = true
		defer delete(inProgress, ff.Obj)

		var result *concReach
		for _, use := range ff.Concurrency {
			if pass.Exempted(use.Pos, "concurrent") {
				continue
			}
			result = &concReach{use: use, chain: []string{ff.Name()}}
			break
		}
		if result == nil {
			for _, cs := range ff.Calls {
				if cs.Cold {
					continue
				}
				callee, inModule := pass.Facts.Funcs[cs.Callee]
				if !inModule || scoped[callee.Pkg.ImportPath] {
					// In-scope callees are the per-package analyzer's
					// problem (and other boundary edges' roots).
					continue
				}
				if r := reach(callee); r != nil {
					result = &concReach{use: r.use, chain: append([]string{ff.Name()}, r.chain...)}
					break
				}
			}
		}
		memo[ff.Obj] = result
		return result
	}

	for _, ff := range pass.Facts.Order {
		if !scoped[ff.Pkg.ImportPath] {
			continue
		}
		for _, cs := range ff.Calls {
			if cs.Cold {
				continue
			}
			callee, inModule := pass.Facts.Funcs[cs.Callee]
			if !inModule || scoped[callee.Pkg.ImportPath] {
				continue
			}
			r := reach(callee)
			if r == nil {
				continue
			}
			if pass.Exempted(cs.Pos, "concurrent") {
				continue
			}
			usePos := pass.Facts.Fset.Position(r.use.Pos)
			pass.Reportf(cs.Pos,
				"call from event-loop code reaches %s at %s:%d (via %s); the single-goroutine contract extends through every call edge (annotate //e3:concurrent <reason> on the construct or this call if the edge is sanctioned)",
				r.use.What, relBase(usePos.Filename), usePos.Line,
				ff.Name()+" → "+strings.Join(r.chain, " → "))
		}
	}
}

// relBase trims a position's path to its last two segments for readable
// messages (internal/optimizer/search.go).
func relBase(path string) string {
	segs := strings.Split(path, "/")
	if len(segs) <= 3 {
		return path
	}
	return strings.Join(segs[len(segs)-3:], "/")
}
