package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrFlow makes PR 6's one-off error-propagation audit permanent. The
// engine's Run/RunAll return an abort error (event-limit hit, with the
// pending-event count that explains how much work was lost), and the
// batcher/runner Flush family reports end-of-run losses; swallowing any
// of them turns a truncated simulation into a silently "successful" one
// — the exact bug class PR 6 hand-audited across straggler/fig16/fig18/
// extensions/multitenant call sites. errflow finds every call whose
// error result is structurally discarded: an expression statement, a
// blank-identifier assignment, or a go/defer statement.
//
// The family is seeded by name and home: error-returning functions named
// Run, RunAll, or Flush* declared in the event-loop packages
// (sim/serving/scheduler/replan). It then closes over wrappers: an
// error-returning function that calls a family member joins the family,
// so dropping serving.RunOpenLoop's error two packages up is caught even
// though RunOpenLoop itself is not named in the seed. Escape hatch:
// //e3:discard <reason> on the discarding line.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "errors returned by Run/RunAll/Flush-family functions (and their " +
		"wrappers) must propagate; expression-statement calls, blank " +
		"assignments, and go/defer discards are flagged. Escape hatch: " +
		"//e3:discard <reason>.",
	RunModule: runErrFlow,
}

// errFlowSeedPkgs are the packages whose Run/RunAll/Flush* functions seed
// the family.
var errFlowSeedPkgs = map[string]bool{
	"e3/internal/sim":       true,
	"e3/internal/serving":   true,
	"e3/internal/scheduler": true,
	"e3/internal/replan":    true,
}

func isErrFlowSeedName(name string) bool {
	return name == "Run" || name == "RunAll" || strings.HasPrefix(name, "Flush")
}

// errorResults returns the indexes of a signature's error-typed results.
func errorResults(sig *types.Signature) []int {
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			idx = append(idx, i)
		}
	}
	return idx
}

// isErrFlowSeed recognizes a seed member on the *types.Func alone, so a
// call into a seed package resolves even when that package is outside
// the analyzed set (linting a subset still loads dependencies' types,
// just not their facts).
func isErrFlowSeed(fn *types.Func) bool {
	if fn.Pkg() == nil || !errFlowSeedPkgs[fn.Pkg().Path()] || !isErrFlowSeedName(fn.Name()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && len(errorResults(sig)) > 0
}

func runErrFlow(pass *ModulePass) {
	// Seed the family, then close over wrappers to a fixpoint: an
	// error-returning function calling a family member must itself be
	// handled by its callers.
	wrappers := make(map[*types.Func]bool)
	inFamily := func(fn *types.Func) bool {
		return wrappers[fn] || isErrFlowSeed(fn)
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range pass.Facts.Order {
			if inFamily(ff.Obj) {
				continue
			}
			sig, ok := ff.Obj.Type().(*types.Signature)
			if !ok || len(errorResults(sig)) == 0 {
				continue
			}
			for _, cs := range ff.Calls {
				if !cs.Ref && inFamily(cs.Callee) {
					wrappers[ff.Obj] = true
					changed = true
					break
				}
			}
		}
	}

	// Flag structurally-discarded calls of family members, everywhere in
	// the module (a cmd/ main dropping the abort error hides a truncated
	// run just as effectively as a scheduler doing it).
	for _, ff := range pass.Facts.Order {
		checkErrFlowFunc(pass, ff, inFamily)
	}
}

func checkErrFlowFunc(pass *ModulePass, ff *FuncFacts, inFamily func(*types.Func) bool) {
	info := ff.Pkg.Info

	familyCall := func(e ast.Expr) (*types.Func, bool) {
		call, ok := unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		callee := funcOf(info, call.Fun)
		if callee == nil || !inFamily(callee) {
			return nil, false
		}
		return callee, true
	}
	report := func(pos ast.Node, callee *types.Func, how string) {
		if pass.Exempted(pos.Pos(), "discard") {
			return
		}
		pass.Reportf(pos.Pos(),
			"error returned by %s is discarded (%s); a swallowed abort turns a truncated run into a silently successful one — propagate it or annotate //e3:discard <reason>",
			callee.Name(), how)
	}

	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if callee, ok := familyCall(n.X); ok {
				report(n, callee, "call used as a statement")
			}
		case *ast.GoStmt:
			if callee, ok := familyCall(n.Call); ok {
				report(n, callee, "go statement drops the result")
			}
		case *ast.DeferStmt:
			if callee, ok := familyCall(n.Call); ok {
				report(n, callee, "defer drops the result")
			}
		case *ast.AssignStmt:
			// Tuple form: v, _ := f() — the blank in the error position.
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				if callee, ok := familyCall(n.Rhs[0]); ok {
					sig := callee.Type().(*types.Signature)
					for _, ei := range errorResults(sig) {
						if ei < len(n.Lhs) && isBlank(n.Lhs[ei]) {
							report(n, callee, "error position assigned to _")
						}
					}
				}
				return true
			}
			// 1:1 form: _ = f().
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if callee, ok := familyCall(rhs); ok && isBlank(n.Lhs[i]) {
					report(n, callee, "assigned to _")
				}
			}
		}
		return true
	})
}

func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
