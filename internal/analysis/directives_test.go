package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// loadDirectiveSrc writes src as a one-package tree and parses its
// directives, returning the package for position lookups.
func loadDirectiveSrc(t *testing.T, src string) (*Package, *Directives) {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "p")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewTreeLoader(root).Load("p")
	if err != nil {
		t.Fatalf("loading directive fixture: %v", err)
	}
	return pkg, ParseDirectives([]*Package{pkg})
}

func TestParseDirectives(t *testing.T) {
	_, ds := loadDirectiveSrc(t, `package p

//e3:wallclock calibration only
func A() int { return 1 }

func B() int {
	//e3:frobnicate not a vocabulary word
	x := 1 //e3:unordered   padded reason
	return x
}
`)
	want := []struct {
		line   int
		name   string
		reason string
	}{
		{3, "wallclock", "calibration only"},
		{7, "frobnicate", "not a vocabulary word"},
		{8, "unordered", "padded reason"},
	}
	if len(ds.all) != len(want) {
		t.Fatalf("parsed %d directives, want %d", len(ds.all), len(want))
	}
	for i, w := range want {
		d := ds.all[i]
		if d.Line != w.line || d.Name != w.name || d.Reason != w.reason {
			t.Errorf("directive %d = {line %d, name %q, reason %q}, want {%d, %q, %q}",
				i, d.Line, d.Name, d.Reason, w.line, w.name, w.reason)
		}
	}
}

func TestDirectivesUnknownAndStale(t *testing.T) {
	pkg, ds := loadDirectiveSrc(t, `package p

//e3:wallclock on the declaration
func A() int { return 1 }

func B() int {
	x := 1 //e3:wallclok typo
	return x //e3:unordered never consulted
}
`)
	unknown := ds.Unknown()
	if len(unknown) != 1 || unknown[0].Name != "wallclok" {
		t.Fatalf("Unknown() = %v, want exactly the wallclok typo", unknown)
	}
	// Nothing consulted yet: both known-name directives are stale, the
	// unknown one is not double-reported as stale.
	if stale := ds.Stale(); len(stale) != 2 {
		t.Fatalf("Stale() before any marking = %d entries, want 2", len(stale))
	}

	// funcDirective consumes the declaration-attached directive.
	decl := pkg.Files[0].Decls[0]
	pos := pkg.Fset.Position(decl.Pos())
	if reason, ok := ds.funcDirective(pos.Filename, pos.Line-1, pos.Line, "wallclock"); !ok || reason != "on the declaration" {
		t.Fatalf("funcDirective = (%q, %v), want the A() directive", reason, ok)
	}
	stale := ds.Stale()
	if len(stale) != 1 || stale[0].Name != "unordered" {
		t.Fatalf("Stale() after funcDirective = %v, want only the unconsulted unordered", stale)
	}

	// exemptedAt consumes a same-line (or line-above) directive.
	retLine := stale[0].Line
	file := pkg.Fset.File(decl.Pos())
	if !ds.exemptedAt(pkg.Fset, file.LineStart(retLine), "unordered") {
		t.Fatal("exemptedAt missed the same-line directive")
	}
	if len(ds.Stale()) != 0 {
		t.Fatalf("Stale() after consuming everything = %v, want none", ds.Stale())
	}
	// Consuming never erases the unknown-name finding.
	if len(ds.Unknown()) != 1 {
		t.Fatal("Unknown() changed after marking; it must not")
	}
}
