// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone.
//
// Fixtures live in a GOPATH-style tree (testdata/src/<suite>/): import
// path "e3/internal/sim" resolves to <root>/e3/internal/sim, so fixture
// packages occupy the same import paths as the real ones and exercise the
// analyzers' package scoping for free. A line expecting a diagnostic
// carries a comment of the form
//
//	expr // want `regexp` `another regexp`
//
// with each pattern quoted by backquotes or double quotes. Every expected
// pattern must be matched by a diagnostic on that line, and every
// diagnostic must match an expectation, or the test fails. This is what
// keeps the analyzers honest: gutting one leaves its fixtures' want
// comments unmatched and fails the suite.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"e3/internal/analysis"
)

// expectation is one // want pattern at a file line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each fixture import path from the GOPATH-style tree at root,
// applies the analyzer, and checks diagnostics against // want comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	RunSuite(t, root, []*analysis.Analyzer{a}, importPaths...)
}

// RunSuite runs several analyzers together over one fixture tree, pooling
// their diagnostics against the tree's want comments. Module-scoped
// analyzers (nil Applies) see every fixture package through the shared
// fact base — cross-package fixtures must therefore list *all* their
// packages, helpers included, or call edges into the missing ones
// dangle. Each package-scoped analyzer must cover at least one fixture
// package, or its part of the test would pass vacuously.
func RunSuite(t *testing.T, root string, analyzers []*analysis.Analyzer, importPaths ...string) {
	t.Helper()
	loader := analysis.NewTreeLoader(root)
	var pkgs []*analysis.Package
	for _, path := range importPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, a := range analyzers {
		if a.Applies == nil {
			continue
		}
		covered := false
		for _, pkg := range pkgs {
			if a.Applies(pkg.ImportPath) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("no fixture package is inside analyzer %s's scope; the test would pass vacuously", a.Name)
		}
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ws, err := parseWants(pkg, f)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	diags := analysis.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation that accepts the diagnostic.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts // want expectations from one fixture file.
func parseWants(pkg *analysis.Package, f *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				// A want may trail another in-comment annotation on the same
				// line (an //e3:* directive that is itself the expected
				// diagnostic's subject): `//e3:bad name // want "..."`.
				if i := strings.Index(text, "// want "); i >= 0 {
					rest, ok = text[i+len("// want "):], true
				}
			}
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			patterns, err := splitPatterns(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want comment: %w", pos.Filename, pos.Line, err)
			}
			if len(patterns) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment lists no patterns", pos.Filename, pos.Line)
			}
			for _, p := range patterns {
				rx, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, p, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: rx})
			}
		}
	}
	return wants, nil
}

// splitPatterns parses a sequence of backquoted or double-quoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Re-use Go string syntax for escapes.
			val, rest, err := unquotePrefix(s)
			if err != nil {
				return nil, err
			}
			out = append(out, val)
			s = strings.TrimSpace(rest)
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
	}
	return out, nil
}

// unquotePrefix unquotes the leading double-quoted Go string literal and
// returns the remainder.
func unquotePrefix(s string) (val, rest string, err error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			val, err := strconv.Unquote(s[:i+1])
			return val, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quote in %q", s)
}
