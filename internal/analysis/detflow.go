package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetFlow is the interprocedural determinism-taint analyzer. The
// simulator's whole contract is that one seed produces one byte-identical
// run; that contract dies the moment a value derived from the wall clock,
// the global rand source, or randomized map-iteration order flows into
// the deterministic core — an engine schedule time, ledger accounting (a
// digest input), or an exported trace span. The v1 analyzers forbid the
// sources *inside* sim-domain packages; detflow chases the values through
// any chain of calls, so a helper three packages away that returns
// time.Now-derived jitter is caught at the call site that feeds it to
// Engine.At.
//
// Two rules:
//
//  1. Taint flow: wall-clock and global-rand results, and the results of
//     any function that (transitively) returns one, may not appear as a
//     sink argument. Wrappers that pass a parameter straight into a sink
//     become sinks in that position themselves, so taint is caught even
//     when the source and the sink meet two call edges apart. Escape
//     hatch: //e3:detflow <reason> on the sink call.
//
//  2. Map order: `for k := range m` over a map in a sim-domain package is
//     flagged unless the body is order-independent (delete, same-key map
//     copy, integer accumulation) or collects into a slice that is
//     sorted afterwards. Escape hatch: //e3:unordered <reason>.
//
// Known limits (by design, stdlib-only static analysis): taint propagates
// through return values and through direct sink-wrapper parameters, not
// through arbitrary parameter chains, struct fields, or interface calls;
// the runtime digest property tests remain the backstop.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc: "forbid values derived from wall clock, global rand, or map " +
		"iteration order from flowing into engine schedule times, ledger " +
		"accounting, or exported traces, across call chains; flag " +
		"order-dependent map iteration in sim-domain packages. Escape " +
		"hatches: //e3:detflow <reason> (sink call), //e3:unordered " +
		"<reason> (map range).",
	RunModule: runDetFlow,
}

// detflowSinkMethods maps (pkg, receiver, method) to a description of the
// deterministic input the method consumes. A sink match means "a
// nondeterministic value just entered the reproducible core".
var detflowSinkMethods = map[[3]string]string{
	{"e3/internal/sim", "Engine", "At"}:    "an engine schedule time",
	{"e3/internal/sim", "Engine", "After"}: "an engine schedule delay",

	{"e3/internal/audit", "Ledger", "Arrived"}:    "ledger accounting (a digest input)",
	{"e3/internal/audit", "Ledger", "Queued"}:     "ledger accounting (a digest input)",
	{"e3/internal/audit", "Ledger", "Dispatched"}: "ledger accounting (a digest input)",
	{"e3/internal/audit", "Ledger", "Merged"}:     "ledger accounting (a digest input)",
	{"e3/internal/audit", "Ledger", "Completed"}:  "ledger accounting (a digest input)",
	{"e3/internal/audit", "Ledger", "Dropped"}:    "ledger accounting (a digest input)",

	{"e3/internal/telemetry", "Tracer", "Record"}:       "an exported trace span",
	{"e3/internal/telemetry", "Tracer", "Execute"}:      "an exported trace span",
	{"e3/internal/telemetry", "Tracer", "QueueWait"}:    "an exported trace span",
	{"e3/internal/telemetry", "Tracer", "Transfer"}:     "an exported trace span",
	{"e3/internal/telemetry", "Tracer", "Fuse"}:         "an exported trace span",
	{"e3/internal/telemetry", "Tracer", "Replan"}:       "an exported trace span",
	{"e3/internal/telemetry", "Tracer", "PlanCacheHit"}: "an exported trace span",
	{"e3/internal/telemetry", "Tracer", "Arrive"}:       "an exported trace span",
	{"e3/internal/telemetry", "Tracer", "Complete"}:     "an exported trace span",
	{"e3/internal/telemetry", "Tracer", "Drop"}:         "an exported trace span",
	{"e3/internal/telemetry", "Tracer", "SLOBurn"}:      "an exported trace span",
}

// detflowScope lists the packages whose map iterations must be
// order-independent: everything that computes, accounts, traces, plans,
// or renders simulator results.
var detflowScope = map[string]bool{
	"e3/internal/sim":         true,
	"e3/internal/simnet":      true,
	"e3/internal/scheduler":   true,
	"e3/internal/serving":     true,
	"e3/internal/metrics":     true,
	"e3/internal/audit":       true,
	"e3/internal/exec":        true,
	"e3/internal/trace":       true,
	"e3/internal/profile":     true,
	"e3/internal/workload":    true,
	"e3/internal/experiments": true,
	"e3/internal/core":        true,
	"e3/internal/telemetry":   true,
	"e3/internal/replan":      true,
	"e3/internal/slo":         true,
	"e3/internal/flame":       true,
	"e3/internal/optimizer":   true,
	"e3/internal/forecast":    true,
	"e3/internal/ee":          true,
}

// taintInfo describes why a function's return value (or an object) is
// nondeterministic.
type taintInfo struct {
	// source names the original nondeterminism ("time.Now", "rand.Intn").
	source string
	// via renders the call chain from source to here, for the diagnostic.
	via string
}

func (t *taintInfo) describe() string {
	if t.via == "" {
		return t.source
	}
	return t.source + " (via " + t.via + ")"
}

// detflowState is the module-wide fixpoint state.
type detflowState struct {
	pass *ModulePass
	// retTaint summarizes functions whose return values are tainted.
	retTaint map[*types.Func]*taintInfo
	// sinkParams summarizes wrapper functions that pass a parameter into
	// a sink: param index -> sink description.
	sinkParams map[*types.Func]map[int]string
}

func runDetFlow(pass *ModulePass) {
	st := &detflowState{
		pass:       pass,
		retTaint:   make(map[*types.Func]*taintInfo),
		sinkParams: make(map[*types.Func]map[int]string),
	}
	// Fixpoint over return-taint and sink-param summaries: each round
	// re-analyzes every function against the current summaries until
	// nothing changes. Terminates because both summary maps only grow.
	for changed := true; changed; {
		changed = false
		for _, ff := range pass.Facts.Order {
			if st.analyzeFunc(ff, nil) {
				changed = true
			}
		}
	}
	// Reporting pass against the converged summaries.
	for _, ff := range pass.Facts.Order {
		st.analyzeFunc(ff, func(pos token.Pos, taint *taintInfo, sinkName, sinkDesc string) {
			if pass.Exempted(pos, "detflow") {
				return
			}
			pass.Reportf(pos,
				"value derived from %s flows into %s (%s); the deterministic core must see only virtual time and seeded rand (annotate //e3:detflow <reason> if the flow is provably harmless)",
				taint.describe(), sinkName, sinkDesc)
		})
	}
	// Map-order rule, purely local.
	for _, ff := range pass.Facts.Order {
		if !detflowScope[ff.Pkg.ImportPath] {
			continue
		}
		checkMapRanges(pass, ff)
	}
}

// sinkOf resolves a called function to a sink description, consulting
// both the built-in method table and the learned wrapper summaries.
func (st *detflowState) sinkOf(callee *types.Func) (name, desc string, params map[int]string) {
	if pkg, recv, method, ok := methodTriple(callee); ok {
		if d, hit := detflowSinkMethods[[3]string{pkg, recv, method}]; hit {
			all := make(map[int]string)
			all[-1] = d // every argument position counts for direct sinks
			return recv + "." + method, d, all
		}
	}
	if ps, ok := st.sinkParams[callee]; ok && len(ps) > 0 {
		return callee.Name(), "a sink wrapper", ps
	}
	return "", "", nil
}

// analyzeFunc runs the intra-procedural taint walk over one function. It
// returns true if the function's summaries changed. When report is
// non-nil, sink violations are emitted through it instead.
func (st *detflowState) analyzeFunc(ff *FuncFacts, report func(token.Pos, *taintInfo, string, string)) bool {
	info := ff.Pkg.Info
	tainted := make(map[types.Object]*taintInfo)
	changed := false

	// Parameter objects, for sink-wrapper summarization.
	paramIndex := make(map[types.Object]int)
	if sig, ok := ff.Obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			paramIndex[sig.Params().At(i)] = i
		}
	}

	var exprTaint func(e ast.Expr) *taintInfo
	exprTaint = func(e ast.Expr) *taintInfo {
		switch e := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return tainted[obj]
			}
		case *ast.ParenExpr:
			return exprTaint(e.X)
		case *ast.UnaryExpr:
			return exprTaint(e.X)
		case *ast.StarExpr:
			return exprTaint(e.X)
		case *ast.SelectorExpr:
			return exprTaint(e.X)
		case *ast.IndexExpr:
			return exprTaint(e.X)
		case *ast.SliceExpr:
			return exprTaint(e.X)
		case *ast.BinaryExpr:
			// Comparisons yield bools; branching on taint is an implicit
			// flow this analysis deliberately ignores.
			switch e.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
				token.LAND, token.LOR:
				return nil
			}
			if t := exprTaint(e.X); t != nil {
				return t
			}
			return exprTaint(e.Y)
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if t := exprTaint(elt); t != nil {
					return t
				}
			}
		case *ast.KeyValueExpr:
			return exprTaint(e.Value)
		case *ast.CallExpr:
			return st.callTaint(ff, e, exprTaint)
		}
		return nil
	}

	markObj := func(obj types.Object, t *taintInfo) {
		if obj == nil {
			return
		}
		if t == nil {
			delete(tainted, obj)
			return
		}
		tainted[obj] = t
	}
	identObj := func(e ast.Expr) types.Object {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}

	// Two passes over the body propagate loop-carried taint one level —
	// enough for the shapes that occur in practice.
	for pass := 0; pass < 2; pass++ {
		final := report != nil && pass == 1
		ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						markObj(identObj(n.Lhs[i]), exprTaint(n.Rhs[i]))
					}
				} else if len(n.Rhs) == 1 {
					t := exprTaint(n.Rhs[0])
					for _, lhs := range n.Lhs {
						markObj(identObj(lhs), t)
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					var t *taintInfo
					if i < len(n.Values) {
						t = exprTaint(n.Values[i])
					} else if len(n.Values) == 1 {
						t = exprTaint(n.Values[0])
					}
					markObj(info.Defs[name], t)
				}
			case *ast.RangeStmt:
				if t := exprTaint(n.X); t != nil {
					markObj(identObj(n.Key), t)
					if n.Value != nil {
						markObj(identObj(n.Value), t)
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if t := exprTaint(res); t != nil {
						if _, have := st.retTaint[ff.Obj]; !have {
							st.retTaint[ff.Obj] = &taintInfo{source: t.source, via: chainVia(t, ff)}
							changed = true
						}
					}
				}
			case *ast.CallExpr:
				callee := funcOf(info, n.Fun)
				if callee == nil {
					return true
				}
				_, _, sinkParams := st.sinkOf(callee)
				if sinkParams == nil {
					return true
				}
				sinkName, sinkDesc, _ := st.sinkOf(callee)
				_, anyArg := sinkParams[-1]
				for i, arg := range n.Args {
					if !anyArg {
						if _, isSink := sinkParams[i]; !isSink {
							continue
						}
					}
					if t := exprTaint(arg); t != nil && final {
						report(n.Pos(), t, sinkName, sinkDesc)
					}
					// A parameter of this function feeding the sink makes
					// this function a sink wrapper at that position.
					if obj := identObj(arg); obj != nil {
						if pi, isParam := paramIndex[obj]; isParam && tainted[obj] == nil {
							if st.sinkParams[ff.Obj] == nil {
								st.sinkParams[ff.Obj] = make(map[int]string)
							}
							if _, have := st.sinkParams[ff.Obj][pi]; !have {
								st.sinkParams[ff.Obj][pi] = sinkDesc
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return changed
}

// callTaint decides whether a call expression produces a tainted value.
func (st *detflowState) callTaint(ff *FuncFacts, call *ast.CallExpr, exprTaint func(ast.Expr) *taintInfo) *taintInfo {
	info := ff.Pkg.Info
	fun := unparen(call.Fun)

	// Conversions pass taint through.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			if t := exprTaint(arg); t != nil {
				return t
			}
		}
		return nil
	}
	// Builtins (len, cap, append...) launder taint into order-independent
	// quantities; append keeps the slice's taint.
	if id, ok := fun.(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if b.Name() == "append" {
				for _, arg := range call.Args {
					if t := exprTaint(arg); t != nil {
						return t
					}
				}
			}
			return nil
		}
	}

	// A method's receiver carries taint like an argument does:
	// time.Now().UnixNano() is tainted because its receiver is.
	recvTaint := func() *taintInfo {
		if sel, isSel := fun.(*ast.SelectorExpr); isSel {
			if _, isPkg := pkgPathOf(info, sel.X); !isPkg {
				return exprTaint(sel.X)
			}
		}
		return nil
	}

	callee := funcOf(info, fun)
	if callee == nil {
		// Unresolvable call (function value, interface method): assume
		// taint passes through receiver and arguments.
		if t := recvTaint(); t != nil {
			return t
		}
		for _, arg := range call.Args {
			if t := exprTaint(arg); t != nil {
				return t
			}
		}
		return nil
	}
	// The sources themselves.
	if isPkgLevel(callee, "time") && wallClockFuncs[callee.Name()] {
		return &taintInfo{source: "time." + callee.Name()}
	}
	if isPkgLevel(callee, "math/rand") && globalRandFuncs[callee.Name()] {
		return &taintInfo{source: "rand." + callee.Name()}
	}
	// In-module functions: trust the fixpoint summary.
	if _, inModule := st.pass.Facts.Funcs[callee]; inModule {
		if t, isTainted := st.retTaint[callee]; isTainted {
			return t
		}
		return nil
	}
	// Out-of-module (stdlib) functions: conservatively pass taint from
	// receiver and arguments to result (fmt.Sprintf(tainted) is tainted,
	// and so is tainted.UnixNano()).
	if t := recvTaint(); t != nil {
		return t
	}
	for _, arg := range call.Args {
		if t := exprTaint(arg); t != nil {
			return t
		}
	}
	return nil
}

// chainVia extends a taint's call-chain rendering with the function now
// returning it.
func chainVia(t *taintInfo, ff *FuncFacts) string {
	name := ff.Name()
	if t.via == "" {
		return name
	}
	if len(t.via) > 120 {
		return t.via // cap the chain; the head names the source
	}
	return t.via + " → " + name
}

// checkMapRanges applies the map-order rule to one function.
func checkMapRanges(pass *ModulePass, ff *FuncFacts) {
	for _, rs := range ff.MapRanges {
		if pass.Exempted(rs.Pos(), "unordered") {
			continue
		}
		if mapRangeOrderIndependent(ff, rs) {
			continue
		}
		pass.Reportf(rs.Pos(),
			"map iteration order is randomized and this range's effects depend on it, inside a deterministic simulation domain; iterate sorted keys, make the body order-independent, or annotate //e3:unordered <reason>")
	}
}

// mapRangeOrderIndependent recognizes the bodies whose effects cannot
// depend on iteration order:
//
//   - delete(m, k) loops
//   - key-derived writes into another map (m2[k] = ..., m2[string(k)] = ...)
//   - integer/boolean accumulation (+=, |=, ++, counters)
//   - writes to variables declared inside the body (per-iteration scratch)
//   - if statements whose branches are themselves order-independent
//     (continue is fine, break/return are not — they stop at an
//     order-chosen iteration)
//   - collect-into-slice loops whose slice is sorted after the loop
//
// Anything else — emitting output, appending without a later sort,
// floating-point accumulation (non-associative), early exits — is
// order-dependent and flagged.
func mapRangeOrderIndependent(ff *FuncFacts, rs *ast.RangeStmt) bool {
	info := ff.Pkg.Info
	keyObj := rangeVarObj(info, rs.Key)

	st := &mapRangeCheck{
		info:      info,
		keyObj:    keyObj,
		bodyStart: rs.Body.Pos(),
		bodyEnd:   rs.Body.End(),
	}
	if rs.Value != nil {
		st.valueObj = rangeVarObj(info, rs.Value)
	}
	for _, stmt := range rs.Body.List {
		if !st.safeStmt(stmt) {
			return false
		}
	}
	for _, obj := range st.collected {
		if !sortedAfter(ff, rs, obj) {
			return false
		}
	}
	return true
}

// mapRangeCheck carries the state of one map-range safe-shape analysis.
type mapRangeCheck struct {
	info               *types.Info
	keyObj, valueObj   types.Object
	bodyStart, bodyEnd token.Pos
	// collected gathers slice objects appended to inside the body; each
	// must be sorted after the loop for the shape to count as safe.
	collected []types.Object
}

// bodyLocal reports whether obj is declared inside the loop body (or is
// the iteration variable itself): writing it affects one iteration only.
func (st *mapRangeCheck) bodyLocal(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if obj == st.keyObj || obj == st.valueObj {
		return true
	}
	return obj.Pos() >= st.bodyStart && obj.Pos() < st.bodyEnd
}

// keyDerived reports whether an index expression is the range key or a
// conversion of it — an injective function of the key, so writes land in
// distinct cells per iteration.
func (st *mapRangeCheck) keyDerived(e ast.Expr) bool {
	e = unparen(e)
	if st.keyObj != nil && usesOnlyObj(st.info, e, st.keyObj) {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, isType := st.info.Types[unparen(call.Fun)]; isType && tv.IsType() {
			return st.keyDerived(call.Args[0])
		}
	}
	return false
}

// safeStmt classifies one body statement.
func (st *mapRangeCheck) safeStmt(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		// delete(m', k) is commutative across distinct keys.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, isBuiltin := st.info.Uses[id].(*types.Builtin)
		return isBuiltin && b.Name() == "delete"
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.IncDecStmt:
		if obj := objOf(st.info, s.X); st.bodyLocal(obj) {
			return true
		}
		return !isFloatExpr(st.info, s.X)
	case *ast.IfStmt:
		if s.Init != nil && !st.safeStmt(s.Init) {
			return false
		}
		for _, bs := range s.Body.List {
			if !st.safeStmt(bs) {
				return false
			}
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				for _, bs := range e.List {
					if !st.safeStmt(bs) {
						return false
					}
				}
			case *ast.IfStmt:
				return st.safeStmt(e)
			}
		}
		return true
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return false
		}
		for i, lhs := range s.Lhs {
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
				// Integer accumulation commutes; float accumulation is
				// non-associative and therefore order-dependent — unless
				// the target lives one iteration only.
				if st.bodyLocal(objOf(st.info, lhs)) {
					continue
				}
				if isFloatExpr(st.info, lhs) {
					return false
				}
			case token.ASSIGN, token.DEFINE:
				// Per-iteration scratch: writes to body-local variables.
				if st.bodyLocal(objOf(st.info, lhs)) {
					continue
				}
				if idx, ok := unparen(lhs).(*ast.IndexExpr); ok {
					// m2[k] = ... writes distinct cells per iteration.
					if st.keyDerived(idx.Index) {
						continue
					}
					return false
				}
				// x = append(x, ...) collects; defer the verdict to the
				// after-loop sort check.
				if call, ok := unparen(s.Rhs[i]).(*ast.CallExpr); ok {
					if id, isID := unparen(call.Fun).(*ast.Ident); isID {
						if b, isB := st.info.Uses[id].(*types.Builtin); isB && b.Name() == "append" && len(call.Args) > 0 && exprEqual(lhs, call.Args[0]) {
							if obj := objOf(st.info, lhs); obj != nil {
								st.collected = append(st.collected, obj)
								continue
							}
						}
					}
				}
				return false
			default:
				return false
			}
		}
		return true
	default:
		return false
	}
}

// sortedAfter reports whether obj is passed to a sort.* call after the
// range statement, anywhere in the function body.
func sortedAfter(ff *FuncFacts, rs *ast.RangeStmt, obj types.Object) bool {
	info := ff.Pkg.Info
	found := false
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		callee := funcOf(info, call.Fun)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sort" {
			return true
		}
		if objOf(info, call.Args[0]) == obj {
			found = true
		}
		return true
	})
	return found
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// objOf resolves an identifier or selector to its object.
func objOf(info *types.Info, e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Defs[e]; obj != nil {
			return obj
		}
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// usesOnlyObj reports whether expression e is exactly a use of obj.
func usesOnlyObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
