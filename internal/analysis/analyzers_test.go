package analysis_test

import (
	"testing"

	"e3/internal/analysis"
	"e3/internal/analysis/analysistest"
)

// Each analyzer runs over a fixture tree whose bad cases mirror the real
// bugs PR 1's runtime audits caught. If an analyzer is gutted, its
// fixtures' want comments go unmatched and the test fails — the suite
// guards itself.

func TestVirtualTime(t *testing.T) {
	analysistest.Run(t, "testdata/src/virtualtime", analysis.VirtualTime, "e3/internal/sim")
}

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata/src/seededrand", analysis.SeededRand, "e3/internal/workload")
}

func TestFloatDeadline(t *testing.T) {
	analysistest.Run(t, "testdata/src/floatdeadline", analysis.FloatDeadline, "e3/internal/serving")
}

func TestLedgerPair(t *testing.T) {
	analysistest.Run(t, "testdata/src/ledgerpair", analysis.LedgerPair, "e3/internal/scheduler")
}

func TestEventLoop(t *testing.T) {
	analysistest.Run(t, "testdata/src/eventloop", analysis.EventLoop,
		"e3/internal/scheduler", "e3/internal/fleet")
}

// The interprocedural analyzers get cross-package fixtures: every
// violation below is reachable only through at least two call edges, so
// a regression to per-package (or per-function) reasoning unmatches the
// want comments.

func TestDetFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src/detflow", analysis.DetFlow,
		"e3/internal/sim", "e3/internal/jitter", "e3/internal/scheduler")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/hotalloc", analysis.HotAlloc,
		"e3/internal/util", "e3/internal/sim")
}

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src/errflow", analysis.ErrFlow,
		"e3/internal/sim", "e3/internal/serving", "e3/internal/experiments")
}

func TestEventLoopInterproc(t *testing.T) {
	analysistest.Run(t, "testdata/src/eventloopx", analysis.EventLoopInterproc,
		"e3/internal/bg", "e3/internal/scheduler", "e3/internal/fleet")
}

// TestDirectiveCheck runs the meta-analyzer together with virtualtime so
// the consumed suppression in the fixture is marked used and only the
// unknown and stale directives are reported.
func TestDirectiveCheck(t *testing.T) {
	analysistest.RunSuite(t, "testdata/src/directives",
		[]*analysis.Analyzer{analysis.VirtualTime, analysis.DirectiveCheck},
		"e3/internal/sim")
}

// TestScoping pins the intent of each analyzer's package scope: the
// simulation domain is covered, the wall-clock edges (cmd/, examples/)
// are not.
func TestScoping(t *testing.T) {
	cases := []struct {
		a   *analysis.Analyzer
		in  []string
		out []string
	}{
		{analysis.VirtualTime,
			[]string{"e3/internal/sim", "e3/internal/serving", "e3/internal/audit", "e3/internal/experiments", "e3/internal/telemetry"},
			[]string{"e3/cmd/e3-bench", "e3/internal/optimizer", "e3"}},
		{analysis.SeededRand,
			[]string{"e3/internal/workload", "e3/internal/forecast", "e3/internal/trace"},
			[]string{"e3/cmd/e3-bench", "e3/internal/analysis"}},
		{analysis.FloatDeadline,
			[]string{"e3/internal/sim", "e3/internal/serving", "e3/internal/metrics"},
			[]string{"e3/internal/workload", "e3/cmd/e3-serve"}},
		{analysis.LedgerPair,
			[]string{"e3/internal/scheduler", "e3/internal/serving"},
			[]string{"e3/internal/metrics", "e3/internal/audit"}},
		{analysis.EventLoop,
			[]string{"e3/internal/sim", "e3/internal/scheduler", "e3/internal/serving", "e3/internal/telemetry", "e3/internal/fleet"},
			[]string{"e3/internal/multi", "e3/cmd/e3-serve"}},
	}
	for _, c := range cases {
		for _, p := range c.in {
			if !c.a.Applies(p) {
				t.Errorf("%s should apply to %s", c.a.Name, p)
			}
		}
		for _, p := range c.out {
			if c.a.Applies(p) {
				t.Errorf("%s should not apply to %s", c.a.Name, p)
			}
		}
	}
}
