package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"e3/internal/analysis"
)

// TestRepositoryIsLintClean runs the full analyzer suite over this
// repository's own source tree, exactly as `make lintgate` does:
// findings are matched against the checked-in baseline, and both fresh
// findings and stale baseline entries fail. Because it lives in
// go test ./..., a future invariant violation fails tier-1 verification
// even when nobody remembers to run the lint step by hand.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewModuleLoader(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the pattern expansion is dropping most of the tree", len(pkgs))
	}
	analyzers := analysis.All()
	if len(analyzers) < 10 {
		t.Fatalf("suite has %d analyzers; the v2 suite registers 10", len(analyzers))
	}
	diags := analysis.RunAnalyzers(pkgs, analyzers)
	findings := analysis.ToFindings(diags, loader.Root())

	// Positions must round-trip: every reported path resolves under the
	// module root (the JSON contract cmd/e3-lint -json exposes).
	for _, f := range findings {
		if filepath.IsAbs(f.Path) {
			t.Errorf("finding path %q did not relativize against the module root", f.Path)
		} else if _, err := os.Stat(filepath.Join(loader.Root(), filepath.FromSlash(f.Path))); err != nil {
			t.Errorf("finding path %q does not resolve under the module root: %v", f.Path, err)
		}
	}

	base, err := analysis.LoadBaseline(filepath.Join(loader.Root(), "lint.baseline.json"))
	if err != nil {
		t.Fatalf("loading repo baseline: %v", err)
	}
	fresh, stale := base.Diff(findings)
	for _, f := range fresh {
		t.Errorf("invariant violation not in baseline: %s %s:%d: %s", f.Rule, f.Path, f.Line, f.Message)
	}
	for _, f := range stale {
		t.Errorf("stale baseline entry (violation is gone — delete it): %s %s: %s", f.Rule, f.Path, f.Message)
	}
}

// TestSuiteComposition pins the v2 suite's shape: all nine invariant
// analyzers plus the directives meta-check are registered, the
// interprocedural ones are module-scoped, and the meta-check sits last
// so every other analyzer's used-marks land before stale detection.
func TestSuiteComposition(t *testing.T) {
	all := analysis.All()
	want := []string{
		"virtualtime", "floatdeadline", "seededrand", "ledgerpair", "eventloop",
		"detflow", "hotalloc", "errflow", "eventloop-interproc", "directives",
	}
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name, name)
		}
	}
	if all[len(all)-1] != analysis.DirectiveCheck {
		t.Error("the directives meta-check must be registered last")
	}
	for _, a := range all[5:] {
		if a.RunModule == nil {
			t.Errorf("%s must be a module-scoped (interprocedural) analyzer", a.Name)
		}
		if a.Run != nil {
			t.Errorf("%s registers both per-package and module entry points", a.Name)
		}
	}
	for _, a := range all[:5] {
		if a.Run == nil || a.Applies == nil {
			t.Errorf("%s must stay a scoped per-package analyzer", a.Name)
		}
	}
}
