package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"e3/internal/analysis"
)

// TestRepositoryIsLintClean runs the full analyzer suite over this
// repository's own source tree, exactly as cmd/e3-lint does. Because it
// lives in go test ./..., a future invariant violation fails tier-1
// verification even when nobody remembers to run the lint step by hand.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewModuleLoader(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the pattern expansion is dropping most of the tree", len(pkgs))
	}
	diags := analysis.RunAnalyzers(pkgs, analysis.All())
	for _, d := range diags {
		if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		t.Errorf("invariant violation: %s", d)
	}
}
