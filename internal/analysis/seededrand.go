package analysis

import (
	"go/ast"
)

// globalRandFuncs are math/rand's package-level convenience functions,
// all of which draw from the shared global source. rand.New and
// rand.NewSource are deliberately absent: constructing a seeded *rand.Rand
// is exactly the sanctioned pattern.
var globalRandFuncs = map[string]bool{
	"Int":         true,
	"Intn":        true,
	"Int31":       true,
	"Int31n":      true,
	"Int63":       true,
	"Int63n":      true,
	"Uint32":      true,
	"Uint64":      true,
	"Float32":     true,
	"Float64":     true,
	"NormFloat64": true,
	"ExpFloat64":  true,
	"Perm":        true,
	"Shuffle":     true,
	"Read":        true,
	"Seed":        true,
}

// SeededRand enforces reproducibility: randomness in workload generation,
// the simulator, forecasting, and experiments must flow through an
// injected, seeded *rand.Rand. The global math/rand source makes two runs
// with identical configs produce different traces, which silently breaks
// every same-seed regression comparison (and the paper's §5 experiment
// reproductions). Because the check resolves the receiver through the type
// checker, calls on a *rand.Rand variable — even one named rand — are fine.
//
// v2: function bodies are read from the shared facts layer; only
// package-level initializers still need a residual walk.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand top-level functions in stochastic " +
		"packages; thread a seeded *rand.Rand instead. " +
		"Escape hatch: //e3:unseeded <reason>.",
	Applies: scope(
		"e3/internal/workload",
		"e3/internal/sim",
		"e3/internal/forecast",
		"e3/internal/experiments",
		"e3/internal/trace",
		"e3/internal/profile",
		"e3/internal/ee",
		"e3/internal/llm",
		"e3/internal/replan",
	),
	Run: runSeededRand,
}

func runSeededRand(pass *Pass) {
	reportUse := func(use Use) {
		if pass.Exempted(use.Pos, "unseeded") {
			return
		}
		pass.Reportf(use.Pos,
			"%s draws from the global math/rand source, breaking same-seed reproducibility; draw from an injected *rand.Rand (or annotate //e3:unseeded <reason>)",
			use.What)
	}
	for _, ff := range pass.Facts.ByPackage(pass.ImportPath) {
		for _, use := range ff.GlobalRand {
			reportUse(use)
		}
	}
	inspectOutsideBodies(pass.Files, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgPath, fn, ok := pass.PkgFuncCall(call); ok && pkgPath == "math/rand" && globalRandFuncs[fn] {
			reportUse(Use{Pos: call.Pos(), What: "rand." + fn})
		}
		return true
	})
}
