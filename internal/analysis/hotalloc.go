package analysis

import (
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc guards the allocation-free fast paths PR 5 and PR 6 bought
// with benchmarks: the engine's push/pop, the batch pool's get/put, the
// pipelined runner's RunSplitInto, the sampled ledger's record. Those
// wins are fragile — one fmt.Sprintf or escaping closure added three
// helpers down restores per-event garbage, and nothing but a benchmark
// regression would notice. Annotating a function //e3:hotpath <reason>
// declares it allocation-free; hotalloc then walks every function
// transitively reachable through static call edges and flags each
// allocating construct, with the call chain that makes it hot.
//
// Self-appends (x = append(x, ...)) are tolerated because they amortize
// into recycled capacity — exactly the pooled-buffer pattern the fast
// paths use. Allocations inside panic arguments are cold by definition.
// Escape hatch for a deliberate allocation (a pool miss that must
// allocate): //e3:alloc <reason> on the allocating line.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //e3:hotpath must transitively avoid " +
		"allocating constructs (growing appends, closures, interface " +
		"boxing, fmt, string concat). Escape hatch: //e3:alloc <reason> " +
		"on the allocating line.",
	RunModule: runHotAlloc,
}

func runHotAlloc(pass *ModulePass) {
	// reported dedupes by alloc position: a construct in a shared helper
	// is reported once, attributed to the first hot root (in declaration
	// order) that reaches it.
	reported := make(map[token.Pos]bool)

	for _, root := range pass.Facts.Order {
		if _, isHot := pass.FuncDirective(root, "hotpath"); !isHot {
			continue
		}
		visited := make(map[*types.Func]bool)
		var walk func(ff *FuncFacts, chain []string)
		walk = func(ff *FuncFacts, chain []string) {
			if visited[ff.Obj] {
				return
			}
			visited[ff.Obj] = true
			chain = append(chain, ff.Name())

			for _, alloc := range ff.Allocs {
				if reported[alloc.Pos] {
					continue
				}
				if pass.Exempted(alloc.Pos, "alloc") {
					continue
				}
				reported[alloc.Pos] = true
				pass.Reportf(alloc.Pos,
					"%s allocates on the //e3:hotpath fast path rooted at %s (reached via %s); hoist it, reuse a buffer, or annotate //e3:alloc <reason>",
					alloc.What, root.Name(), strings.Join(chain, " → "))
			}
			for _, cs := range ff.Calls {
				if cs.Cold {
					continue
				}
				callee, inModule := pass.Facts.Funcs[cs.Callee]
				if !inModule {
					continue
				}
				walk(callee, chain)
			}
		}
		walk(root, nil)
	}
}
