package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic in the machine-readable e3-lint output: the
// rule ID, a module-root-relative slash-separated path (stable across
// machines and checkouts, so CI can diff two runs textually), and the
// position and message. The JSON field order is fixed by this struct and
// findings are sorted, so byte-identical trees produce byte-identical
// reports.
type Finding struct {
	Rule    string `json:"rule"`
	Path    string `json:"path"`
	Line    int    `json:"line"`
	Col     int    `json:"col,omitempty"`
	Message string `json:"message"`
	// Justification is only meaningful in baseline files: why the finding
	// is accepted rather than fixed.
	Justification string `json:"justification,omitempty"`
}

// Report is the top-level -json document.
type Report struct {
	Version  int       `json:"version"`
	Findings []Finding `json:"findings"`
}

// key is the baseline-matching identity of a finding. Line and column are
// deliberately excluded so unrelated edits that shift a baselined finding
// down a file do not break the gate; rule + path + message is specific
// enough in practice (two identical violations in one file match two
// identical baseline entries, multiset-style).
func (f Finding) key() string {
	return f.Rule + "\x00" + f.Path + "\x00" + f.Message
}

// ToFindings converts diagnostics to findings with paths rewritten
// relative to root (typically the module root).
func ToFindings(diags []Diagnostic, root string) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		path := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
				path = rel
			}
		}
		out = append(out, Finding{
			Rule:    d.Analyzer,
			Path:    filepath.ToSlash(path),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Message: d.Message,
		})
	}
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Path != fs[j].Path {
			return fs[i].Path < fs[j].Path
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Rule != fs[j].Rule {
			return fs[i].Rule < fs[j].Rule
		}
		return fs[i].Message < fs[j].Message
	})
}

// MarshalReport renders the canonical indented JSON document.
func MarshalReport(findings []Finding) ([]byte, error) {
	if findings == nil {
		findings = []Finding{}
	}
	data, err := json.MarshalIndent(Report{Version: 1, Findings: findings}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
