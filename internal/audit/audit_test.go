package audit

import (
	"strings"
	"testing"
)

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.Arrived(1, 0)
	l.Queued(1, 0)
	l.Dispatched(1, 0, 0, 0)
	l.Merged(1, 0, 1)
	l.Completed(1, 1, 4)
	l.Dropped(2, 1, ReasonAdmission)
	if l.Enabled() {
		t.Error("nil ledger reports enabled")
	}
	if l.Samples() != 0 {
		t.Error("nil ledger tracked samples")
	}
	r := l.Verify()
	if !r.OK() {
		t.Errorf("nil ledger verify not OK: %v", r.Violations)
	}
}

func TestVerifyCleanLifecycles(t *testing.T) {
	l := NewLedger()
	// Completed via two stages.
	l.Arrived(1, 0.0)
	l.Queued(1, 0.0)
	l.Dispatched(1, 0.001, 0, 3)
	l.Merged(1, 0.004, 1)
	l.Dispatched(1, 0.005, 1, 5)
	l.Completed(1, 0.009, 12)
	// Admission drop, never queued.
	l.Arrived(2, 0.002)
	l.Dropped(2, 0.002, ReasonAdmission)
	// Stale shed after dispatch.
	l.Arrived(3, 0.003)
	l.Queued(3, 0.003)
	l.Dispatched(3, 0.004, 0, 2)
	l.Dropped(3, 0.030, ReasonStaleShed)

	r := l.Verify()
	if !r.OK() {
		t.Fatalf("clean ledger has violations: %v", r.Violations)
	}
	if r.Samples != 3 || r.Completed != 1 || r.Dropped != 2 {
		t.Errorf("samples=%d completed=%d dropped=%d, want 3,1,2", r.Samples, r.Completed, r.Dropped)
	}
	if r.ByReason[ReasonAdmission] != 1 || r.ByReason[ReasonStaleShed] != 1 {
		t.Errorf("reason breakdown = %v", r.ByReason)
	}
	if f := r.Stages[0]; f == nil || f.In != 2 || f.Forwarded != 1 || f.Dropped != 1 {
		t.Errorf("stage 0 flow = %+v", f)
	}
	if f := r.Stages[1]; f == nil || f.In != 1 || f.Completed != 1 {
		t.Errorf("stage 1 flow = %+v", f)
	}
	r.CrossCheck(1, 2)
	if !r.OK() {
		t.Errorf("matching cross-check raised violations: %v", r.Violations)
	}
}

func TestVerifyCatchesLostSample(t *testing.T) {
	l := NewLedger()
	l.Arrived(7, 0)
	l.Dispatched(7, 0.001, 0, 0)
	r := l.Verify()
	if r.OK() {
		t.Fatal("lost sample not flagged")
	}
	if !strings.Contains(r.Violations[0], "no terminal") {
		t.Errorf("violation = %q, want lost-sample message", r.Violations[0])
	}
	if r.Err() == nil {
		t.Error("Err() nil despite violations")
	}
}

func TestVerifyCatchesDoubleTermination(t *testing.T) {
	l := NewLedger()
	l.Arrived(1, 0)
	l.Completed(1, 0.5, 4)
	l.Completed(1, 0.6, 4)
	if l.Verify().OK() {
		t.Error("double completion not flagged")
	}

	l2 := NewLedger()
	l2.Arrived(1, 0)
	l2.Dropped(1, 0.5, ReasonAdmission)
	l2.Completed(1, 0.6, 4)
	if l2.Verify().OK() {
		t.Error("drop-then-complete not flagged")
	}
}

func TestVerifyCatchesNonMonotoneTimestamps(t *testing.T) {
	l := NewLedger()
	l.Arrived(1, 0.5)
	l.Queued(1, 0.4) // travels back in time
	l.Completed(1, 0.6, 4)
	r := l.Verify()
	if r.OK() {
		t.Fatal("non-monotone timestamps not flagged")
	}
	if !strings.Contains(r.Violations[0], "before prior event") {
		t.Errorf("violation = %q", r.Violations[0])
	}
}

func TestVerifyCatchesUnclassifiedDrop(t *testing.T) {
	l := NewLedger()
	l.Arrived(1, 0)
	l.Dropped(1, 0.1, "")
	r := l.Verify()
	if r.OK() {
		t.Fatal("unclassified drop not flagged")
	}
	if !strings.Contains(r.Violations[0], "unclassified") {
		t.Errorf("violation = %q", r.Violations[0])
	}
}

func TestVerifyCatchesStageRegression(t *testing.T) {
	l := NewLedger()
	l.Arrived(1, 0)
	l.Dispatched(1, 0.001, 1, 0)
	l.Dispatched(1, 0.002, 0, 0) // backwards through the pipeline
	l.Completed(1, 0.003, 4)
	r := l.Verify()
	if r.OK() {
		t.Fatal("stage regression not flagged")
	}
}

func TestVerifyCatchesEventsAfterTerminal(t *testing.T) {
	l := NewLedger()
	l.Arrived(1, 0)
	l.Completed(1, 0.1, 4)
	l.Dispatched(1, 0.2, 0, 0)
	if l.Verify().OK() {
		t.Error("post-terminal event not flagged")
	}
}

func TestCrossCheckMismatch(t *testing.T) {
	l := NewLedger()
	l.Arrived(1, 0)
	l.Completed(1, 0.1, 4)
	r := l.Verify()
	r.CrossCheck(2, 0) // collector thinks it served two
	if r.OK() {
		t.Fatal("total mismatch not flagged")
	}
	if !strings.Contains(r.Violations[0], "collector") {
		t.Errorf("violation = %q", r.Violations[0])
	}
}

func TestViolationCapIsHonored(t *testing.T) {
	l := NewLedger()
	for id := int64(1); id <= 200; id++ {
		l.Arrived(id, 0) // none ever terminate
	}
	r := l.Verify()
	if len(r.Violations) > maxViolations {
		t.Errorf("violations list %d exceeds cap %d", len(r.Violations), maxViolations)
	}
	if r.OK() {
		t.Error("capped report claims OK")
	}
	if !strings.Contains(r.String(), "and") {
		t.Errorf("String() does not mention truncation: %s", r.String())
	}
}

func TestDropBreakdown(t *testing.T) {
	l := NewLedger()
	l.Dropped(1, 0, ReasonAdmission)
	l.Dropped(2, 0, ReasonAdmission)
	l.Dropped(3, 0, ReasonSLAFlush)
	got := l.DropBreakdown()
	if got[ReasonAdmission] != 2 || got[ReasonSLAFlush] != 1 {
		t.Errorf("breakdown = %v", got)
	}
}

func TestReportString(t *testing.T) {
	l := NewLedger()
	l.Arrived(1, 0)
	l.Completed(1, 0.1, 4)
	l.Arrived(2, 0)
	l.Dropped(2, 0.1, ReasonAdmission)
	s := l.Verify().String()
	for _, want := range []string{"2 samples", "1 completed", "1 dropped", "admission=1", "conservation OK"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
