package audit

import (
	"fmt"
	"testing"
)

// buildImbalancedLedger dispatches one sample into each of eight stages
// and never terminates them: every stage ends up with in ≠ out, so
// Verify emits one balance violation per stage on top of the per-sample
// no-terminal ones.
func buildImbalancedLedger() *Ledger {
	l := NewLedger()
	for s := 0; s < 8; s++ {
		id := int64(s + 1)
		l.Arrived(id, float64(s))
		l.Queued(id, float64(s)+0.1)
		l.Dispatched(id, float64(s)+0.2, s, 0)
	}
	return l
}

// TestVerifyViolationOrderIsDeterministic pins the fix for the
// stage-balance walk: Report.Stages is a map, and iterating it directly
// emitted the balance violations in randomized order, so two verifications
// of identical ledgers produced differently-ordered (and differently
// rendered) reports. The walk now sorts stage indices first; reverting it
// makes some pair of the repeated reports below disagree with near
// certainty (8 stages over 24 iterations).
func TestVerifyViolationOrderIsDeterministic(t *testing.T) {
	reference := buildImbalancedLedger().Verify()
	if len(reference.Violations) < 16 {
		t.Fatalf("fixture produced %d violations; want ≥16 (8 no-terminal + 8 stage-balance)", len(reference.Violations))
	}
	refText := reference.String()
	for i := 0; i < 24; i++ {
		r := buildImbalancedLedger().Verify()
		for j, v := range r.Violations {
			if v != reference.Violations[j] {
				t.Fatalf("iteration %d: violation %d = %q, reference has %q — report order is nondeterministic",
					i, j, v, reference.Violations[j])
			}
		}
		if got := r.String(); got != refText {
			t.Fatalf("iteration %d: rendered report differs from reference:\n%s\n--- vs ---\n%s", i, got, refText)
		}
	}
}

// TestVerifyStageBalanceSorted checks the balance violations themselves
// arrive in ascending stage order, which is what makes the textual report
// stable under diffing.
func TestVerifyStageBalanceSorted(t *testing.T) {
	r := buildImbalancedLedger().Verify()
	var stages []int
	for _, v := range r.Violations {
		var si, in, out, c, d, f int
		if n, _ := fmt.Sscanf(v, "stage %d: in %d ≠ out %d (completed %d + dropped %d + forwarded %d)", &si, &in, &out, &c, &d, &f); n >= 1 {
			stages = append(stages, si)
		}
	}
	if len(stages) != 8 {
		t.Fatalf("found %d stage-balance violations, want 8: %v", len(stages), r.Violations)
	}
	for i := 1; i < len(stages); i++ {
		if stages[i] <= stages[i-1] {
			t.Fatalf("stage-balance violations out of ascending order: %v", stages)
		}
	}
}
