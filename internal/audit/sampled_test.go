package audit

import (
	"strings"
	"testing"
)

// drive pushes n samples through a clean arrive→queue→dispatch→terminal
// lifecycle, dropping every 5th.
func drive(l *Ledger, n int64) {
	for id := int64(1); id <= n; id++ {
		at := float64(id)
		l.Arrived(id, at)
		l.Queued(id, at+0.001)
		if id%5 == 0 {
			l.Dropped(id, at+0.002, ReasonAdmission)
			continue
		}
		l.Dispatched(id, at+0.002, 0, int(id%4))
		l.Completed(id, at+0.010, 3)
	}
}

func TestSampledLedgerTotalsExact(t *testing.T) {
	const n = 1000
	l := NewSampledLedger(100)
	drive(l, n)
	r := l.Verify()
	if !r.OK() {
		t.Fatalf("sampled verify failed: %v", r.Violations)
	}
	if r.Samples != n {
		t.Fatalf("Samples = %d, want population-exact %d", r.Samples, n)
	}
	if r.Completed != 800 || r.Dropped != 200 {
		t.Fatalf("totals completed=%d dropped=%d, want 800/200 exact despite sampling", r.Completed, r.Dropped)
	}
	if r.ByReason[ReasonAdmission] != 200 {
		t.Fatalf("ByReason[admission] = %d, want 200", r.ByReason[ReasonAdmission])
	}
	if r.Tracked != 10 {
		t.Fatalf("Tracked = %d, want 10 (every 100th of 1000)", r.Tracked)
	}
	if r.Stride != 100 {
		t.Fatalf("Stride = %d, want 100", r.Stride)
	}
	// CrossCheck against exact collector-side totals must hold in sampled
	// mode — that is the point of keeping O(1) population counters.
	r.CrossCheck(800, 200)
	if !r.OK() {
		t.Fatalf("cross-check failed in sampled mode: %v", r.Violations)
	}
	if !strings.Contains(r.String(), "sampled") {
		t.Fatalf("report does not mention sampling: %s", r.String())
	}
}

func TestSampledLedgerDetectsViolationsOnTrackedSamples(t *testing.T) {
	l := NewSampledLedger(10)
	drive(l, 99)
	// Sample 20 is tracked (20%10==0): give it a second terminal.
	l.Completed(20, 99.0, 1)
	r := l.Verify()
	if r.OK() {
		t.Fatal("double-terminated tracked sample not flagged in sampled mode")
	}
}

func TestSampledLedgerMemoryBoundedByStride(t *testing.T) {
	l := NewSampledLedger(1000)
	drive(l, 10_000)
	if got := len(l.order); got != 10 {
		t.Fatalf("tracked %d samples in detail, want 10", got)
	}
	if got := len(l.events); got != 10 {
		t.Fatalf("event store holds %d ids, want 10", got)
	}
}

func TestExhaustiveLedgerUnchangedSemantics(t *testing.T) {
	l := NewLedger()
	drive(l, 50)
	r := l.Verify()
	if !r.OK() {
		t.Fatalf("exhaustive verify failed: %v", r.Violations)
	}
	if r.Samples != 50 || r.Tracked != 50 || r.Stride != 1 {
		t.Fatalf("exhaustive report samples=%d tracked=%d stride=%d, want 50/50/1", r.Samples, r.Tracked, r.Stride)
	}
	if strings.Contains(r.String(), "sampled") {
		t.Fatalf("exhaustive report mentions sampling: %s", r.String())
	}
}

func TestDropBreakdownUsesExactCounters(t *testing.T) {
	l := NewSampledLedger(7)
	drive(l, 700)
	bd := l.DropBreakdown()
	if bd[ReasonAdmission] != 140 {
		t.Fatalf("DropBreakdown[admission] = %d, want exact 140 under sampling", bd[ReasonAdmission])
	}
}

func TestLedgerDigestDeterministic(t *testing.T) {
	a, b := NewLedger(), NewLedger()
	drive(a, 30)
	drive(b, 30)
	if a.Digest() != b.Digest() {
		t.Fatal("identical event streams produced different digests")
	}
	c := NewLedger()
	drive(c, 30)
	c.Completed(31, 31, 1) // extra event must change the digest
	if a.Digest() == c.Digest() {
		t.Fatal("diverging event streams produced identical digests")
	}
	var nilLedger *Ledger
	if nilLedger.Digest() != "" {
		t.Fatal("nil ledger digest not empty")
	}
}
